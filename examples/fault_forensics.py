#!/usr/bin/env python
"""Fault forensics: flight recorder, causal chains, waste attribution.

Runs a mixed-taxonomy resilience campaign with the flight recorder on
(every replica keeps a bounded in-memory event ring plus a crash-
surviving spill file), then post-mortems the journal + flight dumps the
way ``repro analyze`` does, and shows that:

* every replica leaves an atomically-written flight dump behind,
* each injected fault is reconstructed into a causal chain
  (inject → detect → ladder attempts → requeue/abort → outcome),
* per-fault attributed waste reconciles with the replicas' measured
  waste buckets (coverage >= 95 %, exact by construction here), and
* the fail-stop share of the waste cross-checks against the Young/Daly
  ``expected_waste`` prediction.

Run:  python examples/fault_forensics.py        (seconds)
"""

import os
import tempfile

from repro.core.campaign import ResilienceCampaign
from repro.core.forensics import analyze_journal, format_analysis
from repro.obs.flightrec import load_flight_dir

MIX = {"software": 0.4, "node": 0.2, "sdc": 0.2, "straggler": 0.1, "burst": 0.1}


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        journal = os.path.join(tmp, "campaign.wal.jsonl")
        flight_dir = os.path.join(tmp, "flight")

        print("running a mixed-taxonomy campaign with the flight recorder on:")
        print(f"  fault mix: {MIX}")
        camp = ResilienceCampaign(
            reps=6,
            base_seed=0,
            journal_path=journal,
            flight_dir=flight_dir,
        )
        try:
            report = camp.run_grid(
                [40.0],
                [5],
                timesteps=40,
                fault_mix=MIX,
                verify_period=5,
            )
        finally:
            camp.close()
        print(report.format())

        dumps = load_flight_dir(flight_dir)
        print(f"flight dumps on disk: {len(dumps)} "
              f"(reasons: {sorted({d['meta'].get('reason') for d in dumps.values()})})")
        assert len(dumps) == 6, "every replica must leave a dump"

        analysis = analyze_journal(journal, flight_dir=flight_dir, top_k=3)
        print()
        print(format_analysis(analysis))

        coverage = analysis["totals"]["coverage"]
        assert coverage >= 0.95, f"attribution coverage {coverage:.1%} < 95%"
        point = analysis["points"][0]
        assert point["episodes"] > 0, "mixed campaign must produce episodes"
        yd = point["youngdaly"]
        assert yd["predicted_waste_s"] > 0
        print(
            f"\nOK: {coverage:.1%} of measured waste attributed to "
            f"{sum(len(p['per_kind']) for p in analysis['points'])} fault kinds "
            f"across {point['episodes']} episodes"
        )


if __name__ == "__main__":
    main()
