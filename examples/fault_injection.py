#!/usr/bin/env python
"""Fault injection: the paper's future work, working (Fig. 4, Cases 1-4).

Runs the same LULESH design point under all four fault-assumption cases
and then sweeps the checkpoint period under injected faults, comparing
the simulated optimum with the Young/Daly analytical interval.

Failure rates are accelerated (node MTBF of tens of seconds) so a
~1-second simulated job experiences failures; the dynamics are the same
as week-long jobs on month-MTBF machines.

Run:  python examples/fault_injection.py        (~1 minute)
"""

from repro.exps.casestudy import get_context
from repro.exps.fig4 import fault_assumption_cases, format_fig4
from repro.exps.ablations import format_abl2, youngdaly_ablation


def main() -> None:
    ctx = get_context(seed=0)

    print("== Fig. 4: the four fault-assumption cases ==")
    results = fault_assumption_cases(
        ctx, ranks=64, epr=10, timesteps=200, ckpt_period=40,
        node_mtbf_s=20.0, recovery_time_s=0.05, reps=5,
    )
    print(format_fig4(results))

    print("\n== Checkpoint period vs Young/Daly optimum (Case 4 DSE) ==")
    res = youngdaly_ablation(
        ctx, periods=(5, 10, 20, 40, 80, 160),
        ranks=64, epr=10, timesteps=400, node_mtbf_s=30.0, reps=5,
    )
    print(format_abl2(res))


if __name__ == "__main__":
    main()
