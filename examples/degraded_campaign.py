#!/usr/bin/env python
"""Degraded-mode campaign: watch the ladder climb, abort, and resume.

Runs a resilience sweep under simulated resource exhaustion and shows
the full degradation story end to end:

* a :class:`ResourceGuard` with fake probes reports a disk that keeps
  filling, so the ladder climbs rung by rung — shed snapshots, stretch
  cadence, suspend exporters, pause submission — each transition
  visible in the heartbeat line (``degraded: <stage>``),
* the bounded backpressure window expires and the run aborts *cleanly*
  with a valid journal,
* "space is freed" (the fake probe turns healthy) and a resumed
  campaign completes, bit-identical to a run that never saw pressure.

Run:  python examples/degraded_campaign.py        (seconds)
"""

import os
import tempfile

from repro.core.campaign import ResilienceCampaign
from repro.guard.ladder import DegradationLadder
from repro.guard.resource import ResourceGuard, ResourceLimits
from repro.obs.instrument import CampaignObs, ObsOptions

MTBFS = [8.0, 32.0]
PERIODS = [5]
TIMESTEPS = 20
REPS = 8

MiB = 1024 * 1024


class ShrinkingDisk:
    """Fake disk probe: loses ~'one snapshot' of headroom per poll."""

    def __init__(self, start=512 * MiB, leak=48 * MiB):
        self.free = start
        self.leak = leak

    def __call__(self, path: str):
        self.free = max(0, self.free - self.leak)
        return self.free


def make_guard(disk_probe) -> ResourceGuard:
    return ResourceGuard(
        watch_path=".",
        limits=ResourceLimits(min_disk_free_bytes=256 * MiB),
        ladder=DegradationLadder(polls_per_stage=2, max_pause_s=0.2),
        poll_interval_s=0.0,  # poll every supervisor tick (demo pacing)
        disk_probe=disk_probe,
        rss_probe=lambda: None,
        fd_probe=lambda: None,
    )


def main() -> None:
    journal = os.path.join(tempfile.mkdtemp(prefix="repro-wal-"), "wal.jsonl")

    print("== Pressured run: the disk 'fills' while the sweep executes ==")
    guard = make_guard(ShrinkingDisk())
    camp = ResilienceCampaign(
        reps=REPS,
        base_seed=0,
        journal_path=journal,
        guard=guard,
        obs=CampaignObs(ObsOptions(heartbeat_s=0.001)),
    )
    pressured = camp.run_grid(MTBFS, PERIODS, timesteps=TIMESTEPS)
    camp.close()
    print(f"\naborted: {camp.aborted} — {camp.abort_reason}")
    print(f"partial report covers {sum(p.replicas_done for p in pressured.points)} "
          f"journaled replicas")
    print("\nladder transitions, in order:")
    for frm, to, reason in guard.ladder.transitions:
        print(f"  {frm:>18s} -> {to:<18s} ({reason})")

    print("\n== Space freed: resume completes the sweep ==")
    resumed = ResilienceCampaign.resume(journal)
    report = resumed.run_grid(MTBFS, PERIODS, timesteps=TIMESTEPS)
    resumed.close()
    print(report.format())

    print("\n== Same sweep with a guard that never saw pressure ==")
    calm_guard = make_guard(lambda path: 512 * MiB)
    calm_camp = ResilienceCampaign(reps=REPS, base_seed=0, guard=calm_guard)
    calm = calm_camp.run_grid(MTBFS, PERIODS, timesteps=TIMESTEPS)
    print(f"guard stayed at stage: {calm_guard.stage!r}")
    print(f"resumed report bit-identical to calm run: "
          f"{report.to_json() == calm.to_json()}")
    print(f"\njournal: {journal}")


if __name__ == "__main__":
    main()
