#!/usr/bin/env python
"""Notional-system DSE: predicting beyond the machine you have.

Demonstrates the two prediction capabilities the paper highlights:

1. the Fig. 9 overhead matrix — which (problem size, ranks, FT level)
   corners of the design space get expensive, without running them, and
2. extrapolation past the allocation: 1331 ranks (> the 1000-rank limit)
   and epr 30 (more memory per node than Quartz has), like the prediction
   regions of Figs. 5-6 and the 1M-rank Vulcan prediction of Fig. 1.

Also contrasts BE-SST's concrete predictions with the related work's
abstract reliability-aware speedup laws (Section II).

Run:  python examples/notional_dse.py        (~3 minutes; simulates
      1000- and 1331-rank systems)
"""

from repro.core.ft import scenario_l1_l2
from repro.exps.casestudy import get_context
from repro.exps.fig9 import format_fig9, overhead_prediction
from repro.exps.ablations import analytical_baselines, format_abl3


def main() -> None:
    ctx = get_context(seed=0)

    print("== Fig. 9: overhead matrix over the validated design space ==")
    pct = overhead_prediction(ctx, reps=2)
    print(format_fig9(pct))

    print("\n== notional prediction: beyond the 1000-rank allocation ==")
    # 1331 = 11^3 is a legal LULESH rank count but above what the case
    # study could measure; the validated models let BE-SST simulate it.
    mc = ctx.simulate(10, 1331, scenario_l1_l2(40), reps=2)
    print(
        f"  predicted 1331-rank L1+L2 run: {mc.total_time.mean:.2f}s "
        f"(+/- {mc.total_time.std:.2f}s) over 200 timesteps"
    )
    for epr in (25, 30):
        l2 = ctx.archbeo.predict("fti_l2", {"epr": epr, "ranks": 1331})
        print(f"  predicted L2 checkpoint instance at epr={epr}: {l2 * 1e3:.1f}ms")

    print("\n== the related work's abstract view, for contrast ==")
    print(format_abl3(analytical_baselines()))


if __name__ == "__main__":
    main()
