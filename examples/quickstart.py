#!/usr/bin/env python
"""Quickstart: FT-aware modeling and simulation in ~60 lines.

Walks the whole BE-SST workflow on a generic iterative solver (the shape
of the paper's Fig. 3):

1. define an architecture (ArchBEO) with hand-written performance models,
2. build the application's abstract instruction stream (AppBEO), with and
   without checkpoint-restart,
3. simulate both and compare the fault-tolerance overhead.

Run:  python examples/quickstart.py
"""

from repro.core import ArchBEO, BESSTSimulator
from repro.core.ft import NO_FT, scenario_l1
from repro.models import CallableModel
from repro.network import TwoStageFatTree
from repro.apps import iterative_solver_appbeo


def main() -> None:
    # -- 1. the architecture -------------------------------------------------
    # A 64-node fat-tree machine.  Performance models are plain callables
    # here; the case-study examples fit them from benchmark data instead.
    arch = ArchBEO(
        name="toy-cluster",
        topology=TwoStageFatTree(64, nodes_per_edge=16, uplinks_per_edge=8),
        cores_per_node=2,
    )
    arch.bind("solve", CallableModel(lambda p: 2e-6 * p["n"], ("n",)))
    arch.bind(
        "fti_l1",
        CallableModel(lambda p: 1e-3 + 4e-8 * p["n"] * 8, ("n",)),
    )

    # -- 2. the application, with and without fault tolerance ----------------
    baseline = iterative_solver_appbeo(iterations=500, scenario=NO_FT)
    ft_aware = iterative_solver_appbeo(
        iterations=500, scenario=scenario_l1(period=50)
    )

    # -- 3. simulate ----------------------------------------------------------
    for label, app in [("no fault-tolerance", baseline), ("L1 every 50 it", ft_aware)]:
        result = BESSTSimulator(
            app, arch, nranks=32, params={"n": 100_000}, seed=0
        ).run()
        print(
            f"{label:<20s} total={result.total_time:8.3f}s  "
            f"checkpoint={result.checkpoint_time:6.3f}s  "
            f"overhead={100 * result.ft_overhead_fraction:5.1f}%  "
            f"ckpt instants={len(result.checkpoint_marks())}"
        )


if __name__ == "__main__":
    main()
