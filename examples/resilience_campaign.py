#!/usr/bin/env python
"""Resilience campaign: survivability under the full fault lifecycle.

Sweeps per-node MTBF × checkpoint period under the realistic recovery
policy — torn checkpoints, nested faults, read-back verification with
L1→L2→L4→restart escalation, and requeue with a spare-node pool — and
reports completion probability, expected makespan, the wasted-time
breakdown, and the Young/Daly cross-check per grid point.

Failure rates are accelerated (node MTBF of seconds) so a ~4-second
simulated job experiences failures; the dynamics are the same as
week-long jobs on month-MTBF machines.

Long sweeps should pass ``journal_path=`` so a killed run resumes
without recomputing completed replicas — see
``examples/crash_safe_campaign.py`` for the full kill/chaos/resume tour.

Run:  python examples/resilience_campaign.py        (seconds)
"""

from repro.core.campaign import ResilienceCampaign
from repro.core.fault_injection import RecoveryPolicy


def main() -> None:
    print("== Realistic recovery policy (escalation + requeue) ==")
    policy = RecoveryPolicy(
        verify_fail_prob=0.1,   # read-back verification fails 10% of the time
        max_attempts=4,         # L1 -> L2 -> L4 -> full restart, then requeue
        max_requeues=1,         # one resubmission before the job aborts
        requeue_delay_s=5.0,    # accelerated batch-queue turnaround
        n_spares=2,
    )
    camp = ResilienceCampaign(reps=20, base_seed=0, policy=policy, n_workers=2)
    report = camp.run_grid([2.0, 8.0, 32.0], [5, 10], timesteps=40, level=2)
    print(report.format())

    print("\n== Same sweep, legacy atomic recovery (the Young/Daly regime) ==")
    legacy = ResilienceCampaign(
        reps=20, base_seed=0, policy=RecoveryPolicy.legacy(), n_workers=2
    )
    print(legacy.run_grid([2.0, 8.0, 32.0], [5, 10], timesteps=40).format())

    print("\nYoung/Daly cross-check at the moderate point (mtbf=8, period=5):")
    print(report.points[2].to_dict()["youngdaly"])


if __name__ == "__main__":
    main()
