#!/usr/bin/env python
"""Crash-safe campaign execution: chaos injection, journal, resume.

Runs a resilience sweep while the *harness itself* is under attack —
workers are made to crash, hang and return garbage with the configured
probabilities — and shows that:

* the supervisor retries/rebuilds its way to a complete report,
* every completed replica is durably journaled exactly once,
* the chaos run's report is bit-identical to a calm run's,
* a resumed campaign recomputes nothing, and
* a partial report is available from the journal at any time.

Run:  python examples/crash_safe_campaign.py        (seconds)
"""

import os
import tempfile

from repro.core.campaign import ResilienceCampaign
from repro.core.supervisor import HarnessFaultInjector, RetryPolicy

MTBFS = [8.0, 32.0]
PERIODS = [5]
TIMESTEPS = 20


def main() -> None:
    journal = os.path.join(tempfile.mkdtemp(prefix="repro-wal-"), "wal.jsonl")

    print("== Chaos run: 20% of worker attempts crash or hang ==")
    camp = ResilienceCampaign(
        reps=8,
        base_seed=0,
        n_workers=2,
        retry=RetryPolicy(timeout_s=5.0, max_retries=20, backoff_base_s=0.01),
        journal_path=journal,
        fault_injector=HarnessFaultInjector(
            crash_prob=0.15, hang_prob=0.05, hang_s=60.0, seed=11
        ),
    )
    chaotic = camp.run_grid(MTBFS, PERIODS, timesteps=TIMESTEPS)
    camp.close()
    print(chaotic.format())
    print(f"harness: {camp.harness_stats.summary()}")

    print("\n== Same sweep without chaos — reports must match ==")
    calm = ResilienceCampaign(reps=8, base_seed=0).run_grid(
        MTBFS, PERIODS, timesteps=TIMESTEPS
    )
    print(f"bit-identical to chaos run: {calm.to_json() == chaotic.to_json()}")

    print("\n== Resume: the journal already holds every replica ==")
    resumed = ResilienceCampaign.resume(journal)
    report = resumed.run_grid(MTBFS, PERIODS, timesteps=TIMESTEPS)
    resumed.close()
    print(f"recomputed replicas: {resumed.harness_stats.completed}")
    print(f"bit-identical after resume: {report.to_json() == chaotic.to_json()}")

    print("\n== Partial report straight from the journal ==")
    print(ResilienceCampaign.report_from_journal(journal).format())
    print(f"\njournal: {journal}")


if __name__ == "__main__":
    main()
