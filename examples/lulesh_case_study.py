#!/usr/bin/env python
"""The paper's case study, end to end (Section IV, condensed).

1. Model Development: benchmark LULESH+FTI kernels on the virtual
   Quartz over the Table II grid, fit symbolic-regression models, and
   validate them (Table III).
2. Co-Design: full-system 200-timestep simulations under the three FT
   scenarios at 64 ranks, validated against measured runs (Fig. 7), plus
   the instance-model scaling view (Figs. 5-6).

Run:  python examples/lulesh_case_study.py        (~1 minute)
"""

from repro.exps.casestudy import get_context
from repro.exps.fig5_6 import format_fig5, format_fig6, instance_scaling
from repro.exps.table3 import format_table3, instance_model_mape
from repro.exps.fig7_8 import format_fig7_8, full_system_curves


def main() -> None:
    print("== Model Development: benchmarking + symbolic regression ==")
    ctx = get_context(seed=0)
    for kernel, fitted in ctx.dev.fitted.items():
        print(f"  {kernel}: {fitted.model.expression}")

    print("\n== Table III: instance-model validation ==")
    print(format_table3(instance_model_mape(ctx)))

    print("\n== Figs. 5-6: scaling validation + prediction ==")
    rows = instance_scaling(ctx)
    print(format_fig5(rows))
    print()
    print(format_fig6(rows))

    print("\n== Fig. 7: full-system simulation, 64 ranks ==")
    curves = full_system_curves(64, ctx=ctx, reps=5)
    print(format_fig7_8(curves))
    l1 = next(c for c in curves if c.scenario == "l1")
    marks = ", ".join(f"{t:.2f}s" for t, _ in l1.checkpoint_marks)
    print(f"L1 checkpoint instants (the figure's black dots): {marks}")


if __name__ == "__main__":
    main()
