#!/usr/bin/env python
"""Self-healing simulation: snapshot/restore, replay oracle, failover.

Demonstrates (and asserts) the three recovery guarantees the simulator
makes, using a fault-injected application run plus a parallel DES ring:

* **kill/restore** — a run killed mid-flight resumes from its newest
  on-disk snapshot and finishes *bit-identical* to an uninterrupted run;
* **deterministic replay** — the event journal written across the
  kill/restore replays against a fresh engine with zero divergences;
* **partition failover** — simulated rank failures in the parallel
  engine roll back to window-boundary snapshots (migrating the dead
  partition's components), and the committed trace still matches the
  sequential reference exactly.

Every printed line is deterministic: CI runs this script twice (plus the
internal kill/restore leg) and diffs the outputs byte-for-byte.

Run:  python examples/self_healing_sim.py        (seconds)
"""

import tempfile

from repro.core import (
    AppBEO,
    ArchBEO,
    BESSTSimulator,
    Checkpoint,
    Collective,
    Compute,
    FaultInjector,
    FaultModel,
    scenario_l1,
)
from repro.des import (
    Component,
    Engine,
    EventJournal,
    ParallelEngine,
    SimulationError,
    replay_and_diff,
    trace_digest,
)
from repro.des.link import connect
from repro.des.snapshot import SnapshotStore
from repro.models import ConstantModel
from repro.network import FullyConnected


# -- workload (module-level classes: snapshots pickle the whole simulator) ----


class SPMDProgram:
    def __init__(self, n_steps, scenario):
        self.n_steps = n_steps
        self.scenario = scenario

    def __call__(self, rank, nranks, params):
        body = []
        for ts in range(1, self.n_steps + 1):
            body.append(Compute.of("k"))
            body.append(Collective("allreduce", nbytes=8))
            for level in self.scenario.checkpoints_due(ts):
                body.append(Checkpoint.of(level, "ckpt"))
        return body


def make_sim(seed=3):
    arch = ArchBEO("m", topology=FullyConnected(8), cores_per_node=2)
    arch.bind("k", ConstantModel(0.1))
    arch.bind("ckpt", ConstantModel(0.05))
    arch.recovery_time_s = 0.2
    injector = FaultInjector(
        FaultModel(node_mtbf_s=3.0, software_fraction=1.0), nnodes=4, seed=seed
    )
    app = AppBEO("demo_l1", SPMDProgram(40, scenario_l1(5)))
    return BESSTSimulator(
        app, arch, nranks=8, seed=seed, fault_injector=injector,
        monte_carlo=False,
    )


def result_line(res):
    return (
        f"makespan={res.total_time:.6f} events={res.events_fired} "
        f"faults={res.faults_injected} rollbacks={res.rollbacks} "
        f"waste={res.wasted_time:.6f}"
    )


class RingNode(Component):
    def __init__(self, name, laps):
        super().__init__(name)
        self.laps = laps
        self.visits = 0

    def handle_event(self, port_name, payload, time):
        self.visits += 1
        lap = payload["lap"]
        if port_name == "prev":
            if self.name.endswith("_0"):
                lap += 1
            if lap < self.laps:
                self.send("next", {"lap": lap})


class Starter(Component):
    def setup(self):
        self.schedule(0.0, self._go)

    def _go(self, ev):
        self.engine.components["n_0"].send("next", {"lap": 0})

    def handle_event(self, port_name, payload, time):  # pragma: no cover
        pass


def build_ring(engine, n=8, laps=5, latency=0.5):
    nodes = [engine.register(RingNode(f"n_{i}", laps)) for i in range(n)]
    for i in range(n):
        connect(nodes[i], "next", nodes[(i + 1) % n], "prev", latency=latency)
    engine.register(Starter("zz_start"))


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-selfheal-")

    print("== 1. Reference run (uninterrupted, faults active) ==")
    ref = make_sim().run()
    print(result_line(ref))

    print("\n== 2. Kill mid-run, restore from snapshot, continue ==")
    snap_dir = f"{workdir}/snaps"
    victim = make_sim()
    victim.enable_snapshots(snap_dir, every_events=50)
    try:
        victim.run(max_events=ref.events_fired // 2)
    except SimulationError:
        pass  # the "kill": budget trips mid-simulation
    latest = SnapshotStore(snap_dir).latest()
    resumed = BESSTSimulator.restore(latest).run()
    print(result_line(resumed))
    identical = result_line(resumed) == result_line(ref)
    print(f"bit-identical after restore: {identical}")
    assert identical, "restored run diverged from the reference"

    print("\n== 3. Replay oracle over a kill/restore journal ==")
    journal_path = f"{workdir}/ring.jsonl"

    def fresh_ring():
        eng = Engine(seed=3, trace=True)
        build_ring(eng)
        return eng

    eng = fresh_ring()
    with EventJournal(journal_path, fresh=True) as journal:
        eng.attach_journal(journal)
        try:
            eng.run(max_events=40)
        except SimulationError:
            pass
        snap = eng.snapshot()
    restored = Engine.restore(snap)
    with EventJournal(journal_path) as journal:  # reopen for append
        restored.attach_journal(journal)
        restored.run()
    report = replay_and_diff(fresh_ring, journal_path)
    print(report.summary())
    assert report.identical, "journal replay diverged"

    print("\n== 4. Partition failover: 3 rank failures, migration on ==")
    seq = Engine(seed=3, trace=True)
    build_ring(seq)
    seq.run()

    par = ParallelEngine(nparts=4, seed=3, trace=True)
    build_ring(par)
    failover = par.enable_failover(
        FaultModel(node_mtbf_s=8.0), seed=5, migrate=True, max_failures=4
    )
    par.run()
    print(
        f"failures={failover.failures_injected} "
        f"restores={failover.restores} migrations={failover.migrations}"
    )
    match = trace_digest(par) == trace_digest(seq)
    print(f"trace identical to sequential: {match}")
    assert match, "failover trace diverged from the sequential reference"

    print(f"\ndigest {trace_digest(seq)}")
    print("self-healing demo ok")


if __name__ == "__main__":
    main()
