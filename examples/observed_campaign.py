#!/usr/bin/env python
"""Observability: one campaign, one merged timeline, three exporters.

Runs a small resilience sweep across *worker processes* with the full
:mod:`repro.obs` stack attached and shows that:

* the metrics registry streams JSONL snapshots while the campaign runs,
* the final Prometheus snapshot survives a strict text-format parse,
* the Chrome trace holds campaign, supervisor-task, replica and
  ``engine.run`` spans from three layers (and two processes) with an
  intact parent/child chain — load it in https://ui.perfetto.dev,
* a single observed :class:`BESSTSimulator` run can merge its obs spans
  into the simulated-time trace with :func:`merge_obs_spans`.

Run:  python examples/observed_campaign.py        (seconds)
"""

import json
import os
import tempfile

from repro.core.campaign import ResilienceCampaign
from repro.core.trace import merge_obs_spans, to_chrome_trace
from repro.obs import (
    CampaignObs,
    EngineObs,
    ObsOptions,
    Tracer,
    parse_prometheus_text,
    summarize_metrics,
)

MTBFS = [8.0, 32.0]
PERIODS = [5]
TIMESTEPS = 10


def observed_campaign(outdir: str) -> None:
    opts = ObsOptions(
        metrics_out=os.path.join(outdir, "metrics.jsonl"),
        metrics_interval_s=0.2,
        prom_out=os.path.join(outdir, "metrics.prom"),
        trace_out=os.path.join(outdir, "campaign_trace.json"),
        heartbeat_s=0.5,
    )
    camp = ResilienceCampaign(
        reps=3, base_seed=0, n_workers=2, obs=CampaignObs(opts)
    )
    try:
        report = camp.run_grid(MTBFS, PERIODS, timesteps=TIMESTEPS)
    finally:
        camp.close()
    print(report.format())

    # -- the Prometheus snapshot is strictly valid ---------------------------
    families = parse_prometheus_text(
        open(opts.prom_out, encoding="utf-8").read()
    )
    assert "engine_events_total" in families
    assert "supervisor_tasks_completed_total" in families
    print(f"prometheus: {len(families)} families, strict parse OK")

    # -- the JSONL stream summarizes -----------------------------------------
    print(summarize_metrics(opts.metrics_out).splitlines()[0])

    # -- the trace holds all three layers with a consistent parent chain -----
    trace = json.load(open(opts.trace_out, encoding="utf-8"))
    spans = {
        e["args"]["span_id"]: e
        for e in trace["traceEvents"]
        if "span_id" in e.get("args", {})
    }
    names = {e["name"] for e in spans.values()}
    assert "campaign" in names and "replica" in names and "engine.run" in names
    assert any(n.startswith("task:") for n in names)
    for ev in spans.values():
        parent = ev["args"]["parent_id"]
        assert parent is None or parent in spans, f"dangling parent {parent}"
    pids = {e["pid"] for e in spans.values()}
    layers = sorted({n.split(":")[0] for n in names})
    print(
        f"trace: {len(spans)} spans across {len(pids)} processes, "
        f"layers {layers}, parent chain intact"
    )
    print(f"open in Perfetto: {opts.trace_out}")


def observed_single_run(outdir: str) -> None:
    """Merge obs spans into a simulated-time trace for one run."""
    from repro.core import ArchBEO, BESSTSimulator
    from repro.core.ft import scenario_l1
    from repro.models import CallableModel
    from repro.network import TwoStageFatTree
    from repro.apps import iterative_solver_appbeo

    arch = ArchBEO(
        name="toy-cluster",
        topology=TwoStageFatTree(64, nodes_per_edge=16, uplinks_per_edge=8),
        cores_per_node=2,
    )
    arch.bind("solve", CallableModel(lambda p: 2e-6 * p["n"], ("n",)))
    arch.bind("fti_l1", CallableModel(lambda p: 1e-3 + 4e-8 * p["n"] * 8, ("n",)))
    app = iterative_solver_appbeo(iterations=100, scenario=scenario_l1(period=20))

    tracer = Tracer()
    sim = BESSTSimulator(app, arch, nranks=8, params={"n": 50_000}, seed=0)
    obs = EngineObs(tracer=tracer)
    sim.engine.attach_obs(obs)
    result = sim.run()

    trace = merge_obs_spans(to_chrome_trace(result), tracer.finished_spans())
    path = os.path.join(outdir, "merged_trace.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh)
    obs_rows = [e for e in trace["traceEvents"] if e.get("cat") == "obs"]
    util = obs.utilization.report(horizon=max(result.total_time, 1e-9))
    print(
        f"single run: total={result.total_time:.3f}s, merged trace has "
        f"{len(obs_rows)} obs span(s) alongside the rank timeline -> {path}"
    )
    print(f"engine-fed utilization tracker saw {len(util)} component(s)")


def main() -> None:
    outdir = tempfile.mkdtemp(prefix="repro-obs-")
    print("== Observed multi-worker campaign ==")
    observed_campaign(outdir)
    print("\n== Observed single simulation, merged trace ==")
    observed_single_run(outdir)


if __name__ == "__main__":
    main()
