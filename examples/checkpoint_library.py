#!/usr/bin/env python
"""The FTI checkpoint library with a real application (Table I, live).

Runs the mini-LULESH hydro solver, checkpoints its actual state through
all four FTI levels, kills nodes, and recovers — demonstrating each
level's protection domain from Table I:

* L1 survives application crashes but not node loss,
* L2 survives node losses while a partner copy lives,
* L3 (Reed-Solomon across the group) survives up to half a group,
* L4 (parallel file system) survives everything.

Run:  python examples/checkpoint_library.py
"""

from repro.apps import MiniLulesh
from repro.fti import FTI, CheckpointLevel, FTIConfig, RecoveryError


def main() -> None:
    nranks = 16
    cfg = FTIConfig(group_size=4, node_size=2, partner_copies=2)
    fti = FTI(nranks, cfg)
    print(f"layout: {fti.layout}")

    # run one real solver instance per rank for a few cycles
    solvers = {r: MiniLulesh(epr=6) for r in range(nranks)}
    for s in solvers.values():
        s.run(5)

    print("\ncheckpointing real solver state at every level:")
    blobs = {r: s.serialize() for r, s in solvers.items()}
    for level in CheckpointLevel:
        receipt = fti.checkpoint(blobs, level)
        print(
            f"  L{level.value}: local={receipt.bytes_local:>8d}B "
            f"partner={receipt.bytes_partner:>8d}B "
            f"rs={receipt.bytes_encoded:>8d}B pfs={receipt.bytes_pfs:>8d}B"
            f"   ({level.describe()})"
        )

    print("\nkilling nodes 0 and 2 (half of group 0)...")
    fti.fail_nodes([0, 2])
    for level in CheckpointLevel:
        ok = fti.can_recover(level)
        print(f"  L{level.value} recoverable: {ok}")

    level, restored = fti.recover_any()
    print(f"\nrecovered from L{level.value}; resuming the solvers...")
    resumed = {r: MiniLulesh.deserialize(b) for r, b in restored.items()}
    ref = solvers[0]
    got = resumed[0]
    assert got.cycles == ref.cycles and got.t == ref.t
    got.run(5)
    print(
        f"rank 0 resumed from cycle {ref.cycles} and reached cycle "
        f"{got.cycles}, t={got.t:.4f} (energy max {got.e.max():.4f})"
    )

    print("\nkilling 3 of 4 nodes in group 0 (beyond every local level)...")
    fti.repair_nodes([0, 2])
    fti.checkpoint(blobs, CheckpointLevel.L3)
    fti.fail_nodes([0, 1, 2])
    for level in (1, 2, 3):
        try:
            fti.recover(level)
            print(f"  L{level} unexpectedly recovered")
        except RecoveryError as exc:
            print(f"  L{level} failed as expected: {exc}")
    print("  L4 still works:", fti.can_recover(4))


if __name__ == "__main__":
    main()
