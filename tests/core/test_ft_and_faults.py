"""FT scenarios and fault injection (Cases 1-4 of Fig. 4)."""

import numpy as np
import pytest

from repro.core import (
    AppBEO,
    ArchBEO,
    BESSTSimulator,
    Checkpoint,
    Collective,
    Compute,
    FaultInjector,
    FaultModel,
    NO_FT,
    scenario_l1,
    scenario_l1_l2,
)
from repro.core.ft import FTScenario, scenario_levels
from repro.models import ConstantModel
from repro.network import FullyConnected


# -- FTScenario ----------------------------------------------------------------


def test_no_ft_scenario():
    assert not NO_FT.is_ft_aware
    assert NO_FT.checkpoints_due(40) == []
    assert NO_FT.checkpoint_count(200, 1) == 0


def test_scenario_l1_periodic():
    s = scenario_l1(40)
    assert s.is_ft_aware
    assert s.checkpoints_due(40) == [1]
    assert s.checkpoints_due(39) == []
    assert s.checkpoint_count(200, 1) == 5
    assert s.checkpoint_count(200, 2) == 0


def test_scenario_l1_l2():
    s = scenario_l1_l2(40)
    assert s.checkpoints_due(80) == [1, 2]
    assert s.checkpoint_count(200, 2) == 5
    assert s.kernel_for(2) == "fti_l2"


def test_scenario_levels_builder():
    s = scenario_levels([3, 4], period=10)
    assert s.name == "l3+l4"
    assert s.checkpoints_due(10) == [3, 4]
    assert scenario_levels([]).name == "no_ft"


def test_scenario_validation():
    with pytest.raises(ValueError):
        FTScenario("bad", ((5, 10),))
    with pytest.raises(ValueError):
        FTScenario("bad", ((1, 0),))
    with pytest.raises(ValueError):
        scenario_l1(40).checkpoints_due(0)


# -- FaultModel ------------------------------------------------------------------


def test_fault_model_validation():
    with pytest.raises(ValueError):
        FaultModel(node_mtbf_s=0)
    with pytest.raises(ValueError):
        FaultModel(node_mtbf_s=1, distribution="uniform")
    with pytest.raises(ValueError):
        FaultModel(node_mtbf_s=1, weibull_shape=0)


def test_system_mtbf_scales_inversely():
    m = FaultModel(node_mtbf_s=1000.0)
    assert m.system_mtbf(1) == 1000.0
    assert m.system_mtbf(10) == 100.0
    with pytest.raises(ValueError):
        m.system_mtbf(0)


@pytest.mark.parametrize("dist", ["exponential", "weibull"])
def test_interarrival_mean_matches_mtbf(dist):
    m = FaultModel(node_mtbf_s=50.0, distribution=dist)
    rng = np.random.default_rng(0)
    draws = [m.draw_interarrival(rng, nnodes=5) for _ in range(4000)]
    assert np.mean(draws) == pytest.approx(10.0, rel=0.1)


# -- fault injection into the simulator ----------------------------------------------


def ft_app(n_steps=20, scenario=NO_FT):
    def builder(rank, nranks, params):
        body = []
        for ts in range(1, n_steps + 1):
            body.append(Compute.of("k"))
            body.append(Collective("allreduce", nbytes=8))
            for level in scenario.checkpoints_due(ts):
                body.append(Checkpoint.of(level, "ckpt"))
        return body

    return AppBEO(f"ft_{scenario.name}", builder)


def make_arch():
    arch = ArchBEO("m", topology=FullyConnected(8), cores_per_node=2)
    arch.bind("k", ConstantModel(0.1))
    arch.bind("ckpt", ConstantModel(0.05))
    arch.recovery_time_s = 0.2
    return arch


def run_with_faults(scenario, mtbf, seed=0, n_steps=20):
    # classic Case-2/4 semantics: every fault is recoverable from the
    # last checkpoint (software crash); level-aware node-loss mixes are
    # exercised by the extension and lifecycle tests
    arch = make_arch()
    fi = FaultInjector(
        FaultModel(node_mtbf_s=mtbf, software_fraction=1.0), nnodes=4, seed=seed
    )
    sim = BESSTSimulator(
        ft_app(n_steps, scenario),
        arch,
        nranks=8,
        seed=seed,
        fault_injector=fi,
        monte_carlo=False,
    )
    return sim.run(max_events=5_000_000), fi


def run_clean(scenario, n_steps=20):
    return BESSTSimulator(
        ft_app(n_steps, scenario), make_arch(), nranks=8, monte_carlo=False
    ).run()


def test_case1_no_faults_baseline():
    res = run_clean(NO_FT)
    assert res.faults_injected == 0
    assert res.rollbacks == 0


def test_case3_ft_overhead_only():
    base = run_clean(NO_FT).total_time
    ft = run_clean(scenario_l1(5))
    assert ft.total_time > base
    assert ft.checkpoint_time == pytest.approx(4 * 0.05)


def test_case2_faults_without_ft_restart_from_scratch():
    # MTBF chosen so ~1-2 failures hit a ~2.2s job
    res, fi = run_with_faults(NO_FT, mtbf=8.0, seed=3)
    if res.faults_injected:
        assert res.rollbacks == res.faults_injected
        # without checkpoints the whole run restarts: wasted >= progress lost
        assert res.wasted_time > 0
        base = run_clean(NO_FT).total_time
        assert res.total_time > base


def test_case4_ft_bounds_damage():
    # force determinism: pick a seed that actually injects faults
    for seed in range(20):
        res2, _ = run_with_faults(NO_FT, mtbf=6.0, seed=seed, n_steps=30)
        res4, _ = run_with_faults(scenario_l1(5), mtbf=6.0, seed=seed, n_steps=30)
        if res2.faults_injected >= 2 and res4.faults_injected >= 2:
            # with checkpoints, rollbacks lose at most a period + overhead
            assert res4.wasted_time < res2.wasted_time
            return
    pytest.skip("no seed produced >=2 faults in both cases")


def test_fault_injector_detaches_after_completion():
    res, fi = run_with_faults(NO_FT, mtbf=1e9, seed=0)
    assert res.faults_injected == 0
    assert fi._pending is None or fi._pending.cancelled


def test_fault_injector_attach_once():
    fi = FaultInjector(FaultModel(node_mtbf_s=10), nnodes=2)
    BESSTSimulator(
        ft_app(1), make_arch(), nranks=8, fault_injector=fi
    )
    # attaching while attached is still an error...
    with pytest.raises(RuntimeError):
        BESSTSimulator(ft_app(1), make_arch(), nranks=8, fault_injector=fi)
    # ...but detach() releases the binding for reuse
    fi.detach()
    assert fi.sim is None
    BESSTSimulator(ft_app(1), make_arch(), nranks=8, fault_injector=fi)


def test_fault_injector_reset_rebuilds_replicas():
    """One injector, reset per replica, reproduces a fresh injector's
    exact failure stream — the Monte-Carlo reuse pattern."""
    def run_once(fi):
        sim = BESSTSimulator(
            ft_app(20, scenario_l1(5)), make_arch(), nranks=8,
            fault_injector=fi, monte_carlo=False,
        )
        return sim.run(max_events=5_000_000)

    fresh = [
        run_once(FaultInjector(FaultModel(node_mtbf_s=4.0), nnodes=4, seed=s))
        for s in (3, 4)
    ]
    reused = FaultInjector(FaultModel(node_mtbf_s=4.0), nnodes=4, seed=3)
    got = []
    for s in (3, 4):
        reused.reset(seed=s)
        got.append(run_once(reused))
    for a, b in zip(fresh, got):
        assert a.total_time == b.total_time
        assert a.faults_injected == b.faults_injected
        assert a.rollbacks == b.rollbacks


def test_fault_injector_validation():
    with pytest.raises(ValueError):
        FaultInjector(FaultModel(node_mtbf_s=1), nnodes=0)


def test_rollback_restores_consistency():
    """After a mid-run fault, the run still completes all timesteps and
    rank finish times stay synchronized."""
    res, _ = run_with_faults(scenario_l1(5), mtbf=5.0, seed=7, n_steps=30)
    assert max(res.finish_times) - min(res.finish_times) < 1e-9
    # the last timestep's allreduce must have executed for every rank
    assert res.total_time > 30 * 0.1


def test_fault_log_records_times():
    res, fi = run_with_faults(NO_FT, mtbf=4.0, seed=11)
    assert fi.log.count() == res.faults_injected
    times = fi.log.times()
    assert times == sorted(times)
