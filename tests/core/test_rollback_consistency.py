"""Coordinated rollback correctness under adversarial fault timing.

The subtle failure mode: a fault arriving while some ranks have committed
checkpoint N and others are still writing it must roll everyone back to
the last *globally committed* checkpoint, or collectives deadlock.
"""

import pytest

from repro.core import (
    AppBEO,
    ArchBEO,
    BESSTSimulator,
    Checkpoint,
    Collective,
    Compute,
)
from repro.models import CallableModel, ConstantModel
from repro.network import FullyConnected


def make_arch(recovery=0.1):
    arch = ArchBEO("m", topology=FullyConnected(8), cores_per_node=2)
    # rank-dependent compute time so checkpoint completions are staggered
    arch.bind("k", CallableModel(lambda p: 0.1 + 0.05 * p.get("rank", 0), ()))
    arch.bind("ckpt", ConstantModel(0.2))
    arch.recovery_time_s = recovery
    return arch


def staggered_app(n_steps=6, period=2):
    def builder(rank, nranks, params):
        body = []
        for ts in range(1, n_steps + 1):
            body.append(Compute.of("k", rank=rank))
            if ts % period == 0:
                body.append(Checkpoint.of(1, "ckpt"))
            body.append(Collective("allreduce", nbytes=8))
        return body

    return AppBEO("staggered", builder)


def inject_at(sim, t):
    sim.engine.schedule(t, lambda ev: sim.inject_fault(0))


@pytest.mark.parametrize("fault_time", [0.05, 0.31, 0.45, 0.62, 0.95, 1.4])
def test_fault_at_any_instant_completes(fault_time):
    """Whenever the fault lands — mid-compute, mid-checkpoint, while some
    ranks wait at a collective — the run completes consistently."""
    sim = BESSTSimulator(
        staggered_app(), make_arch(), nranks=4, monte_carlo=False
    )
    inject_at(sim, fault_time)
    res = sim.run(max_events=200_000)
    assert res.rollbacks == 1
    assert max(res.finish_times) - min(res.finish_times) < 1e-9
    clean = BESSTSimulator(
        staggered_app(), make_arch(), nranks=4, monte_carlo=False
    ).run()
    assert res.total_time > clean.total_time  # rollback cost is visible


def test_rollback_targets_globally_committed_checkpoint():
    """Fault lands when rank 0 finished ckpt 1 but rank 3 (slower) has
    not: everyone must restart from checkpoint 0 (the beginning)."""
    sim = BESSTSimulator(
        staggered_app(n_steps=2, period=1), make_arch(), nranks=4,
        monte_carlo=False,
    )
    # rank 0's first checkpoint completes at 0.1 + 0.2 = 0.3; rank 3's at
    # 0.25 + 0.2 = 0.45. Fire in between.
    inject_at(sim, 0.35)
    res = sim.run(max_events=200_000)
    assert res.rollbacks == 1
    # wasted time reflects restarting from t~0, not from rank 0's ckpt
    assert res.wasted_time > 0.3


def test_rollback_to_common_checkpoint_when_all_committed():
    sim = BESSTSimulator(
        staggered_app(n_steps=4, period=1), make_arch(), nranks=4,
        monte_carlo=False,
    )
    # All ranks commit checkpoint 1 by t=0.45; allreduce releases later.
    # Fire well after, mid-second-timestep.
    inject_at(sim, 0.6)
    res = sim.run(max_events=200_000)
    assert res.rollbacks == 1
    # progress from the first checkpoint was preserved: wasted time is
    # bounded by (fault time - earliest commit) + downtime + read-back
    assert res.wasted_time < 0.6


def test_two_faults_back_to_back():
    sim = BESSTSimulator(
        staggered_app(n_steps=6, period=2), make_arch(), nranks=4,
        monte_carlo=False,
    )
    inject_at(sim, 0.5)
    inject_at(sim, 0.55)  # second fault lands during recovery
    res = sim.run(max_events=200_000)
    assert res.rollbacks == 2
    assert max(res.finish_times) - min(res.finish_times) < 1e-9


def test_fault_after_completion_is_ignored():
    sim = BESSTSimulator(
        staggered_app(n_steps=2, period=2), make_arch(), nranks=4,
        monte_carlo=False,
    )
    clean_total = BESSTSimulator(
        staggered_app(n_steps=2, period=2), make_arch(), nranks=4,
        monte_carlo=False,
    ).run().total_time
    inject_at(sim, clean_total + 1.0)
    res = sim.run(max_events=200_000)
    assert res.rollbacks == 0
    assert res.total_time == pytest.approx(clean_total)
