"""Fault forensics: causal chains, waste attribution, analytical checks."""

import json
import os

import pytest

from repro.core.campaign import (
    CampaignJournal,
    CampaignSpec,
    ResilienceCampaign,
    build_campaign_simulator,
)
from repro.core.fault_injection import FAULT_ROW_FIELDS, RecoveryPolicy
from repro.core.forensics import (
    analyze_journal,
    attribute_replica,
    chain_trace_events,
    fault_rows,
    format_analysis,
    reconstruct_chains,
    worst_fault_trace,
)

MIX = {
    "software": 0.3,
    "node": 0.2,
    "sdc": 0.2,
    "straggler": 0.1,
    "burst": 0.1,
    "link": 0.1,
}


def _mixed_spec(**over):
    kw = dict(
        node_mtbf_s=8.0,
        ckpt_period=5,
        timesteps=40,
        fault_mix=tuple(sorted(MIX.items())),
        verify_period=5,
        net_repair_s=1.0,
    )
    kw.update(over)
    return CampaignSpec(**kw)


def _replica_result(spec, seed):
    """One worker-shaped replica record (what the journal stores)."""
    from repro.core.campaign import _run_replica

    return _run_replica((spec, RecoveryPolicy(), seed))


# -- per-replica attribution ------------------------------------------------------


def test_attribution_reconciles_exactly():
    """Every waste charge flows through an episode, so attributed waste
    equals measured waste bit-for-bit — not just within tolerance."""
    for seed in range(6):
        r = _replica_result(_mixed_spec(), seed)
        a = attribute_replica(r)
        assert a["attributed_waste_s"] == pytest.approx(
            a["measured_waste_s"], abs=1e-12
        )
        assert a["coverage"] == pytest.approx(1.0)


def test_chains_join_fault_log_by_id():
    r = _replica_result(_mixed_spec(), 1)
    rows = fault_rows(r)
    assert [row["id"] for row in rows] == list(range(len(r["fault_log"])))
    assert list(rows[0]) == list(FAULT_ROW_FIELDS) + ["id"]
    chains = reconstruct_chains(r)
    assert [c.fault_id for c in chains] == [row["id"] for row in rows]
    for c, row in zip(chains, rows):
        assert c.kind == row["kind"]
        assert c.t_inject == row["time"]
    # every episode's primary fault owns it; others only contribute
    owners = [c for c in chains if c.episode is not None]
    contributors = [c for c in chains if c.contributes_to is not None]
    for c in owners:
        assert c.episode["faults"][0] == c.fault_id
    for c in contributors:
        assert c.episode is None


def test_straggler_excess_split_across_node_stragglers():
    spec = _mixed_spec(
        node_mtbf_s=4.0, fault_mix=(("straggler", 1.0),), verify_period=0
    )
    r = _replica_result(spec, 0)
    a = attribute_replica(r)
    chains = reconstruct_chains(r)
    strag_total = sum(
        c.waste.get("straggler_s", 0.0) for c in chains if c.kind == "straggler"
    )
    assert strag_total == pytest.approx(a["straggler_excess_s"])


def test_legacy_journal_without_forensics_key_is_tolerated():
    r = _replica_result(_mixed_spec(), 2)
    del r["forensics"]
    a = attribute_replica(r)
    assert a["attributed_waste_s"] == 0.0
    assert a["episodes"] == 0
    assert reconstruct_chains(r)  # chains still come from the fault log


# -- campaign-level analysis ------------------------------------------------------


@pytest.fixture(scope="module")
def mixed_campaign(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("forensics")
    journal = str(tmp / "wal.jsonl")
    flight_dir = str(tmp / "flight")
    camp = ResilienceCampaign(
        reps=6, base_seed=0, journal_path=journal, flight_dir=flight_dir
    )
    try:
        report = camp.run_grid(
            [8.0], [5], timesteps=40, fault_mix=MIX, verify_period=5,
            net_repair_s=1.0,
        )
    finally:
        camp.close()
    return journal, flight_dir, report


def test_analyze_mixed_campaign_covers_95_percent(mixed_campaign):
    journal, flight_dir, _ = mixed_campaign
    analysis = analyze_journal(journal, flight_dir=flight_dir)
    assert analysis["totals"]["measured_waste_s"] > 0
    assert analysis["totals"]["coverage"] >= 0.95
    (point,) = analysis["points"]
    assert point["coverage"] >= 0.95
    assert point["episodes"] > 0
    # the mixed taxonomy shows up in the per-kind breakdown
    assert set(point["per_kind"]) & {"software", "node", "sdc", "burst"}
    # all six replicas dumped flight data
    assert analysis["flight"]["dumps"] == 6
    assert analysis["flight"]["by_reason"].get("completed", 0) >= 1


def test_analyze_ranks_top_faults_by_waste(mixed_campaign):
    journal, _, _ = mixed_campaign
    analysis = analyze_journal(journal, top_k=3)
    top = analysis["top_faults"]
    assert 0 < len(top) <= 3
    wastes = [f["total_waste_s"] for f in top]
    assert wastes == sorted(wastes, reverse=True)
    assert all(f["kind"] in MIX or f["episode_kind"] in MIX for f in top)


def test_worst_fault_trace_export(mixed_campaign):
    journal, _, _ = mixed_campaign
    analysis = analyze_journal(journal, top_k=1)
    trace = worst_fault_trace(analysis)
    events = trace["traceEvents"]
    assert events[0]["ph"] == "i"  # injection marker
    spans = [e for e in events if e["ph"] == "X"]
    assert spans, "episode phases must become duration events"
    assert all(e["dur"] >= 0 for e in spans)
    # phase events tile the episode: starts are monotonic
    starts = [e["ts"] for e in spans]
    assert starts == sorted(starts)
    assert chain_trace_events(analysis["top_faults"][0])  # direct API too


def test_format_analysis_mentions_key_facts(mixed_campaign):
    journal, flight_dir, _ = mixed_campaign
    analysis = analyze_journal(journal, flight_dir=flight_dir)
    text = format_analysis(analysis)
    assert "coverage" in text
    assert "young/daly" in text
    assert "top" in text
    assert "flight dumps: 6" in text


def test_youngdaly_failstop_attribution_within_50_percent():
    """Fail-stop-only campaign under the legacy policy (the regime the
    Young/Daly model prices): the forensics fail-stop attribution must
    land within +-50% of ``expected_waste``."""
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        journal = os.path.join(tmp, "wal.jsonl")
        camp = ResilienceCampaign(
            reps=25,
            base_seed=0,
            policy=RecoveryPolicy.legacy(),
            journal_path=journal,
        )
        try:
            camp.run_point(
                CampaignSpec(node_mtbf_s=16.0, ckpt_period=5, timesteps=40)
            )
        finally:
            camp.close()
        analysis = analyze_journal(journal)
    (point,) = analysis["points"]
    yd = point["youngdaly"]
    assert yd["ratio"] is not None
    assert 0.5 <= yd["ratio"] <= 1.5
    # fail-stop-only mix: attributed == fail-stop attributed == measured
    assert point["coverage"] == pytest.approx(1.0)


def test_two_error_block_present_only_with_abft_and_sdc(mixed_campaign):
    journal, _, _ = mixed_campaign
    analysis = analyze_journal(journal)
    (point,) = analysis["points"]
    assert point["two_error"] is not None
    assert point["two_error"]["predicted_fraction"] > 0


def test_outlier_detection_flags_aborts():
    """A spare-exhausting burst campaign produces aborted replicas; each
    must be flagged as an outlier."""
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        journal = os.path.join(tmp, "wal.jsonl")
        camp = ResilienceCampaign(reps=6, base_seed=0, journal_path=journal)
        try:
            camp.run_point(
                CampaignSpec(
                    node_mtbf_s=2.0,
                    ckpt_period=5,
                    timesteps=40,
                    fault_mix=(("burst", 1.0),),
                    burst_size=3,
                )
            )
        finally:
            camp.close()
        analysis = analyze_journal(journal)
    (point,) = analysis["points"]
    if point["aborted"]:
        flagged = {
            o["replica"]: o["reasons"] for o in point["outliers"]
        }
        aborted_flagged = [
            r for r, reasons in flagged.items() if "aborted" in reasons
        ]
        assert len(aborted_flagged) == point["aborted"]


# -- bit-identicality -------------------------------------------------------------


def test_report_and_journal_bit_identical_with_flight_on(tmp_path):
    """The flight recorder and forensics layer must not perturb results:
    reports and journals are byte-identical with and without them."""

    def run(flight):
        sub = tmp_path / ("on" if flight else "off")
        sub.mkdir()
        journal = str(sub / "wal.jsonl")
        camp = ResilienceCampaign(
            reps=3,
            base_seed=0,
            journal_path=journal,
            flight_dir=str(sub / "flight") if flight else None,
        )
        try:
            report = camp.run_grid(
                [8.0], [5], timesteps=30, fault_mix=MIX, verify_period=5,
                net_repair_s=1.0,
            )
        finally:
            camp.close()
        with open(journal, "rb") as fh:
            return report.to_json(), fh.read()

    report_off, journal_off = run(flight=False)
    report_on, journal_on = run(flight=True)
    assert report_on == report_off
    assert journal_on == journal_off


# -- error handling ---------------------------------------------------------------


def test_analyze_missing_journal_raises():
    with pytest.raises(FileNotFoundError):
        analyze_journal("/nonexistent/journal.jsonl")


def test_analyze_ingests_harness_failure_log(tmp_path):
    flight_dir = tmp_path / "flight"
    flight_dir.mkdir()
    log = flight_dir / "harness-failures.jsonl"
    rows = [
        {"t_wall": 1.0, "key": "abc:0", "kind": "crash", "attempt": 0, "detail": ""},
        {"t_wall": 2.0, "key": "abc:0", "kind": "poisoned", "attempt": 5, "detail": ""},
    ]
    with open(log, "w") as fh:
        for row in rows:
            fh.write(json.dumps(row) + "\n")
        fh.write('{"torn')  # torn tail must be skipped
    from repro.core.forensics import _load_harness_log

    summary = _load_harness_log(str(log))
    assert summary["failures"] == 2
    assert summary["by_kind"] == {"crash": 1, "poisoned": 1}
    assert summary["quarantined"] == ["abc:0"]
