"""BE-SST simulator semantics: execution, synchronization, Monte Carlo."""

import numpy as np
import pytest

from repro.core import (
    AppBEO,
    ArchBEO,
    BESSTSimulator,
    Checkpoint,
    Collective,
    Compute,
    Exchange,
    Marker,
    MonteCarloRunner,
)
from repro.core.montecarlo import Distribution
from repro.models import CallableModel, ConstantModel
from repro.network import FullyConnected


def make_arch(compute=0.1, ckpt=0.5, stochastic=False):
    arch = ArchBEO("m", topology=FullyConnected(64), cores_per_node=2)
    if stochastic:
        arch.bind(
            "k",
            CallableModel(
                lambda p, rng: compute * (1 + (0.1 * rng.random() if rng else 0)),
                (),
                stochastic=True,
            ),
        )
    else:
        arch.bind("k", ConstantModel(compute))
    arch.bind("ckpt", ConstantModel(ckpt))
    return arch


def simple_app(n_steps=3, with_ckpt=False, with_collective=True):
    def builder(rank, nranks, params):
        body = []
        for ts in range(1, n_steps + 1):
            body.append(Compute.of("k"))
            if with_collective:
                body.append(Collective("allreduce", nbytes=8))
            if with_ckpt and ts == n_steps:
                body.append(Checkpoint.of(1, "ckpt"))
        return body

    return AppBEO("app", builder)


def test_single_rank_compute_only():
    sim = BESSTSimulator(simple_app(3, with_collective=False), make_arch(), nranks=1)
    res = sim.run()
    assert res.total_time == pytest.approx(0.3)
    assert res.nranks == 1
    assert res.compute_time == pytest.approx(0.3)


def test_collective_synchronizes_ranks():
    # heterogeneous compute: rank 0 slow
    arch = ArchBEO("m", topology=FullyConnected(4), cores_per_node=2)
    arch.bind(
        "k",
        CallableModel(lambda p: 1.0 if p.get("rank") == 0 else 0.1, ()),
    )

    def builder(rank, nranks, params):
        return [Compute.of("k", rank=rank), Collective("barrier")]

    app = AppBEO("het", builder)
    res = BESSTSimulator(app, arch, nranks=4, monte_carlo=False).run()
    # everyone finishes at slowest arrival + barrier cost (same for all)
    assert max(res.finish_times) - min(res.finish_times) < 1e-12
    assert res.total_time > 1.0


def test_checkpoint_time_accounted():
    sim = BESSTSimulator(
        simple_app(2, with_ckpt=True), make_arch(compute=0.1, ckpt=0.5), nranks=4
    )
    res = sim.run()
    assert res.checkpoint_time == pytest.approx(0.5)
    assert res.ft_overhead_fraction > 0
    marks = res.checkpoint_marks()
    assert len(marks) == 1 and marks[0][1] == 1


def test_timeline_recording_modes():
    for mode, expect in (("rank0", {0}), ("all", {0, 1}), ("none", set())):
        sim = BESSTSimulator(
            simple_app(1), make_arch(), nranks=2, record_timelines=mode
        )
        res = sim.run()
        assert set(res.timelines) == expect
    with pytest.raises(ValueError):
        BESSTSimulator(simple_app(1), make_arch(), nranks=2, record_timelines="some")


def test_timeline_entries_ordered_and_labeled():
    sim = BESSTSimulator(simple_app(2, with_ckpt=True), make_arch(), nranks=2)
    res = sim.run()
    tl = res.timelines[0]
    kinds = [e.kind for e in tl.entries]
    assert "compute" in kinds and "collective" in kinds and "checkpoint" in kinds
    times = [e.t_start for e in tl.entries]
    assert times == sorted(times)
    assert all(e.t_end >= e.t_start for e in tl.entries)


def test_exchange_priced_into_compute_time():
    def builder(rank, nranks, params):
        return [Exchange(nbytes=1000, neighbors=2)]

    app = AppBEO("x", builder)
    res = BESSTSimulator(app, make_arch(), nranks=2).run()
    assert res.total_time > 0
    assert res.compute_time == pytest.approx(res.total_time)


def test_marker_is_free():
    def builder(rank, nranks, params):
        return [Marker("a"), Compute.of("k"), Marker("b")]

    app = AppBEO("m", builder)
    res = BESSTSimulator(app, make_arch(compute=0.2), nranks=1).run()
    assert res.total_time == pytest.approx(0.2)
    labels = [e.label for e in res.timelines[0].entries if e.kind == "marker"]
    assert labels == ["a", "b"]


def test_monte_carlo_draws_vary():
    def total(seed, mc):
        sim = BESSTSimulator(
            simple_app(5),
            make_arch(stochastic=True),
            nranks=4,
            seed=seed,
            monte_carlo=mc,
        )
        return sim.run().total_time

    assert total(1, True) != total(2, True)
    assert total(1, False) == total(2, False)  # deterministic central prediction
    assert total(3, True) == total(3, True)  # same seed reproducible


def test_run_twice_returns_same_result():
    sim = BESSTSimulator(simple_app(2), make_arch(), nranks=2)
    r1 = sim.run()
    r2 = sim.run()
    assert r1 is r2


def test_mismatched_collective_counts_detected():
    def builder(rank, nranks, params):
        if rank == 0:
            return [Collective("barrier"), Collective("barrier")]
        return [Collective("barrier")]

    app = AppBEO("bad", builder)
    sim = BESSTSimulator(app, make_arch(), nranks=2)
    with pytest.raises(RuntimeError, match="unfinished"):
        sim.run()


def test_monte_carlo_runner():
    runner = MonteCarloRunner(reps=5, base_seed=0)
    mc = runner.run(
        lambda seed: BESSTSimulator(
            simple_app(3), make_arch(stochastic=True), nranks=4, seed=seed
        )
    )
    assert mc.total_time.samples.size == 5
    assert mc.total_time.std > 0
    assert mc.total_time.min <= mc.total_time.mean <= mc.total_time.max
    with pytest.raises(ValueError):
        MonteCarloRunner(reps=0)


def test_distribution_stats():
    d = Distribution(np.array([1.0, 2.0, 3.0, 4.0]))
    assert d.mean == 2.5
    assert d.percentile(50) == 2.5
    assert d.cv > 0
    summary = d.to_dict()
    assert summary["n"] == 4 and summary["p95"] <= 4.0
    with pytest.raises(ValueError):
        Distribution(np.array([]))


def test_event_batching_reduces_events():
    """Consecutive local instructions fire as one event."""

    def builder(rank, nranks, params):
        return [Compute.of("k") for _ in range(10)]

    app = AppBEO("batch", builder)
    sim = BESSTSimulator(app, make_arch(), nranks=1)
    res = sim.run()
    # 1 setup event + 1 batch event (10 instructions)
    assert res.events_fired <= 3
    assert res.total_time == pytest.approx(1.0)
