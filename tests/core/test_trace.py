"""Chrome-trace export, obs-span merging and ASCII Gantt rendering."""

import json

import pytest

from repro.core import (
    AppBEO,
    ArchBEO,
    BESSTSimulator,
    Checkpoint,
    Collective,
    Compute,
    Marker,
)
from repro.core.trace import (
    merge_obs_spans,
    render_gantt,
    save_chrome_trace,
    save_spans_chrome_trace,
    spans_to_chrome_trace,
    spans_to_trace_events,
    to_chrome_trace,
)
from repro.models import ConstantModel
from repro.network import FullyConnected
from repro.obs.tracing import Tracer


def run_sim(record="rank0"):
    arch = ArchBEO("m", topology=FullyConnected(4), cores_per_node=2)
    arch.bind("k", ConstantModel(0.1))
    arch.bind("ckpt", ConstantModel(0.05))

    def builder(rank, nranks, params):
        return [
            Marker("start"),
            Compute.of("k"),
            Collective("allreduce", nbytes=8),
            Checkpoint.of(1, "ckpt"),
            Compute.of("k"),
        ]

    app = AppBEO("traced", builder)
    return BESSTSimulator(app, arch, nranks=2, record_timelines=record).run()


def test_chrome_trace_structure():
    res = run_sim()
    trace = to_chrome_trace(res)
    events = trace["traceEvents"]
    names = {e["name"] for e in events}
    assert "k" in names and "ckpt" in names and "start" in names
    # duration events carry ts/dur; the checkpoint carries its level
    ckpt = next(e for e in events if e["name"] == "ckpt")
    assert ckpt["ph"] == "X" and ckpt["args"]["level"] == 1
    marker = next(e for e in events if e["name"] == "start")
    assert marker["ph"] == "i"
    # thread metadata present for the recorded rank
    meta = [e for e in events if e["ph"] == "M"]
    assert meta and meta[0]["args"]["name"] == "rank 0"


def test_chrome_trace_all_ranks():
    res = run_sim(record="all")
    trace = to_chrome_trace(res)
    tids = {e["tid"] for e in trace["traceEvents"] if e["ph"] == "X"}
    assert tids == {0, 1}


def test_chrome_trace_requires_timelines():
    res = run_sim(record="none")
    with pytest.raises(ValueError):
        to_chrome_trace(res)


def test_save_chrome_trace(tmp_path):
    res = run_sim()
    path = tmp_path / "trace.json"
    save_chrome_trace(res, path)
    data = json.loads(path.read_text())
    assert "traceEvents" in data and len(data["traceEvents"]) > 3


def test_chrome_trace_empty_timeline_rank():
    """A recorded-but-empty timeline exports only its metadata row."""
    from repro.core.simulator import RankTimeline, SimulationResult

    res = run_sim()
    empty = SimulationResult(
        total_time=0.0,
        finish_times=[0.0],
        timelines={3: RankTimeline(3)},
        nranks=1,
        events_fired=0,
        checkpoint_time=0.0,
        compute_time=0.0,
        collective_time=0.0,
    )
    trace = to_chrome_trace(empty)
    assert [e["ph"] for e in trace["traceEvents"]] == ["M"]
    assert trace["traceEvents"][0]["args"]["name"] == "rank 3"
    assert res.timelines  # the populated run still has entries


def test_chrome_trace_zero_duration_instruction():
    """Zero-length non-marker entries export as dur=0, never negative."""
    from repro.core.simulator import RankTimeline, SimulationResult, TimelineEntry

    tl = RankTimeline(0)
    tl.entries.append(TimelineEntry(1.0, 1.0, "compute", "noop"))
    tl.entries.append(TimelineEntry(2.0, 1.5, "compute", "clocksmear"))
    res = SimulationResult(
        total_time=2.0,
        finish_times=[2.0],
        timelines={0: tl},
        nranks=1,
        events_fired=2,
        checkpoint_time=0.0,
        compute_time=0.0,
        collective_time=0.0,
    )
    events = [e for e in to_chrome_trace(res)["traceEvents"] if e["ph"] == "X"]
    assert [e["dur"] for e in events] == [0.0, 0.0]


def _finished_spans():
    tr = Tracer()
    with tr.start_span("campaign"):
        with tr.start_span("task:0"):
            pass
    instant = tr.start_span("instant", push=False).end()
    instant.t_end = instant.t_start  # force an exactly zero-duration span
    return tr.finished_spans()


def test_spans_to_trace_events_structure():
    spans = _finished_spans()
    events = spans_to_trace_events(spans)
    meta = [e for e in events if e["ph"] == "M"]
    assert len(meta) == 1 and meta[0]["name"] == "process_name"
    data = [e for e in events if e["ph"] in ("X", "i")]
    assert len(data) == 3
    # normalized: the earliest span starts at ts 0
    assert min(e["ts"] for e in data) == 0.0
    assert all(e["ts"] >= 0 for e in data)
    by_name = {e["name"]: e for e in data}
    assert by_name["instant"]["ph"] == "i"  # zero-duration -> instant
    assert by_name["campaign"]["ph"] == "X"
    # parent/child ids ride in args; pids/tids are ints
    assert by_name["task:0"]["args"]["parent_id"] == (
        by_name["campaign"]["args"]["span_id"]
    )
    for e in data:
        assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
    # unfinished spans are skipped entirely
    tr = Tracer()
    tr.start_span("open")
    assert spans_to_trace_events(tr.spans) == []
    assert spans_to_trace_events([]) == []


def test_merge_obs_spans_round_trip(tmp_path):
    """Sim timeline + obs spans survive a JSON round trip in one file."""
    res = run_sim()
    spans = _finished_spans()
    merged = merge_obs_spans(to_chrome_trace(res), spans)
    path = tmp_path / "merged.json"
    path.write_text(json.dumps(merged))
    back = json.loads(path.read_text())
    events = back["traceEvents"]
    # sim events keep pid 0; span events live on the real producing pid
    sim_pids = {e["pid"] for e in events if e.get("cat") != "obs" and e["ph"] == "X"}
    obs_pids = {e["pid"] for e in events if e.get("cat") == "obs"}
    assert sim_pids == {0} and obs_pids and 0 not in obs_pids
    span_events = [e for e in events if e.get("cat") == "obs"]
    assert {e["name"] for e in span_events} >= {"campaign", "task:0"}
    assert all(e["ph"] in ("X", "i") for e in span_events)
    assert back["displayTimeUnit"] == "ms"


def test_save_spans_chrome_trace(tmp_path):
    spans = _finished_spans()
    path = tmp_path / "spans.json"
    save_spans_chrome_trace(spans, path)
    assert json.loads(path.read_text()) == spans_to_chrome_trace(spans)


def test_gantt_renders_rows():
    res = run_sim()
    text = render_gantt(res.timelines[0], width=40)
    assert "compute" in text and "checkpoint" in text
    assert "#" in text and "C" in text


def test_gantt_validation_and_edges():
    res = run_sim()
    with pytest.raises(ValueError):
        render_gantt(res.timelines[0], width=5)
    from repro.core.simulator import RankTimeline

    assert render_gantt(RankTimeline(0)) == "(empty timeline)"
