"""Chrome-trace export and ASCII Gantt rendering."""

import json

import pytest

from repro.core import (
    AppBEO,
    ArchBEO,
    BESSTSimulator,
    Checkpoint,
    Collective,
    Compute,
    Marker,
)
from repro.core.trace import render_gantt, save_chrome_trace, to_chrome_trace
from repro.models import ConstantModel
from repro.network import FullyConnected


def run_sim(record="rank0"):
    arch = ArchBEO("m", topology=FullyConnected(4), cores_per_node=2)
    arch.bind("k", ConstantModel(0.1))
    arch.bind("ckpt", ConstantModel(0.05))

    def builder(rank, nranks, params):
        return [
            Marker("start"),
            Compute.of("k"),
            Collective("allreduce", nbytes=8),
            Checkpoint.of(1, "ckpt"),
            Compute.of("k"),
        ]

    app = AppBEO("traced", builder)
    return BESSTSimulator(app, arch, nranks=2, record_timelines=record).run()


def test_chrome_trace_structure():
    res = run_sim()
    trace = to_chrome_trace(res)
    events = trace["traceEvents"]
    names = {e["name"] for e in events}
    assert "k" in names and "ckpt" in names and "start" in names
    # duration events carry ts/dur; the checkpoint carries its level
    ckpt = next(e for e in events if e["name"] == "ckpt")
    assert ckpt["ph"] == "X" and ckpt["args"]["level"] == 1
    marker = next(e for e in events if e["name"] == "start")
    assert marker["ph"] == "i"
    # thread metadata present for the recorded rank
    meta = [e for e in events if e["ph"] == "M"]
    assert meta and meta[0]["args"]["name"] == "rank 0"


def test_chrome_trace_all_ranks():
    res = run_sim(record="all")
    trace = to_chrome_trace(res)
    tids = {e["tid"] for e in trace["traceEvents"] if e["ph"] == "X"}
    assert tids == {0, 1}


def test_chrome_trace_requires_timelines():
    res = run_sim(record="none")
    with pytest.raises(ValueError):
        to_chrome_trace(res)


def test_save_chrome_trace(tmp_path):
    res = run_sim()
    path = tmp_path / "trace.json"
    save_chrome_trace(res, path)
    data = json.loads(path.read_text())
    assert "traceEvents" in data and len(data["traceEvents"]) > 3


def test_gantt_renders_rows():
    res = run_sim()
    text = render_gantt(res.timelines[0], width=40)
    assert "compute" in text and "checkpoint" in text
    assert "#" in text and "C" in text


def test_gantt_validation_and_edges():
    res = run_sim()
    with pytest.raises(ValueError):
        render_gantt(res.timelines[0], width=5)
    from repro.core.simulator import RankTimeline

    assert render_gantt(RankTimeline(0)) == "(empty timeline)"
