"""ResilienceCampaign: survivability statistics and the Young/Daly
cross-check."""

import json

import pytest

from repro.core.campaign import (
    CampaignSpec,
    ResilienceCampaign,
    build_campaign_simulator,
)
from repro.core.fault_injection import RecoveryPolicy


def test_spec_validation():
    with pytest.raises(ValueError):
        CampaignSpec(node_mtbf_s=0, ckpt_period=5)
    with pytest.raises(ValueError):
        CampaignSpec(node_mtbf_s=1, ckpt_period=0)
    with pytest.raises(ValueError):
        ResilienceCampaign(n_workers=0)
    s = CampaignSpec(node_mtbf_s=8.0, ckpt_period=5, timesteps=40)
    assert s.work_s == pytest.approx(4.0)
    assert s.interval_s == pytest.approx(0.5)
    assert s.system_mtbf_s == pytest.approx(2.0)


def test_clean_point_has_no_waste():
    spec = CampaignSpec(node_mtbf_s=1e9, ckpt_period=5, timesteps=20)
    p = ResilienceCampaign(reps=3).run_point(spec)
    assert p.completion_probability == 1.0
    assert p.mean_faults == 0.0
    assert p.waste["rework"] == 0.0
    assert p.waste["downtime"] == 0.0
    assert p.waste["requeue"] == 0.0
    assert p.waste["checkpoint"] > 0.0
    assert p.expected_makespan > spec.work_s


def test_grid_shape_and_json_roundtrip():
    camp = ResilienceCampaign(reps=3, base_seed=0)
    report = camp.run_grid([6.0, 20.0], [5, 10], timesteps=20)
    assert len(report.points) == 4
    d = json.loads(report.to_json())
    assert d["reps"] == 3
    assert len(d["points"]) == 4
    for p in d["points"]:
        assert set(p["waste"]) == {"rework", "downtime", "checkpoint", "requeue"}
        assert 0.0 <= p["completion_probability"] <= 1.0
        assert "predicted_waste_s" in p["youngdaly"]
    # the formatted table mentions every sweep value
    table = report.format()
    assert "6.0" in table and "20.0" in table


def test_fault_pressure_monotonicity():
    camp = ResilienceCampaign(reps=8, base_seed=0, policy=RecoveryPolicy.legacy())
    report = camp.run_grid([4.0, 64.0], [5], timesteps=30)
    hot, cold = report.points
    assert hot.mean_faults > cold.mean_faults
    assert hot.expected_makespan > cold.expected_makespan
    assert hot.faults_per_completion > cold.faults_per_completion


def test_hostile_regime_loses_jobs_without_hanging():
    """Fault storms against a strict policy abort some replicas; the
    campaign still terminates and reports the losses."""
    policy = RecoveryPolicy(
        verify_fail_prob=0.6,
        max_attempts=1,
        max_requeues=0,
        retry_delay_s=0.0,
    )
    spec = CampaignSpec(node_mtbf_s=1.0, ckpt_period=5, timesteps=30)
    p = ResilienceCampaign(reps=10, base_seed=0, policy=policy).run_point(spec)
    assert p.completion_probability < 1.0
    # aborted replicas are excluded from the makespan statistics
    done = [r for r in p.replicas if r["completed"]]
    assert len(done) == round(p.completion_probability * 10)
    if done:
        assert p.expected_makespan == pytest.approx(
            sum(r["total_time"] for r in done) / len(done)
        )


def test_youngdaly_crosscheck_within_documented_tolerance():
    """Under the legacy policy (the regime Young/Daly models: every
    recovery is one successful rollback to the latest checkpoint) the
    simulated waste must sit within the documented 2x band of the
    analytical expectation at moderate fault rates."""
    camp = ResilienceCampaign(reps=25, base_seed=0, policy=RecoveryPolicy.legacy())
    p = camp.run_point(CampaignSpec(node_mtbf_s=16.0, ckpt_period=5, timesteps=40))
    assert p.completion_probability == 1.0  # legacy never aborts
    ratio = p.youngdaly["ratio"]
    assert 0.5 <= ratio <= 2.0


def test_worker_count_edges():
    """0 workers is rejected; 1 worker (in-process) is the baseline."""
    with pytest.raises(ValueError):
        ResilienceCampaign(n_workers=0)
    spec = CampaignSpec(node_mtbf_s=16.0, ckpt_period=5, timesteps=10)
    p = ResilienceCampaign(reps=2, n_workers=1).run_point(spec)
    assert p.replicas_done == 2


def test_empty_grid_serializes():
    report = ResilienceCampaign(reps=2).run_grid([], [5], timesteps=10)
    assert report.points == []
    assert not report.partial
    d = json.loads(report.to_json())
    assert d["points"] == []
    assert "RESILIENCE CAMPAIGN" in report.format()


def test_single_replica_point():
    spec = CampaignSpec(node_mtbf_s=1e9, ckpt_period=5, timesteps=10)
    p = ResilienceCampaign(reps=1).run_point(spec)
    assert p.reps == 1 and p.replicas_done == 1
    assert p.completion_probability == 1.0
    assert p.expected_makespan == p.makespan_p95  # one sample
    json.dumps(p.to_dict())


def test_all_replicas_abort_serializes_cleanly():
    """completion probability 0.0: no NaN/div-by-zero in the waste
    breakdown or faults-per-completion."""
    policy = RecoveryPolicy(
        verify_fail_prob=0.99, max_attempts=1, max_requeues=0, retry_delay_s=0.0
    )
    spec = CampaignSpec(node_mtbf_s=0.2, ckpt_period=5, timesteps=30)
    p = ResilienceCampaign(reps=4, base_seed=0, policy=policy).run_point(spec)
    assert p.completion_probability == 0.0
    assert p.expected_makespan is None
    assert p.makespan_p95 is None
    assert p.faults_per_completion is None
    assert p.youngdaly["simulated_waste_s"] is None
    assert all(w >= 0.0 for w in p.waste.values())
    text = json.dumps(p.to_dict())
    assert "NaN" not in text and "Infinity" not in text
    # and the whole-grid report formats/serializes too
    report = ResilienceCampaign(reps=4, base_seed=0, policy=policy).run_grid(
        [0.2], [5], timesteps=30
    )
    assert "NaN" not in report.to_json()
    report.format()


def test_build_campaign_simulator_is_reusable():
    spec = CampaignSpec(node_mtbf_s=8.0, ckpt_period=5, timesteps=10)
    sim = build_campaign_simulator(spec, seed=0, policy=RecoveryPolicy.legacy())
    res = sim.run(max_events=1_000_000)
    assert res.completed
    clean = build_campaign_simulator(
        spec, seed=0, policy=RecoveryPolicy.legacy(), inject=False
    ).run(max_events=1_000_000)
    assert clean.faults_injected == 0
    assert clean.total_time >= spec.work_s
