"""ResilienceCampaign: survivability statistics and the Young/Daly
cross-check."""

import json

import pytest

from repro.core.campaign import (
    CampaignSpec,
    ResilienceCampaign,
    build_campaign_simulator,
)
from repro.core.fault_injection import RecoveryPolicy


def test_spec_validation():
    with pytest.raises(ValueError):
        CampaignSpec(node_mtbf_s=0, ckpt_period=5)
    with pytest.raises(ValueError):
        CampaignSpec(node_mtbf_s=1, ckpt_period=0)
    with pytest.raises(ValueError):
        ResilienceCampaign(n_workers=0)
    s = CampaignSpec(node_mtbf_s=8.0, ckpt_period=5, timesteps=40)
    assert s.work_s == pytest.approx(4.0)
    assert s.interval_s == pytest.approx(0.5)
    assert s.system_mtbf_s == pytest.approx(2.0)


def test_clean_point_has_no_waste():
    spec = CampaignSpec(node_mtbf_s=1e9, ckpt_period=5, timesteps=20)
    p = ResilienceCampaign(reps=3).run_point(spec)
    assert p.completion_probability == 1.0
    assert p.mean_faults == 0.0
    assert p.waste["rework"] == 0.0
    assert p.waste["downtime"] == 0.0
    assert p.waste["requeue"] == 0.0
    assert p.waste["checkpoint"] > 0.0
    assert p.expected_makespan > spec.work_s


def test_grid_shape_and_json_roundtrip():
    camp = ResilienceCampaign(reps=3, base_seed=0)
    report = camp.run_grid([6.0, 20.0], [5, 10], timesteps=20)
    assert len(report.points) == 4
    d = json.loads(report.to_json())
    assert d["reps"] == 3
    assert len(d["points"]) == 4
    for p in d["points"]:
        assert set(p["waste"]) == {"rework", "downtime", "checkpoint", "requeue"}
        assert 0.0 <= p["completion_probability"] <= 1.0
        assert "predicted_waste_s" in p["youngdaly"]
    # the formatted table mentions every sweep value
    table = report.format()
    assert "6.0" in table and "20.0" in table


def test_fault_pressure_monotonicity():
    camp = ResilienceCampaign(reps=8, base_seed=0, policy=RecoveryPolicy.legacy())
    report = camp.run_grid([4.0, 64.0], [5], timesteps=30)
    hot, cold = report.points
    assert hot.mean_faults > cold.mean_faults
    assert hot.expected_makespan > cold.expected_makespan
    assert hot.faults_per_completion > cold.faults_per_completion


def test_hostile_regime_loses_jobs_without_hanging():
    """Fault storms against a strict policy abort some replicas; the
    campaign still terminates and reports the losses."""
    policy = RecoveryPolicy(
        verify_fail_prob=0.6,
        max_attempts=1,
        max_requeues=0,
        retry_delay_s=0.0,
    )
    spec = CampaignSpec(node_mtbf_s=1.0, ckpt_period=5, timesteps=30)
    p = ResilienceCampaign(reps=10, base_seed=0, policy=policy).run_point(spec)
    assert p.completion_probability < 1.0
    # aborted replicas are excluded from the makespan statistics
    done = [r for r in p.replicas if r["completed"]]
    assert len(done) == round(p.completion_probability * 10)
    if done:
        assert p.expected_makespan == pytest.approx(
            sum(r["total_time"] for r in done) / len(done)
        )


def test_youngdaly_crosscheck_within_documented_tolerance():
    """Under the legacy policy (the regime Young/Daly models: every
    recovery is one successful rollback to the latest checkpoint) the
    simulated waste must sit within the documented 2x band of the
    analytical expectation at moderate fault rates."""
    camp = ResilienceCampaign(reps=25, base_seed=0, policy=RecoveryPolicy.legacy())
    p = camp.run_point(CampaignSpec(node_mtbf_s=16.0, ckpt_period=5, timesteps=40))
    assert p.completion_probability == 1.0  # legacy never aborts
    ratio = p.youngdaly["ratio"]
    assert 0.5 <= ratio <= 2.0


def test_worker_count_edges():
    """0 workers is rejected; 1 worker (in-process) is the baseline."""
    with pytest.raises(ValueError):
        ResilienceCampaign(n_workers=0)
    spec = CampaignSpec(node_mtbf_s=16.0, ckpt_period=5, timesteps=10)
    p = ResilienceCampaign(reps=2, n_workers=1).run_point(spec)
    assert p.replicas_done == 2


def test_empty_grid_serializes():
    report = ResilienceCampaign(reps=2).run_grid([], [5], timesteps=10)
    assert report.points == []
    assert not report.partial
    d = json.loads(report.to_json())
    assert d["points"] == []
    assert "RESILIENCE CAMPAIGN" in report.format()


def test_single_replica_point():
    spec = CampaignSpec(node_mtbf_s=1e9, ckpt_period=5, timesteps=10)
    p = ResilienceCampaign(reps=1).run_point(spec)
    assert p.reps == 1 and p.replicas_done == 1
    assert p.completion_probability == 1.0
    assert p.expected_makespan == p.makespan_p95  # one sample
    json.dumps(p.to_dict())


def test_all_replicas_abort_serializes_cleanly():
    """completion probability 0.0: no NaN/div-by-zero in the waste
    breakdown or faults-per-completion."""
    policy = RecoveryPolicy(
        verify_fail_prob=0.99, max_attempts=1, max_requeues=0, retry_delay_s=0.0
    )
    spec = CampaignSpec(node_mtbf_s=0.2, ckpt_period=5, timesteps=30)
    p = ResilienceCampaign(reps=4, base_seed=0, policy=policy).run_point(spec)
    assert p.completion_probability == 0.0
    assert p.expected_makespan is None
    assert p.makespan_p95 is None
    assert p.faults_per_completion is None
    assert p.youngdaly["simulated_waste_s"] is None
    assert all(w >= 0.0 for w in p.waste.values())
    text = json.dumps(p.to_dict())
    assert "NaN" not in text and "Infinity" not in text
    # and the whole-grid report formats/serializes too
    report = ResilienceCampaign(reps=4, base_seed=0, policy=policy).run_grid(
        [0.2], [5], timesteps=30
    )
    assert "NaN" not in report.to_json()
    report.format()


def test_build_campaign_simulator_is_reusable():
    spec = CampaignSpec(node_mtbf_s=8.0, ckpt_period=5, timesteps=10)
    sim = build_campaign_simulator(spec, seed=0, policy=RecoveryPolicy.legacy())
    res = sim.run(max_events=1_000_000)
    assert res.completed
    clean = build_campaign_simulator(
        spec, seed=0, policy=RecoveryPolicy.legacy(), inject=False
    ).run(max_events=1_000_000)
    assert clean.faults_injected == 0
    assert clean.total_time >= spec.work_s


# -- fault taxonomy in campaigns ---------------------------------------------------


MIX = {"software": 0.35, "node": 0.1, "sdc": 0.35, "straggler": 0.1,
       "burst": 0.1}


def test_spec_fault_mix_normalized_and_hashable():
    s = CampaignSpec(node_mtbf_s=8.0, ckpt_period=5, fault_mix=MIX)
    assert s.fault_mix == tuple(sorted((k, float(v)) for k, v in MIX.items()))
    hash(s)  # stays frozen/hashable for journal spec keys
    assert s.fault_model().weights == MIX


def test_spec_fault_mix_accepts_pair_iterable():
    s = CampaignSpec(
        node_mtbf_s=8.0, ckpt_period=5, fault_mix=[("sdc", 0.5), ("node", 0.5)]
    )
    assert s.fault_mix == (("node", 0.5), ("sdc", 0.5))


def test_spec_default_mix_is_failstop_alias():
    # empty mix falls back to the two-kind software_fraction alias
    # (the campaign default is software-only: software_fraction=1.0)
    s = CampaignSpec(node_mtbf_s=8.0, ckpt_period=5)
    assert s.fault_mix == ()
    assert s.fault_model().weights == {"software": 1.0}
    mixed = CampaignSpec(node_mtbf_s=8.0, ckpt_period=5, software_fraction=0.7)
    w = mixed.fault_model().weights
    assert w["software"] == pytest.approx(0.7)
    assert w["node"] == pytest.approx(0.3)


def test_spec_invalid_mix_rejected_at_construction():
    with pytest.raises(ValueError, match="unknown fault kinds"):
        CampaignSpec(node_mtbf_s=8.0, ckpt_period=5, fault_mix={"gremlin": 1.0})
    with pytest.raises(ValueError, match="sum to 1"):
        CampaignSpec(node_mtbf_s=8.0, ckpt_period=5, fault_mix={"sdc": 0.4})


def test_spec_verify_period_validated():
    with pytest.raises(ValueError):
        CampaignSpec(node_mtbf_s=8.0, ckpt_period=5, verify_period=-1)


def test_point_report_carries_per_kind_counts_and_sdc_stats():
    spec = CampaignSpec(
        node_mtbf_s=3.0,
        ckpt_period=5,
        timesteps=40,
        fault_mix=MIX,
        verify_period=2,
        sdc_coverage=0.9,
    )
    p = ResilienceCampaign(reps=8, base_seed=1).run_point(spec)
    d = p.to_dict()
    # waste keys unchanged (compatibility surface) ...
    assert set(d["waste"]) == {"rework", "downtime", "checkpoint", "requeue"}
    # ... with the taxonomy reported alongside
    assert set(d["fault_kinds"]) <= {"software", "node", "sdc", "straggler",
                                     "burst"}
    assert sum(d["fault_kinds"].values()) > 0
    assert set(d["sdc"]) == {"injected", "detected", "corrected",
                             "undetected", "detect_latency_s"}
    assert d["sdc"]["injected"] >= d["sdc"]["detected"]
    assert d["wrong_results"] >= 0


def test_verification_reduces_wrong_results_under_sdc_pressure():
    base = dict(
        node_mtbf_s=2.0,
        ckpt_period=5,
        timesteps=40,
        fault_mix={"sdc": 1.0},
        sdc_coverage=1.0,
        sdc_correct_prob=1.0,
    )
    camp = lambda: ResilienceCampaign(reps=10, base_seed=3)
    blind = camp().run_point(CampaignSpec(**base))
    watched = camp().run_point(CampaignSpec(**base, verify_period=1))
    assert blind.to_dict()["wrong_results"] > 0
    assert watched.to_dict()["wrong_results"] == 0
    assert watched.to_dict()["sdc"]["detected"] > 0


def test_mixed_fault_campaign_is_deterministic():
    spec_kwargs = dict(fault_mix=MIX, verify_period=3, timesteps=30)
    a = ResilienceCampaign(reps=5, base_seed=9).run_grid(
        [3.0], [5], **spec_kwargs
    )
    b = ResilienceCampaign(reps=5, base_seed=9).run_grid(
        [3.0], [5], **spec_kwargs
    )
    assert a.to_json() == b.to_json()


def test_mixed_fault_journal_report_matches_live_report(tmp_path):
    journal = str(tmp_path / "wal.jsonl")
    camp = ResilienceCampaign(reps=4, base_seed=2, journal_path=journal)
    report = camp.run_grid([3.0], [5], fault_mix=MIX, verify_period=2,
                           timesteps=30)
    camp.close()
    rebuilt = ResilienceCampaign.report_from_journal(journal)
    assert rebuilt.to_json() == report.to_json()
