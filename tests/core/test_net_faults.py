"""Network fault domain in the simulator: injection, pricing, partitions.

Covers link/switch/netdeg injection into the health overlay, degraded
collective and checkpoint pricing, the partition -> stall -> escalation
path of the recovery ladder (a partitioned checkpoint group must
terminate, never hang), repair scheduling, and campaign determinism
under a mixed node+link fault process.
"""

import pytest

from repro.core import FaultDetail, RecoveryPolicy
from repro.core.campaign import CampaignSpec, _run_replica, build_campaign_simulator
from repro.core.fault_injection import (
    FAULT_KINDS,
    FaultModel,
    NET_KIND_SPLIT,
    fold_link_rate,
)


def _spec(**kw):
    base = dict(
        node_mtbf_s=1e9,
        ckpt_period=5,
        nranks=4,
        nnodes=2,
        timesteps=20,
        net_topology="torus",
        net_repair_s=0.0,
    )
    base.update(kw)
    return CampaignSpec(**base)


def _run_with_fault(spec, policy, fault, seed=0):
    """Build an injector-free replica and hand-inject one net fault."""
    sim = build_campaign_simulator(spec, seed, policy, inject=False)
    t, node, kind, detail = fault
    sim.engine.schedule(
        t, lambda ev: sim.inject_fault(node, kind=kind, detail=detail)
    )
    return sim, sim.run(max_events=5_000_000)


POLICY = RecoveryPolicy(verify_fail_prob=0.0)


# -- draw-stream plumbing ----------------------------------------------------------


def test_net_kinds_registered_in_order():
    # Appended at the END: reordering FAULT_KINDS would silently reshuffle
    # every seeded campaign's draw stream.
    assert FAULT_KINDS[-3:] == ("link", "switch", "netdeg")


def test_fold_link_rate_superposes_streams():
    model = FaultModel(node_mtbf_s=10.0, software_fraction=0.0)
    folded = fold_link_rate(model, nnodes=4, nlinks=8, link_mtbf_s=20.0)
    # total rate: 4/10 (nodes) + 8/20 (links) = 0.8 -> mtbf 5s
    assert folded.node_mtbf_s * 4 == pytest.approx(5.0 * 4)
    net_w = sum(folded.weights.get(k, 0.0) for k, _ in NET_KIND_SPLIT)
    assert net_w == pytest.approx(0.5)
    assert sum(folded.weights.values()) == pytest.approx(1.0)


def test_fold_link_rate_custom_split_validation():
    model = FaultModel(node_mtbf_s=10.0)
    with pytest.raises(ValueError, match="sum to 1"):
        fold_link_rate(
            model, 4, 8, 20.0, split=(("link", 0.5), ("netdeg", 0.2))
        )
    with pytest.raises(ValueError, match="network kinds"):
        fold_link_rate(model, 4, 8, 20.0, split=(("node", 1.0),))


# -- degraded pricing --------------------------------------------------------------


def test_netdeg_slows_collectives_and_counts_retransmits():
    spec = _spec(allreduce_bytes=1 << 24)
    _, clean = _run_with_fault(
        spec, POLICY, (1e9, 0, "netdeg", None)  # never fires within run
    )
    detail = FaultDetail(repair_s=0.0, derate=8.0, loss_prob=0.2, edge=(0, 1))
    _, slow = _run_with_fault(spec, POLICY, (0.01, 0, "netdeg", detail))
    assert slow.completed and slow.rollbacks == 0
    assert slow.net_faults == 1 and slow.net_repairs == 0
    assert slow.net_retransmits > 0
    assert slow.total_time > clean.total_time
    assert slow.faults_by_kind == {"netdeg": 1}


def test_netdeg_default_detail_applied():
    spec = _spec(allreduce_bytes=1 << 24)
    sim = build_campaign_simulator(spec, 0, POLICY, inject=False)
    h = sim.archbeo.topology.health()
    seen = {}
    sim.engine.schedule(
        0.01, lambda ev: sim.inject_fault(0, kind="netdeg", detail=None)
    )
    sim.engine.schedule(1.0, lambda ev: seen.update(deg=dict(h.degraded)))
    res = sim.run(max_events=5_000_000)
    assert res.net_faults == 1
    assert list(seen["deg"].values()) == [(4.0, 0.05)]
    # the default 30s repair outlives the run but still fires and heals
    assert res.net_repairs == 1 and h.healthy


def test_link_fault_repairs_on_schedule():
    spec = _spec()
    detail = FaultDetail(repair_s=0.5, edge=(0, 1))
    sim, res = _run_with_fault(spec, POLICY, (0.01, 0, "link", detail))
    assert res.completed
    assert res.net_faults == 1 and res.net_repairs == 1
    assert sim.archbeo.topology._health.healthy


def test_l2_checkpoints_pay_degraded_network_cost():
    spec = _spec(level=2, ckpt_cost_s=0.2, allreduce_bytes=8)
    _, clean = _run_with_fault(spec, POLICY, (1e9, 0, "netdeg", None))
    # rank 0's L2 partner on the 2x2 rank-level torus is rank 2: degrade
    # exactly that edge so partner-copy traffic crosses it
    detail = FaultDetail(repair_s=0.0, derate=16.0, loss_prob=0.0, edge=(0, 2))
    _, slow = _run_with_fault(spec, POLICY, (0.01, 0, "netdeg", detail))
    # L2 partner-copy traffic crosses the degraded fabric: checkpoint
    # time inflates even though nothing rolled back.
    assert slow.rollbacks == 0
    assert slow.checkpoint_time > clean.checkpoint_time


# -- partitions --------------------------------------------------------------------


def test_partitioned_group_escalates_and_terminates():
    # A switch death with no repair fully isolates ranks 0-1 on the 2x2
    # torus: collectives can never rendezvous.  The run must enter the
    # recovery ladder, burn its attempts as partition stalls, requeue
    # (which re-provisions the fabric) and finish -- never hang.
    policy = RecoveryPolicy(
        verify_fail_prob=0.0,
        max_attempts=3,
        max_requeues=1,
        requeue_delay_s=0.5,
    )
    spec = _spec()
    sim, res = _run_with_fault(
        spec, policy, (0.01, 0, "switch", FaultDetail(repair_s=0.0))
    )
    assert res.completed, "partitioned run must terminate"
    # one stall at detection plus one per burned recovery attempt
    assert res.net_partition_stalls == 4
    assert res.recovery_attempts == 3
    # stalls are not verify failures: no rung is climbed, the ladder
    # escalates straight to a requeue once attempts run out
    assert res.escalations == 0
    assert res.requeues == 1
    assert res.waste_requeue > 0
    # the requeue re-provisioned the interconnect
    assert sim.archbeo.topology._health.healthy


def test_partition_aborts_when_requeues_exhausted():
    policy = RecoveryPolicy(
        verify_fail_prob=0.0,
        max_attempts=2,
        max_requeues=0,
        requeue_delay_s=0.5,
    )
    sim, res = _run_with_fault(
        _spec(), policy, (0.01, 0, "switch", FaultDetail(repair_s=0.0))
    )
    assert not res.completed
    assert res.net_partition_stalls == 3  # detection + 2 attempts


def test_repaired_partition_resumes_without_requeue():
    policy = RecoveryPolicy(
        verify_fail_prob=0.0,
        max_attempts=10,
        max_requeues=0,
        retry_delay_s=0.5,
        backoff=1.0,
    )
    sim, res = _run_with_fault(
        _spec(), policy, (0.01, 0, "switch", FaultDetail(repair_s=1.0))
    )
    assert res.completed
    assert res.requeues == 0
    assert res.net_repairs >= 1
    assert res.net_partition_stalls >= 1
    assert sim.archbeo.topology._health.healthy


def test_switch_fault_records_partitioned_outcome():
    sim = build_campaign_simulator(_spec(), 0, POLICY, inject=False)
    from repro.core.fault_injection import FaultEventLog

    log = FaultEventLog()
    event = log.add(0.01, 0, "switch")
    sim.engine.schedule(
        0.01,
        lambda ev: sim.inject_fault(
            0, kind="switch", detail=FaultDetail(repair_s=0.0), event=event
        ),
    )
    policy_bounded = sim.run(max_events=5_000_000)
    assert event.outcome == "partitioned"


# -- campaign determinism ----------------------------------------------------------


def _mixed_task(seed=42):
    spec = CampaignSpec(
        node_mtbf_s=8.0,
        ckpt_period=5,
        nranks=16,
        nnodes=8,
        timesteps=10,
        fault_mix={"node": 0.5, "link": 0.5},
        net_topology="torus",
        net_repair_s=1.0,
    )
    return (spec, RecoveryPolicy(), seed)


def test_mixed_node_link_replica_deterministic():
    a = _run_replica(_mixed_task())
    b = _run_replica(_mixed_task())
    assert a == b
    kinds = a["fault_kinds"]
    assert set(kinds) <= {"node", "link", "switch", "netdeg"}
    assert a["net"]["faults"] >= kinds.get("link", 0)


def test_net_metrics_survive_aggregation():
    from repro.core.campaign import aggregate_point

    reps = [_run_replica(_mixed_task(s)) for s in (1, 2, 3)]
    spec = _mixed_task()[0]
    point = aggregate_point(spec, reps, 3)
    assert set(point.net) == {
        "faults",
        "repairs",
        "partition_stalls",
        "degraded_commits",
        "reroutes",
        "retransmits",
    }
    assert point.net["faults"] == sum(r["net"]["faults"] for r in reps)
    assert "net" in point.to_dict()
