"""Beyond fail-stop: SDC, stragglers and correlated bursts.

Covers the kind-weight fault mix, per-kind injection mechanics, the two
SDC detection paths (ABFT Verify kernels and checkpoint-write
validation), detection-latency accounting, rollback *past* a corrupt
checkpoint, and the wrong-result outcome of undetected corruption.
"""

import numpy as np
import pytest

from repro.core import (
    FAULT_KINDS,
    AppBEO,
    ArchBEO,
    BESSTSimulator,
    Checkpoint,
    Collective,
    Compute,
    FaultDetail,
    FaultEventLog,
    FaultInjector,
    FaultModel,
    RecoveryPolicy,
    Verify,
)
from repro.models import ConstantModel
from repro.network import FullyConnected


# -- kind-weight mapping -----------------------------------------------------------


def test_software_fraction_alias_builds_two_kind_mix():
    model = FaultModel(node_mtbf_s=10.0, software_fraction=0.6)
    assert model.weights == {"software": 0.6, "node": 0.4}


def test_kind_weights_override_alias_and_drop_zero_weights():
    model = FaultModel(
        node_mtbf_s=10.0,
        software_fraction=0.1,  # ignored
        kind_weights={"sdc": 0.5, "straggler": 0.5, "burst": 0.0},
    )
    assert model.weights == {"sdc": 0.5, "straggler": 0.5}


@pytest.mark.parametrize(
    "weights, match",
    [
        ({"cosmic_ray": 1.0}, "unknown fault kinds"),
        ({"software": 0.5, "gremlin": 0.5}, "unknown fault kinds"),
        ({"software": -0.1, "node": 1.1}, "must be >= 0"),
        ({"software": 0.5, "node": 0.4}, "must sum to 1"),
        ({"software": 0.7, "node": 0.7}, "must sum to 1"),
        ({}, "must sum to 1"),
    ],
)
def test_invalid_kind_weights_rejected(weights, match):
    with pytest.raises(ValueError, match=match):
        FaultModel(node_mtbf_s=10.0, kind_weights=weights)


@pytest.mark.parametrize(
    "kwargs, match",
    [
        (dict(sdc_coverage=1.5), "sdc_coverage"),
        (dict(sdc_correct_prob=-0.1), "sdc_correct_prob"),
        (dict(straggler_slowdown=0.5), "straggler_slowdown"),
        (dict(burst_size=0), "burst_size"),
    ],
)
def test_invalid_taxonomy_parameters_rejected(kwargs, match):
    with pytest.raises(ValueError, match=match):
        FaultModel(node_mtbf_s=10.0, **kwargs)


def test_ckpt_validate_prob_validated():
    with pytest.raises(ValueError, match="ckpt_validate_prob"):
        RecoveryPolicy(ckpt_validate_prob=1.5)


def test_draw_kind_converges_to_weights():
    weights = {"software": 0.3, "node": 0.2, "sdc": 0.35, "straggler": 0.1,
               "burst": 0.05}
    model = FaultModel(node_mtbf_s=10.0, kind_weights=weights)
    rng = np.random.default_rng(7)
    n = 6000
    counts = {k: 0 for k in FAULT_KINDS}
    for _ in range(n):
        counts[model.draw_kind(rng)] += 1
    for kind, w in weights.items():
        assert counts[kind] / n == pytest.approx(w, abs=0.03)


def test_draw_kind_degenerate_single_kind():
    model = FaultModel(node_mtbf_s=10.0, kind_weights={"sdc": 1.0})
    rng = np.random.default_rng(0)
    assert {model.draw_kind(rng) for _ in range(50)} == {"sdc"}


# -- burst victim sets -------------------------------------------------------------


def test_burst_victims_by_index_distance():
    model = FaultModel(node_mtbf_s=10.0, burst_size=3)
    live = list(range(8))
    assert model.burst_victims(3, live) == (2, 3, 4)
    # edge node: the neighborhood folds inward
    assert model.burst_victims(0, live) == (0, 1, 2)


def test_burst_victims_skip_dead_nodes_and_cap_at_live_count():
    model = FaultModel(node_mtbf_s=10.0, burst_size=3)
    assert model.burst_victims(3, [0, 3, 7]) == (0, 3, 7)
    assert model.burst_victims(5, [5]) == (5,)


def test_burst_victims_deterministic_tie_break():
    # nodes 2 and 4 are equidistant from 3; the lower id wins
    model = FaultModel(node_mtbf_s=10.0, burst_size=2)
    assert model.burst_victims(3, list(range(8))) == (2, 3)


# -- fault event log ---------------------------------------------------------------


def test_event_log_kind_counts_and_rows():
    log = FaultEventLog()
    log.add(1.0, 0, "software")
    log.add(2.0, 1, "sdc")
    ev = log.add(3.0, 2, "burst", FaultDetail(victims=(2, 3, 4)))
    assert log.kind_counts() == {"burst": 1, "sdc": 1, "software": 1}
    assert log.count_kind("sdc") == 1
    assert ev.to_list() == [3.0, 2, "burst", [2, 3, 4], 1.0, None, ""]
    assert ev.detection_latency_s is None
    ev.detected_time = 3.5
    assert ev.detection_latency_s == pytest.approx(0.5)


# -- simulator harness -------------------------------------------------------------


def taxonomy_app(n_steps=20, ckpt_every=5, verify_at=()):
    """Compute + optional Verify + periodic L1 checkpoint + allreduce."""

    def builder(rank, nranks, params):
        body = []
        for ts in range(1, n_steps + 1):
            body.append(Compute.of("k"))
            if ts in verify_at:
                body.append(Verify.of("v"))
            if ts % ckpt_every == 0:
                body.append(Checkpoint.of(1, "ckpt"))
            body.append(Collective("allreduce", nbytes=8))
        return body

    return AppBEO("taxonomy", builder)


def make_arch():
    arch = ArchBEO("m", topology=FullyConnected(8), cores_per_node=2)
    arch.bind("k", ConstantModel(0.1))
    arch.bind("ckpt", ConstantModel(0.05))
    arch.bind("v", ConstantModel(0.01))
    arch.recovery_time_s = 0.2
    return arch


def run_sim(policy=None, faults=(), verify_at=(), n_steps=20, seed=0):
    """Faults scheduled at exact instants: (time, node, kind, detail)."""
    policy = policy or RecoveryPolicy(verify_fail_prob=0.0)
    sim = BESSTSimulator(
        taxonomy_app(n_steps, verify_at=verify_at),
        make_arch(),
        nranks=8,
        seed=seed,
        monte_carlo=False,
        recovery_policy=policy,
    )
    for t, node, kind, detail in faults:
        sim.engine.schedule(
            t,
            lambda ev, n=node, k=kind, d=detail: sim.inject_fault(
                n, kind=k, detail=d
            ),
        )
    return sim, sim.run(max_events=5_000_000)


@pytest.fixture(scope="module")
def marks():
    """Commit times of the 4 periodic L1 checkpoints in a clean run."""
    _, clean = run_sim()
    m = clean.checkpoint_marks()
    assert len(m) == 4
    return [t for t, _ in m]


def test_unknown_kind_rejected():
    sim = BESSTSimulator(
        taxonomy_app(2), make_arch(), nranks=8, monte_carlo=False
    )
    with pytest.raises(ValueError, match="unknown fault kind"):
        sim.inject_fault(0, kind="gremlin")
    sim.run()


# -- stragglers --------------------------------------------------------------------


def test_straggler_slows_completion_without_rollback():
    _, clean = run_sim()
    detail = FaultDetail(slowdown=2.0, repair_s=0.0)  # degraded forever
    _, slow = run_sim(faults=[(0.01, 0, "straggler", detail)])
    assert slow.rollbacks == 0 and slow.completed
    assert slow.faults_by_kind == {"straggler": 1}
    # one degraded node gates every allreduce: the whole job runs at the
    # straggler's clock (compute dominates this workload)
    assert slow.total_time > 1.8 * clean.total_time


def test_straggler_repair_restores_the_clock(marks):
    detail_forever = FaultDetail(slowdown=2.0, repair_s=0.0)
    detail_repaired = FaultDetail(slowdown=2.0, repair_s=1.0)
    _, forever = run_sim(faults=[(0.01, 0, "straggler", detail_forever)])
    _, repaired = run_sim(faults=[(0.01, 0, "straggler", detail_repaired)])
    _, clean = run_sim()
    assert clean.total_time < repaired.total_time < forever.total_time


def test_straggler_repair_token_guard():
    """A second straggler on the same node outdates the first repair."""
    d1 = FaultDetail(slowdown=2.0, repair_s=0.5)
    d2 = FaultDetail(slowdown=3.0, repair_s=6.0)
    _, res = run_sim(
        faults=[(0.01, 0, "straggler", d1), (0.2, 0, "straggler", d2)]
    )
    _, only_first = run_sim(faults=[(0.01, 0, "straggler", d1)])
    # the d1 repair at t=0.51 must NOT cancel d2's 3x degradation
    assert res.total_time > only_first.total_time
    assert res.faults_by_kind == {"straggler": 2}


# -- correlated bursts -------------------------------------------------------------


def test_burst_fells_all_victims_at_once(marks):
    t = marks[0] + 0.1
    detail = FaultDetail(victims=(0, 1))
    _, res = run_sim(faults=[(t, 0, "burst", detail)])
    assert res.faults_by_kind == {"burst": 1}
    assert res.completed
    # L1-only checkpoints cannot recover a multi-node loss: the burst
    # forces a restart from the input deck
    assert res.rollbacks >= 1
    assert res.waste_rework == pytest.approx(t)


# -- SDC: detection via ABFT Verify kernels ----------------------------------------


def test_sdc_corrected_in_place_no_rollback(marks):
    t = marks[0] + 0.1
    detail = FaultDetail(covered=True, correctable=True)
    _, res = run_sim(faults=[(t, 0, "sdc", detail)], verify_at=(8,))
    assert res.completed and not res.wrong_result
    assert res.sdc_injected == 1
    assert res.sdc_detected == 1
    assert res.sdc_corrected == 1
    assert res.sdc_undetected == 0
    assert res.rollbacks == 0
    assert res.verify_time > 0
    assert res.sdc_detect_latency_s > 0


def test_sdc_detection_latency_scales_with_verify_cadence(marks):
    t = marks[0] + 0.1
    detail = FaultDetail(covered=True, correctable=True)
    _, soon = run_sim(faults=[(t, 0, "sdc", detail)], verify_at=(8,))
    _, late = run_sim(faults=[(t, 0, "sdc", detail)], verify_at=(16,))
    # the strike waits for the next Verify commit: a later detection
    # point means a strictly longer recorded latency
    assert 0 < soon.sdc_detect_latency_s < late.sdc_detect_latency_s
    assert late.sdc_detect_latency_s < late.total_time


def test_sdc_rollback_reaches_past_corrupt_checkpoint(marks):
    """The acceptance-criterion walkthrough, end to end.

    A strike arms between checkpoints 2 and 3.  Checkpoint 3 commits
    while the corruption is latent — the written version is tainted.
    The ts-18 Verify detects an uncorrectable strike: recovery must skip
    checkpoint 3 (newest but corrupt) and land on checkpoint 2, the last
    clean version.
    """
    t = (marks[1] + marks[2]) / 2  # latent across ckpt 3's write
    detail = FaultDetail(covered=True, correctable=False)
    sim, res = run_sim(faults=[(t, 0, "sdc", detail)], verify_at=(18,))
    assert res.completed and not res.wrong_result
    assert res.sdc_detected == 1 and res.sdc_corrected == 0
    assert res.rollbacks == 1
    # rework spans from checkpoint 2's commit (the clean restart point)
    # to the detection instant — strictly more than a rollback to the
    # corrupt checkpoint 3 would have cost
    detect_time = t + res.sdc_detect_latency_s
    assert res.waste_rework == pytest.approx(detect_time - marks[1])
    assert res.waste_rework > detect_time - marks[2]


def test_sdc_detected_before_checkpoint_keeps_newest_restart_point(marks):
    """A Verify between the strike and the next checkpoint catches the
    corruption early: rollback lands on the newest checkpoint (clean),
    and the detection latency is much shorter."""
    t = (marks[1] + marks[2]) / 2
    detail = FaultDetail(covered=True, correctable=False)
    _, early = run_sim(faults=[(t, 0, "sdc", detail)], verify_at=(14,))
    _, late = run_sim(faults=[(t, 0, "sdc", detail)], verify_at=(18,))
    assert early.completed and late.completed
    assert early.sdc_detect_latency_s < late.sdc_detect_latency_s
    assert early.waste_rework < late.waste_rework
    assert early.total_time < late.total_time


def test_sdc_uncovered_strike_survives_to_wrong_result(marks):
    t = marks[0] + 0.1
    detail = FaultDetail(covered=False, correctable=False)
    _, res = run_sim(faults=[(t, 0, "sdc", detail)], verify_at=(8, 12, 16))
    assert res.completed
    assert res.sdc_detected == 0
    assert res.sdc_undetected == 1
    assert res.wrong_result  # finished, but the answer is bad


def test_sdc_without_any_detector_is_wrong_result(marks):
    t = marks[0] + 0.1
    detail = FaultDetail(covered=True, correctable=True)
    _, res = run_sim(faults=[(t, 0, "sdc", detail)])  # no Verify points
    assert res.completed and res.wrong_result
    assert res.sdc_detected == 0 and res.sdc_undetected == 1


# -- SDC: detection via checkpoint-write validation --------------------------------


def test_ckpt_validation_is_secondary_detection_point(marks):
    """With hash-on-write validation the corrupt checkpoint 3 write
    itself raises the alarm — no Verify kernel needed — and recovery
    reaches back to checkpoint 2."""
    policy = RecoveryPolicy(verify_fail_prob=0.0, ckpt_validate_prob=1.0)
    t = (marks[1] + marks[2]) / 2
    detail = FaultDetail(covered=True, correctable=False)
    _, res = run_sim(policy, faults=[(t, 0, "sdc", detail)])
    assert res.completed and not res.wrong_result
    assert res.sdc_detected == 1
    assert res.rollbacks == 1
    detect_time = t + res.sdc_detect_latency_s
    assert res.waste_rework == pytest.approx(detect_time - marks[1])


def test_ckpt_validation_disabled_misses_the_write(marks):
    policy = RecoveryPolicy(verify_fail_prob=0.0, ckpt_validate_prob=0.0)
    t = (marks[1] + marks[2]) / 2
    detail = FaultDetail(covered=True, correctable=False)
    _, res = run_sim(policy, faults=[(t, 0, "sdc", detail)])
    assert res.completed and res.wrong_result
    assert res.sdc_detected == 0 and res.sdc_undetected == 1


# -- injector-driven determinism ---------------------------------------------------


MIX = {"software": 0.3, "node": 0.15, "sdc": 0.3, "straggler": 0.15,
       "burst": 0.1}


def _mixed_run(seed):
    model = FaultModel(
        node_mtbf_s=6.0,
        kind_weights=MIX,
        straggler_repair_s=2.0,
        burst_size=2,
        sdc_coverage=0.8,
        sdc_correct_prob=0.5,
    )
    fi = FaultInjector(model, nnodes=4, seed=seed)
    sim = BESSTSimulator(
        taxonomy_app(20, verify_at=(4, 8, 12, 16)),
        make_arch(),
        nranks=8,
        seed=0,
        monte_carlo=False,
        fault_injector=fi,
        recovery_policy=RecoveryPolicy(verify_fail_prob=0.0),
    )
    res = sim.run(max_events=20_000_000)
    return res, fi.log.to_rows()


def test_mixed_fault_stream_is_deterministic():
    res_a, log_a = _mixed_run(seed=57)
    res_b, log_b = _mixed_run(seed=57)
    assert log_a  # the stream actually fired faults
    assert log_a == log_b
    assert res_a.total_time == res_b.total_time
    assert res_a.faults_by_kind == res_b.faults_by_kind
    assert (res_a.sdc_detected, res_a.sdc_undetected, res_a.sdc_corrected) == (
        res_b.sdc_detected,
        res_b.sdc_undetected,
        res_b.sdc_corrected,
    )


def test_mixed_fault_stream_varies_with_seed():
    _, log_a = _mixed_run(seed=57)
    _, log_b = _mixed_run(seed=44)
    assert log_a != log_b


def test_injector_log_records_kind_metadata():
    res, rows = _mixed_run(seed=57)
    kinds = {row[2] for row in rows}
    assert kinds <= set(FAULT_KINDS)
    assert len(kinds) >= 3  # the mix actually exercises the taxonomy
    for row in rows:
        t, node, kind, victims, slowdown, detected, outcome = row
        if kind == "burst":
            assert len(victims) >= 1 and node in victims
        if kind == "straggler":
            assert slowdown > 1.0
