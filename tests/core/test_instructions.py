"""Unit tests for the abstract instruction set and BEO objects."""

import pytest

from repro.core import (
    AppBEO,
    ArchBEO,
    Checkpoint,
    Collective,
    Compute,
    Exchange,
    Marker,
    unroll_loop,
)
from repro.models import CallableModel, ConstantModel, ModelError
from repro.network import FullyConnected


def test_compute_of_sorts_params():
    c = Compute.of("k", b=2, a=1)
    assert c.params == (("a", 1), ("b", 2))
    assert c.param_dict() == {"a": 1, "b": 2}


def test_compute_hashable_and_frozen():
    a = Compute.of("k", x=1)
    b = Compute.of("k", x=1)
    assert a == b and hash(a) == hash(b)
    with pytest.raises(AttributeError):
        a.kernel = "other"


def test_checkpoint_instruction():
    c = Checkpoint.of(2, "fti_l2", epr=10, ranks=64)
    assert c.level == 2
    assert c.param_dict() == {"epr": 10, "ranks": 64}


def test_collective_validation():
    Collective("barrier")
    Collective("allreduce", nbytes=8)
    with pytest.raises(ValueError):
        Collective("allgather")
    with pytest.raises(ValueError):
        Collective("barrier", nbytes=-1)


def test_exchange_validation():
    Exchange(nbytes=0, neighbors=0)
    with pytest.raises(ValueError):
        Exchange(nbytes=-1)
    with pytest.raises(ValueError):
        Exchange(nbytes=1, neighbors=-1)


def test_unroll_loop():
    body = [Compute.of("k"), Marker("m")]
    out = unroll_loop(body, 3)
    assert len(out) == 6
    assert out[0] == out[2] == out[4]
    assert unroll_loop(body, 0) == []
    with pytest.raises(ValueError):
        unroll_loop(body, -1)


# -- AppBEO ---------------------------------------------------------------------


def make_appbeo(**kw):
    def builder(rank, nranks, params):
        return [Compute.of("k", n=params["n"], rank=rank)]

    return AppBEO("test", builder, default_params={"n": 5}, **kw)


def test_appbeo_builds_with_defaults():
    app = make_appbeo()
    instrs = app.build(0, 4)
    assert instrs[0].param_dict()["n"] == 5


def test_appbeo_param_override():
    app = make_appbeo()
    instrs = app.build(1, 4, {"n": 9})
    assert instrs[0].param_dict() == {"n": 9, "rank": 1}


def test_appbeo_rank_checks():
    app = make_appbeo()
    with pytest.raises(IndexError):
        app.build(4, 4)
    with pytest.raises(ValueError):
        app.check_ranks(0)


def test_appbeo_custom_rank_validation():
    def only_even(n):
        if n % 2:
            raise ValueError("odd")

    app = make_appbeo(validate_ranks=only_even)
    app.check_ranks(4)
    with pytest.raises(ValueError):
        app.check_ranks(3)


# -- ArchBEO ---------------------------------------------------------------------


def test_archbeo_bind_and_predict():
    arch = ArchBEO("m")
    arch.bind("k", ConstantModel(0.5))
    assert arch.predict("k", {}) == 0.5


def test_archbeo_missing_model():
    arch = ArchBEO("m")
    with pytest.raises(ModelError):
        arch.predict("nope", {})


def test_archbeo_collective_pricing():
    arch = ArchBEO("m", topology=FullyConnected(8))
    t_bar = arch.collective_time(Collective("barrier"), 8)
    t_all = arch.collective_time(Collective("allreduce", nbytes=1024), 8)
    assert 0 < t_bar < t_all
    for op in ("broadcast", "reduce", "gather", "alltoall"):
        assert arch.collective_time(Collective(op, nbytes=64), 8) >= 0


def test_archbeo_exchange_pricing():
    arch = ArchBEO("m", topology=FullyConnected(8))
    t1 = arch.exchange_time(Exchange(nbytes=1000, neighbors=2))
    t2 = arch.exchange_time(Exchange(nbytes=1000, neighbors=6))
    assert t2 == pytest.approx(3 * t1)


def test_archbeo_without_topology_rejects_comm():
    arch = ArchBEO("m")
    with pytest.raises(ModelError):
        arch.collective_time(Collective("barrier"), 4)
    with pytest.raises(ModelError):
        arch.exchange_time(Exchange(nbytes=1))


def test_archbeo_placement():
    arch = ArchBEO("m", cores_per_node=4)
    assert arch.node_of_rank(0) == 0
    assert arch.node_of_rank(7) == 1
    assert arch.nodes_for(9) == 3
    assert arch.nodes_for(10, ranks_per_node=2) == 5


def test_archbeo_validation():
    with pytest.raises(ValueError):
        ArchBEO("m", cores_per_node=0)
