"""Workflow drivers: ModelDevelopment, build_archbeo, simulate_design_point."""

import pytest

from repro.core import (
    ModelDevelopment,
    build_archbeo,
    simulate_design_point,
)
from repro.core.fault_injection import FaultInjector, FaultModel
from repro.apps import iterative_solver_appbeo
from repro.core.ft import scenario_l1
from repro.models.symreg import GPConfig
from repro.testbed import KernelTruth, VirtualMachine
from repro.network import FullyConnected

_FAST = GPConfig(population_size=60, generations=6, n_genes=2)


def machine():
    return VirtualMachine(
        "toy",
        nnodes=16,
        cores_per_node=2,
        topology=FullyConnected(16),
        kernels={
            "solve": KernelTruth(lambda p: 1e-4 * p["n"], cv=0.05),
            "fti_l1": KernelTruth(lambda p: 1e-3 + 2e-5 * p["n"], cv=0.2),
        },
        ranks_per_node=2,
    )


def grid():
    return [{"n": n, "ranks": r} for n in (10, 20, 40, 80) for r in (4, 8, 16)]


def test_model_development_runs_and_validates():
    dev = ModelDevelopment(
        machine(), ["solve", "fti_l1"], grid=grid(),
        samples_per_point=5, gp_config=_FAST, seed=0,
    ).run()
    assert set(dev.fitted) == {"solve", "fti_l1"}
    table = dev.validation_table()
    assert all(0 <= v < 100 for v in table.values())
    models = dev.models()
    assert models["solve"].predict({"n": 40, "ranks": 8}) > 0


def test_model_development_requires_kernels():
    with pytest.raises(ValueError):
        ModelDevelopment(machine(), [])


def test_build_archbeo_binds_everything():
    m = machine()
    dev = ModelDevelopment(
        m, ["solve"], grid=grid(), samples_per_point=4, gp_config=_FAST
    ).run()
    arch = build_archbeo(
        m, dev.models(), node_mtbf_s=1000.0, recovery_time_s=5.0
    )
    assert arch.name == "toy"
    assert arch.topology is m.topology
    assert arch.node_mtbf_s == 1000.0
    assert arch.recovery_time_s == 5.0
    assert arch.predict("solve", {"n": 20, "ranks": 4}) > 0
    assert arch.comm is not None  # derived from the topology


def test_simulate_design_point_monte_carlo():
    m = machine()
    dev = ModelDevelopment(
        m, ["solve", "fti_l1"], grid=grid(), samples_per_point=4, gp_config=_FAST
    ).run()
    arch = build_archbeo(m, dev.models())
    app = iterative_solver_appbeo(iterations=10, scenario=scenario_l1(5))
    mc = simulate_design_point(app, arch, nranks=8, params={"n": 40}, reps=3)
    assert mc.total_time.samples.size == 3
    assert mc.total_time.mean > 0
    assert mc.checkpoint_time.mean > 0


def test_simulate_design_point_with_faults():
    m = machine()
    dev = ModelDevelopment(
        m, ["solve", "fti_l1"], grid=grid(), samples_per_point=4, gp_config=_FAST
    ).run()
    arch = build_archbeo(m, dev.models(), recovery_time_s=0.001)
    app = iterative_solver_appbeo(iterations=20, scenario=scenario_l1(5))

    def fi_factory(seed):
        return FaultInjector(FaultModel(node_mtbf_s=0.05), nnodes=4, seed=seed)

    mc = simulate_design_point(
        app, arch, nranks=8, params={"n": 40}, reps=2,
        fault_injector_factory=fi_factory, max_events=5_000_000,
    )
    assert mc.mean_rollbacks > 0
