"""The pluggable fault-domain subsystem: registry, protocol, config.

Covers the ``repro.faults`` extraction: registry consistency (every
kind owned by exactly one domain, canonical draw order preserved),
``FaultModel.kind_weights`` validation edges (single-kind mixes, the
1e-6 sum tolerance at its exact boundary, unknown-kind messages),
the :class:`FaultDomain` protocol (dispatch, state snapshot/restore,
wiring-attr rejection), :class:`NodeRangeError` surfacing through the
``NetworkDomain`` injection path, structured fault-config parsing, and
the ``repro faults list`` / ``--fault-config`` CLI layer.
"""

import json

import pytest

from repro.core import FaultDetail, RecoveryPolicy
from repro.core.campaign import CampaignSpec, build_campaign_simulator
from repro.core.fault_injection import FAULT_KINDS, FaultModel
from repro.faults.registry import (
    KIND_TO_DOMAIN,
    REGISTRY,
    campaign_kwargs_from_config,
    domain_for_kind,
    kinds_of,
)
from repro.network.topology import NodeRangeError


def _sim(**kw):
    base = dict(
        node_mtbf_s=1e9,
        ckpt_period=5,
        nranks=4,
        nnodes=2,
        timesteps=10,
        net_topology="torus",
    )
    base.update(kw)
    spec = CampaignSpec(**base)
    policy = RecoveryPolicy(verify_fail_prob=0.0)
    return build_campaign_simulator(spec, 0, policy, inject=False)


# -- registry consistency ----------------------------------------------------------


def test_every_kind_owned_by_exactly_one_domain():
    seen = {}
    for info in REGISTRY:
        for kind in info.kinds:
            assert kind not in seen, f"{kind} owned by {seen[kind]} and {info.name}"
            seen[kind] = info.name
    assert set(seen) == set(FAULT_KINDS)
    assert seen == dict(KIND_TO_DOMAIN)


def test_kinds_of_preserves_draw_order():
    for info in REGISTRY:
        ordered = kinds_of(info.name)
        assert ordered == tuple(k for k in FAULT_KINDS if k in info.kinds)


def test_domain_for_kind_default():
    assert domain_for_kind("sdc") == "sdc"
    assert domain_for_kind("no-such-kind", None) is None
    with pytest.raises(KeyError):
        domain_for_kind("no-such-kind")


def test_simulator_dispatch_table_matches_registry():
    sim = _sim()
    for kind in FAULT_KINDS:
        assert sim._domain_by_kind[kind].name == domain_for_kind(kind)
        assert sim._domain_by_kind[kind].wants(kind)


# -- FaultModel.kind_weights edges -------------------------------------------------


def test_single_kind_weight_one_draws_only_that_kind():
    model = FaultModel(node_mtbf_s=10.0, kind_weights={"straggler": 1.0})
    import random

    rng = random.Random(7)
    assert {model.draw_kind(rng) for _ in range(64)} == {"straggler"}


def test_kind_weights_sum_tolerance_boundary():
    # |sum - 1| <= 1e-6 is accepted; just beyond is rejected.  9e-7 and
    # 2e-6 sit clear of the boundary on either side so float rounding
    # in the sum cannot flip the verdict.
    FaultModel(
        node_mtbf_s=10.0,
        kind_weights={"software": 0.5, "node": 0.5 + 9e-7},
    )
    with pytest.raises(ValueError, match="must sum to 1"):
        FaultModel(
            node_mtbf_s=10.0,
            kind_weights={"software": 0.5, "node": 0.5 + 2e-6},
        )


def test_unknown_kind_message_lists_sorted_unknowns():
    with pytest.raises(ValueError) as err:
        FaultModel(
            node_mtbf_s=10.0,
            kind_weights={"zz_bogus": 0.5, "aa_bogus": 0.5},
        )
    assert "['aa_bogus', 'zz_bogus']" in str(err.value)


def test_negative_weight_rejected():
    with pytest.raises(ValueError, match="must be >= 0"):
        FaultModel(
            node_mtbf_s=10.0,
            kind_weights={"software": 1.5, "node": -0.5},
        )


# -- FaultDomain protocol ----------------------------------------------------------


def test_snapshot_restore_round_trip():
    sim = _sim()
    dom = sim._straggler_dom
    dom.node_slowdown[1] = 3.0
    dom.excess_s = 1.25
    state = dom.snapshot_state()
    assert "sim" not in state and "ctx" not in state
    dom.node_slowdown.clear()
    dom.excess_s = 0.0
    dom.restore_state(state)
    assert dom.node_slowdown == {1: 3.0}
    assert dom.excess_s == 1.25


def test_restore_state_rejects_wiring_attrs():
    sim = _sim()
    with pytest.raises(ValueError, match="wiring"):
        sim._straggler_dom.restore_state({"sim": None})


def test_unknown_kind_injection_message():
    sim = _sim()
    with pytest.raises(ValueError, match="unknown fault kind 'meteor'"):
        sim.inject_fault(0, kind="meteor")


# -- NodeRangeError through the NetworkDomain path ---------------------------------


def test_out_of_range_edge_raises_node_range_error():
    sim = _sim()
    with pytest.raises(NodeRangeError):
        sim.inject_fault(0, kind="link", detail=FaultDetail(edge=(0, 999)))


def test_node_range_error_is_both_index_and_value_error():
    sim = _sim()
    with pytest.raises(IndexError):
        sim.inject_fault(0, kind="link", detail=FaultDetail(edge=(0, 999)))
    with pytest.raises(ValueError):
        sim.inject_fault(0, kind="link", detail=FaultDetail(edge=(0, 999)))


# -- structured fault-config parsing -----------------------------------------------


def test_campaign_kwargs_from_config_round_trip():
    cfg = {
        "mix": {"software": 0.5, "sdc": 0.5},
        "sdc": {"coverage": 0.8, "correct_prob": 0.25},
        "straggler": {"slowdown": 3.0, "repair_s": 10.0},
        "network": {
            "link_mtbf_s": 50.0,
            "repair_s": 5.0,
            "topology": "fattree",
            "fault_split": {"link": 0.7, "switch": 0.2, "netdeg": 0.1},
        },
        "failstop": {"burst_size": 4},
    }
    kwargs = campaign_kwargs_from_config(cfg)
    assert kwargs["fault_mix"] == {"software": 0.5, "sdc": 0.5}
    assert kwargs["sdc_coverage"] == 0.8
    assert kwargs["straggler_slowdown"] == 3.0
    assert kwargs["net_link_mtbf_s"] == 50.0
    assert kwargs["net_topology"] == "fattree"
    assert kwargs["net_fault_split"] == (
        ("link", 0.7),
        ("netdeg", 0.1),
        ("switch", 0.2),
    )
    # every produced kwarg must be a real CampaignSpec field
    spec = CampaignSpec(node_mtbf_s=10.0, ckpt_period=5, **kwargs)
    assert spec.sdc_correct_prob == 0.25


def test_fault_config_rejects_unknown_section_and_field():
    with pytest.raises(ValueError, match="unknown fault-config section"):
        campaign_kwargs_from_config({"cosmic": {}})
    with pytest.raises(ValueError, match="unknown field"):
        campaign_kwargs_from_config({"sdc": {"coverage": 0.9, "volts": 1.2}})
    with pytest.raises(ValueError, match="unknown fault kind"):
        campaign_kwargs_from_config({"mix": {"meteor": 1.0}})


# -- CLI layer ---------------------------------------------------------------------


def test_faults_list_cli(capsys):
    from repro.cli import main

    assert main(["faults", "list"]) == 0
    out = capsys.readouterr().out
    for info in REGISTRY:
        assert info.name in out
    for kind in FAULT_KINDS:
        assert kind in out


def test_fault_config_flag_precedence(tmp_path):
    from repro.cli import _apply_fault_config, _build_parser

    cfg = tmp_path / "faults.json"
    cfg.write_text(
        json.dumps({"sdc": {"coverage": 0.8}, "network": {"repair_s": 7.0}})
    )
    # file overrides defaults
    args = _build_parser().parse_args(
        ["campaign", "--fault-config", str(cfg)]
    )
    _apply_fault_config(args)
    assert args.sdc_coverage == 0.8
    assert args.net_repair_time == 7.0
    # explicit flag beats the file
    args = _build_parser().parse_args(
        ["campaign", "--fault-config", str(cfg), "--sdc-coverage", "0.99"]
    )
    _apply_fault_config(args)
    assert args.sdc_coverage == 0.99
    assert args.net_repair_time == 7.0


def test_fault_config_bad_file_exits(tmp_path):
    from repro.cli import _apply_fault_config, _build_parser

    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    args = _build_parser().parse_args(
        ["campaign", "--fault-config", str(bad)]
    )
    with pytest.raises(SystemExit, match="not valid JSON"):
        _apply_fault_config(args)
