"""Deterministic replay: identical seeds must reproduce identical runs.

The fault lifecycle adds several RNG consumers (failure interarrivals,
fault kinds, read-back verification); these tests pin the property that
every stream is derived from explicit seeds, so reruns — sequential or
process-parallel — are bit-identical.
"""

import pytest

from repro.core import (
    AppBEO,
    ArchBEO,
    BESSTSimulator,
    Checkpoint,
    Collective,
    Compute,
    FaultInjector,
    FaultModel,
    RecoveryPolicy,
)
from repro.core.campaign import CampaignSpec, ResilienceCampaign
from repro.models import ConstantModel
from repro.network import FullyConnected


def replay_app(n_steps=25):
    def builder(rank, nranks, params):
        body = []
        for ts in range(1, n_steps + 1):
            body.append(Compute.of("k"))
            if ts % 5 == 0:
                body.append(Checkpoint.of(2, "ckpt"))
            body.append(Collective("allreduce", nbytes=8))
        return body

    return AppBEO("replay", builder)


def run_once(seed, with_injector=True, policy=None):
    arch = ArchBEO("m", topology=FullyConnected(8), cores_per_node=2)
    arch.bind("k", ConstantModel(0.1))
    arch.bind("ckpt", ConstantModel(0.05))
    arch.recovery_time_s = 0.2
    fi = (
        FaultInjector(
            FaultModel(node_mtbf_s=4.0, software_fraction=0.7),
            nnodes=4,
            seed=seed + 17,
        )
        if with_injector
        else None
    )
    sim = BESSTSimulator(
        replay_app(),
        arch,
        nranks=8,
        seed=seed,
        monte_carlo=False,
        fault_injector=fi,
        recovery_policy=policy
        or RecoveryPolicy(verify_fail_prob=0.2, requeue_delay_s=2.0),
    )
    res = sim.run(max_events=5_000_000)
    return res, fi


@pytest.mark.parametrize("seed", [0, 3, 11])
def test_identical_seeds_replay_identically(seed):
    a, fa = run_once(seed)
    b, fb = run_once(seed)
    # byte-identical fault event logs: same times, nodes and kinds
    assert fa.log.entries == fb.log.entries
    assert a.total_time == b.total_time
    assert a.rollbacks == b.rollbacks
    assert a.faults_injected == b.faults_injected
    assert a.verify_failures == b.verify_failures
    assert a.requeues == b.requeues
    assert a.wasted_time == b.wasted_time
    assert a.completed == b.completed


def test_replay_without_injector():
    a, _ = run_once(5, with_injector=False)
    b, _ = run_once(5, with_injector=False)
    assert a.faults_injected == 0
    assert a.total_time == b.total_time
    assert a.events_fired == b.events_fired


def test_campaign_parallel_matches_sequential():
    """The process-parallel campaign path must be bit-identical to the
    in-process one (replicas are pure functions of (spec, policy, seed))."""
    spec = CampaignSpec(node_mtbf_s=6.0, ckpt_period=5, timesteps=25)
    policy = RecoveryPolicy(verify_fail_prob=0.1, requeue_delay_s=2.0)
    seq = ResilienceCampaign(reps=4, base_seed=0, policy=policy, n_workers=1)
    par = ResilienceCampaign(reps=4, base_seed=0, policy=policy, n_workers=2)

    p_seq = seq.run_point(spec)
    p_par = par.run_point(spec)
    assert p_seq.to_dict() == p_par.to_dict()
    # per-replica fault logs too, not just the aggregates
    for a, b in zip(p_seq.replicas, p_par.replicas):
        assert a == b


def test_campaign_seed_changes_results():
    spec = CampaignSpec(node_mtbf_s=6.0, ckpt_period=5, timesteps=25)
    a = ResilienceCampaign(reps=3, base_seed=0).run_point(spec)
    b = ResilienceCampaign(reps=3, base_seed=100).run_point(spec)
    logs_a = [r["fault_log"] for r in a.replicas]
    logs_b = [r["fault_log"] for r in b.replicas]
    assert logs_a != logs_b
