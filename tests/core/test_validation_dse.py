"""Validation reports and DSE sweep utilities."""

import pytest

from repro.core import (
    DesignPoint,
    NO_FT,
    ValidationReport,
    overhead_matrix,
    scenario_l1,
    sweep,
    validate_simulation,
)
from repro.core.dse import format_overhead_tables


# -- ValidationReport ----------------------------------------------------------


def test_report_mape_and_worst():
    rep = ValidationReport("r")
    rep.add({"p": 1}, measured=100.0, predicted=110.0)
    rep.add({"p": 2}, measured=100.0, predicted=80.0)
    assert rep.mape == pytest.approx(15.0)
    assert rep.worst.point == {"p": 2}
    s = rep.summary()
    assert s["points"] == 2 and s["worst_error"] == pytest.approx(20.0)


def test_report_requires_rows_and_positive_measured():
    rep = ValidationReport("empty")
    with pytest.raises(ValueError):
        _ = rep.mape
    with pytest.raises(ValueError):
        rep.add({}, measured=0.0, predicted=1.0)


def test_report_table_renders():
    rep = ValidationReport("k")
    rep.add({"epr": 5}, 1.0, 1.1)
    text = rep.table()
    assert "MAPE" in text and "epr=5" in text


def test_validate_simulation_pairs_keys():
    measured = {(5, 8): 1.0, (10, 8): 2.0}
    predicted = {(5, 8): 1.1, (10, 8): 1.9}
    rep = validate_simulation("test", measured, predicted)
    assert rep.mape == pytest.approx((10 + 5) / 2)
    assert rep.rows[0].point == {"epr": 5, "ranks": 8}


def test_validate_simulation_rejects_mismatch():
    with pytest.raises(KeyError):
        validate_simulation("t", {1: 1.0}, {2: 1.0})


# -- DSE sweep ---------------------------------------------------------------------


def fake_eval(point: DesignPoint) -> float:
    base = point.epr * 0.1 + point.ranks * 0.001
    mult = {"no_ft": 1.0, "l1": 1.5}[point.scenario.name]
    return base * mult


def test_sweep_covers_grid():
    out = sweep(fake_eval, [5, 10], [8, 64], [NO_FT, scenario_l1()])
    assert len(out) == 8
    assert out[(5, 8, "no_ft")] == pytest.approx(0.508)
    assert out[(5, 8, "l1")] == pytest.approx(0.762)


def test_overhead_matrix_baseline_is_100():
    out = sweep(fake_eval, [5, 10], [8, 64], [NO_FT, scenario_l1()])
    pct = overhead_matrix(out, baseline_key=(5, 8, "no_ft"))
    assert pct[(5, 8, "no_ft")] == pytest.approx(100.0)
    assert pct[(5, 8, "l1")] == pytest.approx(150.0)


def test_overhead_matrix_default_baseline_and_errors():
    out = {(1, 1, "a"): 2.0, (2, 1, "a"): 4.0}
    pct = overhead_matrix(out)
    assert pct[(1, 1, "a")] == 100.0
    with pytest.raises(KeyError):
        overhead_matrix(out, baseline_key=(9, 9, "x"))
    with pytest.raises(ValueError):
        overhead_matrix({})
    with pytest.raises(ValueError):
        overhead_matrix({(1, 1, "a"): 0.0})


def test_format_overhead_tables():
    out = sweep(fake_eval, [5, 10], [8], [NO_FT, scenario_l1()])
    pct = overhead_matrix(out, baseline_key=(5, 8, "no_ft"))
    text = format_overhead_tables(pct, [5, 10], [8], ["no_ft", "l1"])
    assert "8 Ranks" in text and "100%" in text


def test_design_point_key():
    p = DesignPoint(epr=10, ranks=64, scenario=scenario_l1())
    assert p.key == (10, 64, "l1")
    assert "l1" in repr(p)


def test_sweep_empty_raises():
    with pytest.raises(ValueError):
        sweep(fake_eval, [], [], [])
