"""The full fault lifecycle: torn checkpoints, nested faults, escalation,
requeue and abort (the robustness extension over the seed's one-shot
atomic rollback)."""

import pytest

from repro.core import (
    AppBEO,
    ArchBEO,
    BESSTSimulator,
    Checkpoint,
    Collective,
    Compute,
    RecoveryPolicy,
)
from repro.models import ConstantModel
from repro.network import FullyConnected


def lifecycle_app(n_steps=20, levels=None):
    """SPMD app checkpointing at *levels*: a ``{timestep: level}`` map
    (default: L1 every 5 steps)."""
    levels = levels if levels is not None else {ts: 1 for ts in range(5, n_steps + 1, 5)}

    def builder(rank, nranks, params):
        body = []
        for ts in range(1, n_steps + 1):
            body.append(Compute.of("k"))
            if ts in levels:
                body.append(Checkpoint.of(levels[ts], "ckpt"))
            body.append(Collective("allreduce", nbytes=8))
        return body

    return AppBEO("lifecycle", builder)


def make_arch():
    arch = ArchBEO("m", topology=FullyConnected(8), cores_per_node=2)
    arch.bind("k", ConstantModel(0.1))
    arch.bind("ckpt", ConstantModel(0.05))
    arch.recovery_time_s = 0.2
    return arch


def run_sim(policy, faults=(), n_steps=20, levels=None, seed=0):
    """Run with faults scheduled at exact instants: (time, node, kind)."""
    sim = BESSTSimulator(
        lifecycle_app(n_steps, levels),
        make_arch(),
        nranks=8,
        seed=seed,
        monte_carlo=False,
        recovery_policy=policy,
    )
    for t, node, kind in faults:
        sim.engine.schedule(
            t, lambda ev, n=node, k=kind: sim.inject_fault(n, kind=k)
        )
    return sim, sim.run(max_events=5_000_000)


@pytest.fixture(scope="module")
def marks():
    """Commit times of the 4 periodic L1 checkpoints in a clean run."""
    _, clean = run_sim(None)
    m = clean.checkpoint_marks()
    assert len(m) == 4
    return [t for t, _ in m]


# -- torn checkpoints ---------------------------------------------------------------


def test_torn_l1_rolls_back_to_previous_committed(marks):
    """A fault mid-third-checkpoint with in-place L1 writes destroys the
    second (previous committed) instance too: recovery lands on the
    *first* checkpoint.  Without in-place writes only the in-progress
    instance is lost and recovery lands on the second."""
    t_torn = marks[2] - 0.02  # inside the 3rd checkpoint's 0.05s write
    atomic = RecoveryPolicy(verify_fail_prob=0.0, l1_inplace_writes=False)
    inplace = RecoveryPolicy(verify_fail_prob=0.0, l1_inplace_writes=True)

    sim_a, res_a = run_sim(atomic, [(t_torn, 0, "software")])
    sim_b, res_b = run_sim(inplace, [(t_torn, 0, "software")])

    # all 8 ranks were mid-write; both policies observe the tear
    assert res_a.torn_checkpoints == res_b.torn_checkpoints == 8
    assert res_a.rollbacks == res_b.rollbacks == 1
    assert res_a.completed and res_b.completed
    # atomic: lost work since ckpt 2; in-place: since ckpt 1
    assert res_a.waste_rework == pytest.approx(t_torn - marks[1])
    assert res_b.waste_rework == pytest.approx(t_torn - marks[0])
    # the extra rework is exactly one checkpoint period
    assert res_b.waste_rework - res_a.waste_rework == pytest.approx(
        marks[1] - marks[0]
    )
    assert res_b.total_time > res_a.total_time


def test_fault_outside_checkpoint_window_tears_nothing(marks):
    t = marks[0] + 0.3 * (marks[1] - marks[0])  # mid-compute
    _, res = run_sim(RecoveryPolicy(verify_fail_prob=0.0), [(t, 0, "software")])
    assert res.torn_checkpoints == 0
    assert res.waste_rework == pytest.approx(t - marks[0])


# -- nested faults ------------------------------------------------------------------


def test_nested_fault_pays_second_recovery(marks):
    """A fault landing during recovery re-enters recovery: fresh downtime,
    same lost work (ranks were paused, nothing new to lose)."""
    policy = RecoveryPolicy(
        verify_fail_prob=0.0, retry_delay_s=0.0, l1_inplace_writes=False
    )
    t1 = marks[0] + 0.3 * (marks[1] - marks[0])
    t2 = t1 + 0.1  # inside the first 0.2s recovery window

    _, single = run_sim(policy, [(t1, 0, "software")])
    _, nested = run_sim(policy, [(t1, 0, "software"), (t2, 1, "software")])

    assert single.nested_faults == 0
    assert nested.nested_faults == 1
    assert nested.faults_injected == 2
    assert nested.recovery_attempts == 2
    assert nested.rollbacks == 2
    # two full downtime windows...
    assert nested.waste_downtime == pytest.approx(2 * 0.2)
    # ...but the lost work is charged once, not per attempt
    assert nested.waste_rework == pytest.approx(t1 - marks[0])
    assert nested.completed
    assert nested.total_time > single.total_time


def test_nested_node_fault_escalates_episode_kind(marks):
    """A node loss nested inside a software-fault recovery upgrades the
    episode: the L1-only checkpoint no longer covers it, so the second
    attempt restarts from the beginning."""
    policy = RecoveryPolicy(verify_fail_prob=0.0, retry_delay_s=0.0)
    t1 = marks[1] + 0.1
    _, res = run_sim(policy, [(t1, 0, "software"), (t1 + 0.1, 2, "node")])
    assert res.nested_faults == 1
    # the merged episode restarts from the input deck: all progress lost
    assert res.waste_rework == pytest.approx(t1)
    assert res.completed


# -- escalation ladder ---------------------------------------------------------------


#: newest checkpoint is L1 so the ladder has distinct L1/L2/L4 rungs
MIXED_LEVELS = {4: 4, 8: 2, 12: 1}


def test_escalation_climbs_l1_l2_l4_then_restart():
    policy = RecoveryPolicy(
        verify_fail_prob=0.999,  # deterministic seed: every read-back fails
        max_attempts=4,
        retry_delay_s=0.0,
        max_requeues=0,
        l1_inplace_writes=False,
    )
    _, clean = run_sim(None, n_steps=16, levels=MIXED_LEVELS)
    t_fault = clean.checkpoint_marks()[-1][0] + 0.05

    sim, res = run_sim(
        policy, [(t_fault, 0, "software")], n_steps=16, levels=MIXED_LEVELS
    )
    # attempts walk seq3(L1) -> seq2(L2) -> seq1(L4) -> 0, which always
    # verifies; the attempt budget is exactly consumed, never exceeded
    assert res.recovery_attempts == 4
    assert res.verify_failures == 3
    assert res.escalations == 3
    assert res.rollbacks == 4
    assert res.completed
    assert sim.state == "done"
    # full restart: everything up to the fault is rework
    assert res.waste_rework == pytest.approx(t_fault)


def test_escalation_exhaustion_aborts_without_hanging():
    policy = RecoveryPolicy(
        verify_fail_prob=0.999,
        max_attempts=2,
        retry_delay_s=0.0,
        max_requeues=0,
        l1_inplace_writes=False,
    )
    _, clean = run_sim(None, n_steps=16, levels=MIXED_LEVELS)
    t_fault = clean.checkpoint_marks()[-1][0] + 0.05

    sim, res = run_sim(
        policy, [(t_fault, 0, "software")], n_steps=16, levels=MIXED_LEVELS
    )
    # no exception, no livelock: the run drains and reports the abort
    assert res.completed is False
    assert sim.state == "aborted"
    assert res.finish_times == []
    assert res.recovery_attempts == 2
    assert res.requeues == 0
    # aborted at the second failed verification
    assert res.total_time == pytest.approx(t_fault + 2 * 0.2)


def test_exhaustion_requeues_then_finishes():
    policy = RecoveryPolicy(
        verify_fail_prob=0.999,
        max_attempts=2,
        retry_delay_s=0.0,
        max_requeues=1,
        requeue_delay_s=3.0,
        l1_inplace_writes=False,
    )
    _, clean = run_sim(None, n_steps=16, levels=MIXED_LEVELS)
    t_fault = clean.checkpoint_marks()[-1][0] + 0.05
    t_in_queue = t_fault + 2 * 0.2 + 1.0  # inside the resubmission window

    sim, res = run_sim(
        policy,
        [(t_fault, 0, "software"), (t_in_queue, 1, "software")],
        n_steps=16,
        levels=MIXED_LEVELS,
    )
    assert res.completed
    assert res.requeues == 1
    assert res.waste_requeue == pytest.approx(3.0)
    # faults during the resubmission window do not hit the queued job
    assert res.faults_injected == 1
    # the requeued job restarts from the input deck and reruns everything
    assert res.total_time > clean.total_time + 3.0


def test_requeue_draws_from_spare_pool_then_degrades():
    """A node-loss requeue consumes a spare (cheap swap); with the pool
    exhausted it gracefully degrades to a full node rebuild."""
    base = dict(
        verify_fail_prob=0.999,
        max_attempts=1,
        retry_delay_s=0.0,
        max_requeues=1,
        requeue_delay_s=2.0,
        spare_swap_s=5.0,
        spare_rebuild_s=40.0,
        l1_inplace_writes=False,
    )
    levels = {ts: 2 for ts in range(5, 21, 5)}  # L2 covers node losses
    _, clean = run_sim(None, levels=levels)
    t_fault = clean.checkpoint_marks()[1][0] + 0.1

    _, with_spare = run_sim(
        RecoveryPolicy(n_spares=1, **base), [(t_fault, 0, "node")], levels=levels
    )
    _, no_spare = run_sim(
        RecoveryPolicy(n_spares=0, **base), [(t_fault, 0, "node")], levels=levels
    )
    assert with_spare.completed and no_spare.completed
    assert with_spare.requeues == no_spare.requeues == 1
    assert with_spare.waste_requeue == pytest.approx(2.0 + 5.0)
    assert no_spare.waste_requeue == pytest.approx(2.0 + 40.0)


def test_policy_from_spare_model():
    """The spare pool parameters come straight from the analytical
    spare-node model."""
    from repro.analytical.sparenodes import SpareNodeModel

    spare = SpareNodeModel(
        n_active=16, n_spare=3, node_mtbf=1e4, repair_time=600.0,
        swap_cost=7.0, rebuild_cost=90.0,
    )
    policy = RecoveryPolicy.from_spare_model(spare)
    assert policy.n_spares == 3
    assert policy.spare_swap_s == 7.0
    assert policy.spare_rebuild_s == 90.0
    tweaked = RecoveryPolicy.from_spare_model(spare, max_requeues=2)
    assert tweaked.max_requeues == 2
    assert tweaked.n_spares == 3


# -- legacy equivalence ---------------------------------------------------------------


def test_legacy_policy_matches_default_construction(marks):
    """``recovery_policy=None`` must keep the seed semantics exactly."""
    t = marks[1] + 0.2
    _, implicit = run_sim(None, [(t, 0, "software")])
    _, explicit = run_sim(RecoveryPolicy.legacy(), [(t, 0, "software")])
    assert implicit.total_time == explicit.total_time
    assert implicit.wasted_time == explicit.wasted_time
    assert implicit.rollbacks == explicit.rollbacks == 1
    assert implicit.verify_failures == 0
    assert implicit.requeues == 0
