"""Monte-Carlo convergence of simulated SDC outcomes to the analytical
:func:`repro.abft.costmodel.sdc_outcome_probabilities` model.

The cross-check that makes the simulated taxonomy trustworthy: with an
SDC-only fault mix, full in-place correction (``sdc_correct_prob=1`` —
detections never perturb timing, so every replica has the identical
exposure window) and a Verify kernel every timestep, the empirical
frequencies are analytically predictable:

* detected/injected  -> ``sdc_coverage``  (coverage drawn per strike),
* corrected == detected  (every detection is correctable),
* undetected/injected -> ``1 - sdc_coverage``,
* fraction of runs finishing with a wrong result -> ``p_bad_abft``,
* fraction of runs struck at all -> ``p_sdc``.
"""

import numpy as np
import pytest

from repro.abft.costmodel import sdc_outcome_probabilities
from repro.core import (
    AppBEO,
    ArchBEO,
    BESSTSimulator,
    Checkpoint,
    Collective,
    Compute,
    FaultInjector,
    FaultModel,
    RecoveryPolicy,
    Verify,
)
from repro.models import ConstantModel
from repro.network import FullyConnected

NNODES = 4
NODE_MTBF_S = 4.0  # system MTBF 1s: a few strikes per ~2s run
COVERAGE = 0.7
N_STEPS = 20
REPS = 80


def sdc_app():
    def builder(rank, nranks, params):
        body = []
        for ts in range(1, N_STEPS + 1):
            body.append(Compute.of("k"))
            body.append(Verify.of("v"))  # detect every timestep
            if ts % 5 == 0:
                body.append(Checkpoint.of(1, "ckpt"))
            body.append(Collective("allreduce", nbytes=8))
        return body

    return AppBEO("sdc-only", builder)


def make_arch():
    arch = ArchBEO("m", topology=FullyConnected(8), cores_per_node=2)
    arch.bind("k", ConstantModel(0.1))
    arch.bind("ckpt", ConstantModel(0.05))
    arch.bind("v", ConstantModel(0.005))
    arch.recovery_time_s = 0.2
    return arch


def one_replica(seed):
    model = FaultModel(
        node_mtbf_s=NODE_MTBF_S,
        kind_weights={"sdc": 1.0},
        sdc_coverage=COVERAGE,
        sdc_correct_prob=1.0,
    )
    fi = FaultInjector(model, nnodes=NNODES, seed=seed)
    sim = BESSTSimulator(
        sdc_app(),
        make_arch(),
        nranks=8,
        seed=0,
        monte_carlo=False,
        fault_injector=fi,
        recovery_policy=RecoveryPolicy(verify_fail_prob=0.0),
    )
    return sim.run(max_events=20_000_000)


@pytest.fixture(scope="module")
def replicas():
    return [one_replica(seed) for seed in range(REPS)]


def test_exposure_window_is_identical_across_replicas(replicas):
    # in-place correction is free: no replica's makespan depends on its
    # fault draw, which is what makes the analytic cross-check exact
    totals = {r.total_time for r in replicas}
    assert len(totals) == 1
    assert all(r.completed and r.rollbacks == 0 for r in replicas)


def test_detected_fraction_converges_to_coverage(replicas):
    injected = sum(r.sdc_injected for r in replicas)
    detected = sum(r.sdc_detected for r in replicas)
    corrected = sum(r.sdc_corrected for r in replicas)
    undetected = sum(r.sdc_undetected for r in replicas)
    assert injected > 50  # enough strikes for a meaningful frequency
    assert detected + undetected == injected
    assert corrected == detected
    # binomial sd of the ratio is ~sqrt(c(1-c)/injected) ~ 0.035
    assert detected / injected == pytest.approx(COVERAGE, abs=0.12)
    assert undetected / injected == pytest.approx(1 - COVERAGE, abs=0.12)


def test_wrong_result_rate_converges_to_p_bad_abft(replicas):
    total_time = replicas[0].total_time
    p = sdc_outcome_probabilities(
        sdc_rate_per_hour=3600.0 * NNODES / NODE_MTBF_S,
        job_hours=total_time / 3600.0,
        abft_coverage=COVERAGE,
    )
    struck_rate = np.mean([1.0 if r.sdc_injected else 0.0 for r in replicas])
    wrong_rate = np.mean([1.0 if r.wrong_result else 0.0 for r in replicas])
    # REPS=80 binomial sd is at most ~0.056; 3 sd tolerance
    assert struck_rate == pytest.approx(p["p_sdc"], abs=0.17)
    assert wrong_rate == pytest.approx(p["p_bad_abft"], abs=0.17)
    # ABFT must actually help: wrong results are rarer than strikes
    assert wrong_rate < struck_rate


def test_wrong_result_implies_undetected_and_vice_versa(replicas):
    for r in replicas:
        assert r.wrong_result == (r.sdc_undetected > 0)
