"""Simulator-level snapshot/restore and campaign replica resume."""

import pytest

from repro.core import (
    AppBEO,
    ArchBEO,
    BESSTSimulator,
    Checkpoint,
    Collective,
    Compute,
    FaultInjector,
    FaultModel,
    scenario_l1,
)
from repro.core.campaign import (
    CampaignSpec,
    ReplicaSnapshotConfig,
    ResilienceCampaign,
    _run_replica,
    build_campaign_simulator,
)
from repro.core.fault_injection import RecoveryPolicy
from repro.des.engine import SimulationError
from repro.des.snapshot import SnapshotStore
from repro.models import ConstantModel
from repro.network import FullyConnected


class SPMDBuilder:
    """Module-level (picklable) program builder — snapshots require it."""

    def __init__(self, n_steps, scenario):
        self.n_steps = n_steps
        self.scenario = scenario

    def __call__(self, rank, nranks, params):
        body = []
        for ts in range(1, self.n_steps + 1):
            body.append(Compute.of("k"))
            body.append(Collective("allreduce", nbytes=8))
            for level in self.scenario.checkpoints_due(ts):
                body.append(Checkpoint.of(level, "ckpt"))
        return body


def make_sim(seed=3, mtbf=3.0, n_steps=40):
    arch = ArchBEO("m", topology=FullyConnected(8), cores_per_node=2)
    arch.bind("k", ConstantModel(0.1))
    arch.bind("ckpt", ConstantModel(0.05))
    arch.recovery_time_s = 0.2
    fi = FaultInjector(
        FaultModel(node_mtbf_s=mtbf, software_fraction=1.0), nnodes=4, seed=seed
    )
    app = AppBEO("snap_l1", SPMDBuilder(n_steps, scenario_l1(5)))
    return BESSTSimulator(
        app, arch, nranks=8, seed=seed, fault_injector=fi, monte_carlo=False
    )


def result_key(res):
    return (
        res.total_time,
        res.events_fired,
        res.faults_injected,
        res.rollbacks,
        tuple(res.finish_times),
        res.wasted_time,
        res.waste_rework,
        res.waste_downtime,
        res.waste_requeue,
        res.checkpoint_time,
    )


def test_sim_kill_restore_continue_bit_identical(tmp_path):
    ref = make_sim().run()
    assert ref.faults_injected > 0  # faults are genuinely in flight

    sim = make_sim()
    sim.enable_snapshots(str(tmp_path), every_events=50)
    with pytest.raises(SimulationError):
        sim.run(max_events=ref.events_fired // 2)  # the "kill"

    store = SnapshotStore(str(tmp_path))
    assert store.latest() is not None
    resumed = BESSTSimulator.restore(store.latest())
    assert result_key(resumed.run()) == result_key(ref)


def test_sim_restore_twice_from_same_snapshot(tmp_path):
    """A snapshot is immutable: two restores replay identically."""
    sim = make_sim(seed=5)
    sim.enable_snapshots(str(tmp_path), every_events=80)
    with pytest.raises(SimulationError):
        sim.run(max_events=160)
    latest = SnapshotStore(str(tmp_path)).latest()
    # load both before running: the first resumed run keeps snapshotting
    # into the same store, and retention would recycle `latest`
    sim_a = BESSTSimulator.restore(latest)
    sim_b = BESSTSimulator.restore(latest)
    assert result_key(sim_a.run()) == result_key(sim_b.run())


def test_sim_snapshot_requires_picklable_builder(tmp_path):
    arch = ArchBEO("m", topology=FullyConnected(4), cores_per_node=2)
    arch.bind("k", ConstantModel(0.1))
    app = AppBEO("lam", lambda rank, nranks, params: [Compute.of("k")])
    sim = BESSTSimulator(app, arch, nranks=4, monte_carlo=False)
    from repro.des.snapshot import SnapshotError

    with pytest.raises(SnapshotError, match="picklable"):
        sim.snapshot()


# -- campaign replica resume --------------------------------------------------


SPEC = CampaignSpec(node_mtbf_s=6.0, ckpt_period=5, timesteps=30)
POLICY = RecoveryPolicy()


def test_replica_resumes_from_snapshot_bit_identical(tmp_path):
    seed = 1234
    fresh = _run_replica((SPEC, POLICY, seed))

    # simulate a kill mid-replica: run the exact production simulator
    # with snapshots enabled until the event budget trips
    snap_dir = str(tmp_path / "r0")
    cfg = ReplicaSnapshotConfig(directory=snap_dir, every_events=100)
    sim = build_campaign_simulator(SPEC, seed, POLICY)
    sim.enable_snapshots(snap_dir, every_events=cfg.every_events)
    with pytest.raises(SimulationError):
        sim.run(max_events=300)

    assert SnapshotStore(snap_dir).latest() is not None
    # the retried replica resumes mid-simulation...
    resumed = _run_replica((SPEC, POLICY, seed, cfg))
    assert resumed == fresh  # ...and is bit-identical to an uninterrupted run
    # completion clears the snapshot directory
    assert SnapshotStore(snap_dir).paths() == []


def test_replica_without_prior_snapshot_starts_fresh(tmp_path):
    cfg = ReplicaSnapshotConfig(directory=str(tmp_path / "r1"), every_events=100)
    with_cfg = _run_replica((SPEC, POLICY, 7, cfg))
    without = _run_replica((SPEC, POLICY, 7))
    assert with_cfg == without


def test_replica_snapshot_config_validation():
    with pytest.raises(ValueError, match="every_events"):
        ReplicaSnapshotConfig(directory="x", every_events=0)


def test_campaign_sim_snapshot_args_validated():
    with pytest.raises(ValueError, match="together"):
        ResilienceCampaign(reps=2, sim_snapshot_dir="/tmp/x")


def test_campaign_with_sim_snapshots_matches_plain(tmp_path):
    plain = ResilienceCampaign(reps=3, base_seed=0).run_point(SPEC)
    snap = ResilienceCampaign(
        reps=3,
        base_seed=0,
        sim_snapshot_dir=str(tmp_path / "snaps"),
        sim_snapshot_every=500,
    ).run_point(SPEC)
    assert snap.to_dict() == plain.to_dict()
    # completed replicas cleaned their stores; stray dirs may remain empty
    for sub in (tmp_path / "snaps").glob("*"):
        assert list(sub.glob("*.snap")) == []


def test_quarantine_hook_cleans_snapshot_dir(tmp_path, monkeypatch):
    """A poisoned replica's snapshots are discarded, not resumed later."""
    from repro.core import campaign as campaign_mod
    from repro.core.supervisor import RetryPolicy

    calls = []
    real_rmtree = campaign_mod.shutil.rmtree
    monkeypatch.setattr(
        campaign_mod.shutil,
        "rmtree",
        lambda path, ignore_errors=False: (calls.append(path),
                                           real_rmtree(path, ignore_errors=ignore_errors)),
    )

    def always_fails(payload):
        raise RuntimeError("boom")

    monkeypatch.setattr(campaign_mod, "_run_replica", always_fails)
    camp = ResilienceCampaign(
        reps=2,
        base_seed=0,
        retry=RetryPolicy(max_retries=1, backoff_base_s=0.0),
        sim_snapshot_dir=str(tmp_path / "s"),
        sim_snapshot_every=100,
    )
    point = camp.run_point(SPEC)
    assert point.replicas_done == 0
    assert len(calls) == 2  # one cleanup per quarantined replica
    assert all(str(tmp_path / "s") in c for c in calls)
