"""TaskSupervisor: retries, taxonomy, pool resurrection, WAL journal."""

import json
import os
import random

import pytest

from repro.core.supervisor import (
    FAILURE_KINDS,
    FAULT_ENV_VAR,
    GARBAGE,
    HarnessFaultInjector,
    JournalError,
    RetryPolicy,
    TaskSupervisor,
    WriteAheadJournal,
)

# -- module-level workers (picklable into forked pools) ---------------------------

_CALLS: dict = {}


def _double(x):
    return x * 2


def _always_raise(x):
    raise ValueError(f"bad input {x}")


def _raise_if_bad(x):
    if x == "bad":
        raise ValueError("poisoned payload")
    return x


def _always_oom(x):
    raise MemoryError("boom")


def _return_garbage(x):
    return GARBAGE


def _flaky(payload):
    """Fails the first ``payload['fail']`` calls (in-process only)."""
    key = payload["key"]
    _CALLS[key] = _CALLS.get(key, 0) + 1
    if _CALLS[key] <= payload["fail"]:
        raise RuntimeError(f"flaky {key} call {_CALLS[key]}")
    return payload["value"]


def _find_seed(mode, want_attempt, not_attempt, **probs):
    """Deterministically pick an injector seed with the wanted draw pattern."""
    for seed in range(500):
        inj = HarnessFaultInjector(seed=seed, **probs)
        if (
            inj.decide("k:0", want_attempt) == mode
            and inj.decide("k:0", not_attempt) is None
        ):
            return seed
    raise AssertionError(f"no seed draws {mode} at attempt {want_attempt}")


# -- clean paths ------------------------------------------------------------------


def test_clean_sequential_path():
    sup = TaskSupervisor(_double, n_workers=1)
    out = sup.run([(f"t{i}", i) for i in range(5)])
    assert out.results == {f"t{i}": 2 * i for i in range(5)}
    assert out.stats.completed == 5
    assert out.stats.retries == 0
    assert not out.stats.failures and not out.stats.quarantined


def test_clean_supervised_path():
    sup = TaskSupervisor(_double, n_workers=2)
    out = sup.run([(f"t{i}", i) for i in range(6)])
    assert out.results == {f"t{i}": 2 * i for i in range(6)}
    assert out.stats.pool_rebuilds == 0 and not out.stats.degraded


def test_empty_task_list():
    out = TaskSupervisor(_double, n_workers=2).run([])
    assert out.results == {} and out.stats.completed == 0


def test_on_result_fires_once_per_completion():
    seen = []
    sup = TaskSupervisor(_double, n_workers=1, on_result=lambda k, v: seen.append((k, v)))
    sup.run([("a", 1), ("b", 2)])
    assert sorted(seen) == [("a", 2), ("b", 4)]


# -- failure taxonomy -------------------------------------------------------------


def test_error_retried_then_succeeds():
    _CALLS.clear()
    retry = RetryPolicy(max_retries=3, backoff_base_s=0.001, backoff_max_s=0.002)
    sup = TaskSupervisor(_flaky, n_workers=1, retry=retry)
    out = sup.run([("f1", {"key": "f1", "fail": 2, "value": 42})])
    assert out.results == {"f1": 42}
    assert out.stats.retries == 2
    assert out.stats.by_kind["error"] == 2


def test_poison_quarantine_after_max_retries():
    retry = RetryPolicy(max_retries=2, backoff_base_s=0.001, backoff_max_s=0.002)
    sup = TaskSupervisor(_raise_if_bad, n_workers=1, retry=retry)
    out = sup.run([("p", "bad"), ("q", "fine")])
    assert "p" not in out.results
    assert out.stats.quarantined == ["p"]
    assert out.stats.by_kind["error"] == 3  # initial + 2 retries
    assert out.stats.by_kind["poisoned"] == 1
    kinds = {f.kind for f in out.stats.failures}
    assert kinds <= set(FAILURE_KINDS)
    assert "poisoned" in kinds
    # the healthy task still completed despite its poisoned neighbour
    assert out.results == {"q": "fine"}


def test_oom_classified_separately():
    retry = RetryPolicy(max_retries=0, backoff_base_s=0.001)
    out = TaskSupervisor(_always_oom, n_workers=1, retry=retry).run([("m", 0)])
    assert out.stats.by_kind["oom"] == 1
    assert out.stats.quarantined == ["m"]


def test_garbage_rejected_even_without_validator():
    retry = RetryPolicy(max_retries=1, backoff_base_s=0.001)
    out = TaskSupervisor(_return_garbage, n_workers=1, retry=retry).run([("g", 0)])
    assert "g" not in out.results
    assert out.stats.by_kind["error"] == 2


def test_validator_classifies_bad_results_as_error():
    retry = RetryPolicy(max_retries=0, backoff_base_s=0.001)
    sup = TaskSupervisor(
        _double, n_workers=1, retry=retry, validate=lambda v: v > 100
    )
    out = sup.run([("small", 1), ("big", 99)])
    assert out.results == {"big": 198}
    assert out.stats.quarantined == ["small"]


# -- crash / hang / degradation (real process pools) ------------------------------


def test_crash_rebuilds_pool_and_retries():
    seed = _find_seed("crash", want_attempt=1, not_attempt=2, crash_prob=0.3)
    inj = HarnessFaultInjector(crash_prob=0.3, seed=seed)
    retry = RetryPolicy(max_retries=8, backoff_base_s=0.01, backoff_max_s=0.05)
    sup = TaskSupervisor(
        _double, n_workers=2, retry=retry, fault_injector=inj
    )
    out = sup.run([("k:0", 7)])
    assert out.results == {"k:0": 14}
    assert out.stats.by_kind["crash"] >= 1
    assert out.stats.pool_rebuilds >= 1
    assert not out.stats.degraded


def test_hung_worker_is_reaped_by_timeout():
    seed = _find_seed("hang", want_attempt=1, not_attempt=2, hang_prob=0.3)
    inj = HarnessFaultInjector(hang_prob=0.3, hang_s=60.0, seed=seed)
    retry = RetryPolicy(
        max_retries=8, timeout_s=0.75, backoff_base_s=0.01, backoff_max_s=0.05
    )
    sup = TaskSupervisor(_double, n_workers=2, retry=retry, fault_injector=inj)
    out = sup.run([("k:0", 3)])
    assert out.results == {"k:0": 6}
    assert out.stats.by_kind["timeout"] >= 1
    assert out.stats.pool_rebuilds >= 1


def test_degrades_to_sequential_when_workers_keep_dying():
    inj = HarnessFaultInjector(crash_prob=1.0, seed=0)
    retry = RetryPolicy(
        max_retries=50, degrade_after=2, backoff_base_s=0.001, backoff_max_s=0.01
    )
    sup = TaskSupervisor(_double, n_workers=2, retry=retry, fault_injector=inj)
    out = sup.run([(f"t{i}", i) for i in range(4)])
    # in-process fallback is immune to harness faults: everything completes
    assert out.results == {f"t{i}": 2 * i for i in range(4)}
    assert out.stats.degraded
    assert out.stats.pool_rebuilds >= 2


def test_fault_env_restored_after_run():
    assert FAULT_ENV_VAR not in os.environ
    inj = HarnessFaultInjector(crash_prob=0.0, garbage_prob=0.0, seed=1)
    TaskSupervisor(_double, n_workers=2, fault_injector=inj).run([("a", 1)])
    assert FAULT_ENV_VAR not in os.environ


# -- injector ---------------------------------------------------------------------


def test_injector_is_deterministic_per_key_and_attempt():
    inj = HarnessFaultInjector(crash_prob=0.2, hang_prob=0.2, seed=9)
    draws = [(k, a, inj.decide(f"t:{k}", a)) for k in range(20) for a in (1, 2)]
    again = [(k, a, inj.decide(f"t:{k}", a)) for k in range(20) for a in (1, 2)]
    assert draws == again
    modes = {d for _, _, d in draws if d}
    assert modes  # 40 draws at 40% total fault probability must hit some


def test_injector_env_roundtrip_and_host_pid_guard():
    inj = HarnessFaultInjector(crash_prob=0.5, oom_prob=0.5, seed=4)
    os.environ[FAULT_ENV_VAR] = inj.with_host_pid().to_env()
    try:
        loaded = HarnessFaultInjector.from_env()
        assert loaded.crash_prob == 0.5 and loaded.host_pid == os.getpid()
        # in the host process the injector must never fire
        for i in range(50):
            assert loaded.maybe_fail(f"k{i}", 1) is None
    finally:
        del os.environ[FAULT_ENV_VAR]
    assert HarnessFaultInjector.from_env() is None


def test_injector_rejects_probabilities_over_one():
    with pytest.raises(ValueError):
        HarnessFaultInjector(crash_prob=0.7, hang_prob=0.7)


def test_from_env_tolerates_absent_empty_and_garbage_values():
    assert FAULT_ENV_VAR not in os.environ
    assert HarnessFaultInjector.from_env() is None
    for raw in ("", "not json", "[1, 2]", '"a string"', "null", "3.5"):
        os.environ[FAULT_ENV_VAR] = raw
        try:
            assert HarnessFaultInjector.from_env() is None, raw
        finally:
            del os.environ[FAULT_ENV_VAR]


def test_from_env_ignores_unknown_keys():
    os.environ[FAULT_ENV_VAR] = json.dumps(
        {"crash_prob": 0.25, "seed": 7, "future_knob": True, "other": [1]}
    )
    try:
        loaded = HarnessFaultInjector.from_env()
    finally:
        del os.environ[FAULT_ENV_VAR]
    assert loaded is not None
    assert loaded.crash_prob == 0.25 and loaded.seed == 7


def test_from_env_rejects_invalid_probabilities():
    os.environ[FAULT_ENV_VAR] = json.dumps({"crash_prob": 0.9, "hang_prob": 0.9})
    try:
        assert HarnessFaultInjector.from_env() is None
    finally:
        del os.environ[FAULT_ENV_VAR]


def test_fs_config_round_trips_and_tolerates_garbage():
    from repro.guard.fsfault import FsFaultConfig

    fs = FsFaultConfig(eio_prob=0.5, path_substring="wal", seed=11)
    inj = HarnessFaultInjector(fs=fs.to_dict())
    os.environ[FAULT_ENV_VAR] = inj.to_env()
    try:
        loaded = HarnessFaultInjector.from_env()
    finally:
        del os.environ[FAULT_ENV_VAR]
    assert loaded.fs_config() == fs
    assert HarnessFaultInjector().fs_config() is None
    assert HarnessFaultInjector(fs={"enospc_prob": 7.0}).fs_config() is None


@pytest.mark.skipif(not hasattr(os, "fork"), reason="needs fork")
def test_host_pid_guard_stops_at_the_fork_boundary():
    """``with_host_pid`` binds the *supervisor* pid: the same config that
    is inert in the host must fire in a forked child."""
    inj = HarnessFaultInjector(error_prob=1.0, seed=0).with_host_pid()
    assert inj.maybe_fail("k", 1) is None  # inert in the host process
    pid = os.fork()
    if pid == 0:  # child: the guard no longer matches this pid
        try:
            fired = False
            try:
                inj.maybe_fail("k", 1)
            except RuntimeError:
                fired = True
            os._exit(0 if fired else 1)
        except BaseException:
            os._exit(2)
    _, status = os.waitpid(pid, 0)
    assert os.waitstatus_to_exitcode(status) == 0


# -- retry policy -----------------------------------------------------------------


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(
        backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.5, jitter=0.0
    )
    rng = random.Random(0)
    delays = [policy.backoff_delay(a, rng) for a in (1, 2, 3, 4, 5)]
    assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]


def test_backoff_jitter_stays_within_band():
    policy = RetryPolicy(backoff_base_s=0.1, jitter=0.5, backoff_max_s=10.0)
    rng = random.Random(1)
    for _ in range(100):
        d = policy.backoff_delay(2, rng)
        assert 0.1 <= d <= 0.3  # 0.2 +/- 50%


def test_backoff_jitter_full_spread_never_negative():
    policy = RetryPolicy(backoff_base_s=0.1, jitter=1.0, backoff_max_s=10.0)
    rng = random.Random(3)
    delays = [policy.backoff_delay(1, rng) for _ in range(500)]
    assert all(0.0 <= d <= 0.2 for d in delays)  # 0.1 +/- 100%, floored at 0
    # the jitter really spreads: both halves of the band are reached
    assert min(delays) < 0.05 and max(delays) > 0.15


def test_backoff_attempt_below_one_clamps_to_first_delay():
    policy = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0, jitter=0.0)
    rng = random.Random(0)
    assert policy.backoff_delay(0, rng) == policy.backoff_delay(1, rng) == 0.1
    assert policy.backoff_delay(-3, rng) == 0.1


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(timeout_s=0.0)
    with pytest.raises(ValueError):
        TaskSupervisor(_double, n_workers=0)


# -- write-ahead journal ----------------------------------------------------------


def test_journal_append_and_reopen(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    meta = {"reps": 3, "base_seed": 0}
    with WriteAheadJournal(path, meta) as wal:
        wal.append({"kind": "replica", "i": 0, "x": 1.5})
        wal.append({"kind": "replica", "i": 1, "x": 2.5})
    with WriteAheadJournal(path, meta) as wal:
        assert [r["i"] for r in wal.records] == [0, 1]
        wal.append({"kind": "replica", "i": 2, "x": 3.5})
    stored_meta, records = WriteAheadJournal.read(path)
    assert stored_meta == meta
    assert [r["i"] for r in records] == [0, 1, 2]


def test_journal_meta_mismatch_raises(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    WriteAheadJournal(path, {"reps": 3}).close()
    with pytest.raises(JournalError):
        WriteAheadJournal(path, {"reps": 5})


def test_journal_tolerates_torn_tail(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    with WriteAheadJournal(path, {"reps": 2}) as wal:
        wal.append({"kind": "replica", "i": 0})
    with open(path, "a") as fh:  # simulate a SIGKILL mid-append
        fh.write('{"kind": "replica", "i": 1, "x": 0.123')
    with WriteAheadJournal(path, {"reps": 2}) as wal:
        assert [r["i"] for r in wal.records] == [0]
        wal.append({"kind": "replica", "i": 1})
    _, records = WriteAheadJournal.read(path)
    assert [r["i"] for r in records] == [0, 1]
    # every surviving line is whole, parseable JSON
    with open(path) as fh:
        for line in fh:
            json.loads(line)


def test_journal_rejects_headerless_file(tmp_path):
    path = str(tmp_path / "wal.jsonl")
    with open(path, "w") as fh:
        fh.write('{"kind": "replica", "i": 0}\n')
    with pytest.raises(JournalError):
        WriteAheadJournal.read(path)
