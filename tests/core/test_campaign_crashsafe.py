"""Crash-safe campaign execution: WAL journal, resume, chaos injection.

The acceptance properties pinned here:

* a retried replica is bit-identical to its first attempt,
* no completed replica is ever recomputed or lost,
* a campaign SIGKILLed mid-sweep and resumed produces a report
  bit-identical to an uninterrupted run,
* a chaos run (20 % injected worker crash/hang probability) completes
  with zero lost or duplicated replicas and an unchanged report.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro.core.campaign as campaign_mod
from repro.core.campaign import (
    CampaignSpec,
    ResilienceCampaign,
    _run_replica,
    campaign_spec_key,
)
from repro.core.fault_injection import RecoveryPolicy
from repro.core.supervisor import HarnessFaultInjector, RetryPolicy

SPEC_KW = dict(timesteps=20)


def _journal_replica_records(path):
    with open(path) as fh:
        lines = [json.loads(line) for line in fh]
    return [r for r in lines if r.get("kind") == "replica"]


# -- replica purity ---------------------------------------------------------------


def test_retried_replica_is_bit_identical():
    spec = CampaignSpec(node_mtbf_s=6.0, ckpt_period=5, timesteps=30)
    payload = (spec, RecoveryPolicy(), 12345)
    assert _run_replica(payload) == _run_replica(payload)


def test_replica_retried_through_supervisor_matches_direct_run():
    spec = CampaignSpec(node_mtbf_s=8.0, ckpt_period=5, timesteps=15)
    camp = ResilienceCampaign(reps=2, base_seed=0, n_workers=2)
    spec_key = campaign_spec_key(spec, camp.policy)
    # find a chaos seed whose first attempt of replica 0 errors out
    inj = None
    for seed in range(500):
        cand = HarnessFaultInjector(error_prob=0.4, seed=seed)
        if (
            cand.decide(f"{spec_key}:0", 1) == "error"
            and cand.decide(f"{spec_key}:0", 2) is None
        ):
            inj = cand
            break
    assert inj is not None
    camp.fault_injector = inj
    camp.retry = RetryPolicy(max_retries=5, backoff_base_s=0.01, backoff_max_s=0.05)
    point = camp.run_point(spec)
    assert camp.harness_stats.by_kind["error"] >= 1
    baseline = ResilienceCampaign(reps=2, base_seed=0).run_point(spec)
    assert point.to_dict() == baseline.to_dict()


# -- journal + resume -------------------------------------------------------------


def test_journal_records_every_replica_once(tmp_path):
    journal = str(tmp_path / "wal.jsonl")
    camp = ResilienceCampaign(reps=4, base_seed=0, journal_path=journal)
    report = camp.run_grid([8.0, 32.0], [5], **SPEC_KW)
    camp.close()
    records = _journal_replica_records(journal)
    assert len(records) == 8  # 2 points x 4 replicas
    keys = {(r["spec_key"], r["replica"]) for r in records}
    assert len(keys) == 8  # no duplicates
    assert not report.partial


def test_resume_skips_completed_replicas_without_recompute(tmp_path, monkeypatch):
    journal = str(tmp_path / "wal.jsonl")
    camp = ResilienceCampaign(reps=3, base_seed=7, journal_path=journal)
    first = camp.run_grid([8.0], [5], **SPEC_KW)
    camp.close()

    def _explode(payload):
        raise AssertionError("a completed replica was recomputed")

    monkeypatch.setattr(campaign_mod, "_run_replica", _explode)
    resumed = ResilienceCampaign.resume(journal)
    second = resumed.run_grid([8.0], [5], **SPEC_KW)
    resumed.close()
    assert second.to_json() == first.to_json()
    assert len(_journal_replica_records(journal)) == 3  # still no duplicates


def test_resume_restores_header_configuration(tmp_path):
    journal = str(tmp_path / "wal.jsonl")
    policy = RecoveryPolicy(verify_fail_prob=0.2, max_attempts=3)
    camp = ResilienceCampaign(
        reps=2, base_seed=5, policy=policy, journal_path=journal
    )
    camp.run_grid([16.0], [5], **SPEC_KW)
    camp.close()
    resumed = ResilienceCampaign.resume(journal)
    assert resumed.reps == 2
    assert resumed.base_seed == 5
    assert resumed.policy == policy


def test_partial_report_from_incomplete_journal(tmp_path):
    journal = str(tmp_path / "wal.jsonl")
    camp = ResilienceCampaign(reps=3, base_seed=0, journal_path=journal)
    camp.run_grid([8.0], [5], **SPEC_KW)
    camp.close()
    # drop the last replica record, as if the process died before it
    with open(journal) as fh:
        lines = fh.readlines()
    with open(journal, "w") as fh:
        fh.writelines(lines[:-1])
    report = ResilienceCampaign.report_from_journal(journal)
    assert report.partial
    assert report.points[0].replicas_done == 2
    assert report.points[0].reps == 3
    # aggregation over the available subset only — no NaN anywhere
    text = report.to_json()
    assert "NaN" not in text and "Infinity" not in text
    assert "PARTIAL" in report.format()


def test_mismatched_journal_is_refused(tmp_path):
    from repro.core.supervisor import JournalError

    journal = str(tmp_path / "wal.jsonl")
    camp = ResilienceCampaign(reps=2, base_seed=0, journal_path=journal)
    camp.run_grid([8.0], [5], **SPEC_KW)
    camp.close()
    other = ResilienceCampaign(reps=4, base_seed=0, journal_path=journal)
    with pytest.raises(JournalError):
        other.run_grid([8.0], [5], **SPEC_KW)


# -- kill -9 and resume (the acceptance scenario) ---------------------------------


def test_sigkill_mid_sweep_then_resume_is_bit_identical(tmp_path):
    journal = str(tmp_path / "wal.jsonl")
    killed_out = str(tmp_path / "killed.json")
    fresh_out = str(tmp_path / "fresh.json")
    repo_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(repo_root, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    grid = [
        "--reps", "30", "--mtbf", "4", "--periods", "5",
        "--timesteps", "300", "--seed", "3",
    ]
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", *grid,
         "--journal", journal, "--json", killed_out],
        env=env,
        cwd=repo_root,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    # wait until at least two replicas are durably journaled, then SIGKILL
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            break
        try:
            if len(_journal_replica_records(journal)) >= 2:
                break
        except (FileNotFoundError, json.JSONDecodeError):
            pass
        time.sleep(0.02)
    assert proc.poll() is None, "campaign finished before it could be killed"
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=30)

    survived = _journal_replica_records(journal)
    assert 1 <= len(survived) < 30, "kill did not land mid-sweep"
    assert not os.path.exists(killed_out)  # report write never started

    # resume in-process and compare against an uninterrupted fresh run
    from repro.cli import main

    assert main(["campaign", *grid, "--journal", journal, "--resume",
                 "--json", killed_out]) == 0
    assert main(["campaign", *grid, "--json", fresh_out]) == 0
    with open(killed_out, "rb") as fh:
        resumed_bytes = fh.read()
    with open(fresh_out, "rb") as fh:
        fresh_bytes = fh.read()
    assert resumed_bytes == fresh_bytes

    # the journal holds each replica exactly once — nothing lost, nothing redone
    records = _journal_replica_records(journal)
    assert sorted(r["replica"] for r in records) == list(range(30))


# -- chaos: 20% injected worker crash/hang --------------------------------------


def test_chaos_campaign_loses_and_duplicates_nothing(tmp_path):
    journal = str(tmp_path / "wal.jsonl")
    injector = HarnessFaultInjector(
        crash_prob=0.15, hang_prob=0.05, hang_s=60.0, seed=11
    )
    retry = RetryPolicy(
        max_retries=20, timeout_s=5.0, backoff_base_s=0.01, backoff_max_s=0.1
    )
    camp = ResilienceCampaign(
        reps=6,
        base_seed=0,
        n_workers=2,
        retry=retry,
        journal_path=journal,
        fault_injector=injector,
    )
    report = camp.run_grid([16.0], [5], timesteps=10)
    camp.close()

    baseline = ResilienceCampaign(reps=6, base_seed=0).run_grid(
        [16.0], [5], timesteps=10
    )
    assert report.to_json() == baseline.to_json()  # chaos changed nothing
    assert not report.partial

    records = _journal_replica_records(journal)
    assert sorted(r["replica"] for r in records) == list(range(6))

    stats = camp.harness_stats
    assert stats.completed == 6
    assert not stats.quarantined
    # the chaos actually bit: at least one injected failure was survived
    assert sum(stats.by_kind[k] for k in ("crash", "timeout")) >= 1
