"""Golden bit-identity gate for the fault machinery.

Regenerates the pinned campaign from ``tests/core/golden/README.md``
and byte-compares every artifact against the committed fixtures:
report JSON, WAL journal, campaign stdout, and the per-replica
flight-recorder dumps (pid-normalized — the only volatile field).

This is the hard gate behind the pluggable fault-domain refactor: any
change to draw-stream order, recovery bookkeeping, episode layout,
metric side effects that feed the report, or flight-note text shows up
here as a byte diff at identical seeds.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

GOLDEN = Path(__file__).parent / "golden"

#: the pinned configuration (mirrors golden/README.md); exercises all
#: eight fault kinds and produces at least one aborted replica
CAMPAIGN_ARGS = [
    "campaign",
    "--seed", "13",
    "--reps", "4",
    "--mtbf", "2.5",
    "--periods", "4",
    "--timesteps", "20",
    "--fault-mix", "software=0.2", "node=0.1", "sdc=0.25",
    "straggler=0.15", "burst=0.05", "link=0.1", "switch=0.05",
    "netdeg=0.1",
    "--verify-period", "3",
    "--sdc-coverage", "0.9",
    "--net-topology", "torus",
    "--net-repair-time", "1",
]


def normalize_flight(text: str) -> str:
    """Zero the volatile ``pid`` field; everything else is byte-exact."""
    out = []
    for line in text.splitlines():
        rec = json.loads(line)
        if "pid" in rec:
            rec["pid"] = 0
        out.append(json.dumps(rec, sort_keys=True))
    return "\n".join(out) + "\n"


@pytest.fixture(scope="module")
def regenerated(tmp_path_factory):
    out = tmp_path_factory.mktemp("golden_regen")
    cmd = [sys.executable, "-m", "repro", *CAMPAIGN_ARGS,
           "--journal", str(out / "campaign.wal.jsonl"),
           "--flight-dir", str(out / "flight"),
           "--json", str(out / "report.json")]
    proc = subprocess.run(
        cmd, capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    (out / "stdout.txt").write_text(proc.stdout)
    return out


def test_report_bit_identical(regenerated):
    got = (regenerated / "report.json").read_bytes()
    want = (GOLDEN / "report.json").read_bytes()
    assert got == want


def test_journal_bit_identical(regenerated):
    got = (regenerated / "campaign.wal.jsonl").read_bytes()
    want = (GOLDEN / "campaign.wal.jsonl").read_bytes()
    assert got == want


def test_stdout_bit_identical(regenerated):
    got = (regenerated / "stdout.txt").read_bytes()
    want = (GOLDEN / "stdout.txt").read_bytes()
    assert got == want


def test_flight_dumps_bit_identical(regenerated):
    want_dir = GOLDEN / "flight"
    got_dir = regenerated / "flight"
    want_names = sorted(p.name for p in want_dir.glob("flight-*.jsonl"))
    got_names = sorted(p.name for p in got_dir.glob("flight-*.jsonl"))
    assert got_names == want_names
    for name in want_names:
        got = normalize_flight((got_dir / name).read_text())
        want = (want_dir / name).read_text()
        assert got == want, f"flight dump {name} diverged"


def test_golden_covers_every_fault_kind():
    """The fixture config must keep exercising the whole taxonomy."""
    from repro.faults.registry import FAULT_KINDS

    report = json.loads((GOLDEN / "report.json").read_text())
    seen = set()
    for point in report["points"]:
        seen.update(point.get("fault_kinds", {}))
    assert seen == set(FAULT_KINDS)
