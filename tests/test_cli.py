"""CLI smoke tests (fast targets only)."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for target in ("fig9", "table3", "abl2", "ext2"):
        assert target in out


def test_abl3_runs(capsys):
    assert main(["abl3"]) == 0
    assert "Amdahl" in capsys.readouterr().out


def test_abl4_runs(capsys):
    assert main(["abl4"]) == 0
    out = capsys.readouterr().out
    assert "identical=True" in out


def test_campaign_runs_and_writes_json(tmp_path, capsys):
    import json

    path = tmp_path / "campaign.json"
    assert (
        main(
            [
                "campaign",
                "--reps", "2",
                "--mtbf", "8", "32",
                "--periods", "5",
                "--timesteps", "10",
                "--json", str(path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "RESILIENCE CAMPAIGN" in out
    report = json.loads(path.read_text())
    assert len(report["points"]) == 2
    for point in report["points"]:
        assert 0.0 <= point["completion_probability"] <= 1.0
        assert set(point["waste"]) == {"rework", "downtime", "checkpoint", "requeue"}
        assert "youngdaly" in point


def test_campaign_legacy_policy_flag(capsys):
    assert (
        main(
            [
                "campaign",
                "--reps", "2",
                "--mtbf", "16",
                "--periods", "5",
                "--timesteps", "10",
                "--legacy-policy",
            ]
        )
        == 0
    )
    assert "RESILIENCE CAMPAIGN" in capsys.readouterr().out


def test_campaign_json_creates_parent_dirs_atomically(tmp_path, capsys):
    import json

    path = tmp_path / "deep" / "nested" / "dir" / "campaign.json"
    assert (
        main(
            [
                "campaign",
                "--reps", "2",
                "--mtbf", "16",
                "--periods", "5",
                "--timesteps", "10",
                "--json", str(path),
            ]
        )
        == 0
    )
    capsys.readouterr()
    report = json.loads(path.read_text())
    assert len(report["points"]) == 1
    # the temp file used for the atomic replace is gone
    assert [p.name for p in path.parent.iterdir()] == ["campaign.json"]


def test_write_text_atomic_never_truncates_existing(tmp_path, monkeypatch):
    from repro.cli import _write_text_atomic

    target = tmp_path / "out.json"
    target.write_text("precious")

    def exploding_replace(src, dst):
        raise OSError("simulated crash at replace time")

    import repro.cli as cli_mod

    monkeypatch.setattr(cli_mod.os, "replace", exploding_replace)
    with pytest.raises(OSError):
        _write_text_atomic(str(target), "new content")
    assert target.read_text() == "precious"  # old report untouched
    assert [p.name for p in tmp_path.iterdir()] == ["out.json"]  # no temp litter


def test_campaign_resume_requires_journal(capsys):
    with pytest.raises(SystemExit):
        main(["campaign", "--resume"])
    with pytest.raises(SystemExit):
        main(["campaign", "--partial-report"])


def test_campaign_journal_resume_and_partial_report(tmp_path, capsys):
    journal = str(tmp_path / "wal.jsonl")
    args = ["campaign", "--reps", "2", "--mtbf", "16", "--periods", "5",
            "--timesteps", "10", "--journal", journal]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main([*args, "--resume"]) == 0
    resumed = capsys.readouterr().out
    assert resumed == first
    assert main(["campaign", "--journal", journal, "--partial-report"]) == 0
    assert "RESILIENCE CAMPAIGN" in capsys.readouterr().out


def test_campaign_chaos_flags_survive_injected_crashes(tmp_path, capsys):
    assert (
        main(
            [
                "campaign",
                "--reps", "3",
                "--mtbf", "16",
                "--periods", "5",
                "--timesteps", "10",
                "--workers", "2",
                "--chaos-crash", "0.3",
                "--chaos-seed", "2",
                "--retries", "15",
                "--timeout", "30",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "RESILIENCE CAMPAIGN" in out
    assert " 3/3 " in out  # nothing lost despite the chaos


def test_campaign_all_poisoned_exits_nonzero_with_summary(capsys):
    import json

    # garbage on every attempt + zero retries => every replica quarantined
    # (chaos only fires in forked workers, hence --workers 2)
    code = main(
        [
            "campaign",
            "--reps", "2",
            "--mtbf", "16",
            "--periods", "5",
            "--timesteps", "10",
            "--workers", "2",
            "--chaos-garbage", "1.0",
            "--retries", "0",
        ]
    )
    assert code == 3
    captured = capsys.readouterr()
    assert "0/2" in captured.out  # the partial report still prints
    summary = json.loads(captured.err)
    assert summary["error"] == "campaign-produced-no-results"
    assert summary["points"] == 1
    assert summary["reps"] == 2
    assert len(summary["quarantined"]) == 2
    assert summary["failure_kinds"]["error"] == 2
    assert summary["failure_kinds"]["poisoned"] == 2


def test_campaign_sim_snapshot_flags_must_be_paired(tmp_path):
    base = ["campaign", "--reps", "1", "--mtbf", "16", "--periods", "5",
            "--timesteps", "10"]
    with pytest.raises(SystemExit, match="together"):
        main([*base, "--sim-snapshot-dir", str(tmp_path)])
    with pytest.raises(SystemExit, match="together"):
        main([*base, "--sim-snapshot-every", "500"])


def test_campaign_with_sim_snapshots_runs_clean(tmp_path, capsys):
    code = main(
        [
            "campaign",
            "--reps", "2",
            "--mtbf", "16",
            "--periods", "5",
            "--timesteps", "10",
            "--sim-snapshot-dir", str(tmp_path / "snaps"),
            "--sim-snapshot-every", "500",
        ]
    )
    assert code == 0
    assert "RESILIENCE CAMPAIGN" in capsys.readouterr().out
    # completed replicas clear their stores: no *.snap files left behind
    assert list((tmp_path / "snaps").rglob("*.snap")) == []


def test_campaign_obs_flags_write_all_exporters(tmp_path, capsys):
    import json

    from repro.obs.export import parse_prometheus_text

    code = main(
        [
            "campaign",
            "--reps", "2",
            "--mtbf", "16",
            "--periods", "5",
            "--timesteps", "8",
            "--metrics-out", str(tmp_path / "m.jsonl"),
            "--metrics-interval", "0.1",
            "--prom-out", str(tmp_path / "m.prom"),
            "--trace-out", str(tmp_path / "trace.json"),
        ]
    )
    assert code == 0
    assert "RESILIENCE CAMPAIGN" in capsys.readouterr().out
    # all three exporters delivered valid artifacts
    fams = parse_prometheus_text((tmp_path / "m.prom").read_text())
    assert "supervisor_tasks_completed_total" in fams
    lines = (tmp_path / "m.jsonl").read_text().splitlines()
    assert lines and json.loads(lines[-1])["metrics"]
    trace = json.loads((tmp_path / "trace.json").read_text())
    names = {e["name"] for e in trace["traceEvents"]}
    assert "campaign" in names and "replica" in names


def test_campaign_heartbeat_flag(tmp_path, capsys):
    code = main(
        [
            "campaign",
            "--reps", "2",
            "--mtbf", "16",
            "--periods", "5",
            "--timesteps", "8",
            "--heartbeat", "0.01",
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "RESILIENCE CAMPAIGN" in captured.out
    assert "done" in captured.err  # heartbeat lines go to stderr


def test_metrics_summarize(tmp_path, capsys):
    from repro.obs.export import write_prometheus
    from repro.obs.metrics import MetricsRegistry

    reg = MetricsRegistry()
    reg.counter("events_total").inc(7)
    path = tmp_path / "m.prom"
    write_prometheus(str(path), reg)
    assert main(["metrics", "summarize", str(path)]) == 0
    out = capsys.readouterr().out
    assert "events_total" in out and "7" in out


def test_requires_command(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_unknown_command(capsys):
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_fit_and_show_models(tmp_path, capsys, monkeypatch):
    # shrink the campaign: patch the kernel list to one model
    import repro.cli as cli_mod

    path = tmp_path / "models.json"

    def tiny_fit(out, seed, all_levels):
        from repro.core.workflow import ModelDevelopment
        from repro.models.registry import ModelRegistry
        from repro.models.symreg import GPConfig
        from repro.testbed.quartz import make_quartz

        machine = make_quartz()
        dev = ModelDevelopment(
            machine,
            ["lulesh_timestep"],
            samples_per_point=4,
            gp_config=GPConfig(population_size=40, generations=4),
            seed=seed,
        ).run()
        reg = ModelRegistry.from_fitted(dev.fitted, machine=machine.name)
        reg.save(out)
        return f"saved {len(reg)} models to {out}"

    monkeypatch.setattr(cli_mod, "_fit_models", tiny_fit)
    assert main(["fit-models", "--out", str(path)]) == 0
    assert "saved 1 models" in capsys.readouterr().out

    assert main(["show-models", str(path)]) == 0
    out = capsys.readouterr().out
    assert "lulesh_timestep" in out and "quartz" in out


def test_campaign_fault_mix_flags(tmp_path, capsys):
    import json

    path = tmp_path / "mix.json"
    assert (
        main(
            [
                "campaign",
                "--reps", "3",
                "--mtbf", "3",
                "--periods", "5",
                "--timesteps", "20",
                "--fault-mix", "software=0.3", "sdc=0.4", "straggler=0.2",
                "burst=0.1",
                "--verify-period", "2",
                "--sdc-coverage", "0.9",
                "--burst-size", "2",
                "--json", str(path),
            ]
        )
        == 0
    )
    assert "RESILIENCE CAMPAIGN" in capsys.readouterr().out
    report = json.loads(path.read_text())
    (point,) = report["points"]
    assert set(point["fault_kinds"]) <= {"software", "node", "sdc",
                                         "straggler", "burst"}
    assert set(point["sdc"]) == {"injected", "detected", "corrected",
                                 "undetected", "detect_latency_s"}
    assert point["wrong_results"] >= 0


def test_campaign_fault_mix_flag_syntax_errors():
    base = ["campaign", "--reps", "1", "--mtbf", "16", "--periods", "5",
            "--timesteps", "10"]
    with pytest.raises(SystemExit, match="kind=weight"):
        main([*base, "--fault-mix", "sdc"])
    with pytest.raises(SystemExit, match="not a number"):
        main([*base, "--fault-mix", "sdc=lots"])


def test_campaign_fault_mix_semantic_errors_from_model():
    base = ["campaign", "--reps", "1", "--mtbf", "16", "--periods", "5",
            "--timesteps", "10"]
    with pytest.raises(ValueError, match="unknown fault kinds"):
        main([*base, "--fault-mix", "gremlin=1.0"])
    with pytest.raises(ValueError, match="sum to 1"):
        main([*base, "--fault-mix", "sdc=0.4"])


def test_campaign_network_fault_flags(tmp_path, capsys):
    import json

    path = tmp_path / "net.json"
    assert (
        main(
            [
                "campaign",
                "--reps", "3",
                "--mtbf", "8",
                "--periods", "5",
                "--timesteps", "10",
                "--fault-mix", "node=0.5", "link=0.5",
                "--net-topology", "torus",
                "--net-link-mtbf", "16",
                "--net-repair-time", "1",
                "--net-degrade-factor", "6",
                "--net-loss-prob", "0.1",
                "--json", str(path),
            ]
        )
        == 0
    )
    assert "RESILIENCE CAMPAIGN" in capsys.readouterr().out
    report = json.loads(path.read_text())
    (point,) = report["points"]
    assert set(point["fault_kinds"]) <= {"node", "link", "switch", "netdeg"}
    assert point["fault_kinds"].get("link", 0) > 0
    assert set(point["net"]) == {"faults", "repairs", "partition_stalls",
                                 "degraded_commits", "reroutes",
                                 "retransmits"}
    assert point["net"]["faults"] >= point["fault_kinds"].get("link", 0)


def test_campaign_net_topology_torus_accepts_non_square_rank_counts():
    # default nranks=8 is not a perfect square: the spec must factor the
    # torus near-square instead of rejecting the CLI default
    assert (
        main(
            ["campaign", "--reps", "1", "--mtbf", "1e9", "--periods", "5",
             "--timesteps", "5", "--net-topology", "torus"]
        )
        == 0
    )


def test_ext9_listed_and_dispatchable(capsys, monkeypatch):
    import repro.cli as cli_mod

    assert main(["list"]) == 0
    assert "ext9" in capsys.readouterr().out

    called = {}

    def fake_dse(reps, seed):
        called["args"] = (reps, seed)
        return []

    monkeypatch.setattr(
        "repro.exps.extensions.network_fault_dse", fake_dse
    )
    assert main(["ext9", "--reps", "2", "--seed", "5"]) == 0
    assert called["args"] == (2, 5)
    assert "EXT9" in capsys.readouterr().out


# -- repro analyze ---------------------------------------------------------------


def _run_forensic_campaign(tmp_path):
    journal = str(tmp_path / "wal.jsonl")
    flight_dir = str(tmp_path / "flight")
    assert (
        main(
            ["campaign", "--reps", "3", "--mtbf", "8", "--periods", "5",
             "--timesteps", "30",
             "--fault-mix", "software=0.5", "node=0.3", "sdc=0.2",
             "--verify-period", "5",
             "--journal", journal, "--flight-dir", flight_dir]
        )
        == 0
    )
    return journal, flight_dir


def test_campaign_flight_dir_writes_dumps(tmp_path, capsys):
    import os

    _, flight_dir = _run_forensic_campaign(tmp_path)
    capsys.readouterr()
    dumps = [f for f in os.listdir(flight_dir)
             if f.startswith("flight-") and not f.endswith(".live.jsonl")]
    assert len(dumps) == 3  # one final dump per replica
    # completed replicas clean their live spills up
    assert not [f for f in os.listdir(flight_dir) if f.endswith(".live.jsonl")]


def test_analyze_end_to_end(tmp_path, capsys):
    import json

    journal, flight_dir = _run_forensic_campaign(tmp_path)
    capsys.readouterr()
    out_json = str(tmp_path / "analysis.json")
    trace_out = str(tmp_path / "worst.trace.json")
    assert (
        main(["analyze", journal, "--flight-dir", flight_dir,
              "--top", "2", "--json", out_json, "--trace-out", trace_out])
        == 0
    )
    out = capsys.readouterr().out
    assert "FAULT FORENSICS POST-MORTEM" in out
    assert "coverage" in out
    with open(out_json) as fh:
        analysis = json.load(fh)
    assert analysis["totals"]["coverage"] >= 0.95
    assert len(analysis["top_faults"]) <= 2
    assert analysis["flight"]["dumps"] == 3
    with open(trace_out) as fh:
        trace = json.load(fh)
    assert "traceEvents" in trace


def test_analyze_missing_journal_exits_5(tmp_path, capsys):
    import json

    code = main(["analyze", str(tmp_path / "nope.jsonl")])
    assert code == 5
    captured = capsys.readouterr()
    assert captured.out == ""
    summary = json.loads(captured.err)
    assert summary["error"] == "analyze-journal-not-found"


def test_analyze_unreadable_journal_exits_5(tmp_path, capsys):
    import json

    bad = tmp_path / "bad.jsonl"
    bad.write_text("this is not a journal\n")
    code = main(["analyze", str(bad)])
    assert code == 5
    summary = json.loads(capsys.readouterr().err)
    assert summary["error"].startswith("analyze-journal-")
