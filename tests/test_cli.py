"""CLI smoke tests (fast targets only)."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for target in ("fig9", "table3", "abl2", "ext2"):
        assert target in out


def test_abl3_runs(capsys):
    assert main(["abl3"]) == 0
    assert "Amdahl" in capsys.readouterr().out


def test_abl4_runs(capsys):
    assert main(["abl4"]) == 0
    out = capsys.readouterr().out
    assert "identical=True" in out


def test_campaign_runs_and_writes_json(tmp_path, capsys):
    import json

    path = tmp_path / "campaign.json"
    assert (
        main(
            [
                "campaign",
                "--reps", "2",
                "--mtbf", "8", "32",
                "--periods", "5",
                "--timesteps", "10",
                "--json", str(path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "RESILIENCE CAMPAIGN" in out
    report = json.loads(path.read_text())
    assert len(report["points"]) == 2
    for point in report["points"]:
        assert 0.0 <= point["completion_probability"] <= 1.0
        assert set(point["waste"]) == {"rework", "downtime", "checkpoint", "requeue"}
        assert "youngdaly" in point


def test_campaign_legacy_policy_flag(capsys):
    assert (
        main(
            [
                "campaign",
                "--reps", "2",
                "--mtbf", "16",
                "--periods", "5",
                "--timesteps", "10",
                "--legacy-policy",
            ]
        )
        == 0
    )
    assert "RESILIENCE CAMPAIGN" in capsys.readouterr().out


def test_requires_command(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_unknown_command(capsys):
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_fit_and_show_models(tmp_path, capsys, monkeypatch):
    # shrink the campaign: patch the kernel list to one model
    import repro.cli as cli_mod

    path = tmp_path / "models.json"

    def tiny_fit(out, seed, all_levels):
        from repro.core.workflow import ModelDevelopment
        from repro.models.registry import ModelRegistry
        from repro.models.symreg import GPConfig
        from repro.testbed.quartz import make_quartz

        machine = make_quartz()
        dev = ModelDevelopment(
            machine,
            ["lulesh_timestep"],
            samples_per_point=4,
            gp_config=GPConfig(population_size=40, generations=4),
            seed=seed,
        ).run()
        reg = ModelRegistry.from_fitted(dev.fitted, machine=machine.name)
        reg.save(out)
        return f"saved {len(reg)} models to {out}"

    monkeypatch.setattr(cli_mod, "_fit_models", tiny_fit)
    assert main(["fit-models", "--out", str(path)]) == 0
    assert "saved 1 models" in capsys.readouterr().out

    assert main(["show-models", str(path)]) == 0
    out = capsys.readouterr().out
    assert "lulesh_timestep" in out and "quartz" in out
