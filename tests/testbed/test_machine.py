"""Virtual testbed: kernel truths, measurement, full-run ground truth."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ft import NO_FT, scenario_l1, scenario_l1_l2
from repro.network import FullyConnected
from repro.testbed import (
    KernelTruth,
    VirtualMachine,
    case_study_grid,
    make_quartz,
    make_vulcan,
    measure_application_run,
    run_benchmark_campaign,
)


def tiny_machine(cv=0.1, outlier_p=0.0):
    kernels = {
        "k": KernelTruth(lambda p: 1e-3 * p["n"], cv=cv, outlier_p=outlier_p),
    }
    return VirtualMachine(
        "tiny", nnodes=8, cores_per_node=4, topology=FullyConnected(8),
        kernels=kernels, ranks_per_node=2,
    )


# -- KernelTruth ------------------------------------------------------------------


def test_kernel_truth_validation():
    with pytest.raises(ValueError):
        KernelTruth(lambda p: 1.0, cv=-0.1)
    with pytest.raises(ValueError):
        KernelTruth(lambda p: 1.0, outlier_p=1.0)


def test_kernel_truth_rejects_invalid_mean():
    t = KernelTruth(lambda p: -1.0)
    with pytest.raises(ValueError):
        t.mean({})


def test_samples_mean_preserving():
    t = KernelTruth(lambda p: 2.0, cv=0.3)
    rng = np.random.default_rng(0)
    s = t.sample({}, rng, n=20000)
    assert s.mean() == pytest.approx(2.0, rel=0.02)
    assert s.std() == pytest.approx(0.6, rel=0.1)


def test_outliers_raise_tail():
    t_clean = KernelTruth(lambda p: 1.0, cv=0.1)
    t_noisy = KernelTruth(lambda p: 1.0, cv=0.1, outlier_p=0.2, outlier_scale=3.0)
    rng = np.random.default_rng(1)
    clean = t_clean.sample({}, rng, 5000)
    noisy = t_noisy.sample({}, np.random.default_rng(1), 5000)
    assert np.percentile(noisy, 99) > np.percentile(clean, 99) * 1.5


def test_zero_cv_deterministic():
    t = KernelTruth(lambda p: 0.5, cv=0.0)
    s = t.sample({}, np.random.default_rng(0), 5)
    assert np.all(s == 0.5)


# -- VirtualMachine ------------------------------------------------------------------


def test_machine_validation():
    with pytest.raises(ValueError):
        VirtualMachine("m", 0, 1, FullyConnected(1), {})


def test_allocation_limit():
    m = tiny_machine()
    assert m.max_ranks == 16
    m.check_allocation(16)
    with pytest.raises(ValueError):
        m.check_allocation(17)
    with pytest.raises(ValueError):
        m.measure("k", {"n": 5, "ranks": 100})


def test_measure_unknown_kernel():
    with pytest.raises(KeyError):
        tiny_machine().measure("zzz", {"n": 1})


def test_measure_reproducible_and_param_sensitive():
    m = tiny_machine()
    a = m.measure("k", {"n": 5}, nsamples=5, seed=1)
    b = m.measure("k", {"n": 5}, nsamples=5, seed=1)
    c = m.measure("k", {"n": 5}, nsamples=5, seed=2)
    d = m.measure("k", {"n": 6}, nsamples=5, seed=1)
    assert a.tolist() == b.tolist()
    assert a.tolist() != c.tolist()
    assert a.tolist() != d.tolist()


def test_true_mean_oracle():
    m = tiny_machine()
    assert m.true_mean("k", {"n": 5}) == pytest.approx(5e-3)


# -- benchmark campaign ---------------------------------------------------------------


def test_case_study_grid():
    grid = case_study_grid()
    assert len(grid) == 25
    assert {"epr": 5, "ranks": 8} in grid


def test_campaign_builds_datasets():
    m = tiny_machine()
    grid = [{"n": n, "ranks": r} for n in (1, 2) for r in (4, 8)]
    out = run_benchmark_campaign(m, ["k"], grid=grid, samples_per_point=6, seed=0)
    ds = out["k"]
    assert len(ds) == 4
    assert ds.n_samples == 24
    assert ds.param_names == ("n", "ranks")


def test_campaign_validates_grid():
    m = tiny_machine()
    with pytest.raises(ValueError):
        run_benchmark_campaign(m, ["k"], grid=[])
    with pytest.raises(ValueError):
        run_benchmark_campaign(m, ["k"], grid=[{"n": 1}, {"m": 2}])


# -- measured application runs ------------------------------------------------------------


def quartz():
    return make_quartz(allocation_nodes=64)


def test_measured_run_no_ft():
    run = measure_application_run(
        quartz(), 8, 20, NO_FT, {"epr": 5}, seed=0
    )
    assert run.timesteps == 20
    assert run.total_time == pytest.approx(run.timestep_times.sum())
    assert run.checkpoint_marks == []
    assert run.checkpoint_time == 0


def test_measured_run_with_checkpoints():
    run = measure_application_run(
        quartz(), 8, 40, scenario_l1_l2(10), {"epr": 5}, seed=0
    )
    assert len(run.checkpoint_marks) == 8  # 4 instants x 2 levels
    assert run.checkpoint_time > 0
    levels = [l for _, l in run.checkpoint_marks]
    assert set(levels) == {1, 2}
    times = [t for t, _ in run.checkpoint_marks]
    assert times == sorted(times)
    assert run.total_time > measure_application_run(
        quartz(), 8, 40, NO_FT, {"epr": 5}, seed=0
    ).total_time


def test_measured_run_cumulative_curve_monotone():
    run = measure_application_run(quartz(), 8, 30, scenario_l1(10), {"epr": 5})
    curve = run.cumulative_times()
    assert curve.shape == (30,)
    assert np.all(np.diff(curve) > 0)
    assert curve[-1] == pytest.approx(run.total_time)


def test_measured_run_straggler_effect():
    """More ranks -> larger per-timestep max -> longer run."""
    small = measure_application_run(quartz(), 8, 30, NO_FT, {"epr": 10}, seed=5)
    big = measure_application_run(quartz(), 64, 30, NO_FT, {"epr": 10}, seed=5)
    per_ts_small = small.timestep_times.mean()
    per_ts_big = big.timestep_times.mean()
    truth_small = quartz().true_mean("lulesh_timestep", {"epr": 10, "ranks": 8})
    truth_big = quartz().true_mean("lulesh_timestep", {"epr": 10, "ranks": 64})
    assert per_ts_big / truth_big > per_ts_small / truth_small


def test_measured_run_validation():
    with pytest.raises(ValueError):
        measure_application_run(quartz(), 8, 0, NO_FT, {"epr": 5})
    with pytest.raises(ValueError):
        measure_application_run(quartz(), 10**6, 5, NO_FT, {"epr": 5})


# -- machine definitions ----------------------------------------------------------------


def test_quartz_kernels_present():
    m = make_quartz()
    assert set(m.kernels) == {
        "lulesh_timestep", "lulesh_force", "lulesh_eos",
        "fti_l1", "fti_l2", "fti_l3", "fti_l4",
    }
    assert m.max_ranks == 1000


def test_quartz_fine_kernels_sum_to_timestep():
    m = make_quartz()
    for epr in (5, 25):
        for ranks in (8, 1000):
            p = {"epr": epr, "ranks": ranks}
            assert m.true_mean("lulesh_force", p) + m.true_mean(
                "lulesh_eos", p
            ) == pytest.approx(m.true_mean("lulesh_timestep", p))


def test_quartz_truth_orderings():
    m = make_quartz()
    for epr in (5, 10, 25):
        for ranks in (8, 64, 1000):
            p = {"epr": epr, "ranks": ranks}
            step = m.true_mean("lulesh_timestep", p)
            l1 = m.true_mean("fti_l1", p)
            l2 = m.true_mean("fti_l2", p)
            assert step < l1 < l2, (epr, ranks)


def test_quartz_truths_monotone_in_params():
    m = make_quartz()
    for kernel in m.kernels:
        assert m.true_mean(kernel, {"epr": 25, "ranks": 64}) > m.true_mean(
            kernel, {"epr": 5, "ranks": 64}
        )
        assert m.true_mean(kernel, {"epr": 10, "ranks": 1000}) > m.true_mean(
            kernel, {"epr": 10, "ranks": 8}
        )


def test_vulcan_definition():
    m = make_vulcan(allocation_nodes=1024)
    assert "cmtbone_timestep" in m.kernels
    assert m.nnodes >= 1024
    assert m.true_mean(
        "cmtbone_timestep", {"elem_size": 15, "elements": 64, "ranks": 1024}
    ) > m.true_mean(
        "cmtbone_timestep", {"elem_size": 5, "elements": 64, "ranks": 1024}
    )


@settings(max_examples=20, deadline=None)
@given(
    epr=st.sampled_from([5, 10, 15, 20, 25, 30]),
    ranks=st.sampled_from([8, 64, 216, 512, 1000]),
)
def test_quartz_truths_positive_finite(epr, ranks):
    m = make_quartz()
    for kernel in m.kernels:
        v = m.true_mean(kernel, {"epr": epr, "ranks": ranks})
        assert 0 < v < 60.0
