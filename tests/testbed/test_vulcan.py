"""Vulcan machine definition and torus sizing."""

import pytest

from repro.testbed.vulcan import _balanced_dims, make_vulcan


def test_balanced_dims_product_covers_target():
    for n in (1, 7, 64, 1000, 8192, 24576):
        dims = _balanced_dims(n, ndims=5)
        assert len(dims) == 5
        prod = 1
        for d in dims:
            prod *= d
        assert prod >= n
        # near-balanced: max/min ratio bounded
        assert max(dims) <= 4 * max(min(dims), 1)


def test_balanced_dims_validation():
    with pytest.raises(ValueError):
        _balanced_dims(0)
    with pytest.raises(ValueError):
        _balanced_dims(8, ndims=0)


def test_vulcan_scaling_with_ranks_and_elements():
    m = make_vulcan(allocation_nodes=512)
    base = {"elem_size": 10, "elements": 64, "ranks": 512}
    t0 = m.true_mean("cmtbone_timestep", base)
    assert m.true_mean(
        "cmtbone_timestep", {**base, "elements": 128}
    ) > t0
    assert m.true_mean(
        "cmtbone_timestep", {**base, "ranks": 8192}
    ) > t0


def test_vulcan_allocation_limits():
    m = make_vulcan(allocation_nodes=64, ranks_per_node=16)
    assert m.max_ranks >= 64 * 16
    with pytest.raises(ValueError):
        m.check_allocation(m.max_ranks + 1)
    with pytest.raises(ValueError):
        make_vulcan(allocation_nodes=0)


def test_vulcan_elem_size_dominates():
    """The spectral kernel's n^4 term: doubling elem_size ~16x work."""
    m = make_vulcan()
    small = m.true_mean(
        "cmtbone_timestep", {"elem_size": 5, "elements": 64, "ranks": 1024}
    )
    big = m.true_mean(
        "cmtbone_timestep", {"elem_size": 10, "elements": 64, "ranks": 1024}
    )
    assert 6 < big / small < 20
