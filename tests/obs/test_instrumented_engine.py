"""Engine instrumentation: busy time, spans, picklability, no result drift."""

import pickle

import pytest

from repro.des import Component, Engine
from repro.des.link import connect
from repro.des.parallel import ParallelEngine
from repro.obs.instrument import EngineObs
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


class Chatter(Component):
    def __init__(self, name, count):
        super().__init__(name)
        self.count = count

    def setup(self):
        for i in range(self.count):
            self.schedule(float(i), lambda ev: self.send("out", "hi"))

    def handle_event(self, port_name, payload, time):
        pass


def build(engine=None, count=3):
    eng = engine if engine is not None else Engine()
    a = eng.register(Chatter("a", count))
    b = eng.register(Chatter("b", 1))
    connect(a, "out", b, "in", latency=0.1)
    connect(b, "out", a, "in2", latency=0.1)
    return eng


def test_engine_feeds_utilization_and_counters():
    eng = build()
    reg = MetricsRegistry()
    obs = EngineObs(registry=reg)
    eng.attach_obs(obs)
    eng.run()

    # every fired event's handler time lands in the utilization tracker
    util = obs.utilization.report(horizon=1.0)
    assert "a" in util and "b" in util
    assert all(v >= 0 for v in util.values())

    recs = {
        (r["name"], tuple(sorted(r["labels"].items()))): r["data"]
        for r in reg.collect()
    }
    assert recs[("engine_events_total", ())]["value"] == eng.events_fired
    assert recs[("engine_run_seconds_total", ())]["value"] > 0
    busy = [k for k in recs if k[0] == "engine_component_busy_seconds_total"]
    assert (("component", "a"),) in [k[1] for k in busy]


def test_results_identical_with_and_without_obs():
    bare = build()
    t_bare = bare.run()
    observed = build()
    observed.attach_obs(EngineObs(registry=MetricsRegistry()))
    t_obs = observed.run()
    assert t_bare == t_obs
    assert bare.events_fired == observed.events_fired


def test_obs_spans_emitted_per_run():
    tracer = Tracer()
    eng = build()
    eng.attach_obs(EngineObs(registry=MetricsRegistry(), tracer=tracer))
    eng.run()
    spans = tracer.finished_spans()
    assert [s.name for s in spans] == ["engine.run"]
    assert spans[0].attrs["events"] == eng.events_fired


def test_run_finished_flushes_on_livelock_abort():
    """Metrics survive the max_events guard raising mid-run."""
    eng = build(count=50)
    reg = MetricsRegistry()
    eng.attach_obs(EngineObs(registry=reg))
    with pytest.raises(Exception):
        eng.run(max_events=3)
    recs = {r["name"]: r["data"] for r in reg.collect()}
    assert recs["engine_events_total"]["value"] == 3


def test_attached_engine_still_pickles():
    eng = build()
    eng.attach_obs(EngineObs(registry=MetricsRegistry()))
    clone = pickle.loads(pickle.dumps(eng))
    assert clone._obs is None  # telemetry never rides in snapshots
    assert clone.run() == build().run()


def test_parallel_engine_window_metrics():
    eng = ParallelEngine(nparts=2)
    build(engine=eng)
    reg = MetricsRegistry()
    eng.attach_obs(EngineObs(registry=reg))
    eng.run()
    recs = {r["name"]: r["data"] for r in reg.collect()}
    assert recs["engine_windows_total"]["value"] == eng.windows_executed
    assert recs["engine_events_total"]["value"] == eng.events_fired
