"""Flight recorder: bounded ring, crash-surviving spill, atomic dumps."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.campaign import CampaignSpec, build_campaign_simulator
from repro.core.fault_injection import RecoveryPolicy
from repro.obs.flightrec import (
    FlightRecorder,
    flight_dump_path,
    flight_spill_path,
    load_flight_dir,
    load_flight_dump,
)


def test_ring_is_bounded():
    rec = FlightRecorder(capacity=16)
    for i in range(100):
        rec.record("tick", float(i), n=i)
    assert len(rec.ring) == 16
    assert rec.seq == 100
    # the ring keeps the newest records
    assert [r["n"] for r in rec.ring] == list(range(84, 100))


def test_constructor_validation():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=4)
    with pytest.raises(ValueError):
        FlightRecorder(tick_stride=1000)  # not a power of two


def test_record_allows_kind_payload_key():
    """Fault records carry their own ``kind``; it must not clobber the
    record type (the parameters are positional-only)."""
    rec = FlightRecorder()
    rec.record("inject", 1.0, kind="node", fault=3)
    (r,) = rec.ring
    assert r["kind"] == "inject" or r["kind"] == "node"
    # payload wins inside the dict, but the call itself must not raise
    assert r["fault"] == 3


def test_dump_roundtrip_and_no_tmp_litter(tmp_path):
    rec = FlightRecorder(capacity=16)
    for i in range(5):
        rec.record("tick", float(i), n=i)
    path = flight_dump_path(str(tmp_path), 42)
    rec.dump(path, meta={"seed": 42, "reason": "completed"})
    meta, records = load_flight_dump(path)
    assert meta == {"seed": 42, "reason": "completed"}
    assert [r["n"] for r in records] == list(range(5))
    # the atomic-write idiom leaves no temp files behind
    assert sorted(os.listdir(tmp_path)) == [os.path.basename(path)]


def test_load_skips_torn_tail_and_garbage(tmp_path):
    rec = FlightRecorder()
    rec.record("tick", 0.0, n=0)
    rec.record("tick", 1.0, n=1)
    path = rec.dump(flight_dump_path(str(tmp_path), 7), meta={"seed": 7})
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("not json at all\n")
        fh.write('{"kind": "tick", "n": 99}')  # torn: no trailing newline
    meta, records = load_flight_dump(path)
    assert meta == {"seed": 7}
    assert [r["n"] for r in records] == [0, 1]


def test_spill_survives_without_dump(tmp_path):
    """A recorder that never dumps (SIGKILL) leaves a readable spill."""
    rec = FlightRecorder(spill_path=flight_spill_path(str(tmp_path), 9))
    rec.record("tick", 0.5, n=1)
    rec.record("inject", 0.7, fault=0)
    # no close(), no dump(): simulate sudden death
    dumps = load_flight_dir(str(tmp_path))
    assert set(dumps) == {9}
    assert dumps[9]["in_flight"] is True
    assert [r["kind"] for r in dumps[9]["records"]] == ["tick", "inject"]
    rec.close()


def test_final_dump_wins_over_spill(tmp_path):
    rec = FlightRecorder(spill_path=flight_spill_path(str(tmp_path), 3))
    rec.record("tick", 1.0, n=1)
    rec.dump(flight_dump_path(str(tmp_path), 3), meta={"reason": "completed"})
    rec.close(remove_spill=True)
    assert not os.path.exists(flight_spill_path(str(tmp_path), 3))
    dumps = load_flight_dir(str(tmp_path))
    assert dumps[3]["in_flight"] is False
    assert dumps[3]["meta"]["reason"] == "completed"


def test_spill_failure_is_nonfatal(tmp_path):
    """A broken spill device must never take the simulation down."""
    spill = flight_spill_path(str(tmp_path), 1)
    rec = FlightRecorder(spill_path=spill)
    rec._spill_fh.close()  # break the handle: next write hits ValueError/OSError
    rec._spill_fh = open(os.devnull, "r")  # unwritable handle
    rec.record("tick", 0.0)
    with pytest.raises(Exception):
        rec._spill_fh.write("x")  # sanity: the handle really is unwritable
    rec.close()


def test_unwritable_spill_dir_disables_spill():
    rec = FlightRecorder(spill_path="/proc/definitely/not/writable/f.jsonl")
    assert rec.spill_failed is True
    rec.record("tick", 0.0)  # memory ring still works
    assert len(rec.ring) == 1


# -- simulator integration --------------------------------------------------------


def _spec():
    return CampaignSpec(node_mtbf_s=8.0, ckpt_period=5, timesteps=30)


def test_engine_ticks_and_fault_notes_recorded(tmp_path):
    sim = build_campaign_simulator(_spec(), seed=0, policy=RecoveryPolicy())
    rec = FlightRecorder(capacity=8192, tick_stride=16)
    sim.attach_flightrec(rec)
    res = sim.run()
    kinds = {r["kind"] for r in rec.ring}
    assert "tick" in kinds  # hot-loop sampling fired
    if res.faults_injected:
        assert "inject" in kinds


def test_attached_recorder_does_not_change_results(tmp_path):
    bare = build_campaign_simulator(_spec(), seed=5, policy=RecoveryPolicy()).run()
    sim = build_campaign_simulator(_spec(), seed=5, policy=RecoveryPolicy())
    sim.attach_flightrec(
        FlightRecorder(spill_path=flight_spill_path(str(tmp_path), 5))
    )
    recorded = sim.run()
    assert recorded.total_time == bare.total_time
    assert recorded.faults_injected == bare.faults_injected
    assert recorded.events_fired == bare.events_fired
    assert recorded.waste_rework == bare.waste_rework
    assert recorded.episodes == bare.episodes


# -- SIGKILL acceptance scenario --------------------------------------------------


def test_sigkilled_campaign_leaves_ingestible_flight_data(tmp_path):
    """Kill -9 a campaign mid-sweep: the dead replica's spill must be
    readable (torn-tail-safe) and `repro analyze` must ingest it."""
    journal = str(tmp_path / "wal.jsonl")
    flight_dir = str(tmp_path / "flight")
    repo_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(repo_root, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign",
         "--reps", "30", "--mtbf", "4", "--periods", "5",
         "--timesteps", "300", "--seed", "3",
         "--journal", journal, "--flight-dir", flight_dir],
        env=env,
        cwd=repo_root,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    # wait until at least one replica spill exists, then SIGKILL
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            break
        try:
            if any(
                f.endswith(".live.jsonl") for f in os.listdir(flight_dir)
            ) and os.path.exists(journal):
                break
        except FileNotFoundError:
            pass
        time.sleep(0.02)
    assert proc.poll() is None, "campaign finished before it could be killed"
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=30)

    dumps = load_flight_dir(flight_dir)
    assert dumps, "no flight data survived the kill"
    in_flight = [d for d in dumps.values() if d["in_flight"]]
    assert in_flight, "the killed replica left no live spill behind"

    # analyze must ingest the journal + flight dir without choking
    from repro.cli import main

    out_json = str(tmp_path / "an.json")
    assert main(["analyze", journal, "--flight-dir", flight_dir,
                 "--json", out_json]) == 0
    with open(out_json) as fh:
        analysis = json.load(fh)
    assert analysis["flight"]["dumps"] >= 1
    assert any(e["in_journal"] is False for e in analysis["flight"]["in_flight"])
