"""Campaign-level observability: merged timelines, roll-ups, heartbeat."""

import io
import json
import os

import pytest

from repro.core.campaign import ResilienceCampaign
from repro.obs.export import parse_prometheus_text
from repro.obs.heartbeat import CampaignHeartbeat
from repro.obs.instrument import CampaignObs, ObsOptions
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry


@pytest.fixture(autouse=True)
def fresh_global_registry():
    """In-process replicas record into the process-global registry; give
    each test its own so metrics don't leak between them."""
    orig = get_registry()
    set_registry(MetricsRegistry())
    try:
        yield
    finally:
        set_registry(orig)


def _options(tmp_path, **over):
    kw = dict(
        metrics_out=str(tmp_path / "m.jsonl"),
        metrics_interval_s=0.05,
        prom_out=str(tmp_path / "m.prom"),
        trace_out=str(tmp_path / "trace.json"),
        heartbeat_s=None,
    )
    kw.update(over)
    return ObsOptions(**kw)


def _run_campaign(tmp_path, n_workers, **opt_over):
    obs = CampaignObs(_options(tmp_path, **opt_over))
    camp = ResilienceCampaign(
        reps=2, base_seed=0, n_workers=n_workers, obs=obs
    )
    try:
        report = camp.run_grid([8.0], [5], timesteps=6)
    finally:
        camp.close()
    return report, obs


def _span_events(tmp_path):
    trace = json.loads((tmp_path / "trace.json").read_text())
    return {
        e["args"]["span_id"]: e
        for e in trace["traceEvents"]
        if "span_id" in e.get("args", {})
    }


def test_options_enabled():
    assert not ObsOptions().enabled
    assert ObsOptions(heartbeat_s=1.0).enabled
    with pytest.raises(ValueError):
        ObsOptions(metrics_interval_s=0.0)


def test_in_process_campaign_full_pipeline(tmp_path):
    report, obs = _run_campaign(tmp_path, n_workers=1)
    assert all(p.replicas_done == 2 for p in report.points)

    # prometheus snapshot is strictly valid and spans all layers
    fams = parse_prometheus_text((tmp_path / "m.prom").read_text())
    assert fams["engine_events_total"]["samples"][0][2] > 0
    assert fams["supervisor_tasks_completed_total"]["samples"][0][2] == 2.0

    # jsonl stream got at least a final forced snapshot
    lines = (tmp_path / "m.jsonl").read_text().splitlines()
    assert lines and json.loads(lines[-1])["metrics"]

    # one merged timeline: campaign -> point -> task -> replica -> engine.run
    spans = _span_events(tmp_path)
    chain = {}
    for ev in spans.values():
        layer = ev["name"].split(":")[0]
        chain.setdefault(layer, ev)
        parent = ev["args"]["parent_id"]
        assert parent is None or parent in spans
    assert set(chain) >= {"campaign", "point", "task", "replica", "engine.run"}
    # replicas hang off their supervisor task spans
    replica = chain["replica"]
    assert spans[replica["args"]["parent_id"]]["name"].startswith("task:")


def test_multiworker_spans_cross_process_boundary(tmp_path):
    report, obs = _run_campaign(tmp_path, n_workers=2)
    assert all(p.replicas_done == 2 for p in report.points)
    spans = _span_events(tmp_path)
    host_pids = {e["pid"] for e in spans.values() if e["name"] == "campaign"}
    worker_pids = {e["pid"] for e in spans.values() if e["name"] == "replica"}
    # worker spans really came from other processes...
    assert worker_pids and not (worker_pids & host_pids)
    # ...and still link to the campaign's task spans by derived ID
    for ev in spans.values():
        if ev["name"] == "replica":
            parent = spans[ev["args"]["parent_id"]]
            assert parent["name"].startswith("task:")
            assert parent["pid"] in host_pids

    # worker registry roll-up reached the campaign registry
    fams = parse_prometheus_text((tmp_path / "m.prom").read_text())
    assert fams["engine_events_total"]["samples"][0][2] > 0


def test_journal_resume_feeds_heartbeat_not_engine_metrics(tmp_path):
    journal = str(tmp_path / "wal.jsonl")
    camp = ResilienceCampaign(reps=2, base_seed=0, journal_path=journal)
    baseline = camp.run_grid([8.0], [5], timesteps=6)
    camp.close()

    out = io.StringIO()
    obs = CampaignObs(_options(tmp_path, heartbeat_s=0.001))
    obs.heartbeat.stream = out
    resumed = ResilienceCampaign.resume(journal, obs=obs)
    report = resumed.run_grid([8.0], [5], timesteps=6)
    resumed.close()

    # bit-identical report; every replica replayed, none recomputed
    assert report.to_json() == baseline.to_json()
    text = out.getvalue()
    assert "2/2 done" in text
    # no engines ran, so no engine metrics were recorded
    fams = parse_prometheus_text((tmp_path / "m.prom").read_text())
    assert "engine_events_total" not in fams


def test_results_bit_identical_with_and_without_obs(tmp_path):
    bare = ResilienceCampaign(reps=2, base_seed=0)
    plain = bare.run_grid([8.0], [5], timesteps=6)
    observed, _ = _run_campaign(tmp_path, n_workers=1)
    assert observed.to_json() == plain.to_json()


def test_obs_dir_cleanup_and_idempotent_close(tmp_path):
    _, obs = _run_campaign(tmp_path, n_workers=1)
    assert not os.path.exists(obs.obs_dir)  # scratch dir removed
    obs.end_campaign()  # second close is a no-op


def test_heartbeat_line_format():
    out = io.StringIO()
    hb = CampaignHeartbeat(interval_s=0.0001, stream=out, label="camp")
    hb.set_total(4)
    hb.replica_done(events_fired=1000)
    hb.replica_failed()
    hb.replica_quarantined()
    line = hb.status_line()
    assert "camp" in line and "2/4 done" in line
    assert "1 failed" in line and "1 quarantined" in line
    assert hb.beat(force=True)
    assert "done" in out.getvalue()
