"""Metric instruments: counters, gauges, histograms, P2 quantiles, registry."""

import math
import random

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    StreamingQuantile,
    get_registry,
    merge_records,
    set_registry,
)


# -- instruments --------------------------------------------------------------


def test_counter_monotone():
    c = Counter()
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(MetricError):
        c.inc(-1)


def test_gauge_set_inc_dec():
    g = Gauge()
    g.set(10.0)
    g.inc(2)
    g.dec(4)
    assert g.value == 8.0


def test_histogram_buckets_cumulative_snapshot():
    h = Histogram(buckets=(1.0, 10.0))
    for v in (0.5, 5.0, 50.0, 10.0):  # 10.0 lands in the <=10 bucket
        h.observe(v)
    snap = h.snapshot()
    bounds, counts = snap["buckets"]
    assert bounds == [1.0, 10.0, "+Inf"]
    assert counts == [1, 2, 1]
    assert snap["count"] == 4 and snap["sum"] == pytest.approx(65.5)


def test_histogram_merge_requires_same_buckets():
    a = Histogram(buckets=(1.0,))
    b = Histogram(buckets=(2.0,))
    with pytest.raises(MetricError):
        a.merge(b.snapshot())


def test_streaming_quantile_small_sample_exact():
    q = StreamingQuantile(quantiles=(0.5,))
    for v in (3.0, 1.0, 2.0):
        q.observe(v)
    assert q.estimate(0.5) == 2.0
    with pytest.raises(MetricError):
        q.estimate(0.75)


def test_streaming_quantile_p2_convergence():
    """P2 medians/percentiles converge on a known uniform distribution."""
    rng = random.Random(7)
    q = StreamingQuantile(quantiles=(0.5, 0.9, 0.99))
    for _ in range(20_000):
        q.observe(rng.uniform(0.0, 1.0))
    assert q.estimate(0.5) == pytest.approx(0.5, abs=0.03)
    assert q.estimate(0.9) == pytest.approx(0.9, abs=0.03)
    assert q.estimate(0.99) == pytest.approx(0.99, abs=0.02)
    snap = q.snapshot()
    assert snap["count"] == 20_000
    assert 0.0 <= snap["min"] <= snap["max"] <= 1.0


def test_streaming_quantile_merge_weighted():
    a = StreamingQuantile(quantiles=(0.5,))
    b = StreamingQuantile(quantiles=(0.5,))
    for _ in range(100):
        a.observe(1.0)
        b.observe(3.0)
    a.merge(b.snapshot())
    assert a.count == 200
    assert a.estimate(0.5) == pytest.approx(2.0)
    assert a.min == 1.0 and a.max == 3.0


def test_quantile_empty_estimate_nan():
    assert math.isnan(StreamingQuantile(quantiles=(0.5,)).estimate(0.5))


# -- registry ------------------------------------------------------------------


def test_registry_get_or_create_and_labels():
    reg = MetricsRegistry()
    a = reg.counter("jobs_total", help="jobs", queue="fast")
    b = reg.counter("jobs_total", queue="fast")
    c = reg.counter("jobs_total", queue="slow")
    assert a is b and a is not c
    a.inc()
    c.inc(2)
    recs = reg.collect()
    by_labels = {
        tuple(sorted(r["labels"].items())): r["data"]["value"]
        for r in recs
        if r["name"] == "jobs_total"
    }
    assert by_labels == {(("queue", "fast"),): 1.0, (("queue", "slow"),): 2.0}
    # help text survives from the first registration
    assert all(r["help"] == "jobs" for r in recs if r["name"] == "jobs_total")


def test_registry_kind_conflict():
    reg = MetricsRegistry()
    reg.counter("x_total")
    with pytest.raises(MetricError):
        reg.gauge("x_total")


def test_registry_name_validation():
    reg = MetricsRegistry()
    with pytest.raises(MetricError):
        reg.counter("bad name")
    with pytest.raises(MetricError):
        reg.counter("ok_total", **{"bad-label": "v"})


def test_collect_is_deterministic():
    reg = MetricsRegistry()
    reg.counter("b_total", z="1").inc()
    reg.counter("a_total").inc()
    reg.gauge("m").set(3)
    names = [r["name"] for r in reg.collect()]
    assert names == sorted(names)
    assert reg.collect() == reg.collect()


def test_merge_records_cross_process_rollup():
    """Worker registries merge into the campaign's: the cross-process path."""
    host, w1, w2 = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
    for reg, n in ((host, 1), (w1, 10), (w2, 100)):
        reg.counter("events_total").inc(n)
        reg.histogram("depth", buckets=(2.0, 8.0)).observe(n % 7)
    host.merge_records(merge_records(w1.collect(), w2.collect()))
    recs = {r["name"]: r["data"] for r in host.collect()}
    assert recs["events_total"]["value"] == 111.0
    assert recs["depth"]["count"] == 3


def test_registry_reset():
    reg = MetricsRegistry()
    reg.counter("n_total").inc()
    reg.reset()
    assert reg.collect() == []


def test_global_registry_swap():
    orig = get_registry()
    mine = MetricsRegistry()
    try:
        set_registry(mine)
        assert get_registry() is mine
    finally:
        set_registry(orig)
