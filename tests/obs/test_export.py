"""Exporters: JSONL sink, Prometheus round-trip, guarded I/O, summaries."""

import json

import pytest

from repro.obs.export import (
    JsonlSink,
    PrometheusParseError,
    guarded_export,
    parse_prometheus_text,
    registry_to_prometheus,
    reset_export_warnings,
    summarize_metrics,
    write_prometheus,
)
from repro.obs.metrics import MetricsRegistry


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("events_total", help="All events.", kind="sim").inc(42)
    reg.gauge("temp_c", help='It said "hot"\nyesterday.').set(21.5)
    reg.histogram("depth", buckets=(1.0, 8.0)).observe(3)
    q = reg.quantile("latency_seconds", quantiles=(0.5, 0.9))
    for v in (0.1, 0.2, 0.3):
        q.observe(v)
    return reg


def test_prometheus_round_trip_through_strict_parser():
    reg = _populated_registry()
    fams = parse_prometheus_text(registry_to_prometheus(reg))
    assert fams["events_total"]["type"] == "counter"
    assert fams["events_total"]["samples"] == [
        ("events_total", {"kind": "sim"}, 42.0)
    ]
    assert fams["depth"]["type"] == "histogram"
    names = [s[0] for s in fams["depth"]["samples"]]
    assert "depth_bucket" in names and "depth_sum" in names and "depth_count" in names
    buckets = [s for s in fams["depth"]["samples"] if s[0] == "depth_bucket"]
    assert buckets[-1][1]["le"] == "+Inf" and buckets[-1][2] == 1.0
    assert fams["latency_seconds"]["type"] == "summary"
    q50 = next(
        s
        for s in fams["latency_seconds"]["samples"]
        if s[1].get("quantile") == "0.5"
    )
    assert q50[2] == pytest.approx(0.2)
    # escaped multi-line help survives
    assert "hot" in fams["temp_c"]["help"]


def test_write_prometheus_atomic(tmp_path):
    path = tmp_path / "metrics.prom"
    write_prometheus(str(path), _populated_registry())
    assert parse_prometheus_text(path.read_text())
    assert not list(tmp_path.glob(".tmp*"))


@pytest.mark.parametrize(
    "bad",
    [
        "events_total{le 1.0\n",  # malformed sample line
        "events_total not_a_number\n",  # bad value
        "x_total 1\n# TYPE x_total counter\n",  # TYPE after samples
        # histogram with non-monotone buckets
        '# TYPE h histogram\nh_bucket{le="1"} 5\nh_bucket{le="2"} 3\n'
        'h_bucket{le="+Inf"} 5\nh_sum 1\nh_count 5\n',
        # histogram missing the +Inf bucket
        '# TYPE h histogram\nh_bucket{le="1"} 1\nh_sum 1\nh_count 1\n',
    ],
)
def test_strict_parser_rejects(bad):
    with pytest.raises(PrometheusParseError):
        parse_prometheus_text(bad)


def test_jsonl_sink_snapshots_and_interval(tmp_path):
    reg = MetricsRegistry()
    c = reg.counter("n_total")
    path = tmp_path / "m.jsonl"
    sink = JsonlSink(str(path), reg, interval_s=3600.0)
    c.inc()
    assert sink.maybe_flush(force=True)
    assert not sink.maybe_flush()  # interval not elapsed
    c.inc()
    sink.close()  # forces a final snapshot
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(lines) == 2
    assert lines[0]["metrics"][0]["data"]["value"] == 1.0
    assert lines[1]["metrics"][0]["data"]["value"] == 2.0
    assert lines[1]["ts"] >= lines[0]["ts"]


def test_guarded_export_counts_and_warns_once(caplog):
    reg = MetricsRegistry()
    reset_export_warnings()

    def boom():
        raise OSError("disk full")

    with caplog.at_level("WARNING", logger="repro.obs"):
        assert not guarded_export("sink:test", boom, registry=reg)
        assert not guarded_export("sink:test", boom, registry=reg)
    # logged once, counted twice, simulation keeps going
    assert len([r for r in caplog.records if "sink:test" in r.message]) == 1
    errs = next(
        r for r in reg.collect() if r["name"] == "obs_export_errors_total"
    )
    assert errs["labels"] == {"sink": "sink:test"}
    assert errs["data"]["value"] == 2.0
    reset_export_warnings()


def test_guarded_export_propagates_non_io_errors():
    with pytest.raises(ZeroDivisionError):
        guarded_export("sink:test2", lambda: 1 // 0)


def test_summarize_jsonl_last_snapshot_wins(tmp_path):
    reg = MetricsRegistry()
    c = reg.counter("n_total")
    path = tmp_path / "m.jsonl"
    sink = JsonlSink(str(path), reg, interval_s=0.001)
    c.inc(1)
    sink.maybe_flush(force=True)
    c.inc(9)
    sink.close()
    text = summarize_metrics(str(path))
    assert "2 snapshots" in text
    assert "10" in text and "n_total" in text


def test_summarize_prometheus(tmp_path):
    path = tmp_path / "m.prom"
    write_prometheus(str(path), _populated_registry())
    text = summarize_metrics(str(path))
    assert "prometheus" in text
    assert "events_total" in text


def test_summarize_surfaces_notable_durability_counters(tmp_path):
    reg = MetricsRegistry()
    reg.counter(
        "snapshot_corrupt_skipped_total",
        help="Corrupt snapshots skipped during restore.",
    ).inc(3)
    reg.counter(
        "guard_fsfaults_injected_total", kind="enospc", op="wal.append"
    ).inc(2)
    reg.counter("events_total").inc(100)  # not notable: no note line
    path = tmp_path / "m.prom"
    write_prometheus(str(path), reg)
    text = summarize_metrics(str(path))
    notes = [line for line in text.splitlines() if "note:" in line]
    assert any(
        "3" in n and "snapshot_corrupt_skipped_total" in n for n in notes
    )
    assert any(
        "2" in n and "guard_fsfaults_injected_total" in n for n in notes
    )
    assert not any("events_total" in n for n in notes)


def test_summarize_no_notes_when_counters_are_zero(tmp_path):
    reg = MetricsRegistry()
    reg.counter("snapshot_corrupt_skipped_total")
    reg.counter("events_total").inc(5)
    path = tmp_path / "m.prom"
    write_prometheus(str(path), reg)
    assert "note:" not in summarize_metrics(str(path))


def test_jsonl_sink_breaker_suspend_resume(tmp_path):
    reg = MetricsRegistry()
    reg.counter("n_total").inc()
    path = tmp_path / "m.jsonl"
    sink = JsonlSink(str(path), reg, interval_s=0.001)
    assert sink.maybe_flush(force=True)
    sink.suspend()
    assert not sink.maybe_flush(force=True)  # suspended: skipped, not fatal
    assert sink.suspended_skips == 1
    sink.resume()
    assert sink.maybe_flush(force=True)
    sink.close()


def test_summarize_surfaces_network_fault_counters(tmp_path):
    reg = MetricsRegistry()
    reg.counter("net_reroutes_total").inc(4)
    reg.counter("net_retransmits_total").inc(11)
    reg.counter("net_partition_stalls_total").inc(2)
    path = tmp_path / "m.prom"
    write_prometheus(str(path), reg)
    text = summarize_metrics(str(path))
    notes = [line for line in text.splitlines() if "note:" in line]
    assert any("4" in n and "detour route" in n for n in notes)
    assert any("11" in n and "retransmission" in n for n in notes)
    assert any("2" in n and "partitioned network" in n for n in notes)
