"""Span trees, deterministic cross-process IDs, JSONL persistence."""

import json
import os

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import (
    ObsContext,
    Span,
    Tracer,
    derive_span_id,
    dump_worker_metrics,
    load_spans,
    load_worker_metrics,
    new_trace_id,
    spans_jsonl_path,
)


def test_derive_span_id_deterministic_and_distinct():
    tid = new_trace_id()
    assert derive_span_id(tid, "task", "a:0") == derive_span_id(tid, "task", "a:0")
    assert derive_span_id(tid, "task", "a:0") != derive_span_id(tid, "task", "a:1")
    # the separator prevents part-boundary collisions
    assert derive_span_id(tid, "ab", "c") != derive_span_id(tid, "a", "bc")
    assert derive_span_id(new_trace_id(), "task", "a:0") != derive_span_id(
        tid, "task", "a:0"
    )


def test_nested_spans_parent_from_stack():
    tr = Tracer()
    with tr.start_span("outer") as outer:
        with tr.start_span("inner") as inner:
            assert inner.parent_id == outer.span_id
            assert inner.tid == outer.tid  # nested spans share the lane
    assert outer.parent_id is None
    assert outer.duration >= 0
    assert len(tr.finished_spans()) == 2


def test_detached_spans_and_default_parent():
    tr = Tracer(default_parent_id="feedbeef" * 2)
    a = tr.start_span("a", push=False)
    b = tr.start_span("b", push=False)
    assert a.parent_id == "feedbeef" * 2
    assert a.tid != b.tid  # detached spans get their own lanes
    a.end()
    b.end(outcome="done")
    assert b.attrs["outcome"] == "done"


def test_span_round_trip():
    tr = Tracer()
    sp = tr.start_span("x", n=3)
    sp.end()
    back = Span.from_dict(json.loads(json.dumps(sp.to_dict())))
    assert back.span_id == sp.span_id
    assert back.trace_id == sp.trace_id
    assert back.attrs == {"n": 3}
    assert back.t_end == sp.t_end


def test_dump_drain_appends_each_span_once(tmp_path):
    tr = Tracer()
    path = str(tmp_path / "spans.jsonl")
    tr.start_span("one", push=False).end()
    assert tr.dump_jsonl(path, drain=True) == 1
    tr.start_span("two", push=False).end()
    assert tr.dump_jsonl(path, drain=True) == 1
    names = [s.name for s in load_spans(path)]
    assert sorted(names) == ["one", "two"]


def test_load_spans_dedupes_and_skips_garbage(tmp_path):
    obs_dir = str(tmp_path)
    tr = Tracer()
    sp = tr.start_span("task", push=False)
    sp.end()
    p1 = spans_jsonl_path(obs_dir, pid=111)
    p2 = spans_jsonl_path(obs_dir, pid=222)
    for p in (p1, p2):  # same span written by two processes
        with open(p, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(sp.to_dict()) + "\n")
    with open(p2, "a", encoding="utf-8") as fh:
        fh.write('{"torn...\n')  # crash mid-write must not poison the load
    spans = load_spans(obs_dir)
    assert len(spans) == 1 and spans[0].span_id == sp.span_id


def test_worker_metrics_round_trip(tmp_path):
    obs_dir = str(tmp_path)
    reg = MetricsRegistry()
    reg.counter("n_total").inc(5)
    dump_worker_metrics(obs_dir, reg.collect())
    assert load_worker_metrics(obs_dir, skip_pid=os.getpid()) == []
    loaded = load_worker_metrics(obs_dir)
    assert len(loaded) == 1
    assert loaded[0][0]["name"] == "n_total"
    assert loaded[0][0]["data"]["value"] == 5.0


def test_obs_context_paths_are_per_pid(tmp_path):
    ctx = ObsContext(
        trace_id=new_trace_id(),
        parent_span_id=None,
        obs_dir=str(tmp_path),
        host_pid=os.getpid(),
    )
    assert spans_jsonl_path(ctx.obs_dir, pid=1) != spans_jsonl_path(
        ctx.obs_dir, pid=2
    )
