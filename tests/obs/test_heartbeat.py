"""Campaign heartbeat: status-line content, throttling, guarded output."""

import io

import pytest

from repro.obs.export import reset_export_warnings
from repro.obs.heartbeat import CampaignHeartbeat, _fmt_eta, _fmt_rate


@pytest.fixture(autouse=True)
def clean_export_warnings():
    reset_export_warnings()
    yield
    reset_export_warnings()


def test_interval_must_be_positive():
    with pytest.raises(ValueError):
        CampaignHeartbeat(interval_s=0.0)
    with pytest.raises(ValueError):
        CampaignHeartbeat(interval_s=-1.0)


def test_status_line_zero_done():
    hb = CampaignHeartbeat(stream=io.StringIO())
    assert hb.status_line() == "[campaign] 0/? done"
    hb.set_total(12)
    assert hb.status_line() == "[campaign] 0/12 done"
    # no completed replicas yet: no rate, no ETA
    assert "ev/s" not in hb.status_line()
    assert "ETA" not in hb.status_line()


def test_status_line_counts_failed_and_quarantined():
    hb = CampaignHeartbeat(stream=io.StringIO(), label="sweep")
    hb.set_total(10)
    hb.replica_done(events_fired=1000)
    hb.replica_failed()
    hb.replica_quarantined()  # counts toward done too
    line = hb.status_line()
    assert line.startswith("[sweep] 2/10 done")
    assert "1 failed" in line
    assert "1 quarantined" in line
    assert "ev/s" in line


def test_eta_excludes_replayed_replicas():
    """Journal-replayed replicas arrive instantly; extrapolating from
    them would fabricate an absurd ETA, so only fresh ones count."""
    hb = CampaignHeartbeat(stream=io.StringIO())
    hb.set_total(10)
    for _ in range(4):
        hb.replica_done(from_journal=True)
    line = hb.status_line()
    assert "4 from journal" in line
    assert "ETA" not in line  # all done replicas are replays
    hb.replica_done(events_fired=10)
    assert "ETA" in hb.status_line()  # one fresh replica unlocks the ETA


def test_degraded_stage_shown_only_when_abnormal():
    hb = CampaignHeartbeat(stream=io.StringIO())
    assert "degraded" not in hb.status_line()
    hb.set_stage("normal")
    assert "degraded" not in hb.status_line()
    hb.set_stage("pause_submission")
    assert "degraded: pause_submission" in hb.status_line()


def test_beat_throttles_to_interval():
    out = io.StringIO()
    hb = CampaignHeartbeat(interval_s=3600.0, stream=out)
    assert hb.beat() is True  # first beat always prints
    assert hb.beat() is False  # throttled
    assert hb.beat(force=True) is True  # force bypasses the throttle
    assert hb.lines_printed == 2
    assert len(out.getvalue().splitlines()) == 2


def test_broken_stream_never_raises():
    """The guarded_export path: a dead stderr degrades to silence."""

    class Broken(io.StringIO):
        def write(self, s):
            raise OSError("broken pipe")

    hb = CampaignHeartbeat(interval_s=0.001, stream=Broken())
    hb.replica_done()
    assert hb.beat(force=True) is False
    assert hb.lines_printed == 0
    assert hb.beat(force=True) is False  # still quiet, still no raise


def test_fmt_helpers():
    assert _fmt_eta(59) == "0:59"
    assert _fmt_eta(61) == "1:01"
    assert _fmt_eta(3661) == "1:01:01"
    assert _fmt_eta(-5) == "0:00"
    assert _fmt_rate(950) == "950"
    assert _fmt_rate(184_000) == "184k"
    assert _fmt_rate(2_500_000) == "2.5M"
