"""Unit tests for the sequential engine, components, links and clocks."""

import pytest

from repro.des import Clock, Component, Engine, Link, SimulationError
from repro.des.link import connect


class Recorder(Component):
    """Collects (time, port, payload) for every event it receives."""

    def __init__(self, name):
        super().__init__(name)
        self.received = []
        self.setup_called = False
        self.finish_called = False

    def setup(self):
        self.setup_called = True

    def finish(self):
        self.finish_called = True

    def handle_event(self, port_name, payload, time):
        self.received.append((time, port_name, payload))


class Pinger(Component):
    """Sends `count` pings out of port 'out', spaced by `gap` seconds."""

    def __init__(self, name, count, gap=1.0):
        super().__init__(name)
        self.count = count
        self.gap = gap

    def setup(self):
        for i in range(self.count):
            self.schedule(i * self.gap, self._fire, payload=i)

    def _fire(self, ev):
        self.send("out", ev.payload)

    def handle_event(self, port_name, payload, time):
        pass


def test_register_and_run_empty():
    eng = Engine()
    eng.register(Recorder("r"))
    assert eng.run() == 0.0
    assert eng.components["r"].finish_called


def test_duplicate_name_rejected():
    eng = Engine()
    eng.register(Recorder("x"))
    with pytest.raises(SimulationError):
        eng.register(Recorder("x"))


def test_component_cannot_join_two_engines():
    c = Recorder("c")
    Engine().register(c)
    with pytest.raises(SimulationError):
        Engine().register(c)


def test_self_schedule_advances_clock():
    eng = Engine()
    r = eng.register(Recorder("r"))
    marks = []
    r.engine = eng  # already set by register; keep explicit for clarity
    eng.schedule(5.0, lambda ev: marks.append(eng.now))
    assert eng.run() == 5.0
    assert marks == [5.0]


def test_link_delivers_with_latency():
    eng = Engine()
    src = eng.register(Pinger("src", count=3, gap=1.0))
    dst = eng.register(Recorder("dst"))
    connect(src, "out", dst, "in", latency=0.25)
    eng.run()
    assert dst.received == [(0.25, "in", 0), (1.25, "in", 1), (2.25, "in", 2)]


def test_link_requires_positive_latency():
    eng = Engine()
    a = eng.register(Recorder("a"))
    b = eng.register(Recorder("b"))
    with pytest.raises(ValueError):
        Link(a.port("x"), b.port("y"), latency=0.0)


def test_port_single_link():
    eng = Engine()
    a = eng.register(Recorder("a"))
    b = eng.register(Recorder("b"))
    c = eng.register(Recorder("c"))
    connect(a, "p", b, "p", latency=1.0)
    with pytest.raises(ValueError):
        connect(a, "p", c, "p", latency=1.0)


def test_cross_engine_link_rejected():
    e1, e2 = Engine(), Engine()
    a = e1.register(Recorder("a"))
    b = e2.register(Recorder("b"))
    with pytest.raises(ValueError):
        connect(a, "p", b, "p", latency=1.0)


def test_send_on_unconnected_port_raises():
    eng = Engine()
    a = eng.register(Recorder("a"))
    with pytest.raises(RuntimeError):
        a.send("nowhere", 42)


def test_run_until_pauses_and_resumes():
    eng = Engine()
    src = eng.register(Pinger("src", count=5, gap=1.0))
    dst = eng.register(Recorder("dst"))
    connect(src, "out", dst, "in", latency=0.5)
    eng.run(until=2.0)
    assert len(dst.received) == 2  # arrivals at 0.5, 1.5
    assert eng.now == 2.0
    eng.run()
    assert len(dst.received) == 5


def test_event_at_exact_until_horizon_fires():
    eng = Engine()
    hits = []
    eng.schedule(2.0, lambda ev: hits.append(eng.now))
    eng.run(until=2.0)
    assert hits == [2.0]


def test_negative_delay_rejected():
    eng = Engine()
    r = eng.register(Recorder("r"))
    with pytest.raises(ValueError):
        r.schedule(-1.0, lambda ev: None)


def test_past_event_rejected():
    from repro.des.event import Event

    eng = Engine()
    eng.schedule(1.0, lambda ev: None)
    eng.run()
    with pytest.raises(SimulationError):
        eng.schedule_event(Event(time=0.5, handler=lambda ev: None))


def test_max_events_guard():
    eng = Engine()
    r = eng.register(Recorder("r"))

    def loop(ev):
        r.schedule(0.0, loop)

    r.engine.schedule(0.0, loop)
    with pytest.raises(SimulationError):
        eng.run(max_events=100)
    # the counter reports only events whose handlers actually ran
    assert eng.events_fired == 100


def test_max_events_exact_budget_completes():
    """A run needing exactly max_events handlers must not trip the guard."""
    eng = Engine()
    r = eng.register(Recorder("r"))
    for i in range(10):
        r.schedule(float(i), lambda ev: None)
    eng.run(max_events=10)
    assert eng.events_fired == 10
    # a subsequent run gets a fresh budget
    r.schedule(100.0, lambda ev: None)
    eng.run(max_events=1)
    assert eng.events_fired == 11


def test_cancel_via_engine():
    eng = Engine()
    hits = []
    ev = eng.schedule(1.0, lambda e: hits.append(1))
    eng.cancel(ev)
    eng.run()
    assert hits == [] and len(eng.queue) == 0


def test_rng_streams_independent_and_deterministic():
    def draw(seed):
        eng = Engine(seed=seed)
        a = eng.register(Recorder("a"))
        b = eng.register(Recorder("b"))
        return a.rng.random(3).tolist(), b.rng.random(3).tolist()

    a1, b1 = draw(7)
    a2, b2 = draw(7)
    a3, _ = draw(8)
    assert a1 == a2 and b1 == b2
    assert a1 != b1
    assert a1 != a3


def test_clock_ticks_and_stops():
    eng = Engine()
    r = eng.register(Recorder("r"))
    ticks = []

    def on_tick(cycle, time):
        ticks.append((cycle, time))
        return cycle >= 3  # stop after 3 ticks

    Clock(r, period=2.0, handler=on_tick)
    eng.run()
    assert ticks == [(1, 2.0), (2, 4.0), (3, 6.0)]


def test_clock_stop_cancels_pending():
    eng = Engine()
    r = eng.register(Recorder("r"))
    ticks = []
    clk = Clock(r, period=1.0, handler=lambda c, t: ticks.append(c))
    eng.schedule(2.5, lambda ev: clk.stop())
    eng.run()
    assert ticks == [1, 2]


def test_clock_custom_start_delay():
    eng = Engine()
    r = eng.register(Recorder("r"))
    ticks = []
    Clock(r, period=1.0, start_delay=0.0,
          handler=lambda c, t: ticks.append(t) or (c >= 2))
    eng.run()
    assert ticks == [0.0, 1.0]


def test_events_fired_counter_and_trace():
    eng = Engine(trace=True)
    src = eng.register(Pinger("src", count=2, gap=1.0))
    dst = eng.register(Recorder("dst"))
    connect(src, "out", dst, "in", latency=0.1)
    eng.run()
    assert eng.events_fired == 4  # 2 self fires + 2 deliveries
    assert len(eng.trace_log) == 4
    times = [t[0] for t in eng.trace_log]
    assert times == sorted(times)
