"""Parallel engine: partitioning and sequential-equivalence tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Component, Engine, ParallelEngine, SimulationError
from repro.des.link import connect
from repro.des.partition import cut_statistics, partition_components


class RingNode(Component):
    """Passes a token around a ring `laps` times, recording visits."""

    def __init__(self, name, laps):
        super().__init__(name)
        self.laps = laps
        self.visits = []

    def start(self):
        self.send("next", {"lap": 0})

    def handle_event(self, port_name, payload, time):
        self.visits.append(round(time, 12))
        lap = payload["lap"]
        if port_name == "prev":
            if self.name.endswith("_0"):
                lap += 1
            if lap < self.laps:
                self.send("next", {"lap": lap})


class NoisyWorker(Component):
    """Does random-length 'work' bursts and reports to a sink."""

    def __init__(self, name, bursts):
        super().__init__(name)
        self.bursts = bursts
        self.total = 0.0

    def setup(self):
        self.schedule(0.0, self._work, payload=self.bursts)

    def _work(self, ev):
        remaining = ev.payload
        if remaining <= 0:
            return
        dt = float(self.rng.exponential(1.0)) + 1e-6
        self.total += dt
        self.send("out", {"dt": dt})
        self.schedule(dt, self._work, payload=remaining - 1)

    def handle_event(self, port_name, payload, time):
        pass


class Sink(Component):
    def __init__(self, name):
        super().__init__(name)
        self.log = []

    def handle_event(self, port_name, payload, time):
        self.log.append((round(time, 12), port_name, payload["dt"]))


def build_ring(engine, n=8, laps=3, latency=0.5):
    nodes = [engine.register(RingNode(f"n_{i}", laps)) for i in range(n)]
    for i in range(n):
        connect(nodes[i], "next", nodes[(i + 1) % n], "prev", latency=latency)
    nodes[0].engine.schedule(0.0, lambda ev: nodes[0].start())
    return nodes


def build_workers(engine, n=6, bursts=10, latency=0.25):
    sink = engine.register(Sink("sink"))
    for i in range(n):
        w = engine.register(NoisyWorker(f"w_{i}", bursts))
        connect(w, "out", sink, f"in_{i}", latency=latency)
    return sink


def test_ring_sequential_vs_parallel():
    seq = Engine(seed=3)
    nodes_s = build_ring(seq, n=8, laps=3)
    seq.run()

    for nparts in (1, 2, 3, 8):
        par = ParallelEngine(nparts=nparts, seed=3)
        nodes_p = build_ring(par, n=8, laps=3)
        par.run()
        for a, b in zip(nodes_s, nodes_p):
            assert a.visits == b.visits, f"nparts={nparts}"


def test_noisy_workers_equivalence():
    seq = Engine(seed=11)
    sink_s = build_workers(seq)
    seq.run()

    par = ParallelEngine(nparts=4, seed=11)
    sink_p = build_workers(par)
    par.run()

    # Cross-partition tie order may differ; compare as multisets.
    assert sorted(sink_s.log) == sorted(sink_p.log)
    assert seq.events_fired == par.events_fired


def test_parallel_executes_multiple_windows():
    par = ParallelEngine(nparts=2, seed=0)
    build_ring(par, n=4, laps=5, latency=0.5)
    par.run()
    assert par.windows_executed > 1
    assert par.lookahead == 0.5


def test_lookahead_infinite_without_cross_links():
    par = ParallelEngine(nparts=2, seed=0, assignment={"w_0": 0, "w_1": 0, "sink": 0})
    sink = par.register(Sink("sink"))
    w0 = par.register(NoisyWorker("w_0", 3))
    w1 = par.register(NoisyWorker("w_1", 3))
    connect(w0, "out", sink, "in_0", latency=0.1)
    connect(w1, "out", sink, "in_1", latency=0.1)
    par.run()
    assert par.lookahead == float("inf")
    assert len(sink.log) == 6


def test_explicit_assignment_used():
    par = ParallelEngine(nparts=2, assignment={"n_0": 0, "n_1": 1, "n_2": 0, "n_3": 1})
    build_ring(par, n=4, laps=2)
    par.run()
    assert par.lookahead == 0.5


def test_run_until_matches_sequential():
    seq = Engine(seed=5)
    sink_s = build_workers(seq, n=4, bursts=6)
    seq.run(until=3.0)

    par = ParallelEngine(nparts=2, seed=5)
    sink_p = build_workers(par, n=4, bursts=6)
    par.run(until=3.0)

    assert sorted(sink_s.log) == sorted(sink_p.log)
    assert seq.now == par.now == 3.0


def test_invalid_nparts():
    with pytest.raises(SimulationError):
        ParallelEngine(nparts=0)


def test_nparts_exceeding_components_rejected():
    # every partition must own at least one component; silently clamping
    # would make windows_executed/lookahead lie about the topology
    par = ParallelEngine(nparts=5, seed=0)
    build_ring(par, n=4, laps=1)
    with pytest.raises(SimulationError, match="nparts=5 exceeds the 4"):
        par.run()


def test_nparts_exceeding_components_rejected_when_empty():
    par = ParallelEngine(nparts=1)
    with pytest.raises(SimulationError, match="0 registered component"):
        par.run()


def test_zero_latency_cross_partition_link_rejected():
    # Link construction already enforces latency > 0; this guards the
    # engine against post-construction mutation (e.g. a dynamic-latency
    # model extension) that would silently break conservative windows.
    par = ParallelEngine(
        nparts=2, seed=0, assignment={"n_0": 0, "n_1": 0, "n_2": 1, "n_3": 1}
    )
    build_ring(par, n=4, laps=1, latency=0.5)
    cross = next(  # n_1 -> n_2 spans partitions 0 and 1
        ln for ln in par.links
        if {ln.a.component.name, ln.b.component.name} == {"n_1", "n_2"}
    )
    cross.latency = 0.0
    with pytest.raises(SimulationError, match="zero-latency cross-partition"):
        par.run()
    assert cross.name in _raised_message(par)


def _raised_message(par):
    try:
        par._compute_lookahead()
    except SimulationError as exc:
        return str(exc)
    return ""


def test_zero_latency_internal_link_is_fine():
    # zero lookahead only matters across partitions: an intra-partition
    # link may (hypothetically) carry any latency without breaking windows
    par = ParallelEngine(
        nparts=2, seed=0, assignment={"n_0": 0, "n_1": 0, "n_2": 1, "n_3": 1}
    )
    build_ring(par, n=4, laps=1, latency=0.5)
    # n_0 <-> n_1 is internal to partition 0
    internal = next(
        ln for ln in par.links
        if {ln.a.component.name, ln.b.component.name} == {"n_0", "n_1"}
    )
    internal.latency = 0.0
    par.run()  # does not raise; cross-partition lookahead still 0.5
    assert par.lookahead == 0.5


def test_parallel_max_events_counts_fired_handlers():
    eng = ParallelEngine(nparts=2, seed=0)
    build_ring(eng, n=8, laps=100)
    with pytest.raises(SimulationError):
        eng.run(max_events=50)
    assert eng.events_fired == 50


# -- partitioning ------------------------------------------------------------


def test_block_partition_contiguous_and_balanced():
    names = [f"c{i:02d}" for i in range(10)]
    assign = partition_components(names, 3, method="block")
    sizes = [list(assign.values()).count(p) for p in range(3)]
    assert sorted(sizes) == [3, 3, 4]
    # contiguity in sorted order
    seen = [assign[n] for n in sorted(names)]
    assert seen == sorted(seen)


def test_round_robin_partition():
    assign = partition_components(["a", "b", "c", "d"], 2, method="round_robin")
    assert assign == {"a": 0, "b": 1, "c": 0, "d": 1}


def test_more_parts_than_names_clamped():
    assign = partition_components(["a", "b"], 5, method="block")
    assert set(assign.values()) <= {0, 1}


def test_graph_partition_cuts_few_edges():
    # Two cliques joined by one bridge: graph partitioning should cut ~1 edge.
    edges = []
    for grp, names in enumerate([["a0", "a1", "a2", "a3"], ["b0", "b1", "b2", "b3"]]):
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                edges.append((names[i], names[j], 1.0))
    edges.append(("a0", "b0", 1.0))
    names = [f"{g}{i}" for g in "ab" for i in range(4)]
    assign = partition_components(names, 2, edges=edges, method="graph")
    stats = cut_statistics(assign, edges)
    assert stats["cut_links"] <= 2
    assert sorted(stats["partition_sizes"]) == [4, 4]


def test_graph_partition_requires_edges():
    with pytest.raises(ValueError):
        partition_components(["a", "b"], 2, method="graph")


def test_unknown_method_rejected():
    with pytest.raises(ValueError):
        partition_components(["a"], 1, method="zigzag")


@given(
    n=st.integers(min_value=1, max_value=40),
    nparts=st.integers(min_value=1, max_value=8),
    method=st.sampled_from(["block", "round_robin"]),
)
def test_partition_covers_all_names(n, nparts, method):
    names = [f"x{i}" for i in range(n)]
    assign = partition_components(names, nparts, method=method)
    assert set(assign) == set(names)
    assert all(0 <= p < min(nparts, n) for p in assign.values())


@settings(deadline=None, max_examples=20)
@given(seed=st.integers(min_value=0, max_value=1000), nparts=st.integers(min_value=1, max_value=5))
def test_equivalence_property(seed, nparts):
    seq = Engine(seed=seed)
    sink_s = build_workers(seq, n=5, bursts=4)
    seq.run()
    par = ParallelEngine(nparts=nparts, seed=seed)
    sink_p = build_workers(par, n=5, bursts=4)
    par.run()
    assert sorted(sink_s.log) == sorted(sink_p.log)
