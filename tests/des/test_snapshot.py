"""Engine snapshot/restore: capture, persistence, cadence, trace identity."""

import os

import pytest

from repro.des import (
    Component,
    Engine,
    SimulationError,
    Snapshot,
    SnapshotError,
    SnapshotStore,
    trace_digest,
)
from repro.des.link import connect
from repro.des.snapshot import AutoSnapshotPolicy


class Chatter(Component):
    """Self-starting component exchanging random-latency messages."""

    def __init__(self, name, rounds):
        super().__init__(name)
        self.rounds = rounds
        self.heard = []

    def setup(self):
        self.schedule(0.0, self._talk, payload=self.rounds)

    def _talk(self, ev):
        remaining = ev.payload
        if remaining <= 0:
            return
        self.send("out", {"n": remaining})
        self.schedule(float(self.rng.exponential(1.0)) + 1e-9, self._talk,
                      payload=remaining - 1)

    def handle_event(self, port_name, payload, time):
        self.heard.append((round(time, 12), payload["n"]))


def build_pair(engine, rounds=6):
    a = engine.register(Chatter("a", rounds))
    b = engine.register(Chatter("b", rounds))
    connect(a, "out", b, "in", latency=0.3)
    connect(b, "out", a, "in", latency=0.3)
    return a, b


def run_reference(seed=0, rounds=6):
    eng = Engine(seed=seed, trace=True)
    build_pair(eng, rounds)
    eng.run()
    return eng


# -- capture / restore --------------------------------------------------------


def test_restore_continue_trace_identical():
    ref = run_reference(seed=7)

    # run part-way, snapshot between events, then continue on a restored copy
    eng = Engine(seed=7, trace=True)
    build_pair(eng)
    with pytest.raises(SimulationError):
        eng.run(max_events=9)
    snap = eng.snapshot()
    restored = Engine.restore(snap)
    restored.run()

    assert restored.trace_log == ref.trace_log
    assert trace_digest(restored) == trace_digest(ref)
    assert restored.now == ref.now
    assert restored.events_fired == ref.events_fired


def test_restore_preserves_component_and_rng_state():
    eng = Engine(seed=1, trace=True)
    build_pair(eng)
    with pytest.raises(Exception):
        eng.run(max_events=7)
    digest_before = eng.rngs.state_digest()
    restored = Engine.restore(eng.snapshot())
    assert restored.rngs.state_digest() == digest_before
    assert restored.components["a"].heard == eng.components["a"].heard
    # the restored graph is fully detached from the original
    assert restored.components["a"] is not eng.components["a"]
    assert restored.components["a"].engine is restored


def test_snapshot_meta_carries_clock():
    eng = Engine(seed=0)
    build_pair(eng)
    snap = eng.snapshot(meta={"note": "x"})
    assert snap.meta["version"] == 1
    assert snap.meta["root"] == "Engine"
    assert snap.meta["sim_time"] == 0.0
    assert snap.meta["note"] == "x"


def test_unpicklable_handler_raises_snapshot_error():
    eng = Engine(seed=0)
    eng.schedule(1.0, lambda ev: None)
    with pytest.raises(SnapshotError, match="picklable"):
        eng.snapshot()


class _NotAnEngine:
    pass


def test_restore_rejects_wrong_root_type():
    snap = Snapshot.capture(_NotAnEngine())
    with pytest.raises(SnapshotError, match="expected Engine"):
        Engine.restore(snap)


# -- persistence --------------------------------------------------------------


def test_save_load_roundtrip(tmp_path):
    eng = Engine(seed=3, trace=True)
    build_pair(eng)
    path = str(tmp_path / "s.snap")
    eng.snapshot().save(path)
    restored = Engine.restore(path)
    restored.run()
    assert trace_digest(restored) == trace_digest(run_reference(seed=3))


def test_load_rejects_truncation_and_corruption(tmp_path):
    eng = Engine(seed=0)
    build_pair(eng)
    path = str(tmp_path / "s.snap")
    eng.snapshot().save(path)

    blob = open(path, "rb").read()
    torn = str(tmp_path / "torn.snap")
    with open(torn, "wb") as fh:
        fh.write(blob[:-10])
    with pytest.raises(SnapshotError, match="truncated"):
        Snapshot.load(torn)

    flipped = str(tmp_path / "flip.snap")
    with open(flipped, "wb") as fh:
        fh.write(blob[:-1] + bytes([blob[-1] ^ 0xFF]))
    with pytest.raises(SnapshotError, match="checksum"):
        Snapshot.load(flipped)

    junk = str(tmp_path / "junk.snap")
    with open(junk, "wb") as fh:
        fh.write(b"hello world\n")
    with pytest.raises(SnapshotError, match="not a snapshot"):
        Snapshot.load(junk)


# -- store / retention --------------------------------------------------------


def test_store_retention_and_latest(tmp_path):
    store = SnapshotStore(str(tmp_path), keep=2)
    paths = []
    for budget in (3, 5, 8):
        eng = Engine(seed=0)
        build_pair(eng)
        with pytest.raises(Exception):
            eng.run(max_events=budget)
        paths.append(store.write(eng.snapshot()))
    assert len(store.paths()) == 2  # pruned to keep=2
    assert store.latest() == paths[-1]


def test_store_latest_skips_corrupt(tmp_path):
    store = SnapshotStore(str(tmp_path), keep=3)
    eng = Engine(seed=0)
    build_pair(eng)
    with pytest.raises(Exception):
        eng.run(max_events=3)
    good = store.write(eng.snapshot())
    eng2 = Engine(seed=0)
    build_pair(eng2)
    with pytest.raises(Exception):
        eng2.run(max_events=6)
    bad = store.write(eng2.snapshot())
    with open(bad, "r+b") as fh:  # tear the newer snapshot
        fh.truncate(os.path.getsize(bad) - 20)
    assert store.latest() == good
    assert store.load_latest() is not None
    store.clear()
    assert store.paths() == []


# -- auto-snapshot cadence ----------------------------------------------------


def test_autosnapshot_every_events(tmp_path):
    eng = Engine(seed=2, trace=True)
    build_pair(eng)
    policy = eng.enable_autosnapshot(str(tmp_path), every_events=5, keep=10)
    eng.run()
    assert policy.snapshots_taken >= 2
    assert len(SnapshotStore(str(tmp_path), keep=10).paths()) >= 2

    # resuming from the newest auto-snapshot replays the suffix identically
    restored = Engine.restore(SnapshotStore(str(tmp_path)).latest())
    restored.run()
    assert trace_digest(restored) == trace_digest(run_reference(seed=2))


def test_autosnapshot_policy_validation(tmp_path):
    store = SnapshotStore(str(tmp_path))
    with pytest.raises(ValueError):
        AutoSnapshotPolicy(store=store)
    with pytest.raises(ValueError):
        AutoSnapshotPolicy(store=store, every_events=0)
    with pytest.raises(ValueError):
        AutoSnapshotPolicy(store=store, every_wall_s=0.0)
    with pytest.raises(ValueError):
        SnapshotStore(str(tmp_path), keep=0)


def test_corrupt_skip_is_counted(tmp_path):
    from repro.obs.metrics import MetricsRegistry, set_registry

    reg = MetricsRegistry()
    set_registry(reg)
    try:
        store = SnapshotStore(str(tmp_path), keep=3)
        eng = Engine(seed=0)
        build_pair(eng)
        with pytest.raises(Exception):
            eng.run(max_events=3)
        store.write(eng.snapshot())
        eng2 = Engine(seed=0)
        build_pair(eng2)
        with pytest.raises(Exception):
            eng2.run(max_events=6)
        bad = store.write(eng2.snapshot())
        with open(bad, "r+b") as fh:
            fh.truncate(os.path.getsize(bad) - 20)
        store.latest()
        assert reg.counter("snapshot_corrupt_skipped_total").value == 1
    finally:
        set_registry(None)


def test_shed_oldest_keeps_newest(tmp_path):
    store = SnapshotStore(str(tmp_path), keep=10)
    for i in range(4):  # four snapshot files, oldest first
        (tmp_path / f"snap-{i:08d}.snap").write_text("placeholder")
    newest = store.paths()[-1]
    assert store.shed_oldest(keep=1) == 3
    assert store.paths() == [newest]
    assert store.shed_oldest(keep=1) == 0  # idempotent
    with pytest.raises(ValueError):
        store.shed_oldest(keep=0)


def test_autosnapshot_stretch_and_restore_cadence(tmp_path):
    store = SnapshotStore(str(tmp_path))
    policy = AutoSnapshotPolicy(store=store, every_events=10, every_wall_s=2.0)
    policy.stretch(4)
    assert policy.every_events == 40 and policy.every_wall_s == 8.0
    policy.stretch(4)  # stretches compound; restore returns to base
    assert policy.every_events == 160
    policy.restore_cadence()
    assert policy.every_events == 10 and policy.every_wall_s == 2.0
    policy.restore_cadence()  # no-op when already at base
    assert policy.every_events == 10
    with pytest.raises(ValueError):
        policy.stretch(0.5)


def test_engine_disables_autosnap_on_write_failure_and_completes(tmp_path):
    from repro.guard.fsfault import FsFaultConfig, injected
    from repro.obs.metrics import MetricsRegistry, set_registry

    reg = MetricsRegistry()
    set_registry(reg)
    try:
        eng = Engine(seed=2, trace=True)
        build_pair(eng)
        eng.enable_autosnapshot(str(tmp_path), every_events=5, keep=10)
        with injected(FsFaultConfig(enospc_prob=1.0, ops=("snapshot.write",))):
            eng.run()  # must complete despite every snapshot write failing
        assert reg.counter("snapshot_autosnap_disabled_total").value == 1
        assert SnapshotStore(str(tmp_path)).paths() == []
        assert trace_digest(eng) == trace_digest(run_reference(seed=2))
    finally:
        set_registry(None)
