"""Link failure semantics: in-flight delivery, raise/drop determinism."""

import pytest

from repro.des import Component, Engine
from repro.des.link import Link, LinkDownError, connect


class Recorder(Component):
    """Collects (time, port, payload) for every event it receives."""

    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def handle_event(self, port_name, payload, time):
        self.received.append((time, port_name, payload))


def _pair(on_fail="raise"):
    eng = Engine()
    src = Recorder("src")
    dst = Recorder("dst")
    eng.register(src)
    eng.register(dst)
    link = Link(src.port("out"), dst.port("in"), latency=1.0, on_fail=on_fail)
    return eng, src, dst, link


def test_on_fail_validation():
    eng = Engine()
    a, b = Recorder("a"), Recorder("b")
    eng.register(a)
    eng.register(b)
    with pytest.raises(ValueError, match="on_fail must be"):
        Link(a.port("x"), b.port("y"), latency=1.0, on_fail="explode")


def test_in_flight_payload_survives_fail():
    # The bits left the failed segment before it went down: a delivery
    # scheduled before fail() still arrives on time.
    eng, src, dst, link = _pair()
    link.deliver(src.port("out"), "early")
    link.fail()
    eng.run()
    assert dst.received == [(1.0, "in", "early")]


def test_deliver_after_fail_raises_with_link_name():
    eng, src, dst, link = _pair()
    link.fail()
    with pytest.raises(LinkDownError, match="src.out<->dst.in is down"):
        link.deliver(src.port("out"), "lost")
    eng.run()
    assert dst.received == []


def test_deliver_after_fail_drops_silently_when_configured():
    eng, src, dst, link = _pair(on_fail="drop")
    link.fail()
    assert link.deliver(src.port("out"), "lost") is None
    eng.run()
    assert dst.received == []


def test_repair_restores_delivery():
    eng, src, dst, link = _pair()
    link.fail()
    link.repair()
    ev = link.deliver(src.port("out"), "back")
    assert ev is not None
    eng.run()
    assert dst.received == [(1.0, "in", "back")]


def test_fail_drop_fail_sequence_is_deterministic():
    # Interleaved in-flight and post-failure sends: exactly the
    # pre-failure payloads arrive, in timestamp order, every run.
    for _ in range(2):
        eng, src, dst, link = _pair(on_fail="drop")
        link.deliver(src.port("out"), 1)
        link.deliver(src.port("out"), 2, extra_delay=0.5)
        link.fail()
        assert link.deliver(src.port("out"), 3) is None
        link.repair()
        link.deliver(src.port("out"), 4, extra_delay=1.0)
        eng.run()
        assert dst.received == [
            (1.0, "in", 1),
            (1.5, "in", 2),
            (2.0, "in", 4),
        ]


def test_connect_helper_and_component_send_respect_failure():
    eng = Engine()
    src = Recorder("src")
    dst = Recorder("dst")
    eng.register(src)
    eng.register(dst)
    link = connect(src, "out", dst, "in", latency=0.5)
    src.send("out", "ok")
    link.fail()
    with pytest.raises(LinkDownError):
        src.send("out", "nope")
    eng.run()
    assert dst.received == [(0.5, "in", "ok")]
