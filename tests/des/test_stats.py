"""Engine statistics utilities."""

import pytest

from repro.des import Component, Engine
from repro.des.link import connect
from repro.des.stats import EventCounter, UtilizationTracker, event_rate


class Chatter(Component):
    def __init__(self, name, count):
        super().__init__(name)
        self.count = count

    def setup(self):
        for i in range(self.count):
            self.schedule(float(i), lambda ev: self.send("out", "hi"))

    def handle_event(self, port_name, payload, time):
        pass


def build():
    eng = Engine(trace=True)
    a = eng.register(Chatter("a", 3))
    b = eng.register(Chatter("b", 1))
    connect(a, "out", b, "in", latency=0.1)
    connect(b, "out", a, "in2", latency=0.1)
    eng.run()
    return eng


def test_event_counter_counts():
    eng = build()
    counter = EventCounter(eng)
    assert counter.total() == eng.events_fired
    by_dst = counter.by_destination()
    # a self-schedules 3 + receives 1; b self-schedules 1 + receives 3
    assert by_dst["a"] == 4 and by_dst["b"] == 4
    assert counter.by_pair()[("a", "b")] == 3
    busiest = counter.busiest(1)
    assert busiest[0][1] == 4


def test_event_counter_requires_trace():
    with pytest.raises(ValueError):
        EventCounter(Engine(trace=False))


def test_utilization_tracker():
    u = UtilizationTracker()
    u.add_busy("cpu", 2.0)
    u.add_busy("cpu", 3.0)
    assert u.busy_time("cpu") == 5.0
    assert u.utilization("cpu", horizon=10.0) == 0.5
    assert u.utilization("cpu", horizon=4.0) == 1.0  # clamped
    assert u.utilization("idle", horizon=10.0) == 0.0
    assert u.report(10.0) == {"cpu": 0.5}
    with pytest.raises(ValueError):
        u.add_busy("cpu", -1)
    with pytest.raises(ValueError):
        u.utilization("cpu", 0)


def test_event_rate():
    eng = Engine()
    c = eng.register(Chatter("c", 5))
    eng.register(Chatter("d", 0))
    connect(c, "out", eng.components["d"], "in", latency=0.1)
    wall, rate = event_rate(eng, eng.run)
    assert wall >= 0
    assert rate > 0
