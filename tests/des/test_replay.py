"""Event journal + deterministic-replay oracle tests."""

import json

import pytest

from repro.des import (
    Engine,
    EventJournal,
    ReplayError,
    SimulationError,
    diff_traces,
    read_journal,
    replay_and_diff,
)
from tests.des.test_snapshot import build_pair


def make_engine(seed=4):
    eng = Engine(seed=seed, trace=True)
    build_pair(eng)
    return eng


def test_journal_records_every_fired_event(tmp_path):
    path = str(tmp_path / "j.jsonl")
    eng = make_engine()
    with EventJournal(path, fresh=True) as journal:
        eng.attach_journal(journal)
        eng.run()
    records = read_journal(path)
    assert len(records) == eng.events_fired
    assert [tuple(r) for r in records] == [tuple(r) for r in eng.trace_log]


def test_journal_survives_torn_tail(tmp_path):
    path = str(tmp_path / "j.jsonl")
    eng = make_engine()
    with EventJournal(path, fresh=True) as journal:
        eng.attach_journal(journal)
        eng.run()
    whole = read_journal(path)
    blob = open(path, "rb").read()
    with open(path, "wb") as fh:
        fh.write(blob[:-7])  # tear mid-record, as a kill would
    torn = read_journal(path)
    assert torn == whole[:-1]


def test_journal_append_keeps_prefix(tmp_path):
    path = str(tmp_path / "j.jsonl")
    eng = make_engine()
    with EventJournal(path, fresh=True) as journal:
        eng.attach_journal(journal)
        with pytest.raises(SimulationError):
            eng.run(max_events=5)
    prefix = read_journal(path)
    assert len(prefix) == 5
    # crash recovery: a new journal object appends after the prefix
    with EventJournal(path) as journal:
        eng.attach_journal(journal)
        eng.run()
    assert read_journal(path)[:5] == prefix
    assert len(read_journal(path)) == eng.events_fired


def test_journal_header_validation(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ReplayError, match="empty"):
        read_journal(str(empty))
    bad = tmp_path / "bad.jsonl"
    bad.write_text(json.dumps({"kind": "other"}) + "\n")
    with pytest.raises(ReplayError, match="header"):
        read_journal(str(bad))
    wrong = tmp_path / "wrong.jsonl"
    wrong.write_text(json.dumps({"kind": "journal", "version": 99}) + "\n")
    with pytest.raises(ReplayError, match="version"):
        read_journal(str(wrong))


def test_diff_traces_pinpoints_divergence():
    a = [(0.0, 100, 0, None, "x"), (1.0, 100, 1, "x", "y")]
    b = [(0.0, 100, 0, None, "x"), (1.5, 100, 1, "x", "y"), (2.0, 100, 2, "y", "x")]
    divs = diff_traces(a, b)
    assert divs[0].index == 1
    assert divs[0].expected == (1.0, 100, 1, "x", "y")
    assert divs[1].index == 2 and divs[1].expected is None
    assert "expected" in str(divs[0])


def test_replay_oracle_identical(tmp_path):
    path = str(tmp_path / "j.jsonl")
    eng = make_engine(seed=9)
    with EventJournal(path, fresh=True) as journal:
        eng.attach_journal(journal)
        eng.run()
    report = replay_and_diff(lambda: make_engine(seed=9), path)
    assert report.identical
    assert report.replayed_events == report.journal_events
    assert "identical" in report.summary()


def test_replay_oracle_catches_divergence(tmp_path):
    path = str(tmp_path / "j.jsonl")
    eng = make_engine(seed=9)
    with EventJournal(path, fresh=True) as journal:
        eng.attach_journal(journal)
        eng.run()
    report = replay_and_diff(lambda: make_engine(seed=10), path)  # wrong seed
    assert not report.identical
    assert report.divergences
    assert "DIVERGED" in report.summary()


def test_replay_oracle_validates_kill_restore_continue(tmp_path):
    """The acceptance oracle: journal written across kill/restore/continue
    replays against a fresh uninterrupted engine with zero divergences."""
    path = str(tmp_path / "j.jsonl")
    eng = make_engine(seed=12)
    with EventJournal(path, fresh=True) as journal:
        eng.attach_journal(journal)
        with pytest.raises(SimulationError):
            eng.run(max_events=8)  # the "kill"
        snap = eng.snapshot()  # journal handle is excluded automatically
    restored = Engine.restore(snap)
    with EventJournal(path) as journal:  # reopen-for-append
        restored.attach_journal(journal)
        restored.run()
    report = replay_and_diff(lambda: make_engine(seed=12), path)
    assert report.identical, report.summary()
