"""Unit tests for Event / EventQueue ordering and cancellation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.des.event import PRIORITY_CLOCK, PRIORITY_NORMAL, Event, EventQueue


def test_orders_by_time():
    q = EventQueue()
    q.push(Event(time=3.0))
    q.push(Event(time=1.0))
    q.push(Event(time=2.0))
    assert [q.pop().time for _ in range(3)] == [1.0, 2.0, 3.0]


def test_ties_broken_by_priority_then_seq():
    q = EventQueue()
    e1 = q.push(Event(time=1.0, priority=PRIORITY_NORMAL))
    e2 = q.push(Event(time=1.0, priority=PRIORITY_CLOCK))
    e3 = q.push(Event(time=1.0, priority=PRIORITY_NORMAL))
    popped = [q.pop() for _ in range(3)]
    assert popped == [e2, e1, e3]


def test_insertion_order_preserved_for_identical_keys():
    q = EventQueue()
    events = [q.push(Event(time=5.0)) for _ in range(10)]
    assert [q.pop() for _ in range(10)] == events


def test_pop_empty_raises():
    q = EventQueue()
    with pytest.raises(IndexError):
        q.pop()


def test_peek_time_empty_is_inf():
    assert EventQueue().peek_time() == float("inf")


def test_len_and_bool():
    q = EventQueue()
    assert len(q) == 0 and not q
    q.push(Event(time=1.0))
    assert len(q) == 1 and q
    q.pop()
    assert len(q) == 0 and not q


def test_cancelled_events_are_skipped():
    q = EventQueue()
    keep = q.push(Event(time=1.0))
    drop = q.push(Event(time=0.5))
    drop.cancel()
    q.note_cancelled()
    assert len(q) == 1
    assert q.peek_time() == 1.0
    assert q.pop() is keep
    assert not q


def test_cancel_without_note_still_skipped():
    q = EventQueue()
    drop = q.push(Event(time=0.5))
    keep = q.push(Event(time=1.0))
    drop.cancel()
    assert q.pop() is keep


def test_drain_until():
    q = EventQueue()
    for t in [0.1, 0.2, 0.3, 0.4]:
        q.push(Event(time=t))
    drained = q.drain_until(0.3)
    assert [e.time for e in drained] == [0.1, 0.2]
    assert len(q) == 2


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
def test_pop_order_is_sorted(times):
    q = EventQueue()
    for t in times:
        q.push(Event(time=t))
    out = [q.pop().time for _ in range(len(times))]
    assert out == sorted(times)


@given(
    st.lists(
        st.tuples(
            st.sampled_from([1.0, 2.0, 3.0]),
            st.sampled_from([0, 50, 100]),
        ),
        min_size=1,
        max_size=100,
    )
)
def test_total_order_key(entries):
    q = EventQueue()
    pushed = [q.push(Event(time=t, priority=p)) for t, p in entries]
    out = [q.pop() for _ in range(len(pushed))]
    keys = [e.sort_key() for e in out]
    assert keys == sorted(keys)
