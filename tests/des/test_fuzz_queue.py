"""Seeded fuzz: EventQueue/Engine.cancel interleavings.

Random interleavings of push / cancel / pop / peek against a reference
model, checking the two invariants recovery correctness rests on:

* accounting is exact — ``len(queue)`` always equals the number of live
  events actually in the heap, regardless of when cancellations landed
  relative to pops and peeks;
* a cancelled event is never executed — pops return exactly the live
  events, in ``(time, priority, seq)`` order.

Seeded and deterministic: a failure reproduces from its printed seed.
"""

import numpy as np
import pytest

from repro.des import Component, Engine, Event, EventQueue

SEEDS = list(range(12))


@pytest.mark.parametrize("seed", SEEDS)
def test_queue_accounting_fuzz(seed):
    rng = np.random.default_rng(seed)
    q = EventQueue()
    live: dict[int, Event] = {}  # seq -> event, the reference model
    popped: list[Event] = []
    t_floor = 0.0

    for step in range(400):
        op = rng.random()
        if op < 0.5:
            ev = q.push(
                Event(
                    time=t_floor + float(rng.random() * 10),
                    priority=int(rng.integers(0, 3)) * 50,
                )
            )
            live[ev.seq] = ev
        elif op < 0.7 and live:
            # cancel a random pending event (exactly once)
            seqs = sorted(live)
            victim = live.pop(seqs[int(rng.integers(0, len(seqs)))])
            victim.cancel()
            q.note_cancelled()
        elif op < 0.9 and live:
            ev = q.pop()
            assert not ev.cancelled, "popped a cancelled event"
            assert live.pop(ev.seq) is ev
            popped.append(ev)
            t_floor = max(t_floor, ev.time)
        else:
            t = q.peek_time()
            if live:
                assert t == min(e.sort_key() for e in live.values())[0]
            else:
                assert t == float("inf")
        # the load-bearing invariant: len() is exact at every step
        assert len(q) == len(live), f"accounting drift at step {step}"
        assert bool(q) == bool(live)

    # drain: remaining live events come out cancelled-free and in order
    drained = []
    while q:
        ev = q.pop()
        assert not ev.cancelled
        assert live.pop(ev.seq) is ev
        drained.append(ev)
    assert not live
    keys = [e.sort_key() for e in drained]
    assert keys == sorted(keys)
    # pop times never went backwards (pushes were floored at the last pop)
    times = [e.time for e in popped]
    assert times == sorted(times)


@pytest.mark.parametrize("seed", SEEDS)
def test_double_cancel_is_idempotent_fuzz(seed):
    rng = np.random.default_rng(seed)
    eng = Engine(seed=seed)
    events = [eng.schedule(float(rng.random() * 5), _noop) for _ in range(50)]
    cancelled = set()
    for _ in range(120):
        ev = events[int(rng.integers(0, len(events)))]
        eng.cancel(ev)  # Engine.cancel is idempotent by contract
        cancelled.add(ev.seq)
        assert len(eng.queue) == len(events) - len(cancelled)
    eng.run()
    assert eng.events_fired == len(events) - len(cancelled)


class _CancellingComponent(Component):
    """Schedules bursts and cancels a seeded subset from inside handlers —
    the interleaving the simulator's pause()/rollback() paths produce."""

    def __init__(self, name, seed):
        super().__init__(name)
        self.fired = []
        self.doomed = []
        self.rounds = 6
        self._seed = seed

    def setup(self):
        self.schedule(0.1, self._burst)

    def _burst(self, ev):
        self.rounds -= 1
        rng = self.rng
        pending = [
            self.schedule(float(rng.random() + 0.01), self._work, payload=i)
            for i in range(8)
        ]
        # cancel a random subset before any of them fires
        for i in sorted(set(int(x) for x in rng.integers(0, 8, size=4))):
            self.engine.cancel(pending[i])
            self.doomed.append(pending[i].seq)
        if self.rounds > 0:
            self.schedule(1.5, self._burst)

    def _work(self, ev):
        self.fired.append(ev.seq)

    def handle_event(self, port_name, payload, time):  # pragma: no cover
        pass


@pytest.mark.parametrize("seed", SEEDS[:6])
def test_cancel_from_handlers_never_executes_cancelled(seed):
    eng = Engine(seed=seed)
    comp = eng.register(_CancellingComponent("c", seed))
    eng.run()
    assert not set(comp.fired) & set(comp.doomed)
    assert len(eng.queue) == 0
    # determinism: same seed, same interleaving
    eng2 = Engine(seed=seed)
    comp2 = eng2.register(_CancellingComponent("c", seed))
    eng2.run()
    assert comp2.fired == comp.fired
    assert comp2.doomed == comp.doomed


def _noop(ev):
    pass
