"""Partition failover: rank failures, boundary-snapshot recovery, migration."""

import pytest

from repro.des import (
    Component,
    Engine,
    EventJournal,
    ParallelEngine,
    SimulationError,
    migrate_assignment,
    read_journal,
    replay_and_diff,
    trace_digest,
)
from repro.des.link import connect


class RingNode(Component):
    """Token-ring node; fully picklable (no lambdas anywhere)."""

    def __init__(self, name, laps):
        super().__init__(name)
        self.laps = laps
        self.visits = []

    def handle_event(self, port_name, payload, time):
        self.visits.append(round(time, 12))
        lap = payload["lap"]
        if port_name == "prev":
            if self.name.endswith("_0"):
                lap += 1
            if lap < self.laps:
                self.send("next", {"lap": lap})


class Starter(Component):
    """Kicks the ring off via a bound-method (snapshot-safe) event."""

    def setup(self):
        self.schedule(0.0, self._go)

    def _go(self, ev):
        self.engine.components["n_0"].send("next", {"lap": 0})

    def handle_event(self, port_name, payload, time):  # pragma: no cover
        pass


def build_ring(engine, n=8, laps=5, latency=0.5):
    nodes = [engine.register(RingNode(f"n_{i}", laps)) for i in range(n)]
    for i in range(n):
        connect(nodes[i], "next", nodes[(i + 1) % n], "prev", latency=latency)
    engine.register(Starter("zz_start"))
    return nodes


class FixedRateModel:
    """Deterministic failure process: one failure every `gap` sim-seconds."""

    def __init__(self, gap):
        self.gap = gap

    def draw_interarrival(self, rng, nnodes):
        return self.gap


def sequential_reference(seed=3, **kwargs):
    eng = Engine(seed=seed, trace=True)
    build_ring(eng, **kwargs)
    eng.run()
    return eng


@pytest.mark.parametrize("migrate", [True, False])
def test_failover_trace_identical_to_sequential(migrate):
    ref = sequential_reference()

    par = ParallelEngine(nparts=4, seed=3, trace=True)
    build_ring(par)
    fo = par.enable_failover(
        FixedRateModel(3.0), seed=7, migrate=migrate, max_failures=3
    )
    par.run()

    assert fo.failures_injected == 3
    assert fo.restores == 3
    assert fo.migrations == (3 if migrate else 0)
    assert trace_digest(par) == trace_digest(ref)
    assert par.events_fired == ref.events_fired
    # component state also matches (read through the engine: restores
    # replace the component objects, so pre-run references go stale)
    for name, comp in ref.components.items():
        if isinstance(comp, RingNode):
            assert par.components[name].visits == comp.visits


def test_failover_with_migration_empties_failed_partitions():
    par = ParallelEngine(nparts=4, seed=3)
    build_ring(par)
    fo = par.enable_failover(FixedRateModel(2.0), seed=1, migrate=True,
                             max_failures=2)
    par.run()
    assert len(fo.failed_parts) == 2
    assert not any(p in set(par._assignment.values()) for p in fo.failed_parts)
    assert len(fo.failure_log) == 2
    assert {p for _, p in fo.failure_log} == fo.failed_parts


def test_failover_stops_when_one_partition_left():
    par = ParallelEngine(nparts=2, seed=0)
    build_ring(par, n=4, laps=3)
    fo = par.enable_failover(FixedRateModel(0.5), seed=0, migrate=True,
                             max_failures=50)
    par.run()
    # with 2 partitions only one failure is possible; the survivor then
    # runs the whole simulation alone
    assert fo.failures_injected == 1
    assert len(set(par._assignment.values())) == 1


def test_failover_respects_max_failures_zero():
    ref = sequential_reference()
    par = ParallelEngine(nparts=4, seed=3, trace=True)
    build_ring(par)
    fo = par.enable_failover(FixedRateModel(0.1), seed=0, max_failures=0)
    par.run()
    assert fo.failures_injected == 0
    assert trace_digest(par) == trace_digest(ref)


def test_failover_journal_has_no_rolled_back_events(tmp_path):
    """The journal must contain exactly the committed trace: windows that
    were executed and then rewound by a failover never reach it."""
    path = str(tmp_path / "j.jsonl")
    par = ParallelEngine(nparts=4, seed=3, trace=True)
    build_ring(par)
    par.enable_failover(FixedRateModel(3.0), seed=7, migrate=True,
                        max_failures=3)
    with EventJournal(path, fresh=True) as journal:
        par.attach_journal(journal)
        par.run()
    records = read_journal(path)
    assert [tuple(r) for r in records] == [tuple(r) for r in par.trace_log]

    def factory():
        eng = Engine(seed=3, trace=True)
        build_ring(eng)
        return eng

    assert replay_and_diff(factory, path).identical


def test_cannot_enable_failover_mid_run():
    par = ParallelEngine(nparts=2, seed=0)
    build_ring(par, n=4, laps=1)
    par._running = True
    with pytest.raises(SimulationError, match="while running"):
        par.enable_failover(FixedRateModel(1.0))
    par._running = False


def test_failover_validation():
    par = ParallelEngine(nparts=2, seed=0)
    with pytest.raises(ValueError, match="max_failures"):
        par.enable_failover(FixedRateModel(1.0), max_failures=-1)


def test_failover_with_real_fault_model():
    """The duck-typed model contract matches core's FaultModel."""
    from repro.core.fault_injection import FaultModel

    ref = sequential_reference()
    par = ParallelEngine(nparts=4, seed=3, trace=True)
    build_ring(par)
    fo = par.enable_failover(
        FaultModel(node_mtbf_s=8.0), seed=5, migrate=True, max_failures=4
    )
    par.run()
    assert fo.failures_injected >= 1
    assert trace_digest(par) == trace_digest(ref)


# -- migrate_assignment -------------------------------------------------------


def test_migrate_assignment_rebalances_round_robin():
    assign = {"a": 0, "b": 0, "c": 1, "d": 1, "e": 2}
    out = migrate_assignment(assign, victim=1)
    assert set(out) == {"a", "b", "c", "d", "e"}
    assert out["c"] != 1 and out["d"] != 1
    assert out["a"] == 0 and out["b"] == 0 and out["e"] == 2
    # least-loaded survivor (partition 2) absorbs first
    assert out["c"] == 2


def test_migrate_assignment_no_survivors_raises():
    with pytest.raises(ValueError, match="no survivors"):
        migrate_assignment({"a": 0, "b": 0}, victim=0)


def test_migrate_assignment_empty_victim_is_noop():
    assign = {"a": 0, "b": 1}
    assert migrate_assignment(assign, victim=5) == assign
