"""ABFT checksum matmul: detection and correction of injected corruption."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abft import (
    ABFTError,
    abft_matmul,
    abft_overhead_ratio,
    encode_columns,
    encode_rows,
    sdc_outcome_probabilities,
    verify_and_correct,
)


def rand(m, n, seed=0):
    return np.random.default_rng(seed).uniform(-10, 10, size=(m, n))


# -- encoding -----------------------------------------------------------------


def test_encodings_append_sums():
    a = rand(3, 4)
    ac = encode_rows(a)
    assert ac.shape == (4, 4)
    np.testing.assert_allclose(ac[-1], a.sum(axis=0))
    b = rand(4, 5)
    br = encode_columns(b)
    assert br.shape == (4, 6)
    np.testing.assert_allclose(br[:, -1], b.sum(axis=1))


def test_encoding_validation():
    with pytest.raises(ValueError):
        encode_rows(np.zeros(3))
    with pytest.raises(ValueError):
        abft_matmul(rand(2, 3), rand(4, 2))


# -- clean products --------------------------------------------------------------


def test_clean_product_verifies():
    a, b = rand(5, 4, 1), rand(4, 6, 2)
    c = abft_matmul(a, b)
    payload, corrected = verify_and_correct(c)
    assert corrected is None
    np.testing.assert_allclose(payload, a @ b, rtol=1e-12)


def test_payload_shape():
    c = abft_matmul(rand(3, 3), rand(3, 7))
    assert c.payload.shape == (3, 7)
    assert c.data.shape == (4, 8)


# -- corruption ---------------------------------------------------------------------


def test_single_payload_corruption_corrected():
    a, b = rand(6, 5, 3), rand(5, 6, 4)
    c = abft_matmul(a, b)
    c.data[2, 3] += 7.5  # silent corruption
    payload, corrected = verify_and_correct(c)
    assert corrected == (2, 3)
    np.testing.assert_allclose(payload, a @ b, rtol=1e-9)


def test_checksum_element_corruption_payload_intact():
    a, b = rand(4, 4, 5), rand(4, 4, 6)
    c = abft_matmul(a, b)
    c.data[1, -1] += 3.0  # hit the row checksum itself
    payload, corrected = verify_and_correct(c)
    assert corrected == (1, c.data.shape[1] - 1)
    np.testing.assert_allclose(payload, a @ b, rtol=1e-12)


def test_double_corruption_detected_not_corrected():
    a, b = rand(5, 5, 7), rand(5, 5, 8)
    c = abft_matmul(a, b)
    c.data[0, 0] += 1.0
    c.data[2, 3] += 1.0
    with pytest.raises(ABFTError):
        verify_and_correct(c)


def test_same_row_double_corruption_detected_not_corrected():
    """Two strikes in one row: one row invariant but two column
    invariants break — locatable to a row, not to elements."""
    a, b = rand(5, 5, 9), rand(5, 5, 10)
    c = abft_matmul(a, b)
    c.data[1, 0] += 2.0
    c.data[1, 4] -= 3.0
    with pytest.raises(ABFTError, match="1 row and 2 column"):
        verify_and_correct(c)


def test_same_column_double_corruption_detected_not_corrected():
    a, b = rand(5, 5, 11), rand(5, 5, 12)
    c = abft_matmul(a, b)
    c.data[0, 2] += 2.0
    c.data[3, 2] += 1.5
    with pytest.raises(ABFTError, match="2 row and 1 column"):
        verify_and_correct(c)


def test_whole_row_wipe_detected_not_corrected():
    """A burst wiping a full payload row breaks every column invariant."""
    a, b = rand(4, 4, 13), rand(4, 6, 14)
    c = abft_matmul(a, b)
    c.data[2, :-1] = 0.0
    with pytest.raises(ABFTError):
        verify_and_correct(c)


def test_many_element_corruption_detected_not_corrected():
    a, b = rand(6, 6, 15), rand(6, 6, 16)
    c = abft_matmul(a, b)
    rng = np.random.default_rng(17)
    for i, j in {(0, 1), (2, 2), (4, 5), (5, 0)}:
        c.data[i, j] += float(rng.uniform(1, 5))
    with pytest.raises(ABFTError, match="uncorrectable corruption"):
        verify_and_correct(c)


def test_cancelling_corruption_within_tolerance_is_invisible():
    """Strikes that happen to preserve every row AND column sum are
    beyond any checksum scheme — the model's 'uncovered' fraction."""
    a, b = rand(4, 4, 18), rand(4, 4, 19)
    c = abft_matmul(a, b)
    # a +d/-d 2x2 pattern preserves both row and column sums
    d = 5.0
    c.data[0, 0] += d
    c.data[0, 1] -= d
    c.data[1, 0] -= d
    c.data[1, 1] += d
    payload, corrected = verify_and_correct(c)
    assert corrected is None  # silently wrong: checksums all consistent
    assert not np.allclose(payload, a @ b)


@settings(max_examples=40, deadline=None)
@given(
    m=st.integers(min_value=2, max_value=8),
    k=st.integers(min_value=2, max_value=8),
    n=st.integers(min_value=2, max_value=8),
    i=st.integers(min_value=0, max_value=100),
    j=st.integers(min_value=0, max_value=100),
    delta=st.floats(min_value=0.5, max_value=100.0),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_any_single_corruption_corrected(m, k, n, i, j, delta, seed):
    a, b = rand(m, k, seed), rand(k, n, seed + 1)
    c = abft_matmul(a, b)
    c.data[i % m, j % n] += delta
    payload, corrected = verify_and_correct(c)
    assert corrected == (i % m, j % n)
    np.testing.assert_allclose(payload, a @ b, rtol=1e-7, atol=1e-9)


# -- cost model --------------------------------------------------------------------------


def test_overhead_shrinks_with_size():
    assert abft_overhead_ratio(10) > abft_overhead_ratio(100) > abft_overhead_ratio(1000)
    # asymptotic for square matrices: 1/m + 1/n from the extra row/column
    # plus ~2/n from encoding + verification => ~4/n
    assert abft_overhead_ratio(1000) == pytest.approx(4 / 1000, rel=0.1)


def test_overhead_validation():
    with pytest.raises(ValueError):
        abft_overhead_ratio(0)
    with pytest.raises(ValueError):
        abft_overhead_ratio(4, k=0)


def test_sdc_probabilities():
    out = sdc_outcome_probabilities(0.01, job_hours=100, abft_coverage=0.95)
    assert out["p_bad_plain"] == pytest.approx(1 - np.exp(-1.0))
    assert out["p_bad_abft"] < out["p_bad_plain"]
    assert out["p_bad_abft"] == pytest.approx(1 - np.exp(-0.05))
    # full coverage removes the risk
    assert sdc_outcome_probabilities(0.01, 100, 1.0)["p_bad_abft"] == 0.0
    with pytest.raises(ValueError):
        sdc_outcome_probabilities(-1, 1)
    with pytest.raises(ValueError):
        sdc_outcome_probabilities(1, 1, abft_coverage=2)
