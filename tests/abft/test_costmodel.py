"""Edge cases of the ABFT cost/benefit model."""

import math

import pytest

from repro.abft import abft_overhead_ratio, sdc_outcome_probabilities


# -- abft_overhead_ratio degenerate shapes -----------------------------------------


def test_overhead_degenerate_1x1():
    # plain 1x1x1 costs 2 flops; the encoded 2x1x2 product plus encoding
    # (2 flops) and verification (2 flops) costs 12: ratio 5
    assert abft_overhead_ratio(1, k=1, m=1) == pytest.approx(5.0)


def test_overhead_row_and_column_vectors():
    # m=1 (row result): the appended checksum row doubles the work
    assert abft_overhead_ratio(1000, k=1000, m=1) > 1.0
    # n=1 (column result): symmetric
    assert abft_overhead_ratio(1, k=1000, m=1000) > 1.0
    # deep contraction (large k) with a small result amortizes nothing
    assert abft_overhead_ratio(2, k=10_000, m=2) == pytest.approx(
        (2 * 3 * 10_000 * 3 + (2 * 10_000 + 10_000 * 2) + 2 * 2 * 2)
        / (2 * 2 * 10_000 * 2)
        - 1.0
    )


def test_overhead_defaults_square():
    assert abft_overhead_ratio(64) == abft_overhead_ratio(64, k=64, m=64)


def test_overhead_always_positive():
    for n in (1, 2, 10, 1000, 100_000):
        assert abft_overhead_ratio(n) > 0.0


@pytest.mark.parametrize("bad", [dict(n=0), dict(n=-3), dict(n=4, k=0),
                                 dict(n=4, m=-1)])
def test_overhead_rejects_nonpositive_dims(bad):
    with pytest.raises(ValueError):
        abft_overhead_ratio(**bad)


# -- sdc_outcome_probabilities edge cases ------------------------------------------


def test_zero_rate_means_zero_risk():
    out = sdc_outcome_probabilities(0.0, job_hours=1000.0)
    assert out == {"p_sdc": 0.0, "p_bad_plain": 0.0, "p_bad_abft": 0.0}


def test_zero_coverage_means_abft_is_useless():
    out = sdc_outcome_probabilities(0.5, job_hours=2.0, abft_coverage=0.0)
    assert out["p_bad_abft"] == pytest.approx(out["p_bad_plain"])


def test_probabilities_are_probabilities():
    for rate, hours, cov in [
        (1e-6, 0.01, 0.5),
        (10.0, 1000.0, 0.99),  # saturating exposure
        (0.3, 8.0, 0.0),
        (0.3, 8.0, 1.0),
    ]:
        out = sdc_outcome_probabilities(rate, hours, cov)
        for key, p in out.items():
            assert 0.0 <= p <= 1.0, (key, p)
        # ABFT can only reduce the silent-corruption risk
        assert out["p_bad_abft"] <= out["p_bad_plain"]
        assert out["p_sdc"] == out["p_bad_plain"]


def test_saturating_exposure_approaches_one():
    out = sdc_outcome_probabilities(100.0, job_hours=100.0, abft_coverage=0.5)
    assert out["p_sdc"] == pytest.approx(1.0)
    assert out["p_bad_abft"] == pytest.approx(1.0)


def test_complementary_decomposition():
    """1 - p_bad_abft factorizes as exp(-lam) * exp(lam * coverage):
    surviving cleanly = (no strike) OR (all strikes covered)."""
    rate, hours, cov = 0.7, 3.0, 0.8
    out = sdc_outcome_probabilities(rate, hours, cov)
    lam = rate * hours
    assert 1 - out["p_bad_abft"] == pytest.approx(
        math.exp(-lam) * math.exp(lam * cov)
    )


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(sdc_rate_per_hour=-0.1, job_hours=1.0),
        dict(sdc_rate_per_hour=1.0, job_hours=0.0),
        dict(sdc_rate_per_hour=1.0, job_hours=-2.0),
        dict(sdc_rate_per_hour=1.0, job_hours=1.0, abft_coverage=-0.01),
        dict(sdc_rate_per_hour=1.0, job_hours=1.0, abft_coverage=1.01),
    ],
)
def test_invalid_inputs_rejected(kwargs):
    with pytest.raises(ValueError):
        sdc_outcome_probabilities(**kwargs)
