"""Mini-LULESH physics and the LULESH AppBEO."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    LULESH_FIELDS,
    MiniLulesh,
    lulesh_appbeo,
    lulesh_halo_bytes,
    lulesh_state_bytes,
    validate_cube_ranks,
)
from repro.core.ft import NO_FT, scenario_l1, scenario_l1_l2
from repro.core.instructions import Checkpoint, Collective, Compute, Exchange


# -- the rank-count rule ---------------------------------------------------------


@pytest.mark.parametrize("n", [1, 8, 27, 64, 216, 512, 1000, 1331])
def test_cube_ranks_accepted(n):
    validate_cube_ranks(n)


@pytest.mark.parametrize("n", [2, 9, 100, 999, 1001])
def test_non_cube_ranks_rejected(n):
    with pytest.raises(ValueError):
        validate_cube_ranks(n)


# -- payload sizing ---------------------------------------------------------------


def test_state_bytes_formula():
    assert lulesh_state_bytes(10) == LULESH_FIELDS * 1000 * 8
    with pytest.raises(ValueError):
        lulesh_state_bytes(0)


def test_halo_bytes_formula():
    assert lulesh_halo_bytes(10) == 3 * 100 * 8
    with pytest.raises(ValueError):
        lulesh_halo_bytes(0)


def test_state_bytes_matches_mini_lulesh():
    sim = MiniLulesh(epr=8)
    # rho + e + 3 velocity components = 5 of the 6 checkpointed fields;
    # the 6th (pressure) is derived but checkpointed by LULESH_FTI
    assert sim.state_bytes() == (LULESH_FIELDS - 1) * 8**3 * 8


# -- MiniLulesh physics -------------------------------------------------------------


def test_initial_state():
    sim = MiniLulesh(epr=6)
    assert sim.rho.shape == (6, 6, 6)
    assert sim.e[0, 0, 0] > sim.e[1, 1, 1]
    assert sim.t == 0.0 and sim.cycles == 0


def test_validation():
    with pytest.raises(ValueError):
        MiniLulesh(epr=1)
    with pytest.raises(ValueError):
        MiniLulesh(epr=4, rho0=-1)


def test_dt_positive_and_cfl_limited():
    sim = MiniLulesh(epr=6)
    dt = sim.compute_dt()
    assert 0 < dt < 1.0


def test_step_advances_time_and_shock_expands():
    sim = MiniLulesh(epr=8)
    sim.run(30)
    assert sim.cycles == 30
    assert sim.t > 0
    # blast wave should have moved energy off the origin cell
    assert sim.max_velocity() > 0
    assert sim.e[2, 2, 2] > 1e-6  # energy reached interior cells


def test_positivity_preserved():
    sim = MiniLulesh(epr=6)
    sim.run(50)
    assert np.all(sim.rho > 0)
    assert np.all(sim.e > 0)
    assert np.all(np.isfinite(sim.u))


def test_mass_roughly_conserved():
    sim = MiniLulesh(epr=8)
    m0 = sim.total_mass()
    sim.run(30)
    # simple non-conservative scheme: allow modest drift
    assert sim.total_mass() == pytest.approx(m0, rel=0.2)


def test_step_rejects_bad_dt():
    sim = MiniLulesh(epr=4)
    with pytest.raises(ValueError):
        sim.step(dt=0.0)


def test_checkpoint_roundtrip():
    sim = MiniLulesh(epr=6)
    sim.run(10)
    blob = sim.serialize()
    restored = MiniLulesh.deserialize(blob)
    assert restored.cycles == sim.cycles
    assert restored.t == sim.t
    np.testing.assert_array_equal(restored.rho, sim.rho)
    np.testing.assert_array_equal(restored.e, sim.e)
    np.testing.assert_array_equal(restored.u, sim.u)
    # restored solver continues identically
    a, b = sim.step(), restored.step()
    assert a == b


def test_checkpoint_restart_equals_uninterrupted():
    ref = MiniLulesh(epr=5)
    ref.run(20)
    live = MiniLulesh(epr=5)
    live.run(10)
    live = MiniLulesh.deserialize(live.serialize())
    live.run(10)
    np.testing.assert_allclose(live.rho, ref.rho, rtol=1e-12)
    assert live.t == pytest.approx(ref.t, rel=1e-12)


@settings(max_examples=10, deadline=None)
@given(epr=st.integers(min_value=2, max_value=10), steps=st.integers(min_value=1, max_value=20))
def test_positivity_property(epr, steps):
    sim = MiniLulesh(epr=epr)
    sim.run(steps)
    assert np.all(sim.rho > 0) and np.all(sim.e > 0)


# -- AppBEO structure ------------------------------------------------------------------


def count_types(instrs):
    out = {}
    for i in instrs:
        out[type(i).__name__] = out.get(type(i).__name__, 0) + 1
    return out


def test_appbeo_no_ft_structure():
    app = lulesh_appbeo(timesteps=10, scenario=NO_FT)
    instrs = app.build(0, 8, {"epr": 5})
    counts = count_types(instrs)
    assert counts["Compute"] == 10
    assert counts["Exchange"] == 10
    assert counts["Collective"] == 10  # allreduce only
    assert "Checkpoint" not in counts


def test_appbeo_l1_injects_checkpoints():
    app = lulesh_appbeo(timesteps=200, scenario=scenario_l1(40))
    instrs = app.build(0, 8, {"epr": 10})
    ckpts = [i for i in instrs if isinstance(i, Checkpoint)]
    assert len(ckpts) == 5
    assert all(c.kernel == "fti_l1" and c.level == 1 for c in ckpts)
    assert all(c.param_dict() == {"epr": 10, "ranks": 8} for c in ckpts)
    # each checkpoint is preceded by a coordination barrier
    barriers = [i for i in instrs if isinstance(i, Collective) and i.op == "barrier"]
    assert len(barriers) == 5


def test_appbeo_l1_l2_doubles_checkpoints():
    app = lulesh_appbeo(timesteps=200, scenario=scenario_l1_l2(40))
    instrs = app.build(0, 8, {"epr": 10})
    ckpts = [i for i in instrs if isinstance(i, Checkpoint)]
    assert len(ckpts) == 10
    assert {c.level for c in ckpts} == {1, 2}


def test_appbeo_halo_scales_with_epr():
    app = lulesh_appbeo(timesteps=1)
    small = next(
        i for i in app.build(0, 8, {"epr": 5}) if isinstance(i, Exchange)
    )
    big = next(
        i for i in app.build(0, 8, {"epr": 20}) if isinstance(i, Exchange)
    )
    assert big.nbytes == 16 * small.nbytes


def test_appbeo_enforces_cube_ranks():
    app = lulesh_appbeo(timesteps=1)
    with pytest.raises(ValueError):
        app.build(0, 10)


def test_appbeo_rejects_bad_params():
    with pytest.raises(ValueError):
        lulesh_appbeo(timesteps=0)
    app = lulesh_appbeo(timesteps=1)
    with pytest.raises(ValueError):
        app.build(0, 8, {"epr": 0})


def test_appbeo_spmd_streams_identical():
    app = lulesh_appbeo(timesteps=5, scenario=scenario_l1(2))
    assert app.build(0, 27, {"epr": 5}) == app.build(13, 27, {"epr": 5})
