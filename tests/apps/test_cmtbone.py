"""CMT-bone kernel and AppBEO."""

import numpy as np
import pytest

from repro.apps.cmtbone import CMTBoneKernel, cmtbone_appbeo, cmtbone_state_bytes
from repro.core.instructions import Collective, Compute, Exchange


# -- the runnable kernel ---------------------------------------------------------


def test_kernel_shapes_and_validation():
    k = CMTBoneKernel(elem_size=6, elements=4)
    assert k.u.shape == (4, 6, 6, 6)
    with pytest.raises(ValueError):
        CMTBoneKernel(1, 4)
    with pytest.raises(ValueError):
        CMTBoneKernel(4, 0)


def test_gradient_linear_in_field():
    k = CMTBoneKernel(5, 2, seed=1)
    gx1, _, _ = k.gradient()
    k.u = 2.0 * k.u
    gx2, _, _ = k.gradient()
    np.testing.assert_allclose(gx2, 2.0 * gx1)


def test_step_advances_and_stays_bounded():
    k = CMTBoneKernel(6, 8, seed=2)
    rms0 = float(np.sqrt(np.mean(k.u**2)))
    rms = k.run(50)
    assert k.cycles == 50
    assert np.isfinite(rms)
    assert rms < rms0 * 2  # dissipative update keeps it bounded


def test_step_validation():
    k = CMTBoneKernel(4, 1)
    with pytest.raises(ValueError):
        k.step(dt=0)
    with pytest.raises(ValueError):
        k.step(nu=-1)


def test_deterministic_given_seed():
    a = CMTBoneKernel(5, 3, seed=7)
    b = CMTBoneKernel(5, 3, seed=7)
    assert a.run(10) == b.run(10)


def test_flops_scale_as_elem_size_fourth_power():
    base = CMTBoneKernel(5, 16).flops_per_step()
    double = CMTBoneKernel(10, 16).flops_per_step()
    assert double == base * 16  # (2x edge)^4


def test_state_bytes():
    k = CMTBoneKernel(5, 16)
    assert k.state_bytes() == 16 * 125 * 8
    assert cmtbone_state_bytes(5, 16) == 5 * 16 * 125 * 8
    with pytest.raises(ValueError):
        cmtbone_state_bytes(0, 1)


# -- the AppBEO ------------------------------------------------------------------


def test_appbeo_structure():
    app = cmtbone_appbeo(timesteps=3)
    instrs = app.build(0, 16, {"elem_size": 5, "elements": 32})
    computes = [i for i in instrs if isinstance(i, Compute)]
    assert len(computes) == 3
    assert computes[0].param_dict() == {
        "elem_size": 5, "elements": 32, "ranks": 16,
    }
    exchanges = [i for i in instrs if isinstance(i, Exchange)]
    assert exchanges[0].nbytes == 32 * 25 * 8
    assert sum(1 for i in instrs if isinstance(i, Collective)) == 3


def test_appbeo_validation():
    with pytest.raises(ValueError):
        cmtbone_appbeo(timesteps=0)
    app = cmtbone_appbeo()
    with pytest.raises(ValueError):
        app.build(0, 4, {"elem_size": 0, "elements": 1})
