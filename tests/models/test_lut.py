"""Unit tests for LookupTableModel interpolation behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import BenchmarkDataset, LookupTableModel


def linear_dataset(noise=0.0, seed=0):
    """Full 2-D grid of f(x, y) = 2x + 3y (+ optional noise)."""
    rng = np.random.default_rng(seed)
    ds = BenchmarkDataset(("x", "y"), kernel="lin")
    for x in (0.0, 1.0, 2.0, 3.0):
        for y in (0.0, 10.0, 20.0):
            base = 2 * x + 3 * y
            for _ in range(5):
                ds.add_sample(
                    {"x": x, "y": y}, max(base + rng.normal(0, noise) + 1.0, 1e-3)
                )
    return ds


def test_empty_dataset_rejected():
    with pytest.raises(ValueError):
        LookupTableModel(BenchmarkDataset(("x",)))


def test_invalid_options_rejected():
    ds = linear_dataset()
    for kw in (
        {"interpolation": "cubic"},
        {"sample_mode": "mode"},
        {"extrapolation": "wrap"},
        {"noise": "additive"},
    ):
        with pytest.raises(ValueError):
            LookupTableModel(ds, **kw)


def test_exact_hit_mean_mode():
    ds = linear_dataset()
    m = LookupTableModel(ds, sample_mode="mean")
    assert m.predict({"x": 1.0, "y": 10.0}) == pytest.approx(33.0)


def test_exact_hit_draw_mode_samples_from_table():
    ds = linear_dataset(noise=0.5, seed=3)
    m = LookupTableModel(ds, sample_mode="draw")
    rng = np.random.default_rng(0)
    table = set(ds.samples({"x": 2.0, "y": 20.0}).tolist())
    draws = {m.predict({"x": 2.0, "y": 20.0}, rng) for _ in range(50)}
    assert draws <= table
    assert len(draws) > 1  # actually stochastic


def test_draw_without_rng_falls_back_to_mean():
    ds = linear_dataset(noise=0.5, seed=4)
    m = LookupTableModel(ds, sample_mode="draw")
    assert m.predict({"x": 2.0, "y": 20.0}) == pytest.approx(
        ds.mean({"x": 2.0, "y": 20.0})
    )


def test_median_mode():
    ds = BenchmarkDataset(("x",))
    ds.add_samples({"x": 1}, [1.0, 2.0, 100.0])
    m = LookupTableModel(ds, sample_mode="median")
    assert m.predict({"x": 1}) == 2.0


def test_multilinear_interpolates_exactly_on_linear_function():
    m = LookupTableModel(linear_dataset(), sample_mode="mean")
    # interior, off-grid point of the linear surface
    assert m.predict({"x": 1.5, "y": 15.0}) == pytest.approx(
        2 * 1.5 + 3 * 15.0 + 1.0
    )


def test_multilinear_extrapolates_linearly():
    m = LookupTableModel(linear_dataset(), sample_mode="mean", extrapolation="linear")
    assert m.predict({"x": 5.0, "y": 30.0}) == pytest.approx(2 * 5 + 3 * 30 + 1.0)


def test_clamp_extrapolation_holds_edges():
    m = LookupTableModel(linear_dataset(), sample_mode="mean", extrapolation="clamp")
    assert m.predict({"x": 99.0, "y": 20.0}) == pytest.approx(2 * 3 + 3 * 20 + 1.0)


def test_nearest_interpolation():
    m = LookupTableModel(linear_dataset(), interpolation="nearest", sample_mode="mean")
    assert m.predict({"x": 0.9, "y": 1.0}) == pytest.approx(2 * 1 + 3 * 0 + 1.0)


def test_idw_between_points_is_bounded():
    m = LookupTableModel(linear_dataset(), interpolation="idw", sample_mode="mean")
    v = m.predict({"x": 1.5, "y": 15.0})
    means = [2 * x + 3 * y + 1 for x in (0, 1, 2, 3) for y in (0, 10, 20)]
    assert min(means) <= v <= max(means)


def test_sparse_grid_falls_back_to_idw():
    ds = BenchmarkDataset(("x", "y"))
    # L-shaped table: corner (1,1) missing
    ds.add_sample({"x": 0, "y": 0}, 1.0)
    ds.add_sample({"x": 1, "y": 0}, 2.0)
    ds.add_sample({"x": 0, "y": 1}, 3.0)
    m = LookupTableModel(ds, sample_mode="mean")
    v = m.predict({"x": 0.5, "y": 0.5})
    assert 1.0 <= v <= 3.0


def test_relative_noise_preserves_mean_roughly():
    ds = linear_dataset(noise=2.0, seed=9)
    m = LookupTableModel(ds, sample_mode="mean", noise="relative")
    rng = np.random.default_rng(1)
    vals = [m.predict({"x": 1.5, "y": 15.0}, rng) for _ in range(300)]
    clean = LookupTableModel(ds, sample_mode="mean").predict({"x": 1.5, "y": 15.0})
    assert np.mean(vals) == pytest.approx(clean, rel=0.05)
    assert np.std(vals) > 0


def test_single_value_axis():
    ds = BenchmarkDataset(("x", "g"))
    for x in (1.0, 2.0):
        ds.add_sample({"x": x, "g": 4.0}, 10 * x)
    m = LookupTableModel(ds, sample_mode="mean")
    assert m.predict({"x": 1.5, "g": 4.0}) == pytest.approx(15.0)


def test_prediction_nonnegative():
    ds = BenchmarkDataset(("x",))
    ds.add_sample({"x": 0}, 1.0)
    ds.add_sample({"x": 1}, 0.0)
    m = LookupTableModel(ds, sample_mode="mean", extrapolation="linear")
    assert m.predict({"x": 5}) == 0.0


@settings(max_examples=50)
@given(
    x=st.floats(min_value=0.0, max_value=3.0),
    y=st.floats(min_value=0.0, max_value=20.0),
)
def test_multilinear_exact_for_linear_surfaces(x, y):
    m = LookupTableModel(linear_dataset(), sample_mode="mean")
    assert m.predict({"x": x, "y": y}) == pytest.approx(2 * x + 3 * y + 1.0, abs=1e-9)


@settings(max_examples=30)
@given(
    x=st.floats(min_value=-2.0, max_value=6.0),
    y=st.floats(min_value=-5.0, max_value=30.0),
)
def test_idw_within_convex_range(x, y):
    m = LookupTableModel(linear_dataset(), interpolation="idw", sample_mode="mean")
    v = m.predict({"x": x, "y": y})
    means = [2 * a + 3 * b + 1 for a in (0, 1, 2, 3) for b in (0, 10, 20)]
    assert min(means) - 1e-9 <= v <= max(means) + 1e-9
