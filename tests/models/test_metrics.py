"""Unit tests for validation metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.models import mae, mape, percent_error, r2_score, rmse


def test_mape_basic():
    assert mape([100, 200], [110, 180]) == pytest.approx((10 + 10) / 2)


def test_mape_zero_actual_rejected():
    with pytest.raises(ZeroDivisionError):
        mape([0.0, 1.0], [1.0, 1.0])


def test_percent_error():
    assert percent_error(100.0, 117.0) == pytest.approx(17.0)
    with pytest.raises(ZeroDivisionError):
        percent_error(0.0, 1.0)


def test_shape_mismatch():
    with pytest.raises(ValueError):
        mape([1, 2, 3], [1, 2])


def test_empty_rejected():
    with pytest.raises(ValueError):
        rmse([], [])


def test_mae_rmse():
    assert mae([1, 2], [2, 4]) == pytest.approx(1.5)
    assert rmse([1, 2], [2, 4]) == pytest.approx(np.sqrt((1 + 4) / 2))


def test_r2_perfect_and_mean_predictor():
    y = [1.0, 2.0, 3.0]
    assert r2_score(y, y) == pytest.approx(1.0)
    assert r2_score(y, [2.0, 2.0, 2.0]) == pytest.approx(0.0)


def test_r2_constant_actual():
    assert r2_score([5, 5], [5, 5]) == 1.0
    assert r2_score([5, 5], [4, 6]) == float("-inf")


@given(
    st.lists(
        st.floats(min_value=0.1, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
def test_perfect_prediction_zero_error(values):
    assert mape(values, values) == 0.0
    assert mae(values, values) == 0.0
    assert rmse(values, values) == 0.0


@given(
    actual=st.lists(st.floats(min_value=1.0, max_value=100.0), min_size=2, max_size=20),
    scale=st.floats(min_value=1.01, max_value=2.0),
)
def test_mape_scale_invariance(actual, scale):
    """Scaling both vectors leaves MAPE unchanged; scaling predictions by k
    gives 100*(k-1)."""
    a = np.array(actual)
    assert mape(a, a * scale) == pytest.approx(100 * (scale - 1), rel=1e-9)
    assert mape(a * 7, a * 7 * scale) == pytest.approx(
        mape(a, a * scale), rel=1e-9
    )
