"""Tests for expression trees, the parser and the GP engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import BenchmarkDataset
from repro.models.symreg import (
    Binary,
    Const,
    Expression,
    GPConfig,
    ParseError,
    SymbolicRegressionModel,
    SymbolicRegressor,
    Unary,
    Var,
    parse_expression,
)


# -- expression trees ---------------------------------------------------------


def test_evaluate_simple():
    e = Binary("+", Binary("*", Const(2.0), Var("x")), Const(1.0))
    out = e.evaluate({"x": np.array([0.0, 1.0, 2.0])})
    assert out.tolist() == [1.0, 3.0, 5.0]


def test_protected_division():
    e = Binary("/", Const(1.0), Var("x"))
    out = e.evaluate({"x": np.array([0.0, 2.0])})
    assert np.all(np.isfinite(out))
    assert out[1] == pytest.approx(0.5)


def test_protected_log_sqrt():
    e = Unary("log", Var("x"))
    assert np.isfinite(e.evaluate({"x": np.array([0.0, -5.0])})).all()
    s = Unary("sqrt", Var("x"))
    assert s.evaluate({"x": np.array([-4.0])})[()] == pytest.approx(2.0)


def test_unknown_ops_rejected():
    with pytest.raises(ValueError):
        Unary("sin", Const(1.0))
    with pytest.raises(ValueError):
        Binary("%", Const(1.0), Const(2.0))


def test_size_depth_walk():
    e = Binary("+", Var("x"), Unary("sqrt", Const(4.0)))
    assert e.size() == 4
    assert e.depth() == 3
    assert len(list(e.walk())) == 4


def test_copy_is_deep():
    e = Binary("+", Var("x"), Const(1.0))
    c = e.copy()
    assert str(c) == str(e)
    assert c is not e and c.children()[0] is not e.children()[0]


def test_replace_by_preorder_index():
    e = Binary("+", Var("x"), Const(1.0))
    r = e.replace(2, Var("y"))  # index 2 is the Const
    assert str(r) == "(x + y)"
    r0 = e.replace(0, Const(9.0))
    assert str(r0) == "9.0"


def test_variables_and_constants():
    e = Binary("*", Var("a"), Binary("+", Const(2.0), Var("b")))
    assert e.variables() == {"a", "b"}
    assert e.constants() == [2.0]


def test_with_constants_preorder():
    e = Binary("+", Const(1.0), Binary("*", Const(2.0), Var("x")))
    e2 = e.with_constants([10.0, 20.0])
    assert e2.constants() == [10.0, 20.0]
    assert e.constants() == [1.0, 2.0]  # original untouched


def test_simplify_folds_constants():
    e = Binary("+", Const(2.0), Const(3.0))
    assert str(e.simplify()) == "5.0"
    e2 = Binary("*", Const(1.0), Var("x"))
    assert str(e2.simplify()) == "x"
    e3 = Binary("*", Const(0.0), Var("x"))
    assert str(e3.simplify()) == "0.0"
    e4 = Unary("neg", Unary("neg", Var("x")))
    assert str(e4.simplify()) == "x"


def test_invalid_var_name():
    with pytest.raises(ValueError):
        Var("2bad")


def test_missing_variable_raises():
    with pytest.raises(KeyError):
        Var("x").evaluate({"y": np.array([1.0])})


# -- parser ---------------------------------------------------------------------


def test_parse_round_trip_simple():
    for text in [
        "(x + 1)",
        "((2 * x) - (y / 3))",
        "sqrt((x * x))",
        "log(x)",
        "(-x)",
        "pow(x, 2)",
        "min(x, y)",
        "1e-05",
        "(x + 1.5e2)",
    ]:
        e = parse_expression(text)
        e2 = parse_expression(str(e))
        env = {"x": np.array([1.7]), "y": np.array([3.2])}
        assert e.evaluate(env) == pytest.approx(e2.evaluate(env))


def test_parse_precedence():
    e = parse_expression("1 + 2 * 3")
    assert float(e.evaluate({})) == 7.0
    e = parse_expression("(1 + 2) * 3")
    assert float(e.evaluate({})) == 9.0
    e = parse_expression("8 - 4 - 2")  # left associative
    assert float(e.evaluate({})) == 2.0


def test_parse_errors():
    for bad in ["", "x +", "(x", "foo(x)", "sqrt(x, y)", "x $ y", "1 2"]:
        with pytest.raises(ParseError):
            parse_expression(bad)


@st.composite
def random_expr(draw, depth=0):
    if depth > 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return Const(draw(st.floats(min_value=-10, max_value=10, allow_nan=False)))
        return Var(draw(st.sampled_from(["x", "y"])))
    if draw(st.booleans()):
        op = draw(st.sampled_from(["sqrt", "log", "neg", "square"]))
        return Unary(op, draw(random_expr(depth=depth + 1)))
    op = draw(st.sampled_from(["+", "-", "*", "/"]))
    return Binary(
        op, draw(random_expr(depth=depth + 1)), draw(random_expr(depth=depth + 1))
    )


@settings(max_examples=60)
@given(random_expr())
def test_parser_round_trip_property(e):
    env = {"x": np.array([0.5, 2.0, -1.0]), "y": np.array([1.0, -3.0, 4.0])}
    e2 = parse_expression(str(e))
    np.testing.assert_allclose(
        np.broadcast_to(e.evaluate(env), (3,)),
        np.broadcast_to(e2.evaluate(env), (3,)),
        rtol=1e-12,
    )


# -- GP engine ---------------------------------------------------------------------


def quick_config(**kw):
    defaults = dict(population_size=120, generations=25, parsimony=2e-3)
    defaults.update(kw)
    return GPConfig(**defaults)


def test_gp_recovers_linear_formula():
    rng = np.random.default_rng(0)
    X = rng.uniform(1, 10, size=(40, 2))
    y = 3.0 * X[:, 0] + X[:, 1]
    reg = SymbolicRegressor(("a", "b"), config=quick_config(), seed=1)
    res = reg.fit(X, y)
    assert res.train_nrmse < 0.05
    pred = res.expression.evaluate({"a": X[:, 0], "b": X[:, 1]})
    np.testing.assert_allclose(np.broadcast_to(pred, y.shape), y, rtol=0.2)


def test_gp_recovers_product():
    rng = np.random.default_rng(1)
    X = rng.uniform(1, 5, size=(50, 2))
    y = X[:, 0] * X[:, 1]
    reg = SymbolicRegressor(("a", "b"), config=quick_config(), seed=2)
    res = reg.fit(X, y)
    assert res.train_nrmse < 0.05


def test_gp_uses_test_split_for_champion():
    rng = np.random.default_rng(2)
    X = rng.uniform(1, 10, size=(30, 1))
    y = 2 * X[:, 0] ** 2
    Xt = rng.uniform(1, 10, size=(10, 1))
    yt = 2 * Xt[:, 0] ** 2
    reg = SymbolicRegressor(("x",), config=quick_config(), seed=3)
    res = reg.fit(X, y, Xt, yt)
    assert res.test_nrmse is not None
    assert res.test_nrmse < 0.1


def test_gp_deterministic_given_seed():
    rng = np.random.default_rng(3)
    X = rng.uniform(1, 10, size=(20, 1))
    y = X[:, 0] + 1
    cfg = quick_config(population_size=60, generations=8)
    r1 = SymbolicRegressor(("x",), config=cfg, seed=7).fit(X, y)
    r2 = SymbolicRegressor(("x",), config=cfg, seed=7).fit(X, y)
    assert str(r1.expression) == str(r2.expression)


def test_gp_input_validation():
    reg = SymbolicRegressor(("x",), config=quick_config())
    with pytest.raises(ValueError):
        reg.fit(np.ones((3, 2)), np.ones(3))
    with pytest.raises(ValueError):
        reg.fit(np.ones((3, 1)), np.ones(4))
    with pytest.raises(ValueError):
        SymbolicRegressor(())


def test_gp_config_validation():
    with pytest.raises(ValueError):
        GPConfig(p_crossover=0.9, p_subtree_mutation=0.2)
    with pytest.raises(ValueError):
        GPConfig(population_size=2)


def test_gp_early_stop_on_exact_fit():
    X = np.arange(1, 11, dtype=float).reshape(-1, 1)
    y = X[:, 0]
    cfg = quick_config(generations=100)
    res = SymbolicRegressor(("x",), config=cfg, seed=0).fit(X, y)
    assert res.generations_run < 100


def test_gp_respects_depth_bound():
    rng = np.random.default_rng(4)
    X = rng.uniform(1, 10, size=(25, 2))
    y = X[:, 0] ** 2 + X[:, 1]
    cfg = quick_config(max_depth=4, generations=10, n_genes=3)
    reg = SymbolicRegressor(("a", "b"), config=cfg, seed=5)
    res = reg.fit(X, y)
    # combined tree = linear combination of <= n_genes genes, each depth-bounded
    assert res.expression.depth() <= (cfg.max_depth + 2) + 2 * cfg.n_genes


def test_gp_n_genes_validation():
    with pytest.raises(ValueError):
        GPConfig(n_genes=0)
    with pytest.raises(ValueError):
        GPConfig(fitness="mape")


# -- SymbolicRegressionModel ----------------------------------------------------------


def test_model_predicts_and_checks_params():
    m = SymbolicRegressionModel("(2 * x + y)", ("x", "y"))
    assert m.predict({"x": 3, "y": 4}) == pytest.approx(10.0)
    from repro.models import ModelError

    with pytest.raises(ModelError):
        m.predict({"x": 3})


def test_model_rejects_unknown_variables():
    from repro.models import ModelError

    with pytest.raises(ModelError):
        SymbolicRegressionModel("(x + z)", ("x",))


def test_model_noise_draws():
    m = SymbolicRegressionModel("(10 * x)", ("x",), noise_rel_std=0.1)
    rng = np.random.default_rng(0)
    vals = np.array([m.predict({"x": 1}, rng) for _ in range(2000)])
    assert vals.std() > 0
    assert vals.mean() == pytest.approx(10.0, rel=0.03)
    # no rng -> deterministic
    assert m.predict({"x": 1}) == 10.0


def test_model_floor():
    m = SymbolicRegressionModel("(x - 100)", ("x",), floor=0.5)
    assert m.predict({"x": 1}) == 0.5


def test_model_serialization_roundtrip():
    m = SymbolicRegressionModel("((2 * x) + sqrt(y))", ("x", "y"), noise_rel_std=0.05)
    m2 = SymbolicRegressionModel.from_dict(m.to_dict())
    p = {"x": 2.5, "y": 9.0}
    assert m2.predict(p) == pytest.approx(m.predict(p))
    assert m2.noise_rel_std == m.noise_rel_std


def test_fit_dataset_end_to_end():
    rng = np.random.default_rng(8)
    ds = BenchmarkDataset(("n",), kernel="toy")
    for n in range(1, 13):
        for _ in range(3):
            ds.add_sample({"n": n}, 5.0 * n + rng.normal(0, 0.05))
    train, test = ds.split(0.25, seed=0)
    m = SymbolicRegressionModel.fit_dataset(
        train, test, config=quick_config(), seed=0
    )
    for n in (2, 7, 11):
        assert m.predict({"n": n}) == pytest.approx(5.0 * n, rel=0.15)
    assert m.noise_rel_std >= 0
