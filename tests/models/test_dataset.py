"""Unit tests for BenchmarkDataset."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.models import BenchmarkDataset


def make_grid_dataset():
    ds = BenchmarkDataset(("epr", "ranks"), kernel="k")
    for epr in (5, 10, 15):
        for ranks in (8, 64):
            for s in range(4):
                ds.add_sample({"epr": epr, "ranks": ranks}, epr * ranks + s)
    return ds


def test_requires_param_names():
    with pytest.raises(ValueError):
        BenchmarkDataset(())


def test_duplicate_param_names_rejected():
    with pytest.raises(ValueError):
        BenchmarkDataset(("a", "a"))


def test_add_and_query_samples():
    ds = make_grid_dataset()
    assert len(ds) == 6
    assert ds.n_samples == 24
    s = ds.samples({"epr": 5, "ranks": 8})
    assert s.tolist() == [40, 41, 42, 43]
    assert ds.mean({"epr": 5, "ranks": 8}) == pytest.approx(41.5)
    assert ds.std({"epr": 5, "ranks": 8}) > 0


def test_param_order_irrelevant_in_mapping():
    ds = make_grid_dataset()
    a = ds.samples({"ranks": 8, "epr": 5})
    b = ds.samples({"epr": 5, "ranks": 8})
    assert a.tolist() == b.tolist()


def test_missing_param_keyerror():
    ds = make_grid_dataset()
    with pytest.raises(KeyError):
        ds.samples({"epr": 5})


def test_invalid_sample_rejected():
    ds = BenchmarkDataset(("x",))
    with pytest.raises(ValueError):
        ds.add_sample({"x": 1}, -1.0)
    with pytest.raises(ValueError):
        ds.add_sample({"x": 1}, float("nan"))


def test_mean_of_absent_point_raises():
    ds = make_grid_dataset()
    with pytest.raises(KeyError):
        ds.mean({"epr": 99, "ranks": 8})


def test_grid_values():
    ds = make_grid_dataset()
    assert ds.grid_values("epr").tolist() == [5, 10, 15]
    assert ds.grid_values("ranks").tolist() == [8, 64]
    with pytest.raises(KeyError):
        ds.grid_values("nope")


def test_to_arrays_mean_and_none():
    ds = make_grid_dataset()
    X, y = ds.to_arrays("mean")
    assert X.shape == (6, 2)
    assert y.shape == (6,)
    Xn, yn = ds.to_arrays("none")
    assert Xn.shape == (24, 2)
    with pytest.raises(ValueError):
        ds.to_arrays("bogus")


def test_split_is_disjoint_and_covering():
    ds = make_grid_dataset()
    train, test = ds.split(0.33, seed=1)
    assert len(train) + len(test) == len(ds)
    assert set(train.keys()).isdisjoint(test.keys())
    assert len(test) >= 1 and len(train) >= 1


def test_split_deterministic():
    ds = make_grid_dataset()
    t1, _ = ds.split(0.25, seed=5)
    t2, _ = ds.split(0.25, seed=5)
    assert t1.keys() == t2.keys()


def test_split_validates_fraction():
    ds = make_grid_dataset()
    for bad in (0.0, 1.0, -0.5):
        with pytest.raises(ValueError):
            ds.split(bad)


def test_filter():
    ds = make_grid_dataset()
    small = ds.filter(lambda p: p["epr"] <= 10)
    assert len(small) == 4


def test_merge():
    a = make_grid_dataset()
    b = BenchmarkDataset(("epr", "ranks"), kernel="k")
    b.add_sample({"epr": 20, "ranks": 8}, 1.0)
    m = a.merge(b)
    assert len(m) == 7
    assert m.n_samples == 25


def test_merge_rejects_mismatched_params():
    a = make_grid_dataset()
    b = BenchmarkDataset(("x",))
    with pytest.raises(ValueError):
        a.merge(b)


def test_roundtrip_dict_and_file(tmp_path):
    ds = make_grid_dataset()
    ds2 = BenchmarkDataset.from_dict(ds.to_dict())
    assert ds2.keys() == ds.keys()
    path = tmp_path / "ds.json"
    ds.save(path)
    ds3 = BenchmarkDataset.load(path)
    assert ds3.kernel == "k"
    assert ds3.samples({"epr": 10, "ranks": 64}).tolist() == ds.samples(
        {"epr": 10, "ranks": 64}
    ).tolist()


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=5),
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        ),
        min_size=1,
        max_size=50,
    )
)
def test_n_samples_matches_additions(entries):
    ds = BenchmarkDataset(("p",))
    for p, v in entries:
        ds.add_sample({"p": p}, v)
    assert ds.n_samples == len(entries)
    assert len(ds) == len({p for p, _ in entries})
    total = sum(v for _, v in entries)
    acc = sum(ds.samples({"p": p}).sum() for p in {p for p, _ in entries})
    assert np.isclose(acc, total)
