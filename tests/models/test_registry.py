"""Model registry persistence."""

import numpy as np
import pytest

from repro.models import (
    BenchmarkDataset,
    CallableModel,
    ConstantModel,
    LookupTableModel,
    ModelError,
)
from repro.models.registry import ModelRegistry
from repro.models.symreg import SymbolicRegressionModel


def make_lut():
    ds = BenchmarkDataset(("x",), kernel="k")
    for x in (1.0, 2.0, 3.0):
        ds.add_samples({"x": x}, [x * 10, x * 10 + 1])
    return LookupTableModel(ds, sample_mode="mean")


def test_add_and_get():
    reg = ModelRegistry("m")
    reg.add("a", ConstantModel(1.0)).add("b", make_lut())
    assert len(reg) == 2
    assert "a" in reg and "zz" not in reg
    assert reg.kernels() == ["a", "b"]
    assert reg.get("a").predict({}) == 1.0
    with pytest.raises(KeyError):
        reg.get("zz")


def test_unserialisable_model_rejected_early():
    reg = ModelRegistry()
    with pytest.raises(ModelError):
        reg.add("bad", CallableModel(lambda p: 1.0, ()))


def test_roundtrip_symreg():
    reg = ModelRegistry("quartz")
    m = SymbolicRegressionModel(
        "(2.5 * x + 1.0)", ("x",), noise_rel_std=0.1,
        noise_factors=[0.9, 1.0, 1.1],
    )
    reg.add("k", m)
    reg2 = ModelRegistry.from_json(reg.to_json())
    assert reg2.machine == "quartz"
    m2 = reg2.get("k")
    assert m2.predict({"x": 4.0}) == pytest.approx(11.0)
    assert m2.noise_factors.tolist() == [0.9, 1.0, 1.1]
    # Monte-Carlo noise behaves identically
    rng = np.random.default_rng(0)
    rng2 = np.random.default_rng(0)
    assert m.predict({"x": 4.0}, rng) == m2.predict({"x": 4.0}, rng2)


def test_roundtrip_lut_and_constant(tmp_path):
    reg = ModelRegistry("m")
    reg.add("lut", make_lut())
    reg.add("const", ConstantModel(0.25))
    path = tmp_path / "models.json"
    reg.save(path)
    reg2 = ModelRegistry.load(path)
    assert reg2.get("const").predict({}) == 0.25
    assert reg2.get("lut").predict({"x": 1.5}) == pytest.approx(
        reg.get("lut").predict({"x": 1.5})
    )
    # interpolation options preserved
    assert reg2.get("lut").sample_mode == "mean"


def test_version_check():
    reg = ModelRegistry()
    text = reg.to_json().replace('"format_version": 1', '"format_version": 99')
    with pytest.raises(ModelError):
        ModelRegistry.from_json(text)


def test_unknown_type_rejected():
    with pytest.raises(ModelError):
        ModelRegistry.from_json(
            '{"format_version": 1, "models": {"x": {"type": "nn"}}}'
        )


def test_from_fitted_accepts_bare_models():
    reg = ModelRegistry.from_fitted({"k": ConstantModel(2.0)}, machine="m")
    assert reg.get("k").predict({}) == 2.0
    assert reg.as_dict()["k"] is reg.get("k")
