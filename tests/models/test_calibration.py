"""Tests for the calibration pipeline and base models."""

import numpy as np
import pytest

from repro.models import (
    BenchmarkDataset,
    CalibrationPipeline,
    CallableModel,
    ConstantModel,
    ModelError,
)
from repro.models.calibration import dataset_mape
from repro.models.symreg import GPConfig


def toy_dataset(kernel="k", fn=lambda p: 3 * p["n"] + 2, n_values=12, seed=0):
    rng = np.random.default_rng(seed)
    ds = BenchmarkDataset(("n",), kernel=kernel)
    for n in range(1, n_values + 1):
        base = fn({"n": float(n)})
        for _ in range(4):
            ds.add_sample({"n": n}, base * (1 + rng.normal(0, 0.02)))
    return ds


def test_constant_model():
    m = ConstantModel(2.5)
    assert m.predict({}) == 2.5
    with pytest.raises(ValueError):
        ConstantModel(-1)


def test_callable_model_checks_and_validates():
    m = CallableModel(lambda p: p["n"] * 2.0, ("n",))
    assert m.predict({"n": 3}) == 6.0
    with pytest.raises(ModelError):
        m.predict({})
    bad = CallableModel(lambda p: float("nan"), ())
    with pytest.raises(ModelError):
        bad.predict({})


def test_callable_model_stochastic():
    m = CallableModel(
        lambda p, rng: 1.0 + (rng.random() if rng else 0.0), (), stochastic=True
    )
    rng = np.random.default_rng(0)
    assert m.predict({}, rng) != m.predict({})


def test_predict_many():
    m = ConstantModel(1.0)
    out = m.predict_many([{}, {}, {}])
    assert out.tolist() == [1.0, 1.0, 1.0]


def test_dataset_mape_zero_for_perfect_model():
    ds = toy_dataset()
    m = CallableModel(lambda p: float(np.mean(ds.samples(p))), ("n",))
    assert dataset_mape(m, ds) == 0.0


def test_pipeline_lut():
    pipe = CalibrationPipeline(method="lut", test_fraction=0.25, seed=1)
    fitted = pipe.fit_kernel(toy_dataset())
    assert fitted.method == "lut"
    assert fitted.train_mape < 1.0
    # held-out points of a linear function interpolate well
    assert fitted.test_mape is not None and fitted.test_mape < 10.0


def test_pipeline_symreg():
    cfg = GPConfig(population_size=100, generations=20, parsimony=2e-3)
    pipe = CalibrationPipeline(method="symreg", gp_config=cfg, seed=0)
    fitted = pipe.fit_kernel(toy_dataset())
    assert fitted.train_mape < 10.0
    summary = fitted.summary()
    assert summary["kernel"] == "k" and summary["method"] == "symreg"


def test_pipeline_fit_all_and_table():
    cfg = GPConfig(population_size=80, generations=12)
    pipe = CalibrationPipeline(method="lut", seed=0, gp_config=cfg)
    datasets = {
        "a": toy_dataset("a", lambda p: 2 * p["n"]),
        "b": toy_dataset("b", lambda p: p["n"] ** 2),
    }
    fitted = pipe.fit_all(datasets)
    assert set(fitted) == {"a", "b"}
    table = CalibrationPipeline.validation_table(fitted, datasets)
    assert set(table) == {"a", "b"}
    assert all(v >= 0 for v in table.values())


def test_pipeline_rejects_tiny_dataset():
    ds = BenchmarkDataset(("n",), kernel="tiny")
    ds.add_sample({"n": 1}, 1.0)
    with pytest.raises(ValueError):
        CalibrationPipeline(method="lut").fit_kernel(ds)


def test_pipeline_unknown_method():
    with pytest.raises(ValueError):
        CalibrationPipeline(method="nn")


def test_scaled_model():
    from repro.models import ScaledModel

    inner = CallableModel(lambda p: p["n"] * 2.0, ("n",))
    scaled = ScaledModel(inner, 0.25)
    assert scaled.predict({"n": 8}) == pytest.approx(4.0)
    assert scaled.param_names == ("n",)
    with pytest.raises(ValueError):
        ScaledModel(inner, 0.0)


def test_scaled_model_passes_rng_through():
    import numpy as np
    from repro.models import ScaledModel

    inner = CallableModel(
        lambda p, rng: 1.0 + (rng.random() if rng else 0.0), (), stochastic=True
    )
    scaled = ScaledModel(inner, 2.0)
    rng = np.random.default_rng(0)
    stochastic = scaled.predict({}, rng)
    assert stochastic != scaled.predict({})
    assert 2.0 <= stochastic <= 4.0
