"""Analytical FT models: Young/Daly, reliability-aware speedup,
replication, spare nodes."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytical import (
    SpareNodeModel,
    amdahl_speedup,
    daly_interval,
    expected_runtime,
    gustafson_speedup,
    optimal_expected_runtime,
    optimal_process_count,
    reliability_aware_amdahl,
    reliability_aware_gustafson,
    replication_mtbf,
    replication_speedup,
    young_interval,
)


# -- Young / Daly -------------------------------------------------------------------


def test_young_formula():
    assert young_interval(10.0, 2000.0) == pytest.approx(math.sqrt(2 * 10 * 2000))


def test_daly_close_to_young_when_c_small():
    C, M = 1.0, 1e6
    assert daly_interval(C, M) == pytest.approx(young_interval(C, M), rel=0.01)


def test_daly_degenerate_regime():
    assert daly_interval(10.0, 4.0) == 4.0


def test_interval_validation():
    for fn in (young_interval, daly_interval):
        with pytest.raises(ValueError):
            fn(0, 100)
        with pytest.raises(ValueError):
            fn(1, 0)


def test_expected_runtime_increases_with_failure_rate():
    t_reliable = expected_runtime(3600, 600, 10, mtbf=1e9)
    t_faulty = expected_runtime(3600, 600, 10, mtbf=3600)
    assert t_faulty > t_reliable
    # reliable limit: work + checkpoint overhead only
    assert t_reliable == pytest.approx(3600 * (1 + 10 / 600), rel=0.01)


def test_expected_runtime_validation():
    with pytest.raises(ValueError):
        expected_runtime(0, 1, 1, 1)
    with pytest.raises(ValueError):
        expected_runtime(1, 0, 1, 1)
    with pytest.raises(ValueError):
        expected_runtime(1, 1, 1, 1, restart_cost=-1)


def test_optimum_is_a_minimum_of_the_curve():
    work, C, M = 36000.0, 30.0, 3600.0
    tau, t_opt = optimal_expected_runtime(work, C, M, method="daly")
    for factor in (0.25, 0.5, 2.0, 4.0):
        assert expected_runtime(work, tau * factor, C, M) >= t_opt * 0.999


def test_optimal_method_validation():
    with pytest.raises(ValueError):
        optimal_expected_runtime(1, 1, 1, method="magic")


@settings(max_examples=30)
@given(
    C=st.floats(min_value=0.1, max_value=100),
    M=st.floats(min_value=1000, max_value=1e7),
)
def test_young_interval_scales(C, M):
    tau = young_interval(C, M)
    assert tau == pytest.approx(math.sqrt(2 * C * M))
    assert young_interval(C, 4 * M) == pytest.approx(2 * tau)


# -- speedup laws ------------------------------------------------------------------------


def test_classic_laws():
    assert amdahl_speedup(1, 0.1) == 1.0
    assert amdahl_speedup(10**9, 0.1) == pytest.approx(10.0, rel=0.01)
    assert gustafson_speedup(100, 0.1) == pytest.approx(0.1 + 0.9 * 100)
    with pytest.raises(ValueError):
        amdahl_speedup(0, 0.1)
    with pytest.raises(ValueError):
        gustafson_speedup(1, 1.5)


def test_faults_reduce_speedup():
    n, f, mtbf = 1024, 0.001, 5 * 365 * 86400
    clean = amdahl_speedup(n, f)
    ft = reliability_aware_amdahl(n, f, node_mtbf=mtbf, ckpt_cost=60)
    assert ft < clean


def test_checkpointing_beats_no_ft_at_scale():
    # weak scaling: per-node work stays at `work`, so at scale the job is
    # long relative to the shrinking system MTBF and C/R pays off
    n, f, mtbf = 65536, 0.0001, 5 * 365 * 86400
    no_ft = reliability_aware_gustafson(n, f, node_mtbf=mtbf, ckpt_cost=None)
    with_ft = reliability_aware_gustafson(n, f, node_mtbf=mtbf, ckpt_cost=60)
    assert with_ft > no_ft


def test_no_ft_fine_when_job_short_relative_to_mtbf():
    # strong scaling at huge n: job shrinks below the MTBF, so paying
    # checkpoint overhead is a net loss (the cost-benefit trade-off)
    n, f, mtbf = 65536, 0.0001, 5 * 365 * 86400
    no_ft = reliability_aware_amdahl(n, f, node_mtbf=mtbf, ckpt_cost=None)
    with_ft = reliability_aware_amdahl(n, f, node_mtbf=mtbf, ckpt_cost=60)
    assert no_ft > with_ft


def test_speedup_non_monotone_under_faults():
    """The related work's key finding: more nodes can reduce speedup."""
    f, mtbf, C = 1e-5, 30 * 86400, 600.0
    n_opt = optimal_process_count(f, mtbf, ckpt_cost=C, law="gustafson", n_max=10**7)
    s_opt = reliability_aware_gustafson(n_opt, f, mtbf, ckpt_cost=C)
    s_beyond = reliability_aware_gustafson(n_opt * 16, f, mtbf, ckpt_cost=C)
    assert s_beyond < s_opt
    assert 1 < n_opt < 10**7


def test_optimal_process_count_validation():
    with pytest.raises(ValueError):
        optimal_process_count(0.1, 1000, law="moore")


# -- replication -----------------------------------------------------------------------------


def test_replication_mtbf_grows_with_reliability():
    assert replication_mtbf(100, node_mtbf=1e6, interval=100) > 1e6
    with pytest.raises(ValueError):
        replication_mtbf(1, 1e6, 100)


def test_replication_wins_at_extreme_scale():
    """Hussain et al.: replication allows greater max speedup when the
    plain C/R waste explodes."""
    f, mtbf, C = 1e-6, 86400.0, 120.0  # very failure-prone large system
    n = 2**20
    plain = reliability_aware_amdahl(n, f, node_mtbf=mtbf, ckpt_cost=C)
    repl = replication_speedup(n, f, node_mtbf=mtbf, ckpt_cost=C)
    assert repl > plain


def test_replication_loses_at_small_scale():
    f, mtbf, C = 0.001, 10 * 365 * 86400, 60.0
    n = 64
    plain = reliability_aware_amdahl(n, f, node_mtbf=mtbf, ckpt_cost=C)
    repl = replication_speedup(n, f, node_mtbf=mtbf, ckpt_cost=C)
    assert repl < plain  # halving parallelism is not worth it


def test_replication_validation():
    with pytest.raises(ValueError):
        replication_speedup(1, 0.1, 1e6, 60)
    with pytest.raises(ValueError):
        replication_speedup(4, 0.1, 1e6, 0)
    with pytest.raises(ValueError):
        replication_speedup(4, 0.1, 1e6, 60, law="other")


# -- spare nodes --------------------------------------------------------------------------------


def test_spare_model_validation():
    with pytest.raises(ValueError):
        SpareNodeModel(0, 1, 100, 10)
    with pytest.raises(ValueError):
        SpareNodeModel(1, -1, 100, 10)
    with pytest.raises(ValueError):
        SpareNodeModel(1, 1, 0, 10)


def test_spares_reduce_overhead_with_diminishing_returns():
    def overhead(s):
        m = SpareNodeModel(
            n_active=1000, n_spare=s, node_mtbf=30 * 86400,
            repair_time=3600, swap_cost=30, rebuild_cost=7200,
        )
        return m.expected_overhead(86400.0)

    o0, o2, o8, o16 = overhead(0), overhead(2), overhead(8), overhead(16)
    assert o0 > o2 > o8 >= o16
    assert (o0 - o2) > (o8 - o16)  # diminishing returns


def test_exhaustion_probability_bounds():
    m = SpareNodeModel(100, 5, 86400, 600)
    p = m.spare_exhaustion_probability()
    assert 0 <= p <= 1
    m0 = SpareNodeModel(100, 0, 86400, 600)
    assert m0.spare_exhaustion_probability() > p


def test_effective_runtime():
    m = SpareNodeModel(10, 2, 1e9, 60)
    assert m.effective_runtime(1000.0) == pytest.approx(1000.0, rel=1e-3)
    with pytest.raises(ValueError):
        m.expected_overhead(0)


# -- two error types: fail-stop + silent data corruption ----------------------------


def test_two_error_reduces_to_young_without_sdc():
    from repro.analytical import two_error_interval

    assert two_error_interval(
        10.0, 0.0, 2000.0, math.inf
    ) == pytest.approx(young_interval(10.0, 2000.0))


def test_two_error_closed_form():
    from repro.analytical import two_error_interval

    C, V, Mf, Ms = 10.0, 2.0, 2000.0, 500.0
    tau = two_error_interval(C, V, Mf, Ms)
    assert tau == pytest.approx(math.sqrt((C + V) / (1 / (2 * Mf) + 1 / Ms)))
    # SDC dominates here (full-period loss at 4x the rate of half-period
    # fail-stop loss): the optimum is much shorter than Young's
    assert tau < young_interval(C + V, Mf)


def test_two_error_no_failures_never_checkpoint():
    from repro.analytical import two_error_interval

    assert two_error_interval(10.0, 1.0, math.inf, math.inf) == math.inf


def test_two_error_interval_minimises_waste():
    from repro.analytical import two_error_interval, two_error_waste_fraction

    C, V, Mf, Ms = 5.0, 1.0, 1500.0, 900.0
    tau = two_error_interval(C, V, Mf, Ms)
    w_opt = two_error_waste_fraction(tau, C, V, Mf, Ms)
    for factor in (0.5, 0.8, 1.25, 2.0):
        assert w_opt <= two_error_waste_fraction(factor * tau, C, V, Mf, Ms)


def test_two_error_monotonic_in_sdc_rate():
    from repro.analytical import two_error_interval

    # a faster silent-error process forces more frequent verification
    taus = [
        two_error_interval(10.0, 1.0, 2000.0, ms)
        for ms in (math.inf, 4000.0, 1000.0, 250.0)
    ]
    assert taus == sorted(taus, reverse=True)


def test_two_error_validation():
    from repro.analytical import two_error_interval, two_error_waste_fraction

    with pytest.raises(ValueError):
        two_error_interval(0.0, 1.0, 100.0, 100.0)
    with pytest.raises(ValueError):
        two_error_interval(1.0, -0.5, 100.0, 100.0)
    with pytest.raises(ValueError):
        two_error_interval(1.0, 1.0, -5.0, 100.0)
    with pytest.raises(ValueError):
        two_error_interval(1.0, 1.0, 100.0, 0.0)
    with pytest.raises(ValueError):
        two_error_waste_fraction(0.0, 1.0, 1.0, 100.0, 100.0)
