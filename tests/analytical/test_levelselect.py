"""Checkpoint-level selection model."""

import pytest

from repro.analytical.levelselect import (
    LevelProfile,
    evaluate_level,
    quartz_level_profiles,
    select_level,
)


def profiles():
    return quartz_level_profiles({1: 0.01, 2: 0.04, 3: 0.08, 4: 0.3})


def test_profile_validation():
    with pytest.raises(ValueError):
        LevelProfile(1, ckpt_cost=0, coverage=0.5)
    with pytest.raises(ValueError):
        LevelProfile(1, ckpt_cost=1, coverage=1.5)
    with pytest.raises(ValueError):
        LevelProfile(1, ckpt_cost=1, coverage=0.5, recovery_time=-1)


def test_quartz_profiles_structure():
    ps = profiles()
    assert [p.level for p in ps] == [1, 2, 3, 4]
    covers = [p.coverage for p in ps]
    assert covers == sorted(covers)  # coverage grows with level
    costs = [p.ckpt_cost for p in ps]
    assert costs == sorted(costs)
    with pytest.raises(ValueError):
        quartz_level_profiles({7: 1.0})


def test_evaluate_level_uses_young_interval():
    p = LevelProfile(1, ckpt_cost=0.01, coverage=1.0, recovery_time=0.0)
    choice = evaluate_level(p, system_mtbf=100.0, fallback_penalty=0.0)
    assert choice.interval == pytest.approx((2 * 0.01 * 100.0) ** 0.5)
    assert 0 < choice.waste < 1
    assert 0 < choice.efficiency < 1


def test_evaluate_level_validation():
    p = LevelProfile(1, ckpt_cost=0.01, coverage=1.0)
    with pytest.raises(ValueError):
        evaluate_level(p, system_mtbf=0, fallback_penalty=1)
    with pytest.raises(ValueError):
        evaluate_level(p, system_mtbf=1, fallback_penalty=-1)
    with pytest.raises(ValueError):
        evaluate_level(p, system_mtbf=1, fallback_penalty=1, interval=0)


def test_reliable_system_prefers_cheap_levels():
    ranking = select_level(profiles(), system_mtbf=1e9, fallback_penalty=1800)
    assert ranking[0].profile.level == 1


def test_failure_prone_system_prefers_high_coverage():
    ranking = select_level(profiles(), system_mtbf=30.0, fallback_penalty=1800)
    assert ranking[0].profile.level >= 3


def test_optimum_migrates_monotonically_with_mtbf():
    best = [
        select_level(profiles(), m, fallback_penalty=1800)[0].profile.level
        for m in (1e9, 1e6, 1e3, 100.0, 10.0)
    ]
    # as reliability degrades the chosen level never decreases
    assert all(b2 >= b1 for b1, b2 in zip(best, best[1:]))
    # extremes: near-perfect reliability -> cheapest level; heavy failure
    # rates -> a high-coverage level (L3 beats L4 while it covers almost
    # everything at lower cost)
    assert best[0] == 1 and best[-1] >= 3


def test_select_level_requires_profiles():
    with pytest.raises(ValueError):
        select_level([], 100.0, 10.0)
