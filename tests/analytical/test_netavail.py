"""Closed-form network availability model (:mod:`repro.analytical.netavail`)."""

import math

import pytest

from repro.analytical import (
    active_probability,
    aggregate_stretch,
    degraded_collective_inflation,
    expected_availability,
    expected_collective_inflation,
    expected_slowdown,
    expected_stretch,
    fattree_degrade,
    isolation_probability,
    single_link_stretch,
    steady_state_failed_links,
    time_shared_slowdown,
    torus_stretch_bound,
)
from repro.network import FullyConnected, Torus, TwoStageFatTree, link_count


# -- occupancy ---------------------------------------------------------------------


def test_steady_state_occupancy():
    # availability form: L * repair / (mtbf + repair)
    assert steady_state_failed_links(18, 100.0, 0.0) == 0.0
    assert steady_state_failed_links(18, 100.0, 100.0) == pytest.approx(9.0)
    assert steady_state_failed_links(10, 90.0, 10.0) == pytest.approx(1.0)


def test_steady_state_validation():
    with pytest.raises(ValueError, match="nlinks"):
        steady_state_failed_links(0, 1.0, 1.0)
    with pytest.raises(ValueError, match="link_mtbf_s"):
        steady_state_failed_links(4, 0.0, 1.0)
    with pytest.raises(ValueError, match="repair_s"):
        steady_state_failed_links(4, 1.0, -1.0)


def test_active_probability_is_mg_inf_poisson():
    assert active_probability(0.0, 10.0) == 0.0
    assert active_probability(0.5, 2.0) == pytest.approx(1 - math.exp(-1.0))
    # monotone in both arguments, saturates at 1
    assert active_probability(100.0, 100.0) == pytest.approx(1.0)


# -- stretch -----------------------------------------------------------------------


def test_aggregate_stretch_matches_overlay_formula():
    t = Torus((3, 3))
    h = t.health()
    h.fail_link(0, 1)
    h.fail_link(3, 4)
    stretch, _, _ = h.aggregate_penalty()
    assert aggregate_stretch(link_count(t), 2) == pytest.approx(stretch)


def test_single_link_stretch_exact_on_small_torus():
    # Torus((1, 4)) is a 4-ring: killing any link reroutes only the one
    # pair that used it (1 hop -> 3 the long way).  Base pair distances:
    # 4 pairs at 1 hop + 2 at 2 hops = 8 hop-units; after any cut: 10.
    s = single_link_stretch(Torus((1, 4)))
    assert s == pytest.approx(10.0 / 8.0)


def test_single_link_stretch_full_graph_barely_stretches():
    # FullyConnected(4): each cut pair detours 1 -> 2 hops, all other
    # pairs keep their direct link.
    s = single_link_stretch(FullyConnected(4))
    assert 1.0 < s < 1.2


def test_expected_stretch_linearises_single_failure():
    t = Torus((1, 4))
    s1 = single_link_stretch(t)
    assert expected_stretch(t, 0.0) == 1.0
    assert expected_stretch(t, 2.0) == pytest.approx(1 + 2 * (s1 - 1))
    with pytest.raises(ValueError, match="k must be"):
        expected_stretch(t, -1.0)


def test_torus_stretch_bound_dominates_exact():
    t = Torus((3, 3))
    assert torus_stretch_bound(t, 1.0) == pytest.approx(1 + 2 / 18)
    assert torus_stretch_bound(t, 1.0) >= expected_stretch(t, 1.0) - 1e-9


# -- fat-tree degrade --------------------------------------------------------------


def test_fattree_degrade_harmonic_in_surviving_uplinks():
    ft = TwoStageFatTree(8, nodes_per_edge=4, uplinks_per_edge=2)
    # 2 edge switches x 2 uplinks = 4 core uplinks
    assert fattree_degrade(ft, 0) == 1.0
    assert fattree_degrade(ft, 2) == pytest.approx(2.0)
    assert fattree_degrade(ft, 3) == pytest.approx(4.0)
    assert fattree_degrade(ft, 4) == math.inf


def test_fattree_degrade_rejects_non_fattree():
    with pytest.raises(ValueError, match="not a fat tree"):
        fattree_degrade(Torus((2, 2)), 1)


# -- isolation ---------------------------------------------------------------------


def test_isolation_probability_hypergeometric():
    # 4-ring: L=4 links, every node degree 2.  k=2 failures: each node is
    # isolated iff exactly its 2 links fail -> 4 * C(2,0)/C(4,2) = 4/6.
    t = Torus((1, 4))
    assert isolation_probability(t, 0) == 0.0
    assert isolation_probability(t, 1) == 0.0  # degree 2 > 1
    assert isolation_probability(t, 2) == pytest.approx(4 / 6)
    assert isolation_probability(t, 4) == 1.0  # clamped union bound
    assert expected_availability(t, 2) == pytest.approx(1 - 4 / 6)
    with pytest.raises(ValueError, match="k must be"):
        isolation_probability(t, -1)


# -- slowdown composition ----------------------------------------------------------


def test_time_shared_slowdown_is_harmonic_not_arithmetic():
    # f of wall time at 4x: rate-weighted harmonic mean, strictly below
    # the arithmetic 1 + f*(inflation-1) that double-counts the long
    # degraded windows (length-biased sampling).
    s = time_shared_slowdown(0.5, 4.0)
    assert s == pytest.approx(1.0 / (0.5 + 0.5 / 4.0))
    assert s < 1 + 0.5 * 3.0
    assert time_shared_slowdown(0.0, 10.0) == 1.0
    assert time_shared_slowdown(1.0, 10.0) == pytest.approx(10.0)


def test_expected_slowdown_amdahl_over_comm():
    assert expected_slowdown(0.0, 5.0) == 1.0
    assert expected_slowdown(0.25, 5.0) == pytest.approx(2.0)
    with pytest.raises(ValueError, match="comm_fraction"):
        expected_slowdown(1.5, 2.0)
    with pytest.raises(ValueError, match="inflation"):
        expected_slowdown(0.5, 0.5)


def test_degraded_collective_inflation_exact_ratio():
    t = Torus((2, 4))
    nbytes = 1 << 26
    L, o, G = 100e-9, 300e-9, 1 / 12.5e9
    d = t.diameter()
    healthy = L * d + 2 * o + G * nbytes
    faulty = (L * d + 2 * o + G * nbytes * 4.0) / (1 - 0.05)
    got = degraded_collective_inflation(t, nbytes)
    assert got == pytest.approx(faulty / healthy)
    assert got > 4.0 * 0.9  # bandwidth-bound at 64 MiB: near the derate
    with pytest.raises(ValueError, match="degrade_factor"):
        degraded_collective_inflation(t, nbytes, degrade_factor=0.5)
    with pytest.raises(ValueError, match="loss_prob"):
        degraded_collective_inflation(t, nbytes, loss_prob=1.0)


def test_expected_collective_inflation_limits_and_monotonicity():
    t = Torus((2, 4))
    nbytes = 1 << 24
    # vanishing failure rate -> no inflation
    assert expected_collective_inflation(
        t, nbytes, link_mtbf_s=1e12, repair_s=1.0
    ) == pytest.approx(1.0)
    lo = expected_collective_inflation(t, nbytes, link_mtbf_s=100.0, repair_s=1.0)
    hi = expected_collective_inflation(t, nbytes, link_mtbf_s=10.0, repair_s=1.0)
    assert 1.0 < lo < hi
    with pytest.raises(ValueError, match="unknown network kind"):
        expected_collective_inflation(
            t, nbytes, link_mtbf_s=10.0, repair_s=1.0, split=(("node", 1.0),)
        )
