"""Report generator (fast sections only)."""

from repro.exps.report import _SECTIONS, generate_report


def test_sections_cover_all_artifacts():
    ids = [s for s, _, _ in _SECTIONS]
    for required in (
        "fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
        "table3", "table4", "ext1", "ext2", "ext3", "ext4",
        "abl1", "abl2", "abl3", "abl4",
    ):
        assert required in ids


def test_generate_report_subset(tmp_path):
    out = tmp_path / "report.md"
    text = generate_report(
        out_path=str(out), sections=["abl3", "abl4"], echo=False
    )
    assert out.read_text() == text
    assert "# EXPERIMENTS" in text
    assert "ABL3" in text and "ABL4" in text
    assert "fig7" not in text.split("## ")[0]  # header only mentions settings
    # skipped sections are absent
    assert "Table III" not in text


def test_generate_report_survives_failures(monkeypatch, tmp_path):
    import repro.exps.report as report_mod

    def boom(section, seed, reps):
        def inner():
            raise RuntimeError("kaput")

        return inner

    monkeypatch.setattr(report_mod, "_runner", boom)
    text = generate_report(
        out_path=None, sections=["abl3"], echo=False
    )
    assert "FAILED: kaput" in text
