"""Extension experiments: all levels, level selection, architectural DSE."""

import pytest

from repro.exps.extensions import (
    architectural_dse,
    all_levels_full_system,
    format_ext1,
    format_ext2,
    format_ext3,
    level_selection_sweep,
)


@pytest.fixture(scope="module")
def ext_ctx(request):
    """All-levels context over a light GP budget (module-scoped)."""
    from repro.core.workflow import ModelDevelopment, build_archbeo
    from repro.exps.casestudy import CaseStudyContext
    from repro.exps.extensions import ALL_LEVEL_KERNELS
    from repro.models.symreg import GPConfig
    from repro.testbed.quartz import make_quartz

    machine = make_quartz()
    dev = ModelDevelopment(
        machine,
        ALL_LEVEL_KERNELS,
        samples_per_point=6,
        gp_config=GPConfig(population_size=80, generations=10, n_genes=3),
        seed=2,
    ).run()
    return CaseStudyContext(
        machine=machine, dev=dev, archbeo=build_archbeo(machine, dev.models()), seed=2
    )


def test_ext1_all_levels(ext_ctx):
    rows = all_levels_full_system(ext_ctx, ranks=8, epr=5, timesteps=40, reps=2)
    assert [r.level for r in rows] == [1, 2, 3, 4]
    # instance costs ordered L1 < L2 (Table I overhead trend)
    by = {r.level: r for r in rows}
    assert by[1].ckpt_instance_cost < by[2].ckpt_instance_cost
    assert all(r.simulated_total > 0 and r.measured_total > 0 for r in rows)
    assert "EXT1" in format_ext1(rows)


def test_ext2_level_selection(ext_ctx):
    rows = level_selection_sweep(
        ext_ctx, ranks=8, epr=5, mtbfs=(1e9, 1e3, 10.0)
    )
    assert len(rows) == 3
    best = [r.best_level for r in rows]
    # reliability degrades left to right; chosen level never decreases
    assert all(b2 >= b1 for b1, b2 in zip(best, best[1:]))
    assert best[0] == 1
    assert "EXT2" in format_ext2(rows)


def test_ext3_architectural_dse(ext_ctx):
    rows = architectural_dse(ext_ctx, ranks=8, epr=5, timesteps=20, period=10, reps=2)
    archs = {r.architecture for r in rows}
    assert archs == {"fat-tree", "dragonfly"}
    # both architectures show the FT-cost ordering
    for arch in archs:
        mine = {r.scenario: r.total for r in rows if r.architecture == arch}
        assert mine["no_ft"] < mine["l1"] < mine["l1+l2"]
    assert "EXT3" in format_ext3(rows)


def test_ext4_hardware_dse(ext_ctx):
    from repro.exps.extensions import format_ext4, hardware_upgrade_dse

    rows = hardware_upgrade_dse(
        ext_ctx, ranks=8, epr=10, timesteps=40, period=10,
        nvram_speedup=4.0, reps=2,
    )
    by = {(r.machine, r.scenario): r for r in rows}
    # the upgrade leaves the no-FT runtime unchanged but cuts ckpt time
    assert by[("quartz+nvram", "no_ft")].total == pytest.approx(
        by[("quartz", "no_ft")].total, rel=0.02
    )
    for s in ("l1", "l1+l2"):
        assert by[("quartz+nvram", s)].ckpt_time < by[("quartz", s)].ckpt_time
        assert by[("quartz+nvram", s)].total < by[("quartz", s)].total
    assert "EXT4" in format_ext4(rows)


def test_ext5_level_fault_dse_smoke(ext_ctx):
    from repro.exps.extensions import format_ext5, level_fault_dse

    rows = level_fault_dse(
        ext_ctx, ranks=8, epr=5, timesteps=60, period=10,
        node_mtbf_s=1.5, software_fraction=0.5, reps=2,
    )
    assert [r.level for r in rows] == [1, 2, 3, 4]
    assert all(r.mean_total > 0 for r in rows)
    assert "EXT5" in format_ext5(rows)


def _run_with_scheduled_fault(ext_ctx, level, kind, t_fault, recovery=0.02):
    from repro.core.ft import scenario_levels
    from repro.core.simulator import BESSTSimulator
    from repro.apps.lulesh import lulesh_appbeo

    ext_ctx.archbeo.recovery_time_s = recovery
    app = lulesh_appbeo(timesteps=20, scenario=scenario_levels([level], period=5))
    sim = BESSTSimulator(
        app, ext_ctx.archbeo, nranks=8, params={"epr": 5}, seed=0,
        monte_carlo=False,
    )
    sim.engine.schedule(t_fault, lambda ev: sim.inject_fault(0, kind=kind))
    return sim.run(max_events=10_000_000)


def test_node_fault_level_semantics(ext_ctx):
    """Level-aware recovery, deterministically: a node loss mid-run is
    catastrophic for an L1-only scenario (restart from scratch) but
    recoverable from the last checkpoint for an L2 scenario; a software
    crash is recoverable at both levels."""
    def fault_after_second_ckpt(level):
        """A fault instant safely between that level's 2nd and 3rd
        checkpoint commits (each level's checkpoints cost differently)."""
        clean = _run_with_scheduled_fault(ext_ctx, level, "software", t_fault=1e9)
        marks = clean.checkpoint_marks()
        assert len(marks) == 4  # 20 ts / period 5
        return marks[1][0] + 0.2 * (marks[2][0] - marks[1][0])

    t1 = fault_after_second_ckpt(1)
    t2 = fault_after_second_ckpt(2)

    l1_node = _run_with_scheduled_fault(ext_ctx, 1, "node", t1)
    l1_soft = _run_with_scheduled_fault(ext_ctx, 1, "software", t1)
    l2_node = _run_with_scheduled_fault(ext_ctx, 2, "node", t2)

    assert l1_node.rollbacks == l1_soft.rollbacks == l2_node.rollbacks == 1
    # L1 + node loss: everything up to the fault is lost
    assert l1_node.wasted_time > t1 * 0.9
    # L1 + software crash: only the work since the last checkpoint
    assert l1_soft.wasted_time < l1_node.wasted_time * 0.7
    # L2 + node loss: recoverable from its checkpoint — the lost span is
    # far below the full progress at the fault instant
    assert l2_node.wasted_time < t2 * 0.8
    assert l1_soft.total_time < l1_node.total_time


def test_unknown_fault_kind_rejected(ext_ctx):
    from repro.core.ft import NO_FT
    from repro.core.simulator import BESSTSimulator
    from repro.apps.lulesh import lulesh_appbeo
    import pytest as _pytest

    app = lulesh_appbeo(timesteps=1, scenario=NO_FT)
    sim = BESSTSimulator(app, ext_ctx.archbeo, nranks=8, params={"epr": 5})
    with _pytest.raises(ValueError):
        sim.inject_fault(0, kind="cosmic")


def test_ext6_abft_vs_checkpointing():
    from repro.exps.extensions import abft_vs_checkpointing, format_ext6

    rows = abft_vs_checkpointing(sizes=(64, 1024))
    assert len(rows) == 2
    # overhead shrinks with n; SDC exposure unchanged by C/R, cut by ABFT
    assert rows[0].abft_overhead_pct > rows[1].abft_overhead_pct
    for r in rows:
        assert r.p_bad_abft < r.p_bad_plain
    assert "EXT6" in format_ext6(rows)


def test_ext7_granularity():
    from repro.exps.extensions import format_ext7, granularity_ablation

    rows = granularity_ablation(ranks=8, epr=5, timesteps=30, reps=2, seed=3)
    by = {r.granularity: r for r in rows}
    assert set(by) == {"coarse", "fine"}
    assert by["fine"].kernels == 2 and by["coarse"].kernels == 1
    # both granularities land in the exploratory accuracy band
    assert all(r.percent_error < 40.0 for r in rows)
    assert by["fine"].fit_seconds > 0
    assert "EXT7" in format_ext7(rows)


def test_ext8_sdc_verification_dse():
    from repro.exps.extensions import (
        ext8_analytic_period,
        format_ext8,
        sdc_verification_dse,
    )

    rows = sdc_verification_dse(
        verify_periods=(0, 2, 10), reps=4, timesteps=40, seed=1
    )
    by = {r.verify_period: r for r in rows}
    assert set(by) == {0, 2, 10}
    # without verification nothing is detected and some runs finish wrong
    assert by[0].mean_verify == 0.0 and by[0].sdc_detected == 0.0
    assert by[0].wrong_result_rate > 0.0
    # frequent verification pays kernel time but detects strikes and
    # suppresses wrong results
    assert by[2].mean_verify > by[10].mean_verify > 0.0
    assert by[2].sdc_detected > 0.0
    assert by[2].wrong_result_rate < by[0].wrong_result_rate
    assert ext8_analytic_period() > 0.0
    out = format_ext8(rows)
    assert "EXT8" in out and "analytic two-error-type optimum" in out


def test_ext8_is_deterministic():
    from repro.exps.extensions import sdc_verification_dse

    a = sdc_verification_dse(verify_periods=(5,), reps=2, timesteps=30, seed=4)
    b = sdc_verification_dse(verify_periods=(5,), reps=2, timesteps=30, seed=4)
    assert a == b


def test_ext9_network_fault_dse():
    from repro.exps.extensions import (
        ext9_analytic_slowdown,
        format_ext9,
        network_fault_dse,
    )

    rows = network_fault_dse(
        link_mtbfs=(8.0, 48.0), ckpt_periods=(5,), timesteps=30, reps=4, seed=0
    )
    by = {r.link_mtbf_s: r for r in rows}
    assert set(by) == {8.0, 48.0}
    # more frequent link faults -> more injected faults, more slowdown
    assert by[8.0].net_faults > by[48.0].net_faults
    assert by[8.0].slowdown > by[48.0].slowdown >= 1.0
    assert by[8.0].retransmits > 0.0
    for r in rows:
        # the closed form must land within the documented band: half the
        # larger excess slowdown, floored at 0.1x for the quiet points
        ex_sim = r.slowdown - 1.0
        ex_an = r.analytic_slowdown - 1.0
        tol = max(0.5 * max(ex_sim, ex_an), 0.1)
        assert abs(ex_sim - ex_an) <= tol, (r.link_mtbf_s, ex_sim, ex_an)
    out = format_ext9(rows)
    assert "EXT9" in out and "analytic" in out


def test_ext9_is_deterministic():
    from repro.exps.extensions import network_fault_dse

    a = network_fault_dse(
        link_mtbfs=(16.0,), ckpt_periods=(5,), timesteps=15, reps=2, seed=3
    )
    b = network_fault_dse(
        link_mtbfs=(16.0,), ckpt_periods=(5,), timesteps=15, reps=2, seed=3
    )
    assert a == b


def test_ext9_analytic_slowdown_monotone_in_mtbf():
    from repro.exps.extensions import ext9_analytic_slowdown

    hi = ext9_analytic_slowdown(8.0, 5, 40, baseline_total=12.0)
    lo = ext9_analytic_slowdown(48.0, 5, 40, baseline_total=12.0)
    assert hi > lo > 1.0
