"""Experiment drivers produce the right shapes (light configurations)."""

import numpy as np
import pytest

from repro.exps.fig5_6 import (
    PREDICT_EPR,
    PREDICT_RANKS,
    format_fig5,
    format_fig6,
    instance_scaling,
)
from repro.exps.table3 import PAPER_TABLE3, format_table3, instance_model_mape
from repro.exps.fig7_8 import full_system_curves, format_fig7_8
from repro.exps.table4 import format_table4, full_system_mape
from repro.exps.fig9 import format_fig9, overhead_prediction
from repro.exps.fig4 import fault_assumption_cases, format_fig4
from repro.exps.ablations import (
    analytical_baselines,
    engine_ablation,
    format_abl1,
    format_abl2,
    format_abl3,
    format_abl4,
    modeling_method_ablation,
    youngdaly_ablation,
)


def test_instance_scaling_rows(ctx):
    rows = instance_scaling(ctx, validation_samples=3)
    # 3 kernels x (25 validation + 5 + 5 prediction)
    assert len(rows) == 3 * 35
    pred = [r for r in rows if r.is_prediction]
    assert all(r.epr == PREDICT_EPR or r.ranks == PREDICT_RANKS for r in pred)
    assert all(r.predicted > 0 for r in rows)
    text5, text6 = format_fig5(rows), format_fig6(rows)
    assert "Fig. 5" in text5 and "1331" in text6


def test_checkpoint_curves_above_timestep(ctx):
    rows = instance_scaling(ctx, validation_samples=3)
    by = {(r.kernel, r.epr, r.ranks): r.predicted for r in rows}
    for epr in (10, 25):
        for ranks in (64, 1000):
            step = by[("lulesh_timestep", epr, ranks)]
            assert by[("fti_l1", epr, ranks)] > step
            assert by[("fti_l2", epr, ranks)] > step


def test_table3_reports(ctx):
    reports = instance_model_mape(ctx, validation_samples=3)
    assert set(reports) == set(PAPER_TABLE3)
    for rep in reports.values():
        assert len(rep.rows) == 25
        assert rep.mape < 60.0
    # the paper's qualitative finding: timestep error < checkpoint error
    assert reports["lulesh_timestep"].mape < max(
        reports["fti_l1"].mape, reports["fti_l2"].mape
    )
    assert "paper" in format_table3(reports)


def test_fig7_curves(ctx):
    curves = full_system_curves(8, epr=5, ctx=ctx, timesteps=40, reps=2)
    assert [c.scenario for c in curves] == ["no_ft", "l1", "l1+l2"]
    noft, l1, l12 = curves
    assert noft.simulated_total_mean < l1.simulated_total_mean < l12.simulated_total_mean
    assert len(l1.checkpoint_marks) == 1  # 40 ts / period 40
    assert len(l12.checkpoint_marks) == 2
    assert noft.simulated_curve.shape == (40,)
    assert np.all(np.diff(noft.simulated_curve) > 0)
    assert "Fig." in format_fig7_8(curves)


def test_table4_reports(ctx):
    reports = full_system_mape(
        ctx, eprs=(5, 10), ranks=(8,), timesteps=40, reps=2, measured_reps=1
    )
    assert set(reports) == {"no_ft", "l1", "l1+l2"}
    for rep in reports.values():
        assert len(rep.rows) == 2
        assert rep.mape < 80.0
    assert "Table IV" in format_table4(reports)


def test_fig9_matrix(ctx):
    pct = overhead_prediction(ctx, eprs=(5, 10), ranks=(64,), timesteps=40, reps=2)
    assert pct[(5, 64, "no_ft")] == pytest.approx(100.0)
    assert pct[(10, 64, "no_ft")] == pytest.approx(100.0)
    for e in (5, 10):
        assert pct[(e, 64, "l1")] > 100.0
        assert pct[(e, 64, "l1+l2")] > pct[(e, 64, "l1")]
    assert "overhead" in format_fig9(pct, eprs=(5, 10), ranks=(64,))


def test_fig4_cases(ctx):
    results = fault_assumption_cases(
        ctx, ranks=8, epr=5, timesteps=60, ckpt_period=10,
        node_mtbf_s=2.0, recovery_time_s=0.02, reps=3,
    )
    by = {r.case: r for r in results}
    assert set(by) == {1, 2, 3, 4}
    assert by[1].mean_faults == 0 and by[3].mean_faults == 0
    assert by[3].mean_total > by[1].mean_total          # FT overhead
    assert by[2].mean_total >= by[1].mean_total         # faults hurt
    if by[2].mean_faults >= 1 and by[4].mean_faults >= 1:
        assert by[2].mean_wasted > by[4].mean_wasted    # C/R bounds damage
    assert "case" in format_fig4(results)


def test_abl1_modeling_methods(ctx):
    table = modeling_method_ablation(ctx)
    assert set(table) == {"lulesh_timestep", "fti_l1", "fti_l2"}
    for row in table.values():
        assert row["symreg"] >= 0 and row["lut"] >= 0
    assert "symreg" in format_abl1(table)


def test_abl2_youngdaly(ctx):
    res = youngdaly_ablation(
        ctx, periods=(5, 20, 80), ranks=8, epr=5, timesteps=80,
        node_mtbf_s=8.0, reps=2,
    )
    assert len(res.points) == 3
    assert res.best_period in (5, 20, 80)
    assert res.daly_period_timesteps > 0
    assert "Daly" in format_abl2(res)


def test_abl3_analytical():
    rows = analytical_baselines(counts=(1, 64, 4096))
    assert len(rows) == 3
    # fault-free Amdahl dominates the FT-aware variants
    for r in rows:
        assert r["amdahl"] >= r["amdahl_ft"] * 0.999
    assert "Amdahl" in format_abl3(rows)


def test_abl4_engines():
    res = engine_ablation(n_ring=6, laps=20)
    assert res["parallel_2"]["identical"]
    assert res["parallel_4"]["identical"]
    assert res["sequential"]["events"] == res["parallel_2"]["events"]
    assert "sequential" in format_abl4(res)
