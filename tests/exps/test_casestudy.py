"""Case-study context: caching, simulation, measurement plumbing."""

import pytest

from repro.core.ft import NO_FT, scenario_l1
from repro.exps.casestudy import CASE_EPRS, CASE_RANKS, case_scenarios, get_context


def test_constants_match_table2():
    assert CASE_EPRS == (5, 10, 15, 20, 25)
    assert CASE_RANKS == (8, 64, 216, 512, 1000)
    names = [s.name for s in case_scenarios()]
    assert names == ["no_ft", "l1", "l1+l2"]


def test_context_is_cached(ctx):
    again = get_context(seed=1, samples_per_point=6, gp_config=None)
    assert again is not ctx  # different options -> different context
    from tests.exps.conftest import _FAST_GP

    same = get_context(seed=1, samples_per_point=6, gp_config=_FAST_GP)
    assert same is ctx


def test_context_has_fitted_models(ctx):
    assert set(ctx.dev.fitted) == {"lulesh_timestep", "fti_l1", "fti_l2"}
    table = ctx.dev.validation_table()
    assert all(v < 60.0 for v in table.values()), table


def test_simulate_cached_and_plausible(ctx):
    mc1 = ctx.simulate(10, 8, NO_FT, timesteps=20, reps=2)
    mc2 = ctx.simulate(10, 8, NO_FT, timesteps=20, reps=2)
    assert mc1 is mc2
    assert mc1.total_time.mean > 0
    ft = ctx.simulate(10, 8, scenario_l1(5), timesteps=20, reps=2)
    assert ft.total_time.mean > mc1.total_time.mean


def test_measure_run_cached(ctx):
    r1 = ctx.measure_run(10, 8, NO_FT, timesteps=10)
    r2 = ctx.measure_run(10, 8, NO_FT, timesteps=10)
    assert r1 is r2
    assert ctx.measure_mean_total(10, 8, NO_FT, timesteps=10, reps=2) > 0


def test_measure_kernel_mean(ctx):
    v = ctx.measure_kernel_mean("fti_l1", {"epr": 10, "ranks": 64}, nsamples=4)
    truth = ctx.machine.true_mean("fti_l1", {"epr": 10, "ranks": 64})
    assert v == pytest.approx(truth, rel=0.5)
