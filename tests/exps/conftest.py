"""Shared light-weight case-study context for experiment-driver tests.

The real experiments fit three symbolic-regression models over the full
Table II grid (~20 s); tests share one cheaper context (smaller GP budget,
fewer samples) built once per session.
"""

import pytest

from repro.exps.casestudy import get_context
from repro.models.symreg import GPConfig

_FAST_GP = GPConfig(population_size=80, generations=10, n_genes=3)


@pytest.fixture(scope="session")
def ctx():
    return get_context(seed=1, samples_per_point=6, gp_config=_FAST_GP)
