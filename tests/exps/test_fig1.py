"""Fig. 1 driver: CMT-bone on Vulcan (light configuration)."""

import pytest

from repro.exps.fig1 import cmtbone_dse, format_fig1


@pytest.fixture(scope="module")
def points():
    return cmtbone_dse(
        elem_sizes=(5, 10),
        validate_ranks=(16, 128),
        predict_ranks=(4096,),
        elements=16,
        reps=3,
        seed=0,
    )


def test_point_counts(points):
    # 2 elem sizes x (2 validation + 1 prediction)
    assert len(points) == 6
    preds = [p for p in points if p.is_prediction]
    assert len(preds) == 2
    assert all(p.ranks == 4096 for p in preds)


def test_validation_errors_bounded(points):
    errs = [p.percent_error for p in points if p.percent_error is not None]
    assert errs and all(e < 60.0 for e in errs)


def test_bigger_elements_cost_more(points):
    by = {(p.elem_size, p.ranks): p.predicted_mean for p in points}
    assert by[(10, 128)] > by[(5, 128)]


def test_distributions_have_spread(points):
    measured = [p for p in points if not p.is_prediction]
    assert all(p.measured_std > 0 for p in measured)
    assert all(p.predicted_std >= 0 for p in measured)


def test_format(points):
    text = format_fig1(points)
    assert "Vulcan" in text and "MAPE" in text
