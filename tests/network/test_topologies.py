"""Tests for topology structure: fat tree, torus, fully connected."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import FullyConnected, Torus, TwoStageFatTree


# -- fully connected -----------------------------------------------------------


def test_fully_connected_hops():
    t = FullyConnected(4)
    assert t.hop_count(0, 0) == 0
    assert t.hop_count(0, 3) == 2
    assert t.diameter() == 2
    assert t.neighbors(1) == [0, 2, 3]


def test_invalid_num_nodes():
    with pytest.raises(ValueError):
        FullyConnected(0)


def test_node_range_checked():
    t = FullyConnected(3)
    with pytest.raises(IndexError):
        t.hop_count(0, 3)
    with pytest.raises(IndexError):
        t.neighbors(-1)


# -- fat tree --------------------------------------------------------------------


def test_fattree_hop_structure():
    ft = TwoStageFatTree(64, nodes_per_edge=16, uplinks_per_edge=8)
    assert ft.num_edge_switches == 4
    assert ft.hop_count(0, 0) == 0
    assert ft.hop_count(0, 15) == 2  # same edge switch
    assert ft.hop_count(0, 16) == 4  # across core
    assert ft.diameter() == 4


def test_fattree_single_switch_diameter():
    ft = TwoStageFatTree(8, nodes_per_edge=16)
    assert ft.diameter() == 2


def test_fattree_oversubscription():
    ft = TwoStageFatTree(64, nodes_per_edge=32, uplinks_per_edge=16)
    assert ft.oversubscription == 2.0


def test_fattree_neighbors_are_same_switch():
    ft = TwoStageFatTree(40, nodes_per_edge=16)
    nb = ft.neighbors(17)
    assert 17 not in nb
    assert all(ft.edge_switch_of(n) == ft.edge_switch_of(17) for n in nb)
    # last switch is partially filled
    assert ft.neighbors(39) == [32, 33, 34, 35, 36, 37, 38]


def test_fattree_path():
    ft = TwoStageFatTree(64, nodes_per_edge=16)
    assert ft.path(3, 3) == ["n3"]
    assert ft.path(0, 5) == ["n0", "edge0", "n5"]
    assert ft.path(0, 20) == ["n0", "edge0", "core*", "edge1", "n20"]


def test_fattree_invalid_params():
    with pytest.raises(ValueError):
        TwoStageFatTree(10, nodes_per_edge=0)


@given(
    a=st.integers(min_value=0, max_value=95),
    b=st.integers(min_value=0, max_value=95),
)
def test_fattree_hops_symmetric_and_bounded(a, b):
    ft = TwoStageFatTree(96, nodes_per_edge=24, uplinks_per_edge=12)
    assert ft.hop_count(a, b) == ft.hop_count(b, a)
    assert ft.hop_count(a, b) in (0, 2, 4)
    assert (ft.hop_count(a, b) == 0) == (a == b)


# -- torus ----------------------------------------------------------------------


def test_torus_coords_roundtrip():
    t = Torus((2, 3, 4))
    assert t.num_nodes == 24
    for n in range(24):
        assert t.node_at(t.coords(n)) == n


def test_torus_hops_ring_wraparound():
    t = Torus((8,))
    assert t.hop_count(0, 1) == 1
    assert t.hop_count(0, 7) == 1  # wraps
    assert t.hop_count(0, 4) == 4
    assert t.diameter() == 4


def test_torus_multidim_hops():
    t = Torus.cube(4, 3)
    a = t.node_at((0, 0, 0))
    b = t.node_at((1, 2, 3))
    assert t.hop_count(a, b) == 1 + 2 + 1  # wrap on last axis
    assert t.diameter() == 6


def test_torus_neighbors_count():
    t = Torus.cube(4, 2)
    assert len(t.neighbors(0)) == 4
    t5 = Torus((4, 4, 4, 4, 2))  # BG/Q-like; size-2 dims give 1 neighbor
    assert len(t5.neighbors(0)) == 2 * 4 + 1


def test_torus_dim1_ignored_in_neighbors():
    t = Torus((1, 4))
    assert len(t.neighbors(0)) == 2


def test_torus_validation():
    with pytest.raises(ValueError):
        Torus(())
    with pytest.raises(ValueError):
        Torus((0, 2))
    t = Torus((2, 2))
    with pytest.raises(ValueError):
        t.node_at((1,))
    with pytest.raises(IndexError):
        t.node_at((2, 0))


@settings(max_examples=40)
@given(
    a=st.integers(min_value=0, max_value=63),
    b=st.integers(min_value=0, max_value=63),
    c=st.integers(min_value=0, max_value=63),
)
def test_torus_hop_metric_properties(a, b, c):
    t = Torus.cube(4, 3)
    # symmetry, identity, triangle inequality
    assert t.hop_count(a, b) == t.hop_count(b, a)
    assert (t.hop_count(a, b) == 0) == (a == b)
    assert t.hop_count(a, c) <= t.hop_count(a, b) + t.hop_count(b, c)


def test_to_networkx_neighbor_graph():
    t = Torus.cube(3, 2)
    g = t.to_networkx()
    assert g.number_of_nodes() == 9
    # 2D 3-ary torus: each node has 4 neighbors -> 18 edges
    assert g.number_of_edges() == 18


# -- node-range diagnostics (all topologies) -------------------------------------


def _all_topologies():
    from repro.network.dragonfly import Dragonfly

    return [
        FullyConnected(4),
        Torus((2, 2)),
        TwoStageFatTree(4, nodes_per_edge=2, uplinks_per_edge=1),
        Dragonfly(4, nodes_per_router=2, routers_per_group=1),
    ]


@pytest.mark.parametrize("topo", _all_topologies(), ids=lambda t: type(t).__name__)
def test_negative_node_id_names_offender_and_range(topo):
    with pytest.raises(IndexError, match=r"node -1 out of range \[0, 4\)"):
        topo.hop_count(-1, 0)
    with pytest.raises(IndexError, match=r"node -1 out of range"):
        topo.neighbors(-1)


@pytest.mark.parametrize("topo", _all_topologies(), ids=lambda t: type(t).__name__)
def test_node_id_equal_to_num_nodes_rejected(topo):
    n = topo.num_nodes
    with pytest.raises(IndexError, match=rf"node {n} out of range \[0, {n}\)"):
        topo.hop_count(0, n)
    with pytest.raises(IndexError, match=rf"node {n} out of range"):
        topo.average_hops([(0, n)])


def test_node_range_error_is_both_index_and_value_error():
    from repro.network import NodeRangeError

    t = FullyConnected(3)
    with pytest.raises(NodeRangeError):
        t.hop_count(0, 3)
    with pytest.raises(ValueError):  # historically IndexError; now both
        t.hop_count(0, 3)
    with pytest.raises(IndexError):
        t.hop_count(0, 3)


def test_single_node_topologies():
    fc = FullyConnected(1)
    assert fc.hop_count(0, 0) == 0
    assert fc.neighbors(0) == []
    with pytest.raises(IndexError, match=r"node 1 out of range \[0, 1\)"):
        fc.hop_count(0, 1)
    t = Torus((1, 1))
    assert t.hop_count(0, 0) == 0
    assert t.neighbors(0) == []
