"""Dragonfly topology."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network.dragonfly import Dragonfly
from repro.network import LogGPModel


def make(n=256, npr=4, rpg=4):
    return Dragonfly(n, nodes_per_router=npr, routers_per_group=rpg)


def test_structure():
    d = make(256, 4, 4)  # 4 nodes/router, 4 routers/group -> 16 nodes/group
    assert d.num_routers == 64
    assert d.num_groups == 16
    assert d.nodes_per_group == 16


def test_hop_counts():
    d = make(256, 4, 4)
    assert d.hop_count(0, 0) == 0
    assert d.hop_count(0, 1) == 2      # same router
    assert d.hop_count(0, 4) == 3      # same group, different router
    assert d.hop_count(0, 100) == 5    # different group
    assert d.diameter() == 5


def test_single_group_diameter():
    d = Dragonfly(8, nodes_per_router=4, routers_per_group=4)
    assert d.num_groups == 1
    assert d.diameter() == 3
    d1 = Dragonfly(4, nodes_per_router=4, routers_per_group=4)
    assert d1.diameter() == 2


def test_neighbors_same_router():
    d = make(64, 4, 4)
    assert d.neighbors(0) == [1, 2, 3]
    assert d.neighbors(5) == [4, 6, 7]


def test_oversubscription():
    d = make(256, 16, 8)
    assert d.oversubscription == pytest.approx(128 / 8)


def test_validation():
    with pytest.raises(ValueError):
        Dragonfly(10, nodes_per_router=0)


def test_loggp_uses_dragonfly_taper():
    d = make(256, 16, 8)
    m = LogGPModel(d)
    assert m.contention_factor == d.oversubscription
    near = m.p2p_time(0, 1, 10**6)
    far = m.p2p_time(0, 200, 10**6)
    assert far > near


@given(
    a=st.integers(min_value=0, max_value=255),
    b=st.integers(min_value=0, max_value=255),
)
def test_hop_metric_properties(a, b):
    d = make(256, 4, 4)
    assert d.hop_count(a, b) == d.hop_count(b, a)
    assert (d.hop_count(a, b) == 0) == (a == b)
    assert d.hop_count(a, b) in (0, 2, 3, 5)
