"""Tests for LogGP point-to-point and collective cost models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network import (
    CollectiveCostModel,
    FullyConnected,
    LogGPModel,
    TwoStageFatTree,
)


def make_model(**kw):
    defaults = dict(
        latency_per_hop=1e-6,
        overhead=2e-6,
        bytes_per_second=1e9,
    )
    defaults.update(kw)
    topo = kw.pop("topology", None) or TwoStageFatTree(
        64, nodes_per_edge=16, uplinks_per_edge=8
    )
    defaults.pop("topology", None)
    return LogGPModel(topo, **defaults)


def test_p2p_zero_bytes_is_latency_only():
    m = make_model()
    t = m.p2p_time(0, 1, 0)
    assert t == pytest.approx(2 * 1e-6 + 2 * 2e-6)


def test_p2p_scales_linearly_with_size():
    m = make_model()
    t1 = m.p2p_time(0, 1, 10_000)
    t2 = m.p2p_time(0, 1, 20_000)
    base = m.p2p_time(0, 1, 0)
    assert (t2 - base) == pytest.approx(2 * (t1 - base))


def test_p2p_more_hops_cost_more():
    m = make_model()
    near = m.p2p_time(0, 1, 1_000_000)  # same edge switch
    far = m.p2p_time(0, 32, 1_000_000)  # across core
    assert far > near


def test_contention_derates_core_routes_only():
    m = make_model()
    # fat tree oversubscription = 2; 1 MB across core pays 2x bandwidth
    size = 1_000_000
    near = m.p2p_time(0, 1, size)
    far = m.p2p_time(0, 32, size)
    bw_near = size * m.G
    bw_far = size * m.G * 2
    assert near == pytest.approx(2 * m.L + 2 * m.o + bw_near)
    assert far == pytest.approx(4 * m.L + 2 * m.o + bw_far)


def test_intranode_copy_cheaper():
    m = make_model()
    assert m.p2p_time(5, 5, 10_000) < m.p2p_time(5, 6, 10_000)


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        make_model().p2p_time(0, 1, -1)


def test_parameter_validation():
    topo = FullyConnected(4)
    with pytest.raises(ValueError):
        LogGPModel(topo, latency_per_hop=-1)
    with pytest.raises(ValueError):
        LogGPModel(topo, bytes_per_second=0)
    with pytest.raises(ValueError):
        LogGPModel(topo, contention_factor=0.5)


def test_default_contention_from_topology():
    ft = TwoStageFatTree(64, nodes_per_edge=32, uplinks_per_edge=8)
    m = LogGPModel(ft)
    assert m.contention_factor == 4.0
    fc = FullyConnected(8)
    assert LogGPModel(fc).contention_factor == 1.0


# -- collectives ------------------------------------------------------------------


def test_barrier_scales_logarithmically():
    c = CollectiveCostModel(make_model())
    t8 = c.barrier(8)
    t64 = c.barrier(64)
    assert t64 == pytest.approx(2 * t8)  # log2 64 = 2 * log2 8
    assert c.barrier(1) == 0.0


def test_broadcast_grows_with_ranks_and_size():
    c = CollectiveCostModel(make_model())
    assert c.broadcast(16, 1000) > c.broadcast(4, 1000)
    assert c.broadcast(16, 10_000) > c.broadcast(16, 1000)


def test_allreduce_is_reduce_plus_broadcast():
    c = CollectiveCostModel(make_model())
    assert c.allreduce(32, 4096) == pytest.approx(
        c.reduce(32, 4096) + c.broadcast(32, 4096)
    )


def test_reduce_includes_op_time():
    c = CollectiveCostModel(make_model())
    plain = c.reduce(8, 1000)
    with_op = c.reduce(8, 1000, op_time_per_byte=1e-8)
    assert with_op == pytest.approx(plain + 3 * 1e-8 * 1000)


def test_gather_linear_in_ranks():
    c = CollectiveCostModel(make_model())
    assert c.gather(1, 100) == 0.0
    g9 = c.gather(9, 100)
    g5 = c.gather(5, 100)
    assert g9 > g5


def test_alltoall_rounds():
    c = CollectiveCostModel(make_model())
    assert c.alltoall(1, 100) == 0.0
    assert c.alltoall(5, 100) == pytest.approx(4 * c.p2p.far_time(100))


def test_collectives_validate_ranks():
    c = CollectiveCostModel(make_model())
    for fn in (c.barrier, lambda n: c.broadcast(n, 1), lambda n: c.gather(n, 1)):
        with pytest.raises(ValueError):
            fn(0)


@given(
    nranks=st.integers(min_value=1, max_value=4096),
    nbytes=st.integers(min_value=0, max_value=10**9),
)
def test_collective_times_nonnegative_and_monotone_in_size(nranks, nbytes):
    c = CollectiveCostModel(make_model())
    t = c.broadcast(nranks, nbytes)
    assert t >= 0
    assert c.broadcast(nranks, nbytes + 1024) >= t
