"""Network health overlay: failures, degradation, routing, pricing.

Covers the mutable overlay (:class:`repro.network.health.NetworkHealth`)
and how :class:`~repro.network.commmodel.LogGPModel` prices messages
over it: detour hop inflation, bandwidth de-rate, retransmission delay,
partition detection, and the fat-tree core-routed fallback.
"""

import pickle

import pytest

from repro.network import (
    FullyConnected,
    NetworkHealth,
    NetworkPartitionedError,
    Torus,
    TwoStageFatTree,
    link_count,
)
from repro.network.commmodel import LogGPModel


# -- overlay state -----------------------------------------------------------------


def test_lazy_health_accessor_caches():
    t = Torus((3, 3))
    assert t._health is None
    h = t.health()
    assert isinstance(h, NetworkHealth)
    assert t.health() is h
    assert h.healthy


def test_link_count_matches_endpoint_graph():
    assert link_count(Torus((3, 3))) == 18
    assert link_count(FullyConnected(4)) == 6


def test_fail_and_repair_link_roundtrip():
    t = Torus((3, 3))
    h = t.health()
    base = h.hop_count(0, 1)
    h.fail_link(0, 1)
    assert not h.healthy
    assert h.hop_count(0, 1) > base  # detour
    h.repair_link(0, 1)
    assert h.healthy
    assert h.hop_count(0, 1) == base


def test_fail_nonexistent_link_rejected_with_pair_in_message():
    t = Torus((3, 3))
    with pytest.raises(ValueError, match=r"\(0, 4\) is not a link"):
        t.fail_link(0, 4)  # diagonal: not a torus edge


def test_fail_link_out_of_range_node():
    t = Torus((3, 3))
    with pytest.raises(IndexError, match="out of range"):
        t.fail_link(0, 9)


def test_degrade_link_validation():
    t = Torus((3, 3))
    with pytest.raises(ValueError, match="derate must be >= 1"):
        t.degrade_link(0, 1, derate=0.5)
    with pytest.raises(ValueError, match="loss_prob must be in"):
        t.degrade_link(0, 1, loss_prob=1.0)


def test_repair_link_clears_degradation_too():
    t = Torus((3, 3))
    h = t.health()
    h.degrade_link(0, 1, derate=2.0, loss_prob=0.1)
    assert not h.healthy
    h.repair_link(0, 1)
    assert h.healthy


def test_version_bumps_on_every_mutation():
    h = Torus((3, 3)).health()
    v0 = h.version
    h.fail_link(0, 1)
    h.degrade_link(1, 2, derate=2.0)
    h.fail_node(4)
    h.reset()
    assert h.version == v0 + 4


def test_reset_restores_health():
    t = Torus((3, 3))
    h = t.health()
    h.fail_link(0, 1)
    h.fail_node(4)
    h.degrade_link(1, 2, derate=3.0)
    h.reset()
    assert h.healthy
    assert h.hop_count(0, 1) == 1


# -- routing and partition ---------------------------------------------------------


def test_route_detours_around_failed_link():
    t = Torus((3, 3))
    h = t.health()
    assert h.route(0, 1) == [0, 1]
    h.fail_link(0, 1)
    path = h.route(0, 1)
    assert path[0] == 0 and path[-1] == 1 and len(path) > 2
    assert h.hop_count(0, 1) == 2


def test_route_quality_tracks_worst_derate_and_combined_loss():
    t = Torus((1, 4))  # ring 0-1-2-3
    h = t.health()
    h.fail_link(0, 3)  # force the 0-1-2 route
    h.degrade_link(0, 1, derate=2.0, loss_prob=0.1)
    h.degrade_link(1, 2, derate=4.0, loss_prob=0.1)
    hops, derate, loss = h.route_quality(0, 2)
    assert hops == 2
    assert derate == 4.0  # bottleneck link bounds throughput
    assert loss == pytest.approx(1 - 0.9 * 0.9)


def test_is_partitioned_requires_total_cut():
    t = Torus((1, 4))  # ring: 2-edge-connected
    h = t.health()
    h.fail_link(0, 1)
    assert not h.is_partitioned(0, 1)  # the long way round survives
    h.fail_link(0, 3)
    assert h.is_partitioned(0, 1)  # node 0 fully cut off
    assert h.route(0, 1) is None


def test_failed_node_is_partitioned_from_everyone_and_itself():
    t = Torus((3, 3))
    h = t.health()
    h.fail_node(4)
    assert h.is_partitioned(4, 0)
    assert h.is_partitioned(0, 4)
    assert h.is_partitioned(4, 4)  # isolated even from itself
    assert not h.is_partitioned(0, 8)  # others route around
    h.repair_node(4)
    assert not h.is_partitioned(4, 0)


def test_group_partitioned_on_ring_cut():
    t = Torus((1, 4))
    h = t.health()
    assert not h.group_partitioned([0, 1, 2, 3])
    h.fail_link(0, 1)
    h.fail_link(2, 3)  # ring cut into {1,2} and {3,0}
    assert h.group_partitioned([0, 1, 2, 3])
    assert not h.group_partitioned([1, 2])
    assert not h.group_partitioned([0, 3])


def test_group_partitioned_empty_and_singleton():
    h = Torus((3, 3)).health()
    assert not h.group_partitioned([])
    assert not h.group_partitioned([5])
    h.fail_node(5)
    assert h.group_partitioned([5])


def test_fattree_cross_switch_pairs_never_partitioned():
    # The fat-tree endpoint graph only carries same-edge-switch peers;
    # cross-switch pairs route through the (untracked) core and must not
    # be reported partitioned.
    ft = TwoStageFatTree(8, nodes_per_edge=4, uplinks_per_edge=2)
    h = ft.health()
    assert not h.baseline_connected(0, 4)
    assert not h.is_partitioned(0, 4)
    h.fail_link(0, 1)
    assert not h.is_partitioned(0, 4)
    # ... but a dead endpoint is partitioned from everyone.
    h.fail_node(0)
    assert h.is_partitioned(0, 4)


def test_aggregate_penalty_counts_failed_links_once():
    t = Torus((3, 3))
    h = t.health()
    assert h.aggregate_penalty() == (1.0, 1.0, 0.0)
    h.fail_link(4, 5)
    h.fail_node(4)  # node 4's 4 links go down, one already counted
    stretch, derate, loss = h.aggregate_penalty()
    assert stretch == pytest.approx(1.0 + 2.0 * 4 / 18)
    h.degrade_link(0, 1, derate=3.0, loss_prob=0.2)
    _, derate, loss = h.aggregate_penalty()
    assert derate == 3.0 and loss == 0.2


def test_overlay_pickles_and_rebuilds_caches():
    t = Torus((3, 3))
    h = t.health()
    h.fail_link(0, 1)
    h.degrade_link(1, 2, derate=2.0, loss_prob=0.1)
    h.route(0, 1)  # populate caches
    h2 = pickle.loads(pickle.dumps(h))
    assert h2.failed_links == h.failed_links
    assert h2.degraded == h.degraded
    assert h2.route(0, 1) == h.route(0, 1)
    assert h2.aggregate_penalty() == h.aggregate_penalty()


# -- LogGP pricing over the overlay ------------------------------------------------


def test_p2p_time_unchanged_by_healthy_overlay():
    t = Torus((3, 3))
    m = LogGPModel(t)
    before = m.p2p_time(0, 1, 1 << 20)
    t.health()  # attach healthy overlay
    assert m.p2p_time(0, 1, 1 << 20) == before
    assert m.stats == {"reroutes": 0.0, "retransmits": 0.0}


def test_reroute_inflates_hops_and_counts():
    t = Torus((3, 3))
    m = LogGPModel(t)
    base = m.p2p_time(0, 1, 1 << 20)
    t.fail_link(0, 1)
    assert m.p2p_time(0, 1, 1 << 20) > base
    assert m.stats["reroutes"] == 1.0


def test_contention_from_actual_route_used():
    # A healthy-2-hop pair detoured past 2 hops pays the oversubscription
    # contention factor computed from the route actually used.
    t = Torus((1, 8))
    m = LogGPModel(t, contention_factor=3.0)
    n = 1 << 20
    healthy = m.p2p_time(0, 2, n)  # 2 hops: no contention
    t.fail_link(1, 2)
    detoured = m.p2p_time(0, 2, n)  # 6 hops the long way: contended
    assert healthy == pytest.approx(m.L * 2 + 2 * m.o + m.G * n)
    assert detoured == pytest.approx(m.L * 6 + 2 * m.o + m.G * n * 3.0)


def test_degraded_link_derates_bandwidth_and_adds_retransmits():
    t = Torus((1, 4))
    m = LogGPModel(t, retransmit_timeout=1e-3)
    n = 1 << 20
    base = m.p2p_time(0, 1, n)
    t.degrade_link(0, 1, derate=2.0, loss_prob=0.5)
    faulty = m.p2p_time(0, 1, n)
    degraded = m.L * 1 + 2 * m.o + m.G * n * 2.0
    assert faulty == pytest.approx(degraded * 2.0 + 1.0 * 1e-3)  # 2 tries
    assert m.stats["retransmits"] == pytest.approx(1.0)
    assert faulty > base


def test_partitioned_pair_raises_with_endpoints_in_message():
    t = Torus((1, 4))
    t.fail_link(0, 1)
    t.fail_link(0, 3)
    m = LogGPModel(t)
    with pytest.raises(
        NetworkPartitionedError, match="from node 0 to node 1"
    ):
        m.p2p_time(0, 1, 8)


def test_p2p_penalty_is_faulty_over_healthy_ratio():
    t = Torus((3, 3))
    m = LogGPModel(t)
    assert m.p2p_penalty(0, 1) == pytest.approx(1.0)
    t.degrade_link(0, 1, derate=4.0)
    assert m.p2p_penalty(0, 1) > 1.0
    assert m.p2p_penalty(0, 0) == 1.0


def test_fattree_core_pair_priced_by_aggregate_penalty():
    ft = TwoStageFatTree(8, nodes_per_edge=4, uplinks_per_edge=2)
    m = LogGPModel(ft)
    n = 1 << 20
    base = m.p2p_time(0, 4, n)  # cross-switch, healthy
    ft.degrade_link(0, 1, derate=4.0)  # same-switch link; fabric penalty
    faulty = m.p2p_time(0, 4, n)  # no endpoint-graph route: fallback
    assert faulty > base


def test_collective_far_time_pays_fabric_penalty():
    t = Torus((3, 3))
    m = LogGPModel(t)
    n = 1 << 20
    base = m.far_time(n)
    t.fail_link(0, 1)
    t.degrade_link(1, 2, derate=4.0, loss_prob=0.1)
    faulty = m.far_time(n)
    stretch, derate, loss = t.health().aggregate_penalty()
    expected = (m.L * t.diameter() * stretch + 2 * m.o + m.G * n * derate) / (
        1 - loss
    ) + (1 / (1 - loss) - 1) * m.retransmit_timeout
    assert faulty == pytest.approx(expected)
    assert faulty > base
