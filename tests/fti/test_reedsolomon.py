"""Round-trip and erasure-tolerance tests for the RS codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fti import RSDecodeError, ReedSolomonCode


def random_shards(k, length, seed=0):
    rng = np.random.default_rng(seed)
    return [bytes(rng.integers(0, 256, size=length, dtype=np.uint8)) for _ in range(k)]


def test_encode_produces_m_parity():
    code = ReedSolomonCode(4, 2)
    parity = code.encode(random_shards(4, 100))
    assert len(parity) == 2
    assert all(len(p) == 100 for p in parity)


def test_zero_parity_code():
    code = ReedSolomonCode(3, 0)
    assert code.encode(random_shards(3, 10)) == []


def test_param_validation():
    with pytest.raises(ValueError):
        ReedSolomonCode(0, 1)
    with pytest.raises(ValueError):
        ReedSolomonCode(200, 100)
    with pytest.raises(ValueError):
        ReedSolomonCode(2, -1)


def test_encode_wrong_count():
    code = ReedSolomonCode(3, 1)
    with pytest.raises(ValueError):
        code.encode(random_shards(2, 10))


def test_decode_wrong_slots():
    code = ReedSolomonCode(3, 1)
    with pytest.raises(ValueError):
        code.decode([b"x"] * 3)


def test_roundtrip_no_erasures():
    code = ReedSolomonCode(4, 2)
    data = random_shards(4, 64, seed=1)
    parity = code.encode(data)
    out = code.decode(list(data) + parity, lengths=[64] * 4)
    assert out == data


def test_roundtrip_with_max_erasures():
    code = ReedSolomonCode(4, 2)
    data = random_shards(4, 64, seed=2)
    parity = code.encode(data)
    shards = list(data) + parity
    shards[0] = None
    shards[3] = None  # two erasures == m
    out = code.decode(shards, lengths=[64] * 4)
    assert out == data


def test_parity_only_recovery_k_le_m():
    code = ReedSolomonCode(2, 2)
    data = random_shards(2, 32, seed=3)
    parity = code.encode(data)
    shards = [None, None] + parity
    out = code.decode(shards, lengths=[32, 32])
    assert out == data


def test_too_many_erasures_raises():
    code = ReedSolomonCode(4, 2)
    data = random_shards(4, 16, seed=4)
    shards = list(data) + code.encode(data)
    for i in (0, 2, 4):
        shards[i] = None
    with pytest.raises(RSDecodeError):
        code.decode(shards)


def test_unequal_lengths_padded_and_stripped():
    code = ReedSolomonCode(3, 2)
    data = [b"abc", b"defgh", b""]
    parity = code.encode(data)
    assert all(len(p) == 5 for p in parity)
    shards = [None, data[1], None] + parity
    out = code.decode(shards, lengths=[3, 5, 0])
    assert out == data


def test_k1_code_is_replication():
    code = ReedSolomonCode(1, 3)
    data = [b"hello world"]
    parity = code.encode(data)
    assert all(p == b"hello world" for p in parity)
    out = code.decode([None, None, None, parity[2]], lengths=[11])
    assert out == data


def test_decode_without_lengths_keeps_padding():
    code = ReedSolomonCode(2, 1)
    data = [b"ab", b"wxyz"]
    parity = code.encode(data)
    out = code.decode([None, data[1]] + parity)
    assert out[0] == b"ab\x00\x00"


@settings(max_examples=40, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=6),
    m=st.integers(min_value=0, max_value=6),
    length=st.integers(min_value=0, max_value=64),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_roundtrip_property_any_k_surviving(k, m, length, seed):
    """Decoding from ANY k surviving shards reproduces the data."""
    rng = np.random.default_rng(seed)
    code = ReedSolomonCode(k, m)
    data = [
        bytes(rng.integers(0, 256, size=length, dtype=np.uint8)) for _ in range(k)
    ]
    parity = code.encode(data)
    shards = list(data) + parity
    survivors = rng.choice(k + m, size=k, replace=False)
    pruned = [s if i in survivors else None for i, s in enumerate(shards)]
    out = code.decode(pruned, lengths=[length] * k)
    assert out == data


@settings(max_examples=20, deadline=None)
@given(
    k=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_erasing_more_than_m_always_fails(k, seed):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 4))
    code = ReedSolomonCode(k, m)
    data = random_shards(k, 8, seed=seed)
    shards = list(data) + code.encode(data)
    kill = rng.choice(k + m, size=m + 1, replace=False)
    pruned = [s if i not in kill else None for i, s in enumerate(shards)]
    with pytest.raises(RSDecodeError):
        code.decode(pruned)
