"""Field-axiom and linear-algebra tests for GF(256)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fti import GF256

byte = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


@given(byte, byte)
def test_add_commutative_and_self_inverse(a, b):
    assert GF256.add(a, b) == GF256.add(b, a)
    assert GF256.add(a, a) == 0
    assert GF256.sub(a, b) == GF256.add(a, b)


@given(byte, byte, byte)
def test_mul_commutative_associative(a, b, c):
    assert GF256.mul(a, b) == GF256.mul(b, a)
    assert GF256.mul(GF256.mul(a, b), c) == GF256.mul(a, GF256.mul(b, c))


@given(byte, byte, byte)
def test_distributive(a, b, c):
    left = GF256.mul(a, GF256.add(b, c))
    right = GF256.add(GF256.mul(a, b), GF256.mul(a, c))
    assert left == right


@given(byte)
def test_mul_identity_and_zero(a):
    assert GF256.mul(a, 1) == a
    assert GF256.mul(a, 0) == 0


@given(nonzero)
def test_inverse(a):
    assert GF256.mul(a, GF256.inv(a)) == 1
    assert GF256.div(1, a) == GF256.inv(a)


@given(nonzero, nonzero)
def test_div_is_mul_by_inverse(a, b):
    assert GF256.div(a, b) == GF256.mul(a, GF256.inv(b))


def test_zero_division_rejected():
    with pytest.raises(ZeroDivisionError):
        GF256.div(3, 0)
    with pytest.raises(ZeroDivisionError):
        GF256.inv(0)
    with pytest.raises(ZeroDivisionError):
        GF256.pow(0, -1)


@given(nonzero, st.integers(min_value=-10, max_value=10))
def test_pow_matches_repeated_mul(a, n):
    expected = 1
    base = a if n >= 0 else GF256.inv(a)
    for _ in range(abs(n)):
        expected = GF256.mul(expected, base)
    assert GF256.pow(a, n) == expected


def test_pow_of_zero():
    assert GF256.pow(0, 0) == 1
    assert GF256.pow(0, 5) == 0


def test_generator_has_full_order():
    seen = {GF256.exp(i) for i in range(255)}
    assert len(seen) == 255 and 0 not in seen


@given(byte, st.integers(min_value=0, max_value=64))
def test_mul_block_matches_scalar_mul(scalar, n):
    rng = np.random.default_rng(0)
    block = rng.integers(0, 256, size=n, dtype=np.uint8)
    out = GF256.mul_block(scalar, block)
    for x, y in zip(block.tolist(), out.tolist()):
        assert GF256.mul(scalar, x) == y


def test_addmul_block_inplace():
    acc = np.array([1, 2, 3], dtype=np.uint8)
    GF256.addmul_block(acc, 0, np.array([9, 9, 9], dtype=np.uint8))
    assert acc.tolist() == [1, 2, 3]
    GF256.addmul_block(acc, 1, np.array([1, 2, 3], dtype=np.uint8))
    assert acc.tolist() == [0, 0, 0]


def test_mat_inv_identity():
    eye = np.eye(4, dtype=np.uint8)
    np.testing.assert_array_equal(GF256.mat_inv(eye), eye)


@given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=100))
def test_mat_inv_roundtrip(n, seed):
    rng = np.random.default_rng(seed)
    # Vandermonde over distinct points is always invertible.
    pts = rng.choice(255, size=n, replace=False) + 1
    m = np.array(
        [[GF256.pow(int(p), j) for j in range(n)] for p in pts], dtype=np.uint8
    )
    inv = GF256.mat_inv(m)
    prod = np.zeros((n, n), dtype=np.uint8)
    for i in range(n):
        for j in range(n):
            acc = 0
            for k in range(n):
                acc = GF256.add(acc, GF256.mul(int(m[i, k]), int(inv[k, j])))
            prod[i, j] = acc
    np.testing.assert_array_equal(prod, np.eye(n, dtype=np.uint8))


def test_mat_inv_singular_rejected():
    m = np.array([[1, 1], [1, 1]], dtype=np.uint8)
    with pytest.raises(np.linalg.LinAlgError):
        GF256.mat_inv(m)


def test_mat_inv_requires_square():
    with pytest.raises(ValueError):
        GF256.mat_inv(np.zeros((2, 3), dtype=np.uint8))


def test_mat_vec_blocks_shape_check():
    with pytest.raises(ValueError):
        GF256.mat_vec_blocks(
            np.eye(2, dtype=np.uint8), np.zeros((3, 4), dtype=np.uint8)
        )
