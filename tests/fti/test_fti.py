"""FTI level semantics: checkpoint, failure injection, recovery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fti import (
    FTI,
    CheckpointLevel,
    FTIConfig,
    GroupLayout,
    RecoveryError,
    StorageError,
)


def make_fti(nranks=16, group_size=4, node_size=2, partner_copies=2):
    cfg = FTIConfig(
        group_size=group_size, node_size=node_size, partner_copies=partner_copies
    )
    return FTI(nranks, cfg)


def rank_data(nranks, tag=0, size=32):
    rng = np.random.default_rng(tag)
    return {
        r: bytes(rng.integers(0, 256, size=size + r % 3, dtype=np.uint8))
        for r in range(nranks)
    }


# -- config / layout ------------------------------------------------------------


def test_config_validation():
    with pytest.raises(ValueError):
        FTIConfig(group_size=0)
    with pytest.raises(ValueError):
        FTIConfig(node_size=0)
    with pytest.raises(ValueError):
        FTIConfig(group_size=4, partner_copies=4)
    with pytest.raises(ValueError):
        FTIConfig(ckpt_interval=0)


def test_ranks_multiple_enforced():
    cfg = FTIConfig(group_size=4, node_size=2)
    assert cfg.ranks_multiple == 8
    with pytest.raises(ValueError):
        GroupLayout(12, cfg)  # not a multiple of 8
    with pytest.raises(ValueError):
        GroupLayout(0, cfg)
    GroupLayout(64, cfg)  # ok


def test_level_describe_matches_table1():
    assert "local node" in CheckpointLevel.L1.describe()
    assert "neighbor" in CheckpointLevel.L2.describe()
    assert "Reed-Solomon" in CheckpointLevel.L3.describe()
    assert "parallel file system" in CheckpointLevel.L4.describe()


def test_layout_mapping():
    lay = GroupLayout(16, FTIConfig(group_size=4, node_size=2))
    assert lay.nnodes == 8 and lay.ngroups == 2
    assert lay.node_of_rank(0) == 0 and lay.node_of_rank(15) == 7
    assert lay.ranks_of_node(3) == [6, 7]
    assert lay.group_of_node(3) == 0 and lay.group_of_node(4) == 1
    assert lay.nodes_of_group(1) == [4, 5, 6, 7]
    assert lay.group_of_rank(9) == 1


def test_layout_partners_ring():
    lay = GroupLayout(16, FTIConfig(group_size=4, node_size=2, partner_copies=2))
    assert lay.partners_of_node(0) == [1, 2]
    assert lay.partners_of_node(3) == [0, 1]  # wraps within group
    assert lay.partners_of_node(7) == [4, 5]  # stays in group 1


def test_layout_range_checks():
    lay = GroupLayout(16, FTIConfig())
    with pytest.raises(IndexError):
        lay.node_of_rank(16)
    with pytest.raises(IndexError):
        lay.ranks_of_node(8)
    with pytest.raises(IndexError):
        lay.nodes_of_group(2)


def test_rs_tolerance():
    assert FTIConfig(group_size=4).rs_tolerance == 2
    assert FTIConfig(group_size=5).rs_tolerance == 2
    assert FTIConfig(group_size=1, partner_copies=0).rs_tolerance == 0


# -- checkpoint + receipts --------------------------------------------------------


def test_checkpoint_requires_all_ranks():
    fti = make_fti()
    with pytest.raises(ValueError):
        fti.checkpoint({0: b"x"}, CheckpointLevel.L1)


def test_l1_receipt_counts_local_bytes():
    fti = make_fti()
    data = rank_data(16)
    total = sum(len(b) for b in data.values())
    r = fti.checkpoint(data, 1)
    assert r.bytes_local == total
    assert r.bytes_partner == r.bytes_encoded == r.bytes_pfs == 0
    assert sum(r.per_node_bytes.values()) == total


def test_l2_receipt_partner_bytes():
    fti = make_fti(partner_copies=2)
    data = rank_data(16)
    total = sum(len(b) for b in data.values())
    r = fti.checkpoint(data, 2)
    assert r.bytes_local == total
    assert r.bytes_partner == 2 * total
    assert r.total_network_bytes == 2 * total


def test_l3_receipt_encoded_bytes():
    fti = make_fti()
    data = rank_data(16)
    r = fti.checkpoint(data, 3)
    assert r.bytes_encoded > 0
    assert r.gf_operations > 0


def test_l4_receipt_pfs_bytes():
    fti = make_fti()
    data = rank_data(16)
    total = sum(len(b) for b in data.values())
    r = fti.checkpoint(data, 4)
    assert r.bytes_pfs == total
    assert fti.pfs.used_bytes == total


def test_old_checkpoint_purged_on_success():
    fti = make_fti()
    fti.checkpoint(rank_data(16, tag=1), 1)
    used_after_first = sum(s.used_bytes for s in fti.local)
    fti.checkpoint(rank_data(16, tag=2), 1)
    used_after_second = sum(s.used_bytes for s in fti.local)
    # same sizes, so storage should not grow
    assert used_after_second == used_after_first


# -- recovery semantics -------------------------------------------------------------


def test_recover_without_checkpoint_fails():
    fti = make_fti()
    with pytest.raises(RecoveryError):
        fti.recover(1)


def test_l1_roundtrip_and_failure():
    fti = make_fti()
    data = rank_data(16, tag=3)
    fti.checkpoint(data, 1)
    assert fti.recover(1) == data
    fti.fail_nodes([2])
    assert not fti.can_recover(1)
    with pytest.raises(RecoveryError):
        fti.recover(1)


def test_failed_node_rejects_writes():
    fti = make_fti()
    fti.fail_nodes([0])
    with pytest.raises(StorageError):
        fti.checkpoint(rank_data(16), 1)


def test_l2_survives_single_failure():
    fti = make_fti(partner_copies=2)
    data = rank_data(16, tag=4)
    fti.checkpoint(data, 2)
    fti.fail_nodes([1])
    assert fti.recover(2) == data


def test_l2_survives_adjacent_pair_with_two_copies():
    # nodes 0 and 1 fail; node 0's copies are on 1 (dead) and 2 (alive)
    fti = make_fti(partner_copies=2)
    data = rank_data(16, tag=5)
    fti.checkpoint(data, 2)
    fti.fail_nodes([0, 1])
    assert fti.recover(2) == data


def test_l2_fails_when_all_partners_die():
    fti = make_fti(partner_copies=1)
    data = rank_data(16, tag=6)
    fti.checkpoint(data, 2)
    # node 0's only copy is on node 1; kill both
    fti.fail_nodes([0, 1])
    with pytest.raises(RecoveryError):
        fti.recover(2)


def test_l3_tolerates_half_group():
    fti = make_fti(group_size=4)
    data = rank_data(16, tag=7)
    fti.checkpoint(data, 3)
    fti.fail_nodes([0, 2])  # 2 of 4 nodes in group 0
    assert fti.recover(3) == data


def test_l3_fails_beyond_half_group():
    fti = make_fti(group_size=4)
    data = rank_data(16, tag=8)
    fti.checkpoint(data, 3)
    fti.fail_nodes([0, 1, 2])  # 3 of 4
    assert not fti.can_recover(3)


def test_l3_groups_independent():
    fti = make_fti(group_size=4)  # groups {0..3}, {4..7}
    data = rank_data(16, tag=9)
    fti.checkpoint(data, 3)
    fti.fail_nodes([0, 1, 4, 5])  # 2 failures in each group
    assert fti.recover(3) == data


def test_l4_survives_everything():
    fti = make_fti()
    data = rank_data(16, tag=10)
    fti.checkpoint(data, 4)
    fti.fail_nodes(range(8))
    assert fti.recover(4) == data


def test_recover_any_prefers_cheapest_level():
    fti = make_fti()
    data = rank_data(16, tag=11)
    fti.checkpoint(data, 1)
    fti.checkpoint(data, 4)
    level, out = fti.recover_any()
    assert level == CheckpointLevel.L1 and out == data
    fti.fail_nodes([3])
    level, out = fti.recover_any()
    assert level == CheckpointLevel.L4 and out == data


def test_recover_any_no_checkpoints():
    fti = make_fti()
    with pytest.raises(RecoveryError):
        fti.recover_any()


def test_repair_nodes_allows_new_checkpoints():
    fti = make_fti()
    data = rank_data(16, tag=12)
    fti.checkpoint(data, 4)
    fti.fail_nodes([0])
    fti.repair_nodes([0])
    assert fti.failed_nodes == []
    data2 = rank_data(16, tag=13)
    fti.checkpoint(data2, 1)
    assert fti.recover(1) == data2


# -- property: the paper's recoverability matrix ---------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    nfail=st.integers(min_value=0, max_value=8),
)
def test_l3_recoverability_matches_half_group_rule(seed, nfail):
    rng = np.random.default_rng(seed)
    fti = make_fti(group_size=4, node_size=2)  # 8 nodes, 2 groups
    data = rank_data(16, tag=seed)
    fti.checkpoint(data, 3)
    failed = rng.choice(8, size=nfail, replace=False).tolist()
    fti.fail_nodes(failed)
    per_group = [sum(1 for n in failed if n // 4 == g) for g in range(2)]
    expected = all(f <= 2 for f in per_group)
    assert fti.can_recover(3) == expected
    if expected:
        assert fti.recover(3) == data


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    nfail=st.integers(min_value=0, max_value=6),
    copies=st.integers(min_value=1, max_value=3),
)
def test_l2_recoverability_matches_partner_rule(seed, nfail, copies):
    rng = np.random.default_rng(seed)
    fti = make_fti(group_size=4, node_size=2, partner_copies=copies)
    data = rank_data(16, tag=seed + 1)
    fti.checkpoint(data, 2)
    failed = set(rng.choice(8, size=nfail, replace=False).tolist())
    fti.fail_nodes(failed)
    lay = fti.layout
    expected = all(
        any(p not in failed for p in lay.partners_of_node(n)) for n in failed
    )
    assert fti.can_recover(2) == expected


# -- torn checkpoints --------------------------------------------------------------


def test_torn_l1_write_destroys_previous_copy():
    """A fault mid-L1-rewrite loses old and new data on the writing
    node: the committed L1 instance becomes unrecoverable."""
    fti = make_fti()
    data = rank_data(16, tag=0)
    fti.checkpoint(data, 1)
    assert fti.can_recover(1)
    fti.torn_checkpoint(1, nodes=[0])
    assert fti.torn_events == 1
    assert fti.local[0].torn_writes == 1
    assert not fti.can_recover(1)
    with pytest.raises(RecoveryError):
        fti.recover(1)


def test_torn_l2_write_recovers_via_partner_copies():
    """Tearing a node's own L2 file leaves partner copies intact, so
    recovery degrades but still succeeds — the escalation ladder's
    rationale for retrying one level up."""
    fti = make_fti()
    data = rank_data(16, tag=1)
    fti.checkpoint(data, 2)
    fti.torn_checkpoint(2, nodes=[0, 3])
    assert fti.can_recover(2)
    assert fti.recover(2) == data


def test_torn_checkpoint_without_commit_is_noop():
    fti = make_fti()
    fti.torn_checkpoint(1, nodes=[0])
    assert fti.torn_events == 0
    assert fti.local[0].torn_writes == 0


# -- multi-version retention + silent-corruption invalidation -----------------------


def make_versioned_fti(keep=2, **kw):
    cfg = FTIConfig(keep_versions=keep, **kw)
    return FTI(16, cfg)


def test_keep_versions_validated():
    with pytest.raises(ValueError):
        FTIConfig(keep_versions=0)


def test_classic_fti_keeps_single_version():
    fti = make_fti()  # keep_versions=1
    r1 = fti.checkpoint(rank_data(16, tag=1), 1)
    r2 = fti.checkpoint(rank_data(16, tag=2), 1)
    assert fti.versions[CheckpointLevel.L1] == [r2.ckpt_id]
    with pytest.raises(RecoveryError):
        fti.recover(1, ckpt_id=r1.ckpt_id)  # purged


def test_multi_version_retains_history_and_purges_oldest():
    fti = make_versioned_fti(keep=2)
    r1 = fti.checkpoint(rank_data(16, tag=1), 1)
    r2 = fti.checkpoint(rank_data(16, tag=2), 1)
    r3 = fti.checkpoint(rank_data(16, tag=3), 1)
    assert fti.versions[CheckpointLevel.L1] == [r2.ckpt_id, r3.ckpt_id]
    assert fti.recover(1, ckpt_id=r2.ckpt_id) == rank_data(16, tag=2)
    with pytest.raises(RecoveryError, match="not retained"):
        fti.recover(1, ckpt_id=r1.ckpt_id)


def test_mark_corrupt_retargets_latest_to_clean_version():
    """The SDC walkthrough at the library level: corruption latent while
    the newest version was written ->  invalidate it ->  default recovery
    silently reaches back to the older clean version."""
    fti = make_versioned_fti(keep=2)
    clean = rank_data(16, tag=1)
    fti.checkpoint(clean, 1)
    tainted = fti.checkpoint(rank_data(16, tag=2), 1)
    fti.mark_corrupt(tainted.ckpt_id)
    assert fti.valid_versions(1) == [fti.latest[CheckpointLevel.L1]]
    assert fti.recover(1) == clean  # latest now points at the clean one
    with pytest.raises(RecoveryError, match="silent corruption"):
        fti.recover(1, ckpt_id=tainted.ckpt_id)


def test_mark_corrupt_every_version_leaves_nothing():
    fti = make_versioned_fti(keep=2)
    r1 = fti.checkpoint(rank_data(16, tag=1), 1)
    r2 = fti.checkpoint(rank_data(16, tag=2), 1)
    fti.mark_corrupt(r2.ckpt_id)
    fti.mark_corrupt(r1.ckpt_id)
    assert fti.valid_versions(1) == []
    with pytest.raises(RecoveryError):
        fti.recover(1)


def test_mark_corrupt_unknown_id_rejected():
    fti = make_versioned_fti(keep=2)
    with pytest.raises(ValueError, match="not retained"):
        fti.mark_corrupt(999)


def test_recover_any_walks_past_corrupt_versions():
    fti = make_versioned_fti(keep=3)
    clean = rank_data(16, tag=1)
    fti.checkpoint(clean, 2)
    t2 = fti.checkpoint(rank_data(16, tag=2), 2)
    t3 = fti.checkpoint(rank_data(16, tag=3), 2)
    fti.mark_corrupt(t3.ckpt_id)
    fti.mark_corrupt(t2.ckpt_id)
    level, data = fti.recover_any()
    assert level == CheckpointLevel.L2
    assert data == clean


def test_corrupt_bytes_unreadable_in_every_store():
    """mark_corrupt taints own copies, partner copies, RS shards and the
    PFS flush alike: no replica of the bad version can serve reads."""
    fti = make_versioned_fti(keep=2)
    fti.checkpoint(rank_data(16, tag=1), 4)
    tainted = fti.checkpoint(rank_data(16, tag=2), 4)
    fti.mark_corrupt(tainted.ckpt_id)
    for node in range(fti.layout.nnodes):
        assert fti.pfs.read(f"pfs/{tainted.ckpt_id}/node{node}") is None


def test_fresh_write_supersedes_store_taint():
    store = fti_storage_local(0)
    store.write("k", b"old")
    store.mark_corrupt("k")
    assert store.read("k") is None
    store.write("k", b"new")
    assert store.read("k") == b"new"


def test_mark_corrupt_missing_key_is_noop_in_store():
    store = fti_storage_local(1)
    store.mark_corrupt("ghost")
    assert store.corrupt_keys == set()


def fti_storage_local(node):
    from repro.fti.storage import LocalStore

    return LocalStore(node)
