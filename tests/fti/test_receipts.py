"""Checkpoint receipt accounting properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import lulesh_state_bytes
from repro.fti import FTI, CheckpointLevel, FTIConfig


def payload(nranks, size):
    return {r: bytes(size) for r in range(nranks)}


def test_receipt_totals_consistent():
    fti = FTI(16, FTIConfig(group_size=4, node_size=2, partner_copies=2))
    r = fti.checkpoint(payload(16, 100), CheckpointLevel.L2)
    assert r.total_network_bytes == r.bytes_partner + r.bytes_encoded
    assert r.total_bytes == (
        r.bytes_local + r.bytes_partner + r.bytes_encoded + r.bytes_pfs
    )


def test_receipts_accumulate():
    fti = FTI(8, FTIConfig(group_size=4, node_size=2, partner_copies=1))
    for level in (1, 2, 3, 4):
        fti.checkpoint(payload(8, 64), level)
    assert len(fti.receipts) == 4
    assert [r.level for r in fti.receipts] == [1, 2, 3, 4]
    assert [r.ckpt_id for r in fti.receipts] == [0, 1, 2, 3]


def test_lulesh_payload_accounting():
    """FTI byte accounting matches the LULESH state-size formula the
    testbed's checkpoint cost functions assume."""
    epr = 8
    nranks = 16
    blob = bytes(lulesh_state_bytes(epr))
    fti = FTI(nranks, FTIConfig(group_size=4, node_size=2))
    r = fti.checkpoint({q: blob for q in range(nranks)}, 1)
    assert r.bytes_local == nranks * lulesh_state_bytes(epr)
    assert all(
        v == 2 * lulesh_state_bytes(epr) for v in r.per_node_bytes.values()
    )


@settings(max_examples=20, deadline=None)
@given(
    size=st.integers(min_value=0, max_value=512),
    copies=st.integers(min_value=1, max_value=3),
)
def test_l2_partner_bytes_formula(size, copies):
    fti = FTI(16, FTIConfig(group_size=4, node_size=2, partner_copies=copies))
    r = fti.checkpoint(payload(16, size), 2)
    assert r.bytes_partner == copies * 16 * size


@settings(max_examples=15, deadline=None)
@given(size=st.integers(min_value=1, max_value=256))
def test_l3_parity_bytes_match_group_structure(size):
    cfg = FTIConfig(group_size=4, node_size=2)
    fti = FTI(16, cfg)
    r = fti.checkpoint(payload(16, size), 3)
    # one parity shard per node, each as long as the node payload
    assert r.bytes_encoded == fti.layout.nnodes * 2 * size
    assert r.gf_operations == fti.layout.ngroups * 16 * 2 * size


def test_l4_pfs_bytes_equal_job_state():
    fti = FTI(8, FTIConfig(group_size=4, node_size=2))
    r = fti.checkpoint(payload(8, 128), 4)
    assert r.bytes_pfs == 8 * 128
    assert fti.pfs.bytes_written == 8 * 128
