"""The injectable filesystem-fault shim: determinism, filters, scoping."""

import errno
import time

import pytest

from repro.guard.fsfault import (
    FS_FAULT_KINDS,
    FsFaultConfig,
    FsFaultInjector,
    active,
    fault_check,
    fsync_dir,
    injected,
    install,
    uninstall,
)
from repro.obs.metrics import MetricsRegistry, set_registry


@pytest.fixture(autouse=True)
def _clean_shim():
    """Never leak an installed injector (or global registry) across tests."""
    set_registry(MetricsRegistry())
    uninstall()
    yield
    uninstall()
    set_registry(None)


# -- config validation ---------------------------------------------------------


def test_config_rejects_prob_sum_over_one():
    with pytest.raises(ValueError):
        FsFaultConfig(enospc_prob=0.7, eio_prob=0.4)


def test_config_rejects_negative_knobs():
    with pytest.raises(ValueError):
        FsFaultConfig(after_ops=-1)
    with pytest.raises(ValueError):
        FsFaultConfig(max_faults=-2)
    with pytest.raises(ValueError):
        FsFaultConfig(slow_s=-0.1)


def test_config_normalizes_ops_list_to_tuple():
    cfg = FsFaultConfig(ops=["wal.append"])
    assert cfg.ops == ("wal.append",)


def test_config_dict_round_trip():
    cfg = FsFaultConfig(
        enospc_prob=0.25,
        slow_prob=0.1,
        slow_s=0.5,
        after_ops=3,
        max_faults=7,
        path_substring="wal",
        ops=("wal.append", "snapshot.write"),
        seed=42,
    )
    assert FsFaultConfig.from_dict(cfg.to_dict()) == cfg


def test_from_dict_ignores_unknown_keys():
    cfg = FsFaultConfig.from_dict(
        {"enospc_prob": 1.0, "future_knob": "whatever", "other": 1}
    )
    assert cfg.enospc_prob == 1.0


# -- deterministic draws --------------------------------------------------------


def test_draw_is_deterministic_and_seed_keyed():
    a = FsFaultInjector(FsFaultConfig(seed=1))
    b = FsFaultInjector(FsFaultConfig(seed=1))
    c = FsFaultInjector(FsFaultConfig(seed=2))
    seq_a = [a.draw(i) for i in range(32)]
    assert seq_a == [b.draw(i) for i in range(32)]
    assert seq_a != [c.draw(i) for i in range(32)]
    assert all(0.0 <= u < 1.0 for u in seq_a)


def test_same_config_fires_at_same_op_index():
    def fire_indices(inj):
        out = []
        for i in range(64):
            try:
                inj.check("wal.append", "/tmp/x.wal")
            except OSError:
                out.append(i)
        return out

    first = fire_indices(FsFaultInjector(FsFaultConfig(eio_prob=0.2, seed=9)))
    second = fire_indices(FsFaultInjector(FsFaultConfig(eio_prob=0.2, seed=9)))
    assert first == second and first  # fired somewhere, identically


def test_enospc_prob_one_always_fires_with_errno_and_marker():
    inj = FsFaultInjector(FsFaultConfig(enospc_prob=1.0))
    with pytest.raises(OSError) as exc:
        inj.check("snapshot.write", "/data/snap")
    assert exc.value.errno == errno.ENOSPC
    assert "[injected by fsfault: snapshot.write]" in str(exc.value)
    assert inj.injected == 1 and inj.by_kind["enospc"] == 1


def test_after_ops_arms_exactly_at_nth_operation():
    inj = FsFaultInjector(FsFaultConfig(enospc_prob=1.0, after_ops=4))
    for _ in range(4):
        inj.check("wal.append")  # ops 0..3 pass
    with pytest.raises(OSError):
        inj.check("wal.append")  # op 4 fires
    assert inj.ops_seen == 5 and inj.injected == 1


def test_max_faults_caps_injection():
    inj = FsFaultInjector(FsFaultConfig(eio_prob=1.0, max_faults=2))
    fired = 0
    for _ in range(10):
        try:
            inj.check("journal.append")
        except OSError:
            fired += 1
    assert fired == 2 and inj.injected == 2


def test_path_substring_filter_skips_ineligible_paths():
    inj = FsFaultInjector(FsFaultConfig(enospc_prob=1.0, path_substring="wal"))
    inj.check("metrics.jsonl", "/out/metrics.jsonl")  # no "wal": not eligible
    assert inj.ops_seen == 0
    with pytest.raises(OSError):
        inj.check("wal.append", "/out/j.wal")
    assert inj.ops_seen == 1


def test_ops_filter_restricts_vocabulary():
    inj = FsFaultInjector(
        FsFaultConfig(enospc_prob=1.0, ops=("snapshot.write",))
    )
    inj.check("wal.append", "x")
    assert inj.ops_seen == 0
    with pytest.raises(OSError):
        inj.check("snapshot.write", "x")


def test_slow_fault_sleeps_instead_of_raising():
    inj = FsFaultInjector(FsFaultConfig(slow_prob=1.0, slow_s=0.02))
    t0 = time.monotonic()
    inj.check("wal.append")  # must not raise
    assert time.monotonic() - t0 >= 0.015
    assert inj.by_kind["slow"] == 1


def test_every_kind_is_countable():
    assert set(FS_FAULT_KINDS) == {"enospc", "eio", "emfile", "slow"}
    inj = FsFaultInjector(FsFaultConfig(emfile_prob=1.0))
    with pytest.raises(OSError) as exc:
        inj.check("wal.open")
    assert exc.value.errno == errno.EMFILE


# -- process-wide installation ---------------------------------------------------


def test_fault_check_is_noop_when_uninstalled():
    fault_check("wal.append", "/anything")  # must not raise


def test_install_uninstall_and_active():
    inj = install(FsFaultInjector(FsFaultConfig()))
    assert active() is inj
    uninstall()
    assert active() is None


def test_injected_contextmanager_scopes_and_restores():
    outer = install(FsFaultInjector(FsFaultConfig(seed=5)))
    with injected(FsFaultConfig(enospc_prob=1.0)) as inner:
        assert active() is inner
        with pytest.raises(OSError):
            fault_check("report.json", "/out/report.json")
    assert active() is outer
    uninstall()
    with injected(FsFaultConfig()) as inner:
        assert active() is inner
    assert active() is None


def test_injection_counts_into_metrics_registry():
    reg = MetricsRegistry()
    set_registry(reg)
    with injected(FsFaultConfig(eio_prob=1.0)):
        with pytest.raises(OSError):
            fault_check("metrics.prom", "/out/m.prom")
    assert (
        reg.counter(
            "guard_fsfaults_injected_total", kind="eio", op="metrics.prom"
        ).value
        == 1
    )


# -- fsync_dir -------------------------------------------------------------------


def test_fsync_dir_on_real_directory(tmp_path):
    fsync_dir(str(tmp_path))  # must not raise


def test_fsync_dir_missing_directory_is_noop():
    fsync_dir("/definitely/not/a/real/dir")  # must not raise


def test_fsync_dir_is_itself_faultable(tmp_path):
    with injected(FsFaultConfig(enospc_prob=1.0, ops=("fsync_dir",))):
        with pytest.raises(OSError):
            fsync_dir(str(tmp_path))
