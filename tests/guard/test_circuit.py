"""Circuit breaker: trip, cooldown, half-open probe, forced suspension."""

import pytest

from repro.guard.circuit import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def test_rejects_nonpositive_cooldown():
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown_s=0)


def test_closed_allows_and_success_keeps_closed():
    b = CircuitBreaker(clock=FakeClock())
    assert b.allow() and not b.suspended
    b.success()
    assert b.state == CLOSED


def test_failure_opens_and_blocks_until_cooldown():
    clock = FakeClock()
    b = CircuitBreaker(cooldown_s=5.0, clock=clock)
    b.failure()
    assert b.state == OPEN and b.suspended and b.trips == 1
    assert not b.allow()
    clock.advance(4.9)
    assert not b.allow()
    clock.advance(0.2)
    assert b.allow()  # the single half-open probe
    assert b.state == HALF_OPEN and b.probes == 1
    assert not b.allow()  # no second probe while one is in flight


def test_probe_success_recloses_probe_failure_reopens():
    clock = FakeClock()
    b = CircuitBreaker(cooldown_s=1.0, clock=clock)
    b.failure()
    clock.advance(1.0)
    assert b.allow()
    b.failure()  # probe failed
    assert b.state == OPEN and b.trips == 2
    clock.advance(1.0)
    assert b.allow()
    b.success()  # probe succeeded
    assert b.state == CLOSED and not b.suspended and b.failures == 0


def test_force_open_then_reset_round_trip():
    b = CircuitBreaker(clock=FakeClock())
    b.force_open()
    assert b.suspended and b.trips == 1
    b.force_open()  # idempotent trip count while already open
    assert b.trips == 1
    b.reset()
    assert b.state == CLOSED and b.allow()
