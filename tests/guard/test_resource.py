"""Resource watchdog: probes, limits, throttled ticks, ladder feed."""

import pytest

from repro.guard.ladder import (
    STAGE_NORMAL,
    STAGE_SHED_SNAPSHOTS,
    STAGE_STRETCH_CADENCE,
    DegradationLadder,
)
from repro.guard.resource import (
    ResourceGuard,
    ResourceLimits,
    ResourceSample,
    disk_free_bytes,
    open_fd_count,
    rss_bytes,
)
from repro.obs.metrics import MetricsRegistry


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


# -- real probes (smoke; values are host-dependent) ----------------------------


def test_disk_free_bytes_on_real_path(tmp_path):
    free = disk_free_bytes(str(tmp_path))
    assert free is not None and free > 0


def test_disk_free_bytes_missing_path_is_none():
    assert disk_free_bytes("/no/such/dir/for/sure") is None


def test_rss_and_fd_probes_plausible_or_none():
    rss = rss_bytes()
    if rss is not None:  # /proc platforms
        assert rss > 1024 * 1024  # a python process is at least a MiB
    fds = open_fd_count()
    if fds is not None:
        assert fds >= 3  # stdin/stdout/stderr


# -- limits and samples --------------------------------------------------------


def test_limits_reject_negative():
    with pytest.raises(ValueError):
        ResourceLimits(min_disk_free_bytes=-1)


def test_pressure_reasons_floor_and_ceilings():
    limits = ResourceLimits(
        min_disk_free_bytes=100, max_rss_bytes=1000, max_open_fds=10
    )
    healthy = ResourceSample(disk_free=200, rss=500, open_fds=5)
    assert healthy.pressure_reasons(limits) == []
    pressured = ResourceSample(disk_free=50, rss=2000, open_fds=50)
    reasons = pressured.pressure_reasons(limits)
    assert len(reasons) == 3
    assert any("disk free" in r for r in reasons)
    assert any("rss" in r for r in reasons)
    assert any("open fds" in r for r in reasons)


def test_unavailable_probe_never_trips_limit():
    limits = ResourceLimits(
        min_disk_free_bytes=100, max_rss_bytes=1, max_open_fds=1
    )
    sample = ResourceSample(disk_free=None, rss=None, open_fds=None)
    assert sample.pressure_reasons(limits) == []


def test_disabled_limit_never_trips():
    limits = ResourceLimits(
        min_disk_free_bytes=None, max_rss_bytes=None, max_open_fds=None
    )
    sample = ResourceSample(disk_free=0, rss=10**12, open_fds=10**6)
    assert sample.pressure_reasons(limits) == []


# -- guard ticks ---------------------------------------------------------------


def make_guard(free_values, clock=None, **kw):
    """Guard whose disk probe replays *free_values* (last value sticks)."""
    clock = clock or FakeClock()
    reg = MetricsRegistry()
    it = iter(free_values)
    state = {"last": free_values[-1]}

    def disk_probe(path):
        try:
            state["last"] = next(it)
        except StopIteration:
            pass
        return state["last"]

    kw.setdefault(
        "ladder",
        DegradationLadder(
            registry=reg, clock=clock, polls_per_stage=1, recover_polls=1
        ),
    )
    guard = ResourceGuard(
        watch_path=".",
        limits=ResourceLimits(min_disk_free_bytes=100),
        poll_interval_s=1.0,
        registry=reg,
        clock=clock,
        disk_probe=disk_probe,
        rss_probe=lambda: None,
        fd_probe=lambda: None,
        **kw,
    )
    return guard, reg, clock


def test_tick_is_throttled_by_poll_interval():
    guard, _, clock = make_guard([500])
    assert guard.tick() is not None  # first tick always polls
    assert guard.tick() is None  # throttled
    clock.advance(1.1)
    assert guard.tick() is not None
    assert guard.polls == 2


def test_force_tick_bypasses_throttle():
    guard, _, _ = make_guard([500])
    guard.tick()
    assert guard.tick(force=True) is not None


def test_pressure_escalates_and_recovery_steps_down():
    guard, _, clock = make_guard([500, 50, 50, 500, 500])
    guard.tick()
    assert guard.stage == STAGE_NORMAL
    clock.advance(1.1)
    guard.tick()  # 50: pressure -> shed
    assert guard.stage == STAGE_SHED_SNAPSHOTS
    clock.advance(1.1)
    guard.tick()  # 50: streak -> stretch
    assert guard.stage == STAGE_STRETCH_CADENCE
    clock.advance(1.1)
    guard.tick()  # 500: healthy -> recover one rung
    assert guard.stage == STAGE_SHED_SNAPSHOTS
    clock.advance(1.1)
    guard.tick()
    assert guard.stage == STAGE_NORMAL
    assert not guard.paused and not guard.abort_requested


def test_gauges_published_each_poll():
    guard, reg, _ = make_guard([321])
    guard.tick()
    assert reg.gauge("guard_disk_free_bytes").value == 321
    assert guard.last_sample.disk_free == 321


def test_abort_reason_passthrough():
    guard, _, clock = make_guard([50] * 10)
    for _ in range(6):
        guard.tick(force=True)
    assert guard.abort_requested
    assert "disk free" in guard.abort_reason
