"""Regression: every atomic-write path fsyncs the directory entry.

``os.replace`` (and fresh-file creation) is only durable once the
*directory* inode is fsynced; these tests pin that each durable-write
site actually reaches :func:`repro.guard.fsfault.fsync_dir`.  The shim
counts ``fsync_dir`` as a checked op, so installing an injector with
``ops=("fsync_dir",)`` and zero probabilities turns it into a pure
call counter — no faults, just proof the call happened.
"""

import pytest

from repro.core.supervisor import WriteAheadJournal
from repro.des.engine import Engine
from repro.des.replay import EventJournal
from repro.des.snapshot import Snapshot
from repro.guard import fsfault
from repro.guard.fsfault import FsFaultConfig, FsFaultInjector
from repro.obs.export import write_prometheus
from repro.obs.metrics import MetricsRegistry, set_registry


@pytest.fixture
def fsync_counter():
    set_registry(MetricsRegistry())
    inj = fsfault.install(FsFaultInjector(FsFaultConfig(ops=("fsync_dir",))))
    yield inj
    fsfault.uninstall()
    set_registry(None)


def test_wal_fresh_create_fsyncs_directory(tmp_path, fsync_counter):
    wal = WriteAheadJournal(str(tmp_path / "j.wal"), {"m": 1})
    wal.close()
    assert fsync_counter.ops_seen >= 1


def test_snapshot_save_fsyncs_directory(tmp_path, fsync_counter):
    eng = Engine(seed=1)
    Snapshot.capture(eng).save(str(tmp_path / "snap-00000000.snap"))
    assert fsync_counter.ops_seen >= 1


def test_event_journal_create_fsyncs_directory(tmp_path, fsync_counter):
    journal = EventJournal(str(tmp_path / "events.jsonl"), fsync=True)
    journal.close()
    assert fsync_counter.ops_seen >= 1


def test_write_prometheus_fsyncs_directory(tmp_path, fsync_counter):
    reg = MetricsRegistry()
    reg.counter("x_total").inc()
    write_prometheus(str(tmp_path / "m.prom"), reg)
    assert fsync_counter.ops_seen >= 1


def test_cli_atomic_report_write_fsyncs_directory(tmp_path, fsync_counter):
    from repro.cli import _write_text_atomic

    _write_text_atomic(str(tmp_path / "report.json"), "{}")
    assert fsync_counter.ops_seen >= 1


def test_replaced_file_content_is_the_new_one(tmp_path):
    """The atomic-replace semantics the fsync protects: never a torn mix."""
    from repro.cli import _write_text_atomic

    path = str(tmp_path / "report.json")
    _write_text_atomic(path, "old")
    _write_text_atomic(path, "new")
    with open(path) as fh:
        assert fh.read() == "new"
    assert list(tmp_path.iterdir()) == [tmp_path / "report.json"]  # no tmp litter
