"""Chaos suite: kill the disk mid-campaign, assert graceful degradation.

The acceptance properties pinned here:

* an injected ENOSPC on the campaign journal never escapes
  :class:`ResilienceCampaign` as an unhandled ``OSError`` — the run
  aborts cleanly with a valid, resumable journal,
* resuming after "space restoration" (shim uninstalled) reproduces a
  report bit-identical to an uninterrupted run,
* a guard-enabled run under zero pressure is byte-identical (report
  and journal) to a guard-free run,
* snapshot-write failures inside workers degrade (autosnapshot
  disabled, counted) without corrupting results,
* sustained disk pressure walks the degradation ladder and, if it
  never clears, ends in a clean resumable abort.
"""

import json
import os

import pytest

from repro.core.campaign import ResilienceCampaign
from repro.core.supervisor import HarnessFaultInjector, RetryPolicy
from repro.guard import fsfault
from repro.guard.fsfault import FsFaultConfig, FsFaultInjector, injected
from repro.guard.ladder import (
    STAGE_ABORT,
    STAGE_SHED_SNAPSHOTS,
    STAGE_STRETCH_CADENCE,
    STAGE_SUSPEND_EXPORTERS,
    DegradationLadder,
)
from repro.guard.resource import ResourceGuard, ResourceLimits
from repro.obs.metrics import MetricsRegistry, set_registry

GRID_KW = dict(timesteps=15)
MTBFS = [8.0]
PERIODS = [5]


@pytest.fixture(autouse=True)
def _clean_shim():
    set_registry(MetricsRegistry())
    fsfault.uninstall()
    yield
    fsfault.uninstall()
    set_registry(None)


def run_calm(tmp_path, name="calm.wal", reps=3, **kw):
    journal = str(tmp_path / name)
    camp = ResilienceCampaign(
        reps=reps, base_seed=0, journal_path=journal, **kw
    )
    try:
        report = camp.run_grid(MTBFS, PERIODS, **GRID_KW)
    finally:
        camp.close()
    return camp, report, journal


def make_pressured_guard(disk_free=1, polls_per_stage=1, max_pause_s=0.01):
    """A guard whose fake probes always report a nearly-full disk."""
    return ResourceGuard(
        watch_path=".",
        limits=ResourceLimits(min_disk_free_bytes=1024),
        ladder=DegradationLadder(
            polls_per_stage=polls_per_stage, max_pause_s=max_pause_s
        ),
        poll_interval_s=0.0,
        disk_probe=lambda path: disk_free,
        rss_probe=lambda: None,
        fd_probe=lambda: None,
    )


# -- ENOSPC mid-campaign: clean abort, bit-identical resume ----------------------


def test_enospc_midrun_aborts_cleanly_and_resume_is_bit_identical(tmp_path):
    # Baseline, also counting how many WAL appends a full run performs.
    with injected(FsFaultConfig(ops=("wal.append",))) as counter:
        _, calm_report, _ = run_calm(tmp_path, "calm.wal")
    total_appends = counter.ops_seen
    assert total_appends >= 5  # header + point + 3 replicas at minimum

    # Re-run with the disk "filling up" halfway through the append stream.
    journal = str(tmp_path / "chaos.wal")
    camp = ResilienceCampaign(reps=3, base_seed=0, journal_path=journal)
    with injected(
        FsFaultConfig(
            enospc_prob=1.0, after_ops=total_appends // 2, ops=("wal.append",)
        )
    ):
        try:
            report = camp.run_grid(MTBFS, PERIODS, **GRID_KW)  # must not raise
        finally:
            camp.close()
    assert camp.aborted
    assert "durable write failed" in camp.abort_reason
    assert report.partial

    # The journal survived the abort: valid records, no duplicates.
    with open(journal) as fh:
        records = [json.loads(line) for line in fh if line.strip()]
    done = [r for r in records if r.get("kind") == "replica"]
    keys = {(r["spec_key"], r["replica"]) for r in done}
    assert len(keys) == len(done) < 3  # partial, never duplicated

    # "Space freed" (shim gone): resume completes and matches the calm run.
    resumed = ResilienceCampaign.resume(journal)
    try:
        resumed_report = resumed.run_grid(MTBFS, PERIODS, **GRID_KW)
    finally:
        resumed.close()
    assert not resumed.aborted
    assert resumed_report.to_json() == calm_report.to_json()


def test_no_oserror_escapes_under_any_cut_point(tmp_path):
    """Sweep the ENOSPC arming index across the whole append stream."""
    with injected(FsFaultConfig(ops=("wal.append",))) as counter:
        run_calm(tmp_path, "count.wal", reps=2)
    total = counter.ops_seen
    for cut in range(total):
        journal = str(tmp_path / f"cut{cut}.wal")
        camp = ResilienceCampaign(reps=2, base_seed=0, journal_path=journal)
        with injected(
            FsFaultConfig(enospc_prob=1.0, after_ops=cut, ops=("wal.append",))
        ):
            try:
                camp.run_grid(MTBFS, PERIODS, **GRID_KW)  # never raises
            finally:
                camp.close()
        assert camp.aborted  # every cut aborts (prob 1.0 keeps firing)
        # ... and every cut leaves a recoverable journal.  A cut before
        # the header lands leaves an *empty* file: nothing was journaled,
        # so the recovery story is a fresh run, not a resume.
        if os.path.getsize(journal) == 0:
            resumed = ResilienceCampaign(
                reps=2, base_seed=0, journal_path=journal
            )
        else:
            resumed = ResilienceCampaign.resume(journal)
        try:
            report = resumed.run_grid(MTBFS, PERIODS, **GRID_KW)
        finally:
            resumed.close()
        assert not report.partial


# -- guard on, zero pressure: byte-identical ------------------------------------


def test_guard_without_pressure_changes_nothing(tmp_path):
    _, plain_report, plain_journal = run_calm(tmp_path, "plain.wal")

    guard = ResourceGuard(
        watch_path=str(tmp_path),
        limits=ResourceLimits(min_disk_free_bytes=1),  # never trips
        poll_interval_s=0.0,
        rss_probe=lambda: None,
        fd_probe=lambda: None,
    )
    camp, guarded_report, guarded_journal = run_calm(
        tmp_path, "guarded.wal", guard=guard
    )
    assert guard.polls > 0  # the guard really ran
    assert camp.guard.stage == "normal"
    assert not camp.aborted
    assert guarded_report.to_json() == plain_report.to_json()
    with open(plain_journal, "rb") as a, open(guarded_journal, "rb") as b:
        assert a.read() == b.read()


# -- worker-side snapshot faults degrade, never corrupt --------------------------


def test_worker_snapshot_enospc_degrades_without_corrupting_results(tmp_path):
    _, calm_report, _ = run_calm(
        tmp_path,
        "calm.wal",
        reps=2,
        sim_snapshot_dir=str(tmp_path / "snaps_calm"),
        sim_snapshot_every=5,
    )

    # Same campaign, but every worker snapshot write hits ENOSPC.
    injector = HarnessFaultInjector(
        fs=FsFaultConfig(enospc_prob=1.0, ops=("snapshot.write",)).to_dict()
    )
    camp, chaos_report, _ = run_calm(
        tmp_path,
        "chaos.wal",
        reps=2,
        sim_snapshot_dir=str(tmp_path / "snaps_chaos"),
        sim_snapshot_every=5,
        fault_injector=injector,
        n_workers=2,
        retry=RetryPolicy(max_retries=2, backoff_base_s=0.01, timeout_s=60.0),
    )
    assert not camp.aborted
    assert chaos_report.to_json() == calm_report.to_json()


def test_worker_fs_config_survives_env_round_trip():
    fs = FsFaultConfig(eio_prob=0.25, path_substring="wal", seed=3)
    injector = HarnessFaultInjector(crash_prob=0.1, fs=fs.to_dict())
    os.environ["REPRO_HARNESS_FAULTS"] = injector.with_host_pid().to_env()
    try:
        parsed = HarnessFaultInjector.from_env()
    finally:
        del os.environ["REPRO_HARNESS_FAULTS"]
    assert parsed is not None
    assert parsed.fs_config() == fs
    assert parsed.host_pid == os.getpid()


# -- sustained pressure: the ladder drives the campaign --------------------------


def test_sustained_pressure_walks_ladder_to_resumable_abort(tmp_path):
    guard = make_pressured_guard()
    journal = str(tmp_path / "pressured.wal")
    # Enough replicas that the per-iteration guard polls can walk all
    # five rungs before the task list drains.
    camp = ResilienceCampaign(
        reps=8, base_seed=0, journal_path=journal, guard=guard
    )
    try:
        report = camp.run_grid(MTBFS, PERIODS, **GRID_KW)
    finally:
        camp.close()
    assert camp.aborted
    assert report.partial
    assert guard.stage == STAGE_ABORT
    stages_entered = [to for _, to, _ in guard.ladder.transitions]
    assert stages_entered[:3] == [
        STAGE_SHED_SNAPSHOTS,
        STAGE_STRETCH_CADENCE,
        STAGE_SUSPEND_EXPORTERS,
    ]
    assert stages_entered[-1] == STAGE_ABORT

    # Pressure cleared: a guard-free resume completes and matches calm.
    _, calm_report, _ = run_calm(tmp_path, "calm.wal", reps=8)
    resumed = ResilienceCampaign.resume(journal)
    try:
        resumed_report = resumed.run_grid(MTBFS, PERIODS, **GRID_KW)
    finally:
        resumed.close()
    assert resumed_report.to_json() == calm_report.to_json()


def test_stage_actions_shed_snapshots_and_stretch_cadence(tmp_path):
    """The campaign's ladder wiring: stage actions touch real state."""
    snap_root = tmp_path / "snaps"
    for replica in ("r0", "r1"):
        d = snap_root / replica
        d.mkdir(parents=True)
        for i in range(3):  # three fake snapshot files, oldest first
            (d / f"snap-{i:08d}.snap").write_text("placeholder")
    guard = make_pressured_guard()
    camp = ResilienceCampaign(
        reps=1,
        base_seed=0,
        guard=guard,
        sim_snapshot_dir=str(snap_root),
        sim_snapshot_every=10,
    )
    assert camp._cadence_factor == 1
    guard.ladder.escalate("disk low")  # -> shed_snapshots
    for replica in ("r0", "r1"):
        remaining = sorted(os.listdir(snap_root / replica))
        assert remaining == ["snap-00000002.snap"]  # only the newest survives
    guard.ladder.escalate("disk low")  # -> stretch_cadence
    assert camp._cadence_factor == 4
    guard.ladder.recover("space freed")  # exit stretch_cadence
    assert camp._cadence_factor == 1
    assert guard.ladder.action_errors == 0
