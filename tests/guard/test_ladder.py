"""Degradation ladder: hysteresis, callbacks, backpressure bound, recovery."""

import pytest

from repro.guard.circuit import CircuitBreaker
from repro.guard.ladder import (
    STAGE_ABORT,
    STAGE_NORMAL,
    STAGE_PAUSE_SUBMISSION,
    STAGE_SHED_SNAPSHOTS,
    STAGE_STRETCH_CADENCE,
    STAGE_SUSPEND_EXPORTERS,
    STAGES,
    DegradationLadder,
)
from repro.obs.metrics import MetricsRegistry


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def make_ladder(**kw):
    kw.setdefault("registry", MetricsRegistry())
    kw.setdefault("clock", FakeClock())
    return DegradationLadder(**kw)


def test_stage_order_is_the_documented_ladder():
    assert STAGES == (
        STAGE_NORMAL,
        STAGE_SHED_SNAPSHOTS,
        STAGE_STRETCH_CADENCE,
        STAGE_SUSPEND_EXPORTERS,
        STAGE_PAUSE_SUBMISSION,
        STAGE_ABORT,
    )


def test_invalid_knobs_rejected():
    with pytest.raises(ValueError):
        make_ladder(polls_per_stage=0)
    with pytest.raises(ValueError):
        make_ladder(recover_polls=0)
    with pytest.raises(ValueError):
        make_ladder(max_pause_s=0)
    with pytest.raises(ValueError):
        make_ladder().on_enter("no_such_stage", lambda: None)


def test_first_pressure_escalates_immediately_then_needs_streak():
    ladder = make_ladder(polls_per_stage=3)
    ladder.note_pressure(["disk low"])
    assert ladder.stage == STAGE_SHED_SNAPSHOTS  # normal never absorbs
    ladder.note_pressure(["disk low"])
    ladder.note_pressure(["disk low"])
    assert ladder.stage == STAGE_SHED_SNAPSHOTS  # streak of 2 < 3
    ladder.note_pressure(["disk low"])
    assert ladder.stage == STAGE_STRETCH_CADENCE


def test_healthy_poll_resets_unhealthy_streak():
    ladder = make_ladder(polls_per_stage=2, recover_polls=100)
    ladder.note_pressure(["x"])  # -> shed_snapshots
    ladder.note_pressure(["x"])  # streak 1
    ladder.note_healthy()  # streak resets
    ladder.note_pressure(["x"])  # streak 1 again
    assert ladder.stage == STAGE_SHED_SNAPSHOTS
    ladder.note_pressure(["x"])  # streak 2 -> escalate
    assert ladder.stage == STAGE_STRETCH_CADENCE


def test_full_climb_and_full_recovery_with_callbacks():
    ladder = make_ladder(polls_per_stage=1, recover_polls=2)
    fired = []
    for stage in STAGES[1:]:
        ladder.on_enter(stage, lambda s=stage: fired.append(("enter", s)))
        ladder.on_exit(stage, lambda s=stage: fired.append(("exit", s)))
    for _ in range(5):
        ladder.note_pressure(["pressure"])
    assert ladder.stage == STAGE_ABORT and ladder.abort_requested
    assert [f for f in fired if f[0] == "enter"] == [
        ("enter", s) for s in STAGES[1:]
    ]
    fired.clear()
    for _ in range(2 * 5):
        ladder.note_healthy()
    assert ladder.stage == STAGE_NORMAL
    assert [f for f in fired if f[0] == "exit"] == [
        ("exit", s) for s in reversed(STAGES[1:])
    ]


def test_paused_at_pause_and_abort_stages():
    ladder = make_ladder(polls_per_stage=1)
    assert not ladder.paused
    for _ in range(4):
        ladder.note_pressure(["p"])
    assert ladder.stage == STAGE_PAUSE_SUBMISSION and ladder.paused
    ladder.note_pressure(["p"])
    assert ladder.stage == STAGE_ABORT and ladder.paused


def test_backpressure_bound_forces_abort():
    clock = FakeClock()
    ladder = make_ladder(polls_per_stage=100, max_pause_s=10.0, clock=clock)
    for _ in range(4):
        ladder._unhealthy_streak = 99  # reach pause quickly despite hysteresis
        ladder.note_pressure(["disk low"])
    assert ladder.stage == STAGE_PAUSE_SUBMISSION
    clock.advance(9.0)
    ladder.note_pressure(["disk low"])
    assert ladder.stage == STAGE_PAUSE_SUBMISSION  # bound not yet hit
    clock.advance(1.5)
    ladder.note_pressure(["disk low"])
    assert ladder.stage == STAGE_ABORT
    assert "backpressure bound exceeded" in ladder.abort_reason


def test_escalate_idempotent_at_abort_and_recover_noop_at_normal():
    ladder = make_ladder()
    assert ladder.recover("nothing") == STAGE_NORMAL
    for _ in range(10):
        ladder.escalate("boom")
    assert ladder.stage == STAGE_ABORT
    assert len(ladder.transitions) == len(STAGES) - 1


def test_action_errors_are_counted_never_propagated():
    reg = MetricsRegistry()
    ladder = make_ladder(registry=reg)

    def bad_action():
        raise RuntimeError("buggy stage action")

    ladder.on_enter(STAGE_SHED_SNAPSHOTS, bad_action)
    ladder.escalate("disk low")  # must not raise
    assert ladder.action_errors == 1
    assert (
        reg.counter(
            "guard_action_errors_total", stage=STAGE_SHED_SNAPSHOTS
        ).value
        == 1
    )


def test_transitions_are_observable_in_metrics_and_log_list():
    reg = MetricsRegistry()
    ladder = make_ladder(registry=reg)
    seen = []
    ladder.on_transition(lambda frm, to, why: seen.append((frm, to, why)))
    ladder.escalate("disk low")
    ladder.recover("space freed")
    assert seen == [
        (STAGE_NORMAL, STAGE_SHED_SNAPSHOTS, "disk low"),
        (STAGE_SHED_SNAPSHOTS, STAGE_NORMAL, "space freed"),
    ]
    assert ladder.transitions == seen
    assert (
        reg.counter(
            "guard_ladder_transitions_total",
            direction="up",
            stage=STAGE_SHED_SNAPSHOTS,
        ).value
        == 1
    )
    assert (
        reg.counter(
            "guard_ladder_transitions_total",
            direction="down",
            stage=STAGE_NORMAL,
        ).value
        == 1
    )
    assert reg.gauge("guard_ladder_stage").value == 0


def test_observer_exception_does_not_break_transition():
    ladder = make_ladder()

    def bad_observer(frm, to, why):
        raise RuntimeError("observer bug")

    ladder.on_transition(bad_observer)
    assert ladder.escalate("p") == STAGE_SHED_SNAPSHOTS


def test_suspend_exporters_round_trip_with_circuit_breaker():
    """The ladder stage wiring the campaign uses: force-open on enter,
    reset on exit, so recovery re-enables the sink."""
    breaker = CircuitBreaker()
    ladder = make_ladder(polls_per_stage=1, recover_polls=1)
    ladder.on_enter(STAGE_SUSPEND_EXPORTERS, breaker.force_open)
    ladder.on_exit(STAGE_SUSPEND_EXPORTERS, breaker.reset)
    for _ in range(3):
        ladder.note_pressure(["p"])
    assert ladder.stage == STAGE_SUSPEND_EXPORTERS
    assert breaker.suspended
    ladder.note_healthy()
    assert ladder.stage == STAGE_STRETCH_CADENCE
    assert not breaker.suspended
