"""Fault-domain registry: the single source of truth for the taxonomy.

Every fault *kind* the simulator understands belongs to exactly one
fault *domain* — a pluggable behaviour module under ``repro.faults``
(see :mod:`repro.faults.domains`).  This module owns the metadata only:
the canonical kind ordering, the kind → domain mapping, per-kind
recovery metadata, and the :class:`FaultDomainSpec` dataclasses that
normalize the flat campaign knobs into per-domain configuration.

Deliberately import-light (stdlib only): ``repro.core.fault_injection``
derives its public ``FAULT_KINDS`` tuple from here, so this module must
not import anything from ``repro.core`` or the domain implementations.

Draw-stream stability
---------------------
``FAULT_KINDS`` is the *cumulative-weight walk order* of
:meth:`repro.core.fault_injection.FaultModel.draw_kind`: a single
uniform draw is compared against the running sum of per-kind weights in
exactly this tuple order.  The order is therefore a frozen contract —
reordering it (or inserting a kind anywhere but the end) silently
reshuffles which kinds historical seeds produce.  New kinds must be
APPENDED, and the registry asserts at import time that every kind maps
to exactly one domain.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

#: canonical fault-kind order — the FaultModel draw-stream contract
#: (append-only; see module docstring)
FAULT_KINDS: tuple[str, ...] = (
    "software",
    "node",
    "sdc",
    "straggler",
    "burst",
    "link",
    "switch",
    "netdeg",
)

#: fault-kind severity ordering for nested-fault merging (network kinds
#: leave node storage intact, so they rank with the mild kinds)
KIND_SEVERITY: dict[str, int] = {
    "software": 0,
    "netdeg": 0,
    "sdc": 1,
    "link": 1,
    "switch": 1,
    "node": 2,
    "burst": 3,
}

#: minimum checkpoint level whose protection domain covers each fault
#: kind: software/transient crashes leave node storage intact (any
#: level), node losses and correlated bursts need partner/RS/PFS
#: protection (Table I); detected SDC restores from any level — the
#: data on disk is intact, it just has to be a *clean* version.
#: Network faults never touch storage, so any level recovers once
#: connectivity is back.
MIN_LEVEL_FOR_KIND: dict[str, int] = {
    "software": 1,
    "sdc": 1,
    "node": 2,
    "burst": 2,
    "link": 1,
    "switch": 1,
    "netdeg": 1,
}


# -- per-domain configuration specs ----------------------------------------------------


@dataclass(frozen=True)
class FaultDomainSpec:
    """Base class for normalized per-domain configuration.

    Campaign configuration historically exposed one flat knob per
    parameter (``sdc_coverage``, ``net_loss_prob``, ...).  Those flat
    fields remain the storage/serialization layer — the campaign spec
    hash and journal records depend on them byte-for-byte — and are now
    deprecated aliases that normalize into these spec objects via
    :meth:`repro.core.campaign.CampaignSpec.fault_domain_specs`.
    """


@dataclass(frozen=True)
class FailStopSpec(FaultDomainSpec):
    """Fail-stop family: software crashes, node losses, correlated bursts."""

    burst_size: int = 3  #: nodes felled together by one ``burst`` fault


@dataclass(frozen=True)
class SdcSpec(FaultDomainSpec):
    """Silent-data-corruption family."""

    coverage: float = 0.95      #: P(strike lands in detector-covered state)
    correct_prob: float = 0.5   #: P(covered strike is ABFT-correctable)


@dataclass(frozen=True)
class StragglerSpec(FaultDomainSpec):
    """Degraded-node (slow clock) family."""

    slowdown: float = 2.0   #: compute-clock slowdown factor on the victim
    repair_s: float = 30.0  #: time until the degradation is repaired


@dataclass(frozen=True)
class NetworkSpec(FaultDomainSpec):
    """Network family: link/switch failures and degraded routes."""

    link_mtbf_s: float = 0.0        #: per-link MTBF folded into the mix (0 = off)
    repair_s: float = 30.0          #: time until the overlay mutation is repaired
    degrade_factor: float = 4.0     #: bandwidth de-rate of a ``netdeg`` fault
    loss_prob: float = 0.05         #: per-message loss probability on degraded links
    fault_split: tuple = ()         #: ((kind, share), ...) link/switch/netdeg split


@dataclass(frozen=True)
class TornCheckpointSpec(FaultDomainSpec):
    """Torn-checkpoint semantics (no knobs of its own: follows
    ``RecoveryPolicy.l1_inplace_writes``)."""


# -- registry entries ------------------------------------------------------------------


@dataclass(frozen=True)
class DomainInfo:
    """One registered fault domain: metadata only, no behaviour."""

    name: str
    kinds: tuple[str, ...]
    spec_cls: type
    summary: str
    #: protocol hooks this domain implements beyond ``apply`` (introspection
    #: for ``repro faults list``; behaviour lives in repro.faults.domains)
    hooks: tuple[str, ...] = ()


REGISTRY: tuple[DomainInfo, ...] = (
    DomainInfo(
        name="failstop",
        kinds=("software", "node", "burst"),
        spec_cls=FailStopSpec,
        summary="Fail-stop crashes: coordinated rollback along the escalation ladder.",
        hooks=("on_failstop_strike",),
    ),
    DomainInfo(
        name="sdc",
        kinds=("sdc",),
        spec_cls=SdcSpec,
        summary="Silent data corruption: latent strikes, ABFT/validation detection.",
        hooks=("on_checkpoint_commit", "on_verify_point", "on_rewind", "reset"),
    ),
    DomainInfo(
        name="straggler",
        kinds=("straggler",),
        spec_cls=StragglerSpec,
        summary="Degraded compute clocks with token-guarded repairs.",
        hooks=("reset",),
    ),
    DomainInfo(
        name="network",
        kinds=("link", "switch", "netdeg"),
        spec_cls=NetworkSpec,
        summary="Topology health overlay: failed/degraded links, partitions.",
        hooks=("blocks_resume", "on_resume_blocked", "reset", "metrics_gauges"),
    ),
    DomainInfo(
        name="torn",
        kinds=(),
        spec_cls=TornCheckpointSpec,
        summary="Torn-checkpoint invalidation on fail-stop strikes.",
        hooks=("on_failstop_strike",),
    ),
)

#: kind -> owning domain name
KIND_TO_DOMAIN: dict[str, str] = {
    kind: info.name for info in REGISTRY for kind in info.kinds
}

#: kinds whose recovery semantics are fail-stop (coordinated rollback)
FAILSTOP_KINDS: frozenset = frozenset(
    next(info.kinds for info in REGISTRY if info.name == "failstop")
)


_MISSING = object()


def domain_for_kind(kind: str, default=_MISSING) -> str:
    """Name of the domain that owns *kind*.

    Raises KeyError on an unknown kind unless *default* is given —
    post-mortem readers pass a default so journals written by a build
    with extra domains still classify instead of crashing.
    """
    if default is _MISSING:
        return KIND_TO_DOMAIN[kind]
    return KIND_TO_DOMAIN.get(kind, default)


def kinds_of(domain: str) -> tuple[str, ...]:
    """The fault kinds owned by *domain*, in canonical order."""
    info = get_domain(domain)
    return tuple(k for k in FAULT_KINDS if k in info.kinds)


def get_domain(name: str) -> DomainInfo:
    for info in REGISTRY:
        if info.name == name:
            return info
    raise KeyError(f"unknown fault domain {name!r}; expected one of "
                   f"{[i.name for i in REGISTRY]}")


def spec_fields(info: DomainInfo) -> list:
    """Dataclass fields of a domain's spec (for introspection/CLI)."""
    return list(fields(info.spec_cls))


# -- structured fault-config files -----------------------------------------------------

#: fault-config JSON section/field -> CampaignSpec flat kwarg.  The file
#: layout mirrors the domain specs; the mapping keeps CampaignSpec (and
#: with it the spec hash and journals) byte-stable.
_CONFIG_FIELD_MAP: dict[str, dict[str, str]] = {
    "failstop": {"burst_size": "burst_size"},
    "sdc": {"coverage": "sdc_coverage", "correct_prob": "sdc_correct_prob"},
    "straggler": {
        "slowdown": "straggler_slowdown",
        "repair_s": "straggler_repair_s",
    },
    "network": {
        "link_mtbf_s": "net_link_mtbf_s",
        "repair_s": "net_repair_s",
        "degrade_factor": "net_degrade_factor",
        "loss_prob": "net_loss_prob",
        "topology": "net_topology",
        "fault_split": "net_fault_split",
    },
    "torn": {},
}


def campaign_kwargs_from_config(cfg: dict) -> dict:
    """Map a structured fault-config document onto flat campaign kwargs.

    The document has one section per domain plus an optional top-level
    ``"mix"`` (kind -> weight).  Unknown sections or fields raise
    ``ValueError`` naming the offender — a config file that silently
    ignored a typo would be worse than no file.
    """
    if not isinstance(cfg, dict):
        raise ValueError(f"fault config must be a JSON object, got {type(cfg).__name__}")
    out: dict = {}
    for section, value in cfg.items():
        if section == "mix":
            if not isinstance(value, dict):
                raise ValueError("fault config 'mix' must map kind -> weight")
            unknown = sorted(set(value) - set(FAULT_KINDS))
            if unknown:
                raise ValueError(f"unknown fault kinds in mix: {unknown}")
            out["fault_mix"] = {str(k): float(v) for k, v in value.items()}
            continue
        field_map = _CONFIG_FIELD_MAP.get(section)
        if field_map is None:
            raise ValueError(
                f"unknown fault-config section {section!r}; expected one of "
                f"{sorted([*_CONFIG_FIELD_MAP, 'mix'])}"
            )
        if not isinstance(value, dict):
            raise ValueError(f"fault-config section {section!r} must be an object")
        for key, raw in value.items():
            dest = field_map.get(key)
            if dest is None:
                raise ValueError(
                    f"unknown field {key!r} in fault-config section {section!r}; "
                    f"expected one of {sorted(field_map)}"
                )
            if dest == "net_fault_split":
                if not isinstance(raw, dict):
                    raise ValueError("network.fault_split must map kind -> share")
                raw = tuple(sorted((str(k), float(v)) for k, v in raw.items()))
            elif dest == "net_topology":
                raw = str(raw)
            else:
                # coerce to the CampaignSpec field's numeric type so a
                # JSON "1" and "1.0" build byte-identical spec records
                try:
                    raw = int(raw) if dest == "burst_size" else float(raw)
                except (TypeError, ValueError):
                    raise ValueError(
                        f"fault-config {section}.{key} must be a number, "
                        f"got {raw!r}"
                    ) from None
            out[dest] = raw
    return out


def _check_registry() -> None:
    seen: dict[str, str] = {}
    for info in REGISTRY:
        for kind in info.kinds:
            if kind in seen:
                raise AssertionError(
                    f"fault kind {kind!r} claimed by both {seen[kind]!r} "
                    f"and {info.name!r}"
                )
            seen[kind] = info.name
    missing = [k for k in FAULT_KINDS if k not in seen]
    extra = [k for k in seen if k not in FAULT_KINDS]
    if missing or extra:
        raise AssertionError(
            f"registry/kind mismatch: missing={missing} extra={extra}"
        )


_check_registry()
