"""Shared recovery context for the pluggable fault domains.

:class:`RecoveryContext` owns everything the fault domains coordinate
through — the escalation-ladder walk, :class:`RecoveryEpisode`
attribution, the waste buckets, flight-recorder notes, and guarded
metric emission — so the domains themselves stay stateless about each
other.  The lifecycle logic is moved verbatim from the pre-refactor
``BESSTSimulator`` methods: the RNG draw sites, their order, and every
charge to the waste buckets are unchanged, which is what keeps
identical seeds byte-identical across the refactor (see
``tests/core/test_golden_bitidentity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.des.event import Event
from repro.faults.registry import KIND_SEVERITY, MIN_LEVEL_FOR_KIND

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.simulator import BESSTSimulator


@dataclass
class RecoveryEpisode:
    """Mutable state of one fault episode (fault → recovered/requeued).

    Nested faults extend the episode: they refresh ``kind`` (to the worst
    severity seen) but keep ``fault_time``, the credited rework and the
    cumulative ``attempts`` bound — the latter is what guarantees
    termination under fault storms.
    """

    kind: str
    fault_time: float
    #: escalation ladder, frozen when the episode starts (each attempt's
    #: rollback truncates newer restart history, so recomputing it per
    #: attempt would shift the rung targets under the episode's feet)
    ladder: list = field(default_factory=list)
    attempts: int = 0
    rung: int = 0                  #: escalation-ladder index
    rework_credited: float = 0.0   #: lost progress already charged to waste
    requeued: bool = False         #: waiting out a resubmission delay
    #: detection-triggered SDC recovery: the ladder must skip checkpoints
    #: written while the corruption was latent (sticky across nested-fault
    #: kind merging — the corrupt data does not get cleaner because a
    #: node also died)
    avoid_corrupt: bool = False
    # -- forensic bookkeeping (observation-only: derived from charges the
    # -- lifecycle already makes, never feeding back into scheduling) ----
    episode_id: int = -1
    downtime_s: float = 0.0        #: detection/restore/retry delays charged here
    requeue_s: float = 0.0         #: resubmission delays charged here
    fault_ids: list = field(default_factory=list)  #: injector-log ids, primary first
    phases: list = field(default_factory=list)     #: [t, phase, data] timeline


#: per-episode phase timelines are bounded so a fault storm cannot grow
#: a replica record without limit (the waste charges stay exact)
MAX_EPISODE_PHASES = 128


class RecoveryContext:
    """Coordinates the fault domains through one shared lifecycle.

    The context owns the recovery state machine (episode, ladder walk,
    attempts, requeue/abort), the fault-attributable waste accounting,
    and the observational plumbing (flight-recorder notes, episode phase
    timelines, metric emission).  Domains reach each other only through
    broadcast hooks the context fans out (``on_failstop_strike``,
    ``on_rewind``, ``reset``, ``blocks_resume``), never directly.
    """

    def __init__(self, sim: "BESSTSimulator") -> None:
        self.sim = sim
        self.policy = sim.policy
        #: filled by the simulator right after domain construction
        self.domains: tuple = ()
        self.recovery: Optional[RecoveryEpisode] = None
        self.recovery_event: Optional[Event] = None
        self.recovery_rng = sim.engine.rngs.get("__recovery__")
        #: globally committed checkpoint seqs invalidated by torn writes
        self.invalid_seqs: set[int] = set()
        #: globally committed checkpoint seqs written while SDC was latent
        self.corrupt_seqs: set[int] = set()
        self.aborted = False
        self.abort_time = 0.0
        self.spares_left = self.policy.n_spares
        # lifecycle counters
        self.faults_injected = 0
        self.faults_by_kind: dict[str, int] = {}
        self.rollbacks = 0
        self.nested_faults = 0
        self.torn_checkpoints = 0
        self.verify_failures = 0
        self.escalations = 0
        self.recovery_attempts = 0
        self.requeues = 0
        # fault-attributable waste buckets
        self.waste_rework = 0.0
        self.waste_downtime = 0.0
        self.waste_requeue = 0.0
        # forensic state (observation-only; nothing here touches a draw
        # stream or schedules an event, so results are identical with or
        # without a flight recorder attached)
        self.episodes: list[dict] = []
        self.episode_seq = 0

    # -- guarded metric emission -------------------------------------------------------
    #
    # One lazy-import funnel for every fault/recovery metric: faults are
    # rare relative to simulation events, and keeping the registry lookup
    # here means domains never repeat the import/None-guard boilerplate.

    def _metrics(self):
        from repro.obs.metrics import get_registry

        return get_registry()

    def emit_counter(self, name: str, help: str, inc: float = 1, **labels) -> None:
        """Increment a process-global counter (no-op-safe, lazily bound)."""
        self._metrics().counter(name, help=help, **labels).inc(inc)

    def emit_gauge(self, name: str, help: str, value: float) -> None:
        """Set a process-global gauge."""
        self._metrics().gauge(name, help=help).set(float(value))

    def emit_histogram(self, name: str, help: str, value: float) -> None:
        """Observe one sample on a process-global histogram."""
        self._metrics().histogram(name, help=help).observe(value)

    # -- forensics ---------------------------------------------------------------------

    def note(self, what: str, **data) -> None:
        """Mirror one lifecycle record into the attached flight recorder."""
        rec = self.sim._flightrec
        if rec is not None:
            rec.record(what, self.sim.engine.now, **data)

    def episode_phase(self, episode: RecoveryEpisode, phase: str, **data) -> None:
        """Append one phase to the episode timeline (bounded) and mirror
        it into the flight recorder."""
        if len(episode.phases) < MAX_EPISODE_PHASES:
            episode.phases.append([self.sim.engine.now, phase, data])
        self.note(phase, episode=episode.episode_id, **data)

    def close_episode(self, episode: RecoveryEpisode, outcome: str) -> None:
        """Freeze one finished recovery episode into a summary record.

        The waste fields are the exact charges this episode made to the
        rework/downtime/requeue buckets, so summing episode waste
        reproduces the replica totals (the reconciliation invariant
        ``core.forensics`` relies on).
        """
        self.episodes.append(
            {
                "id": episode.episode_id,
                "kind": episode.kind,
                "t_fault": episode.fault_time,
                "t_end": self.sim.engine.now,
                "outcome": outcome,
                "attempts": episode.attempts,
                "rung": episode.rung,
                "rework_s": episode.rework_credited,
                "downtime_s": episode.downtime_s,
                "requeue_s": episode.requeue_s,
                "faults": [f for f in episode.fault_ids if f >= 0],
                "phases": list(episode.phases),
            }
        )
        self.note("episode_end", episode=episode.episode_id, outcome=outcome)

    def new_episode(self, fid: int, **kwargs) -> RecoveryEpisode:
        episode = RecoveryEpisode(episode_id=self.episode_seq, **kwargs)
        self.episode_seq += 1
        if fid >= 0:
            episode.fault_ids.append(fid)
        return episode

    # -- injection bookkeeping ---------------------------------------------------------

    def count_injection(self, kind: str) -> None:
        """Per-kind injection counters plus the obs-registry mirror."""
        self.faults_injected += 1
        self.faults_by_kind[kind] = self.faults_by_kind.get(kind, 0) + 1
        self.emit_counter(
            "fault_injected_total",
            help="Faults injected into the simulator, by kind.",
            kind=kind,
        )

    # -- recovery lifecycle ------------------------------------------------------------

    def pause_job(self) -> None:
        """Pause the whole job: collectives, batches, pending resumes."""
        sim = self.sim
        sim.sync.reset(sim.engine)
        for rank in sim._ranks:
            rank.pause()
        sim._finished = 0

    def failstop_strike(self, now: float, node: int) -> None:
        """Broadcast one fail-stop strike at *node* to every domain
        (torn-checkpoint invalidation rides on this hook)."""
        for domain in self.domains:
            domain.on_failstop_strike(now, node)

    def enter_recovery(self, kind: str, now: float, fid: int = -1) -> None:
        """Pause the whole job and enter (or re-enter) a recovery episode."""
        self.pause_job()
        if self.recovery is not None:
            # Nested fault: the recovery in flight is itself interrupted.
            # Re-enter recovery, paying fresh downtime; the episode's
            # attempt budget keeps accumulating so fault storms terminate.
            self.nested_faults += 1
            if self.recovery_event is not None:
                self.sim.engine.cancel(self.recovery_event)
                self.recovery_event = None
            episode = self.recovery
            if fid >= 0:
                episode.fault_ids.append(fid)
            self.episode_phase(episode, "nested_fault", fault=fid, fault_kind=kind)
            if KIND_SEVERITY[kind] > KIND_SEVERITY[episode.kind]:
                episode.kind = kind
                # A worse kind shrinks the candidate set; refresh the
                # ladder so no rung points at an uncovered checkpoint.
                episode.ladder = self.candidate_ladder(
                    kind, avoid_corrupt=episode.avoid_corrupt
                )
            # The episode's fault_time and credited rework stand: ranks
            # are paused during recovery, so the nested fault exposes no
            # new lost progress — only fresh downtime (charged below).
        else:
            self.recovery = self.new_episode(
                fid, kind=kind, fault_time=now, ladder=self.candidate_ladder(kind)
            )
            self.episode_phase(self.recovery, "detect", fault=fid, fault_kind=kind)
        self.start_attempt()

    def begin_avoidant_recovery(
        self, kind: str, fault_ids: list[int], **phase_data
    ) -> None:
        """Detection-triggered recovery (SDC): pause the job and recover,
        skipping checkpoints written while the corruption was latent."""
        self.pause_job()
        episode = self.new_episode(
            -1,
            kind=kind,
            fault_time=self.sim.engine.now,
            ladder=self.candidate_ladder(kind, avoid_corrupt=True),
            avoid_corrupt=True,
        )
        episode.fault_ids.extend(f for f in fault_ids if f >= 0)
        self.recovery = episode
        self.episode_phase(episode, "detect", **phase_data)
        self.start_attempt()

    def candidate_ladder(self, kind: str, avoid_corrupt: bool = False) -> list[int]:
        """Restart candidates, newest-first along the escalation ladder.

        One rung per protection tier (L1, L2, L4) at or above the fault
        kind's minimum level, each resolved to the newest globally
        committed, non-torn checkpoint covered by that tier; the final
        rung is always 0 — full restart from the input deck.  With
        *avoid_corrupt* (detected-SDC recovery) checkpoints written while
        the corruption was latent are skipped too: recovery reaches past
        the newest checkpoint to the last *clean* version.
        """
        ranks = self.sim._ranks
        min_level = MIN_LEVEL_FOR_KIND[kind]
        seq_star = min(r.ckpt_seq for r in ranks)
        committed: list[tuple[int, int]] = []
        for seq in range(seq_star, 0, -1):
            if seq in self.invalid_seqs:
                continue
            if avoid_corrupt and seq in self.corrupt_seqs:
                continue
            entries = [r.restart_history.get(seq) for r in ranks]
            if any(e is None for e in entries):
                continue
            committed.append((seq, entries[0][4]))
        ladder: list[int] = []
        for tier in (1, 2, 4):
            if tier < min_level:
                continue
            for seq, level in committed:
                if level >= tier:
                    if seq not in ladder:
                        ladder.append(seq)
                    break
        ladder.append(0)
        return ladder

    def start_attempt(self) -> None:
        """Begin one recovery attempt: roll back, pay downtime, verify."""
        sim = self.sim
        episode = self.recovery
        episode.attempts += 1
        if episode.attempts > self.policy.max_attempts:
            self.requeue_or_abort()
            return
        self.recovery_attempts += 1
        for domain in self.domains:
            domain.on_recovery_attempt(episode)
        seq = episode.ladder[min(episode.rung, len(episode.ladder) - 1)]
        delay = sim.archbeo.recovery_time_s + self.policy.retry_extra_delay(
            episode.attempts
        )
        self.charge_rework(episode, seq)
        self.waste_downtime += delay
        episode.downtime_s += delay
        self.episode_phase(
            episode, "attempt", n=episode.attempts, rung=episode.rung,
            seq=seq, delay=delay,
        )
        self.rollbacks += 1
        # Verification is scheduled before the per-rank resumes so it
        # fires first on timestamp ties (deterministic seq ordering).
        self.recovery_event = sim.engine.schedule(
            delay, self.verify_attempt, payload=seq
        )
        for rank in sim._ranks:
            ckpt_cost = rank.restart_history[seq][3]
            rank.rollback(seq, delay + ckpt_cost)

    def charge_rework(self, episode: RecoveryEpisode, seq: int) -> None:
        """Charge newly exposed lost progress (relative to the episode's
        latest fault) to the rework-waste bucket, without double-counting
        across escalating attempts."""
        sim = self.sim
        lost = sum(
            (episode.fault_time - rank.restart_history[seq][2]) / sim.nranks
            for rank in sim._ranks
        )
        if lost > episode.rework_credited:
            self.waste_rework += lost - episode.rework_credited
            episode.rework_credited = lost

    def verify_attempt(self, ev: Event) -> None:
        """Read-back verification at the end of one recovery attempt."""
        sim = self.sim
        self.recovery_event = None
        episode = self.recovery
        seq = ev.payload
        ok = (
            seq == 0  # restart from the input deck: nothing to verify
            or self.policy.verify_fail_prob <= 0.0
            or float(self.recovery_rng.random()) >= self.policy.verify_fail_prob
        )
        if ok:
            blocker = next(
                (d for d in self.domains if d.blocks_resume()), None
            )
            if blocker is not None:
                # The data verified, but the participant set is still
                # partitioned: resuming would hang on the first rendezvous.
                # Stall in recovery (one attempt consumed — the episode's
                # attempt budget bounds the wait) until a repair restores
                # connectivity or the job requeues onto a healthy fabric.
                blocker.on_resume_blocked()
                self.episode_phase(episode, "partition_stall", seq=seq)
                for rank in sim._ranks:
                    rank.pause()
                self.start_attempt()
                return
            # Checkpoints discarded by the rollback may get their sequence
            # numbers reused; drop their stale torn- and corrupt-markers.
            self.invalid_seqs = {q for q in self.invalid_seqs if q <= seq}
            self.corrupt_seqs = {q for q in self.corrupt_seqs if q <= seq}
            for domain in self.domains:
                # SDC: the restored state predates every surviving latent
                # strike, so the rewind erases them all (unless the target
                # itself is corrupt).
                domain.on_rewind(seq)
            self.episode_phase(episode, "verify_ok", seq=seq)
            self.close_episode(episode, "recovered")
            self.recovery = None
            return  # ranks resume on their already-scheduled events
        self.verify_failures += 1
        self.escalations += 1
        episode.rung += 1
        self.episode_phase(episode, "verify_fail", seq=seq, rung=episode.rung)
        for rank in sim._ranks:
            rank.pause()  # cancel the resumes; stay in recovery
        self.start_attempt()

    def requeue_or_abort(self) -> None:
        """Recovery exhausted: resubmit the job, or give up."""
        episode = self.recovery
        if self.requeues >= self.policy.max_requeues:
            self.abort()
            return
        self.requeues += 1
        delay = self.policy.requeue_delay_s
        if episode.kind in ("node", "burst"):
            if self.spares_left > 0:
                self.spares_left -= 1
                delay += self.policy.spare_swap_s
            else:
                # Graceful degradation: no spare left — stall for a full
                # node rebuild instead of failing the resubmission.
                delay += self.policy.spare_rebuild_s
        self.waste_requeue += delay
        episode.requeue_s += delay
        self.charge_rework(episode, 0)
        self.rollbacks += 1
        episode.requeued = True
        self.episode_phase(
            episode, "requeue", delay=delay, spares_left=self.spares_left
        )
        self.recovery_event = self.sim.engine.schedule(delay, self.requeue_done)

    def requeue_done(self, ev: Event) -> None:
        """The resubmitted job starts from the input deck."""
        sim = self.sim
        self.recovery_event = None
        episode = self.recovery
        self.episode_phase(episode, "requeue_done")
        self.close_episode(episode, "requeued")
        self.recovery = None
        self.invalid_seqs.clear()
        self.corrupt_seqs.clear()
        # The repaired allocation has no latent corruption, no degraded
        # nodes, and a healthy fabric: every domain resets.
        for domain in self.domains:
            domain.reset()
        if sim.fault_injector is not None:
            sim.fault_injector.notify_requeue()
        for rank in sim._ranks:
            rank.rollback(0, 0.0)

    def abort(self) -> None:
        """Requeues exhausted: the job is lost.  Ranks stay paused, the
        event queue drains, and ``run`` reports ``completed=False``
        instead of raising."""
        self.aborted = True
        self.abort_time = self.sim.engine.now
        episode = self.recovery
        if episode is not None:
            self.episode_phase(episode, "abort")
            self.close_episode(episode, "aborted")
        self.recovery = None
        if self.sim.fault_injector is not None:
            self.sim.fault_injector.detach()

    # -- result assembly ---------------------------------------------------------------

    def result_fields(self) -> dict:
        """Lifecycle counters for :class:`SimulationResult` assembly."""
        return {
            "faults_injected": self.faults_injected,
            "rollbacks": self.rollbacks,
            "wasted_time": self.wasted_time,
            "completed": not self.aborted,
            "nested_faults": self.nested_faults,
            "torn_checkpoints": self.torn_checkpoints,
            "verify_failures": self.verify_failures,
            "escalations": self.escalations,
            "recovery_attempts": self.recovery_attempts,
            "requeues": self.requeues,
            "waste_rework": self.waste_rework,
            "waste_downtime": self.waste_downtime,
            "waste_requeue": self.waste_requeue,
            "faults_by_kind": dict(sorted(self.faults_by_kind.items())),
            "episodes": list(self.episodes),
        }

    @property
    def wasted_time(self) -> float:
        """Total fault-attributable waste (rework + downtime + requeue)."""
        return self.waste_rework + self.waste_downtime + self.waste_requeue
