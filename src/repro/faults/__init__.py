"""Pluggable fault-domain subsystem.

Layout:

* :mod:`repro.faults.registry` — taxonomy metadata: the canonical
  ``FAULT_KINDS`` order, kind → domain mapping, per-kind recovery
  metadata, and the ``FaultDomainSpec`` config dataclasses.  Import-light
  by contract: ``repro.core.fault_injection`` derives ``FAULT_KINDS``
  from it.
* :mod:`repro.faults.context` — the shared :class:`RecoveryContext`
  (ladder walk, episode attribution, waste accounting, flight-recorder
  notes, guarded metric emission).
* :mod:`repro.faults.domains` — the :class:`FaultDomain` protocol and
  the concrete fail-stop / SDC / straggler / network / torn-checkpoint
  implementations.

The package body imports only the registry eagerly; the context and
domain modules import ``repro.core.fault_injection``, which itself
imports the registry — loading them from here at package-init time
would make that import circular.  ``__getattr__`` resolves the
re-exports on first use instead.
"""

from repro.faults.registry import (  # noqa: F401
    FAILSTOP_KINDS,
    FAULT_KINDS,
    KIND_SEVERITY,
    KIND_TO_DOMAIN,
    MIN_LEVEL_FOR_KIND,
    REGISTRY,
    DomainInfo,
    FailStopSpec,
    FaultDomainSpec,
    NetworkSpec,
    SdcSpec,
    StragglerSpec,
    TornCheckpointSpec,
    campaign_kwargs_from_config,
    domain_for_kind,
    kinds_of,
)

_LAZY = {
    "RecoveryContext": ("repro.faults.context", "RecoveryContext"),
    "RecoveryEpisode": ("repro.faults.context", "RecoveryEpisode"),
    "FaultDomain": ("repro.faults.domains", "FaultDomain"),
    "FailStopDomain": ("repro.faults.domains", "FailStopDomain"),
    "SdcDomain": ("repro.faults.domains", "SdcDomain"),
    "StragglerDomain": ("repro.faults.domains", "StragglerDomain"),
    "NetworkDomain": ("repro.faults.domains", "NetworkDomain"),
    "TornCheckpointDomain": ("repro.faults.domains", "TornCheckpointDomain"),
    "DOMAIN_CLASSES": ("repro.faults.domains", "DOMAIN_CLASSES"),
    "build_domains": ("repro.faults.domains", "build_domains"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
