"""Concrete fault domains: the pluggable behaviour behind each kind.

Each :class:`FaultDomain` owns the state and mechanics of one fault
family (fail-stop, SDC, straggler, network, torn-checkpoint) and talks
to the rest of the system only through the shared
:class:`~repro.faults.context.RecoveryContext` — never to another
domain directly.  The bodies are moved verbatim from the pre-refactor
``BESSTSimulator`` ``_apply_*``/``_sdc_*``/``_net_*``/``_straggler_*``
method families; every RNG draw site and its order is unchanged, so
identical seeds produce byte-identical output across the refactor.

Adding a new domain means: subclass :class:`FaultDomain`, register its
metadata in :mod:`repro.faults.registry` (APPENDING new kinds to
``FAULT_KINDS``), and add it to :func:`build_domains` — the simulator
core needs no edits (see README, "Adding a fault domain").
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Optional

from repro.core.fault_injection import FaultDetail, FaultEvent
from repro.des.event import Event
from repro.faults.registry import REGISTRY, kinds_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.simulator import BESSTSimulator, _Rank
    from repro.faults.context import RecoveryContext, RecoveryEpisode


class FaultDomain:
    """Protocol base for one pluggable fault family.

    Subclasses override ``apply`` (mandatory for domains that own
    kinds) plus whichever lifecycle hooks their semantics need; every
    hook has a no-op default so the context can broadcast without
    caring which domains participate.
    """

    #: registry name (must match a ``DomainInfo`` entry)
    name: str = ""
    #: fault kinds this domain owns (canonical order)
    kinds: tuple[str, ...] = ()

    def __init__(self, sim: "BESSTSimulator", ctx: "RecoveryContext") -> None:
        self.sim = sim
        self.ctx = ctx

    # -- dispatch ----------------------------------------------------------------------

    def wants(self, kind: str) -> bool:
        """True when this domain owns *kind*."""
        return kind in self.kinds

    def default_detail(self, kind: str, node: int) -> FaultDetail:
        """Kind-specific parameters applied when ``inject_fault`` is
        called directly (the injector always draws its own)."""
        return FaultDetail(victims=(node,), slowdown=2.0)

    def apply(
        self,
        kind: str,
        node: int,
        detail: FaultDetail,
        event: FaultEvent,
        fid: int = -1,
    ) -> None:
        """Apply one injected fault of *kind* at *node*."""
        raise NotImplementedError(f"{type(self).__name__} owns no kinds")

    # -- lifecycle hooks (broadcast by the context / simulator) ------------------------

    def on_checkpoint_commit(self, rank: "_Rank", seq: int) -> bool:
        """A rank committed checkpoint *seq*.  Return True when the hook
        started a recovery episode (the caller must not advance)."""
        return False

    def on_verify_point(self, rank: "_Rank") -> bool:
        """A rank committed an ABFT Verify kernel.  Return True when the
        hook started a recovery episode."""
        return False

    def on_recovery_attempt(self, episode: "RecoveryEpisode") -> None:
        """One recovery attempt is starting (observational)."""

    def on_failstop_strike(self, now: float, node: int) -> None:
        """A fail-stop fault struck *node* at *now*."""

    def on_rewind(self, seq: int) -> None:
        """A verified rollback restored checkpoint *seq* job-wide."""

    def blocks_resume(self) -> bool:
        """True while this domain prevents the job from resuming."""
        return False

    def on_resume_blocked(self) -> None:
        """This domain's ``blocks_resume`` stalled a recovery attempt."""

    def reset(self) -> None:
        """Requeue onto a fresh allocation: drop this domain's live state."""

    def result_fields(self) -> dict:
        """This domain's contribution to ``SimulationResult`` assembly."""
        return {}

    def metrics_gauges(self) -> dict:
        """Current gauge values: ``name -> (help, value)``."""
        return {}

    def push_gauges(self) -> None:
        """Publish :meth:`metrics_gauges` into the obs registry."""
        for name, (help, value) in self.metrics_gauges().items():
            self.ctx.emit_gauge(name, help, value)

    # -- introspection -----------------------------------------------------------------

    _STATE_EXCLUDE = ("sim", "ctx")

    def snapshot_state(self) -> dict:
        """Deep copy of this domain's mutable state (tests/debugging;
        whole-simulator snapshots pickle the domain object itself)."""
        return {
            k: copy.deepcopy(v)
            for k, v in self.__dict__.items()
            if k not in self._STATE_EXCLUDE
        }

    def restore_state(self, state: dict) -> None:
        """Load a :meth:`snapshot_state` dict back into this domain."""
        for k, v in state.items():
            if k in self._STATE_EXCLUDE:
                raise ValueError(f"refusing to restore wiring attribute {k!r}")
            setattr(self, k, v)


class FailStopDomain(FaultDomain):
    """Fail-stop crashes: software faults, node losses, correlated bursts.

    The strike broadcast lets the torn-checkpoint domain invalidate
    in-progress writes before the context enters the escalation ladder.
    """

    name = "failstop"
    kinds = kinds_of("failstop")

    def apply(self, kind, node, detail, event, fid=-1):
        now = self.sim.engine.now
        for victim in detail.victims if kind == "burst" else (node,):
            self.ctx.failstop_strike(now, victim)
        self.ctx.enter_recovery(kind, now, fid)


class TornCheckpointDomain(FaultDomain):
    """Torn-checkpoint semantics, triggered by fail-stop strikes."""

    name = "torn"
    kinds = ()

    def on_failstop_strike(self, now: float, node: int) -> None:
        """Invalidate checkpoints torn by a fault at *now*.

        The in-progress instance never commits (its batch is cancelled).
        Additionally, with in-place L1 writes, a rank mid-L1-checkpoint
        on the failed node has already destroyed its previous local copy;
        if that previous committed checkpoint is only L1-protected, the
        whole instance becomes unusable as a restart point (L1 recovery
        needs every node's copy).
        """
        sim, ctx = self.sim, self.ctx
        for rank in sim._ranks:
            level = rank.checkpoint_in_progress(now)
            if level is None:
                continue
            ctx.torn_checkpoints += 1
            ctx.note("torn_checkpoint", rank=rank.rank, level=level)
            if (
                level == 1
                and ctx.policy.l1_inplace_writes
                and sim.archbeo.node_of_rank(rank.rank) == node
            ):
                seq = rank.ckpt_seq
                if seq > 0 and rank.restart_history[seq][4] == 1:
                    ctx.invalid_seqs.add(seq)


class SdcDomain(FaultDomain):
    """Silent data corruption: latent strikes and their detection points."""

    name = "sdc"
    kinds = kinds_of("sdc")

    def __init__(self, sim, ctx):
        super().__init__(sim, ctx)
        self.rng = sim.engine.rngs.get("__sdc__")
        #: rank -> latent strikes: {"armed", "covered", "correctable", "event"}
        self.latent: dict[int, list[dict]] = {}
        self.injected = 0
        self.detected = 0
        self.corrected = 0
        self.detect_latency_s = 0.0

    def apply(self, kind, node, detail, event, fid=-1):
        """Arm a latent corruption flag on the first rank of *node*."""
        sim = self.sim
        self.injected += 1
        victim = next(
            (
                r.rank
                for r in sim._ranks
                if sim.archbeo.node_of_rank(r.rank) == node
            ),
            None,
        )
        if victim is None:
            # The strike hit memory no simulated rank owns: benign.
            event.outcome = "no_effect"
            return
        self.latent.setdefault(victim, []).append(
            {
                "armed": sim.engine.now,
                "covered": detail.covered,
                "correctable": detail.correctable,
                "event": event,
                "fid": fid,
            }
        )

    def on_checkpoint_commit(self, rank, seq):
        """A rank committed checkpoint *seq*.

        A flagged rank bakes its corruption into the written version
        (the whole global instance becomes unusable as a clean restart
        point).  With write validation enabled, the corrupt write is a
        secondary detection point.  Returns True when detection started
        a recovery episode (the caller must not advance).
        """
        strikes = self.latent.get(rank.rank)
        if not strikes:
            return False
        self.ctx.corrupt_seqs.add(seq)
        if self.ctx.policy.ckpt_validate_prob > 0 and any(
            s["covered"] for s in strikes
        ):
            caught = (
                float(self.rng.random()) < self.ctx.policy.ckpt_validate_prob
            )
            if caught:
                return self._detect(rank, path="ckpt_validate")
        return False

    def on_verify_point(self, rank):
        """A rank committed an ABFT Verify kernel — the primary detector.

        Returns True when detection started a recovery episode.
        """
        if not self.latent.get(rank.rank):
            return False
        return self._detect(rank, path="verify")

    def _detect(self, rank, path: str) -> bool:
        """Observe *rank*'s covered latent strikes at a detection point.

        All covered strikes are detected together (the checksum check
        sees the accumulated damage).  If every one is within ABFT's
        correction capability, they are fixed in place; otherwise the
        job enters a recovery episode that rolls back past the last
        clean checkpoint.  Uncovered strikes stay latent — the detector
        cannot see them.
        """
        ctx = self.ctx
        if ctx.recovery is not None:
            return False
        strikes = self.latent.get(rank.rank, [])
        covered = [s for s in strikes if s["covered"]]
        if not covered:
            return False
        now = self.sim.engine.now
        all_correctable = all(s["correctable"] for s in covered)
        for s in covered:
            self.detected += 1
            latency = now - s["armed"]
            self.detect_latency_s += latency
            ev = s["event"]
            ev.detected_time = now
            ev.outcome = "corrected" if all_correctable else "rolled_back"
            self._record_detection(path, latency, ev.outcome)
        if all_correctable:
            self.corrected += len(covered)
            ctx.note("sdc_corrected", rank=rank.rank, path=path, n=len(covered))
            remaining = [s for s in strikes if not s["covered"]]
            if remaining:
                self.latent[rank.rank] = remaining
            else:
                del self.latent[rank.rank]
            return False
        # Rollback path: recover past the last clean checkpoint.
        ctx.begin_avoidant_recovery(
            "sdc",
            [s.get("fid", -1) for s in covered],
            path=path,
            n=len(covered),
        )
        return True

    def _record_detection(self, path: str, latency: float, outcome: str) -> None:
        self.ctx.emit_counter(
            "sdc_detected_total",
            help="Latent SDC strikes observed, by detection path and outcome.",
            path=path,
            outcome=outcome,
        )
        self.ctx.emit_histogram(
            "sdc_detection_latency_s",
            help="Injection-to-detection latency of observed SDC strikes.",
            value=latency,
        )

    def clear_latent(self, outcome: str) -> None:
        """Drop every latent strike (a rewind restored clean state),
        recording *outcome* on events that never reached a detector."""
        for strikes in self.latent.values():
            for s in strikes:
                ev = s["event"]
                if not ev.outcome:
                    ev.outcome = outcome
        self.latent.clear()

    def on_rewind(self, seq: int) -> None:
        # The restored state predates every surviving latent strike (a
        # strike armed before this checkpoint's commit would have tainted
        # it), so the rewind erases them all.
        if seq not in self.ctx.corrupt_seqs:
            self.clear_latent("erased")

    def reset(self) -> None:
        self.clear_latent("erased")

    def finalize_undetected(self) -> int:
        """Stamp strikes still latent at the end of the run: they were
        never seen by any detector."""
        undetected = 0
        for strikes in self.latent.values():
            for s in strikes:
                undetected += 1
                ev = s["event"]
                if not ev.outcome:
                    ev.outcome = "undetected"
        return undetected

    def result_fields(self) -> dict:
        undetected = self.finalize_undetected()
        wrong_result = (not self.ctx.aborted) and undetected > 0
        if wrong_result:
            self.ctx.emit_counter(
                "sim_wrong_result_total",
                help="Runs that finished carrying undetected silent corruption.",
            )
            self.ctx.note("wrong_result", undetected=undetected)
        return {
            "sdc_injected": self.injected,
            "sdc_detected": self.detected,
            "sdc_corrected": self.corrected,
            "sdc_undetected": undetected,
            "wrong_result": wrong_result,
            "sdc_detect_latency_s": self.detect_latency_s,
        }


class StragglerDomain(FaultDomain):
    """Degraded compute clocks with token-guarded repairs."""

    name = "straggler"
    kinds = kinds_of("straggler")

    def __init__(self, sim, ctx):
        super().__init__(sim, ctx)
        #: node -> compute-clock slowdown factor
        self.node_slowdown: dict[int, float] = {}
        #: node -> generation token guarding stale repair events
        self.token: dict[int, int] = {}
        self.excess_s = 0.0
        self.excess_by_node: dict[int, float] = {}

    def apply(self, kind, node, detail, event, fid=-1):
        """Degrade *node*'s compute clock; schedule its repair."""
        self.node_slowdown[node] = max(
            self.node_slowdown.get(node, 1.0), detail.slowdown
        )
        token = self.token.get(node, 0) + 1
        self.token[node] = token
        if detail.repair_s > 0:
            # Token-guarded: a newer straggler on the same node outdates
            # this repair (the node stays degraded until the *last* one
            # is fixed).
            self.sim.engine.schedule(
                detail.repair_s, self._repaired, payload=(node, token)
            )

    def _repaired(self, ev: Event) -> None:
        node, token = ev.payload
        if self.token.get(node) != token:
            return  # a newer degradation superseded this repair
        self.node_slowdown.pop(node, None)

    def slowdown_for_rank(self, rank: int) -> float:
        if not self.node_slowdown:
            return 1.0
        return self.node_slowdown.get(self.sim.archbeo.node_of_rank(rank), 1.0)

    def note_excess(self, rank: int, excess: float) -> None:
        """Credit one batch's straggler-inflated runtime (job-time share)."""
        share = excess / self.sim.nranks
        self.excess_s += share
        node = self.sim.archbeo.node_of_rank(rank)
        self.excess_by_node[node] = self.excess_by_node.get(node, 0.0) + share

    def reset(self) -> None:
        # The repaired allocation has no degraded nodes (repair tokens
        # keep guarding in-flight events from the old allocation).
        self.node_slowdown.clear()

    def result_fields(self) -> dict:
        return {
            "straggler_excess_s": self.excess_s,
            "straggler_excess_by_node": dict(sorted(self.excess_by_node.items())),
        }


class NetworkDomain(FaultDomain):
    """Network fault family: health-overlay mutations and partitions."""

    name = "network"
    kinds = kinds_of("network")

    def __init__(self, sim, ctx):
        super().__init__(sim, ctx)
        self.rng = sim.engine.rngs.get("__net__")
        #: ("node", endpoint) / ("edge", (a, b)) -> generation token
        #: guarding stale network-repair events
        self.token: dict[tuple, int] = {}
        #: fast gate for the hot checkpoint-pricing path: True while any
        #: overlay mutation from this fault domain may be active
        self.active = False
        self.faults = 0
        self.repairs = 0
        self.partition_stalls = 0
        self.degraded_commits = 0
        #: LogGP reroute/retransmit stats at construction — the model may
        #: be shared across simulators, so the result reports the delta
        p2p = getattr(getattr(sim.archbeo, "comm", None), "p2p", None)
        self.stats_base = dict(getattr(p2p, "stats", None) or {})

    def default_detail(self, kind, node):
        if kind == "netdeg":
            return FaultDetail(repair_s=30.0, derate=4.0, loss_prob=0.05)
        return FaultDetail(repair_s=30.0)

    def endpoints_of_node(self, node: int) -> list[int]:
        """Topology endpoints owned by compute node *node*.

        Two conventions coexist: when the topology spans exactly the
        rank count it is a rank-level network (endpoints = the node's
        ranks); otherwise it is a node-level network (endpoint = the
        node id, when in range).
        """
        sim = self.sim
        topo = sim.archbeo.topology
        if topo.num_nodes == sim.nranks:
            cpn = max(1, sim.archbeo.cores_per_node)
            return [
                r for r in range(node * cpn, (node + 1) * cpn) if r < sim.nranks
            ]
        return [node] if node < topo.num_nodes else []

    def participants(self) -> list[int]:
        """Every topology endpoint the job's ranks live on — the set
        that must rendezvous for collectives and checkpoint commits."""
        sim = self.sim
        topo = sim.archbeo.topology
        if topo.num_nodes == sim.nranks:
            return list(range(sim.nranks))
        return sorted(
            {
                sim.archbeo.node_of_rank(r)
                for r in range(sim.nranks)
                if sim.archbeo.node_of_rank(r) < topo.num_nodes
            }
        )

    def draw_edge(self, node: int) -> Optional[tuple[int, int]]:
        """Deterministically pick the victim link of a fault seeded at
        *node*: a uniform draw (engine-seeded ``__net__`` stream) over
        the sorted baseline neighbours of the node's first endpoint."""
        topo = self.sim.archbeo.topology
        eps = self.endpoints_of_node(node)
        ep = eps[0] if eps else int(self.rng.integers(0, topo.num_nodes))
        nbrs = sorted(topo.neighbors(ep))
        if not nbrs:
            return None
        peer = int(nbrs[int(self.rng.integers(0, len(nbrs)))])
        return (min(ep, peer), max(ep, peer))

    def apply(self, kind, node, detail, event, fid=-1):
        """Mutate the health overlay for one network fault and schedule
        its repair; enter recovery when the job is partitioned."""
        sim, ctx = self.sim, self.ctx
        now = sim.engine.now
        h = sim.archbeo.topology.health()
        victims: list[tuple] = []
        if kind == "switch":
            eps = self.endpoints_of_node(node)
            if not eps:
                event.outcome = "no_effect"
                return
            for ep in eps:
                h.fail_node(ep)
                victims.append(("node", ep))
        else:
            edge = tuple(int(e) for e in detail.edge) or self.draw_edge(node)
            if edge is None:
                event.outcome = "no_effect"  # e.g. single-endpoint topology
                return
            if kind == "link":
                h.fail_link(*edge)
            else:
                h.degrade_link(
                    edge[0],
                    edge[1],
                    derate=detail.derate,
                    loss_prob=detail.loss_prob,
                )
            victims.append(("edge", edge))
        self.active = True
        self.faults += 1
        if detail.repair_s > 0:
            for victim in victims:
                # Token-guarded like straggler repairs: a newer fault on
                # the same link/endpoint outdates this repair.
                token = self.token.get(victim, 0) + 1
                self.token[victim] = token
                sim.engine.schedule(
                    detail.repair_s, self._repaired, payload=(victim, token)
                )
        self.push_gauges()
        # Degradations never partition; hard failures may cut the
        # participant set in two — then the job cannot rendezvous and
        # the existing escalation ladder takes over.
        if kind in ("link", "switch") and h.group_partitioned(
            self.participants()
        ):
            self.on_resume_blocked()
            event.outcome = "partitioned"
            ctx.enter_recovery(kind, now, fid)

    def _repaired(self, ev: Event) -> None:
        victim, token = ev.payload
        if self.token.get(victim) != token:
            return  # a newer fault on the same victim superseded this repair
        h = self.sim.archbeo.topology._health
        if h is None:
            return
        vtype, vid = victim
        if vtype == "node":
            h.repair_node(vid)
        else:
            h.repair_link(*vid)
        self.repairs += 1
        if h.healthy:
            self.active = False
        self.push_gauges()

    def blocks_resume(self) -> bool:
        """True while the participant set cannot rendezvous (resuming
        from recovery would hang on the first collective)."""
        h = self.sim.archbeo.topology._health
        if h is None or h.healthy:
            return False
        return h.group_partitioned(self.participants())

    def on_resume_blocked(self) -> None:
        self.partition_stalls += 1
        self.ctx.emit_counter(
            "net_partition_stalls_total",
            help="Recovery attempts stalled by a partitioned participant set.",
        )

    def partner(self, rank: int) -> tuple[int, int]:
        """(src, dst) endpoints of *rank*'s partner-copy checkpoint
        traffic (next node over, FTI L2 partner semantics)."""
        sim = self.sim
        topo = sim.archbeo.topology
        if topo.num_nodes == sim.nranks:
            cpn = max(1, sim.archbeo.cores_per_node)
            return rank, (rank + cpn) % sim.nranks
        src = sim.archbeo.node_of_rank(rank)
        if src >= topo.num_nodes:
            return src, src
        return src, (src + 1) % topo.num_nodes

    def ckpt_factor(self, rank: int) -> float:
        """Degraded-network cost multiplier for one rank's L2+ checkpoint
        write (the partner copy crosses the faulty fabric)."""
        sim = self.sim
        h = sim.archbeo.topology._health
        if h is None or h.healthy:
            return 1.0
        src, dst = self.partner(rank)
        if src == dst or h.is_partitioned(src, dst):
            # Unreachable partner: the copy is skipped, not slowed — the
            # commit degrades to an effective L1 instead.
            return 1.0
        p2p = getattr(getattr(sim.archbeo, "comm", None), "p2p", None)
        if p2p is None or not hasattr(p2p, "p2p_penalty"):
            return 1.0
        return max(1.0, float(p2p.p2p_penalty(src, dst)))

    def effective_ckpt_level(self, rank: int, level: int) -> int:
        """The protection level a checkpoint commit actually achieved:
        an L2+ instance whose partner copy cannot cross a partition
        degrades to node-local (level 1) protection."""
        if level < 2 or not self.active:
            return level
        h = self.sim.archbeo.topology._health
        if h is None or h.healthy:
            return level
        src, dst = self.partner(rank)
        if src != dst and h.is_partitioned(src, dst):
            self.degraded_commits += 1
            return 1
        return level

    def reset(self) -> None:
        """Back to a healthy fabric (requeued onto a repaired machine)."""
        self.token.clear()
        self.active = False
        h = self.sim.archbeo.topology._health
        if h is not None and not h.healthy:
            h.reset()
            self.push_gauges()

    def metrics_gauges(self) -> dict:
        h = self.sim.archbeo.topology._health
        if h is None:
            return {}
        _stretch, derate, _loss = h.aggregate_penalty()
        return {
            "net_links_failed": (
                "Links currently out of service.",
                float(len(h.failed_links)),
            ),
            "net_links_degraded": (
                "Links currently de-rated or lossy.",
                float(len(h.degraded)),
            ),
            "net_bandwidth_derate": (
                "Worst active bandwidth de-rate factor (1 = full speed).",
                float(derate),
            ),
        }

    def result_fields(self) -> dict:
        # LogGP reroute/retransmit accounting: the model may be shared
        # across simulators, so report the delta against construction.
        p2p = getattr(getattr(self.sim.archbeo, "comm", None), "p2p", None)
        stats = getattr(p2p, "stats", None) or {}
        reroutes = int(
            stats.get("reroutes", 0.0) - self.stats_base.get("reroutes", 0.0)
        )
        retransmits = float(
            stats.get("retransmits", 0.0) - self.stats_base.get("retransmits", 0.0)
        )
        if reroutes:
            self.ctx.emit_counter(
                "net_reroutes_total",
                help="Messages priced over a detour around a network fault.",
                inc=reroutes,
            )
        if retransmits:
            self.ctx.emit_counter(
                "net_retransmits_total",
                help="Expected retransmissions on lossy (degraded) routes.",
                inc=retransmits,
            )
        return {
            "net_faults": self.faults,
            "net_repairs": self.repairs,
            "net_partition_stalls": self.partition_stalls,
            "net_degraded_commits": self.degraded_commits,
            "net_reroutes": reroutes,
            "net_retransmits": retransmits,
        }


#: registry name -> implementation class (one per ``DomainInfo`` entry)
DOMAIN_CLASSES: dict[str, type] = {
    cls.name: cls
    for cls in (
        FailStopDomain,
        SdcDomain,
        StragglerDomain,
        NetworkDomain,
        TornCheckpointDomain,
    )
}


def build_domains(sim, ctx) -> tuple:
    """Instantiate every registered domain in registry order."""
    missing = [info.name for info in REGISTRY if info.name not in DOMAIN_CLASSES]
    if missing:
        raise RuntimeError(f"registered fault domains without implementation: {missing}")
    return tuple(DOMAIN_CLASSES[info.name](sim, ctx) for info in REGISTRY)
