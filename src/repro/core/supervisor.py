"""Crash-safe supervised execution of campaign tasks.

:class:`TaskSupervisor` replaces the bare ``ProcessPoolExecutor.map``
harness that a single OOM-killed or hung worker could take down (one
``BrokenProcessPool`` used to discard every completed replica of a
multi-hour sweep).  It schedules tasks individually with
``submit``/``wait``, and supervises them:

* **per-task timeouts** — a hung worker is detected, its pool is killed
  and rebuilt, and the task retried;
* **retry with exponential backoff + deterministic jitter**
  (:class:`RetryPolicy`);
* **pool resurrection** — ``BrokenProcessPool`` rebuilds the pool and
  requeues the in-flight tasks instead of raising;
* **graceful degradation** — after ``degrade_after`` consecutive pool
  rebuilds with no completed task, the supervisor falls back to
  in-process sequential execution, where harness faults cannot occur;
* **failure taxonomy** — every failure is classified as one of
  ``crash | timeout | oom | error | poisoned`` (:data:`FAILURE_KINDS`);
* **poison quarantine** — a task that keeps failing past
  ``max_retries`` is quarantined so one pathological grid point cannot
  stall a sweep.

Completed results can be persisted through an ``on_result`` callback,
typically into a :class:`WriteAheadJournal` — an append-only, fsynced
JSONL log that tolerates torn tails, which is what makes campaign
``--resume`` after a SIGKILL bit-identical to an uninterrupted run.

To test the harness honestly, :class:`HarnessFaultInjector` makes
workers crash, hang, or return garbage with configured probability.  It
is env-triggered (the config rides :data:`FAULT_ENV_VAR` into forked
workers) and keyed by ``(seed, task key, attempt)`` so chaos runs are
reproducible; it never fires in the supervisor's own process, so
degraded in-process execution is always safe.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Callable, Optional

from repro.guard.fsfault import fault_check, fsync_dir

#: The failure taxonomy.  ``poisoned`` is terminal (quarantine); the
#: others are retried under the :class:`RetryPolicy`.
FAILURE_KINDS = ("crash", "timeout", "oom", "error", "poisoned")

#: Environment variable carrying the serialized fault-injector config
#: into worker processes.
FAULT_ENV_VAR = "REPRO_HARNESS_FAULTS"

#: Sentinel a sabotaged worker returns instead of a real result; the
#: supervisor rejects it even when no validator is configured.
GARBAGE = "__repro_harness_garbage__"


# -- harness-level fault injection ----------------------------------------------


@dataclass(frozen=True)
class HarnessFaultInjector:
    """Makes *workers* (never the supervisor) misbehave on purpose.

    Each ``(key, attempt)`` pair draws one deterministic uniform from
    ``sha256(seed:key:attempt)`` and compares it against the stacked
    probability thresholds, so a given task attempt always fails the
    same way — chaos tests are exactly reproducible — while retries
    (a new ``attempt``) draw fresh.

    Injection is disabled in the process that created the injector
    (``host_pid``): in-process execution — the ``n_workers=1`` path and
    the degraded sequential fallback — must never sabotage itself.
    """

    crash_prob: float = 0.0     #: worker dies via ``os._exit`` (SIGKILL-like)
    hang_prob: float = 0.0      #: worker sleeps ``hang_s`` (stuck task)
    oom_prob: float = 0.0       #: worker raises :class:`MemoryError`
    error_prob: float = 0.0     #: worker raises :class:`RuntimeError`
    garbage_prob: float = 0.0   #: worker returns :data:`GARBAGE`
    hang_s: float = 3600.0
    seed: int = 0
    host_pid: int = 0
    #: Optional filesystem-fault config for worker processes, as the
    #: dict form of :class:`repro.guard.fsfault.FsFaultConfig` (kept as
    #: a plain dict so the whole injector stays JSON-round-trippable
    #: through :data:`FAULT_ENV_VAR`).  Workers install the fsfault shim
    #: from it on first invocation; the supervisor process never does.
    fs: Optional[dict] = None

    def __post_init__(self) -> None:
        total = (
            self.crash_prob
            + self.hang_prob
            + self.oom_prob
            + self.error_prob
            + self.garbage_prob
        )
        if not 0.0 <= total <= 1.0:
            raise ValueError(f"fault probabilities must sum to <= 1, got {total}")

    def with_host_pid(self) -> "HarnessFaultInjector":
        """Bind the injector to the current (supervisor) process."""
        d = asdict(self)
        d["host_pid"] = os.getpid()
        return HarnessFaultInjector(**d)

    # -- env round-trip (how the config reaches forked workers) ----------------

    def to_env(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_env(cls) -> Optional["HarnessFaultInjector"]:
        raw = os.environ.get(FAULT_ENV_VAR)
        if not raw:
            return None
        try:
            data = json.loads(raw)
            if not isinstance(data, dict):
                return None
            # Ignore unknown keys so an older worker can parse a config
            # written by a newer supervisor (and vice versa).
            known = {f.name for f in fields(cls)}
            return cls(**{k: v for k, v in data.items() if k in known})
        except (ValueError, TypeError):
            return None

    def fs_config(self):
        """The worker-side :class:`FsFaultConfig`, or ``None``."""
        if not self.fs:
            return None
        from repro.guard.fsfault import FsFaultConfig

        try:
            return FsFaultConfig.from_dict(self.fs)
        except (ValueError, TypeError):
            return None

    # -- the injection itself --------------------------------------------------

    def draw(self, key: str, attempt: int) -> float:
        digest = hashlib.sha256(f"{self.seed}:{key}:{attempt}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def decide(self, key: str, attempt: int) -> Optional[str]:
        """The fault (if any) this attempt draws, without acting on it."""
        u = self.draw(key, attempt)
        edge = 0.0
        for mode, prob in (
            ("crash", self.crash_prob),
            ("hang", self.hang_prob),
            ("oom", self.oom_prob),
            ("error", self.error_prob),
            ("garbage", self.garbage_prob),
        ):
            edge += prob
            if u < edge:
                return mode
        return None

    def maybe_fail(self, key: str, attempt: int) -> Optional[str]:
        """Act out the drawn fault; returns ``"garbage"`` for the caller."""
        if os.getpid() == self.host_pid:
            return None
        mode = self.decide(key, attempt)
        if mode == "crash":
            os._exit(139)
        if mode == "hang":
            time.sleep(self.hang_s)
        if mode == "oom":
            raise MemoryError(f"injected oom for {key} attempt {attempt}")
        if mode == "error":
            raise RuntimeError(f"injected error for {key} attempt {attempt}")
        return mode  # "garbage" or None


def _ensure_worker_fs_faults(injector: "HarnessFaultInjector") -> None:
    """Install the fsfault shim in a *worker* process, exactly once.

    Pooled workers run many tasks; keeping one injector alive across
    them preserves the deterministic op-index stream (and its
    counters).  The supervisor's own process is excluded by the same
    ``host_pid`` guard that protects it from harness faults.
    """
    if not injector.fs or os.getpid() == injector.host_pid:
        return
    from repro.guard import fsfault

    if fsfault.active() is None:
        cfg = injector.fs_config()
        if cfg is not None:
            fsfault.install(fsfault.FsFaultInjector(cfg))


def _invoke(worker_fn: Callable, key: str, attempt: int, payload: Any) -> Any:
    """Worker-side entrypoint: run the harness fault gate, then the task."""
    injector = HarnessFaultInjector.from_env()
    if injector is not None:
        _ensure_worker_fs_faults(injector)
        if injector.maybe_fail(key, attempt) == "garbage":
            return GARBAGE
    return worker_fn(payload)


# -- retry policy ----------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/timeout/quarantine knobs of the supervisor."""

    max_retries: int = 5        #: failed attempts before quarantine
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    jitter: float = 0.5         #: +/- fraction of the backoff randomized
    timeout_s: Optional[float] = None   #: per-task deadline (None = none)
    degrade_after: int = 3      #: consecutive fruitless pool rebuilds

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {self.timeout_s}")

    def backoff_delay(self, attempt: int, rng: random.Random) -> float:
        """Delay before retry ``attempt`` (1-based), jittered."""
        base = self.backoff_base_s * self.backoff_factor ** max(0, attempt - 1)
        base = min(base, self.backoff_max_s)
        if self.jitter <= 0:
            return base
        spread = self.jitter * base
        return max(0.0, base - spread + 2.0 * spread * rng.random())


# -- supervision records ---------------------------------------------------------


@dataclass
class TaskFailure:
    """One classified failure of one task attempt."""

    key: str
    kind: str       #: one of :data:`FAILURE_KINDS`
    attempt: int
    detail: str


@dataclass
class SupervisorStats:
    """Telemetry of one supervised run (kept out of campaign reports)."""

    completed: int = 0
    retries: int = 0
    pool_rebuilds: int = 0
    degraded: bool = False
    aborted: bool = False       #: clean resumable abort (resource guard / ENOSPC)
    abort_reason: str = ""
    failures: list = field(default_factory=list)
    quarantined: list = field(default_factory=list)
    by_kind: dict = field(
        default_factory=lambda: {kind: 0 for kind in FAILURE_KINDS}
    )

    def merge(self, other: "SupervisorStats") -> None:
        self.completed += other.completed
        self.retries += other.retries
        self.pool_rebuilds += other.pool_rebuilds
        self.degraded = self.degraded or other.degraded
        self.aborted = self.aborted or other.aborted
        if not self.abort_reason:
            self.abort_reason = other.abort_reason
        self.failures.extend(other.failures)
        self.quarantined.extend(other.quarantined)
        for kind, n in other.by_kind.items():
            self.by_kind[kind] = self.by_kind.get(kind, 0) + n

    def summary(self) -> str:
        kinds = ", ".join(f"{k}={n}" for k, n in self.by_kind.items() if n)
        return (
            f"completed={self.completed} retries={self.retries} "
            f"rebuilds={self.pool_rebuilds} degraded={self.degraded} "
            f"quarantined={len(self.quarantined)}"
            + (f" aborted={self.abort_reason!r}" if self.aborted else "")
            + (f" [{kinds}]" if kinds else "")
        )


class _SupervisorAbort(RuntimeError):
    """Internal: unwind the supervision loops for a clean resumable abort.

    Raised when the resource guard's ladder reaches its abort stage, or
    when a durable write (``on_result``) fails with an :class:`OSError`
    — every journaled record is already fsynced, so stopping *now*
    leaves a valid journal that ``--resume`` can complete from.
    """


@dataclass
class SupervisorResult:
    """Results keyed by task key; quarantined tasks are absent."""

    results: dict
    stats: SupervisorStats


@dataclass
class _Task:
    key: str
    payload: Any
    attempts: int = 0
    not_before: float = 0.0
    deadline: float = float("inf")


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Hard-stop a pool, reaping hung/dead workers."""
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.kill()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass


# -- the supervisor --------------------------------------------------------------


class TaskSupervisor:
    """Run ``worker_fn`` over keyed payloads, surviving worker failure.

    Parameters
    ----------
    worker_fn:
        Module-level (picklable) pure function of one payload.
    n_workers:
        Worker processes; 1 runs in-process sequentially (no pool, no
        harness faults possible).
    retry:
        The :class:`RetryPolicy`; defaults are sensible for campaigns.
    validate:
        Optional predicate on results; a failing result is classified
        ``error`` and retried (this is what catches garbage).
    on_result:
        Called ``on_result(key, result)`` once per *first* completion —
        the write-ahead hook.  Quarantined tasks never reach it.
    on_quarantine:
        Called ``on_quarantine(key, failures)`` when a task is poisoned
        (retries exhausted), with its accumulated :class:`TaskFailure`
        records — the cleanup hook (e.g. discard the task's partial
        snapshots so they cannot seed a future resume).
    fault_injector:
        Optional :class:`HarnessFaultInjector` exported to workers for
        the duration of the run (chaos testing).
    seed:
        Seeds the deterministic backoff jitter.
    obs:
        Optional observability hook (duck-typed; canonically a
        :class:`repro.obs.instrument.SupervisorObs`).  Receives the task
        lifecycle — ``task_started/completed/failed/retried/quarantined``,
        ``pool_rebuilt``, ``degraded`` — plus a ``tick()`` per
        supervision-loop iteration for heartbeat/flush driving.  Hook
        exceptions are deliberately not swallowed here; the canonical
        implementation only mutates in-process counters/spans and
        guards its own I/O.
    """

    def __init__(
        self,
        worker_fn: Callable[[Any], Any],
        n_workers: int = 1,
        retry: Optional[RetryPolicy] = None,
        validate: Optional[Callable[[Any], bool]] = None,
        on_result: Optional[Callable[[str, Any], None]] = None,
        on_quarantine: Optional[Callable[[str, list], None]] = None,
        fault_injector: Optional[HarnessFaultInjector] = None,
        seed: int = 0,
        obs=None,
        guard=None,
        failure_log_path: Optional[str] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.worker_fn = worker_fn
        self.n_workers = n_workers
        self.retry = retry or RetryPolicy()
        self.validate = validate
        self.on_result = on_result
        self.on_quarantine = on_quarantine
        self.fault_injector = fault_injector
        self.obs = obs
        self.guard = guard
        #: optional append-only JSONL of TaskFailure records (crashes,
        #: hangs, garbage, quarantines) for post-mortem forensics; writes
        #: are best-effort — an I/O error disables the log, never the run
        self.failure_log_path = failure_log_path
        self._failure_fh = None
        self._failure_log_dead = False
        self._rng = random.Random(seed)

    # -- public entrypoint -----------------------------------------------------

    def run(self, tasks) -> SupervisorResult:
        """Run ``tasks`` (an iterable of ``(key, payload)``) to completion.

        A resource-guard abort (or an ``OSError`` from the ``on_result``
        durable-write hook) does not raise: the run stops cleanly with
        ``stats.aborted`` set and every already-journaled result intact,
        so the caller can surface a *resumable* exit.
        """
        stats = SupervisorStats()
        results: dict = {}
        queue = deque(_Task(key, payload) for key, payload in tasks)
        if not queue:
            return SupervisorResult(results, stats)
        try:
            if self.n_workers == 1:
                self._run_sequential(queue, results, stats)
            else:
                saved = self._install_fault_env()
                try:
                    self._run_supervised(queue, results, stats)
                finally:
                    self._restore_fault_env(saved)
        except _SupervisorAbort as exc:
            stats.aborted = True
            stats.abort_reason = str(exc)
        finally:
            self._close_failure_log()
        return SupervisorResult(results, stats)

    def _guard_poll(self) -> None:
        """Tick the resource guard; unwind when its ladder says abort."""
        if self.guard is None:
            return
        tick = getattr(self.guard, "tick", None)
        if tick is not None:
            tick()
        if self.guard.abort_requested:
            raise _SupervisorAbort(
                self.guard.abort_reason or "resource guard requested abort"
            )

    def _paused(self) -> bool:
        return self.guard is not None and self.guard.paused

    # -- supervised (process-pool) path ----------------------------------------

    def _run_supervised(self, queue, results, stats) -> None:
        pool = ProcessPoolExecutor(max_workers=self.n_workers)
        inflight: dict = {}
        strikes = 0  # consecutive rebuilds without a completed task
        try:
            while queue or inflight:
                if self.obs is not None:
                    self.obs.tick()
                self._guard_poll()
                now = time.monotonic()
                if self._paused():
                    # Backpressure: stop launching, keep harvesting.  The
                    # ladder bounds total pause time (then escalates to
                    # abort), so this cannot livelock.
                    broken = False
                    if not inflight:
                        time.sleep(0.05)
                        continue
                else:
                    broken = not self._submit_ready(pool, queue, inflight, now)
                if not broken:
                    if not inflight:
                        self._sleep_until_ready(queue, now)
                        continue
                    done, _ = wait(
                        list(inflight),
                        timeout=self._wait_timeout(queue, inflight),
                        return_when=FIRST_COMPLETED,
                    )
                    for fut in done:
                        task = inflight.pop(fut)
                        kind, detail, value = self._harvest(fut)
                        if kind is None:
                            self._complete(task, value, results, stats)
                            strikes = 0
                        else:
                            broken = broken or kind == "crash"
                            self._charge(task, kind, detail, queue, stats)
                    broken = self._reap_overdue(inflight, queue, stats) or broken
                if broken:
                    pool = self._rebuild(pool, inflight, queue, stats)
                    strikes += 1
                    if strikes >= self.retry.degrade_after:
                        stats.degraded = True
                        if self.obs is not None:
                            self.obs.degraded()
                        break
        finally:
            _kill_pool(pool)
        if queue:  # degraded: finish in-process, where workers can't die
            self._run_sequential(queue, results, stats)

    def _submit_ready(self, pool, queue, inflight, now) -> bool:
        """Top up the pool; returns False when the pool is broken."""
        while len(inflight) < self.n_workers and queue:
            task = self._pop_ready(queue, now)
            if task is None:
                break
            try:
                fut = pool.submit(
                    _invoke, self.worker_fn, task.key, task.attempts + 1,
                    task.payload,
                )
            except (BrokenProcessPool, RuntimeError):
                task.not_before = now
                queue.appendleft(task)
                return False
            if self.retry.timeout_s is not None:
                task.deadline = now + self.retry.timeout_s
            inflight[fut] = task
            if self.obs is not None:
                self.obs.task_started(task.key, task.attempts + 1)
        return True

    @staticmethod
    def _pop_ready(queue, now) -> Optional[_Task]:
        for _ in range(len(queue)):
            task = queue.popleft()
            if task.not_before <= now:
                return task
            queue.append(task)
        return None

    @staticmethod
    def _sleep_until_ready(queue, now) -> None:
        wake = min(task.not_before for task in queue)
        time.sleep(min(max(wake - now, 0.01), 0.5))

    def _wait_timeout(self, queue, inflight) -> float:
        now = time.monotonic()
        horizon = [task.deadline - now for task in inflight.values()]
        horizon += [task.not_before - now for task in queue]
        nearest = min(horizon) if horizon else 0.25
        return min(max(nearest, 0.02), 0.25)

    def _harvest(self, fut):
        """Classify one finished future → (kind|None, detail, value)."""
        try:
            value = fut.result(timeout=0)
        except BrokenProcessPool as exc:
            return "crash", f"worker process died: {exc}", None
        except MemoryError as exc:
            return "oom", str(exc), None
        except Exception as exc:
            return "error", f"{type(exc).__name__}: {exc}", None
        return self._check(value)

    def _check(self, value):
        if isinstance(value, str) and value == GARBAGE:
            return "error", "worker returned garbage", None
        if self.validate is not None and not self.validate(value):
            return "error", "result failed validation", None
        return None, "", value

    def _reap_overdue(self, inflight, queue, stats) -> bool:
        """Time out overdue tasks; hung workers force a pool rebuild."""
        now = time.monotonic()
        overdue = [fut for fut, task in inflight.items() if now >= task.deadline]
        for fut in overdue:
            task = inflight.pop(fut)
            self._charge(
                task, "timeout",
                f"no result within {self.retry.timeout_s}s", queue, stats,
            )
        return bool(overdue)

    def _rebuild(self, pool, inflight, queue, stats) -> ProcessPoolExecutor:
        """Kill the pool, requeue in-flight tasks uncharged, start fresh."""
        now = time.monotonic()
        for fut in list(inflight):
            task = inflight.pop(fut)
            task.not_before = now
            task.deadline = float("inf")
            queue.append(task)
        _kill_pool(pool)
        stats.pool_rebuilds += 1
        if self.obs is not None:
            self.obs.pool_rebuilt()
        return ProcessPoolExecutor(max_workers=self.n_workers)

    # -- sequential (in-process) path ------------------------------------------

    def _run_sequential(self, queue, results, stats) -> None:
        while queue:
            self._guard_poll()
            if self._paused():
                time.sleep(0.05)
                continue
            task = queue.popleft()
            delay = task.not_before - time.monotonic()
            if delay > 0:
                time.sleep(min(delay, self.retry.backoff_max_s))
            if self.obs is not None:
                self.obs.tick()
                self.obs.task_started(task.key, task.attempts + 1)
            try:
                value = _invoke(
                    self.worker_fn, task.key, task.attempts + 1, task.payload
                )
            except MemoryError as exc:
                self._charge(task, "oom", str(exc), queue, stats)
                continue
            except Exception as exc:
                detail = f"{type(exc).__name__}: {exc}"
                self._charge(task, "error", detail, queue, stats)
                continue
            kind, detail, value = self._check(value)
            if kind is not None:
                self._charge(task, kind, detail, queue, stats)
                continue
            self._complete(task, value, results, stats)

    # -- bookkeeping shared by both paths --------------------------------------

    def _complete(self, task, value, results, stats) -> None:
        results[task.key] = value
        stats.completed += 1
        if self.obs is not None:
            self.obs.task_completed(task.key)
        if self.on_result is not None:
            try:
                self.on_result(task.key, value)
            except OSError as exc:
                # Durable write failed (disk full, dying device...).
                # Retrying the task cannot help — the task succeeded,
                # the *journal* is what's sick — so stop cleanly.  The
                # unjournaled result is recomputed on resume; replicas
                # are pure functions of their payload, so the resumed
                # report stays bit-identical.
                raise _SupervisorAbort(
                    f"durable write failed for {task.key}: {exc}"
                ) from exc

    def _charge(self, task, kind, detail, queue, stats) -> None:
        task.attempts += 1
        task.deadline = float("inf")
        stats.failures.append(TaskFailure(task.key, kind, task.attempts, detail))
        stats.by_kind[kind] = stats.by_kind.get(kind, 0) + 1
        self._log_failure(task.key, kind, task.attempts, detail)
        if self.obs is not None:
            self.obs.task_failed(task.key, kind)
        if task.attempts > self.retry.max_retries:
            stats.quarantined.append(task.key)
            stats.by_kind["poisoned"] += 1
            stats.failures.append(
                TaskFailure(
                    task.key, "poisoned", task.attempts,
                    f"quarantined after {task.attempts} failures (last: {kind})",
                )
            )
            self._log_failure(
                task.key, "poisoned", task.attempts,
                f"quarantined after {task.attempts} failures (last: {kind})",
            )
            if self.obs is not None:
                self.obs.task_quarantined(task.key)
            if self.on_quarantine is not None:
                self.on_quarantine(
                    task.key,
                    [f for f in stats.failures if f.key == task.key],
                )
            return
        stats.retries += 1
        delay = self.retry.backoff_delay(task.attempts, self._rng)
        task.not_before = time.monotonic() + delay
        if self.obs is not None:
            self.obs.task_retried(task.key, delay)
        queue.append(task)

    # -- failure log -----------------------------------------------------------

    def _log_failure(self, key: str, kind: str, attempt: int, detail: str) -> None:
        """Best-effort JSONL append of one harness failure (flushed per
        line, so a torn tail is the worst a crash can leave)."""
        if self.failure_log_path is None or self._failure_log_dead:
            return
        try:
            if self._failure_fh is None:
                parent = os.path.dirname(os.path.abspath(self.failure_log_path))
                os.makedirs(parent, exist_ok=True)
                self._failure_fh = open(
                    self.failure_log_path, "a", encoding="utf-8"
                )
            self._failure_fh.write(
                json.dumps(
                    {
                        "t_wall": time.time(),
                        "key": key,
                        "kind": kind,
                        "attempt": attempt,
                        "detail": str(detail),
                    },
                    sort_keys=True,
                )
                + "\n"
            )
            self._failure_fh.flush()
        except OSError:
            self._failure_log_dead = True
            self._close_failure_log()

    def _close_failure_log(self) -> None:
        if self._failure_fh is not None:
            try:
                self._failure_fh.close()
            except OSError:
                pass
            self._failure_fh = None

    # -- chaos env plumbing ----------------------------------------------------

    def _install_fault_env(self) -> Optional[str]:
        if self.fault_injector is None:
            return None
        saved = os.environ.get(FAULT_ENV_VAR)
        os.environ[FAULT_ENV_VAR] = self.fault_injector.with_host_pid().to_env()
        return saved if saved is not None else ""

    def _restore_fault_env(self, saved: Optional[str]) -> None:
        if self.fault_injector is None:
            return
        if saved:
            os.environ[FAULT_ENV_VAR] = saved
        else:
            os.environ.pop(FAULT_ENV_VAR, None)


# -- write-ahead journal ---------------------------------------------------------


class JournalError(RuntimeError):
    """The journal exists but does not match the requested campaign."""


def _canon(obj):
    """JSON-canonical form (numpy scalars → python, tuples → lists)."""
    return json.loads(json.dumps(obj, sort_keys=True, default=_json_default))


def _json_default(obj):
    item = getattr(obj, "item", None)  # numpy scalars
    if callable(item):
        return item()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


class WriteAheadJournal:
    """Append-only fsynced JSONL log with a validated header.

    Line 1 is ``{"kind": "header", "version": 1, "meta": {...}}``; every
    later line is one record.  Each append is flushed **and fsynced**
    before returning, so a record either survives a SIGKILL whole or was
    never acknowledged.  A torn tail (partial last line from a crash
    mid-write) is detected on open and truncated away.
    """

    VERSION = 1

    def __init__(self, path: str, meta: dict) -> None:
        self.path = path
        self.meta = _canon(meta)
        self.records: list = []
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        fault_check("wal.open", path)
        if os.path.exists(path) and os.path.getsize(path) > 0:
            stored_meta, self.records = self._load(path, truncate_torn=True)
            if stored_meta != self.meta:
                raise JournalError(
                    f"journal {path!r} belongs to a different campaign: "
                    f"{stored_meta!r} != {self.meta!r}"
                )
            self._fh = open(path, "a")
        else:
            self._fh = open(path, "w")
            self._write_line(
                {"kind": "header", "version": self.VERSION, "meta": self.meta}
            )
            # The file's *contents* are fsynced, but its directory entry
            # is not until the directory inode itself is — without this
            # a crash here can lose the whole journal file.
            fsync_dir(parent)

    @classmethod
    def read(cls, path: str):
        """Load ``(meta, records)`` without opening for append."""
        return cls._load(path, truncate_torn=False)

    @staticmethod
    def _load(path: str, truncate_torn: bool):
        with open(path, "rb") as fh:
            raw = fh.read()
        good = len(raw)
        if raw and not raw.endswith(b"\n"):
            good = raw.rfind(b"\n") + 1  # torn tail: keep whole lines only
        lines = raw[:good].decode().splitlines()
        if not lines:
            raise JournalError(f"journal {path!r} is empty")
        header = json.loads(lines[0])
        if header.get("kind") != "header":
            raise JournalError(f"journal {path!r} has no header line")
        if header.get("version") != WriteAheadJournal.VERSION:
            raise JournalError(
                f"journal {path!r} has version {header.get('version')}, "
                f"expected {WriteAheadJournal.VERSION}"
            )
        records = []
        for line in lines[1:]:
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                break  # torn interior line: everything after is suspect
        if truncate_torn and good < len(raw):
            with open(path, "r+b") as fh:
                fh.truncate(good)
        return header["meta"], records

    def append(self, record: dict) -> None:
        """Durably append one record (flush + fsync before returning)."""
        record = _canon(record)
        self._write_line(record)
        self.records.append(record)

    def _write_line(self, obj: dict) -> None:
        data = json.dumps(obj, default=_json_default) + "\n"
        fault_check("wal.append", self.path, len(data))
        self._fh.write(data)
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "WriteAheadJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
