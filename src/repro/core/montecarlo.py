"""Monte-Carlo replication of BE-SST simulations.

"Because actual machine performance is non-deterministic due to noise and
other factors, BE-SST implements Monte Carlo simulations to capture the
variance that exists in the calibration samples" — each scatter point in
Fig. 1 is a *distribution* of simulated runtimes.  This module runs a
simulation factory across seeds and summarises the resulting distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.core.simulator import BESSTSimulator, SimulationResult


def derive_seeds(base_seed: int, n: int) -> list[int]:
    """``n`` independent, explicitly derived replica seeds.

    Spawned from ``np.random.SeedSequence(base_seed)`` so the streams are
    statistically independent (no accidental overlap between a replica's
    simulator stream and another replica's fault-injector stream, which
    naive ``base_seed + i`` offsets cannot guarantee).  The derivation is
    a pure function of ``(base_seed, n)``: replica *i* always gets the
    same seed, which is what makes a *retried* replica bit-identical to
    its first attempt and a resumed campaign bit-identical to an
    uninterrupted one.
    """
    children = np.random.SeedSequence(base_seed).spawn(n)
    return [int(c.generate_state(1, dtype=np.uint32)[0]) for c in children]


@dataclass
class Distribution:
    """Summary of a sample of simulated runtimes."""

    samples: np.ndarray

    def __post_init__(self) -> None:
        self.samples = np.asarray(self.samples, dtype=float)
        if self.samples.size == 0:
            raise ValueError("empty sample")

    @property
    def mean(self) -> float:
        return float(self.samples.mean())

    @property
    def std(self) -> float:
        return float(self.samples.std(ddof=1)) if self.samples.size > 1 else 0.0

    @property
    def min(self) -> float:
        return float(self.samples.min())

    @property
    def max(self) -> float:
        return float(self.samples.max())

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.samples, q))

    @property
    def cv(self) -> float:
        """Coefficient of variation (relative spread)."""
        return self.std / self.mean if self.mean > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "n": int(self.samples.size),
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": self.max,
        }


@dataclass
class MonteCarloResult:
    """All replicas of one Monte-Carlo simulation campaign."""

    total_time: Distribution
    results: list[SimulationResult] = field(repr=False, default_factory=list)

    @property
    def checkpoint_time(self) -> Distribution:
        return Distribution(np.array([r.checkpoint_time for r in self.results]))

    @property
    def mean_rollbacks(self) -> float:
        return float(np.mean([r.rollbacks for r in self.results]))


class MonteCarloRunner:
    """Runs a simulator factory across seeds.

    Parameters
    ----------
    reps:
        Number of replicas.
    base_seed:
        Replica *i* runs with seed ``base_seed + i``.
    """

    def __init__(self, reps: int = 20, base_seed: int = 0) -> None:
        if reps < 1:
            raise ValueError(f"reps must be >= 1, got {reps}")
        self.reps = reps
        self.base_seed = base_seed

    def run(
        self,
        factory: Callable[[int], BESSTSimulator],
        max_events: Optional[int] = None,
    ) -> MonteCarloResult:
        """Build and run ``factory(seed)`` for each replica seed."""
        results = []
        for i in range(self.reps):
            sim = factory(self.base_seed + i)
            results.append(sim.run(max_events=max_events))
        return MonteCarloResult(
            total_time=Distribution(np.array([r.total_time for r in results])),
            results=results,
        )
