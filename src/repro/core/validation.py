"""Validation harness: simulated vs. measured, scored with MAPE.

Produces the row-by-row comparisons behind Tables III and IV and the
validation regions of Figs. 5-8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.models.metrics import mape, percent_error


@dataclass
class ValidationRow:
    """One parameter point's measured-vs-predicted comparison."""

    point: dict
    measured: float
    predicted: float

    @property
    def percent_error(self) -> float:
        return percent_error(self.measured, self.predicted)


@dataclass
class ValidationReport:
    """A set of validation rows plus aggregate error."""

    name: str
    rows: list[ValidationRow] = field(default_factory=list)

    def add(self, point: Mapping, measured: float, predicted: float) -> None:
        if measured <= 0:
            raise ValueError(f"measured value must be > 0, got {measured}")
        self.rows.append(ValidationRow(dict(point), measured, predicted))

    @property
    def mape(self) -> float:
        if not self.rows:
            raise ValueError(f"report {self.name!r} has no rows")
        return mape(
            [r.measured for r in self.rows], [r.predicted for r in self.rows]
        )

    @property
    def worst(self) -> ValidationRow:
        return max(self.rows, key=lambda r: r.percent_error)

    def summary(self) -> dict:
        return {
            "name": self.name,
            "points": len(self.rows),
            "mape": self.mape,
            "worst_point": self.worst.point,
            "worst_error": self.worst.percent_error,
        }

    def table(self) -> str:
        """Plain-text table of all rows (for experiment logs)."""
        lines = [f"== {self.name}: MAPE {self.mape:.2f}% =="]
        for r in self.rows:
            pt = ", ".join(f"{k}={v}" for k, v in r.point.items())
            lines.append(
                f"  {pt:40s} measured={r.measured:12.6g} "
                f"predicted={r.predicted:12.6g} err={r.percent_error:6.2f}%"
            )
        return "\n".join(lines)


def validate_simulation(
    name: str,
    measured: Mapping,
    predicted: Mapping,
) -> ValidationReport:
    """Pair up two ``{point_key: value}`` mappings into a report.

    Keys must match exactly; a key may be any hashable (tuples of
    parameter values are typical).
    """
    missing = set(measured) ^ set(predicted)
    if missing:
        raise KeyError(f"point mismatch between measured and predicted: {missing}")
    report = ValidationReport(name)
    for key in sorted(measured):
        point = (
            dict(zip(("epr", "ranks"), key))
            if isinstance(key, tuple)
            else {"point": key}
        )
        report.add(point, float(measured[key]), float(predicted[key]))
    return report
