"""Fault forensics: causal chains and per-fault waste attribution.

This is the post-mortem layer over a campaign's artifacts.  It joins

* the per-replica **fault log** (injection order = fault id),
* the per-replica **forensic episodes** (recovery timelines with the
  exact rework/downtime/requeue charges each episode made — see
  ``BESSTSimulator._close_episode``),
* the **straggler excess** accounting (slowed-clock time per node),
* optional **flight dumps** (``obs/flightrec.py``) for replicas that
  died without a journal row, and
* the optional **harness failure log** (supervisor crashes/hangs/
  quarantines)

into per-fault causal chains (inject → detect → ladder attempts →
requeue/abort → outcome) with waste attributed to each chain.  Because
every waste charge the simulator makes flows through exactly one
episode, summing episode waste reproduces the replica's measured waste
buckets — the reconciliation invariant ``attribute_replica`` reports as
``coverage``.  The fail-stop share is cross-checked against the
Young/Daly ``expected_waste`` prediction; campaigns with ABFT
verification also report the two-error-type waste-fraction comparison.

Everything here is read-only: analysis never touches a simulation draw
stream, so reports and journals are byte-identical whether or not a
post-mortem is ever run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.analytical.youngdaly import expected_waste, two_error_waste_fraction
from repro.core.fault_injection import FAULT_ROW_FIELDS
from repro.faults.registry import FAILSTOP_KINDS, domain_for_kind

#: FAILSTOP_KINDS (the kinds whose episodes the Young/Daly fail-stop
#: model prices) comes from the fault-domain registry: forensics
#: classifies kinds through ``domain_for_kind`` rather than its own
#: copy of the taxonomy, so a new domain automatically flows through
#: attribution.

#: outlier threshold: |z| of a replica's waste vs its point's distribution
OUTLIER_Z = 2.0


def fault_rows(result: dict) -> list[dict]:
    """The replica's fault log as dicts (``id`` = injection order)."""
    out = []
    for i, row in enumerate(result.get("fault_log") or []):
        d = dict(zip(FAULT_ROW_FIELDS, row))
        d["id"] = i
        out.append(d)
    return out


@dataclass
class FaultChain:
    """One injected fault and everything it caused."""

    fault_id: int
    kind: str
    node: int
    t_inject: float
    detected_time: Optional[float]
    outcome: str
    #: owning episode summary when this fault started a recovery episode
    episode: Optional[dict] = None
    #: episode id this fault merged into (nested / co-detected faults)
    contributes_to: Optional[int] = None
    #: attributed waste buckets (seconds of job time)
    waste: dict = field(default_factory=dict)

    @property
    def total_waste_s(self) -> float:
        return float(sum(self.waste.values()))

    def to_dict(self) -> dict:
        return {
            "fault": self.fault_id,
            "kind": self.kind,
            "node": self.node,
            "t_inject": self.t_inject,
            "detected_time": self.detected_time,
            "outcome": self.outcome,
            "episode": self.episode["id"] if self.episode else None,
            "episode_kind": self.episode["kind"] if self.episode else None,
            "contributes_to": self.contributes_to,
            "waste": dict(self.waste),
            "total_waste_s": self.total_waste_s,
            "phases": list(self.episode["phases"]) if self.episode else [],
            "t_end": self.episode["t_end"] if self.episode else None,
        }


def reconstruct_chains(result: dict) -> list[FaultChain]:
    """Rebuild the causal chain of every fault in one replica.

    Episode waste is attributed to the episode's *primary* fault (the
    one that opened it); nested and co-detected faults are linked via
    ``contributes_to``.  Straggler faults split their node's measured
    excess evenly (several stragglers on one node overlap in the
    max-slowdown model, so an even split is the honest choice).
    """
    faults = fault_rows(result)
    forensics = result.get("forensics") or {}
    episodes = forensics.get("episodes") or []
    owner: dict[int, tuple[dict, bool]] = {}
    for ep in episodes:
        for j, fid in enumerate(ep.get("faults") or []):
            # first id is the primary; a fault can only own one episode
            if fid not in owner or (j == 0 and not owner[fid][1]):
                owner[fid] = (ep, j == 0)
    excess_by_node = {
        int(k): float(v)
        for k, v in (forensics.get("straggler_excess_by_node") or {}).items()
    }
    strag_by_node: dict[int, list[int]] = {}
    for f in faults:
        if domain_for_kind(f["kind"], None) == "straggler":
            strag_by_node.setdefault(int(f["node"]), []).append(f["id"])
    chains = []
    for f in faults:
        chain = FaultChain(
            fault_id=f["id"],
            kind=f["kind"],
            node=int(f["node"]),
            t_inject=float(f["time"]),
            detected_time=f["detected_time"],
            outcome=f["outcome"] or "",
        )
        owned = owner.get(f["id"])
        if owned is not None:
            ep, primary = owned
            if primary:
                chain.episode = ep
                chain.waste = {
                    "rework_s": float(ep["rework_s"]),
                    "downtime_s": float(ep["downtime_s"]),
                    "requeue_s": float(ep["requeue_s"]),
                }
                if not chain.outcome:
                    chain.outcome = ep["outcome"]
            else:
                chain.contributes_to = ep["id"]
        if domain_for_kind(f["kind"], None) == "straggler":
            siblings = strag_by_node[int(f["node"])]
            excess = excess_by_node.get(int(f["node"]), 0.0)
            chain.waste["straggler_s"] = excess / len(siblings)
            if not chain.outcome:
                chain.outcome = "slowed"
        chains.append(chain)
    return chains


def attribute_replica(result: dict, replica: Optional[int] = None) -> dict:
    """Per-replica waste attribution and reconciliation.

    ``measured_waste_s`` is the replica's charged waste (the three
    buckets the simulator maintains); ``attributed_waste_s`` is the sum
    over its forensic episodes.  The two agree exactly for records
    written by this code (``coverage`` = 1.0); older journal records
    without a ``forensics`` key attribute nothing.
    """
    forensics = result.get("forensics") or {}
    episodes = forensics.get("episodes") or []
    chains = reconstruct_chains(result)
    measured = (
        float(result.get("waste_rework", 0.0))
        + float(result.get("waste_downtime", 0.0))
        + float(result.get("waste_requeue", 0.0))
    )
    attributed = float(
        sum(
            ep["rework_s"] + ep["downtime_s"] + ep["requeue_s"]
            for ep in episodes
        )
    )
    per_kind: dict[str, float] = {}
    for ep in episodes:
        per_kind[ep["kind"]] = per_kind.get(ep["kind"], 0.0) + float(
            ep["rework_s"] + ep["downtime_s"] + ep["requeue_s"]
        )
    straggler_excess = float(forensics.get("straggler_excess_s", 0.0))
    if straggler_excess > 0:
        per_kind["straggler"] = per_kind.get("straggler", 0.0) + straggler_excess
    failstop = float(
        sum(
            ep["rework_s"] + ep["downtime_s"] + ep["requeue_s"]
            for ep in episodes
            if ep["kind"] in FAILSTOP_KINDS
        )
    )
    return {
        "replica": replica,
        "seed": result.get("seed"),
        "completed": bool(result.get("completed", False)),
        "wrong_result": bool(result.get("wrong_result", False)),
        "measured_waste_s": measured,
        "attributed_waste_s": attributed,
        "failstop_waste_s": failstop,
        "coverage": (attributed / measured) if measured > 0 else 1.0,
        "checkpoint_time_s": float(result.get("checkpoint_time", 0.0)),
        "straggler_excess_s": straggler_excess,
        "per_kind": dict(sorted(per_kind.items())),
        "episodes": len(episodes),
        "chains": chains,
    }


def _point_outliers(attributions: list[dict]) -> list[dict]:
    """Replicas that stand out from their point's waste distribution
    (|z| > OUTLIER_Z), plus every abort and wrong result."""
    wastes = [a["measured_waste_s"] for a in attributions]
    n = len(wastes)
    mean = sum(wastes) / n if n else 0.0
    var = sum((w - mean) ** 2 for w in wastes) / n if n else 0.0
    std = math.sqrt(var)
    out = []
    for a in attributions:
        reasons = []
        z = (a["measured_waste_s"] - mean) / std if std > 0 else 0.0
        if abs(z) > OUTLIER_Z:
            reasons.append(f"waste z={z:+.1f}")
        if not a["completed"]:
            reasons.append("aborted")
        if a["wrong_result"]:
            reasons.append("wrong_result")
        if reasons:
            out.append(
                {
                    "replica": a["replica"],
                    "seed": a["seed"],
                    "measured_waste_s": a["measured_waste_s"],
                    "z": z,
                    "reasons": reasons,
                }
            )
    return out


def _failstop_youngdaly(spec, attributions: list[dict]) -> dict:
    """Fail-stop attributed waste vs the Young/Daly expectation.

    The analytical model prices checkpoint overhead + fail-stop rework/
    restart waste, so the simulated side is the mean (over completed
    replicas) of the fail-stop episode waste plus checkpoint time.  For
    a fail-stop-only mix this reduces to the report's ``youngdaly``
    cross-check; with a mixed taxonomy it isolates the share the model
    can actually see.
    """
    predicted = expected_waste(
        spec.work_s,
        spec.interval_s,
        spec.ckpt_cost_s,
        spec.system_mtbf_s,
        restart_cost=spec.recovery_time_s,
    )
    completed = [a for a in attributions if a["completed"]]
    if not completed:
        return {
            "predicted_waste_s": predicted,
            "simulated_failstop_waste_s": None,
            "ratio": None,
        }
    simulated = sum(
        a["failstop_waste_s"] + a["checkpoint_time_s"] for a in completed
    ) / len(completed)
    return {
        "predicted_waste_s": predicted,
        "simulated_failstop_waste_s": simulated,
        "ratio": simulated / predicted if predicted > 0 else None,
    }


def _kind_weights(spec) -> dict[str, float]:
    mix = dict(spec.fault_mix) if spec.fault_mix else {}
    if not mix:
        mix = {
            "software": spec.software_fraction,
            "node": 1.0 - spec.software_fraction,
        }
    return mix


def _two_error_check(spec, attributions: list[dict]) -> Optional[dict]:
    """Two-error-type waste-fraction comparison (when ABFT is on and the
    mix carries both fail-stop and SDC arrival streams)."""
    if spec.verify_period <= 0:
        return None
    mix = _kind_weights(spec)
    p_sdc = mix.get("sdc", 0.0)
    p_fs = sum(mix.get(k, 0.0) for k in FAILSTOP_KINDS)
    if p_sdc <= 0 or p_fs <= 0:
        return None
    predicted = two_error_waste_fraction(
        spec.interval_s,
        spec.ckpt_cost_s,
        spec.verify_cost_s,
        spec.system_mtbf_s / p_fs,
        spec.system_mtbf_s / p_sdc,
    )
    completed = [a for a in attributions if a["completed"]]
    if not completed:
        return {"predicted_fraction": predicted, "simulated_fraction": None}
    # The synthetic workload's verify overhead is deterministic
    # (ConstantModel), so it is priced from the spec, not re-measured.
    verify_overhead = spec.verify_cost_s * (
        spec.timesteps // spec.verify_period
    )
    simulated = sum(
        (a["measured_waste_s"] + a["checkpoint_time_s"] + verify_overhead)
        / spec.work_s
        for a in completed
    ) / len(completed)
    return {
        "predicted_fraction": predicted,
        "simulated_fraction": simulated,
        "ratio": simulated / predicted if predicted > 0 else None,
    }


def _load_harness_log(path: str) -> Optional[dict]:
    """Torn-tail-safe summary of the supervisor failure log."""
    import json
    import os

    if not os.path.exists(path):
        return None
    with open(path, "rb") as fh:
        raw = fh.read()
    good = len(raw)
    if raw and not raw.endswith(b"\n"):
        good = raw.rfind(b"\n") + 1
    by_kind: dict[str, int] = {}
    quarantined = []
    n = 0
    for line in raw[:good].decode("utf-8", errors="replace").splitlines():
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(rec, dict):
            continue
        n += 1
        kind = str(rec.get("kind", "unknown"))
        by_kind[kind] = by_kind.get(kind, 0) + 1
        if kind == "poisoned":
            quarantined.append(rec.get("key"))
    return {
        "failures": n,
        "by_kind": dict(sorted(by_kind.items())),
        "quarantined": quarantined,
    }


def _flight_summary(flight_dir: str, journal_seeds: set) -> Optional[dict]:
    from repro.obs.flightrec import load_flight_dir

    dumps = load_flight_dir(flight_dir)
    if not dumps:
        return None
    by_reason: dict[str, int] = {}
    in_flight = []
    entries = []
    for seed in sorted(dumps):
        d = dumps[seed]
        records = d["records"]
        reason = str(d["meta"].get("reason", "")) or (
            "in_flight" if d["in_flight"] else "unknown"
        )
        by_reason[reason] = by_reason.get(reason, 0) + 1
        entry = {
            "seed": seed,
            "reason": reason,
            "records": len(records),
            "last_t": records[-1].get("t") if records else None,
            "in_journal": seed in journal_seeds,
        }
        entries.append(entry)
        if d["in_flight"]:
            # A live spill with no final dump: the replica was killed
            # mid-run (SIGKILL, OOM...) — the tail shows where it died.
            in_flight.append(entry)
    return {
        "dir": flight_dir,
        "dumps": len(entries),
        "by_reason": dict(sorted(by_reason.items())),
        "in_flight": in_flight,
        "entries": entries,
    }


def analyze_journal(
    journal_path: str,
    flight_dir: Optional[str] = None,
    top_k: int = 5,
) -> dict:
    """Full campaign post-mortem from a write-ahead journal.

    Returns a JSON-ready dict: per-point attribution + reconciliation +
    analytical cross-checks, campaign-wide top-*top_k* faults by
    attributed waste, outlier replicas, and (when *flight_dir* is given)
    the flight-dump and harness-failure summaries.
    """
    import os

    from repro.core.campaign import CampaignJournal, CampaignSpec

    meta, points, replicas = CampaignJournal.read(journal_path)
    point_reports = []
    all_chains: list[tuple[str, int, FaultChain]] = []
    journal_seeds: set = set()
    total_measured = 0.0
    total_attributed = 0.0
    for spec_key, spec_dict in points.items():
        spec = CampaignSpec(**spec_dict)
        done = replicas.get(spec_key, {})
        attributions = []
        for idx in sorted(done):
            result = done[idx]
            if result.get("seed") is not None:
                journal_seeds.add(result["seed"])
            a = attribute_replica(result, replica=idx)
            attributions.append(a)
            for chain in a["chains"]:
                all_chains.append((spec_key, idx, chain))
        measured = sum(a["measured_waste_s"] for a in attributions)
        attributed = sum(a["attributed_waste_s"] for a in attributions)
        total_measured += measured
        total_attributed += attributed
        per_kind: dict[str, float] = {}
        for a in attributions:
            for kind, waste in a["per_kind"].items():
                per_kind[kind] = per_kind.get(kind, 0.0) + waste
        point_reports.append(
            {
                "spec_key": spec_key,
                "mtbf_s": spec.node_mtbf_s,
                "ckpt_period": spec.ckpt_period,
                "fault_mix": _kind_weights(spec),
                "reps": int(meta["reps"]),
                "replicas_done": len(attributions),
                "completed": sum(1 for a in attributions if a["completed"]),
                "aborted": sum(
                    1 for a in attributions if not a["completed"]
                ),
                "wrong_results": sum(
                    1 for a in attributions if a["wrong_result"]
                ),
                "episodes": sum(a["episodes"] for a in attributions),
                "measured_waste_s": measured,
                "attributed_waste_s": attributed,
                "coverage": (attributed / measured) if measured > 0 else 1.0,
                "straggler_excess_s": sum(
                    a["straggler_excess_s"] for a in attributions
                ),
                "per_kind": dict(sorted(per_kind.items())),
                "outliers": _point_outliers(attributions),
                "youngdaly": _failstop_youngdaly(spec, attributions),
                "two_error": _two_error_check(spec, attributions),
            }
        )
    ranked = sorted(
        (c for c in all_chains if c[2].total_waste_s > 0),
        key=lambda c: c[2].total_waste_s,
        reverse=True,
    )
    top_faults = [
        {"spec_key": spec_key, "replica": idx, **chain.to_dict()}
        for spec_key, idx, chain in ranked[: max(0, top_k)]
    ]
    analysis = {
        "analyze": "fault-forensics",
        "journal": journal_path,
        "reps": int(meta["reps"]),
        "base_seed": int(meta["base_seed"]),
        "points": point_reports,
        "totals": {
            "measured_waste_s": total_measured,
            "attributed_waste_s": total_attributed,
            "coverage": (
                (total_attributed / total_measured)
                if total_measured > 0
                else 1.0
            ),
        },
        "top_faults": top_faults,
        "flight": None,
        "harness": None,
    }
    if flight_dir is not None:
        analysis["flight"] = _flight_summary(flight_dir, journal_seeds)
        analysis["harness"] = _load_harness_log(
            os.path.join(flight_dir, "harness-failures.jsonl")
        )
    return analysis


def chain_trace_events(chain_dict: dict, time_unit: float = 1e6) -> list[dict]:
    """Chrome-trace events of one fault chain's recovery timeline.

    Phases become duration (``"X"``) events back-to-back until the
    episode end; the injection itself is an instant (``"i"``) marker.
    Times are scaled by *time_unit* (simulated seconds → trace µs).
    """
    events = [
        {
            "name": f"inject:{chain_dict['kind']}",
            "ph": "i",
            "ts": chain_dict["t_inject"] * time_unit,
            "pid": 0,
            "tid": 0,
            "s": "g",
            "args": {"fault": chain_dict["fault"], "node": chain_dict["node"]},
        }
    ]
    phases = chain_dict.get("phases") or []
    t_end = chain_dict.get("t_end")
    for i, (t, name, data) in enumerate(phases):
        nxt = phases[i + 1][0] if i + 1 < len(phases) else t_end
        dur = max(0.0, (nxt - t)) if nxt is not None else 0.0
        events.append(
            {
                "name": name,
                "ph": "X",
                "ts": t * time_unit,
                "dur": dur * time_unit,
                "pid": 0,
                "tid": 0,
                "args": dict(data),
            }
        )
    return events


def worst_fault_trace(analysis: dict, time_unit: float = 1e6) -> dict:
    """Chrome-trace dict of the worst (most wasteful) fault's timeline."""
    top = analysis.get("top_faults") or []
    events = chain_trace_events(top[0], time_unit) if top else []
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def format_analysis(analysis: dict, width: int = 72) -> str:
    """Human-readable post-mortem text of :func:`analyze_journal`."""
    lines = []
    rule = "=" * width
    lines.append(rule)
    lines.append("FAULT FORENSICS POST-MORTEM".center(width))
    lines.append(rule)
    totals = analysis["totals"]
    lines.append(
        f"journal: {analysis['journal']}  "
        f"(reps={analysis['reps']}, base_seed={analysis['base_seed']})"
    )
    lines.append(
        f"waste: measured {totals['measured_waste_s']:.2f}s · attributed "
        f"{totals['attributed_waste_s']:.2f}s · coverage "
        f"{totals['coverage']:.1%}"
    )
    for p in analysis["points"]:
        lines.append("-" * width)
        lines.append(
            f"point {p['spec_key'][:12]}  mtbf={p['mtbf_s']:g}s "
            f"period={p['ckpt_period']}  replicas "
            f"{p['replicas_done']}/{p['reps']}  episodes {p['episodes']}"
        )
        lines.append(
            f"  waste {p['measured_waste_s']:.2f}s attributed "
            f"{p['coverage']:.1%}  aborted {p['aborted']}  "
            f"wrong results {p['wrong_results']}"
        )
        if p["per_kind"]:
            breakdown = "  ".join(
                f"{kind}={waste:.2f}s" for kind, waste in p["per_kind"].items()
            )
            lines.append(f"  by kind: {breakdown}")
        if p["straggler_excess_s"] > 0:
            lines.append(
                f"  straggler slowdown excess: {p['straggler_excess_s']:.2f}s "
                "(outside the waste buckets)"
            )
        yd = p["youngdaly"]
        if yd["ratio"] is not None:
            lines.append(
                f"  young/daly (fail-stop): predicted "
                f"{yd['predicted_waste_s']:.2f}s simulated "
                f"{yd['simulated_failstop_waste_s']:.2f}s "
                f"ratio {yd['ratio']:.2f}"
            )
        te = p["two_error"]
        if te is not None and te.get("simulated_fraction") is not None:
            lines.append(
                f"  two-error model: predicted fraction "
                f"{te['predicted_fraction']:.3f} simulated "
                f"{te['simulated_fraction']:.3f}"
            )
        for o in p["outliers"]:
            lines.append(
                f"  outlier replica {o['replica']} (seed {o['seed']}): "
                f"waste {o['measured_waste_s']:.2f}s "
                f"[{', '.join(o['reasons'])}]"
            )
    if analysis["top_faults"]:
        lines.append("-" * width)
        lines.append(f"top {len(analysis['top_faults'])} faults by attributed waste:")
        for i, f in enumerate(analysis["top_faults"], 1):
            lines.append(
                f"  {i}. t={f['t_inject']:.2f}s {f['kind']} on node "
                f"{f['node']} (replica {f['replica']}) → {f['outcome']}: "
                f"{f['total_waste_s']:.2f}s"
            )
            buckets = "  ".join(
                f"{k.removesuffix('_s')}={v:.2f}s"
                for k, v in f["waste"].items()
                if v > 0
            )
            if buckets:
                lines.append(f"     {buckets}")
    flight = analysis.get("flight")
    if flight is not None:
        lines.append("-" * width)
        reasons = "  ".join(
            f"{k}={v}" for k, v in flight["by_reason"].items()
        )
        lines.append(f"flight dumps: {flight['dumps']} ({reasons})")
        for e in flight["in_flight"]:
            lines.append(
                f"  in-flight (killed?) seed {e['seed']}: "
                f"{e['records']} records, last t={e['last_t']}"
            )
    harness = analysis.get("harness")
    if harness is not None:
        kinds = "  ".join(f"{k}={v}" for k, v in harness["by_kind"].items())
        lines.append(f"harness failures: {harness['failures']} ({kinds})")
        if harness["quarantined"]:
            lines.append(f"  quarantined: {', '.join(map(str, harness['quarantined']))}")
    lines.append(rule)
    return "\n".join(lines)
