"""The BE-SST simulator: ranks executing abstract instructions.

Each simulated MPI rank is a DES component; executing an instruction polls
the ArchBEO for its predicted runtime and advances that rank's clock.
Collectives rendezvous all ranks and release them together at
``max(arrival) + modeled cost``.  Consecutive non-synchronizing
instructions are batched into a single event, which keeps a
1000-rank × 200-timestep case-study simulation at a few hundred thousand
events.

Fault injection (Cases 2 and 4 of Fig. 4) plugs in through
:meth:`BESSTSimulator.run`'s ``fault_injector``: node failures trigger a
coordinated rollback of every rank to its last completed checkpoint (or to
the very beginning when the application carries no checkpoints), plus the
ArchBEO's recovery downtime.

The fault *lifecycle* follows a four-state machine driven by the
:class:`~repro.core.fault_injection.RecoveryPolicy`::

    running ──fault──▶ recovering ──verify ok──▶ running
       ▲                   │  ▲
       │                   │  └── nested fault / failed verification
       │                   │      (escalate L1 → L2 → L4 → restart)
       │            attempts exhausted
       │                   ▼
       └──requeue ok── requeued ──spares+requeues exhausted──▶ aborted

A fault that lands while a rank is *inside* a ``Checkpoint`` instruction
tears that in-progress instance (it never becomes a restart point), and —
with in-place L1 writes — destroys the previous committed L1 copy on the
failed node, pushing recovery one checkpoint further back.

Beyond fail-stop, the simulator handles three more fault kinds
end-to-end:

* ``"sdc"`` — silent data corruption arms a *latent* flag on the victim
  rank.  Nothing happens until a detection point: an ABFT ``Verify``
  instruction commits (primary detector) or a checkpoint write validates
  its data (``RecoveryPolicy.ckpt_validate_prob``).  Checkpoints written
  by a flagged rank are *corrupt*: detection-triggered recovery skips
  them and rolls back past the last clean checkpoint.  Covered,
  correctable strikes are fixed in place at the detection point;
  uncovered strikes evade detection entirely and — if they survive to
  the end of the run — turn the result into a *wrong result*
  (``SimulationResult.wrong_result``).
* ``"straggler"`` — the victim node's compute clock runs slower by the
  drawn factor until the repair event fires (batch granularity: an
  already-priced batch keeps its price).
* ``"burst"`` — a correlated failure: every node in the drawn
  neighborhood fails at once (fail-stop semantics, L2+ recovery).

The network fault domain (``"link"``/``"switch"``/``"netdeg"``) mutates
the topology's :class:`~repro.network.health.NetworkHealth` overlay
instead of felling compute endpoints: traffic reroutes over surviving
paths (the LogGP model prices hop inflation, de-rated bandwidth and
retransmission delay transparently), L2/partner-copy checkpoint traffic
pays the degraded-network cost, and when the participant set is
*partitioned* the job cannot rendezvous — recovery attempts stall
(bounded by the episode's attempt budget) until a repair restores
connectivity or the ladder escalates into requeue/abort.  A checkpoint
whose partner copy cannot cross a partition commits at an *effective*
level of 1 (local-only protection) and is counted in
``net_degraded_commits``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.core.beo import AppBEO, ArchBEO
from repro.core.fault_injection import (
    FAULT_KINDS,
    FaultDetail,
    FaultEvent,
    RecoveryPolicy,
)
from repro.core.instructions import (
    Checkpoint,
    Collective,
    Compute,
    Exchange,
    Instruction,
    Marker,
    Verify,
)
from repro.des.component import Component
from repro.des.engine import Engine
from repro.des.event import Event
from repro.des.snapshot import AutoSnapshotPolicy, Snapshot, SnapshotError
from repro.faults.context import RecoveryContext
from repro.faults.domains import build_domains
from repro.faults.registry import MIN_LEVEL_FOR_KIND


@dataclass
class TimelineEntry:
    """One executed instruction on one rank."""

    t_start: float
    t_end: float
    kind: str           #: "compute" | "checkpoint" | "verify" | "collective" | "exchange" | "marker" | "rollback"
    label: str
    level: int = 0      #: checkpoint level when kind == "checkpoint"

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass
class RankTimeline:
    """Recorded execution history of one rank."""

    rank: int
    entries: list[TimelineEntry] = field(default_factory=list)

    def checkpoint_marks(self) -> list[tuple[float, int]]:
        """(completion time, level) of every checkpoint instance — the
        black dots on Figs. 7-8."""
        return [
            (e.t_end, e.level) for e in self.entries if e.kind == "checkpoint"
        ]

    def time_in(self, kind: str) -> float:
        return sum(e.duration for e in self.entries if e.kind == kind)

    def cumulative_curve(self) -> list[tuple[float, int]]:
        """(time, completed instruction count) — runtime-vs-progress data
        for the full-application runtime figures."""
        return [(e.t_end, i + 1) for i, e in enumerate(self.entries)]


@dataclass
class SimulationResult:
    """Output of one BE-SST simulation run."""

    total_time: float
    finish_times: list[float]
    timelines: dict[int, RankTimeline]
    nranks: int
    events_fired: int
    checkpoint_time: float          #: rank-0 time spent inside Checkpoint instructions
    compute_time: float             #: rank-0 time in Compute instructions
    collective_time: float          #: rank-0 time in collectives
    faults_injected: int = 0
    rollbacks: int = 0
    wasted_time: float = 0.0        #: recomputed + downtime + requeue attributable to faults
    completed: bool = True          #: False when the job aborted (requeues exhausted)
    nested_faults: int = 0          #: faults that landed inside a recovery window
    torn_checkpoints: int = 0       #: checkpoint instances interrupted mid-write
    verify_failures: int = 0        #: recovery read-backs that failed verification
    escalations: int = 0            #: ladder rungs climbed after failed verifications
    recovery_attempts: int = 0      #: total recovery attempts across all episodes
    requeues: int = 0               #: job resubmissions after recovery exhaustion
    waste_rework: float = 0.0       #: lost forward progress (recomputation)
    waste_downtime: float = 0.0     #: detection + restore + retry delays
    waste_requeue: float = 0.0      #: resubmission + spare-swap/rebuild stalls
    verify_time: float = 0.0        #: rank-0 time inside ABFT Verify kernels
    faults_by_kind: dict = field(default_factory=dict)  #: kind -> injected count
    sdc_injected: int = 0           #: SDC strikes armed
    sdc_detected: int = 0           #: strikes observed at a detection point
    sdc_corrected: int = 0          #: detected strikes fixed in place (ABFT)
    sdc_undetected: int = 0         #: strikes still latent at the end of the run
    wrong_result: bool = False      #: job "completed" but carries undetected SDC
    sdc_detect_latency_s: float = 0.0  #: summed injection→detection latency
    net_faults: int = 0             #: link/switch/netdeg faults applied to the overlay
    net_repairs: int = 0            #: network repairs that restored service
    net_partition_stalls: int = 0   #: recovery attempts stalled by a partitioned group
    net_degraded_commits: int = 0   #: L2+ checkpoints degraded to L1 (partner unreachable)
    net_reroutes: int = 0           #: messages priced over a detour route
    net_retransmits: float = 0.0    #: expected retransmissions on lossy routes
    #: closed forensic recovery-episode summaries (see ``core.forensics``):
    #: each carries its owning fault ids, phase timeline and the exact
    #: per-episode waste charges, so attribution sums to the totals
    episodes: list = field(default_factory=list)
    straggler_excess_s: float = 0.0  #: job-time excess from degraded compute clocks
    straggler_excess_by_node: dict = field(default_factory=dict)  #: node -> excess share

    @property
    def ft_overhead_fraction(self) -> float:
        """Share of rank-0 busy time spent on FT work (checkpoint+verify)."""
        busy = (
            self.compute_time
            + self.collective_time
            + self.checkpoint_time
            + self.verify_time
        )
        ft = self.checkpoint_time + self.verify_time
        return ft / busy if busy > 0 else 0.0

    def checkpoint_marks(self) -> list[tuple[float, int]]:
        tl = self.timelines.get(0)
        return tl.checkpoint_marks() if tl else []


class _SyncDomain:
    """Rendezvous state for one collective call site sequence.

    Collectives are totally ordered per rank (SPMD), so a single counter
    per call-index suffices: the n-th collective executed by each rank is
    matched with every other rank's n-th collective.
    """

    def __init__(self, sim: "BESSTSimulator") -> None:
        self.sim = sim
        self._arrivals: dict[int, list] = {}   # call index -> [(comp, t_arrive)]
        self._pending_releases: list[Event] = []

    def arrive(self, comp: "_Rank", call_index: int, instr: Collective) -> None:
        lst = self._arrivals.setdefault(call_index, [])
        lst.append((comp, comp.now))
        if len(lst) == self.sim.nranks:
            t_max = max(t for _, t in lst)
            cost = self.sim.archbeo.collective_time(instr, self.sim.nranks)
            release_at = max(t_max + cost, comp.now)
            # One release event frees every rank (equivalent to per-rank
            # events at the same timestamp, at 1/nranks the event count).
            ev = Event(
                time=release_at,
                handler=self._release_all,
                payload=(list(lst), instr, cost),
            )
            self._pending_releases.append(self.sim.engine.schedule_event(ev))
            del self._arrivals[call_index]

    def _release_all(self, ev: Event) -> None:
        lst, instr, cost = ev.payload
        for c, _t in lst:
            if c.record:
                c.timeline.entries.append(
                    TimelineEntry(c.now - cost, c.now, "collective", instr.op)
                )
            c.advance()

    def reset(self, engine: Engine) -> None:
        """Drop all rendezvous state (used on fault rollback)."""
        for ev in self._pending_releases:
            engine.cancel(ev)
        self._pending_releases.clear()
        self._arrivals.clear()


class _Rank(Component):
    """One simulated MPI rank executing its AppBEO instruction stream."""

    def __init__(self, rank: int, sim: "BESSTSimulator", program: Sequence[Instruction]):
        super().__init__(f"rank{rank}")
        self.rank = rank
        self.sim = sim
        self.program = list(program)
        self.pc = 0
        self.collective_calls = 0
        self.done = False
        self.finish_time: Optional[float] = None
        self.record = rank in sim._recorded_ranks
        self.timeline = RankTimeline(rank)
        #: checkpoints completed by this rank
        self.ckpt_seq = 0
        #: ckpt_seq -> (resume pc, collective_calls, completion time,
        #: ckpt cost, checkpoint level); seq 0 is "the beginning" and is
        #: never pruned.  A short history window is retained so
        #: level-aware recovery can walk back to an older, higher-level
        #: checkpoint when the newest one does not cover the fault kind.
        self.restart_history: dict[int, tuple[int, int, float, float, int]] = {
            0: (0, 0, 0.0, 0.0, 0)
        }
        self._pending: Optional[Event] = None

    def setup(self) -> None:
        self._pending = self.schedule(0.0, self._on_resume)

    def _on_resume(self, _ev: Event) -> None:
        # Bound-method resume handler (not a lambda) so the whole rank —
        # pending events included — stays snapshot-picklable.
        self.advance()

    # -- execution ---------------------------------------------------------------

    def advance(self) -> None:
        """Execute instructions until blocking on a collective or finishing."""
        self._pending = None
        while self.pc < len(self.program):
            instr = self.program[self.pc]
            if isinstance(instr, Collective):
                self.pc += 1
                self.collective_calls += 1
                self.sim.sync.arrive(self, self.collective_calls - 1, instr)
                return
            if isinstance(instr, Marker):
                if self.record:
                    self.timeline.entries.append(
                        TimelineEntry(self.now, self.now, "marker", instr.name)
                    )
                self.pc += 1
                continue
            # Batch consecutive non-synchronizing instructions.
            dt, batch = self._price_batch()
            self._pending = self.schedule(dt, self._on_batch_done, payload=batch)
            return
        if not self.done:
            self.done = True
            self.finish_time = self.now
            self.sim._rank_finished(self)

    def _price_batch(self) -> tuple[float, list]:
        """Price the run of local instructions starting at ``pc``.

        Returns total duration and ``(instr, start_offset, duration)``
        records for the timeline.
        """
        t_off = 0.0
        batch = []
        # Straggler degradation: local (clocked) work on a degraded node
        # runs slower by the node's slowdown factor.  Exchanges are
        # network-bound and keep their modeled time.  The factor is read
        # once per batch — an already-priced batch keeps its price even
        # if a repair lands mid-flight (batch granularity).
        slow = self.sim._slowdown_for_rank(self.rank)
        slowed_t = 0.0
        while self.pc < len(self.program):
            instr = self.program[self.pc]
            if isinstance(instr, (Compute, Checkpoint, Verify)):
                dt = slow * self.sim.archbeo.predict(
                    instr.kernel, instr.param_dict(), self._model_rng()
                )
                if (
                    isinstance(instr, Checkpoint)
                    and instr.level >= 2
                    and self.sim._net_active
                ):
                    # L2/partner-copy traffic crosses the (possibly
                    # degraded) fabric and pays the real network cost.
                    dt *= self.sim._net_ckpt_factor(self.rank)
                if slow != 1.0:
                    slowed_t += dt
            elif isinstance(instr, Exchange):
                dt = self.sim.archbeo.exchange_time(instr)
            elif isinstance(instr, Marker):
                dt = 0.0
            else:
                break
            batch.append((instr, t_off, dt))
            t_off += dt
            self.pc += 1
        if slowed_t > 0.0:
            # Forensic accounting only: the excess over healthy-clock time
            # for this batch's slowed instructions (dt includes the factor,
            # so excess = dt - dt/slow).
            self.sim._note_straggler_excess(
                self.rank, slowed_t * (1.0 - 1.0 / slow)
            )
        return t_off, batch

    def _on_batch_done(self, ev: Event) -> None:
        t_end = self.now
        batch = ev.payload
        t_start = t_end - sum(d for _, _, d in batch)
        base = self.pc - len(batch)  # pc of the first batched instruction
        for i, (instr, off, dt) in enumerate(batch):
            if self.record:
                kind = (
                    "compute"
                    if isinstance(instr, Compute)
                    else "checkpoint"
                    if isinstance(instr, Checkpoint)
                    else "verify"
                    if isinstance(instr, Verify)
                    else "exchange"
                    if isinstance(instr, Exchange)
                    else "marker"
                )
                label = getattr(instr, "kernel", None) or getattr(
                    instr, "name", type(instr).__name__.lower()
                )
                self.timeline.entries.append(
                    TimelineEntry(
                        t_start + off,
                        t_start + off + dt,
                        kind,
                        label,
                        level=getattr(instr, "level", 0),
                    )
                )
            if isinstance(instr, Checkpoint):
                # Restart point: resume AFTER this checkpoint instruction.
                # The recorded level is the protection actually achieved
                # (a partitioned partner degrades an L2+ write to L1).
                self.ckpt_seq += 1
                self.restart_history[self.ckpt_seq] = (
                    base + i + 1,
                    self.collective_calls,
                    t_start + off + dt,
                    dt,
                    self.sim._effective_ckpt_level(self.rank, instr.level),
                )
                stale = self.ckpt_seq - 6
                if stale > 0:
                    self.restart_history.pop(stale, None)
                if self.sim._on_checkpoint_commit(self, self.ckpt_seq):
                    # Write-validation caught latent SDC: recovery has
                    # paused every rank and the rest of the batch is
                    # discarded by the rollback — do not advance.
                    return
            elif isinstance(instr, Verify):
                if self.sim._on_verify_point(self):
                    return  # detection started a recovery episode
        self.advance()

    def _model_rng(self) -> Optional[np.random.Generator]:
        return self.rng if self.sim.monte_carlo else None

    # -- fault handling -----------------------------------------------------------

    def rollback(self, seq: int, resume_delay: float) -> None:
        """Reset to checkpoint *seq*; resume after *resume_delay*."""
        if self._pending is not None:
            self.engine.cancel(self._pending)
            self._pending = None
        pc, coll, t_ckpt, ckpt_cost, _level = self.restart_history[seq]
        # discard any checkpoint taken after the committed one
        for later in [s for s in self.restart_history if s > seq]:
            del self.restart_history[later]
        self.ckpt_seq = seq
        self.pc = pc
        self.collective_calls = coll
        self.done = False
        self.finish_time = None
        if self.record:
            self.timeline.entries.append(
                TimelineEntry(self.now, self.now + resume_delay, "rollback", "rollback")
            )
        # Track the resume event so a second fault during recovery can
        # cancel it (otherwise the rank would resume twice).
        self._pending = self.schedule(resume_delay, self._on_resume)

    def pause(self) -> None:
        """Cancel whatever this rank is doing (fault arrived)."""
        if self._pending is not None:
            self.engine.cancel(self._pending)
            self._pending = None

    def checkpoint_in_progress(self, t: float) -> Optional[int]:
        """Level of the Checkpoint instruction this rank is inside at *t*,
        or None.  Batched instructions commit only when the batch event
        fires, so the pending batch localises the write window exactly."""
        ev = self._pending
        if ev is None or ev.cancelled or not isinstance(ev.payload, list):
            return None
        batch = ev.payload
        start = ev.time - sum(d for _, _, d in batch)
        for instr, off, dt in batch:
            if (
                isinstance(instr, Checkpoint)
                and dt > 0
                and start + off <= t < start + off + dt
            ):
                return instr.level
        return None

    def handle_event(self, port_name, payload, time) -> None:  # pragma: no cover
        raise RuntimeError("rank components do not use ports")


class BESSTSimulator:
    """Drives one BE-SST simulation of an AppBEO on an ArchBEO.

    Parameters
    ----------
    appbeo / archbeo:
        The application and architecture models.
    nranks:
        MPI ranks to simulate.
    params:
        Application parameters (merged over the AppBEO defaults).
    seed:
        Seed for per-rank model-noise streams.
    monte_carlo:
        When true (default), model predictions draw from calibration
        distributions; when false, deterministic central predictions.
    record_timelines:
        Which ranks record full timelines: ``"rank0"`` (default),
        ``"all"``, or ``"none"``.
    fault_injector:
        Optional :class:`~repro.core.fault_injection.FaultInjector`
        enabling Cases 2/4.
    recovery_policy:
        Optional :class:`~repro.core.fault_injection.RecoveryPolicy`
        enabling the full fault lifecycle (torn checkpoints, verification
        failures, escalation, requeue).  ``None`` keeps the seed
        semantics: one atomic, always-successful rollback per fault.
    """

    def __init__(
        self,
        appbeo: AppBEO,
        archbeo: ArchBEO,
        nranks: int,
        params: Optional[Mapping[str, float]] = None,
        seed: int = 0,
        monte_carlo: bool = True,
        record_timelines: str = "rank0",
        fault_injector=None,
        recovery_policy: Optional[RecoveryPolicy] = None,
    ) -> None:
        if record_timelines not in ("rank0", "all", "none"):
            raise ValueError(f"invalid record_timelines {record_timelines!r}")
        appbeo.check_ranks(nranks)
        self.appbeo = appbeo
        self.archbeo = archbeo
        self.nranks = nranks
        self.params = dict(params or {})
        self.monte_carlo = monte_carlo
        self.engine = Engine(seed=seed)
        self.sync = _SyncDomain(self)
        self.fault_injector = fault_injector
        self.policy = recovery_policy or RecoveryPolicy.legacy()
        self._recorded_ranks = (
            set(range(nranks))
            if record_timelines == "all"
            else {0}
            if record_timelines == "rank0"
            else set()
        )
        self._ranks: list[_Rank] = []
        self._finished = 0
        self._result: Optional[SimulationResult] = None
        self._flightrec = None
        # Pluggable fault machinery: the shared recovery context owns the
        # lifecycle (ladder walk, episodes, waste buckets, metric/forensic
        # plumbing); one domain object per registered fault family owns
        # the kind-specific state and behaviour (repro.faults).  Named RNG
        # streams are keyed by name, not creation order, so the domains'
        # draw streams are identical to the pre-refactor monolith.
        self._ctx = RecoveryContext(self)
        self._domains = build_domains(self, self._ctx)
        self._ctx.domains = self._domains
        self._domain_by_kind = {
            kind: domain for domain in self._domains for kind in domain.kinds
        }
        by_name = {domain.name: domain for domain in self._domains}
        # hot-path shortcuts (batch pricing reads these every event)
        self._straggler_dom = by_name["straggler"]
        self._net_dom = by_name["network"]

        program0 = self.appbeo.build(0, nranks, self.params)
        for r in range(nranks):
            program = program0 if r == 0 else self.appbeo.build(r, nranks, self.params)
            self._ranks.append(self.engine.register(_Rank(r, self, program)))

        if fault_injector is not None:
            fault_injector.attach(self)

    # -- callbacks ---------------------------------------------------------------------

    def _rank_finished(self, rank: "_Rank") -> None:
        self._finished += 1
        if self._finished == self.nranks and self.fault_injector is not None:
            self.fault_injector.detach()

    #: per-kind minimum recovery checkpoint level (see
    #: ``repro.faults.registry`` for the rationale table)
    MIN_LEVEL_FOR_KIND = MIN_LEVEL_FOR_KIND

    @property
    def wasted_time(self) -> float:
        """Total fault-attributable waste (rework + downtime + requeue)."""
        return self._ctx.wasted_time

    @property
    def faults_injected(self) -> int:
        """Faults injected so far (lifecycle counter on the context)."""
        return self._ctx.faults_injected

    @property
    def rollbacks(self) -> int:
        """Coordinated rollbacks performed so far."""
        return self._ctx.rollbacks

    @property
    def state(self) -> str:
        """Lifecycle state: running | recovering | requeued | aborted | done."""
        ctx = self._ctx
        if ctx.aborted:
            return "aborted"
        if self._result is not None or self._finished == self.nranks:
            return "done"
        if ctx.recovery is not None:
            return "requeued" if ctx.recovery.requeued else "recovering"
        return "running"

    # -- forensics ---------------------------------------------------------------------

    def attach_flightrec(self, rec):
        """Attach (or with ``None`` detach) a flight recorder.

        The recorder receives every fault/recovery lifecycle record plus
        the engine's periodic progress ticks.  Recording is strictly
        observational: it never draws randomness or schedules events, so
        simulation output is identical with it on or off.
        """
        self._flightrec = rec
        self.engine.attach_flightrec(rec)
        return rec

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_flightrec"] = None  # open spill handle: reattach post-restore
        return state

    # -- fault lifecycle ---------------------------------------------------------------
    #
    # The lifecycle itself lives in repro.faults (RecoveryContext + one
    # domain per fault family).  What remains here is the registry
    # dispatch in inject_fault plus the thin hot-path hooks the rank
    # components call every batch/commit.

    def _slowdown_for_rank(self, rank: int) -> float:
        return self._straggler_dom.slowdown_for_rank(rank)

    def _note_straggler_excess(self, rank: int, excess: float) -> None:
        self._straggler_dom.note_excess(rank, excess)

    @property
    def _net_active(self) -> bool:
        return self._net_dom.active

    def _net_ckpt_factor(self, rank: int) -> float:
        return self._net_dom.ckpt_factor(rank)

    def _effective_ckpt_level(self, rank: int, level: int) -> int:
        return self._net_dom.effective_ckpt_level(rank, level)

    def _on_checkpoint_commit(self, rank: "_Rank", seq: int) -> bool:
        for domain in self._domains:
            if domain.on_checkpoint_commit(rank, seq):
                return True
        return False

    def _on_verify_point(self, rank: "_Rank") -> bool:
        for domain in self._domains:
            if domain.on_verify_point(rank):
                return True
        return False

    def inject_fault(
        self,
        node: int,
        kind: str = "software",
        detail: Optional[FaultDetail] = None,
        event: Optional[FaultEvent] = None,
    ) -> None:
        """Coordinated, level-aware, lifecycle-realistic failure handling.

        The simulator core only dispatches: the kind is resolved to its
        registered :class:`~repro.faults.domains.FaultDomain`, which owns
        the semantics (see ``repro.faults``).  Fail-stop kinds
        (``software``/``node``/``burst``) start (or re-enter, for nested
        faults) a recovery episode walking the escalation ladder; ``sdc``
        arms a latent corruption flag; ``straggler`` degrades the node's
        compute clock until repair; ``link``/``switch``/``netdeg`` mutate
        the topology health overlay.

        *detail* carries the kind-specific parameters drawn by the
        injector (domain defaults applied when called directly); *event*
        is the injector's log record, updated in place with detection
        outcomes.
        """
        ctx = self._ctx
        if ctx.aborted or self._finished == self.nranks:
            return
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; expected "
                f"{sorted(FAULT_KINDS)}"
            )
        if ctx.recovery is not None and ctx.recovery.requeued:
            # The job is sitting in the scheduler queue: node failures
            # during the resubmission window do not hit it.
            return
        domain = self._domain_by_kind[kind]
        if detail is None:
            detail = domain.default_detail(kind, node)
        if event is None:
            event = FaultEvent(
                self.engine.now,
                node,
                kind,
                victims=detail.victims,
                slowdown=detail.slowdown,
            )
        ctx.count_injection(kind)
        # Forensic fault id: the injector appends its log record before
        # dispatching here, so the id is simply that record's log index
        # (joined by identity, not by a parallel counter — early returns
        # above cannot desynchronise it).  Direct calls carry no id.
        fid = -1
        if self.fault_injector is not None and event is not None:
            log = self.fault_injector.log.entries
            if log and log[-1] is event:
                fid = len(log) - 1
        ctx.note("inject", fault=fid, fault_kind=kind, node=node)
        domain.apply(kind, node, detail, event, fid)

    # -- snapshot / restore -----------------------------------------------------------------

    def enable_snapshots(
        self,
        directory: str,
        every_events: Optional[int] = None,
        every_wall_s: Optional[float] = None,
        keep: int = 2,
    ) -> AutoSnapshotPolicy:
        """Checkpoint the *whole simulator* periodically during :meth:`run`.

        The capture root is this simulator (not just its engine), so
        :meth:`restore` rebuilds ranks, sync domains, recovery state and
        the fault injector together and the run can simply continue.
        """
        return self.engine.enable_autosnapshot(
            directory,
            every_events=every_events,
            every_wall_s=every_wall_s,
            keep=keep,
            root=self,
        )

    def snapshot(self, meta: Optional[dict] = None) -> Snapshot:
        """Capture the full simulator state between events."""
        extra = {
            "sim_time": float(self.engine.now),
            "events_fired": self.engine.events_fired,
        }
        if meta:
            extra.update(meta)
        return Snapshot.capture(self, meta=extra)

    @classmethod
    def restore(cls, source) -> "BESSTSimulator":
        """Rebuild a simulator from a :class:`Snapshot` or a saved path.

        The returned simulator resumes exactly where the capture stopped:
        call :meth:`run` to continue to completion.  The final result is
        byte-identical to a run that was never interrupted.
        """
        snap = Snapshot.load(source) if isinstance(source, str) else source
        sim = snap.restore()
        if not isinstance(sim, cls):
            raise SnapshotError(
                f"snapshot holds a {type(sim).__name__}, expected "
                f"{cls.__name__} (or a subclass)"
            )
        sim.engine._running = False
        return sim

    # -- run --------------------------------------------------------------------------------

    def run(self, max_events: Optional[int] = None) -> SimulationResult:
        """Execute the simulation to completion and return the result."""
        if self._result is not None:
            return self._result
        self.engine.run(max_events=max_events)
        ctx = self._ctx
        if not ctx.aborted:
            unfinished = [r.rank for r in self._ranks if not r.done]
            if unfinished:
                raise RuntimeError(
                    f"simulation ended with unfinished ranks {unfinished[:5]}"
                )
        tl0 = self._ranks[0].timeline
        # Lifecycle counters come from the recovery context; each fault
        # domain contributes its own fields (in registry order, which
        # also fixes the order of end-of-run metric emission).
        fields = ctx.result_fields()
        for domain in self._domains:
            fields.update(domain.result_fields())
        self._result = SimulationResult(
            total_time=(
                ctx.abort_time
                if ctx.aborted
                else max(r.finish_time for r in self._ranks)
            ),
            finish_times=(
                [] if ctx.aborted else [r.finish_time for r in self._ranks]
            ),
            timelines={r.rank: r.timeline for r in self._ranks if r.record},
            nranks=self.nranks,
            events_fired=self.engine.events_fired,
            checkpoint_time=tl0.time_in("checkpoint"),
            compute_time=tl0.time_in("compute") + tl0.time_in("exchange"),
            collective_time=tl0.time_in("collective"),
            verify_time=tl0.time_in("verify"),
            **fields,
        )
        return self._result
