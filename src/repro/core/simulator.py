"""The BE-SST simulator: ranks executing abstract instructions.

Each simulated MPI rank is a DES component; executing an instruction polls
the ArchBEO for its predicted runtime and advances that rank's clock.
Collectives rendezvous all ranks and release them together at
``max(arrival) + modeled cost``.  Consecutive non-synchronizing
instructions are batched into a single event, which keeps a
1000-rank × 200-timestep case-study simulation at a few hundred thousand
events.

Fault injection (Cases 2 and 4 of Fig. 4) plugs in through
:meth:`BESSTSimulator.run`'s ``fault_injector``: node failures trigger a
coordinated rollback of every rank to its last completed checkpoint (or to
the very beginning when the application carries no checkpoints), plus the
ArchBEO's recovery downtime.

The fault *lifecycle* follows a four-state machine driven by the
:class:`~repro.core.fault_injection.RecoveryPolicy`::

    running ──fault──▶ recovering ──verify ok──▶ running
       ▲                   │  ▲
       │                   │  └── nested fault / failed verification
       │                   │      (escalate L1 → L2 → L4 → restart)
       │            attempts exhausted
       │                   ▼
       └──requeue ok── requeued ──spares+requeues exhausted──▶ aborted

A fault that lands while a rank is *inside* a ``Checkpoint`` instruction
tears that in-progress instance (it never becomes a restart point), and —
with in-place L1 writes — destroys the previous committed L1 copy on the
failed node, pushing recovery one checkpoint further back.

Beyond fail-stop, the simulator handles three more fault kinds
end-to-end:

* ``"sdc"`` — silent data corruption arms a *latent* flag on the victim
  rank.  Nothing happens until a detection point: an ABFT ``Verify``
  instruction commits (primary detector) or a checkpoint write validates
  its data (``RecoveryPolicy.ckpt_validate_prob``).  Checkpoints written
  by a flagged rank are *corrupt*: detection-triggered recovery skips
  them and rolls back past the last clean checkpoint.  Covered,
  correctable strikes are fixed in place at the detection point;
  uncovered strikes evade detection entirely and — if they survive to
  the end of the run — turn the result into a *wrong result*
  (``SimulationResult.wrong_result``).
* ``"straggler"`` — the victim node's compute clock runs slower by the
  drawn factor until the repair event fires (batch granularity: an
  already-priced batch keeps its price).
* ``"burst"`` — a correlated failure: every node in the drawn
  neighborhood fails at once (fail-stop semantics, L2+ recovery).

The network fault domain (``"link"``/``"switch"``/``"netdeg"``) mutates
the topology's :class:`~repro.network.health.NetworkHealth` overlay
instead of felling compute endpoints: traffic reroutes over surviving
paths (the LogGP model prices hop inflation, de-rated bandwidth and
retransmission delay transparently), L2/partner-copy checkpoint traffic
pays the degraded-network cost, and when the participant set is
*partitioned* the job cannot rendezvous — recovery attempts stall
(bounded by the episode's attempt budget) until a repair restores
connectivity or the ladder escalates into requeue/abort.  A checkpoint
whose partner copy cannot cross a partition commits at an *effective*
level of 1 (local-only protection) and is counted in
``net_degraded_commits``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.core.beo import AppBEO, ArchBEO
from repro.core.fault_injection import (
    FAULT_KINDS,
    FaultDetail,
    FaultEvent,
    RecoveryPolicy,
)
from repro.core.instructions import (
    Checkpoint,
    Collective,
    Compute,
    Exchange,
    Instruction,
    Marker,
    Verify,
)
from repro.des.component import Component
from repro.des.engine import Engine
from repro.des.event import Event
from repro.des.snapshot import AutoSnapshotPolicy, Snapshot, SnapshotError


@dataclass
class TimelineEntry:
    """One executed instruction on one rank."""

    t_start: float
    t_end: float
    kind: str           #: "compute" | "checkpoint" | "verify" | "collective" | "exchange" | "marker" | "rollback"
    label: str
    level: int = 0      #: checkpoint level when kind == "checkpoint"

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass
class RankTimeline:
    """Recorded execution history of one rank."""

    rank: int
    entries: list[TimelineEntry] = field(default_factory=list)

    def checkpoint_marks(self) -> list[tuple[float, int]]:
        """(completion time, level) of every checkpoint instance — the
        black dots on Figs. 7-8."""
        return [
            (e.t_end, e.level) for e in self.entries if e.kind == "checkpoint"
        ]

    def time_in(self, kind: str) -> float:
        return sum(e.duration for e in self.entries if e.kind == kind)

    def cumulative_curve(self) -> list[tuple[float, int]]:
        """(time, completed instruction count) — runtime-vs-progress data
        for the full-application runtime figures."""
        return [(e.t_end, i + 1) for i, e in enumerate(self.entries)]


@dataclass
class SimulationResult:
    """Output of one BE-SST simulation run."""

    total_time: float
    finish_times: list[float]
    timelines: dict[int, RankTimeline]
    nranks: int
    events_fired: int
    checkpoint_time: float          #: rank-0 time spent inside Checkpoint instructions
    compute_time: float             #: rank-0 time in Compute instructions
    collective_time: float          #: rank-0 time in collectives
    faults_injected: int = 0
    rollbacks: int = 0
    wasted_time: float = 0.0        #: recomputed + downtime + requeue attributable to faults
    completed: bool = True          #: False when the job aborted (requeues exhausted)
    nested_faults: int = 0          #: faults that landed inside a recovery window
    torn_checkpoints: int = 0       #: checkpoint instances interrupted mid-write
    verify_failures: int = 0        #: recovery read-backs that failed verification
    escalations: int = 0            #: ladder rungs climbed after failed verifications
    recovery_attempts: int = 0      #: total recovery attempts across all episodes
    requeues: int = 0               #: job resubmissions after recovery exhaustion
    waste_rework: float = 0.0       #: lost forward progress (recomputation)
    waste_downtime: float = 0.0     #: detection + restore + retry delays
    waste_requeue: float = 0.0      #: resubmission + spare-swap/rebuild stalls
    verify_time: float = 0.0        #: rank-0 time inside ABFT Verify kernels
    faults_by_kind: dict = field(default_factory=dict)  #: kind -> injected count
    sdc_injected: int = 0           #: SDC strikes armed
    sdc_detected: int = 0           #: strikes observed at a detection point
    sdc_corrected: int = 0          #: detected strikes fixed in place (ABFT)
    sdc_undetected: int = 0         #: strikes still latent at the end of the run
    wrong_result: bool = False      #: job "completed" but carries undetected SDC
    sdc_detect_latency_s: float = 0.0  #: summed injection→detection latency
    net_faults: int = 0             #: link/switch/netdeg faults applied to the overlay
    net_repairs: int = 0            #: network repairs that restored service
    net_partition_stalls: int = 0   #: recovery attempts stalled by a partitioned group
    net_degraded_commits: int = 0   #: L2+ checkpoints degraded to L1 (partner unreachable)
    net_reroutes: int = 0           #: messages priced over a detour route
    net_retransmits: float = 0.0    #: expected retransmissions on lossy routes
    #: closed forensic recovery-episode summaries (see ``core.forensics``):
    #: each carries its owning fault ids, phase timeline and the exact
    #: per-episode waste charges, so attribution sums to the totals
    episodes: list = field(default_factory=list)
    straggler_excess_s: float = 0.0  #: job-time excess from degraded compute clocks
    straggler_excess_by_node: dict = field(default_factory=dict)  #: node -> excess share

    @property
    def ft_overhead_fraction(self) -> float:
        """Share of rank-0 busy time spent on FT work (checkpoint+verify)."""
        busy = (
            self.compute_time
            + self.collective_time
            + self.checkpoint_time
            + self.verify_time
        )
        ft = self.checkpoint_time + self.verify_time
        return ft / busy if busy > 0 else 0.0

    def checkpoint_marks(self) -> list[tuple[float, int]]:
        tl = self.timelines.get(0)
        return tl.checkpoint_marks() if tl else []


class _SyncDomain:
    """Rendezvous state for one collective call site sequence.

    Collectives are totally ordered per rank (SPMD), so a single counter
    per call-index suffices: the n-th collective executed by each rank is
    matched with every other rank's n-th collective.
    """

    def __init__(self, sim: "BESSTSimulator") -> None:
        self.sim = sim
        self._arrivals: dict[int, list] = {}   # call index -> [(comp, t_arrive)]
        self._pending_releases: list[Event] = []

    def arrive(self, comp: "_Rank", call_index: int, instr: Collective) -> None:
        lst = self._arrivals.setdefault(call_index, [])
        lst.append((comp, comp.now))
        if len(lst) == self.sim.nranks:
            t_max = max(t for _, t in lst)
            cost = self.sim.archbeo.collective_time(instr, self.sim.nranks)
            release_at = max(t_max + cost, comp.now)
            # One release event frees every rank (equivalent to per-rank
            # events at the same timestamp, at 1/nranks the event count).
            ev = Event(
                time=release_at,
                handler=self._release_all,
                payload=(list(lst), instr, cost),
            )
            self._pending_releases.append(self.sim.engine.schedule_event(ev))
            del self._arrivals[call_index]

    def _release_all(self, ev: Event) -> None:
        lst, instr, cost = ev.payload
        for c, _t in lst:
            if c.record:
                c.timeline.entries.append(
                    TimelineEntry(c.now - cost, c.now, "collective", instr.op)
                )
            c.advance()

    def reset(self, engine: Engine) -> None:
        """Drop all rendezvous state (used on fault rollback)."""
        for ev in self._pending_releases:
            engine.cancel(ev)
        self._pending_releases.clear()
        self._arrivals.clear()


class _Rank(Component):
    """One simulated MPI rank executing its AppBEO instruction stream."""

    def __init__(self, rank: int, sim: "BESSTSimulator", program: Sequence[Instruction]):
        super().__init__(f"rank{rank}")
        self.rank = rank
        self.sim = sim
        self.program = list(program)
        self.pc = 0
        self.collective_calls = 0
        self.done = False
        self.finish_time: Optional[float] = None
        self.record = rank in sim._recorded_ranks
        self.timeline = RankTimeline(rank)
        #: checkpoints completed by this rank
        self.ckpt_seq = 0
        #: ckpt_seq -> (resume pc, collective_calls, completion time,
        #: ckpt cost, checkpoint level); seq 0 is "the beginning" and is
        #: never pruned.  A short history window is retained so
        #: level-aware recovery can walk back to an older, higher-level
        #: checkpoint when the newest one does not cover the fault kind.
        self.restart_history: dict[int, tuple[int, int, float, float, int]] = {
            0: (0, 0, 0.0, 0.0, 0)
        }
        self._pending: Optional[Event] = None

    def setup(self) -> None:
        self._pending = self.schedule(0.0, self._on_resume)

    def _on_resume(self, _ev: Event) -> None:
        # Bound-method resume handler (not a lambda) so the whole rank —
        # pending events included — stays snapshot-picklable.
        self.advance()

    # -- execution ---------------------------------------------------------------

    def advance(self) -> None:
        """Execute instructions until blocking on a collective or finishing."""
        self._pending = None
        while self.pc < len(self.program):
            instr = self.program[self.pc]
            if isinstance(instr, Collective):
                self.pc += 1
                self.collective_calls += 1
                self.sim.sync.arrive(self, self.collective_calls - 1, instr)
                return
            if isinstance(instr, Marker):
                if self.record:
                    self.timeline.entries.append(
                        TimelineEntry(self.now, self.now, "marker", instr.name)
                    )
                self.pc += 1
                continue
            # Batch consecutive non-synchronizing instructions.
            dt, batch = self._price_batch()
            self._pending = self.schedule(dt, self._on_batch_done, payload=batch)
            return
        if not self.done:
            self.done = True
            self.finish_time = self.now
            self.sim._rank_finished(self)

    def _price_batch(self) -> tuple[float, list]:
        """Price the run of local instructions starting at ``pc``.

        Returns total duration and ``(instr, start_offset, duration)``
        records for the timeline.
        """
        t_off = 0.0
        batch = []
        # Straggler degradation: local (clocked) work on a degraded node
        # runs slower by the node's slowdown factor.  Exchanges are
        # network-bound and keep their modeled time.  The factor is read
        # once per batch — an already-priced batch keeps its price even
        # if a repair lands mid-flight (batch granularity).
        slow = self.sim._slowdown_for_rank(self.rank)
        slowed_t = 0.0
        while self.pc < len(self.program):
            instr = self.program[self.pc]
            if isinstance(instr, (Compute, Checkpoint, Verify)):
                dt = slow * self.sim.archbeo.predict(
                    instr.kernel, instr.param_dict(), self._model_rng()
                )
                if (
                    isinstance(instr, Checkpoint)
                    and instr.level >= 2
                    and self.sim._net_active
                ):
                    # L2/partner-copy traffic crosses the (possibly
                    # degraded) fabric and pays the real network cost.
                    dt *= self.sim._net_ckpt_factor(self.rank)
                if slow != 1.0:
                    slowed_t += dt
            elif isinstance(instr, Exchange):
                dt = self.sim.archbeo.exchange_time(instr)
            elif isinstance(instr, Marker):
                dt = 0.0
            else:
                break
            batch.append((instr, t_off, dt))
            t_off += dt
            self.pc += 1
        if slowed_t > 0.0:
            # Forensic accounting only: the excess over healthy-clock time
            # for this batch's slowed instructions (dt includes the factor,
            # so excess = dt - dt/slow).
            self.sim._note_straggler_excess(
                self.rank, slowed_t * (1.0 - 1.0 / slow)
            )
        return t_off, batch

    def _on_batch_done(self, ev: Event) -> None:
        t_end = self.now
        batch = ev.payload
        t_start = t_end - sum(d for _, _, d in batch)
        base = self.pc - len(batch)  # pc of the first batched instruction
        for i, (instr, off, dt) in enumerate(batch):
            if self.record:
                kind = (
                    "compute"
                    if isinstance(instr, Compute)
                    else "checkpoint"
                    if isinstance(instr, Checkpoint)
                    else "verify"
                    if isinstance(instr, Verify)
                    else "exchange"
                    if isinstance(instr, Exchange)
                    else "marker"
                )
                label = getattr(instr, "kernel", None) or getattr(
                    instr, "name", type(instr).__name__.lower()
                )
                self.timeline.entries.append(
                    TimelineEntry(
                        t_start + off,
                        t_start + off + dt,
                        kind,
                        label,
                        level=getattr(instr, "level", 0),
                    )
                )
            if isinstance(instr, Checkpoint):
                # Restart point: resume AFTER this checkpoint instruction.
                # The recorded level is the protection actually achieved
                # (a partitioned partner degrades an L2+ write to L1).
                self.ckpt_seq += 1
                self.restart_history[self.ckpt_seq] = (
                    base + i + 1,
                    self.collective_calls,
                    t_start + off + dt,
                    dt,
                    self.sim._effective_ckpt_level(self.rank, instr.level),
                )
                stale = self.ckpt_seq - 6
                if stale > 0:
                    self.restart_history.pop(stale, None)
                if self.sim._on_checkpoint_commit(self, self.ckpt_seq):
                    # Write-validation caught latent SDC: recovery has
                    # paused every rank and the rest of the batch is
                    # discarded by the rollback — do not advance.
                    return
            elif isinstance(instr, Verify):
                if self.sim._on_verify_point(self):
                    return  # detection started a recovery episode
        self.advance()

    def _model_rng(self) -> Optional[np.random.Generator]:
        return self.rng if self.sim.monte_carlo else None

    # -- fault handling -----------------------------------------------------------

    def rollback(self, seq: int, resume_delay: float) -> None:
        """Reset to checkpoint *seq*; resume after *resume_delay*."""
        if self._pending is not None:
            self.engine.cancel(self._pending)
            self._pending = None
        pc, coll, t_ckpt, ckpt_cost, _level = self.restart_history[seq]
        # discard any checkpoint taken after the committed one
        for later in [s for s in self.restart_history if s > seq]:
            del self.restart_history[later]
        self.ckpt_seq = seq
        self.pc = pc
        self.collective_calls = coll
        self.done = False
        self.finish_time = None
        if self.record:
            self.timeline.entries.append(
                TimelineEntry(self.now, self.now + resume_delay, "rollback", "rollback")
            )
        # Track the resume event so a second fault during recovery can
        # cancel it (otherwise the rank would resume twice).
        self._pending = self.schedule(resume_delay, self._on_resume)

    def pause(self) -> None:
        """Cancel whatever this rank is doing (fault arrived)."""
        if self._pending is not None:
            self.engine.cancel(self._pending)
            self._pending = None

    def checkpoint_in_progress(self, t: float) -> Optional[int]:
        """Level of the Checkpoint instruction this rank is inside at *t*,
        or None.  Batched instructions commit only when the batch event
        fires, so the pending batch localises the write window exactly."""
        ev = self._pending
        if ev is None or ev.cancelled or not isinstance(ev.payload, list):
            return None
        batch = ev.payload
        start = ev.time - sum(d for _, _, d in batch)
        for instr, off, dt in batch:
            if (
                isinstance(instr, Checkpoint)
                and dt > 0
                and start + off <= t < start + off + dt
            ):
                return instr.level
        return None

    def handle_event(self, port_name, payload, time) -> None:  # pragma: no cover
        raise RuntimeError("rank components do not use ports")


@dataclass
class _RecoveryEpisode:
    """Mutable state of one fault episode (fault → recovered/requeued).

    Nested faults extend the episode: they refresh ``kind`` (to the worst
    severity seen) but keep ``fault_time``, the credited rework and the
    cumulative ``attempts`` bound — the latter is what guarantees
    termination under fault storms.
    """

    kind: str
    fault_time: float
    #: escalation ladder, frozen when the episode starts (each attempt's
    #: rollback truncates newer restart history, so recomputing it per
    #: attempt would shift the rung targets under the episode's feet)
    ladder: list = field(default_factory=list)
    attempts: int = 0
    rung: int = 0                  #: escalation-ladder index
    rework_credited: float = 0.0   #: lost progress already charged to waste
    requeued: bool = False         #: waiting out a resubmission delay
    #: detection-triggered SDC recovery: the ladder must skip checkpoints
    #: written while the corruption was latent (sticky across nested-fault
    #: kind merging — the corrupt data does not get cleaner because a
    #: node also died)
    avoid_corrupt: bool = False
    # -- forensic bookkeeping (observation-only: derived from charges the
    # -- lifecycle already makes, never feeding back into scheduling) ----
    episode_id: int = -1
    downtime_s: float = 0.0        #: detection/restore/retry delays charged here
    requeue_s: float = 0.0         #: resubmission delays charged here
    fault_ids: list = field(default_factory=list)  #: injector-log ids, primary first
    phases: list = field(default_factory=list)     #: [t, phase, data] timeline


#: per-episode phase timelines are bounded so a fault storm cannot grow
#: a replica record without limit (the waste charges stay exact)
_MAX_EPISODE_PHASES = 128


#: fault-kind severity ordering for nested-fault merging (network kinds
#: leave node storage intact, so they rank with the mild kinds)
_KIND_SEVERITY = {
    "software": 0,
    "netdeg": 0,
    "sdc": 1,
    "link": 1,
    "switch": 1,
    "node": 2,
    "burst": 3,
}


class BESSTSimulator:
    """Drives one BE-SST simulation of an AppBEO on an ArchBEO.

    Parameters
    ----------
    appbeo / archbeo:
        The application and architecture models.
    nranks:
        MPI ranks to simulate.
    params:
        Application parameters (merged over the AppBEO defaults).
    seed:
        Seed for per-rank model-noise streams.
    monte_carlo:
        When true (default), model predictions draw from calibration
        distributions; when false, deterministic central predictions.
    record_timelines:
        Which ranks record full timelines: ``"rank0"`` (default),
        ``"all"``, or ``"none"``.
    fault_injector:
        Optional :class:`~repro.core.fault_injection.FaultInjector`
        enabling Cases 2/4.
    recovery_policy:
        Optional :class:`~repro.core.fault_injection.RecoveryPolicy`
        enabling the full fault lifecycle (torn checkpoints, verification
        failures, escalation, requeue).  ``None`` keeps the seed
        semantics: one atomic, always-successful rollback per fault.
    """

    def __init__(
        self,
        appbeo: AppBEO,
        archbeo: ArchBEO,
        nranks: int,
        params: Optional[Mapping[str, float]] = None,
        seed: int = 0,
        monte_carlo: bool = True,
        record_timelines: str = "rank0",
        fault_injector=None,
        recovery_policy: Optional[RecoveryPolicy] = None,
    ) -> None:
        if record_timelines not in ("rank0", "all", "none"):
            raise ValueError(f"invalid record_timelines {record_timelines!r}")
        appbeo.check_ranks(nranks)
        self.appbeo = appbeo
        self.archbeo = archbeo
        self.nranks = nranks
        self.params = dict(params or {})
        self.monte_carlo = monte_carlo
        self.engine = Engine(seed=seed)
        self.sync = _SyncDomain(self)
        self.fault_injector = fault_injector
        self.policy = recovery_policy or RecoveryPolicy.legacy()
        self._recorded_ranks = (
            set(range(nranks))
            if record_timelines == "all"
            else {0}
            if record_timelines == "rank0"
            else set()
        )
        self._ranks: list[_Rank] = []
        self._finished = 0
        self._result: Optional[SimulationResult] = None
        self.faults_injected = 0
        self.rollbacks = 0
        # fault-lifecycle state
        self._recovery: Optional[_RecoveryEpisode] = None
        self._recovery_event = None
        self._recovery_rng = self.engine.rngs.get("__recovery__")
        self._invalid_seqs: set[int] = set()
        self._aborted = False
        self._abort_time = 0.0
        self._spares_left = self.policy.n_spares
        self.nested_faults = 0
        self.torn_checkpoints = 0
        self.verify_failures = 0
        self.escalations = 0
        self.recovery_attempts = 0
        self.requeues = 0
        self.waste_rework = 0.0
        self.waste_downtime = 0.0
        self.waste_requeue = 0.0
        # SDC / straggler state
        self._sdc_rng = self.engine.rngs.get("__sdc__")
        #: rank -> latent strikes: {"armed", "covered", "correctable", "event"}
        self._sdc_latent: dict[int, list[dict]] = {}
        #: globally committed checkpoint seqs written while corruption was latent
        self._corrupt_seqs: set[int] = set()
        #: node -> compute-clock slowdown factor (stragglers)
        self._node_slowdown: dict[int, float] = {}
        #: node -> generation token guarding stale straggler-repair events
        self._straggler_token: dict[int, int] = {}
        # forensic state (observation-only; nothing here touches a draw
        # stream or schedules an event, so results are identical with or
        # without a flight recorder attached)
        self.episodes: list[dict] = []
        self._episode_seq = 0
        self.straggler_excess_s = 0.0
        self._straggler_excess_by_node: dict[int, float] = {}
        self._flightrec = None
        self.faults_by_kind: dict[str, int] = {}
        self.sdc_injected = 0
        self.sdc_detected = 0
        self.sdc_corrected = 0
        self.sdc_detect_latency_s = 0.0
        # network fault-domain state
        self._net_rng = self.engine.rngs.get("__net__")
        #: ("node", endpoint) / ("edge", (a, b)) -> generation token
        #: guarding stale network-repair events
        self._net_token: dict[tuple, int] = {}
        #: fast gate for the hot checkpoint-pricing path: True while any
        #: overlay mutation from this fault domain may be active
        self._net_active = False
        self.net_faults = 0
        self.net_repairs = 0
        self.net_partition_stalls = 0
        self.net_degraded_commits = 0
        #: LogGP reroute/retransmit stats at construction — the model may
        #: be shared across simulators, so run() reports the delta
        p2p = getattr(getattr(archbeo, "comm", None), "p2p", None)
        self._net_stats_base = dict(getattr(p2p, "stats", None) or {})

        program0 = self.appbeo.build(0, nranks, self.params)
        for r in range(nranks):
            program = program0 if r == 0 else self.appbeo.build(r, nranks, self.params)
            self._ranks.append(self.engine.register(_Rank(r, self, program)))

        if fault_injector is not None:
            fault_injector.attach(self)

    # -- callbacks ---------------------------------------------------------------------

    def _rank_finished(self, rank: "_Rank") -> None:
        self._finished += 1
        if self._finished == self.nranks and self.fault_injector is not None:
            self.fault_injector.detach()

    #: minimum checkpoint level whose protection domain covers each fault
    #: kind: software/transient crashes leave node storage intact (any
    #: level), node losses and correlated bursts need partner/RS/PFS
    #: protection (Table I); detected SDC restores from any level — the
    #: data on disk is intact, it just has to be a *clean* version.
    #: Network faults never touch storage, so any level recovers once
    #: connectivity is back.
    MIN_LEVEL_FOR_KIND = {
        "software": 1,
        "sdc": 1,
        "node": 2,
        "burst": 2,
        "link": 1,
        "switch": 1,
        "netdeg": 1,
    }

    @property
    def wasted_time(self) -> float:
        """Total fault-attributable waste (rework + downtime + requeue)."""
        return self.waste_rework + self.waste_downtime + self.waste_requeue

    @property
    def state(self) -> str:
        """Lifecycle state: running | recovering | requeued | aborted | done."""
        if self._aborted:
            return "aborted"
        if self._result is not None or self._finished == self.nranks:
            return "done"
        if self._recovery is not None:
            return "requeued" if self._recovery.requeued else "recovering"
        return "running"

    # -- forensics ---------------------------------------------------------------------

    def attach_flightrec(self, rec):
        """Attach (or with ``None`` detach) a flight recorder.

        The recorder receives every fault/recovery lifecycle record plus
        the engine's periodic progress ticks.  Recording is strictly
        observational: it never draws randomness or schedules events, so
        simulation output is identical with it on or off.
        """
        self._flightrec = rec
        self.engine.attach_flightrec(rec)
        return rec

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_flightrec"] = None  # open spill handle: reattach post-restore
        return state

    def _forensic_note(self, what: str, **data) -> None:
        rec = self._flightrec
        if rec is not None:
            rec.record(what, self.engine.now, **data)

    def _episode_phase(self, episode: _RecoveryEpisode, phase: str, **data) -> None:
        """Append one phase to the episode timeline (bounded) and mirror
        it into the flight recorder."""
        if len(episode.phases) < _MAX_EPISODE_PHASES:
            episode.phases.append([self.engine.now, phase, data])
        self._forensic_note(phase, episode=episode.episode_id, **data)

    def _close_episode(self, episode: _RecoveryEpisode, outcome: str) -> None:
        """Freeze one finished recovery episode into a summary record.

        The waste fields are the exact charges this episode made to the
        simulator's rework/downtime/requeue buckets, so summing episode
        waste reproduces the replica totals (the reconciliation invariant
        ``core.forensics`` relies on).
        """
        self.episodes.append(
            {
                "id": episode.episode_id,
                "kind": episode.kind,
                "t_fault": episode.fault_time,
                "t_end": self.engine.now,
                "outcome": outcome,
                "attempts": episode.attempts,
                "rung": episode.rung,
                "rework_s": episode.rework_credited,
                "downtime_s": episode.downtime_s,
                "requeue_s": episode.requeue_s,
                "faults": [f for f in episode.fault_ids if f >= 0],
                "phases": list(episode.phases),
            }
        )
        self._forensic_note(
            "episode_end", episode=episode.episode_id, outcome=outcome
        )

    def _new_episode(self, fid: int, **kwargs) -> _RecoveryEpisode:
        episode = _RecoveryEpisode(episode_id=self._episode_seq, **kwargs)
        self._episode_seq += 1
        if fid >= 0:
            episode.fault_ids.append(fid)
        return episode

    def _note_straggler_excess(self, rank: int, excess: float) -> None:
        """Credit one batch's straggler-inflated runtime (job-time share)."""
        share = excess / self.nranks
        self.straggler_excess_s += share
        node = self.archbeo.node_of_rank(rank)
        self._straggler_excess_by_node[node] = (
            self._straggler_excess_by_node.get(node, 0.0) + share
        )

    # -- fault lifecycle ---------------------------------------------------------------

    def inject_fault(
        self,
        node: int,
        kind: str = "software",
        detail: Optional[FaultDetail] = None,
        event: Optional[FaultEvent] = None,
    ) -> None:
        """Coordinated, level-aware, lifecycle-realistic failure handling.

        Fail-stop kinds (``software``/``node``/``burst``) start (or
        re-enter, for nested faults) a recovery episode: every rank rolls
        back to the newest *globally committed* checkpoint whose level
        covers the fault *kind* and whose data survived torn writes — or
        to the very beginning when no surviving checkpoint does.  Each
        attempt pays the ArchBEO downtime plus one read-back of the
        chosen checkpoint; failed verifications escalate L1 → L2 → L4 →
        full restart, and exhausted attempts abort and requeue the job
        (see :class:`RecoveryPolicy`).

        ``sdc`` arms a latent corruption flag (nothing visible until a
        detection point); ``straggler`` degrades the node's compute clock
        until repair.  Neither interrupts execution at injection time.

        *detail* carries the kind-specific parameters drawn by the
        injector (defaults applied when called directly); *event* is the
        injector's log record, updated in place with detection outcomes.
        """
        if self._aborted or self._finished == self.nranks:
            return
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; expected "
                f"{sorted(FAULT_KINDS)}"
            )
        if self._recovery is not None and self._recovery.requeued:
            # The job is sitting in the scheduler queue: node failures
            # during the resubmission window do not hit it.
            return
        if detail is None:
            if kind == "netdeg":
                detail = FaultDetail(repair_s=30.0, derate=4.0, loss_prob=0.05)
            elif kind in ("link", "switch"):
                detail = FaultDetail(repair_s=30.0)
            else:
                detail = FaultDetail(victims=(node,), slowdown=2.0)
        if event is None:
            event = FaultEvent(
                self.engine.now,
                node,
                kind,
                victims=detail.victims,
                slowdown=detail.slowdown,
            )
        self.faults_injected += 1
        self.faults_by_kind[kind] = self.faults_by_kind.get(kind, 0) + 1
        self._record_fault_metric(kind)
        # Forensic fault id: the injector appends its log record before
        # dispatching here, so the id is simply that record's log index
        # (joined by identity, not by a parallel counter — early returns
        # above cannot desynchronise it).  Direct calls carry no id.
        fid = -1
        if self.fault_injector is not None and event is not None:
            log = self.fault_injector.log.entries
            if log and log[-1] is event:
                fid = len(log) - 1
        self._forensic_note("inject", fault=fid, fault_kind=kind, node=node)
        if kind == "straggler":
            self._apply_straggler(node, detail, event)
            return
        if kind == "sdc":
            self._arm_sdc(node, detail, event, fid)
            return
        if kind in ("link", "switch", "netdeg"):
            self._apply_net_fault(node, kind, detail, event, fid)
            return
        now = self.engine.now
        for victim in detail.victims if kind == "burst" else (node,):
            self._handle_torn(now, victim)
        self._enter_recovery(kind, now, fid)

    def _enter_recovery(self, kind: str, now: float, fid: int = -1) -> None:
        """Pause the whole job and enter (or re-enter) a recovery episode."""
        # Pause the whole job: collectives, batches, pending resumes.
        self.sync.reset(self.engine)
        for rank in self._ranks:
            rank.pause()
        self._finished = 0
        if self._recovery is not None:
            # Nested fault: the recovery in flight is itself interrupted.
            # Re-enter recovery, paying fresh downtime; the episode's
            # attempt budget keeps accumulating so fault storms terminate.
            self.nested_faults += 1
            if self._recovery_event is not None:
                self.engine.cancel(self._recovery_event)
                self._recovery_event = None
            episode = self._recovery
            if fid >= 0:
                episode.fault_ids.append(fid)
            self._episode_phase(episode, "nested_fault", fault=fid, fault_kind=kind)
            if _KIND_SEVERITY[kind] > _KIND_SEVERITY[episode.kind]:
                episode.kind = kind
                # A worse kind shrinks the candidate set; refresh the
                # ladder so no rung points at an uncovered checkpoint.
                episode.ladder = self._candidate_ladder(
                    kind, avoid_corrupt=episode.avoid_corrupt
                )
            # The episode's fault_time and credited rework stand: ranks
            # are paused during recovery, so the nested fault exposes no
            # new lost progress — only fresh downtime (charged below).
        else:
            self._recovery = self._new_episode(
                fid, kind=kind, fault_time=now, ladder=self._candidate_ladder(kind)
            )
            self._episode_phase(self._recovery, "detect", fault=fid, fault_kind=kind)
        self._start_attempt()

    # -- stragglers --------------------------------------------------------------------

    def _slowdown_for_rank(self, rank: int) -> float:
        if not self._node_slowdown:
            return 1.0
        return self._node_slowdown.get(self.archbeo.node_of_rank(rank), 1.0)

    def _apply_straggler(self, node: int, detail: FaultDetail, event: FaultEvent) -> None:
        """Degrade *node*'s compute clock; schedule its repair."""
        self._node_slowdown[node] = max(
            self._node_slowdown.get(node, 1.0), detail.slowdown
        )
        token = self._straggler_token.get(node, 0) + 1
        self._straggler_token[node] = token
        if detail.repair_s > 0:
            # Token-guarded: a newer straggler on the same node outdates
            # this repair (the node stays degraded until the *last* one
            # is fixed).
            self.engine.schedule(
                detail.repair_s, self._straggler_repaired, payload=(node, token)
            )

    def _straggler_repaired(self, ev: Event) -> None:
        node, token = ev.payload
        if self._straggler_token.get(node) != token:
            return  # a newer degradation superseded this repair
        self._node_slowdown.pop(node, None)

    # -- network fault domain ----------------------------------------------------------

    def _net_endpoints_of_node(self, node: int) -> list[int]:
        """Topology endpoints owned by compute node *node*.

        Two conventions coexist: when the topology spans exactly the
        rank count it is a rank-level network (endpoints = the node's
        ranks); otherwise it is a node-level network (endpoint = the
        node id, when in range).
        """
        topo = self.archbeo.topology
        if topo.num_nodes == self.nranks:
            cpn = max(1, self.archbeo.cores_per_node)
            return [
                r for r in range(node * cpn, (node + 1) * cpn) if r < self.nranks
            ]
        return [node] if node < topo.num_nodes else []

    def _net_participants(self) -> list[int]:
        """Every topology endpoint the job's ranks live on — the set
        that must rendezvous for collectives and checkpoint commits."""
        topo = self.archbeo.topology
        if topo.num_nodes == self.nranks:
            return list(range(self.nranks))
        return sorted(
            {
                self.archbeo.node_of_rank(r)
                for r in range(self.nranks)
                if self.archbeo.node_of_rank(r) < topo.num_nodes
            }
        )

    def _net_draw_edge(self, node: int) -> Optional[tuple[int, int]]:
        """Deterministically pick the victim link of a fault seeded at
        *node*: a uniform draw (engine-seeded ``__net__`` stream) over
        the sorted baseline neighbours of the node's first endpoint."""
        topo = self.archbeo.topology
        eps = self._net_endpoints_of_node(node)
        ep = eps[0] if eps else int(self._net_rng.integers(0, topo.num_nodes))
        nbrs = sorted(topo.neighbors(ep))
        if not nbrs:
            return None
        peer = int(nbrs[int(self._net_rng.integers(0, len(nbrs)))])
        return (min(ep, peer), max(ep, peer))

    def _apply_net_fault(
        self,
        node: int,
        kind: str,
        detail: FaultDetail,
        event: FaultEvent,
        fid: int = -1,
    ) -> None:
        """Mutate the health overlay for one network fault and schedule
        its repair; enter recovery when the job is partitioned."""
        now = self.engine.now
        h = self.archbeo.topology.health()
        victims: list[tuple] = []
        if kind == "switch":
            eps = self._net_endpoints_of_node(node)
            if not eps:
                event.outcome = "no_effect"
                return
            for ep in eps:
                h.fail_node(ep)
                victims.append(("node", ep))
        else:
            edge = tuple(int(e) for e in detail.edge) or self._net_draw_edge(node)
            if edge is None:
                event.outcome = "no_effect"  # e.g. single-endpoint topology
                return
            if kind == "link":
                h.fail_link(*edge)
            else:
                h.degrade_link(
                    edge[0],
                    edge[1],
                    derate=detail.derate,
                    loss_prob=detail.loss_prob,
                )
            victims.append(("edge", edge))
        self._net_active = True
        self.net_faults += 1
        if detail.repair_s > 0:
            for victim in victims:
                # Token-guarded like straggler repairs: a newer fault on
                # the same link/endpoint outdates this repair.
                token = self._net_token.get(victim, 0) + 1
                self._net_token[victim] = token
                self.engine.schedule(
                    detail.repair_s, self._net_repaired, payload=(victim, token)
                )
        self._net_update_gauges(h)
        # Degradations never partition; hard failures may cut the
        # participant set in two — then the job cannot rendezvous and
        # the existing escalation ladder takes over.
        if kind in ("link", "switch") and h.group_partitioned(
            self._net_participants()
        ):
            self.net_partition_stalls += 1
            self._record_net_stall()
            event.outcome = "partitioned"
            self._enter_recovery(kind, now, fid)

    def _net_repaired(self, ev: Event) -> None:
        victim, token = ev.payload
        if self._net_token.get(victim) != token:
            return  # a newer fault on the same victim superseded this repair
        h = self.archbeo.topology._health
        if h is None:
            return
        vtype, vid = victim
        if vtype == "node":
            h.repair_node(vid)
        else:
            h.repair_link(*vid)
        self.net_repairs += 1
        if h.healthy:
            self._net_active = False
        self._net_update_gauges(h)

    def _net_blocked(self) -> bool:
        """True while the participant set cannot rendezvous (resuming
        from recovery would hang on the first collective)."""
        h = self.archbeo.topology._health
        if h is None or h.healthy:
            return False
        return h.group_partitioned(self._net_participants())

    def _net_partner(self, rank: int) -> tuple[int, int]:
        """(src, dst) endpoints of *rank*'s partner-copy checkpoint
        traffic (next node over, FTI L2 partner semantics)."""
        topo = self.archbeo.topology
        if topo.num_nodes == self.nranks:
            cpn = max(1, self.archbeo.cores_per_node)
            return rank, (rank + cpn) % self.nranks
        src = self.archbeo.node_of_rank(rank)
        if src >= topo.num_nodes:
            return src, src
        return src, (src + 1) % topo.num_nodes

    def _net_ckpt_factor(self, rank: int) -> float:
        """Degraded-network cost multiplier for one rank's L2+ checkpoint
        write (the partner copy crosses the faulty fabric)."""
        h = self.archbeo.topology._health
        if h is None or h.healthy:
            return 1.0
        src, dst = self._net_partner(rank)
        if src == dst or h.is_partitioned(src, dst):
            # Unreachable partner: the copy is skipped, not slowed — the
            # commit degrades to an effective L1 instead (_on_batch_done).
            return 1.0
        p2p = getattr(getattr(self.archbeo, "comm", None), "p2p", None)
        if p2p is None or not hasattr(p2p, "p2p_penalty"):
            return 1.0
        return max(1.0, float(p2p.p2p_penalty(src, dst)))

    def _effective_ckpt_level(self, rank: int, level: int) -> int:
        """The protection level a checkpoint commit actually achieved:
        an L2+ instance whose partner copy cannot cross a partition
        degrades to node-local (level 1) protection."""
        if level < 2 or not self._net_active:
            return level
        h = self.archbeo.topology._health
        if h is None or h.healthy:
            return level
        src, dst = self._net_partner(rank)
        if src != dst and h.is_partitioned(src, dst):
            self.net_degraded_commits += 1
            return 1
        return level

    def _net_reset(self) -> None:
        """Back to a healthy fabric (requeued onto a repaired machine)."""
        self._net_token.clear()
        self._net_active = False
        h = self.archbeo.topology._health
        if h is not None and not h.healthy:
            h.reset()
            self._net_update_gauges(h)

    def _net_update_gauges(self, h) -> None:
        from repro.obs.metrics import get_registry

        reg = get_registry()
        reg.gauge(
            "net_links_failed", help="Links currently out of service."
        ).set(float(len(h.failed_links)))
        reg.gauge(
            "net_links_degraded", help="Links currently de-rated or lossy."
        ).set(float(len(h.degraded)))
        _stretch, derate, _loss = h.aggregate_penalty()
        reg.gauge(
            "net_bandwidth_derate",
            help="Worst active bandwidth de-rate factor (1 = full speed).",
        ).set(float(derate))

    def _record_net_stall(self) -> None:
        from repro.obs.metrics import get_registry

        get_registry().counter(
            "net_partition_stalls_total",
            help="Recovery attempts stalled by a partitioned participant set.",
        ).inc()

    # -- silent data corruption --------------------------------------------------------

    def _arm_sdc(
        self, node: int, detail: FaultDetail, event: FaultEvent, fid: int = -1
    ) -> None:
        """Arm a latent corruption flag on the first rank of *node*."""
        self.sdc_injected += 1
        victim = next(
            (
                r.rank
                for r in self._ranks
                if self.archbeo.node_of_rank(r.rank) == node
            ),
            None,
        )
        if victim is None:
            # The strike hit memory no simulated rank owns: benign.
            event.outcome = "no_effect"
            return
        self._sdc_latent.setdefault(victim, []).append(
            {
                "armed": self.engine.now,
                "covered": detail.covered,
                "correctable": detail.correctable,
                "event": event,
                "fid": fid,
            }
        )

    def _on_checkpoint_commit(self, rank: "_Rank", seq: int) -> bool:
        """A rank committed checkpoint *seq*.

        A flagged rank bakes its corruption into the written version
        (the whole global instance becomes unusable as a clean restart
        point).  With write validation enabled, the corrupt write is a
        secondary detection point.  Returns True when detection started
        a recovery episode (the caller must not advance).
        """
        strikes = self._sdc_latent.get(rank.rank)
        if not strikes:
            return False
        self._corrupt_seqs.add(seq)
        if self.policy.ckpt_validate_prob > 0 and any(
            s["covered"] for s in strikes
        ):
            caught = (
                float(self._sdc_rng.random()) < self.policy.ckpt_validate_prob
            )
            if caught:
                return self._sdc_detect(rank, path="ckpt_validate")
        return False

    def _on_verify_point(self, rank: "_Rank") -> bool:
        """A rank committed an ABFT Verify kernel — the primary detector.

        Returns True when detection started a recovery episode.
        """
        if not self._sdc_latent.get(rank.rank):
            return False
        return self._sdc_detect(rank, path="verify")

    def _sdc_detect(self, rank: "_Rank", path: str) -> bool:
        """Observe *rank*'s covered latent strikes at a detection point.

        All covered strikes are detected together (the checksum check
        sees the accumulated damage).  If every one is within ABFT's
        correction capability, they are fixed in place; otherwise the
        job enters a recovery episode that rolls back past the last
        clean checkpoint.  Uncovered strikes stay latent — the detector
        cannot see them.
        """
        if self._recovery is not None:
            return False
        strikes = self._sdc_latent.get(rank.rank, [])
        covered = [s for s in strikes if s["covered"]]
        if not covered:
            return False
        now = self.engine.now
        all_correctable = all(s["correctable"] for s in covered)
        for s in covered:
            self.sdc_detected += 1
            latency = now - s["armed"]
            self.sdc_detect_latency_s += latency
            ev = s["event"]
            ev.detected_time = now
            ev.outcome = "corrected" if all_correctable else "rolled_back"
            self._record_sdc_detection(path, latency, ev.outcome)
        if all_correctable:
            self.sdc_corrected += len(covered)
            self._forensic_note(
                "sdc_corrected", rank=rank.rank, path=path, n=len(covered)
            )
            remaining = [s for s in strikes if not s["covered"]]
            if remaining:
                self._sdc_latent[rank.rank] = remaining
            else:
                del self._sdc_latent[rank.rank]
            return False
        # Rollback path: pause the job and recover, skipping checkpoints
        # written while the corruption was latent.
        self.sync.reset(self.engine)
        for r in self._ranks:
            r.pause()
        self._finished = 0
        episode = self._new_episode(
            -1,
            kind="sdc",
            fault_time=now,
            ladder=self._candidate_ladder("sdc", avoid_corrupt=True),
            avoid_corrupt=True,
        )
        episode.fault_ids.extend(
            s["fid"] for s in covered if s.get("fid", -1) >= 0
        )
        self._recovery = episode
        self._episode_phase(episode, "detect", path=path, n=len(covered))
        self._start_attempt()
        return True

    def _record_fault_metric(self, kind: str) -> None:
        """Per-kind injection counter in the process-global obs registry.
        Lazily imported: faults are rare relative to simulation events."""
        from repro.obs.metrics import get_registry

        get_registry().counter(
            "fault_injected_total",
            help="Faults injected into the simulator, by kind.",
            kind=kind,
        ).inc()

    def _record_sdc_detection(self, path: str, latency: float, outcome: str) -> None:
        from repro.obs.metrics import get_registry

        reg = get_registry()
        reg.counter(
            "sdc_detected_total",
            help="Latent SDC strikes observed, by detection path and outcome.",
            path=path,
            outcome=outcome,
        ).inc()
        reg.histogram(
            "sdc_detection_latency_s",
            help="Injection-to-detection latency of observed SDC strikes.",
        ).observe(latency)

    def _handle_torn(self, now: float, node: int) -> None:
        """Invalidate checkpoints torn by a fault at *now*.

        The in-progress instance never commits (its batch is cancelled).
        Additionally, with in-place L1 writes, a rank mid-L1-checkpoint
        on the failed node has already destroyed its previous local copy;
        if that previous committed checkpoint is only L1-protected, the
        whole instance becomes unusable as a restart point (L1 recovery
        needs every node's copy).
        """
        for rank in self._ranks:
            level = rank.checkpoint_in_progress(now)
            if level is None:
                continue
            self.torn_checkpoints += 1
            self._forensic_note("torn_checkpoint", rank=rank.rank, level=level)
            if (
                level == 1
                and self.policy.l1_inplace_writes
                and self.archbeo.node_of_rank(rank.rank) == node
            ):
                seq = rank.ckpt_seq
                if seq > 0 and rank.restart_history[seq][4] == 1:
                    self._invalid_seqs.add(seq)

    def _candidate_ladder(self, kind: str, avoid_corrupt: bool = False) -> list[int]:
        """Restart candidates, newest-first along the escalation ladder.

        One rung per protection tier (L1, L2, L4) at or above the fault
        kind's minimum level, each resolved to the newest globally
        committed, non-torn checkpoint covered by that tier; the final
        rung is always 0 — full restart from the input deck.  With
        *avoid_corrupt* (detected-SDC recovery) checkpoints written while
        the corruption was latent are skipped too: recovery reaches past
        the newest checkpoint to the last *clean* version.
        """
        min_level = self.MIN_LEVEL_FOR_KIND[kind]
        seq_star = min(r.ckpt_seq for r in self._ranks)
        committed: list[tuple[int, int]] = []
        for seq in range(seq_star, 0, -1):
            if seq in self._invalid_seqs:
                continue
            if avoid_corrupt and seq in self._corrupt_seqs:
                continue
            entries = [r.restart_history.get(seq) for r in self._ranks]
            if any(e is None for e in entries):
                continue
            committed.append((seq, entries[0][4]))
        ladder: list[int] = []
        for tier in (1, 2, 4):
            if tier < min_level:
                continue
            for seq, level in committed:
                if level >= tier:
                    if seq not in ladder:
                        ladder.append(seq)
                    break
        ladder.append(0)
        return ladder

    def _start_attempt(self) -> None:
        """Begin one recovery attempt: roll back, pay downtime, verify."""
        episode = self._recovery
        episode.attempts += 1
        if episode.attempts > self.policy.max_attempts:
            self._requeue_or_abort()
            return
        self.recovery_attempts += 1
        seq = episode.ladder[min(episode.rung, len(episode.ladder) - 1)]
        delay = self.archbeo.recovery_time_s + self.policy.retry_extra_delay(
            episode.attempts
        )
        self._charge_rework(episode, seq)
        self.waste_downtime += delay
        episode.downtime_s += delay
        self._episode_phase(
            episode, "attempt", n=episode.attempts, rung=episode.rung,
            seq=seq, delay=delay,
        )
        self.rollbacks += 1
        # Verification is scheduled before the per-rank resumes so it
        # fires first on timestamp ties (deterministic seq ordering).
        self._recovery_event = self.engine.schedule(
            delay, self._verify_attempt, payload=seq
        )
        for rank in self._ranks:
            ckpt_cost = rank.restart_history[seq][3]
            rank.rollback(seq, delay + ckpt_cost)

    def _charge_rework(self, episode: _RecoveryEpisode, seq: int) -> None:
        """Charge newly exposed lost progress (relative to the episode's
        latest fault) to the rework-waste bucket, without double-counting
        across escalating attempts."""
        lost = sum(
            (episode.fault_time - rank.restart_history[seq][2]) / self.nranks
            for rank in self._ranks
        )
        if lost > episode.rework_credited:
            self.waste_rework += lost - episode.rework_credited
            episode.rework_credited = lost

    def _verify_attempt(self, ev: Event) -> None:
        """Read-back verification at the end of one recovery attempt."""
        self._recovery_event = None
        episode = self._recovery
        seq = ev.payload
        ok = (
            seq == 0  # restart from the input deck: nothing to verify
            or self.policy.verify_fail_prob <= 0.0
            or float(self._recovery_rng.random()) >= self.policy.verify_fail_prob
        )
        if ok and self._net_blocked():
            # The data verified, but the participant set is still
            # partitioned: resuming would hang on the first rendezvous.
            # Stall in recovery (one attempt consumed — the episode's
            # attempt budget bounds the wait) until a repair restores
            # connectivity or the job requeues onto a healthy fabric.
            self.net_partition_stalls += 1
            self._record_net_stall()
            self._episode_phase(episode, "partition_stall", seq=seq)
            for rank in self._ranks:
                rank.pause()
            self._start_attempt()
            return
        if ok:
            # Checkpoints discarded by the rollback may get their sequence
            # numbers reused; drop their stale torn- and corrupt-markers.
            self._invalid_seqs = {q for q in self._invalid_seqs if q <= seq}
            self._corrupt_seqs = {q for q in self._corrupt_seqs if q <= seq}
            if seq not in self._corrupt_seqs:
                # The restored state predates every surviving latent
                # strike (a strike armed before this checkpoint's commit
                # would have tainted it), so the rewind erases them all.
                self._clear_latent_sdc("erased")
            self._episode_phase(episode, "verify_ok", seq=seq)
            self._close_episode(episode, "recovered")
            self._recovery = None
            return  # ranks resume on their already-scheduled events
        self.verify_failures += 1
        self.escalations += 1
        episode.rung += 1
        self._episode_phase(episode, "verify_fail", seq=seq, rung=episode.rung)
        for rank in self._ranks:
            rank.pause()  # cancel the resumes; stay in recovery
        self._start_attempt()

    def _requeue_or_abort(self) -> None:
        """Recovery exhausted: resubmit the job, or give up."""
        episode = self._recovery
        if self.requeues >= self.policy.max_requeues:
            self._abort()
            return
        self.requeues += 1
        delay = self.policy.requeue_delay_s
        if episode.kind in ("node", "burst"):
            if self._spares_left > 0:
                self._spares_left -= 1
                delay += self.policy.spare_swap_s
            else:
                # Graceful degradation: no spare left — stall for a full
                # node rebuild instead of failing the resubmission.
                delay += self.policy.spare_rebuild_s
        self.waste_requeue += delay
        episode.requeue_s += delay
        self._charge_rework(episode, 0)
        self.rollbacks += 1
        episode.requeued = True
        self._episode_phase(
            episode, "requeue", delay=delay, spares_left=self._spares_left
        )
        self._recovery_event = self.engine.schedule(delay, self._requeue_done)

    def _requeue_done(self, ev: Event) -> None:
        """The resubmitted job starts from the input deck."""
        self._recovery_event = None
        episode = self._recovery
        self._episode_phase(episode, "requeue_done")
        self._close_episode(episode, "requeued")
        self._recovery = None
        self._invalid_seqs.clear()
        self._corrupt_seqs.clear()
        self._clear_latent_sdc("erased")
        # The repaired allocation has no degraded nodes either, and its
        # fabric is healthy.
        self._node_slowdown.clear()
        self._net_reset()
        if self.fault_injector is not None:
            self.fault_injector.notify_requeue()
        for rank in self._ranks:
            rank.rollback(0, 0.0)

    def _clear_latent_sdc(self, outcome: str) -> None:
        """Drop every latent strike (a rewind restored clean state),
        recording *outcome* on events that never reached a detector."""
        for strikes in self._sdc_latent.values():
            for s in strikes:
                ev = s["event"]
                if not ev.outcome:
                    ev.outcome = outcome
        self._sdc_latent.clear()

    def _abort(self) -> None:
        """Requeues exhausted: the job is lost.  Ranks stay paused, the
        event queue drains, and :meth:`run` reports ``completed=False``
        instead of raising."""
        self._aborted = True
        self._abort_time = self.engine.now
        episode = self._recovery
        if episode is not None:
            self._episode_phase(episode, "abort")
            self._close_episode(episode, "aborted")
        self._recovery = None
        if self.fault_injector is not None:
            self.fault_injector.detach()

    # -- snapshot / restore -----------------------------------------------------------------

    def enable_snapshots(
        self,
        directory: str,
        every_events: Optional[int] = None,
        every_wall_s: Optional[float] = None,
        keep: int = 2,
    ) -> AutoSnapshotPolicy:
        """Checkpoint the *whole simulator* periodically during :meth:`run`.

        The capture root is this simulator (not just its engine), so
        :meth:`restore` rebuilds ranks, sync domains, recovery state and
        the fault injector together and the run can simply continue.
        """
        return self.engine.enable_autosnapshot(
            directory,
            every_events=every_events,
            every_wall_s=every_wall_s,
            keep=keep,
            root=self,
        )

    def snapshot(self, meta: Optional[dict] = None) -> Snapshot:
        """Capture the full simulator state between events."""
        extra = {
            "sim_time": float(self.engine.now),
            "events_fired": self.engine.events_fired,
        }
        if meta:
            extra.update(meta)
        return Snapshot.capture(self, meta=extra)

    @classmethod
    def restore(cls, source) -> "BESSTSimulator":
        """Rebuild a simulator from a :class:`Snapshot` or a saved path.

        The returned simulator resumes exactly where the capture stopped:
        call :meth:`run` to continue to completion.  The final result is
        byte-identical to a run that was never interrupted.
        """
        snap = Snapshot.load(source) if isinstance(source, str) else source
        sim = snap.restore()
        if not isinstance(sim, cls):
            raise SnapshotError(
                f"snapshot holds a {type(sim).__name__}, expected "
                f"{cls.__name__} (or a subclass)"
            )
        sim.engine._running = False
        return sim

    # -- run --------------------------------------------------------------------------------

    def run(self, max_events: Optional[int] = None) -> SimulationResult:
        """Execute the simulation to completion and return the result."""
        if self._result is not None:
            return self._result
        self.engine.run(max_events=max_events)
        if not self._aborted:
            unfinished = [r.rank for r in self._ranks if not r.done]
            if unfinished:
                raise RuntimeError(
                    f"simulation ended with unfinished ranks {unfinished[:5]}"
                )
        tl0 = self._ranks[0].timeline
        # Strikes still latent when the job "finishes" were never seen by
        # any detector: the run produced a wrong result.
        sdc_undetected = 0
        for strikes in self._sdc_latent.values():
            for s in strikes:
                sdc_undetected += 1
                ev = s["event"]
                if not ev.outcome:
                    ev.outcome = "undetected"
        wrong_result = (not self._aborted) and sdc_undetected > 0
        if wrong_result:
            self._record_wrong_result()
            self._forensic_note("wrong_result", undetected=sdc_undetected)
        # LogGP reroute/retransmit accounting: the model may be shared
        # across simulators, so report the delta against construction.
        p2p = getattr(getattr(self.archbeo, "comm", None), "p2p", None)
        stats = getattr(p2p, "stats", None) or {}
        net_reroutes = int(
            stats.get("reroutes", 0.0) - self._net_stats_base.get("reroutes", 0.0)
        )
        net_retransmits = float(
            stats.get("retransmits", 0.0)
            - self._net_stats_base.get("retransmits", 0.0)
        )
        if net_reroutes or net_retransmits:
            self._record_net_traffic(net_reroutes, net_retransmits)
        self._result = SimulationResult(
            total_time=(
                self._abort_time
                if self._aborted
                else max(r.finish_time for r in self._ranks)
            ),
            finish_times=(
                [] if self._aborted else [r.finish_time for r in self._ranks]
            ),
            timelines={r.rank: r.timeline for r in self._ranks if r.record},
            nranks=self.nranks,
            events_fired=self.engine.events_fired,
            checkpoint_time=tl0.time_in("checkpoint"),
            compute_time=tl0.time_in("compute") + tl0.time_in("exchange"),
            collective_time=tl0.time_in("collective"),
            faults_injected=self.faults_injected,
            rollbacks=self.rollbacks,
            wasted_time=self.wasted_time,
            completed=not self._aborted,
            nested_faults=self.nested_faults,
            torn_checkpoints=self.torn_checkpoints,
            verify_failures=self.verify_failures,
            escalations=self.escalations,
            recovery_attempts=self.recovery_attempts,
            requeues=self.requeues,
            waste_rework=self.waste_rework,
            waste_downtime=self.waste_downtime,
            waste_requeue=self.waste_requeue,
            verify_time=tl0.time_in("verify"),
            faults_by_kind=dict(sorted(self.faults_by_kind.items())),
            sdc_injected=self.sdc_injected,
            sdc_detected=self.sdc_detected,
            sdc_corrected=self.sdc_corrected,
            sdc_undetected=sdc_undetected,
            wrong_result=wrong_result,
            sdc_detect_latency_s=self.sdc_detect_latency_s,
            net_faults=self.net_faults,
            net_repairs=self.net_repairs,
            net_partition_stalls=self.net_partition_stalls,
            net_degraded_commits=self.net_degraded_commits,
            net_reroutes=net_reroutes,
            net_retransmits=net_retransmits,
            episodes=list(self.episodes),
            straggler_excess_s=self.straggler_excess_s,
            straggler_excess_by_node=dict(
                sorted(self._straggler_excess_by_node.items())
            ),
        )
        return self._result

    def _record_net_traffic(self, reroutes: int, retransmits: float) -> None:
        from repro.obs.metrics import get_registry

        reg = get_registry()
        if reroutes:
            reg.counter(
                "net_reroutes_total",
                help="Messages priced over a detour around a network fault.",
            ).inc(reroutes)
        if retransmits:
            reg.counter(
                "net_retransmits_total",
                help="Expected retransmissions on lossy (degraded) routes.",
            ).inc(retransmits)

    def _record_wrong_result(self) -> None:
        from repro.obs.metrics import get_registry

        get_registry().counter(
            "sim_wrong_result_total",
            help="Runs that finished carrying undetected silent corruption.",
        ).inc()
