"""Timeline export: Chrome trace-event format and text Gantt rendering.

Rank timelines from :class:`~repro.core.simulator.SimulationResult` can
be inspected in ``chrome://tracing`` / Perfetto (each rank a row, each
instruction a duration event, checkpoints flagged) or rendered as a
quick terminal Gantt chart.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Optional

from repro.core.simulator import RankTimeline, SimulationResult

#: trace colours by instruction kind (Chrome trace colour names)
_COLORS = {
    "compute": "thread_state_running",
    "exchange": "thread_state_iowait",
    "collective": "thread_state_sleeping",
    "checkpoint": "terrible",
    "rollback": "black",
    "marker": "grey",
}


def to_chrome_trace(
    result: SimulationResult,
    time_unit_us: float = 1e6,
) -> dict:
    """Convert recorded timelines to a Chrome trace-event JSON object.

    Parameters
    ----------
    result:
        A simulation result with at least one recorded timeline.
    time_unit_us:
        Multiplier from simulation seconds to trace microseconds.
    """
    if not result.timelines:
        raise ValueError(
            "no recorded timelines; run the simulator with "
            'record_timelines="rank0" or "all"'
        )
    events = []
    for rank, tl in sorted(result.timelines.items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": rank,
                "args": {"name": f"rank {rank}"},
            }
        )
        for e in tl.entries:
            if e.t_end <= e.t_start and e.kind == "marker":
                events.append(
                    {
                        "name": e.label,
                        "ph": "i",
                        "s": "t",
                        "pid": 0,
                        "tid": rank,
                        "ts": e.t_start * time_unit_us,
                    }
                )
                continue
            ev = {
                "name": e.label,
                "cat": e.kind,
                "ph": "X",
                "pid": 0,
                "tid": rank,
                "ts": e.t_start * time_unit_us,
                "dur": max(e.duration, 0.0) * time_unit_us,
            }
            color = _COLORS.get(e.kind)
            if color:
                ev["cname"] = color
            if e.kind == "checkpoint":
                ev["args"] = {"level": e.level}
            events.append(ev)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def save_chrome_trace(result: SimulationResult, path) -> None:
    """Write the Chrome trace JSON to *path*."""
    Path(path).write_text(json.dumps(to_chrome_trace(result)))


def render_gantt(
    timeline: RankTimeline,
    width: int = 80,
    t_end: Optional[float] = None,
    symbols: Optional[Mapping[str, str]] = None,
) -> str:
    """A one-line-per-kind ASCII Gantt chart of one rank's timeline.

    Each row shows where time went: ``#`` compute, ``=`` exchange,
    ``~`` collective, ``C`` checkpoint, ``!`` rollback.
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    if not timeline.entries:
        return "(empty timeline)"
    sym = {
        "compute": "#",
        "exchange": "=",
        "collective": "~",
        "checkpoint": "C",
        "rollback": "!",
    }
    if symbols:
        sym.update(symbols)
    horizon = t_end if t_end is not None else max(e.t_end for e in timeline.entries)
    if horizon <= 0:
        return "(zero-length timeline)"
    rows = {}
    for kind, ch in sym.items():
        rows[kind] = [" "] * width
    for e in timeline.entries:
        if e.kind not in rows:
            continue
        lo = int(e.t_start / horizon * (width - 1))
        hi = max(int(e.t_end / horizon * (width - 1)), lo)
        for i in range(lo, min(hi + 1, width)):
            rows[e.kind][i] = sym[e.kind]
    lines = [f"rank {timeline.rank}, horizon {horizon:.4g}s"]
    for kind in ("compute", "exchange", "collective", "checkpoint", "rollback"):
        if any(c != " " for c in rows[kind]):
            lines.append(f"{kind:>11s} |{''.join(rows[kind])}|")
    return "\n".join(lines)
