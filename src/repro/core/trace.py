"""Timeline export: Chrome trace-event format and text Gantt rendering.

Rank timelines from :class:`~repro.core.simulator.SimulationResult` can
be inspected in ``chrome://tracing`` / Perfetto (each rank a row, each
instruction a duration event, checkpoints flagged) or rendered as a
quick terminal Gantt chart.

Observability spans (:mod:`repro.obs.tracing`) export to the same
format: :func:`spans_to_trace_events` lays each process's spans out on
its own ``pid`` row group (one ``tid`` row per concurrent span lane),
:func:`merge_obs_spans` folds them into an existing simulation trace,
and :func:`spans_to_chrome_trace` / :func:`save_spans_chrome_trace`
build a standalone campaign timeline — campaign, supervisor-task and
worker/engine spans in one Perfetto view, linked by the ``span_id`` /
``parent_id`` args carried on every event.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping, Optional

from repro.core.simulator import RankTimeline, SimulationResult

#: trace colours by instruction kind (Chrome trace colour names)
_COLORS = {
    "compute": "thread_state_running",
    "exchange": "thread_state_iowait",
    "collective": "thread_state_sleeping",
    "checkpoint": "terrible",
    "rollback": "black",
    "marker": "grey",
}


def to_chrome_trace(
    result: SimulationResult,
    time_unit_us: float = 1e6,
) -> dict:
    """Convert recorded timelines to a Chrome trace-event JSON object.

    Parameters
    ----------
    result:
        A simulation result with at least one recorded timeline.
    time_unit_us:
        Multiplier from simulation seconds to trace microseconds.
    """
    if not result.timelines:
        raise ValueError(
            "no recorded timelines; run the simulator with "
            'record_timelines="rank0" or "all"'
        )
    events = []
    for rank, tl in sorted(result.timelines.items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": rank,
                "args": {"name": f"rank {rank}"},
            }
        )
        for e in tl.entries:
            if e.t_end <= e.t_start and e.kind == "marker":
                events.append(
                    {
                        "name": e.label,
                        "ph": "i",
                        "s": "t",
                        "pid": 0,
                        "tid": rank,
                        "ts": e.t_start * time_unit_us,
                    }
                )
                continue
            ev = {
                "name": e.label,
                "cat": e.kind,
                "ph": "X",
                "pid": 0,
                "tid": rank,
                "ts": e.t_start * time_unit_us,
                "dur": max(e.duration, 0.0) * time_unit_us,
            }
            color = _COLORS.get(e.kind)
            if color:
                ev["cname"] = color
            if e.kind == "checkpoint":
                ev["args"] = {"level": e.level}
            events.append(ev)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def save_chrome_trace(result: SimulationResult, path) -> None:
    """Write the Chrome trace JSON to *path*."""
    Path(path).write_text(json.dumps(to_chrome_trace(result)))


# -- observability span export -----------------------------------------------


def spans_to_trace_events(spans: Iterable, time_unit_us: float = 1e6) -> list[dict]:
    """Convert obs :class:`~repro.obs.tracing.Span` objects to trace events.

    Spans are wall-clock epoch intervals; timestamps are normalized to
    the earliest span start so the trace begins at t=0.  Each producing
    process keeps its own ``pid`` row group (with a ``process_name``
    metadata record naming it), each span lane its ``tid``.  The
    ``span_id`` / ``parent_id`` / ``trace_id`` ride in ``args`` so the
    cross-process parent/child links are inspectable in Perfetto.
    Unfinished spans are skipped; zero-duration spans export as instant
    events (``ph: "i"``).
    """
    spans = [s for s in spans if s.t_end is not None]
    if not spans:
        return []
    t0 = min(s.t_start for s in spans)
    events: list[dict] = []
    for pid in sorted({s.pid for s in spans}):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"process {pid}"},
            }
        )
    for s in sorted(spans, key=lambda s: (s.t_start, s.span_id)):
        args = {
            "span_id": s.span_id,
            "parent_id": s.parent_id,
            "trace_id": s.trace_id,
        }
        args.update(s.attrs)
        base = {
            "name": s.name,
            "cat": "obs",
            "pid": s.pid,
            "tid": s.tid,
            "ts": (s.t_start - t0) * time_unit_us,
            "args": args,
        }
        dur = (s.t_end - s.t_start) * time_unit_us
        if dur <= 0:
            base.update(ph="i", s="t")
        else:
            base.update(ph="X", dur=dur)
        events.append(base)
    return events


def spans_to_chrome_trace(spans: Iterable, time_unit_us: float = 1e6) -> dict:
    """A standalone Chrome trace JSON object from obs spans."""
    return {
        "traceEvents": spans_to_trace_events(spans, time_unit_us),
        "displayTimeUnit": "ms",
    }


def merge_obs_spans(trace: dict, spans: Iterable, time_unit_us: float = 1e6) -> dict:
    """Fold obs spans into an existing Chrome trace object (in place).

    Simulation timelines keep ``pid 0``; span events arrive on their
    producing processes' pid rows (real pids are never 0), so the merged
    file shows the simulated timeline and the wall-clock telemetry
    timeline side by side.  Returns *trace* for chaining.
    """
    events = trace.setdefault("traceEvents", [])
    events.extend(spans_to_trace_events(spans, time_unit_us))
    return trace


def save_spans_chrome_trace(spans: Iterable, path) -> None:
    """Write a standalone span trace JSON to *path*."""
    Path(path).write_text(json.dumps(spans_to_chrome_trace(spans)))


def render_gantt(
    timeline: RankTimeline,
    width: int = 80,
    t_end: Optional[float] = None,
    symbols: Optional[Mapping[str, str]] = None,
) -> str:
    """A one-line-per-kind ASCII Gantt chart of one rank's timeline.

    Each row shows where time went: ``#`` compute, ``=`` exchange,
    ``~`` collective, ``C`` checkpoint, ``!`` rollback.
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    if not timeline.entries:
        return "(empty timeline)"
    sym = {
        "compute": "#",
        "exchange": "=",
        "collective": "~",
        "checkpoint": "C",
        "rollback": "!",
    }
    if symbols:
        sym.update(symbols)
    horizon = t_end if t_end is not None else max(e.t_end for e in timeline.entries)
    if horizon <= 0:
        return "(zero-length timeline)"
    rows = {}
    for kind, ch in sym.items():
        rows[kind] = [" "] * width
    for e in timeline.entries:
        if e.kind not in rows:
            continue
        lo = int(e.t_start / horizon * (width - 1))
        hi = max(int(e.t_end / horizon * (width - 1)), lo)
        for i in range(lo, min(hi + 1, width)):
            rows[e.kind][i] = sym[e.kind]
    lines = [f"rank {timeline.rank}, horizon {horizon:.4g}s"]
    for kind in ("compute", "exchange", "collective", "checkpoint", "rollback"):
        if any(c != " " for c in rows[kind]):
            lines.append(f"{kind:>11s} |{''.join(rows[kind])}|")
    return "\n".join(lines)
