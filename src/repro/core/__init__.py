"""BE-SST core: Behavioral Emulation modeling and simulation with
fault-tolerance awareness.

The pieces map onto the paper's Fig. 2 workflow:

* :mod:`~repro.core.instructions` / :mod:`~repro.core.beo` — AppBEOs
  (abstract instruction streams) and ArchBEOs (architecture descriptions
  binding performance models to instructions),
* :mod:`~repro.core.simulator` — the BE-SST simulator: ranks execute
  abstract instructions, polling the ArchBEO for each instruction's
  predicted runtime and advancing the simulation clock,
* :mod:`~repro.core.ft` — the FT-awareness extension (checkpoint
  instructions, FT scenarios; Case 3 of Fig. 4),
* :mod:`~repro.core.fault_injection` — fault injection and
  restart-from-checkpoint (Cases 2 and 4; the paper's future work),
* :mod:`~repro.core.montecarlo` — Monte-Carlo replication capturing
  calibration variance,
* :mod:`~repro.core.campaign` — resilience campaigns: process-parallel
  fault-rate × checkpoint-config sweeps with survivability statistics,
* :mod:`~repro.core.workflow` — Model-Development and Co-Design phase
  drivers,
* :mod:`~repro.core.dse` — design-space sweep utilities (Fig. 9),
* :mod:`~repro.core.validation` — MAPE validation harness
  (Tables III/IV).
"""

from repro.core.instructions import (
    Instruction,
    Compute,
    Checkpoint,
    Verify,
    Collective,
    Exchange,
    Marker,
    unroll_loop,
)
from repro.core.beo import AppBEO, ArchBEO
from repro.core.simulator import BESSTSimulator, SimulationResult, RankTimeline
from repro.core.ft import FTScenario, NO_FT, scenario_l1, scenario_l1_l2
from repro.core.fault_injection import (
    FAULT_KINDS,
    FaultDetail,
    FaultEvent,
    FaultInjector,
    FaultModel,
    FaultEventLog,
    RecoveryPolicy,
)
from repro.core.montecarlo import MonteCarloRunner, Distribution
from repro.core.campaign import (
    CampaignSpec,
    CampaignPointReport,
    CampaignReport,
    ResilienceCampaign,
)
from repro.core.validation import ValidationReport, validate_simulation
from repro.core.dse import DesignPoint, sweep, overhead_matrix
from repro.core.workflow import (
    ModelDevelopment,
    ModelDevelopmentResult,
    build_archbeo,
    simulate_design_point,
)

__all__ = [
    "Instruction",
    "Compute",
    "Checkpoint",
    "Verify",
    "Collective",
    "Exchange",
    "Marker",
    "unroll_loop",
    "AppBEO",
    "ArchBEO",
    "BESSTSimulator",
    "SimulationResult",
    "RankTimeline",
    "FTScenario",
    "NO_FT",
    "scenario_l1",
    "scenario_l1_l2",
    "FAULT_KINDS",
    "FaultDetail",
    "FaultEvent",
    "FaultInjector",
    "FaultModel",
    "FaultEventLog",
    "RecoveryPolicy",
    "MonteCarloRunner",
    "Distribution",
    "CampaignSpec",
    "CampaignPointReport",
    "CampaignReport",
    "ResilienceCampaign",
    "ValidationReport",
    "validate_simulation",
    "DesignPoint",
    "sweep",
    "overhead_matrix",
    "ModelDevelopment",
    "ModelDevelopmentResult",
    "build_archbeo",
    "simulate_design_point",
]
