"""Design-space exploration utilities.

The Co-Design phase sweeps candidate designs — (problem size, rank count,
FT scenario) triples in the case study — and compares predicted runtimes.
:func:`overhead_matrix` reproduces the presentation of Fig. 9: every
design point's runtime as a percentage of a chosen baseline point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Optional

from repro.core.ft import FTScenario


@dataclass(frozen=True)
class DesignPoint:
    """One candidate design in the (epr, ranks, scenario) space."""

    epr: int
    ranks: int
    scenario: FTScenario

    @property
    def key(self) -> tuple:
        return (self.epr, self.ranks, self.scenario.name)

    def __repr__(self) -> str:
        return f"DesignPoint(epr={self.epr}, ranks={self.ranks}, ft={self.scenario.name})"


def sweep(
    evaluate: Callable[[DesignPoint], float],
    eprs: Iterable[int],
    ranks: Iterable[int],
    scenarios: Iterable[FTScenario],
) -> dict[tuple, float]:
    """Evaluate every (epr, ranks, scenario) combination.

    Returns ``{(epr, ranks, scenario_name): value}``.  *evaluate* is
    typically a BE-SST simulation returning predicted total runtime.
    """
    out: dict[tuple, float] = {}
    for scenario in scenarios:
        for r in ranks:
            for e in eprs:
                point = DesignPoint(epr=e, ranks=r, scenario=scenario)
                out[point.key] = float(evaluate(point))
    if not out:
        raise ValueError("empty sweep")
    return out


def overhead_matrix(
    times: Mapping[tuple, float],
    baseline_key: Optional[tuple] = None,
) -> dict[tuple, float]:
    """Normalise sweep results to percent-of-baseline (Fig. 9).

    Parameters
    ----------
    times:
        Output of :func:`sweep`.
    baseline_key:
        The 100% reference point; defaults to the lexicographically
        smallest key (the paper uses epr=10, 64 ranks, no FT).

    Returns
    -------
    dict
        ``{key: percent}`` where the baseline maps to exactly 100.0.
    """
    if not times:
        raise ValueError("empty sweep results")
    if baseline_key is None:
        baseline_key = min(times)
    if baseline_key not in times:
        raise KeyError(f"baseline {baseline_key!r} not in sweep results")
    base = times[baseline_key]
    if base <= 0:
        raise ValueError(f"baseline time must be > 0, got {base}")
    return {k: 100.0 * v / base for k, v in times.items()}


def format_overhead_tables(
    pct: Mapping[tuple, float],
    eprs: Iterable[int],
    ranks: Iterable[int],
    scenario_names: Iterable[str],
) -> str:
    """Render Fig. 9's two tables (one per rank count) as text."""
    eprs = list(eprs)
    lines = []
    for r in ranks:
        lines.append(f"{r} Ranks    " + "  ".join(f"{e:>6d}" for e in eprs))
        for s in scenario_names:
            cells = []
            for e in eprs:
                v = pct.get((e, r, s))
                cells.append(f"{v:5.0f}%" if v is not None else "   n/a")
            lines.append(f"  {s:<9s}" + "  ".join(cells))
        lines.append("")
    return "\n".join(lines)
