"""Workflow drivers: the two phases of Fig. 2 as callable pipelines.

* :class:`ModelDevelopment` — benchmark the instrumented kernels on a
  (virtual) machine, fit per-kernel performance models, validate them
  (MAPE per kernel, the shape of Table III).
* :func:`build_archbeo` — assemble an ArchBEO from a machine plus fitted
  models, ready for the Co-Design phase.
* :func:`simulate_design_point` — one Co-Design evaluation: Monte-Carlo
  BE-SST simulation of an FT scenario at one (epr, ranks) point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from repro.core.beo import ArchBEO
from repro.core.montecarlo import MonteCarloResult, MonteCarloRunner
from repro.core.simulator import BESSTSimulator
from repro.models.calibration import (
    CalibrationPipeline,
    FittedKernelModel,
    dataset_mape,
)
from repro.models.dataset import BenchmarkDataset
from repro.models.symreg import GPConfig

if TYPE_CHECKING:  # pragma: no cover — avoids a core <-> testbed import cycle
    from repro.testbed.machine import VirtualMachine


@dataclass
class ModelDevelopmentResult:
    """Outputs of the Model Development phase."""

    datasets: dict[str, BenchmarkDataset]
    fitted: dict[str, FittedKernelModel]

    def validation_table(self) -> dict[str, float]:
        """Kernel -> MAPE over the full benchmark grid (Table III)."""
        return {
            name: dataset_mape(fk.model, self.datasets[name])
            for name, fk in self.fitted.items()
        }

    def models(self) -> dict[str, object]:
        return {name: fk.model for name, fk in self.fitted.items()}


class ModelDevelopment:
    """Phase 1: benchmark, fit, validate.

    Parameters
    ----------
    machine:
        The (virtual) system under test.
    kernels:
        Instrumented kernel names to model.
    grid:
        Parameter grid (defaults to the Table II case-study grid).
    samples_per_point:
        Timing samples per parameter combination.
    method / gp_config / log_target:
        Modeling options forwarded to
        :class:`~repro.models.calibration.CalibrationPipeline`.
    """

    def __init__(
        self,
        machine: VirtualMachine,
        kernels: Sequence[str],
        grid: Optional[Sequence[Mapping[str, float]]] = None,
        samples_per_point: int = 10,
        method: str = "symreg",
        gp_config: Optional[GPConfig] = None,
        log_target: bool = False,
        test_fraction: float = 0.25,
        seed: int = 0,
    ) -> None:
        if not kernels:
            raise ValueError("no kernels to model")
        self.machine = machine
        self.kernels = list(kernels)
        self.grid = grid
        self.samples_per_point = samples_per_point
        self.pipeline = CalibrationPipeline(
            method=method,
            test_fraction=test_fraction,
            gp_config=gp_config,
            log_target=log_target,
            seed=seed,
        )
        self.seed = seed

    def run(self) -> ModelDevelopmentResult:
        from repro.testbed.executor import run_benchmark_campaign

        datasets = run_benchmark_campaign(
            self.machine,
            self.kernels,
            grid=self.grid,
            samples_per_point=self.samples_per_point,
            seed=self.seed,
        )
        fitted = self.pipeline.fit_all(datasets)
        return ModelDevelopmentResult(datasets=datasets, fitted=fitted)


def build_archbeo(
    machine: VirtualMachine,
    models: Mapping[str, object],
    name: Optional[str] = None,
    node_mtbf_s: Optional[float] = None,
    recovery_time_s: float = 60.0,
) -> ArchBEO:
    """Assemble an ArchBEO for *machine* with the given kernel models.

    The FT-aware architecture parameters (node MTBF, recovery time) ride
    along for fault-injecting simulations (Fig. 2, label "C").
    """
    arch = ArchBEO(
        name=name or machine.name,
        topology=machine.topology,
        cores_per_node=machine.cores_per_node,
        node_mtbf_s=node_mtbf_s,
        recovery_time_s=recovery_time_s,
    )
    for kernel, model in models.items():
        arch.bind(kernel, model)
    return arch


def simulate_design_point(
    appbeo,
    archbeo: ArchBEO,
    nranks: int,
    params: Mapping[str, float],
    reps: int = 10,
    base_seed: int = 0,
    fault_injector_factory=None,
    max_events: Optional[int] = None,
) -> MonteCarloResult:
    """Monte-Carlo evaluation of one design point (Co-Design phase)."""

    def factory(seed: int) -> BESSTSimulator:
        fi = fault_injector_factory(seed) if fault_injector_factory else None
        return BESSTSimulator(
            appbeo,
            archbeo,
            nranks=nranks,
            params=params,
            seed=seed,
            fault_injector=fi,
        )

    return MonteCarloRunner(reps=reps, base_seed=base_seed).run(
        factory, max_events=max_events
    )
