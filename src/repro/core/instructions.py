"""The abstract instruction set of AppBEOs.

An AppBEO is "a list of abstract instructions that represents the major
functions and control flow of the application under study".  Instructions
carry only the parameters that affect performance; executing one makes the
simulator poll the ArchBEO's performance model instead of doing real work.

The FT-awareness extension adds :class:`Checkpoint` — a tagged model call
whose time is accounted as fault-tolerance overhead and which records a
restart point for fault injection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Instruction:
    """Base class; all instructions are immutable value objects."""


@dataclass(frozen=True)
class Compute(Instruction):
    """A modeled computation block.

    Parameters
    ----------
    kernel:
        Name of the performance model in the ArchBEO (e.g.
        ``"lulesh_timestep"``).
    params:
        Model parameters as an (immutable) tuple of ``(name, value)``.
    """

    kernel: str
    params: tuple = ()

    @staticmethod
    def of(kernel: str, **params: float) -> "Compute":
        return Compute(kernel, tuple(sorted(params.items())))

    def param_dict(self) -> dict:
        return dict(self.params)


@dataclass(frozen=True)
class Checkpoint(Instruction):
    """A modeled checkpoint instance (the FT-aware instruction).

    ``level`` tags which FTI level this instance represents; ``kernel``
    names its performance model (e.g. ``"fti_l1"``).  Completing a
    Checkpoint records a restart point used by fault injection.
    """

    level: int
    kernel: str
    params: tuple = ()

    @staticmethod
    def of(level: int, kernel: str, **params: float) -> "Checkpoint":
        return Checkpoint(level, kernel, tuple(sorted(params.items())))

    def param_dict(self) -> dict:
        return dict(self.params)


@dataclass(frozen=True)
class Verify(Instruction):
    """A modeled ABFT verification point (the SDC-awareness instruction).

    Running a Verify executes a checksum-verification kernel (priced via
    ``kernel``, e.g. ``"abft_verify"``) and gives the simulator a
    *detection point*: latent silent data corruption that landed inside
    ABFT-protected operations is observed here — corrected in place when
    within the scheme's correction capability, otherwise forcing a
    rollback past the last clean checkpoint.
    """

    kernel: str
    params: tuple = ()

    @staticmethod
    def of(kernel: str, **params: float) -> "Verify":
        return Verify(kernel, tuple(sorted(params.items())))

    def param_dict(self) -> dict:
        return dict(self.params)


@dataclass(frozen=True)
class Collective(Instruction):
    """A synchronizing collective over all ranks.

    ``op`` is one of ``"barrier"``, ``"allreduce"``, ``"broadcast"``,
    ``"reduce"``, ``"gather"``, ``"alltoall"``.  All ranks must arrive;
    everyone is released at ``max(arrival) + cost`` where the cost comes
    from the ArchBEO's collective model.
    """

    op: str
    nbytes: int = 0

    _VALID = ("barrier", "allreduce", "broadcast", "reduce", "gather", "alltoall")

    def __post_init__(self) -> None:
        if self.op not in self._VALID:
            raise ValueError(f"unknown collective {self.op!r}")
        if self.nbytes < 0:
            raise ValueError(f"negative payload {self.nbytes}")


@dataclass(frozen=True)
class Exchange(Instruction):
    """A nearest-neighbour halo exchange, modeled (not message-simulated).

    ``neighbors`` is the per-rank neighbour count of the pattern (6 for a
    3-D face exchange); the cost model prices ``neighbors`` concurrent
    2-hop messages of ``nbytes`` each.
    """

    nbytes: int
    neighbors: int = 6

    def __post_init__(self) -> None:
        if self.nbytes < 0 or self.neighbors < 0:
            raise ValueError("nbytes and neighbors must be non-negative")


@dataclass(frozen=True)
class Marker(Instruction):
    """A zero-cost label recorded in the rank timeline (instrumentation)."""

    name: str


def unroll_loop(body: Sequence[Instruction], count: int) -> list[Instruction]:
    """Flatten ``count`` iterations of *body* into one instruction list.

    AppBEO builders unroll loops at build time, keeping the simulator's
    executor a simple program counter.
    """
    if count < 0:
        raise ValueError(f"negative loop count {count}")
    out: list[Instruction] = []
    for _ in range(count):
        out.extend(body)
    return out
