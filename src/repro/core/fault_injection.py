"""Fault injection for BE-SST simulations (Cases 2 and 4 of Fig. 4).

A :class:`FaultInjector` draws node time-to-failure from an exponential or
Weibull distribution and fires failures into a running
:class:`~repro.core.simulator.BESSTSimulator`.  With an FT-aware AppBEO
the simulator rolls every rank back to its last completed checkpoint
(Case 4); without checkpoints the application restarts from the beginning
(Case 2).

The fault *taxonomy* goes beyond fail-stop.  :class:`FaultModel` draws
one of five kinds from a validated kind-weight mapping:

* ``"software"`` — transient process crash; node storage intact,
* ``"node"`` — fail-stop node loss; node-local checkpoint data gone,
* ``"sdc"`` — silent data corruption: a *latent* flag armed on a victim
  rank, observed only at the next detection point (an ABFT
  :class:`~repro.core.instructions.Verify` kernel or checkpoint-write
  validation), after which recovery must reach back past the last
  *clean* checkpoint,
* ``"straggler"`` — a degraded node: a persistent slowdown factor on the
  victim's compute clock until repair,
* ``"burst"`` — a spatially correlated failure: one draw fells a whole
  topology neighborhood of nodes at once,
* ``"link"`` — a network link goes out of service: traffic reroutes over
  surviving paths (hop inflation), pairs with no surviving path are
  partitioned,
* ``"switch"`` — a switch/router dies: the victim endpoint loses *every*
  incident link (network-isolated while its node keeps computing),
* ``"netdeg"`` — a degraded link: bandwidth de-rated and/or transiently
  lossy (retransmission delay) until repair.

The three network kinds mutate the topology's
:class:`~repro.network.health.NetworkHealth` overlay instead of felling
compute endpoints; :func:`fold_link_rate` converts a per-link MTBF into
the combined system rate and kind mix.

:class:`RecoveryPolicy` configures the simulator's fault-lifecycle
realism: read-back verification failures (checkpoint corruption / SDC),
the L1→L2→L4→full-restart escalation ladder with bounded retries and
per-attempt backoff, checkpoint-write validation for latent SDC, and the
abort/requeue path with its spare-node pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Mapping, Optional

import numpy as np

from repro.faults.registry import FAULT_KINDS as _REGISTRY_KINDS

if TYPE_CHECKING:  # pragma: no cover
    from repro.analytical.sparenodes import SpareNodeModel
    from repro.network.topology import Topology

#: every fault kind the taxonomy knows, in canonical draw order — owned
#: by the fault-domain registry (``repro.faults.registry``): the order
#: fixes the cumulative-weight walk of :meth:`FaultModel.draw_kind`,
#: keeping draws deterministic under any input ordering of the mapping;
#: new kinds append at the END so existing mixes keep their draw streams
FAULT_KINDS = _REGISTRY_KINDS

#: how a folded-in network failure rate splits across the network kinds:
#: mostly link failures, occasional switch deaths, a steady trickle of
#: degraded links (cable/optics de-rate before they die)
NET_KIND_SPLIT = (("link", 0.6), ("switch", 0.1), ("netdeg", 0.3))


@dataclass(frozen=True)
class FaultDetail:
    """Per-fault parameters drawn at injection time.

    Carried alongside the kind so the simulator never re-draws: replays
    and SIGKILL-resumes see bit-identical fault streams.

    * ``victims`` — every node felled by a ``burst`` (includes the seed
      node); empty for single-node kinds.
    * ``slowdown`` / ``repair_s`` — a ``straggler``'s clock-rate factor
      and time until the node is repaired (``repair_s <= 0`` = never).
    * ``covered`` — an ``sdc`` strike landed inside ABFT-protected
      operations (detectable at the next Verify point); uncovered
      strikes are invisible to every detector.
    * ``correctable`` — a covered strike within ABFT's single-element
      correction capability (fixed in place, no rollback needed).
    * ``edge`` — the (a, b) link victim of a ``link``/``netdeg`` fault;
      empty = the simulator picks a link incident to the struck node
      deterministically.  ``repair_s`` doubles as the network repair
      delay for the three network kinds.
    * ``derate`` / ``loss_prob`` — a ``netdeg`` link's bandwidth de-rate
      factor (>= 1) and transient message-loss probability.
    """

    victims: tuple[int, ...] = ()
    slowdown: float = 1.0
    repair_s: float = 0.0
    covered: bool = True
    correctable: bool = True
    edge: tuple[int, ...] = ()
    derate: float = 1.0
    loss_prob: float = 0.0


@dataclass(frozen=True)
class FaultModel:
    """Per-node failure process.

    Parameters
    ----------
    node_mtbf_s:
        Mean time between failures of a single node, seconds.
    distribution:
        ``"exponential"`` (memoryless) or ``"weibull"``.
    weibull_shape:
        Weibull shape k; < 1 models infant-mortality-dominated behaviour
        typical of HPC failure logs.
    software_fraction:
        Backward-compatible alias for the two-kind mix: when
        ``kind_weights`` is omitted, failures are ``software`` with this
        probability and ``node`` otherwise.
    kind_weights:
        Full taxonomy mix: kind name -> weight.  Weights must be
        non-negative, cover only known kinds (:data:`FAULT_KINDS`) and
        sum to 1 (within 1e-6).  Overrides ``software_fraction``.
    sdc_coverage:
        Probability an SDC strike lands inside ABFT-protected operations
        (drawn once at injection; uncovered strikes evade detection).
    sdc_correct_prob:
        Probability a covered strike is within ABFT's correction
        capability (single corrupted element).
    straggler_slowdown / straggler_repair_s:
        A straggler's compute-clock factor and repair delay
        (``<= 0`` repair = degraded until job end).
    burst_size:
        Nodes felled per correlated burst (capped at the live count).
    net_degrade_factor / net_loss_prob:
        A ``netdeg`` fault's bandwidth de-rate (>= 1) and message-loss
        probability (in [0, 1)).
    net_repair_s:
        Time until a failed/degraded link or dead switch is repaired
        (``<= 0`` = out of service until job end or requeue).
    """

    node_mtbf_s: float
    distribution: str = "exponential"
    weibull_shape: float = 0.7
    software_fraction: float = 0.6
    kind_weights: Optional[Mapping[str, float]] = None
    sdc_coverage: float = 0.95
    sdc_correct_prob: float = 0.5
    straggler_slowdown: float = 2.0
    straggler_repair_s: float = 30.0
    burst_size: int = 3
    net_degrade_factor: float = 4.0
    net_loss_prob: float = 0.05
    net_repair_s: float = 30.0

    def __post_init__(self) -> None:
        if self.node_mtbf_s <= 0:
            raise ValueError(f"node_mtbf_s must be > 0, got {self.node_mtbf_s}")
        if self.distribution not in ("exponential", "weibull"):
            raise ValueError(f"unknown distribution {self.distribution!r}")
        if self.weibull_shape <= 0:
            raise ValueError(f"weibull_shape must be > 0, got {self.weibull_shape}")
        if not 0.0 <= self.software_fraction <= 1.0:
            raise ValueError(
                f"software_fraction must be in [0,1], got {self.software_fraction}"
            )
        if not 0.0 <= self.sdc_coverage <= 1.0:
            raise ValueError(
                f"sdc_coverage must be in [0,1], got {self.sdc_coverage}"
            )
        if not 0.0 <= self.sdc_correct_prob <= 1.0:
            raise ValueError(
                f"sdc_correct_prob must be in [0,1], got {self.sdc_correct_prob}"
            )
        if self.straggler_slowdown < 1.0:
            raise ValueError(
                f"straggler_slowdown must be >= 1, got {self.straggler_slowdown}"
            )
        if self.burst_size < 1:
            raise ValueError(f"burst_size must be >= 1, got {self.burst_size}")
        if self.net_degrade_factor < 1.0:
            raise ValueError(
                f"net_degrade_factor must be >= 1, got {self.net_degrade_factor}"
            )
        if not 0.0 <= self.net_loss_prob < 1.0:
            raise ValueError(
                f"net_loss_prob must be in [0, 1), got {self.net_loss_prob}"
            )
        # Freeze the validated, canonically-ordered weight table once.
        object.__setattr__(
            self, "_weights", self._validated_weights(self.kind_weights)
        )

    def _validated_weights(
        self, weights: Optional[Mapping[str, float]]
    ) -> tuple[tuple[str, float], ...]:
        if weights is None:
            weights = {
                "software": self.software_fraction,
                "node": 1.0 - self.software_fraction,
            }
        unknown = sorted(set(weights) - set(FAULT_KINDS))
        if unknown:
            raise ValueError(
                f"unknown fault kinds {unknown}; expected a subset of "
                f"{list(FAULT_KINDS)}"
            )
        for kind, w in weights.items():
            if w < 0:
                raise ValueError(f"kind_weights[{kind!r}] must be >= 0, got {w}")
        total = sum(weights.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(
                f"kind_weights must sum to 1, got {total} from {dict(weights)}"
            )
        return tuple(
            (kind, float(weights[kind]))
            for kind in FAULT_KINDS
            if weights.get(kind, 0.0) > 0.0
        )

    @property
    def weights(self) -> dict[str, float]:
        """The validated kind-weight mapping actually used for draws."""
        return dict(self._weights)

    def draw_kind(self, rng: np.random.Generator) -> str:
        """One fault kind, drawn from the validated weight mapping."""
        u = rng.random()
        acc = 0.0
        for kind, w in self._weights:
            acc += w
            if u < acc:
                return kind
        return self._weights[-1][0]  # guard against float round-off

    def draw_detail(
        self,
        rng: np.random.Generator,
        kind: str,
        node: int,
        live: list[int],
        topology: Optional["Topology"] = None,
    ) -> FaultDetail:
        """Kind-specific fault parameters, drawn deterministically."""
        if kind == "sdc":
            return FaultDetail(
                covered=bool(rng.random() < self.sdc_coverage),
                correctable=bool(rng.random() < self.sdc_correct_prob),
            )
        if kind == "straggler":
            return FaultDetail(
                slowdown=self.straggler_slowdown,
                repair_s=self.straggler_repair_s,
            )
        if kind == "burst":
            return FaultDetail(victims=self.burst_victims(node, live, topology))
        if kind in ("link", "switch"):
            # The victim edge is resolved by the simulator from its own
            # engine-seeded rng: edge choice depends on the simulator's
            # endpoint mapping, which the injector doesn't know.
            return FaultDetail(repair_s=self.net_repair_s)
        if kind == "netdeg":
            return FaultDetail(
                repair_s=self.net_repair_s,
                derate=self.net_degrade_factor,
                loss_prob=self.net_loss_prob,
            )
        return FaultDetail()

    def burst_victims(
        self,
        node: int,
        live: list[int],
        topology: Optional["Topology"] = None,
    ) -> tuple[int, ...]:
        """The neighborhood felled by a burst seeded at *node*.

        Victims are the ``burst_size`` live nodes nearest the seed —
        topology hop count when a topology covering the node range is
        available, node-index distance otherwise (adjacent indices model
        rack/chassis adjacency).  Ties break on node id, so the set is a
        pure function of (seed node, live set).
        """
        use_topo = topology is not None and all(
            n < topology.num_nodes for n in live
        )

        def distance(n: int) -> int:
            if n == node:
                return 0
            return topology.hop_count(node, n) if use_topo else abs(n - node)

        ranked = sorted(live, key=lambda n: (distance(n), n))
        return tuple(sorted(ranked[: self.burst_size]))

    def system_mtbf(self, nnodes: int) -> float:
        """MTBF of an *nnodes* system (failures superpose)."""
        if nnodes < 1:
            raise ValueError(f"nnodes must be >= 1, got {nnodes}")
        return self.node_mtbf_s / nnodes

    def draw_interarrival(self, rng: np.random.Generator, nnodes: int) -> float:
        """Time to the next system-wide failure."""
        mtbf = self.system_mtbf(nnodes)
        if self.distribution == "exponential":
            return float(rng.exponential(mtbf))
        k = self.weibull_shape
        # scale lambda so that the mean of Weibull(k, lambda) is mtbf
        from math import gamma

        lam = mtbf / gamma(1 + 1 / k)
        return float(lam * rng.weibull(k))


def fold_link_rate(
    model: FaultModel,
    nnodes: int,
    nlinks: int,
    link_mtbf_s: float,
    split: Optional[tuple[tuple[str, float], ...]] = None,
) -> FaultModel:
    """Fold a per-link failure process into *model*'s system-wide stream.

    The injector draws one superposed system failure stream whose rate is
    ``nnodes / node_mtbf_s``.  Network faults add an independent stream of
    rate ``nlinks / link_mtbf_s``; superposing them means re-deriving an
    effective per-node MTBF so the combined rate is right, then giving the
    network kinds their probability share ``link_rate / total_rate``
    (distributed over *split*, default :data:`NET_KIND_SPLIT`) while the
    existing kinds keep their relative mix.

    Returns a new :class:`FaultModel`; *model* is unchanged.
    """
    if nnodes < 1:
        raise ValueError(f"nnodes must be >= 1, got {nnodes}")
    if nlinks < 1:
        raise ValueError(f"nlinks must be >= 1, got {nlinks}")
    if link_mtbf_s <= 0:
        raise ValueError(f"link_mtbf_s must be > 0, got {link_mtbf_s}")
    if split is None:
        split = NET_KIND_SPLIT
    split = tuple((str(k), float(w)) for k, w in split)
    if abs(sum(w for _, w in split) - 1.0) > 1e-6:
        raise ValueError(f"net kind split must sum to 1, got {dict(split)}")
    unknown = sorted(set(k for k, _ in split) - {"link", "switch", "netdeg"})
    if unknown:
        raise ValueError(f"net kind split names non-network kinds {unknown}")
    node_rate = nnodes / model.node_mtbf_s
    link_rate = nlinks / link_mtbf_s
    total = node_rate + link_rate
    p_net = link_rate / total
    weights = {k: w * (1.0 - p_net) for k, w in model.weights.items()}
    for kind, w in split:
        if w > 0.0:
            weights[kind] = weights.get(kind, 0.0) + w * p_net
    return replace(
        model, node_mtbf_s=nnodes / total, kind_weights=weights
    )


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the simulator handles the lifecycle of one fault.

    Parameters
    ----------
    verify_fail_prob:
        Probability that one recovery attempt's checkpoint read-back fails
        verification (corrupt/torn data, silent data corruption).  A
        failed verification escalates one rung up the recovery ladder.
        Full restart from the input deck (the last rung) never fails.
    max_attempts:
        Bound on recovery attempts per fault episode (nested faults extend
        the episode).  Exhausting the bound aborts the job and requeues it.
    retry_delay_s / backoff:
        Extra delay charged to the k-th retry: ``retry_delay_s *
        backoff**(k-1)`` (the first attempt pays none).
    l1_inplace_writes:
        When true, an L1 checkpoint write torn by a fault on the writing
        node destroys the node's *previous* local copy as well (in-place
        overwrite, FTI node-local semantics), so an L1-only restart point
        becomes unusable for the whole job.
    max_requeues:
        Job resubmissions allowed after recovery exhaustion before the
        job is declared aborted.
    requeue_delay_s:
        Scheduler latency of one resubmission.
    n_spares / spare_swap_s / spare_rebuild_s:
        Spare-node pool: a requeue caused by a node loss consumes one
        spare (paying ``spare_swap_s``); once the pool is exhausted the
        requeue degrades gracefully to a full node rebuild stall of
        ``spare_rebuild_s`` instead of failing.
    ckpt_validate_prob:
        Probability one checkpoint *write* validates its data against a
        stored checksum (FTI hash-on-write).  Validation is a secondary
        SDC detection point: a covered latent corruption caught here is
        detected at the write instead of waiting for the next ABFT
        Verify kernel.  0 (the default) disables write validation.
    """

    verify_fail_prob: float = 0.05
    max_attempts: int = 4
    retry_delay_s: float = 0.5
    backoff: float = 2.0
    l1_inplace_writes: bool = True
    max_requeues: int = 1
    requeue_delay_s: float = 30.0
    n_spares: int = 2
    spare_swap_s: float = 5.0
    spare_rebuild_s: float = 120.0
    ckpt_validate_prob: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.verify_fail_prob < 1.0:
            raise ValueError(
                f"verify_fail_prob must be in [0,1), got {self.verify_fail_prob}"
            )
        if not 0.0 <= self.ckpt_validate_prob <= 1.0:
            raise ValueError(
                f"ckpt_validate_prob must be in [0,1], got {self.ckpt_validate_prob}"
            )
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.retry_delay_s < 0 or self.backoff <= 0:
            raise ValueError("retry_delay_s must be >= 0 and backoff > 0")
        if self.max_requeues < 0:
            raise ValueError(f"max_requeues must be >= 0, got {self.max_requeues}")
        if self.requeue_delay_s < 0:
            raise ValueError(f"requeue_delay_s must be >= 0, got {self.requeue_delay_s}")
        if self.n_spares < 0:
            raise ValueError(f"n_spares must be >= 0, got {self.n_spares}")
        if self.spare_swap_s < 0 or self.spare_rebuild_s < 0:
            raise ValueError("spare costs must be >= 0")

    def retry_extra_delay(self, attempt: int) -> float:
        """Extra delay of *attempt* (1-based); the first attempt is free."""
        if attempt <= 1:
            return 0.0
        return self.retry_delay_s * self.backoff ** (attempt - 2)

    @staticmethod
    def legacy() -> "RecoveryPolicy":
        """The seed simulator's semantics: one atomic, always-successful
        rollback per fault, no torn-write damage, never aborts."""
        return RecoveryPolicy(
            verify_fail_prob=0.0,
            max_attempts=1_000_000_000,
            retry_delay_s=0.0,
            backoff=1.0,
            l1_inplace_writes=False,
            max_requeues=0,
        )

    @classmethod
    def from_spare_model(cls, spare: "SpareNodeModel", **overrides) -> "RecoveryPolicy":
        """Derive the spare-pool parameters from an analytical
        :class:`~repro.analytical.sparenodes.SpareNodeModel`."""
        policy = cls(
            n_spares=spare.n_spare,
            spare_swap_s=spare.swap_cost,
            spare_rebuild_s=spare.rebuild_cost,
        )
        return replace(policy, **overrides) if overrides else policy


#: stable field order of :meth:`FaultEvent.to_list` rows — the contract
#: journaled replica records and ``core.forensics`` parsing both rely on
FAULT_ROW_FIELDS = (
    "time",
    "node",
    "kind",
    "victims",
    "slowdown",
    "detected_time",
    "outcome",
)


@dataclass
class FaultEvent:
    """One injected fault, with its kind metadata and detection outcome.

    ``victims`` is the full felled set for bursts; ``slowdown`` the
    straggler clock factor; ``detected_time``/``outcome`` are filled in
    by the simulator when (if) the fault is observed — SDC outcomes are
    ``"corrected"``, ``"rolled_back"`` or ``"undetected"``.
    """

    time: float
    node: int
    kind: str
    victims: tuple[int, ...] = ()
    slowdown: float = 1.0
    detected_time: Optional[float] = None
    outcome: str = ""

    @property
    def detection_latency_s(self) -> Optional[float]:
        if self.detected_time is None:
            return None
        return self.detected_time - self.time

    def to_list(self) -> list:
        """JSON-friendly row (stable field order, journal/report safe)."""
        return [
            self.time,
            self.node,
            self.kind,
            list(self.victims),
            self.slowdown,
            self.detected_time,
            self.outcome,
        ]


@dataclass
class FaultEventLog:
    """Chronological record of injected failures."""

    entries: list[FaultEvent] = field(default_factory=list)

    def add(
        self,
        time: float,
        node: int,
        kind: str = "node",
        detail: Optional[FaultDetail] = None,
    ) -> FaultEvent:
        event = FaultEvent(
            time,
            node,
            kind,
            victims=detail.victims if detail is not None else (),
            slowdown=detail.slowdown if detail is not None else 1.0,
        )
        self.entries.append(event)
        return event

    def count(self) -> int:
        return len(self.entries)

    def times(self) -> list[float]:
        return [e.time for e in self.entries]

    def count_kind(self, kind: str) -> int:
        return sum(1 for e in self.entries if e.kind == kind)

    def kind_counts(self) -> dict[str, int]:
        """Kind -> injected count, sorted by kind name."""
        counts: dict[str, int] = {}
        for e in self.entries:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return dict(sorted(counts.items()))

    def to_rows(self) -> list[list]:
        return [e.to_list() for e in self.entries]


class FaultInjector:
    """Streams failures into a simulator until the job completes.

    Parameters
    ----------
    model:
        The failure process.
    nnodes:
        Nodes in the simulated allocation (sets the system failure rate).
    seed:
        Private RNG seed (independent of the simulator's model noise).
    max_faults:
        Safety bound; injection stops after this many failures.
    topology:
        Optional network topology used to resolve correlated-burst
        neighborhoods (node-index distance when omitted).
    """

    def __init__(
        self,
        model: FaultModel,
        nnodes: int,
        seed: int = 12345,
        max_faults: int = 10_000,
        topology: Optional["Topology"] = None,
    ) -> None:
        if nnodes < 1:
            raise ValueError(f"nnodes must be >= 1, got {nnodes}")
        self.model = model
        self.nnodes = nnodes
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.max_faults = max_faults
        self.topology = topology
        self.log = FaultEventLog()
        self.sim = None
        self._pending = None
        #: nodes lost to "node"/"burst"-kind failures and not yet
        #: replaced; failure draws only ever hit live nodes.
        self.failed_nodes: set[int] = set()

    # -- simulator binding --------------------------------------------------------

    def attach(self, sim) -> None:
        """Called by the simulator constructor; schedules the first fault."""
        if self.sim is not None:
            raise RuntimeError(
                "FaultInjector is already attached to a simulator; "
                "call detach() or reset() before reusing it"
            )
        self.sim = sim
        self._schedule_next()

    def detach(self) -> None:
        """Stop injecting and release the simulator binding.

        The injector stays usable: a subsequent :meth:`attach` continues
        the same failure stream (call :meth:`reset` for a fresh one).
        """
        if self.sim is not None and self._pending is not None:
            self.sim.engine.cancel(self._pending)
        self._pending = None
        self.sim = None

    def reset(self, seed: Optional[int] = None) -> None:
        """Restore constructor state so one injector can be rebuilt across
        Monte-Carlo replicas; *seed* optionally rekeys the stream."""
        self.detach()
        if seed is not None:
            self.seed = seed
        self.rng = np.random.default_rng(self.seed)
        self.log = FaultEventLog()
        self.failed_nodes.clear()

    def notify_requeue(self) -> None:
        """The job was requeued onto a repaired allocation: every
        previously failed node is back in service."""
        self.failed_nodes.clear()

    # -- failure stream -----------------------------------------------------------

    @property
    def live_nodes(self) -> int:
        return self.nnodes - len(self.failed_nodes)

    def _schedule_next(self) -> None:
        if self.log.count() >= self.max_faults or self.live_nodes < 1:
            return
        dt = self.model.draw_interarrival(self.rng, self.live_nodes)
        self._pending = self.sim.engine.schedule(dt, self._fire)

    def _fire(self, ev) -> None:
        self._pending = None
        live = [n for n in range(self.nnodes) if n not in self.failed_nodes]
        if not live:  # pragma: no cover - guarded by _schedule_next
            return
        node = int(live[int(self.rng.integers(0, len(live)))])
        kind = self.model.draw_kind(self.rng)
        detail = self.model.draw_detail(self.rng, kind, node, live, self.topology)
        if kind == "node":
            self.failed_nodes.add(node)
        elif kind == "burst":
            self.failed_nodes.update(detail.victims)
        event = self.log.add(self.sim.engine.now, node, kind, detail)
        sim = self.sim
        sim.inject_fault(node, kind, detail=detail, event=event)
        if self.sim is not None:  # the fault may abort the job and detach us
            self._schedule_next()
