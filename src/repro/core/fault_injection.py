"""Fault injection for BE-SST simulations (Cases 2 and 4 of Fig. 4).

A :class:`FaultInjector` draws node time-to-failure from an exponential or
Weibull distribution and fires failures into a running
:class:`~repro.core.simulator.BESSTSimulator`.  With an FT-aware AppBEO
the simulator rolls every rank back to its last completed checkpoint
(Case 4); without checkpoints the application restarts from the beginning
(Case 2).

:class:`RecoveryPolicy` configures the simulator's fault-lifecycle
realism: read-back verification failures (checkpoint corruption / SDC),
the L1→L2→L4→full-restart escalation ladder with bounded retries and
per-attempt backoff, and the abort/requeue path with its spare-node pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.analytical.sparenodes import SpareNodeModel


@dataclass(frozen=True)
class FaultModel:
    """Per-node failure process.

    Parameters
    ----------
    node_mtbf_s:
        Mean time between failures of a single node, seconds.
    distribution:
        ``"exponential"`` (memoryless) or ``"weibull"``.
    weibull_shape:
        Weibull shape k; < 1 models infant-mortality-dominated behaviour
        typical of HPC failure logs.
    software_fraction:
        Share of failures that are software/transient (process crash with
        node storage intact) rather than node losses.  Any checkpoint
        level recovers a software failure; node failures need a level
        whose protection domain covers node loss (L2+).
    """

    node_mtbf_s: float
    distribution: str = "exponential"
    weibull_shape: float = 0.7
    software_fraction: float = 0.6

    def __post_init__(self) -> None:
        if self.node_mtbf_s <= 0:
            raise ValueError(f"node_mtbf_s must be > 0, got {self.node_mtbf_s}")
        if self.distribution not in ("exponential", "weibull"):
            raise ValueError(f"unknown distribution {self.distribution!r}")
        if self.weibull_shape <= 0:
            raise ValueError(f"weibull_shape must be > 0, got {self.weibull_shape}")
        if not 0.0 <= self.software_fraction <= 1.0:
            raise ValueError(
                f"software_fraction must be in [0,1], got {self.software_fraction}"
            )

    def draw_kind(self, rng: np.random.Generator) -> str:
        """``"software"`` or ``"node"``."""
        return "software" if rng.random() < self.software_fraction else "node"

    def system_mtbf(self, nnodes: int) -> float:
        """MTBF of an *nnodes* system (failures superpose)."""
        if nnodes < 1:
            raise ValueError(f"nnodes must be >= 1, got {nnodes}")
        return self.node_mtbf_s / nnodes

    def draw_interarrival(self, rng: np.random.Generator, nnodes: int) -> float:
        """Time to the next system-wide failure."""
        mtbf = self.system_mtbf(nnodes)
        if self.distribution == "exponential":
            return float(rng.exponential(mtbf))
        k = self.weibull_shape
        # scale lambda so that the mean of Weibull(k, lambda) is mtbf
        from math import gamma

        lam = mtbf / gamma(1 + 1 / k)
        return float(lam * rng.weibull(k))


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the simulator handles the lifecycle of one fault.

    Parameters
    ----------
    verify_fail_prob:
        Probability that one recovery attempt's checkpoint read-back fails
        verification (corrupt/torn data, silent data corruption).  A
        failed verification escalates one rung up the recovery ladder.
        Full restart from the input deck (the last rung) never fails.
    max_attempts:
        Bound on recovery attempts per fault episode (nested faults extend
        the episode).  Exhausting the bound aborts the job and requeues it.
    retry_delay_s / backoff:
        Extra delay charged to the k-th retry: ``retry_delay_s *
        backoff**(k-1)`` (the first attempt pays none).
    l1_inplace_writes:
        When true, an L1 checkpoint write torn by a fault on the writing
        node destroys the node's *previous* local copy as well (in-place
        overwrite, FTI node-local semantics), so an L1-only restart point
        becomes unusable for the whole job.
    max_requeues:
        Job resubmissions allowed after recovery exhaustion before the
        job is declared aborted.
    requeue_delay_s:
        Scheduler latency of one resubmission.
    n_spares / spare_swap_s / spare_rebuild_s:
        Spare-node pool: a requeue caused by a node loss consumes one
        spare (paying ``spare_swap_s``); once the pool is exhausted the
        requeue degrades gracefully to a full node rebuild stall of
        ``spare_rebuild_s`` instead of failing.
    """

    verify_fail_prob: float = 0.05
    max_attempts: int = 4
    retry_delay_s: float = 0.5
    backoff: float = 2.0
    l1_inplace_writes: bool = True
    max_requeues: int = 1
    requeue_delay_s: float = 30.0
    n_spares: int = 2
    spare_swap_s: float = 5.0
    spare_rebuild_s: float = 120.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.verify_fail_prob < 1.0:
            raise ValueError(
                f"verify_fail_prob must be in [0,1), got {self.verify_fail_prob}"
            )
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.retry_delay_s < 0 or self.backoff <= 0:
            raise ValueError("retry_delay_s must be >= 0 and backoff > 0")
        if self.max_requeues < 0:
            raise ValueError(f"max_requeues must be >= 0, got {self.max_requeues}")
        if self.requeue_delay_s < 0:
            raise ValueError(f"requeue_delay_s must be >= 0, got {self.requeue_delay_s}")
        if self.n_spares < 0:
            raise ValueError(f"n_spares must be >= 0, got {self.n_spares}")
        if self.spare_swap_s < 0 or self.spare_rebuild_s < 0:
            raise ValueError("spare costs must be >= 0")

    def retry_extra_delay(self, attempt: int) -> float:
        """Extra delay of *attempt* (1-based); the first attempt is free."""
        if attempt <= 1:
            return 0.0
        return self.retry_delay_s * self.backoff ** (attempt - 2)

    @staticmethod
    def legacy() -> "RecoveryPolicy":
        """The seed simulator's semantics: one atomic, always-successful
        rollback per fault, no torn-write damage, never aborts."""
        return RecoveryPolicy(
            verify_fail_prob=0.0,
            max_attempts=1_000_000_000,
            retry_delay_s=0.0,
            backoff=1.0,
            l1_inplace_writes=False,
            max_requeues=0,
        )

    @classmethod
    def from_spare_model(cls, spare: "SpareNodeModel", **overrides) -> "RecoveryPolicy":
        """Derive the spare-pool parameters from an analytical
        :class:`~repro.analytical.sparenodes.SpareNodeModel`."""
        policy = cls(
            n_spares=spare.n_spare,
            spare_swap_s=spare.swap_cost,
            spare_rebuild_s=spare.rebuild_cost,
        )
        return replace(policy, **overrides) if overrides else policy


@dataclass
class FaultEventLog:
    """Chronological record of injected failures."""

    entries: list[tuple[float, int, str]] = field(default_factory=list)

    def add(self, time: float, node: int, kind: str = "node") -> None:
        self.entries.append((time, node, kind))

    def count(self) -> int:
        return len(self.entries)

    def times(self) -> list[float]:
        return [t for t, _, _ in self.entries]

    def count_kind(self, kind: str) -> int:
        return sum(1 for _, _, k in self.entries if k == kind)


class FaultInjector:
    """Streams failures into a simulator until the job completes.

    Parameters
    ----------
    model:
        The failure process.
    nnodes:
        Nodes in the simulated allocation (sets the system failure rate).
    seed:
        Private RNG seed (independent of the simulator's model noise).
    max_faults:
        Safety bound; injection stops after this many failures.
    """

    def __init__(
        self,
        model: FaultModel,
        nnodes: int,
        seed: int = 12345,
        max_faults: int = 10_000,
    ) -> None:
        if nnodes < 1:
            raise ValueError(f"nnodes must be >= 1, got {nnodes}")
        self.model = model
        self.nnodes = nnodes
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.max_faults = max_faults
        self.log = FaultEventLog()
        self.sim = None
        self._pending = None
        #: nodes lost to "node"-kind failures and not yet replaced;
        #: failure draws only ever hit live nodes.
        self.failed_nodes: set[int] = set()

    # -- simulator binding --------------------------------------------------------

    def attach(self, sim) -> None:
        """Called by the simulator constructor; schedules the first fault."""
        if self.sim is not None:
            raise RuntimeError(
                "FaultInjector is already attached to a simulator; "
                "call detach() or reset() before reusing it"
            )
        self.sim = sim
        self._schedule_next()

    def detach(self) -> None:
        """Stop injecting and release the simulator binding.

        The injector stays usable: a subsequent :meth:`attach` continues
        the same failure stream (call :meth:`reset` for a fresh one).
        """
        if self.sim is not None and self._pending is not None:
            self.sim.engine.cancel(self._pending)
        self._pending = None
        self.sim = None

    def reset(self, seed: Optional[int] = None) -> None:
        """Restore constructor state so one injector can be rebuilt across
        Monte-Carlo replicas; *seed* optionally rekeys the stream."""
        self.detach()
        if seed is not None:
            self.seed = seed
        self.rng = np.random.default_rng(self.seed)
        self.log = FaultEventLog()
        self.failed_nodes.clear()

    def notify_requeue(self) -> None:
        """The job was requeued onto a repaired allocation: every
        previously failed node is back in service."""
        self.failed_nodes.clear()

    # -- failure stream -----------------------------------------------------------

    @property
    def live_nodes(self) -> int:
        return self.nnodes - len(self.failed_nodes)

    def _schedule_next(self) -> None:
        if self.log.count() >= self.max_faults or self.live_nodes < 1:
            return
        dt = self.model.draw_interarrival(self.rng, self.live_nodes)
        self._pending = self.sim.engine.schedule(dt, self._fire)

    def _fire(self, ev) -> None:
        self._pending = None
        live = [n for n in range(self.nnodes) if n not in self.failed_nodes]
        if not live:  # pragma: no cover - guarded by _schedule_next
            return
        node = int(live[int(self.rng.integers(0, len(live)))])
        kind = self.model.draw_kind(self.rng)
        if kind == "node":
            self.failed_nodes.add(node)
        self.log.add(self.sim.engine.now, node, kind)
        sim = self.sim
        sim.inject_fault(node, kind)
        if self.sim is not None:  # the fault may abort the job and detach us
            self._schedule_next()
