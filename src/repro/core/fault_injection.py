"""Fault injection for BE-SST simulations (Cases 2 and 4 of Fig. 4).

A :class:`FaultInjector` draws node time-to-failure from an exponential or
Weibull distribution and fires failures into a running
:class:`~repro.core.simulator.BESSTSimulator`.  With an FT-aware AppBEO
the simulator rolls every rank back to its last completed checkpoint
(Case 4); without checkpoints the application restarts from the beginning
(Case 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class FaultModel:
    """Per-node failure process.

    Parameters
    ----------
    node_mtbf_s:
        Mean time between failures of a single node, seconds.
    distribution:
        ``"exponential"`` (memoryless) or ``"weibull"``.
    weibull_shape:
        Weibull shape k; < 1 models infant-mortality-dominated behaviour
        typical of HPC failure logs.
    software_fraction:
        Share of failures that are software/transient (process crash with
        node storage intact) rather than node losses.  Any checkpoint
        level recovers a software failure; node failures need a level
        whose protection domain covers node loss (L2+).
    """

    node_mtbf_s: float
    distribution: str = "exponential"
    weibull_shape: float = 0.7
    software_fraction: float = 0.6

    def __post_init__(self) -> None:
        if self.node_mtbf_s <= 0:
            raise ValueError(f"node_mtbf_s must be > 0, got {self.node_mtbf_s}")
        if self.distribution not in ("exponential", "weibull"):
            raise ValueError(f"unknown distribution {self.distribution!r}")
        if self.weibull_shape <= 0:
            raise ValueError(f"weibull_shape must be > 0, got {self.weibull_shape}")
        if not 0.0 <= self.software_fraction <= 1.0:
            raise ValueError(
                f"software_fraction must be in [0,1], got {self.software_fraction}"
            )

    def draw_kind(self, rng: np.random.Generator) -> str:
        """``"software"`` or ``"node"``."""
        return "software" if rng.random() < self.software_fraction else "node"

    def system_mtbf(self, nnodes: int) -> float:
        """MTBF of an *nnodes* system (failures superpose)."""
        if nnodes < 1:
            raise ValueError(f"nnodes must be >= 1, got {nnodes}")
        return self.node_mtbf_s / nnodes

    def draw_interarrival(self, rng: np.random.Generator, nnodes: int) -> float:
        """Time to the next system-wide failure."""
        mtbf = self.system_mtbf(nnodes)
        if self.distribution == "exponential":
            return float(rng.exponential(mtbf))
        k = self.weibull_shape
        # scale lambda so that the mean of Weibull(k, lambda) is mtbf
        from math import gamma

        lam = mtbf / gamma(1 + 1 / k)
        return float(lam * rng.weibull(k))


@dataclass
class FaultEventLog:
    """Chronological record of injected failures."""

    entries: list[tuple[float, int, str]] = field(default_factory=list)

    def add(self, time: float, node: int, kind: str = "node") -> None:
        self.entries.append((time, node, kind))

    def count(self) -> int:
        return len(self.entries)

    def times(self) -> list[float]:
        return [t for t, _, _ in self.entries]

    def count_kind(self, kind: str) -> int:
        return sum(1 for _, _, k in self.entries if k == kind)


class FaultInjector:
    """Streams failures into a simulator until the job completes.

    Parameters
    ----------
    model:
        The failure process.
    nnodes:
        Nodes in the simulated allocation (sets the system failure rate).
    seed:
        Private RNG seed (independent of the simulator's model noise).
    max_faults:
        Safety bound; injection stops after this many failures.
    """

    def __init__(
        self,
        model: FaultModel,
        nnodes: int,
        seed: int = 12345,
        max_faults: int = 10_000,
    ) -> None:
        if nnodes < 1:
            raise ValueError(f"nnodes must be >= 1, got {nnodes}")
        self.model = model
        self.nnodes = nnodes
        self.rng = np.random.default_rng(seed)
        self.max_faults = max_faults
        self.log = FaultEventLog()
        self.sim = None
        self._pending = None

    # -- simulator binding --------------------------------------------------------

    def attach(self, sim) -> None:
        """Called by the simulator constructor; schedules the first fault."""
        if self.sim is not None:
            raise RuntimeError("FaultInjector is already attached to a simulator")
        self.sim = sim
        self._schedule_next()

    def detach(self) -> None:
        """Stop injecting (job finished)."""
        if self.sim is not None and self._pending is not None:
            self.sim.engine.cancel(self._pending)
            self._pending = None

    def _schedule_next(self) -> None:
        if self.log.count() >= self.max_faults:
            return
        dt = self.model.draw_interarrival(self.rng, self.nnodes)
        self._pending = self.sim.engine.schedule(dt, self._fire)

    def _fire(self, ev) -> None:
        self._pending = None
        node = int(self.rng.integers(0, self.nnodes))
        kind = self.model.draw_kind(self.rng)
        self.log.add(self.sim.engine.now, node, kind)
        self.sim.inject_fault(node, kind)
        self._schedule_next()
