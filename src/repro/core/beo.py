"""Behavioral Emulation Objects: AppBEO and ArchBEO.

* An :class:`AppBEO` produces each rank's abstract instruction stream for
  a given parameter set (SPMD apps return the same stream for all ranks).
* An :class:`ArchBEO` describes the simulated hardware: it binds kernel
  names to performance models, prices communication via a collective cost
  model over a topology, and (with the FT extension) carries
  fault-related hardware parameters — node fault rates and recovery
  times — for fault-injecting simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from repro.core.instructions import Collective, Exchange, Instruction
from repro.models.base import ModelError, PerformanceModel
from repro.network.commmodel import CollectiveCostModel, LogGPModel
from repro.network.topology import Topology


class AppBEO:
    """An application model: name, tunable parameters, instruction builder.

    Parameters
    ----------
    name:
        Application label.
    builder:
        ``builder(rank, nranks, params) -> Sequence[Instruction]``.
    default_params:
        Parameter defaults merged under explicit ones at build time.
    validate_ranks:
        Optional callable raising ``ValueError`` for unsupported rank
        counts (e.g. LULESH's perfect-cube rule).
    """

    def __init__(
        self,
        name: str,
        builder: Callable[[int, int, Mapping[str, float]], Sequence[Instruction]],
        default_params: Optional[Mapping[str, float]] = None,
        validate_ranks: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.name = name
        self._builder = builder
        self.default_params = dict(default_params or {})
        self._validate_ranks = validate_ranks

    def check_ranks(self, nranks: int) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        if self._validate_ranks is not None:
            self._validate_ranks(nranks)

    def build(
        self, rank: int, nranks: int, params: Optional[Mapping[str, float]] = None
    ) -> list[Instruction]:
        """Instruction stream for *rank* of *nranks*."""
        self.check_ranks(nranks)
        if not 0 <= rank < nranks:
            raise IndexError(f"rank {rank} out of range [0, {nranks})")
        merged = dict(self.default_params)
        if params:
            merged.update(params)
        return list(self._builder(rank, nranks, merged))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AppBEO({self.name!r})"


@dataclass
class ArchBEO:
    """An architecture model for the BE-SST simulator.

    Parameters
    ----------
    name:
        Machine label (e.g. ``"quartz"``).
    models:
        Kernel name -> :class:`PerformanceModel`; polled by Compute and
        Checkpoint instructions.
    topology:
        Interconnect topology (used by the comm model and fault mapping).
    comm:
        Collective cost model; if omitted, one is derived from *topology*
        with default LogGP constants.
    cores_per_node:
        Ranks placed per node (Quartz runs 36 cores/node; the case study
        pins 2 ranks/node via FTI's node_size).
    node_mtbf_s:
        FT-aware hardware parameter: mean time between failures of one
        node, seconds (None = no faults).
    recovery_time_s:
        FT-aware hardware parameter: downtime to detect a failure and
        restore a replacement node.
    """

    name: str
    models: dict[str, PerformanceModel] = field(default_factory=dict)
    topology: Optional[Topology] = None
    comm: Optional[CollectiveCostModel] = None
    cores_per_node: int = 36
    node_mtbf_s: Optional[float] = None
    recovery_time_s: float = 60.0

    def __post_init__(self) -> None:
        if self.cores_per_node < 1:
            raise ValueError(f"cores_per_node must be >= 1, got {self.cores_per_node}")
        if self.comm is None and self.topology is not None:
            self.comm = CollectiveCostModel(LogGPModel(self.topology))

    # -- model binding ----------------------------------------------------------

    def bind(self, kernel: str, model: PerformanceModel) -> "ArchBEO":
        """Attach (or replace) the model for *kernel*; returns self."""
        self.models[kernel] = model
        return self

    def predict(
        self,
        kernel: str,
        params: Mapping[str, float],
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Runtime of one *kernel* call — the simulator's model poll."""
        model = self.models.get(kernel)
        if model is None:
            raise ModelError(
                f"ArchBEO {self.name!r} has no model for kernel {kernel!r}; "
                f"bound kernels: {sorted(self.models)}"
            )
        return model.predict(params, rng)

    # -- communication pricing -----------------------------------------------------

    def collective_time(self, instr: Collective, nranks: int) -> float:
        if self.comm is None:
            raise ModelError(
                f"ArchBEO {self.name!r} has no topology/comm model for collectives"
            )
        c = self.comm
        if instr.op == "barrier":
            return c.barrier(nranks)
        if instr.op == "allreduce":
            return c.allreduce(nranks, instr.nbytes)
        if instr.op == "broadcast":
            return c.broadcast(nranks, instr.nbytes)
        if instr.op == "reduce":
            return c.reduce(nranks, instr.nbytes)
        if instr.op == "gather":
            return c.gather(nranks, instr.nbytes)
        if instr.op == "alltoall":
            return c.alltoall(nranks, instr.nbytes)
        raise ModelError(f"unpriced collective {instr.op!r}")  # pragma: no cover

    def exchange_time(self, instr: Exchange) -> float:
        """Halo exchange: neighbours transfer concurrently, but each
        endpoint serialises its own sends/receives — price it as the
        per-rank serial cost of `neighbors` minimal-distance messages."""
        if self.comm is None:
            raise ModelError(
                f"ArchBEO {self.name!r} has no topology/comm model for exchanges"
            )
        return instr.neighbors * self.comm.p2p.neighbor_time(instr.nbytes)

    # -- placement / faults -----------------------------------------------------------

    def node_of_rank(self, rank: int, ranks_per_node: Optional[int] = None) -> int:
        rpn = ranks_per_node or self.cores_per_node
        return rank // rpn

    def nodes_for(self, nranks: int, ranks_per_node: Optional[int] = None) -> int:
        rpn = ranks_per_node or self.cores_per_node
        return -(-nranks // rpn)
