"""Fault-tolerance scenarios (the FT dimension of the design space).

A scenario names which checkpoint levels an application run performs and
how often.  The case study compares three: no fault-tolerance, level-1
checkpointing, and levels 1 & 2 — both with a 40-timestep period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class FTScenario:
    """A combination of checkpoint levels and periods.

    Parameters
    ----------
    name:
        Scenario label, e.g. ``"l1+l2"``.
    levels:
        ``(level, period_in_timesteps)`` pairs; at timestep t every level
        with ``t % period == 0`` takes a checkpoint.
    verify_period:
        ABFT verification cadence in timesteps: every ``verify_period``
        timesteps the application runs its checksum-verification kernel
        (the SDC detection point).  0 (default) disables verification —
        latent corruption is only ever caught by checkpoint-write
        validation, if enabled.
    """

    name: str
    levels: tuple[tuple[int, int], ...] = ()
    verify_period: int = 0

    def __post_init__(self) -> None:
        for level, period in self.levels:
            if level not in (1, 2, 3, 4):
                raise ValueError(f"invalid checkpoint level {level}")
            if period < 1:
                raise ValueError(f"invalid checkpoint period {period}")
        if self.verify_period < 0:
            raise ValueError(
                f"verify_period must be >= 0, got {self.verify_period}"
            )

    @property
    def is_ft_aware(self) -> bool:
        return bool(self.levels)

    def checkpoints_due(self, timestep: int) -> list[int]:
        """Levels that checkpoint at the end of 1-based *timestep*."""
        if timestep < 1:
            raise ValueError(f"timestep must be >= 1, got {timestep}")
        return [lvl for lvl, period in self.levels if timestep % period == 0]

    def verification_due(self, timestep: int) -> bool:
        """Whether the ABFT verify kernel runs at 1-based *timestep*."""
        if timestep < 1:
            raise ValueError(f"timestep must be >= 1, got {timestep}")
        return self.verify_period > 0 and timestep % self.verify_period == 0

    def verification_count(self, total_timesteps: int) -> int:
        if self.verify_period <= 0:
            return 0
        return total_timesteps // self.verify_period

    def checkpoint_count(self, total_timesteps: int, level: int) -> int:
        """How many instances of *level* occur in a run of
        *total_timesteps*."""
        for lvl, period in self.levels:
            if lvl == level:
                return total_timesteps // period
        return 0

    def kernel_for(self, level: int) -> str:
        """Name of the performance model for a level's checkpoint kernel."""
        return f"fti_l{level}"

    #: name of the ABFT verification kernel's performance model
    VERIFY_KERNEL = "abft_verify"

    def with_verification(self, verify_period: int) -> "FTScenario":
        """This scenario plus a verification cadence (new instance)."""
        return FTScenario(self.name, self.levels, verify_period)


#: the non-FT-aware baseline (Scenario 1 / traditional BE-SST workflow)
NO_FT = FTScenario("no_ft")


def scenario_l1(period: int = 40) -> FTScenario:
    """Scenario 2 of the case study: level-1 checkpointing."""
    return FTScenario("l1", ((1, period),))


def scenario_l1_l2(period: int = 40) -> FTScenario:
    """Scenario 3 of the case study: levels 1 & 2, same period."""
    return FTScenario("l1+l2", ((1, period), (2, period)))


def scenario_levels(levels: Sequence[int], period: int = 40) -> FTScenario:
    """Arbitrary level combination with one shared period."""
    name = "+".join(f"l{l}" for l in levels) if levels else "no_ft"
    return FTScenario(name, tuple((l, period) for l in levels))
