"""Resilience campaigns: survivability statistics over fault sweeps.

A :class:`ResilienceCampaign` runs the full fault lifecycle (torn
checkpoints, nested faults, escalation, requeue — see
:mod:`repro.core.simulator`) across a grid of fault rates × checkpoint
configurations, replicating each point Monte-Carlo style, optionally
across worker processes.  Each grid point reports

* **completion probability** — the fraction of replicas that finished
  (the rest aborted after exhausting retries, requeues and spares),
* **expected makespan** over the completed replicas,
* a **wasted-time breakdown** — rework, downtime, checkpoint overhead,
  and requeue stalls,
* **faults per completion**, and
* a cross-check of the simulated waste against the Young/Daly
  analytical expectation (:mod:`repro.analytical.youngdaly`).

Workloads are the synthetic SPMD pattern used throughout the test suite
(compute → optional checkpoint → allreduce per timestep) so each grid
point is a pure function of its :class:`CampaignSpec` — which is what
makes the process-parallel path bit-identical to the sequential one.

Execution is **crash-safe** (see :mod:`repro.core.supervisor`): replicas
are individually scheduled tasks with timeouts, retries and a failure
taxonomy, a dying worker rebuilds the pool instead of discarding the
sweep, and — with a ``journal_path`` — every completed replica is
durably appended to a write-ahead journal keyed by a spec hash, so
:meth:`ResilienceCampaign.resume` (or ``campaign --resume``) skips
completed replicas bit-identically after a kill.  Partial results are
reportable at any time via :meth:`ResilienceCampaign.report_from_journal`.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import shutil
from dataclasses import asdict, dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.analytical.youngdaly import expected_waste
from repro.core.beo import AppBEO, ArchBEO
from repro.core.fault_injection import (
    FaultInjector,
    FaultModel,
    RecoveryPolicy,
    fold_link_rate,
)
from repro.core.instructions import Checkpoint, Collective, Compute, Verify
from repro.core.montecarlo import MonteCarloRunner, derive_seeds
from repro.core.simulator import BESSTSimulator
from repro.core.supervisor import (
    HarnessFaultInjector,
    RetryPolicy,
    SupervisorStats,
    TaskSupervisor,
    WriteAheadJournal,
)
from repro.des.snapshot import SnapshotStore
from repro.faults.registry import (
    FailStopSpec,
    NetworkSpec,
    SdcSpec,
    StragglerSpec,
    TornCheckpointSpec,
)
from repro.models import ConstantModel
from repro.network import FullyConnected, Torus, TwoStageFatTree, link_count


@dataclass(frozen=True)
class CampaignSpec:
    """One grid point: a workload under one fault/checkpoint regime."""

    node_mtbf_s: float
    ckpt_period: int                #: timesteps between checkpoints
    level: int = 1                  #: checkpoint level taken each period
    nranks: int = 8
    nnodes: int = 4
    timesteps: int = 60
    compute_s: float = 0.1          #: modeled per-timestep compute cost
    ckpt_cost_s: float = 0.05       #: modeled checkpoint cost
    allreduce_bytes: int = 8
    recovery_time_s: float = 0.2    #: failure detection + restore downtime
    software_fraction: float = 1.0  #: share of transient (vs node-loss) faults
    #: full fault-taxonomy mix as sorted ``(kind, weight)`` pairs (kept a
    #: tuple so the spec stays frozen/hashable; pass a dict, it is
    #: normalised).  Empty = the two-kind ``software_fraction`` mix.
    fault_mix: tuple = ()
    # -- per-domain fault knobs --------------------------------------------------------
    # The flat fields below are DEPRECATED ALIASES: they remain the
    # storage/serialization layer (the campaign spec hash and journal
    # records are byte-stable functions of them), but new code should
    # read the normalized per-domain view via :meth:`fault_domain_specs`
    # and structured files via ``repro campaign --fault-config``.
    verify_period: int = 0          #: ABFT verification cadence (0 = off)
    verify_cost_s: float = 0.01     #: modeled verification-kernel cost
    sdc_coverage: float = 0.95      #: P(SDC strike is ABFT-detectable)
    sdc_correct_prob: float = 0.5   #: P(detected strike fixable in place)
    straggler_slowdown: float = 2.0
    straggler_repair_s: float = 5.0
    burst_size: int = 2             #: nodes felled per correlated burst
    #: per-link MTBF folded into the fault stream (0 = no implicit
    #: network faults; the mix can still name link/switch/netdeg)
    net_link_mtbf_s: float = 0.0
    net_degrade_factor: float = 4.0  #: netdeg bandwidth de-rate
    net_loss_prob: float = 0.05      #: netdeg transient-loss probability
    net_repair_s: float = 5.0        #: link/switch repair delay
    #: rank-level interconnect of the replica simulators: "full"
    #: (crossbar baseline), "torus" (square 2-D) or "fattree"
    net_topology: str = "full"
    #: how the folded link rate splits across link/switch/netdeg, as
    #: sorted (kind, weight) pairs; empty = NET_KIND_SPLIT
    net_fault_split: tuple = ()

    def __post_init__(self) -> None:
        if self.node_mtbf_s <= 0:
            raise ValueError(f"node_mtbf_s must be > 0, got {self.node_mtbf_s}")
        if self.ckpt_period < 1:
            raise ValueError(f"ckpt_period must be >= 1, got {self.ckpt_period}")
        if self.timesteps < 1:
            raise ValueError(f"timesteps must be >= 1, got {self.timesteps}")
        if self.verify_period < 0:
            raise ValueError(
                f"verify_period must be >= 0, got {self.verify_period}"
            )
        if isinstance(self.fault_mix, Mapping):
            object.__setattr__(
                self,
                "fault_mix",
                tuple(sorted((str(k), float(v)) for k, v in self.fault_mix.items())),
            )
        else:
            object.__setattr__(
                self,
                "fault_mix",
                tuple(sorted((str(k), float(v)) for k, v in self.fault_mix)),
            )
        if isinstance(self.net_fault_split, Mapping):
            object.__setattr__(
                self,
                "net_fault_split",
                tuple(
                    sorted(
                        (str(k), float(v)) for k, v in self.net_fault_split.items()
                    )
                ),
            )
        else:
            object.__setattr__(
                self,
                "net_fault_split",
                tuple(sorted((str(k), float(v)) for k, v in self.net_fault_split)),
            )
        if self.net_link_mtbf_s < 0:
            raise ValueError(
                f"net_link_mtbf_s must be >= 0, got {self.net_link_mtbf_s}"
            )
        if self.net_topology not in ("full", "torus", "fattree"):
            raise ValueError(
                f"net_topology must be 'full', 'torus' or 'fattree', "
                f"got {self.net_topology!r}"
            )
        # Fail fast on an invalid mix / taxonomy parameters / topology: a
        # bad spec should be rejected here, not quarantine every replica
        # later.
        self.build_topology()
        self.fault_model()

    def build_topology(self):
        """The rank-level interconnect of this grid point's replicas."""
        if self.net_topology == "torus":
            # Nearest-to-square 2-D factoring; primes degrade to a ring.
            d = next(
                k
                for k in range(math.isqrt(self.nranks), 0, -1)
                if self.nranks % k == 0
            )
            return Torus((d, self.nranks // d))
        if self.net_topology == "fattree":
            per_edge = max(2, self.nranks // 4)
            return TwoStageFatTree(
                self.nranks,
                nodes_per_edge=per_edge,
                uplinks_per_edge=max(1, per_edge // 2),
            )
        return FullyConnected(self.nranks)

    def fault_domain_specs(self) -> dict:
        """Normalized per-domain configuration view of the flat knobs.

        Returns ``{domain name -> FaultDomainSpec}`` in registry order —
        the authoritative in-memory shape of the fault configuration
        (the flat fields are its deprecated serialization aliases).
        """
        return {
            "failstop": FailStopSpec(burst_size=self.burst_size),
            "sdc": SdcSpec(
                coverage=self.sdc_coverage,
                correct_prob=self.sdc_correct_prob,
            ),
            "straggler": StragglerSpec(
                slowdown=self.straggler_slowdown,
                repair_s=self.straggler_repair_s,
            ),
            "network": NetworkSpec(
                link_mtbf_s=self.net_link_mtbf_s,
                repair_s=self.net_repair_s,
                degrade_factor=self.net_degrade_factor,
                loss_prob=self.net_loss_prob,
                fault_split=self.net_fault_split,
            ),
            "torn": TornCheckpointSpec(),
        }

    def fault_model(self) -> FaultModel:
        """The (validated) failure process of this grid point.

        Built from the normalized :meth:`fault_domain_specs` so the
        registry view is authoritative.  With ``net_link_mtbf_s`` set,
        the per-link failure stream is superposed onto the node stream
        (:func:`~repro.core.fault_injection.fold_link_rate`): the
        effective MTBF and kind weights shift so network faults arrive
        at ``nlinks / link_mtbf`` while the configured mix keeps its
        relative shares.
        """
        specs = self.fault_domain_specs()
        failstop, sdc = specs["failstop"], specs["sdc"]
        straggler, network = specs["straggler"], specs["network"]
        model = FaultModel(
            node_mtbf_s=self.node_mtbf_s,
            software_fraction=self.software_fraction,
            kind_weights=dict(self.fault_mix) if self.fault_mix else None,
            sdc_coverage=sdc.coverage,
            sdc_correct_prob=sdc.correct_prob,
            straggler_slowdown=straggler.slowdown,
            straggler_repair_s=straggler.repair_s,
            burst_size=failstop.burst_size,
            net_degrade_factor=network.degrade_factor,
            net_loss_prob=network.loss_prob,
            net_repair_s=network.repair_s,
        )
        if network.link_mtbf_s > 0:
            model = fold_link_rate(
                model,
                nnodes=self.nnodes,
                nlinks=link_count(self.build_topology()),
                link_mtbf_s=network.link_mtbf_s,
                split=network.fault_split or None,
            )
        return model

    @property
    def work_s(self) -> float:
        """Failure-free useful compute per rank."""
        return self.timesteps * self.compute_s

    @property
    def interval_s(self) -> float:
        """Compute time between checkpoints (the Young/Daly tau)."""
        return self.ckpt_period * self.compute_s

    @property
    def system_mtbf_s(self) -> float:
        return self.node_mtbf_s / self.nnodes


class CampaignWorkload:
    """The campaign's synthetic SPMD program builder.

    A module-level class (not a closure) so simulators built from it are
    fully picklable — the property in-simulation snapshot/restore needs
    to resume a replica mid-run.
    """

    def __init__(self, spec: CampaignSpec) -> None:
        self.spec = spec

    def __call__(self, rank: int, nranks: int, params) -> list:
        spec = self.spec
        body = []
        for ts in range(1, spec.timesteps + 1):
            body.append(Compute.of("work"))
            # Verification precedes any same-timestep checkpoint, so a
            # strike caught here never taints the written version.
            if spec.verify_period > 0 and ts % spec.verify_period == 0:
                body.append(Verify.of("verify"))
            if ts % spec.ckpt_period == 0:
                body.append(Checkpoint.of(spec.level, "ckpt"))
            body.append(Collective("allreduce", nbytes=spec.allreduce_bytes))
        return body


def build_campaign_app(spec: CampaignSpec) -> AppBEO:
    """The campaign's synthetic SPMD workload."""
    return AppBEO(
        f"campaign_p{spec.ckpt_period}_l{spec.level}", CampaignWorkload(spec)
    )


def build_campaign_simulator(
    spec: CampaignSpec,
    seed: int,
    policy: RecoveryPolicy,
    inject: bool = True,
) -> BESSTSimulator:
    """Assemble one replica's simulator (pure function of its inputs)."""
    arch = ArchBEO(
        "campaign",
        topology=spec.build_topology(),
        cores_per_node=max(1, spec.nranks // spec.nnodes),
    )
    arch.bind("work", ConstantModel(spec.compute_s))
    arch.bind("ckpt", ConstantModel(spec.ckpt_cost_s))
    arch.bind("verify", ConstantModel(spec.verify_cost_s))
    arch.recovery_time_s = spec.recovery_time_s
    injector = None
    if inject:
        injector = FaultInjector(
            spec.fault_model(),
            nnodes=spec.nnodes,
            seed=seed + 777,
        )
    return BESSTSimulator(
        build_campaign_app(spec),
        arch,
        nranks=spec.nranks,
        seed=seed,
        monte_carlo=False,
        fault_injector=injector,
        recovery_policy=policy,
    )


#: event budget per replica; aborts make runs short, fault storms long
_REPLICA_MAX_EVENTS = 20_000_000

#: keys every replica metrics dict must carry (the supervisor's result
#: validator — an injected-garbage return fails this and is retried)
_REPLICA_KEYS = frozenset(
    {
        "seed",
        "completed",
        "total_time",
        "faults",
        "rollbacks",
        "nested_faults",
        "torn_checkpoints",
        "verify_failures",
        "escalations",
        "requeues",
        "waste_rework",
        "waste_downtime",
        "waste_requeue",
        "checkpoint_time",
        "fault_log",
        "fault_kinds",
        "sdc",
        "net",
        "wrong_result",
        "forensics",
    }
)


@dataclass(frozen=True)
class ReplicaSnapshotConfig:
    """In-simulation snapshot cadence for one replica.

    When present in a replica payload, the simulator checkpoints itself
    into *directory* every *every_events* fired events, and a retried
    replica (after a timeout, kill or worker crash) resumes from the
    newest loadable snapshot instead of restarting from ``t=0``.  The
    resumed metrics are bit-identical to an uninterrupted run, so
    journals and reports are unaffected by how often a replica died.
    """

    directory: str
    every_events: int = 2000
    keep: int = 2

    def __post_init__(self) -> None:
        if self.every_events < 1:
            raise ValueError(
                f"every_events must be >= 1, got {self.every_events}"
            )


def _run_replica(payload: tuple) -> dict:
    """One Monte-Carlo replica → a slim, picklable metrics dict.

    Module-level so :class:`ProcessPoolExecutor` can ship it to workers.
    A pure function of its payload: retrying it (after a worker crash,
    hang or injected harness fault) reproduces the original result
    bit-identically.  With a :class:`ReplicaSnapshotConfig` the retry
    resumes from the replica's newest in-simulation snapshot rather than
    recomputing from scratch.  An :class:`~repro.obs.tracing.ObsContext`
    in slot 4 joins the replica to the campaign's trace (spans + worker
    metrics dumped into the shared obs directory); observability never
    touches the metrics dict beyond adding ``events_fired``, so journals
    and reports stay bit-identical with it on or off.  A flight-recorder
    directory in slot 5 records the replica's fault/recovery timeline
    out-of-band (live spill + atomic final dump, both named by seed);
    the recorder is observation-only, so the metrics dict — and with it
    journal and report bytes — is identical with it on or off.
    """
    spec, policy, seed = payload[:3]
    snap_cfg: Optional[ReplicaSnapshotConfig] = (
        payload[3] if len(payload) > 3 else None
    )
    obs_ctx = payload[4] if len(payload) > 4 else None
    flight_dir = payload[5] if len(payload) > 5 else None
    tracer = engine_obs = span = None
    if obs_ctx is not None:
        from repro.obs.instrument import replica_obs_begin

        tracer, engine_obs, span = replica_obs_begin(obs_ctx, seed)
    flight = None
    if flight_dir is not None:
        from repro.obs.flightrec import FlightRecorder, flight_spill_path

        flight = FlightRecorder(
            spill_path=flight_spill_path(flight_dir, seed)
        )
        flight.record("replica_start", 0.0, seed=seed, pid=os.getpid())
    sim = None
    store = None
    if snap_cfg is not None:
        store = SnapshotStore(snap_cfg.directory, keep=snap_cfg.keep)
        latest = store.latest()
        if latest is not None:
            sim = BESSTSimulator.restore(latest)
    if sim is None:
        sim = build_campaign_simulator(spec, seed, policy)
        if snap_cfg is not None:
            sim.enable_snapshots(
                snap_cfg.directory,
                every_events=snap_cfg.every_events,
                keep=snap_cfg.keep,
            )
    if engine_obs is not None:
        sim.engine.attach_obs(engine_obs)
    if flight is not None:
        sim.attach_flightrec(flight)
    res = sim.run(max_events=_REPLICA_MAX_EVENTS)
    if store is not None:
        store.clear()  # completed: the snapshots are dead weight now
    result = {
        "seed": seed,
        "completed": res.completed,
        "total_time": res.total_time,
        "faults": res.faults_injected,
        "rollbacks": res.rollbacks,
        "nested_faults": res.nested_faults,
        "torn_checkpoints": res.torn_checkpoints,
        "verify_failures": res.verify_failures,
        "escalations": res.escalations,
        "requeues": res.requeues,
        "waste_rework": res.waste_rework,
        "waste_downtime": res.waste_downtime,
        "waste_requeue": res.waste_requeue,
        "checkpoint_time": res.checkpoint_time,
        "fault_log": sim.fault_injector.log.to_rows(),
        "fault_kinds": sim.fault_injector.log.kind_counts(),
        "sdc": {
            "injected": res.sdc_injected,
            "detected": res.sdc_detected,
            "corrected": res.sdc_corrected,
            "undetected": res.sdc_undetected,
            "detect_latency_s": res.sdc_detect_latency_s,
        },
        "net": {
            "faults": res.net_faults,
            "repairs": res.net_repairs,
            "partition_stalls": res.net_partition_stalls,
            "degraded_commits": res.net_degraded_commits,
            "reroutes": res.net_reroutes,
            "retransmits": res.net_retransmits,
        },
        "wrong_result": res.wrong_result,
        # Always present (forensics is derived from the run, not from
        # any recorder): per-episode waste attribution + phase timelines.
        "forensics": {
            "episodes": res.episodes,
            "straggler_excess_s": res.straggler_excess_s,
            "straggler_excess_by_node": {
                str(k): v for k, v in res.straggler_excess_by_node.items()
            },
        },
        # Extra key (not in _REPLICA_KEYS): feeds the heartbeat's
        # events/sec; aggregation ignores it, so reports are unchanged.
        "events_fired": res.events_fired,
    }
    if flight is not None:
        from repro.obs.export import guarded_export
        from repro.obs.flightrec import flight_dump_path

        reason = (
            "aborted"
            if not res.completed
            else "wrong_result"
            if res.wrong_result
            else "completed"
        )
        meta = {
            "seed": seed,
            "reason": reason,
            "sim_time": res.total_time,
            "events": res.events_fired,
            "completed": res.completed,
            "wrong_result": res.wrong_result,
        }
        dumped = guarded_export(
            "flight-dump",
            lambda: flight.dump(flight_dump_path(flight_dir, seed), meta=meta),
        )
        # Only a successfully-dumped replica may drop its spill: a live
        # spill left behind is the post-mortem signal for a killed worker.
        flight.close(remove_spill=dumped)
    if obs_ctx is not None:
        from repro.obs.instrument import replica_obs_end

        replica_obs_end(obs_ctx, tracer, span, result)
    return result


def _is_replica_result(value) -> bool:
    return isinstance(value, dict) and _REPLICA_KEYS <= value.keys()


def campaign_spec_key(spec: CampaignSpec, policy: RecoveryPolicy) -> str:
    """Stable hash of (spec, policy) — the journal's grid-point key."""
    blob = json.dumps(
        {"spec": asdict(spec), "policy": asdict(policy)}, sort_keys=True
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


# -- write-ahead journal (campaign semantics over WriteAheadJournal) -------------


class CampaignJournal:
    """Spec-hash-keyed replica journal backing ``--resume``.

    Record kinds: ``point`` (one per grid point, carrying the spec) and
    ``replica`` (one fsynced record per completed replica).  Reopening
    with a different (reps, base_seed, policy) raises
    :class:`repro.core.supervisor.JournalError`.
    """

    def __init__(
        self, path: str, reps: int, base_seed: int, policy: RecoveryPolicy
    ) -> None:
        meta = {
            "campaign": "resilience",
            "reps": reps,
            "base_seed": base_seed,
            "policy": asdict(policy),
        }
        self._wal = WriteAheadJournal(path, meta)
        self.points: dict[str, dict] = {}
        self.replicas: dict[str, dict[int, dict]] = {}
        for rec in self._wal.records:
            self._index(rec)

    def _index(self, rec: dict) -> None:
        if rec.get("kind") == "point":
            self.points[rec["spec_key"]] = rec["spec"]
        elif rec.get("kind") == "replica":
            self.replicas.setdefault(rec["spec_key"], {})[
                int(rec["replica"])
            ] = rec["result"]

    def ensure_point(self, spec_key: str, spec: CampaignSpec) -> None:
        if spec_key not in self.points:
            rec = {"kind": "point", "spec_key": spec_key, "spec": asdict(spec)}
            self._wal.append(rec)
            self._index(rec)

    def record_replica(
        self, spec_key: str, replica: int, seed: int, result: dict
    ) -> None:
        rec = {
            "kind": "replica",
            "spec_key": spec_key,
            "replica": replica,
            "seed": seed,
            "result": result,
        }
        self._wal.append(rec)
        self._index(rec)

    def completed(self, spec_key: str) -> dict[int, dict]:
        return self.replicas.get(spec_key, {})

    def close(self) -> None:
        self._wal.close()

    @staticmethod
    def read(path: str):
        """Load ``(meta, points, replicas)`` without opening for append."""
        meta, records = WriteAheadJournal.read(path)
        points: dict[str, dict] = {}
        replicas: dict[str, dict[int, dict]] = {}
        for rec in records:
            if rec.get("kind") == "point":
                points[rec["spec_key"]] = rec["spec"]
            elif rec.get("kind") == "replica":
                replicas.setdefault(rec["spec_key"], {})[
                    int(rec["replica"])
                ] = rec["result"]
        return meta, points, replicas


# -- reports ---------------------------------------------------------------------


@dataclass
class CampaignPointReport:
    """Aggregated survivability statistics of one grid point."""

    spec: CampaignSpec
    reps: int                            #: replicas configured
    replicas_done: int                   #: replicas actually available
    completion_probability: float
    expected_makespan: Optional[float]   #: mean over completed replicas
    makespan_p95: Optional[float]
    faults_per_completion: Optional[float]
    mean_faults: float
    mean_nested_faults: float
    mean_torn_checkpoints: float
    mean_verify_failures: float
    mean_requeues: float
    waste: dict                          #: rework/downtime/checkpoint/requeue means
    youngdaly: dict                      #: analytical cross-check
    fault_kinds: dict = field(default_factory=dict)  #: kind -> injected, summed
    sdc: dict = field(default_factory=dict)  #: injected/detected/corrected/undetected sums
    net: dict = field(default_factory=dict)  #: network fault-domain sums
    wrong_results: int = 0               #: completed replicas carrying undetected SDC
    replicas: list = field(default_factory=list, repr=False)

    @property
    def partial(self) -> bool:
        return self.replicas_done < self.reps

    def to_dict(self) -> dict:
        d = {
            "spec": asdict(self.spec),
            "reps": self.reps,
            "replicas_done": self.replicas_done,
            "completion_probability": self.completion_probability,
            "expected_makespan": self.expected_makespan,
            "makespan_p95": self.makespan_p95,
            "faults_per_completion": self.faults_per_completion,
            "mean_faults": self.mean_faults,
            "mean_nested_faults": self.mean_nested_faults,
            "mean_torn_checkpoints": self.mean_torn_checkpoints,
            "mean_verify_failures": self.mean_verify_failures,
            "mean_requeues": self.mean_requeues,
            "waste": self.waste,
            "youngdaly": self.youngdaly,
            "fault_kinds": self.fault_kinds,
            "sdc": self.sdc,
            "net": self.net,
            "wrong_results": self.wrong_results,
        }
        return d


@dataclass
class CampaignReport:
    """The full campaign grid."""

    points: list[CampaignPointReport]
    reps: int
    base_seed: int
    partial: bool = False  #: some grid point has replicas_done < reps

    def to_dict(self) -> dict:
        return {
            "campaign": "resilience",
            "reps": self.reps,
            "base_seed": self.base_seed,
            "partial": self.partial,
            "points": [p.to_dict() for p in self.points],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def format(self) -> str:
        """Human-readable summary table."""
        tag = ", PARTIAL" if self.partial else ""
        lines = [
            "RESILIENCE CAMPAIGN "
            f"({self.reps} replicas/point, base seed {self.base_seed}{tag})",
            f"{'mtbf/node':>10s} {'period':>7s} {'done':>7s} {'P(done)':>8s} "
            f"{'makespan':>9s} {'faults':>7s} {'waste r/d/c/q':>24s} {'YD ratio':>9s}",
        ]
        for p in self.points:
            w = p.waste
            mk = f"{p.expected_makespan:.3f}" if p.expected_makespan is not None else "-"
            fpc = f"{p.faults_per_completion:.2f}" if p.faults_per_completion is not None else "-"
            ratio = p.youngdaly.get("ratio")
            yd = f"{ratio:.2f}" if ratio is not None else "-"
            lines.append(
                f"{p.spec.node_mtbf_s:>10.1f} {p.spec.ckpt_period:>7d} "
                f"{p.replicas_done:>3d}/{p.reps:<3d} "
                f"{p.completion_probability:>8.2f} {mk:>9s} {fpc:>7s} "
                f"{w['rework']:>6.3f}/{w['downtime']:.3f}/{w['checkpoint']:.3f}/{w['requeue']:.3f}"
                f" {yd:>9s}"
            )
        return "\n".join(lines)


def _youngdaly_check(spec: CampaignSpec, replicas: list[dict]) -> dict:
    """Compare mean simulated waste with the Young/Daly expectation.

    The analytical model prices exactly what the simulator charges to
    waste + checkpoint overhead: E[runtime] − work.  ``ratio`` is
    simulated/predicted; at moderate fault rates (a handful of faults
    per run) it should sit within ±50 % (see tests/docs), the renewal
    approximation's documented accuracy band here.
    """
    predicted = expected_waste(
        spec.work_s,
        spec.interval_s,
        spec.ckpt_cost_s,
        spec.system_mtbf_s,
        restart_cost=spec.recovery_time_s,
    )
    completed = [r for r in replicas if r["completed"]]
    if not completed:
        return {
            "interval_s": spec.interval_s,
            "predicted_waste_s": predicted,
            "simulated_waste_s": None,
            "ratio": None,
        }
    simulated = float(
        np.mean(
            [
                r["waste_rework"]
                + r["waste_downtime"]
                + r["waste_requeue"]
                + r["checkpoint_time"]
                for r in completed
            ]
        )
    )
    return {
        "interval_s": spec.interval_s,
        "predicted_waste_s": predicted,
        "simulated_waste_s": simulated,
        "ratio": simulated / predicted if predicted > 0 else None,
    }


def aggregate_point(
    spec: CampaignSpec, replicas: list[dict], reps: int
) -> CampaignPointReport:
    """Aggregate available replica metrics into one point report.

    Safe on any replica subset: an empty list (nothing run yet, or all
    quarantined) and an all-aborted point both serialize cleanly —
    no NaN and no division by zero anywhere in the waste breakdown or
    faults-per-completion.
    """
    n_avail = len(replicas)
    completed = [r for r in replicas if r["completed"]]
    n_done = len(completed)
    makespans = np.array([r["total_time"] for r in completed])
    total_faults = sum(r["faults"] for r in replicas)

    def mean(key: str) -> float:
        return float(np.mean([r[key] for r in replicas])) if replicas else 0.0

    waste = {
        "rework": mean("waste_rework"),
        "downtime": mean("waste_downtime"),
        "checkpoint": mean("checkpoint_time"),
        "requeue": mean("waste_requeue"),
    }
    # Per-kind and SDC-outcome totals across every available replica.
    # Older journals predate these keys; .get keeps resume compatible.
    fault_kinds: dict[str, int] = {}
    sdc_totals = {
        "injected": 0,
        "detected": 0,
        "corrected": 0,
        "undetected": 0,
        "detect_latency_s": 0.0,
    }
    net_totals = {
        "faults": 0,
        "repairs": 0,
        "partition_stalls": 0,
        "degraded_commits": 0,
        "reroutes": 0,
        "retransmits": 0.0,
    }
    wrong_results = 0
    for r in replicas:
        for kind, n in r.get("fault_kinds", {}).items():
            fault_kinds[kind] = fault_kinds.get(kind, 0) + int(n)
        for key, v in r.get("sdc", {}).items():
            if key in sdc_totals:
                sdc_totals[key] += v
        for key, v in r.get("net", {}).items():
            if key in net_totals:
                net_totals[key] += v
        if r.get("wrong_result"):
            wrong_results += 1
    return CampaignPointReport(
        spec=spec,
        reps=reps,
        replicas_done=n_avail,
        completion_probability=(n_done / n_avail) if n_avail else 0.0,
        expected_makespan=float(makespans.mean()) if n_done else None,
        makespan_p95=float(np.percentile(makespans, 95)) if n_done else None,
        faults_per_completion=(total_faults / n_done) if n_done else None,
        mean_faults=mean("faults"),
        mean_nested_faults=mean("nested_faults"),
        mean_torn_checkpoints=mean("torn_checkpoints"),
        mean_verify_failures=mean("verify_failures"),
        mean_requeues=mean("requeues"),
        waste=waste,
        youngdaly=_youngdaly_check(spec, replicas),
        fault_kinds=dict(sorted(fault_kinds.items())),
        sdc=sdc_totals,
        net=net_totals,
        wrong_results=wrong_results,
        replicas=replicas,
    )


# -- the campaign runner ---------------------------------------------------------


class ResilienceCampaign(MonteCarloRunner):
    """Crash-safe, process-parallel Monte-Carlo sweep of fault survivability.

    Parameters
    ----------
    reps / base_seed:
        As in :class:`MonteCarloRunner`; replica *i* of every grid point
        runs with an independent seed explicitly derived from
        ``base_seed`` (:func:`repro.core.montecarlo.derive_seeds`).
    policy:
        The :class:`RecoveryPolicy` applied to every replica.
    n_workers:
        Worker processes; 1 (default) runs in-process.  Both paths
        produce byte-identical reports (replicas are pure functions of
        ``(spec, policy, seed)``).
    retry:
        Supervisor :class:`RetryPolicy` (timeouts, backoff, quarantine).
    journal_path:
        Write-ahead journal; every completed replica is durably recorded
        and never recomputed on a rerun/resume with the same journal.
    fault_injector:
        Optional :class:`HarnessFaultInjector` for chaos testing the
        harness itself (workers only; never the supervisor process).
    sim_snapshot_dir / sim_snapshot_every:
        When both are set, each replica checkpoints its *simulator state*
        into a private subdirectory of ``sim_snapshot_dir`` every
        ``sim_snapshot_every`` fired events, and a retried replica
        (timeout, kill, worker crash) resumes mid-simulation from its
        newest snapshot — complementing the journal, which only skips
        replicas that already *finished*.
    obs:
        Optional :class:`~repro.obs.instrument.CampaignObs`.  Enables
        the full telemetry pipeline: campaign/point/task spans with ids
        propagated into replica worker processes, engine-level metrics,
        the live heartbeat, and the JSONL / Prometheus / Chrome-trace
        exporters.  Observability data never enters replica results or
        the journal (beyond the report-ignored ``events_fired`` key), so
        runs are bit-identical with it on or off.
    guard:
        Optional :class:`~repro.guard.resource.ResourceGuard`.  Polled
        from the supervision loop; its degradation ladder's stage
        actions are wired to this campaign — shed oldest replica
        snapshots, stretch the snapshot cadence, suspend the metric
        exporters, pause task submission, and finally a clean resumable
        abort (``self.aborted`` / ``self.abort_reason``) that leaves the
        journal valid for :meth:`resume`.  With the guard attached but
        no resource pressure, reports and journals are bit-identical to
        an unguarded run.
    """

    def __init__(
        self,
        reps: int = 20,
        base_seed: int = 0,
        policy: Optional[RecoveryPolicy] = None,
        n_workers: int = 1,
        retry: Optional[RetryPolicy] = None,
        journal_path: Optional[str] = None,
        fault_injector: Optional[HarnessFaultInjector] = None,
        sim_snapshot_dir: Optional[str] = None,
        sim_snapshot_every: Optional[int] = None,
        obs=None,
        guard=None,
        flight_dir: Optional[str] = None,
    ) -> None:
        super().__init__(reps=reps, base_seed=base_seed)
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if (sim_snapshot_dir is None) != (sim_snapshot_every is None):
            raise ValueError(
                "sim_snapshot_dir and sim_snapshot_every must be set together"
            )
        self.policy = policy or RecoveryPolicy()
        self.n_workers = n_workers
        self.retry = retry or RetryPolicy()
        self.fault_injector = fault_injector
        self.journal_path = journal_path
        self.sim_snapshot_dir = sim_snapshot_dir
        self.sim_snapshot_every = sim_snapshot_every
        self.obs = obs
        self.guard = guard
        #: flight-recorder directory: each replica spills its fault/
        #: recovery timeline there and dumps it atomically at exit; the
        #: harness failure log lands there too.  Out-of-band by design —
        #: journal and report bytes are identical with it on or off.
        self.flight_dir = flight_dir
        if flight_dir is not None:
            os.makedirs(flight_dir, exist_ok=True)
        #: set when a run stopped on resource exhaustion; the journal
        #: holds every completed replica, so :meth:`resume` finishes the
        #: sweep bit-identically once the pressure clears
        self.aborted = False
        self.abort_reason = ""
        #: snapshot-cadence multiplier driven by the ladder's
        #: ``stretch_cadence`` stage (applied to new replica payloads)
        self._cadence_factor = 1
        self._journal: Optional[CampaignJournal] = None
        #: accumulated supervisor telemetry (kept out of report JSON so
        #: resumed and uninterrupted runs stay bit-identical)
        self.harness_stats = SupervisorStats()
        if guard is not None:
            self._wire_guard()

    @classmethod
    def resume(
        cls,
        journal_path: str,
        n_workers: int = 1,
        retry: Optional[RetryPolicy] = None,
        fault_injector: Optional[HarnessFaultInjector] = None,
        sim_snapshot_dir: Optional[str] = None,
        sim_snapshot_every: Optional[int] = None,
        obs=None,
        guard=None,
        flight_dir: Optional[str] = None,
    ) -> "ResilienceCampaign":
        """Rebuild a campaign from a journal's header (reps/seed/policy).

        Calling :meth:`run_grid` with the original grid then recomputes
        only the replicas the journal is missing — and, with the
        ``sim_snapshot_*`` options, resumes each unfinished replica from
        its latest in-simulation snapshot rather than from ``t=0``.
        """
        meta, _, _ = CampaignJournal.read(journal_path)
        return cls(
            reps=meta["reps"],
            base_seed=meta["base_seed"],
            policy=RecoveryPolicy(**meta["policy"]),
            n_workers=n_workers,
            retry=retry,
            journal_path=journal_path,
            fault_injector=fault_injector,
            sim_snapshot_dir=sim_snapshot_dir,
            sim_snapshot_every=sim_snapshot_every,
            obs=obs,
            guard=guard,
            flight_dir=flight_dir,
        )

    @staticmethod
    def report_from_journal(journal_path: str) -> CampaignReport:
        """Aggregate whatever the journal holds — partial or complete.

        Usable at any time, including while another process is mid-sweep
        or after a kill; points missing replicas are flagged via
        ``replicas_done`` and the report-level ``partial`` bit.
        """
        meta, points, replicas = CampaignJournal.read(journal_path)
        reps = int(meta["reps"])
        reports = []
        for spec_key, spec_dict in points.items():
            done = replicas.get(spec_key, {})
            ordered = [done[i] for i in sorted(done)]
            reports.append(
                aggregate_point(CampaignSpec(**spec_dict), ordered, reps)
            )
        return CampaignReport(
            points=reports,
            reps=reps,
            base_seed=int(meta["base_seed"]),
            partial=any(p.partial for p in reports),
        )

    # -- degradation-ladder wiring ------------------------------------------------

    def _wire_guard(self) -> None:
        """Bind the guard's ladder stages to this campaign's resources."""
        ladder = getattr(self.guard, "ladder", None)
        if ladder is None:
            return
        from repro.guard.ladder import (
            STAGE_SHED_SNAPSHOTS,
            STAGE_STRETCH_CADENCE,
            STAGE_SUSPEND_EXPORTERS,
        )

        ladder.on_enter(STAGE_SHED_SNAPSHOTS, self._shed_snapshots)
        ladder.on_enter(STAGE_STRETCH_CADENCE, self._stretch_cadence)
        ladder.on_exit(STAGE_STRETCH_CADENCE, self._restore_cadence)
        ladder.on_enter(STAGE_SUSPEND_EXPORTERS, self._suspend_exporters)
        ladder.on_exit(STAGE_SUSPEND_EXPORTERS, self._resume_exporters)
        if self.obs is not None:
            ladder.on_transition(self.obs.stage_changed)

    def _shed_snapshots(self) -> None:
        """Ladder stage: free disk by keeping only each replica's newest
        snapshot (costs resume granularity, never correctness)."""
        root = self.sim_snapshot_dir
        if root is None or not os.path.isdir(root):
            return
        for name in sorted(os.listdir(root)):
            sub = os.path.join(root, name)
            if os.path.isdir(sub):
                SnapshotStore(sub, keep=1).shed_oldest(keep=1)

    def _stretch_cadence(self) -> None:
        """Ladder stage: snapshot 4x less often (less disk churn; a
        killed replica recomputes more on resume)."""
        self._cadence_factor *= 4

    def _restore_cadence(self) -> None:
        self._cadence_factor = max(1, self._cadence_factor // 4)

    def _suspend_exporters(self) -> None:
        if self.obs is not None:
            self.obs.suspend_exporters()

    def _resume_exporters(self) -> None:
        if self.obs is not None:
            self.obs.resume_exporters()

    # -- execution ---------------------------------------------------------------

    def _replica_snapshot_dir(self, spec_key: str, replica) -> str:
        return os.path.join(self.sim_snapshot_dir, f"{spec_key}-r{replica}")

    def _replica_payload(
        self, spec: CampaignSpec, spec_key: str, seeds, i: int
    ) -> tuple:
        snap_cfg = None
        if self.sim_snapshot_dir is not None:
            snap_cfg = ReplicaSnapshotConfig(
                directory=self._replica_snapshot_dir(spec_key, i),
                # Stretched by the ladder under resource pressure; the
                # cadence only affects resume granularity, never the
                # replica's (pure-function) results.
                every_events=self.sim_snapshot_every * self._cadence_factor,
            )
        if self.flight_dir is not None:
            # 6-tuple: slots 3/4 may be None, slot 5 points the worker's
            # flight recorder (spill + final dump) at the shared directory.
            return (
                spec,
                self.policy,
                seeds[i],
                snap_cfg,
                self.obs.worker_context(f"{spec_key}:{i}")
                if self.obs is not None
                else None,
                self.flight_dir,
            )
        if self.obs is not None:
            # 5-tuple: slot 3 may be None, slot 4 joins the worker to
            # the campaign trace (parented on the task's derived span).
            return (
                spec,
                self.policy,
                seeds[i],
                snap_cfg,
                self.obs.worker_context(f"{spec_key}:{i}"),
            )
        if snap_cfg is not None:
            return (spec, self.policy, seeds[i], snap_cfg)
        return (spec, self.policy, seeds[i])

    def _get_journal(self) -> Optional[CampaignJournal]:
        if self.journal_path is not None and self._journal is None:
            self._journal = CampaignJournal(
                self.journal_path, self.reps, self.base_seed, self.policy
            )
        return self._journal

    def _run_replicas(self, spec: CampaignSpec) -> list[dict]:
        seeds = derive_seeds(self.base_seed, self.reps)
        spec_key = campaign_spec_key(spec, self.policy)
        obs = self.obs
        done: dict[int, dict] = {}
        # Journal open and point-header append are host-side durable
        # writes: under ENOSPC they must abort the sweep resumably, not
        # escape as an unhandled OSError.
        try:
            journal = self._get_journal()
            if journal is not None:
                journal.ensure_point(spec_key, spec)
        except OSError as exc:
            self.aborted = True
            if not self.abort_reason:
                self.abort_reason = (
                    f"durable write failed for point {spec_key}: {exc}"
                )
            return []
        if journal is not None:
            done = dict(journal.completed(spec_key))
        if obs is not None:
            obs.point_started(spec_key)
            for replayed in done.values():
                obs.replica_done(replayed, from_journal=True)
        try:
            tasks = [
                (f"{spec_key}:{i}", self._replica_payload(spec, spec_key, seeds, i))
                for i in range(self.reps)
                if i not in done
            ]
            fresh: dict[int, dict] = {}
            if tasks:
                journal_result = None
                if journal is not None:

                    def journal_result(key: str, result: dict) -> None:
                        idx = int(key.rsplit(":", 1)[1])
                        journal.record_replica(spec_key, idx, seeds[idx], result)

                on_result = journal_result
                if obs is not None:

                    def on_result(key: str, result: dict) -> None:
                        # WAL first: durability beats telemetry.
                        if journal_result is not None:
                            journal_result(key, result)
                        obs.replica_done(result)

                on_quarantine = None
                if self.sim_snapshot_dir is not None:

                    def on_quarantine(key: str, failures) -> None:
                        # A poisoned replica never completes; its snapshots
                        # must not seed a future resume of the same key.
                        shutil.rmtree(
                            self._replica_snapshot_dir(spec_key, key.rsplit(":", 1)[1]),
                            ignore_errors=True,
                        )

                sup_obs = obs.supervisor_obs() if obs is not None else None
                supervisor = TaskSupervisor(
                    _run_replica,
                    n_workers=self.n_workers,
                    retry=self.retry,
                    validate=_is_replica_result,
                    on_result=on_result,
                    on_quarantine=on_quarantine,
                    fault_injector=self.fault_injector,
                    seed=self.base_seed,
                    obs=sup_obs,
                    guard=self.guard,
                    # harness failures (crashes, hangs, quarantines) land
                    # next to the flight dumps so `repro analyze` can
                    # explain replicas that never produced a journal row
                    failure_log_path=(
                        os.path.join(self.flight_dir, "harness-failures.jsonl")
                        if self.flight_dir is not None
                        else None
                    ),
                )
                out = supervisor.run(tasks)
                if sup_obs is not None:
                    sup_obs.close()
                if out.stats.aborted:
                    self.aborted = True
                    if not self.abort_reason:
                        self.abort_reason = out.stats.abort_reason
                self.harness_stats.merge(out.stats)
                fresh = {
                    int(key.rsplit(":", 1)[1]): value
                    for key, value in out.results.items()
                }
            replicas = []
            for i in range(self.reps):
                if i in done:
                    replicas.append(done[i])
                elif i in fresh:
                    replicas.append(fresh[i])
                # quarantined replicas are missing: reported via replicas_done
            return replicas
        finally:
            if obs is not None:
                obs.point_finished()

    def run_point(self, spec: CampaignSpec) -> CampaignPointReport:
        """Run every replica of one grid point and aggregate."""
        return aggregate_point(spec, self._run_replicas(spec), self.reps)

    def run_grid(
        self,
        mtbfs: Sequence[float],
        periods: Sequence[int],
        **spec_kwargs,
    ) -> CampaignReport:
        """Sweep fault rates × checkpoint periods.

        On a resource-guard abort the sweep stops early: already-run
        points are reported (``partial`` set), every journaled replica
        is durable, and :meth:`resume` completes the grid bit-identically
        once resources recover.
        """
        mtbfs = list(mtbfs)
        periods = list(periods)
        n_points = len(mtbfs) * len(periods)
        if self.obs is not None:
            self.obs.begin_campaign(n_points * self.reps, points=n_points)
        points: list[CampaignPointReport] = []
        try:
            for m in mtbfs:
                for p in periods:
                    points.append(
                        self.run_point(
                            CampaignSpec(node_mtbf_s=m, ckpt_period=p, **spec_kwargs)
                        )
                    )
                    if self.aborted:
                        break
                if self.aborted:
                    break
        finally:
            if self.obs is not None:
                # Exporters run even on a failed sweep: a partial trace
                # and metrics snapshot are the debugging artifacts.
                self.obs.end_campaign()
        return CampaignReport(
            points=points,
            reps=self.reps,
            base_seed=self.base_seed,
            partial=self.aborted or any(p.partial for p in points),
        )

    def close(self) -> None:
        """Release the journal file handle (safe to call repeatedly)."""
        if self._journal is not None:
            self._journal.close()
            self._journal = None
