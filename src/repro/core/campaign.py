"""Resilience campaigns: survivability statistics over fault sweeps.

A :class:`ResilienceCampaign` runs the full fault lifecycle (torn
checkpoints, nested faults, escalation, requeue — see
:mod:`repro.core.simulator`) across a grid of fault rates × checkpoint
configurations, replicating each point Monte-Carlo style, optionally
across worker processes.  Each grid point reports

* **completion probability** — the fraction of replicas that finished
  (the rest aborted after exhausting retries, requeues and spares),
* **expected makespan** over the completed replicas,
* a **wasted-time breakdown** — rework, downtime, checkpoint overhead,
  and requeue stalls,
* **faults per completion**, and
* a cross-check of the simulated waste against the Young/Daly
  analytical expectation (:mod:`repro.analytical.youngdaly`).

Workloads are the synthetic SPMD pattern used throughout the test suite
(compute → optional checkpoint → allreduce per timestep) so each grid
point is a pure function of its :class:`CampaignSpec` — which is what
makes the process-parallel path bit-identical to the sequential one.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.analytical.youngdaly import expected_waste
from repro.core.beo import AppBEO, ArchBEO
from repro.core.fault_injection import FaultInjector, FaultModel, RecoveryPolicy
from repro.core.instructions import Checkpoint, Collective, Compute
from repro.core.montecarlo import MonteCarloRunner
from repro.core.simulator import BESSTSimulator
from repro.models import ConstantModel
from repro.network import FullyConnected


@dataclass(frozen=True)
class CampaignSpec:
    """One grid point: a workload under one fault/checkpoint regime."""

    node_mtbf_s: float
    ckpt_period: int                #: timesteps between checkpoints
    level: int = 1                  #: checkpoint level taken each period
    nranks: int = 8
    nnodes: int = 4
    timesteps: int = 60
    compute_s: float = 0.1          #: modeled per-timestep compute cost
    ckpt_cost_s: float = 0.05       #: modeled checkpoint cost
    allreduce_bytes: int = 8
    recovery_time_s: float = 0.2    #: failure detection + restore downtime
    software_fraction: float = 1.0  #: share of transient (vs node-loss) faults

    def __post_init__(self) -> None:
        if self.node_mtbf_s <= 0:
            raise ValueError(f"node_mtbf_s must be > 0, got {self.node_mtbf_s}")
        if self.ckpt_period < 1:
            raise ValueError(f"ckpt_period must be >= 1, got {self.ckpt_period}")
        if self.timesteps < 1:
            raise ValueError(f"timesteps must be >= 1, got {self.timesteps}")

    @property
    def work_s(self) -> float:
        """Failure-free useful compute per rank."""
        return self.timesteps * self.compute_s

    @property
    def interval_s(self) -> float:
        """Compute time between checkpoints (the Young/Daly tau)."""
        return self.ckpt_period * self.compute_s

    @property
    def system_mtbf_s(self) -> float:
        return self.node_mtbf_s / self.nnodes


def build_campaign_app(spec: CampaignSpec) -> AppBEO:
    """The campaign's synthetic SPMD workload."""

    def builder(rank, nranks, params):
        body = []
        for ts in range(1, spec.timesteps + 1):
            body.append(Compute.of("work"))
            if ts % spec.ckpt_period == 0:
                body.append(Checkpoint.of(spec.level, "ckpt"))
            body.append(Collective("allreduce", nbytes=spec.allreduce_bytes))
        return body

    return AppBEO(f"campaign_p{spec.ckpt_period}_l{spec.level}", builder)


def build_campaign_simulator(
    spec: CampaignSpec,
    seed: int,
    policy: RecoveryPolicy,
    inject: bool = True,
) -> BESSTSimulator:
    """Assemble one replica's simulator (pure function of its inputs)."""
    arch = ArchBEO(
        "campaign",
        topology=FullyConnected(spec.nranks),
        cores_per_node=max(1, spec.nranks // spec.nnodes),
    )
    arch.bind("work", ConstantModel(spec.compute_s))
    arch.bind("ckpt", ConstantModel(spec.ckpt_cost_s))
    arch.recovery_time_s = spec.recovery_time_s
    injector = None
    if inject:
        injector = FaultInjector(
            FaultModel(
                node_mtbf_s=spec.node_mtbf_s,
                software_fraction=spec.software_fraction,
            ),
            nnodes=spec.nnodes,
            seed=seed + 777,
        )
    return BESSTSimulator(
        build_campaign_app(spec),
        arch,
        nranks=spec.nranks,
        seed=seed,
        monte_carlo=False,
        fault_injector=injector,
        recovery_policy=policy,
    )


#: event budget per replica; aborts make runs short, fault storms long
_REPLICA_MAX_EVENTS = 20_000_000


def _run_replica(payload: tuple) -> dict:
    """One Monte-Carlo replica → a slim, picklable metrics dict.

    Module-level so :class:`ProcessPoolExecutor` can ship it to workers.
    """
    spec, policy, seed = payload
    sim = build_campaign_simulator(spec, seed, policy)
    res = sim.run(max_events=_REPLICA_MAX_EVENTS)
    return {
        "seed": seed,
        "completed": res.completed,
        "total_time": res.total_time,
        "faults": res.faults_injected,
        "rollbacks": res.rollbacks,
        "nested_faults": res.nested_faults,
        "torn_checkpoints": res.torn_checkpoints,
        "verify_failures": res.verify_failures,
        "escalations": res.escalations,
        "requeues": res.requeues,
        "waste_rework": res.waste_rework,
        "waste_downtime": res.waste_downtime,
        "waste_requeue": res.waste_requeue,
        "checkpoint_time": res.checkpoint_time,
        "fault_log": [list(e) for e in sim.fault_injector.log.entries],
    }


@dataclass
class CampaignPointReport:
    """Aggregated survivability statistics of one grid point."""

    spec: CampaignSpec
    reps: int
    completion_probability: float
    expected_makespan: Optional[float]   #: mean over completed replicas
    makespan_p95: Optional[float]
    faults_per_completion: Optional[float]
    mean_faults: float
    mean_nested_faults: float
    mean_torn_checkpoints: float
    mean_verify_failures: float
    mean_requeues: float
    waste: dict                          #: rework/downtime/checkpoint/requeue means
    youngdaly: dict                      #: analytical cross-check
    replicas: list = field(default_factory=list, repr=False)

    def to_dict(self) -> dict:
        d = {
            "spec": asdict(self.spec),
            "reps": self.reps,
            "completion_probability": self.completion_probability,
            "expected_makespan": self.expected_makespan,
            "makespan_p95": self.makespan_p95,
            "faults_per_completion": self.faults_per_completion,
            "mean_faults": self.mean_faults,
            "mean_nested_faults": self.mean_nested_faults,
            "mean_torn_checkpoints": self.mean_torn_checkpoints,
            "mean_verify_failures": self.mean_verify_failures,
            "mean_requeues": self.mean_requeues,
            "waste": self.waste,
            "youngdaly": self.youngdaly,
        }
        return d


@dataclass
class CampaignReport:
    """The full campaign grid."""

    points: list[CampaignPointReport]
    reps: int
    base_seed: int

    def to_dict(self) -> dict:
        return {
            "campaign": "resilience",
            "reps": self.reps,
            "base_seed": self.base_seed,
            "points": [p.to_dict() for p in self.points],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def format(self) -> str:
        """Human-readable summary table."""
        lines = [
            "RESILIENCE CAMPAIGN "
            f"({self.reps} replicas/point, base seed {self.base_seed})",
            f"{'mtbf/node':>10s} {'period':>7s} {'P(done)':>8s} "
            f"{'makespan':>9s} {'faults':>7s} {'waste r/d/c/q':>24s} {'YD ratio':>9s}",
        ]
        for p in self.points:
            w = p.waste
            mk = f"{p.expected_makespan:.3f}" if p.expected_makespan is not None else "-"
            fpc = f"{p.faults_per_completion:.2f}" if p.faults_per_completion is not None else "-"
            ratio = p.youngdaly.get("ratio")
            yd = f"{ratio:.2f}" if ratio is not None else "-"
            lines.append(
                f"{p.spec.node_mtbf_s:>10.1f} {p.spec.ckpt_period:>7d} "
                f"{p.completion_probability:>8.2f} {mk:>9s} {fpc:>7s} "
                f"{w['rework']:>6.3f}/{w['downtime']:.3f}/{w['checkpoint']:.3f}/{w['requeue']:.3f}"
                f" {yd:>9s}"
            )
        return "\n".join(lines)


class ResilienceCampaign(MonteCarloRunner):
    """Process-parallel Monte-Carlo sweep of fault survivability.

    Parameters
    ----------
    reps / base_seed:
        As in :class:`MonteCarloRunner`; replica *i* of every grid point
        runs with seed ``base_seed + i``.
    policy:
        The :class:`RecoveryPolicy` applied to every replica.
    n_workers:
        Worker processes; 1 (default) runs in-process.  Both paths
        produce byte-identical reports (replicas are pure functions of
        ``(spec, policy, seed)``).
    """

    def __init__(
        self,
        reps: int = 20,
        base_seed: int = 0,
        policy: Optional[RecoveryPolicy] = None,
        n_workers: int = 1,
    ) -> None:
        super().__init__(reps=reps, base_seed=base_seed)
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.policy = policy or RecoveryPolicy()
        self.n_workers = n_workers

    # -- execution ---------------------------------------------------------------

    def _run_replicas(self, spec: CampaignSpec) -> list[dict]:
        payloads = [
            (spec, self.policy, self.base_seed + i) for i in range(self.reps)
        ]
        if self.n_workers == 1:
            return [_run_replica(p) for p in payloads]
        with ProcessPoolExecutor(max_workers=self.n_workers) as pool:
            return list(pool.map(_run_replica, payloads))

    def run_point(self, spec: CampaignSpec) -> CampaignPointReport:
        """Run every replica of one grid point and aggregate."""
        replicas = self._run_replicas(spec)
        completed = [r for r in replicas if r["completed"]]
        n_done = len(completed)
        makespans = np.array([r["total_time"] for r in completed])
        total_faults = sum(r["faults"] for r in replicas)

        def mean(key: str) -> float:
            return float(np.mean([r[key] for r in replicas]))

        waste = {
            "rework": mean("waste_rework"),
            "downtime": mean("waste_downtime"),
            "checkpoint": mean("checkpoint_time"),
            "requeue": mean("waste_requeue"),
        }
        return CampaignPointReport(
            spec=spec,
            reps=self.reps,
            completion_probability=n_done / self.reps,
            expected_makespan=float(makespans.mean()) if n_done else None,
            makespan_p95=float(np.percentile(makespans, 95)) if n_done else None,
            faults_per_completion=(total_faults / n_done) if n_done else None,
            mean_faults=mean("faults"),
            mean_nested_faults=mean("nested_faults"),
            mean_torn_checkpoints=mean("torn_checkpoints"),
            mean_verify_failures=mean("verify_failures"),
            mean_requeues=mean("requeues"),
            waste=waste,
            youngdaly=self._youngdaly_check(spec, replicas),
            replicas=replicas,
        )

    def run_grid(
        self,
        mtbfs: Sequence[float],
        periods: Sequence[int],
        **spec_kwargs,
    ) -> CampaignReport:
        """Sweep fault rates × checkpoint periods."""
        points = [
            self.run_point(
                CampaignSpec(node_mtbf_s=m, ckpt_period=p, **spec_kwargs)
            )
            for m in mtbfs
            for p in periods
        ]
        return CampaignReport(points=points, reps=self.reps, base_seed=self.base_seed)

    # -- analytical cross-check -----------------------------------------------------

    def _youngdaly_check(self, spec: CampaignSpec, replicas: list[dict]) -> dict:
        """Compare mean simulated waste with the Young/Daly expectation.

        The analytical model prices exactly what the simulator charges to
        waste + checkpoint overhead: E[runtime] − work.  ``ratio`` is
        simulated/predicted; at moderate fault rates (a handful of faults
        per run) it should sit within ±50 % (see tests/docs), the renewal
        approximation's documented accuracy band here.
        """
        predicted = expected_waste(
            spec.work_s,
            spec.interval_s,
            spec.ckpt_cost_s,
            spec.system_mtbf_s,
            restart_cost=spec.recovery_time_s,
        )
        completed = [r for r in replicas if r["completed"]]
        if not completed:
            return {
                "interval_s": spec.interval_s,
                "predicted_waste_s": predicted,
                "simulated_waste_s": None,
                "ratio": None,
            }
        simulated = float(
            np.mean(
                [
                    r["waste_rework"]
                    + r["waste_downtime"]
                    + r["waste_requeue"]
                    + r["checkpoint_time"]
                    for r in completed
                ]
            )
        )
        return {
            "interval_s": spec.interval_s,
            "predicted_waste_s": predicted,
            "simulated_waste_s": simulated,
            "ratio": simulated / predicted if predicted > 0 else None,
        }
