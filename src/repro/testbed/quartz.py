"""Quartz: the case-study machine (virtualised).

The real Quartz is 2,988 dual-Xeon nodes (36 cores, 128 GB) on a
two-stage Omni-Path fat tree.  The case study ran at most 1,000 ranks at
2 ranks/node (FTI ``node_size=2``), i.e. a 500-node allocation.

Ground-truth cost surfaces below are synthetic but shaped by the same
mechanisms the paper describes:

* ``lulesh_timestep`` — volume compute (``epr^3``), face exchange
  (``epr^2`` with mild fabric congestion), dt-allreduce (``log2 ranks``),
* ``fti_l1`` — node-local write of the node's checkpoint payload, with a
  coordination term that grows with the job size (FTI's coordinated
  protocol) and storage congestion,
* ``fti_l2`` — L1's local write plus partner copies crossing the
  oversubscribed fabric (scales hardest with both payload and ranks),
* ``fti_l3`` — L1 plus Reed-Solomon encoding (CPU) and parity exchange,
* ``fti_l4`` — every node flushing to the shared PFS.

Checkpoint payloads follow the LULESH state:
``6 fields * epr^3 * 8 B`` per rank, two ranks per node.
"""

from __future__ import annotations

import math

from repro.apps.lulesh import lulesh_state_bytes
from repro.network.fattree import TwoStageFatTree
from repro.testbed.machine import KernelTruth, VirtualMachine

#: the full machine
QUARTZ_NODES = 2988
#: nodes per edge switch / uplinks (Omni-Path 48-port edge, 2:1 tapered)
_NODES_PER_EDGE = 32
_UPLINKS = 16

#: case-study placement: FTI node_size = 2 ranks per node
RANKS_PER_NODE = 2

# -- ground-truth constants (synthetic machine physics) -----------------------
_STEP_VOLUME = 6.0e-7        # s per element
_STEP_SURFACE = 2.2e-6       # s per face element
_STEP_FABRIC = 2.5e-8        # s * epr^3.6 * ranks^0.35 fabric congestion
_STEP_ALLREDUCE = 8.0e-5     # s per log2(ranks) stage
_STEP_BASE = 2.0e-4          # s fixed

_L1_BASE = 2.0e-3
_L1_SSD_BW = 3.5e7           # bytes/s effective node-local write
_L1_CONGEST = 0.08           # * ranks^0.6 storage/coordination congestion
_L1_COORD = 4.0e-5           # s per rank (coordinated protocol)

_L2_BASE = 2.0e-2
_L2_NET_BW = 5.0e7           # bytes/s effective partner-copy bandwidth
_L2_CONGEST = 0.15           # * ranks^0.6 fabric congestion
_L2_COORD = 1.0e-4
_PARTNER_COPIES = 2

#: payload superlinearity: checkpoint files beyond the write-back-cache
#: scale pay progressively worse effective bandwidth, which is what makes
#: checkpoint overhead *grow* with problem size in Fig. 9
_PAYLOAD_EXP = 0.35
_PAYLOAD_REF = float(RANKS_PER_NODE * 6 * 10**3 * 8)  # node payload at epr=10


def _payload_factor(node_bytes: float) -> float:
    return (node_bytes / _PAYLOAD_REF) ** _PAYLOAD_EXP

_L3_ENCODE = 1.0e-9          # s per GF multiply-accumulate
_GROUP_SIZE = 4

_L4_BASE = 3.0e-2
_L4_PFS_BW = 5.0e9           # bytes/s aggregate PFS ingest
_L4_COORD = 1.0e-4


def _node_bytes(epr: int) -> int:
    return RANKS_PER_NODE * lulesh_state_bytes(epr)


def _step_truth(p) -> float:
    epr, r = int(p["epr"]), int(p["ranks"])
    return (
        _STEP_VOLUME * epr**3
        + _STEP_SURFACE * epr**2
        + _STEP_FABRIC * epr**3.6 * r**0.35
        + _STEP_ALLREDUCE * math.log2(max(r, 2))
        + _STEP_BASE
    )


def _force_truth(p) -> float:
    """Fine-grained instrumentation: the force/stress phase (~72% of a
    timestep).  Used by the granularity ablation (EXT7)."""
    return 0.72 * _step_truth(p)


def _eos_truth(p) -> float:
    """Fine-grained instrumentation: EOS + dt phase (~28% of a timestep)."""
    return 0.28 * _step_truth(p)


def _l1_truth(p) -> float:
    epr, r = int(p["epr"]), int(p["ranks"])
    nb = _node_bytes(epr)
    write = nb / _L1_SSD_BW * _payload_factor(nb) * (1 + _L1_CONGEST * r**0.6)
    return _L1_BASE + write + _L1_COORD * r


def _l2_truth(p) -> float:
    epr, r = int(p["epr"]), int(p["ranks"])
    nb = _node_bytes(epr)
    local = nb / _L1_SSD_BW * _payload_factor(nb)
    partner = (
        _PARTNER_COPIES
        * nb
        / _L2_NET_BW
        * _payload_factor(nb)
        * (1 + _L2_CONGEST * r**0.6)
    )
    return _L2_BASE + local + partner + _L2_COORD * r


def _l3_truth(p) -> float:
    epr, r = int(p["epr"]), int(p["ranks"])
    nb = _node_bytes(epr)
    local = nb / _L1_SSD_BW * _payload_factor(nb)
    encode = _L3_ENCODE * _GROUP_SIZE * _GROUP_SIZE * nb
    parity_xfer = nb / _L2_NET_BW * _payload_factor(nb) * (1 + _L2_CONGEST * r**0.6)
    return _L2_BASE + local + encode + parity_xfer + _L2_COORD * r


def _l4_truth(p) -> float:
    epr, r = int(p["epr"]), int(p["ranks"])
    nb = _node_bytes(epr)
    total_bytes = r * lulesh_state_bytes(epr)
    return (
        _L4_BASE
        + total_bytes / _L4_PFS_BW * _payload_factor(nb)
        + _L4_COORD * r
    )


def make_quartz(
    allocation_nodes: int = 500,
    ranks_per_node: int = RANKS_PER_NODE,
) -> VirtualMachine:
    """The virtual Quartz.

    Parameters
    ----------
    allocation_nodes:
        Size of the job allocation (the case study's partition capped runs
        at 1,000 ranks = 500 nodes).  Pass up to :data:`QUARTZ_NODES`, or
        beyond it for a *notional* larger Quartz.
    ranks_per_node:
        Placement density (FTI node_size; 2 in the case study).
    """
    if allocation_nodes < 1:
        raise ValueError(f"allocation_nodes must be >= 1, got {allocation_nodes}")
    topo = TwoStageFatTree(
        allocation_nodes, nodes_per_edge=_NODES_PER_EDGE, uplinks_per_edge=_UPLINKS
    )
    kernels = {
        "lulesh_timestep": KernelTruth(_step_truth, cv=0.06, outlier_p=0.03, outlier_scale=1.5),
        "lulesh_force": KernelTruth(_force_truth, cv=0.07, outlier_p=0.03, outlier_scale=1.5),
        "lulesh_eos": KernelTruth(_eos_truth, cv=0.09, outlier_p=0.03, outlier_scale=1.5),
        "fti_l1": KernelTruth(_l1_truth, cv=0.25, outlier_p=0.08, outlier_scale=1.8),
        "fti_l2": KernelTruth(_l2_truth, cv=0.22, outlier_p=0.10, outlier_scale=1.8),
        "fti_l3": KernelTruth(_l3_truth, cv=0.22, outlier_p=0.08, outlier_scale=1.8),
        "fti_l4": KernelTruth(_l4_truth, cv=0.35, outlier_p=0.12, outlier_scale=2.0),
    }
    return VirtualMachine(
        name="quartz",
        nnodes=allocation_nodes,
        cores_per_node=36,
        topology=topo,
        kernels=kernels,
        ranks_per_node=ranks_per_node,
    )
