"""Vulcan: the BG/Q machine of BE-SST's original validation (Fig. 1).

The real Vulcan was a 24,576-node BlueGene/Q (16 cores/node, 5-D torus).
Fig. 1 validates CMT-bone timestep distributions up to a 128k-core
allocation and predicts to 1M ranks.  The virtual Vulcan carries the
``cmtbone_timestep`` ground truth over (elem_size, elements, ranks):
spectral-element volume work (``elements * elem_size^4`` — the dominant
small dense matrix multiplies), face exchange, and a shallow torus
collective term.
"""

from __future__ import annotations

import math

from repro.network.torus import Torus
from repro.testbed.machine import KernelTruth, VirtualMachine

_CMT_VOLUME = 2.0e-8     # s per point * elem_size (matmul term)
_CMT_SURFACE = 4.0e-7    # s per face point
_CMT_TORUS = 6.0e-5      # s per log2(ranks) (dt reduce over the torus)
_CMT_BASE = 1.0e-4


def _cmtbone_truth(p) -> float:
    es = int(p["elem_size"])
    el = int(p["elements"])
    r = int(p["ranks"])
    return (
        _CMT_VOLUME * el * es**4
        + _CMT_SURFACE * el * es**2 * (1 + 0.04 * r**0.25)
        + _CMT_TORUS * math.log2(max(r, 2))
        + _CMT_BASE
    )


def make_vulcan(allocation_nodes: int = 8192, ranks_per_node: int = 16) -> VirtualMachine:
    """The virtual Vulcan.

    Default allocation: 8,192 nodes * 16 ranks/node = the 128k-core
    validation limit of Fig. 1.  Torus dimensions approximate BG/Q's
    5-D shape for the allocation size.
    """
    if allocation_nodes < 1:
        raise ValueError(f"allocation_nodes must be >= 1, got {allocation_nodes}")
    # factor the allocation into a 5-D near-cubic torus
    dims = _balanced_dims(allocation_nodes, ndims=5)
    topo = Torus(dims)
    kernels = {
        "cmtbone_timestep": KernelTruth(
            _cmtbone_truth, cv=0.08, outlier_p=0.04, outlier_scale=1.4
        ),
    }
    return VirtualMachine(
        name="vulcan",
        nnodes=topo.num_nodes,
        cores_per_node=16,
        topology=topo,
        kernels=kernels,
        ranks_per_node=ranks_per_node,
    )


def _balanced_dims(n: int, ndims: int = 5) -> tuple[int, ...]:
    """Factor *n* into *ndims* near-equal factors (>= the target size).

    Rounds the allocation up to the next factorisable size so the torus
    holds at least *n* nodes.
    """
    if n < 1 or ndims < 1:
        raise ValueError("n and ndims must be >= 1")
    # greedy: repeatedly take the ceiling root
    dims = []
    remaining = n
    for i in range(ndims, 0, -1):
        d = max(1, math.ceil(remaining ** (1.0 / i)))
        dims.append(d)
        remaining = max(1, math.ceil(remaining / d))
    return tuple(sorted(dims, reverse=True))
