"""Benchmark campaigns: instrumented sweeps producing model training data.

This is the "Instrument code / run benchmarks / collect samples" step of
the Model Development phase (Fig. 2, left): sweep the parameter grid on a
virtual machine and organise the timing samples into per-kernel
:class:`~repro.models.dataset.BenchmarkDataset` tables.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.models.dataset import BenchmarkDataset
from repro.testbed.machine import VirtualMachine

#: the case study's Table II grid
CASE_STUDY_EPRS = (5, 10, 15, 20, 25)
CASE_STUDY_RANKS = (8, 64, 216, 512, 1000)


def case_study_grid(
    eprs: Sequence[int] = CASE_STUDY_EPRS,
    ranks: Sequence[int] = CASE_STUDY_RANKS,
) -> list[dict]:
    """The 25 (epr, ranks) combinations of Table II."""
    return [{"epr": e, "ranks": r} for e in eprs for r in ranks]


def run_benchmark_campaign(
    machine: VirtualMachine,
    kernels: Iterable[str],
    grid: Optional[Sequence[Mapping[str, float]]] = None,
    samples_per_point: int = 10,
    seed: int = 0,
) -> dict[str, BenchmarkDataset]:
    """Benchmark every kernel at every grid point.

    Returns ``{kernel: BenchmarkDataset}``; parameter names are taken
    from the first grid point (all points must share them).
    """
    grid = list(grid) if grid is not None else case_study_grid()
    if not grid:
        raise ValueError("empty parameter grid")
    param_names = tuple(sorted(grid[0]))
    for point in grid:
        if tuple(sorted(point)) != param_names:
            raise ValueError(
                f"inconsistent grid point {dict(point)!r}; expected keys {param_names}"
            )
    out: dict[str, BenchmarkDataset] = {}
    for kernel in kernels:
        ds = BenchmarkDataset(param_names, kernel=kernel)
        for point in grid:
            samples = machine.measure(
                kernel, point, nsamples=samples_per_point, seed=seed
            )
            ds.add_samples(point, samples)
        out[kernel] = ds
    return out
