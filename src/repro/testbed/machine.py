"""Virtual machine: ground-truth kernel costs + measurement noise.

A :class:`VirtualMachine` is the reproduction's stand-in for benchmarking
on a real system.  Each instrumented kernel has a :class:`KernelTruth` —
its *actual* mean cost function on this machine plus a noise law
(log-normal jitter with an outlier mixture, the shape HPC timing data
tends to have).  The MODSIM workflow only ever sees samples drawn from
these truths, exactly as it would only see timer output on Quartz.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.ft import FTScenario
from repro.network.topology import Topology


@dataclass
class KernelTruth:
    """Ground truth for one instrumented kernel.

    Parameters
    ----------
    fn:
        ``fn(params) -> mean seconds`` — the machine's real cost surface.
    cv:
        Coefficient of variation of run-to-run noise.
    outlier_p / outlier_scale:
        With probability *outlier_p* a sample is further multiplied by
        *outlier_scale* (OS jitter, storage contention spikes).
    """

    fn: Callable[[Mapping[str, float]], float]
    cv: float = 0.05
    outlier_p: float = 0.0
    outlier_scale: float = 1.5

    def __post_init__(self) -> None:
        if self.cv < 0:
            raise ValueError(f"cv must be >= 0, got {self.cv}")
        if not 0 <= self.outlier_p < 1:
            raise ValueError(f"outlier_p must be in [0,1), got {self.outlier_p}")

    def mean(self, params: Mapping[str, float]) -> float:
        v = float(self.fn(params))
        if v <= 0 or not np.isfinite(v):
            raise ValueError(
                f"ground truth produced invalid mean {v!r} for {dict(params)!r}"
            )
        return v

    def sample(
        self, params: Mapping[str, float], rng: np.random.Generator, n: int = 1
    ) -> np.ndarray:
        """Draw *n* noisy observations (mean-preserving log-normal)."""
        mu = self.mean(params)
        if self.cv == 0:
            out = np.full(n, mu)
        else:
            sigma = np.sqrt(np.log1p(self.cv**2))
            out = mu * rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma, size=n)
        if self.outlier_p > 0:
            hits = rng.random(n) < self.outlier_p
            out = np.where(hits, out * self.outlier_scale, out)
        return out


@dataclass
class MeasuredRun:
    """One measured full-application run on the testbed."""

    total_time: float
    timestep_times: np.ndarray          #: per-timestep job time (straggler max)
    checkpoint_marks: list[tuple[float, int]]  #: (completion time, level)
    checkpoint_time: float              #: total time spent checkpointing

    @property
    def timesteps(self) -> int:
        return int(self.timestep_times.size)

    def cumulative_times(self) -> np.ndarray:
        """Job time after each timestep (the measured curves of Figs. 7-8).

        Checkpoint costs are already folded into the timestep that took
        them, so this is a plain cumulative sum.
        """
        return np.cumsum(self.timestep_times)


class VirtualMachine:
    """A benchmarkable synthetic machine.

    Parameters
    ----------
    name:
        Machine label.
    nnodes / cores_per_node:
        Capacity (measurements reject allocations beyond it).
    topology:
        Interconnect topology (shared with ArchBEOs built for this
        machine).
    kernels:
        Instrumented kernel name -> :class:`KernelTruth`.
    ranks_per_node:
        Placement used by the case study (FTI ``node_size``).
    """

    def __init__(
        self,
        name: str,
        nnodes: int,
        cores_per_node: int,
        topology: Topology,
        kernels: Mapping[str, KernelTruth],
        ranks_per_node: int = 2,
    ) -> None:
        if nnodes < 1 or cores_per_node < 1 or ranks_per_node < 1:
            raise ValueError("machine dimensions must be >= 1")
        self.name = name
        self.nnodes = nnodes
        self.cores_per_node = cores_per_node
        self.topology = topology
        self.kernels = dict(kernels)
        self.ranks_per_node = ranks_per_node

    @property
    def max_ranks(self) -> int:
        return self.nnodes * self.ranks_per_node

    def check_allocation(self, nranks: int) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        if nranks > self.max_ranks:
            raise ValueError(
                f"{self.name} cannot run {nranks} ranks at "
                f"{self.ranks_per_node} ranks/node with {self.nnodes} nodes "
                f"(max {self.max_ranks})"
            )

    def truth(self, kernel: str) -> KernelTruth:
        try:
            return self.kernels[kernel]
        except KeyError:
            raise KeyError(
                f"{self.name} has no instrumented kernel {kernel!r}; "
                f"available: {sorted(self.kernels)}"
            ) from None

    def true_mean(self, kernel: str, params: Mapping[str, float]) -> float:
        """Ground-truth mean (test oracle; the real workflow can't see this)."""
        return self.truth(kernel).mean(params)

    def measure(
        self,
        kernel: str,
        params: Mapping[str, float],
        nsamples: int = 10,
        seed: int = 0,
    ) -> np.ndarray:
        """Benchmark *kernel* at *params*: noisy timing samples."""
        if nsamples < 1:
            raise ValueError(f"nsamples must be >= 1, got {nsamples}")
        if "ranks" in params:
            self.check_allocation(int(params["ranks"]))
        from repro.des.rng import _stable_hash

        rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=seed,
                spawn_key=(
                    _stable_hash(f"{self.name}/{kernel}"),
                    sum(int(1000 * v) for v in params.values()) & 0x7FFFFFFF,
                ),
            )
        )
        return self.truth(kernel).sample(params, rng, nsamples)


def measure_application_run(
    machine: VirtualMachine,
    nranks: int,
    timesteps: int,
    scenario: FTScenario,
    kernel_params: Mapping[str, float],
    timestep_kernel: str = "lulesh_timestep",
    seed: int = 0,
) -> MeasuredRun:
    """Measure a full application run on the testbed (the ground truth of
    Figs. 7-8 / Table IV).

    Per timestep the job time is the *maximum over ranks* of that
    timestep's noisy per-rank duration (bulk-synchronous straggler
    effect); checkpoint instances behave the same using their kernel's
    truth.
    """
    machine.check_allocation(nranks)
    if timesteps < 1:
        raise ValueError(f"timesteps must be >= 1, got {timesteps}")
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(nranks, timesteps))
    )
    params = dict(kernel_params)
    params["ranks"] = nranks

    step_truth = machine.truth(timestep_kernel)
    # (timesteps, nranks) per-rank draws -> per-timestep straggler max
    per_rank = step_truth.sample(params, rng, timesteps * nranks).reshape(
        timesteps, nranks
    )
    step_times = per_rank.max(axis=1)

    clock = 0.0
    ckpt_marks: list[tuple[float, int]] = []
    ckpt_total = 0.0
    times = np.empty(timesteps)
    for ts in range(1, timesteps + 1):
        dt = float(step_times[ts - 1])
        for level in scenario.checkpoints_due(ts):
            truth = machine.truth(scenario.kernel_for(level))
            draws = truth.sample(params, rng, nranks)
            ckpt_dt = float(draws.max())
            dt += ckpt_dt
            ckpt_total += ckpt_dt
            ckpt_marks.append((clock + dt, level))
        clock += dt
        times[ts - 1] = dt
    return MeasuredRun(
        total_time=clock,
        timestep_times=times,
        checkpoint_marks=ckpt_marks,
        checkpoint_time=ckpt_total,
    )
