"""The virtual testbed: synthetic stand-ins for Quartz and Vulcan.

The paper calibrates and validates against *measurements* of real LLNL
machines.  Without that hardware, this package provides
:class:`~repro.testbed.machine.VirtualMachine` — a machine whose
"physics" is a set of ground-truth kernel cost functions (richer than the
model families fitted to them: cross terms, congestion steps, lognormal
noise with outliers).  Everything downstream treats the testbed exactly
like a real machine:

* :meth:`~repro.testbed.machine.VirtualMachine.measure` returns noisy
  timing samples (the instrumentation step of Fig. 2),
* :func:`~repro.testbed.executor.run_benchmark_campaign` sweeps the
  case-study grid into :class:`~repro.models.dataset.BenchmarkDataset`
  tables,
* :func:`~repro.testbed.machine.measure_application_run` produces
  measured full-application runtimes (the ground truth of Figs. 7-8 and
  Table IV), with per-timestep straggler effects (max over ranks).

``quartz.py`` and ``vulcan.py`` hold the machine definitions; notional
variants (more memory per node, more nodes) support the prediction
regions of Figs. 5-6.
"""

from repro.testbed.machine import (
    VirtualMachine,
    KernelTruth,
    MeasuredRun,
    measure_application_run,
)
from repro.testbed.executor import run_benchmark_campaign, case_study_grid
from repro.testbed.quartz import make_quartz, QUARTZ_NODES
from repro.testbed.vulcan import make_vulcan

__all__ = [
    "VirtualMachine",
    "KernelTruth",
    "MeasuredRun",
    "measure_application_run",
    "run_benchmark_campaign",
    "case_study_grid",
    "make_quartz",
    "QUARTZ_NODES",
    "make_vulcan",
]
