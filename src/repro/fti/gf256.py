"""GF(2^8) arithmetic for Reed–Solomon erasure coding.

Uses the standard Reed–Solomon polynomial ``x^8 + x^4 + x^3 + x^2 + 1``
(0x11D), for which 2 is a primitive element, with exp/log tables for
constant-time multiply/divide.  Vectorised helpers
operate on NumPy ``uint8`` arrays so encoding whole checkpoint blocks is a
table-lookup-and-XOR pipeline rather than a Python loop.
"""

from __future__ import annotations

import numpy as np

_POLY = 0x11D


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= _POLY
    exp[255:510] = exp[0:255]  # duplicate so exp[log a + log b] needs no mod
    return exp, log


_EXP, _LOG = _build_tables()


class GF256:
    """Namespace of GF(256) field operations (all static)."""

    #: field order
    ORDER = 256
    #: reduction polynomial
    POLYNOMIAL = _POLY

    @staticmethod
    def add(a: int, b: int) -> int:
        """Field addition (XOR)."""
        return (a ^ b) & 0xFF

    # subtraction == addition in characteristic 2
    sub = add

    @staticmethod
    def mul(a: int, b: int) -> int:
        """Field multiplication via log/exp tables."""
        if a == 0 or b == 0:
            return 0
        return int(_EXP[int(_LOG[a]) + int(_LOG[b])])

    @staticmethod
    def div(a: int, b: int) -> int:
        """Field division; raises ZeroDivisionError on b == 0."""
        if b == 0:
            raise ZeroDivisionError("GF(256) division by zero")
        if a == 0:
            return 0
        return int(_EXP[(int(_LOG[a]) - int(_LOG[b])) % 255])

    @staticmethod
    def inv(a: int) -> int:
        """Multiplicative inverse; raises ZeroDivisionError on 0."""
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(256)")
        return int(_EXP[(255 - int(_LOG[a])) % 255])

    @staticmethod
    def pow(a: int, n: int) -> int:
        """``a**n`` in the field (n may be negative for nonzero a)."""
        if a == 0:
            if n < 0:
                raise ZeroDivisionError("0 has no inverse in GF(256)")
            return 0 if n != 0 else 1
        return int(_EXP[(int(_LOG[a]) * n) % 255])

    @staticmethod
    def exp(n: int) -> int:
        """Generator power: ``g**n`` for the generator g = 2."""
        return int(_EXP[n % 255])

    # -- vectorised block operations -------------------------------------------

    @staticmethod
    def mul_block(scalar: int, block: np.ndarray) -> np.ndarray:
        """Multiply every byte of *block* by *scalar*."""
        block = np.asarray(block, dtype=np.uint8)
        if scalar == 0:
            return np.zeros_like(block)
        if scalar == 1:
            return block.copy()
        shift = int(_LOG[scalar])
        out = np.zeros_like(block)
        nz = block != 0
        out[nz] = _EXP[_LOG[block[nz]] + shift]
        return out

    @staticmethod
    def addmul_block(acc: np.ndarray, scalar: int, block: np.ndarray) -> None:
        """In-place ``acc ^= scalar * block`` (the encoding inner loop)."""
        if scalar == 0:
            return
        acc ^= GF256.mul_block(scalar, block)

    # -- linear algebra -----------------------------------------------------------

    @staticmethod
    def mat_inv(m: np.ndarray) -> np.ndarray:
        """Invert a square GF(256) matrix by Gauss–Jordan elimination.

        Raises
        ------
        np.linalg.LinAlgError
            If the matrix is singular.
        """
        m = np.array(m, dtype=np.uint8)
        n = m.shape[0]
        if m.shape != (n, n):
            raise ValueError(f"matrix must be square, got {m.shape}")
        aug = np.concatenate([m, np.eye(n, dtype=np.uint8)], axis=1)
        for col in range(n):
            pivot = None
            for row in range(col, n):
                if aug[row, col] != 0:
                    pivot = row
                    break
            if pivot is None:
                raise np.linalg.LinAlgError("singular GF(256) matrix")
            if pivot != col:
                aug[[col, pivot]] = aug[[pivot, col]]
            inv_p = GF256.inv(int(aug[col, col]))
            aug[col] = GF256.mul_block(inv_p, aug[col])
            for row in range(n):
                if row != col and aug[row, col] != 0:
                    GF256.addmul_block(aug[row], int(aug[row, col]), aug[col])
        return aug[:, n:]

    @staticmethod
    def mat_vec_blocks(matrix: np.ndarray, blocks: np.ndarray) -> np.ndarray:
        """Matrix × vector-of-blocks product.

        ``matrix`` is (m, k) over GF(256); ``blocks`` is (k, L) bytes.
        Returns (m, L): each output block is the GF-linear combination of
        the input blocks given by a matrix row.
        """
        matrix = np.asarray(matrix, dtype=np.uint8)
        blocks = np.asarray(blocks, dtype=np.uint8)
        m, k = matrix.shape
        if blocks.shape[0] != k:
            raise ValueError(
                f"matrix has {k} columns but {blocks.shape[0]} blocks given"
            )
        out = np.zeros((m, blocks.shape[1]), dtype=np.uint8)
        for i in range(m):
            for j in range(k):
                GF256.addmul_block(out[i], int(matrix[i, j]), blocks[j])
        return out
