"""Checkpoint storage backends.

Three stores with distinct failure semantics:

* :class:`LocalStore` — per-node storage (node-local SSD/ramdisk); its
  contents vanish when the node fails,
* partner copies and RS shards also live in peers' :class:`LocalStore`
  under distinct namespaces,
* :class:`PFSStore` — the parallel file system; survives node failures.

Stores hold real bytes so recovery tests round-trip actual data.
"""

from __future__ import annotations

from typing import Optional


class StorageError(RuntimeError):
    """Raised on invalid store operations."""


class LocalStore:
    """Key/value byte store private to one node."""

    def __init__(self, node: int) -> None:
        self.node = node
        self._data: dict[str, bytes] = {}
        self.failed = False
        self.bytes_written = 0
        self.torn_writes = 0
        #: keys invalidated after the fact (silent corruption discovered
        #: by a later detection point); the bytes stay on disk but reads
        #: refuse to serve them
        self.corrupt_keys: set[str] = set()

    def write(self, key: str, blob: bytes) -> None:
        if self.failed:
            raise StorageError(f"node {self.node} has failed; write rejected")
        self._data[key] = bytes(blob)
        self.corrupt_keys.discard(key)  # fresh bytes supersede the taint
        self.bytes_written += len(blob)

    def torn_write(self, key: str) -> None:
        """Model an in-place overwrite interrupted mid-write: the previous
        bytes under *key* are destroyed and nothing valid replaces them.

        Node-local checkpoint files are rewritten in place once storage is
        tight, so a fault during the write loses old and new data alike.
        """
        self._data.pop(key, None)
        self.torn_writes += 1

    def mark_corrupt(self, key: str) -> None:
        """Invalidate *key*: the stored bytes are silently corrupt.

        Subsequent reads return None, exactly like lost data — recovery
        walks past the version without special-casing why it is bad.
        """
        if key in self._data:
            self.corrupt_keys.add(key)

    def read(self, key: str) -> Optional[bytes]:
        """The stored bytes, or None if missing / node failed / corrupt."""
        if self.failed or key in self.corrupt_keys:
            return None
        return self._data.get(key)

    def delete(self, key: str) -> None:
        self._data.pop(key, None)
        self.corrupt_keys.discard(key)

    def clear(self) -> None:
        self._data.clear()
        self.corrupt_keys.clear()

    def fail(self) -> None:
        """Simulate node loss: all local checkpoint data is gone."""
        self.failed = True
        self._data.clear()
        self.corrupt_keys.clear()

    def repair(self) -> None:
        """Bring the (replacement) node back with empty storage."""
        self.failed = False
        self._data.clear()
        self.corrupt_keys.clear()

    @property
    def used_bytes(self) -> int:
        return sum(len(v) for v in self._data.values())

    def keys(self) -> list[str]:
        return sorted(self._data)


class PFSStore:
    """The parallel file system: shared, survives node failures."""

    def __init__(self) -> None:
        self._data: dict[str, bytes] = {}
        self.bytes_written = 0
        self.corrupt_keys: set[str] = set()

    def write(self, key: str, blob: bytes) -> None:
        self._data[key] = bytes(blob)
        self.corrupt_keys.discard(key)
        self.bytes_written += len(blob)

    def mark_corrupt(self, key: str) -> None:
        """Invalidate *key* (see :meth:`LocalStore.mark_corrupt`)."""
        if key in self._data:
            self.corrupt_keys.add(key)

    def read(self, key: str) -> Optional[bytes]:
        if key in self.corrupt_keys:
            return None
        return self._data.get(key)

    def delete(self, key: str) -> None:
        self._data.pop(key, None)
        self.corrupt_keys.discard(key)

    @property
    def used_bytes(self) -> int:
        return sum(len(v) for v in self._data.values())

    def keys(self) -> list[str]:
        return sorted(self._data)
