"""Systematic Reed–Solomon erasure code over GF(256).

Encodes ``k`` data shards into ``m`` parity shards using a Vandermonde
generator; any ``k`` of the ``k + m`` shards reconstruct the data, i.e. up
to ``m`` known erasures are tolerated.  This is the coding scheme FTI's
level-3 checkpointing uses to protect a group's checkpoint files.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.fti.gf256 import GF256


class RSDecodeError(RuntimeError):
    """Raised when fewer than *k* shards survive."""


class ReedSolomonCode:
    """An (k + m, k) systematic erasure code.

    Parameters
    ----------
    k:
        Number of data shards.
    m:
        Number of parity shards (erasure tolerance).
    """

    def __init__(self, k: int, m: int) -> None:
        if k < 1 or m < 0:
            raise ValueError(f"invalid code parameters k={k}, m={m}")
        if k + m > GF256.ORDER - 1:
            raise ValueError(f"k + m must be <= 255, got {k + m}")
        self.k = k
        self.m = m
        # Parity rows of a systematic Vandermonde-derived generator:
        # row i evaluates the data polynomial at point x_i = g^(k + i).
        # Using distinct evaluation points for data (implicit identity via
        # Lagrange basis) keeps every k x k submatrix invertible.
        self._eval_points = [GF256.exp(i) for i in range(k + m)]

    # -- internal: Lagrange-style generator ---------------------------------------

    def _row_for_point(self, x: int) -> np.ndarray:
        """Row mapping data shards -> value at evaluation point *x*.

        Data shard *j* is defined as the codeword value at point
        ``_eval_points[j]``; the polynomial interpolating those values is
        evaluated at *x* via Lagrange basis coefficients.
        """
        pts = self._eval_points[: self.k]
        row = np.zeros(self.k, dtype=np.uint8)
        for j in range(self.k):
            num, den = 1, 1
            for l in range(self.k):
                if l == j:
                    continue
                num = GF256.mul(num, GF256.add(x, pts[l]))
                den = GF256.mul(den, GF256.add(pts[j], pts[l]))
            row[j] = GF256.div(num, den)
        return row

    def generator_rows(self, indices: Sequence[int]) -> np.ndarray:
        """Generator rows for the given shard indices (0..k+m-1)."""
        rows = []
        for idx in indices:
            if not 0 <= idx < self.k + self.m:
                raise IndexError(f"shard index {idx} out of range")
            if idx < self.k:
                row = np.zeros(self.k, dtype=np.uint8)
                row[idx] = 1
            else:
                row = self._row_for_point(self._eval_points[idx])
            rows.append(row)
        return np.array(rows, dtype=np.uint8)

    # -- public API ------------------------------------------------------------------

    @staticmethod
    def _normalise(shards: Sequence[bytes]) -> tuple[np.ndarray, int]:
        """Stack byte shards into a (k, L) array, padding to max length."""
        lengths = [len(s) for s in shards]
        L = max(lengths) if lengths else 0
        arr = np.zeros((len(shards), L), dtype=np.uint8)
        for i, s in enumerate(shards):
            arr[i, : len(s)] = np.frombuffer(bytes(s), dtype=np.uint8)
        return arr, L

    def encode(self, data_shards: Sequence[bytes]) -> list[bytes]:
        """Compute the *m* parity shards for *data_shards* (length k).

        Shards may have unequal lengths; all are implicitly zero-padded to
        the longest, and parity shards have that padded length.
        """
        if len(data_shards) != self.k:
            raise ValueError(f"expected {self.k} data shards, got {len(data_shards)}")
        if self.m == 0:
            return []
        blocks, _ = self._normalise(data_shards)
        parity_rows = self.generator_rows(range(self.k, self.k + self.m))
        parity = GF256.mat_vec_blocks(parity_rows, blocks)
        return [bytes(p) for p in parity]

    def decode(
        self,
        shards: Sequence[Optional[bytes]],
        lengths: Optional[Sequence[int]] = None,
    ) -> list[bytes]:
        """Reconstruct the k data shards.

        Parameters
        ----------
        shards:
            Length ``k + m`` list; ``None`` marks an erased shard.
        lengths:
            Original data-shard lengths (to strip padding); defaults to
            the padded length.

        Raises
        ------
        RSDecodeError
            If fewer than k shards are present.
        """
        if len(shards) != self.k + self.m:
            raise ValueError(
                f"expected {self.k + self.m} shard slots, got {len(shards)}"
            )
        present = [i for i, s in enumerate(shards) if s is not None]
        if len(present) < self.k:
            raise RSDecodeError(
                f"only {len(present)} of {self.k + self.m} shards present; "
                f"need at least {self.k}"
            )
        use = present[: self.k]
        blocks, L = self._normalise([shards[i] for i in use])
        gen = self.generator_rows(use)
        inv = GF256.mat_inv(gen)
        data = GF256.mat_vec_blocks(inv, blocks)
        out = []
        for j in range(self.k):
            n = lengths[j] if lengths is not None else L
            out.append(bytes(data[j][:n]))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReedSolomonCode(k={self.k}, m={self.m})"
