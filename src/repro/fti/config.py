"""FTI configuration: checkpoint levels and library parameters."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CheckpointLevel(enum.IntEnum):
    """The four FTI checkpoint levels of Table I."""

    L1 = 1  #: checkpoint file saved on local node
    L2 = 2  #: local + sent to neighbour node(s) in group
    L3 = 3  #: Reed-Solomon erasure coding across the group
    L4 = 4  #: flushed to the parallel file system

    def describe(self) -> str:
        return {
            CheckpointLevel.L1: "checkpoint file saved on local node",
            CheckpointLevel.L2: (
                "checkpoint file saved on local node AND sent to neighbor "
                "node(s) in group"
            ),
            CheckpointLevel.L3: (
                "checkpoint files encoded via Reed-Solomon (RS) erasure code"
            ),
            CheckpointLevel.L4: (
                "all checkpoint files flushed to parallel file system"
            ),
        }[self]


@dataclass
class FTIConfig:
    """Parameters of the checkpoint library.

    Parameters
    ----------
    group_size:
        Nodes per FTI group (the paper's case study uses 4).
    node_size:
        Ranks per node (the paper's case study uses 2).
    partner_copies:
        Neighbour nodes receiving an L2 partner copy.  The paper's text
        describes two neighbours; classic FTI uses one.  Default 2 to
        match the paper.
    ckpt_interval:
        Timesteps between checkpoints (40 in the case study), exposed here
        for convenience of workflow drivers.
    keep_versions:
        Checkpoint versions retained per level.  1 (classic FTI) purges
        the previous instance as soon as a new one commits; > 1 keeps a
        history so recovery can reach *past* a version invalidated after
        the fact — the silent-data-corruption case, where the newest
        checkpoint was written while the corruption was already latent.
    """

    group_size: int = 4
    node_size: int = 2
    partner_copies: int = 2
    ckpt_interval: int = 40
    keep_versions: int = 1

    def __post_init__(self) -> None:
        if self.group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {self.group_size}")
        if self.keep_versions < 1:
            raise ValueError(
                f"keep_versions must be >= 1, got {self.keep_versions}"
            )
        if self.node_size < 1:
            raise ValueError(f"node_size must be >= 1, got {self.node_size}")
        if not 0 <= self.partner_copies < self.group_size or (
            self.group_size == 1 and self.partner_copies > 0
        ):
            raise ValueError(
                f"partner_copies={self.partner_copies} must be in "
                f"[0, group_size={self.group_size})"
            )
        if self.ckpt_interval < 1:
            raise ValueError(f"ckpt_interval must be >= 1, got {self.ckpt_interval}")

    @property
    def ranks_multiple(self) -> int:
        """FTI requires the rank count to be a multiple of
        ``group_size * node_size``."""
        return self.group_size * self.node_size

    def validate_ranks(self, nranks: int) -> None:
        if nranks < 1 or nranks % self.ranks_multiple != 0:
            raise ValueError(
                f"FTI requires ranks ({nranks}) to be a positive multiple of "
                f"group_size*node_size = {self.ranks_multiple}"
            )

    @property
    def rs_tolerance(self) -> int:
        """Concurrent node losses per group tolerated at L3."""
        return self.group_size // 2
