"""The FTI library façade: multi-level checkpoint and recovery.

Orchestrates the stores, group layout and RS codec into the four
checkpoint levels, and emits :class:`CheckpointReceipt` cost records (how
many bytes moved through which subsystem) that the virtual testbed prices
into wall-clock time.

Semantics implemented (and tested in ``tests/fti/``):

========  ==========================================================
Level     Recoverable after node failures F iff...
========  ==========================================================
L1        F is empty (local data only survives on healthy nodes)
L2        every failed node has >= 1 surviving partner holding a copy
L3        every group has at most ``group_size // 2`` failed nodes
L4        always (PFS survives)
========  ==========================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.fti.config import CheckpointLevel, FTIConfig
from repro.fti.groups import GroupLayout
from repro.fti.reedsolomon import ReedSolomonCode, RSDecodeError
from repro.fti.storage import LocalStore, PFSStore


class RecoveryError(RuntimeError):
    """Raised when the requested checkpoint level cannot be recovered."""


def _record_fti_metrics(
    op: str, level: CheckpointLevel, seconds: float, nbytes: int
) -> None:
    """Per-level time/bytes telemetry (the paper's L1/L2 breakdown),
    recorded into the process-global obs registry.  Lazily imported:
    checkpoints are rare relative to simulation events."""
    from repro.obs.metrics import get_registry

    reg = get_registry()
    lvl = f"L{level.value}"
    reg.counter(
        f"fti_{op}s_total", help=f"FTI {op} operations, by level.", level=lvl
    ).inc()
    reg.counter(
        f"fti_{op}_bytes_total", help=f"Bytes moved by FTI {op}s, by level.",
        level=lvl,
    ).inc(nbytes)
    reg.quantile(
        f"fti_{op}_seconds", help=f"FTI {op} wall latency, by level.", level=lvl
    ).observe(seconds)


@dataclass
class CheckpointReceipt:
    """Cost accounting for one checkpoint instance.

    All byte counts are totals across the whole job.
    """

    ckpt_id: int
    level: CheckpointLevel
    bytes_local: int = 0       #: own-data writes to node-local storage
    bytes_partner: int = 0     #: partner-copy bytes crossing the network
    bytes_encoded: int = 0     #: RS parity bytes produced (and exchanged)
    gf_operations: int = 0     #: GF multiply-accumulate count of RS encode
    bytes_pfs: int = 0         #: bytes flushed to the parallel file system
    per_node_bytes: dict = field(default_factory=dict)

    @property
    def total_network_bytes(self) -> int:
        return self.bytes_partner + self.bytes_encoded

    @property
    def total_bytes(self) -> int:
        return self.bytes_local + self.bytes_partner + self.bytes_encoded + self.bytes_pfs


class FTI:
    """Multi-level checkpointing over *nranks* ranks.

    Parameters
    ----------
    nranks:
        Number of application ranks; must be a positive multiple of
        ``config.group_size * config.node_size``.
    config:
        Library parameters (group/node size, partner copies).
    """

    def __init__(self, nranks: int, config: Optional[FTIConfig] = None) -> None:
        self.config = config or FTIConfig()
        self.layout = GroupLayout(nranks, self.config)
        self.nranks = nranks
        self.local = [LocalStore(n) for n in range(self.layout.nnodes)]
        self.pfs = PFSStore()
        self._ckpt_counter = 0
        #: latest successful *clean* checkpoint id per level (retargeted
        #: by :meth:`mark_corrupt` to the newest surviving clean version)
        self.latest: dict[CheckpointLevel, int] = {}
        #: retained checkpoint ids per level, oldest → newest
        #: (``config.keep_versions`` deep)
        self.versions: dict[CheckpointLevel, list[int]] = {}
        #: checkpoint ids invalidated after the fact (latent SDC baked in)
        self.corrupt_ids: set[int] = set()
        #: (ckpt_id) -> {rank: blob length}; FTI metadata, kept redundantly
        self._lengths: dict[int, dict[int, int]] = {}
        self.receipts: list[CheckpointReceipt] = []
        #: checkpoint instances torn by faults mid-write
        self.torn_events = 0

    # -- helpers ---------------------------------------------------------------

    def _node_blob(self, rank_data: Mapping[int, bytes], node: int) -> bytes:
        return b"".join(bytes(rank_data[r]) for r in self.layout.ranks_of_node(node))

    def _split_node_blob(self, blob: bytes, node: int, ckpt_id: int) -> dict[int, bytes]:
        out: dict[int, bytes] = {}
        offset = 0
        for r in self.layout.ranks_of_node(node):
            n = self._lengths[ckpt_id][r]
            out[r] = blob[offset : offset + n]
            offset += n
        return out

    def _check_rank_data(self, rank_data: Mapping[int, bytes]) -> None:
        missing = set(range(self.nranks)) - set(rank_data)
        if missing:
            raise ValueError(f"missing checkpoint data for ranks {sorted(missing)[:5]}...")

    # -- checkpoint ----------------------------------------------------------------

    def checkpoint(
        self, rank_data: Mapping[int, bytes], level: CheckpointLevel | int
    ) -> CheckpointReceipt:
        """Take a checkpoint of *rank_data* at *level*.

        Every level first writes each node's own data locally (the L1
        action), then adds its own protection.  On success the oldest
        retained checkpoint of the same level beyond
        ``config.keep_versions`` is discarded — with the default of 1
        this is classic FTI (the previous instance is retired
        immediately); deeper retention keeps a rollback-past-the-newest
        history for after-the-fact invalidation (:meth:`mark_corrupt`).
        """
        level = CheckpointLevel(level)
        self._check_rank_data(rank_data)
        t0 = time.perf_counter()
        ckpt_id = self._ckpt_counter
        self._ckpt_counter += 1
        self._lengths[ckpt_id] = {r: len(bytes(rank_data[r])) for r in rank_data}
        receipt = CheckpointReceipt(ckpt_id=ckpt_id, level=level)

        # L1 action: own data to local store (all levels).
        for node in range(self.layout.nnodes):
            blob = self._node_blob(rank_data, node)
            self.local[node].write(f"own/{level.value}/{ckpt_id}", blob)
            receipt.bytes_local += len(blob)
            receipt.per_node_bytes[node] = len(blob)

        if level == CheckpointLevel.L2:
            for node in range(self.layout.nnodes):
                blob = self._node_blob(rank_data, node)
                for partner in self.layout.partners_of_node(node):
                    self.local[partner].write(f"partner/{ckpt_id}/from{node}", blob)
                    receipt.bytes_partner += len(blob)

        elif level == CheckpointLevel.L3:
            g = self.config.group_size
            code = ReedSolomonCode(k=g, m=g)
            for group in range(self.layout.ngroups):
                members = self.layout.nodes_of_group(group)
                blobs = [self._node_blob(rank_data, n) for n in members]
                parity = code.encode(blobs)
                max_len = max(len(b) for b in blobs)
                receipt.gf_operations += g * g * max_len
                # parity shard i lives on group member i
                for i, node in enumerate(members):
                    self.local[node].write(f"rs/{ckpt_id}/parity{i}", parity[i])
                    receipt.bytes_encoded += len(parity[i])

        elif level == CheckpointLevel.L4:
            for node in range(self.layout.nnodes):
                blob = self._node_blob(rank_data, node)
                self.pfs.write(f"pfs/{ckpt_id}/node{node}", blob)
                receipt.bytes_pfs += len(blob)

        # Success: retain the new version, retire those beyond the
        # per-level retention window (oldest first).
        retained = self.versions.setdefault(level, [])
        retained.append(ckpt_id)
        while len(retained) > self.config.keep_versions:
            old = retained.pop(0)
            self._purge(old, level)
            self.corrupt_ids.discard(old)
        self.latest[level] = ckpt_id
        self.receipts.append(receipt)
        _record_fti_metrics(
            "checkpoint", level, time.perf_counter() - t0, receipt.total_bytes
        )
        return receipt

    def _purge(self, ckpt_id: int, level: CheckpointLevel) -> None:
        for node in range(self.layout.nnodes):
            store = self.local[node]
            store.delete(f"own/{level.value}/{ckpt_id}")
            for other in range(self.layout.nnodes):
                store.delete(f"partner/{ckpt_id}/from{other}")
            for i in range(self.config.group_size):
                store.delete(f"rs/{ckpt_id}/parity{i}")
            self.pfs.delete(f"pfs/{ckpt_id}/node{node}")
        # keep lengths: cheap metadata, useful for forensic tests

    # -- failure injection -------------------------------------------------------------

    def fail_nodes(self, nodes: Iterable[int]) -> None:
        """Simulate concurrent failure of *nodes* (local data lost)."""
        for n in nodes:
            self.local[n].fail()

    def torn_checkpoint(self, level: CheckpointLevel | int, nodes: Iterable[int]) -> None:
        """A fault interrupted a level-*level* checkpoint while *nodes*
        were writing their node-local files in place.

        The interrupted write destroys the previous committed copy of
        that level on each writing node; redundancy held by *other* nodes
        (partner copies, RS parity, the PFS) survives.  Afterwards
        :meth:`can_recover` degrades exactly like the real library: a
        torn L1 is unrecoverable, a torn L2 still recovers via partners.
        """
        level = CheckpointLevel(level)
        ckpt_id = self.latest.get(level)
        if ckpt_id is None:
            return
        for n in nodes:
            self.local[n].torn_write(f"own/{level.value}/{ckpt_id}")
        self.torn_events += 1

    def repair_nodes(self, nodes: Iterable[int]) -> None:
        """Replace failed nodes with blank ones."""
        for n in nodes:
            self.local[n].repair()

    def mark_corrupt(self, ckpt_id: int) -> None:
        """Invalidate a committed checkpoint after the fact.

        The silent-data-corruption path: a later detection point reveals
        that *ckpt_id* was written while corruption was already latent in
        application memory.  Every stored object of the version (own
        copies, partner copies, RS parity, PFS objects) is marked corrupt
        in its store, and ``latest`` retargets to the newest surviving
        clean version of the level — recovery transparently reaches past
        the poisoned one.
        """
        level = next(
            (lvl for lvl, vs in self.versions.items() if ckpt_id in vs), None
        )
        if level is None:
            raise ValueError(
                f"checkpoint {ckpt_id} is not retained at any level"
            )
        self.corrupt_ids.add(ckpt_id)
        for node in range(self.layout.nnodes):
            store = self.local[node]
            store.mark_corrupt(f"own/{level.value}/{ckpt_id}")
            for other in range(self.layout.nnodes):
                store.mark_corrupt(f"partner/{ckpt_id}/from{other}")
            for i in range(self.config.group_size):
                store.mark_corrupt(f"rs/{ckpt_id}/parity{i}")
            self.pfs.mark_corrupt(f"pfs/{ckpt_id}/node{node}")
        clean = self.valid_versions(level)
        if clean:
            self.latest[level] = clean[-1]
        else:
            self.latest.pop(level, None)

    def valid_versions(self, level: CheckpointLevel | int) -> list[int]:
        """Retained, non-invalidated checkpoint ids of *level*, oldest
        first."""
        level = CheckpointLevel(level)
        return [
            c for c in self.versions.get(level, []) if c not in self.corrupt_ids
        ]

    @property
    def failed_nodes(self) -> list[int]:
        return [n for n in range(self.layout.nnodes) if self.local[n].failed]

    # -- recovery ------------------------------------------------------------------------

    def can_recover(self, level: CheckpointLevel | int) -> bool:
        """Whether :meth:`recover` would succeed at *level* right now."""
        try:
            self.recover(level, _dry_run=True)
            return True
        except RecoveryError:
            return False

    def recover(
        self,
        level: CheckpointLevel | int,
        ckpt_id: Optional[int] = None,
        _dry_run: bool = False,
    ) -> dict[int, bytes]:
        """Reconstruct all ranks' checkpoint data from *level*.

        Without *ckpt_id* the newest clean retained version is used; an
        explicit id recovers an older retained version (it must not have
        been invalidated by :meth:`mark_corrupt`).

        Raises
        ------
        RecoveryError
            If no (clean) checkpoint exists at the level or too much
            data is lost.
        """
        level = CheckpointLevel(level)
        if ckpt_id is None:
            ckpt_id = self.latest.get(level)
        elif ckpt_id in self.corrupt_ids:
            raise RecoveryError(
                f"checkpoint {ckpt_id} was invalidated (silent corruption)"
            )
        elif ckpt_id not in self.versions.get(level, []):
            raise RecoveryError(
                f"checkpoint {ckpt_id} is not retained at level {level.value}"
            )
        if ckpt_id is None:
            raise RecoveryError(f"no successful checkpoint at level {level.value}")

        t0 = time.perf_counter()
        if level == CheckpointLevel.L4:
            out = self._recover_l4(ckpt_id, _dry_run)
        elif level == CheckpointLevel.L3:
            out = self._recover_l3(ckpt_id, _dry_run)
        else:
            out = self._recover_l1_l2(ckpt_id, level, _dry_run)
        if not _dry_run:
            _record_fti_metrics(
                "recover", level, time.perf_counter() - t0,
                sum(len(b) for b in out.values()),
            )
        return out

    def recover_any(self) -> tuple[CheckpointLevel, dict[int, bytes]]:
        """Recover from the cheapest level that works (L1 → L4), walking
        each level's clean retained versions newest-first."""
        errors = []
        for level in CheckpointLevel:
            for cid in reversed(self.valid_versions(level)):
                try:
                    return level, self.recover(level, ckpt_id=cid)
                except RecoveryError as exc:
                    errors.append(f"L{level.value}#{cid}: {exc}")
        raise RecoveryError("no recoverable checkpoint; " + "; ".join(errors))

    # -- per-level recovery ---------------------------------------------------------------

    def _recover_l1_l2(
        self, ckpt_id: int, level: CheckpointLevel, dry: bool
    ) -> dict[int, bytes]:
        out: dict[int, bytes] = {}
        for node in range(self.layout.nnodes):
            blob = self.local[node].read(f"own/{level.value}/{ckpt_id}")
            if blob is None and level == CheckpointLevel.L2:
                for partner in self.layout.partners_of_node(node):
                    blob = self.local[partner].read(f"partner/{ckpt_id}/from{node}")
                    if blob is not None:
                        break
            if blob is None:
                raise RecoveryError(
                    f"level {level.value}: node {node}'s checkpoint is lost"
                )
            if not dry:
                out.update(self._split_node_blob(blob, node, ckpt_id))
        return out

    def _recover_l3(self, ckpt_id: int, dry: bool) -> dict[int, bytes]:
        g = self.config.group_size
        code = ReedSolomonCode(k=g, m=g)
        out: dict[int, bytes] = {}
        for group in range(self.layout.ngroups):
            members = self.layout.nodes_of_group(group)
            shards: list[Optional[bytes]] = []
            lengths = []
            for i, node in enumerate(members):
                data = self.local[node].read(f"own/{CheckpointLevel.L3.value}/{ckpt_id}")
                shards.append(data)
                lengths.append(
                    sum(self._lengths[ckpt_id][r] for r in self.layout.ranks_of_node(node))
                )
            for i, node in enumerate(members):
                shards.append(self.local[node].read(f"rs/{ckpt_id}/parity{i}"))
            try:
                blobs = code.decode(shards, lengths=lengths)
            except RSDecodeError as exc:
                raise RecoveryError(f"level 3: group {group} unrecoverable: {exc}")
            if not dry:
                for node, blob in zip(members, blobs):
                    out.update(self._split_node_blob(blob, node, ckpt_id))
        return out

    def _recover_l4(self, ckpt_id: int, dry: bool) -> dict[int, bytes]:
        out: dict[int, bytes] = {}
        for node in range(self.layout.nnodes):
            blob = self.pfs.read(f"pfs/{ckpt_id}/node{node}")
            if blob is None:
                raise RecoveryError(f"level 4: PFS object for node {node} missing")
            if not dry:
                out.update(self._split_node_blob(blob, node, ckpt_id))
        return out
