"""Rank / node / FTI-group layout.

FTI arranges ranks onto nodes (``node_size`` ranks per node) and nodes
into groups (``group_size`` nodes per group).  Levels 2 and 3 operate
within a group: partner copies go to the following node(s) in ring order
within the group, and RS coding spans the group's nodes.
"""

from __future__ import annotations

from repro.fti.config import FTIConfig


class GroupLayout:
    """Deterministic rank→node→group assignment.

    Ranks fill nodes contiguously; nodes fill groups contiguously.  This
    matches FTI's default topology file.
    """

    def __init__(self, nranks: int, config: FTIConfig) -> None:
        config.validate_ranks(nranks)
        self.nranks = int(nranks)
        self.config = config
        self.nnodes = nranks // config.node_size
        self.ngroups = self.nnodes // config.group_size

    # -- mapping ---------------------------------------------------------------

    def node_of_rank(self, rank: int) -> int:
        self._check_rank(rank)
        return rank // self.config.node_size

    def ranks_of_node(self, node: int) -> list[int]:
        self._check_node(node)
        base = node * self.config.node_size
        return list(range(base, base + self.config.node_size))

    def group_of_node(self, node: int) -> int:
        self._check_node(node)
        return node // self.config.group_size

    def group_of_rank(self, rank: int) -> int:
        return self.group_of_node(self.node_of_rank(rank))

    def nodes_of_group(self, group: int) -> list[int]:
        if not 0 <= group < self.ngroups:
            raise IndexError(f"group {group} out of range [0, {self.ngroups})")
        base = group * self.config.group_size
        return list(range(base, base + self.config.group_size))

    def partners_of_node(self, node: int) -> list[int]:
        """The node(s) that hold this node's L2 partner copies: the next
        ``partner_copies`` nodes in ring order within the group."""
        group = self.group_of_node(node)
        members = self.nodes_of_group(group)
        idx = members.index(node)
        g = len(members)
        return [
            members[(idx + offset) % g]
            for offset in range(1, self.config.partner_copies + 1)
        ]

    def index_in_group(self, node: int) -> int:
        """Position of *node* within its group (0..group_size-1)."""
        group = self.group_of_node(node)
        return self.nodes_of_group(group).index(node)

    # -- validation ---------------------------------------------------------------

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.nranks:
            raise IndexError(f"rank {rank} out of range [0, {self.nranks})")

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.nnodes:
            raise IndexError(f"node {node} out of range [0, {self.nnodes})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GroupLayout(ranks={self.nranks}, nodes={self.nnodes}, "
            f"groups={self.ngroups})"
        )
