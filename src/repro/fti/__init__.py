"""FTI-like multi-level checkpointing library (Bautista-Gomez et al. [25]).

Implements the four checkpoint levels of Table I with real storage and
coding semantics, so recoverability claims are testable rather than
assumed:

* **L1** — checkpoint kept on the local node,
* **L2** — local copy plus partner copies to neighbour node(s) in the
  FTI group,
* **L3** — Reed–Solomon erasure coding across the group (a real GF(256)
  RS codec lives in :mod:`repro.fti.reedsolomon`); a group of size *g*
  tolerates up to ``g // 2`` concurrent node losses,
* **L4** — flush to the parallel file system.

:class:`~repro.fti.fti.FTI` is the façade used by the virtual testbed and
the examples; it also produces per-checkpoint cost receipts (bytes moved
per subsystem) that the testbed's ground-truth timing functions consume.
"""

from repro.fti.gf256 import GF256
from repro.fti.reedsolomon import ReedSolomonCode, RSDecodeError
from repro.fti.config import FTIConfig, CheckpointLevel
from repro.fti.groups import GroupLayout
from repro.fti.storage import LocalStore, PFSStore, StorageError
from repro.fti.fti import FTI, CheckpointReceipt, RecoveryError

__all__ = [
    "GF256",
    "ReedSolomonCode",
    "RSDecodeError",
    "FTIConfig",
    "CheckpointLevel",
    "GroupLayout",
    "LocalStore",
    "PFSStore",
    "StorageError",
    "FTI",
    "CheckpointReceipt",
    "RecoveryError",
]
