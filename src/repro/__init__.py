"""FT-BESST: fault-tolerance-aware system-level modeling and simulation.

A from-scratch Python reproduction of *"Incorporating Fault-Tolerance
Awareness into System-Level Modeling and Simulation"* (Johnson & Lam,
IEEE CLUSTER 2021), including every substrate the paper builds on:

* :mod:`repro.des` — component-based (parallel) discrete-event engine
  (the SST substitute),
* :mod:`repro.core` — the BE-SST behavioral-emulation layer with the
  paper's FT-aware extensions plus fault injection,
* :mod:`repro.models` — interpolation and symbolic-regression
  performance modeling,
* :mod:`repro.network` — fat-tree / torus topologies and LogGP cost
  models,
* :mod:`repro.fti` — an FTI-like multi-level checkpoint library with a
  real Reed-Solomon codec,
* :mod:`repro.apps` — LULESH (including a runnable mini hydro kernel),
  CMT-bone and iterative-solver AppBEOs,
* :mod:`repro.testbed` — virtual Quartz/Vulcan machines standing in for
  the LLNL systems,
* :mod:`repro.analytical` — related-work baselines (Young/Daly,
  reliability-aware Amdahl/Gustafson, replication, spare nodes),
* :mod:`repro.exps` — drivers reproducing every table and figure of the
  paper's evaluation.

Quickstart::

    from repro.testbed import make_quartz
    from repro.core import ModelDevelopment, build_archbeo, BESSTSimulator
    from repro.core.ft import scenario_l1
    from repro.apps import lulesh_appbeo

    machine = make_quartz()
    dev = ModelDevelopment(machine, ["lulesh_timestep", "fti_l1"]).run()
    arch = build_archbeo(machine, dev.models())
    app = lulesh_appbeo(timesteps=200, scenario=scenario_l1(period=40))
    result = BESSTSimulator(app, arch, nranks=64, params={"epr": 10}).run()
    print(result.total_time, result.ft_overhead_fraction)
"""

__version__ = "1.0.0"
