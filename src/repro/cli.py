"""Command-line interface: regenerate any experiment from a shell.

Examples::

    python -m repro table3
    python -m repro fig7 --reps 5
    python -m repro fig9 --reps 2
    python -m repro campaign --mtbf 8 16 --periods 5 10 --json out.json
    python -m repro campaign --journal run.wal.jsonl --json out.json
    python -m repro campaign --journal run.wal.jsonl --resume --json out.json
    python -m repro fit-models --out quartz_models.json
    python -m repro list

Heavy experiments accept ``--reps`` (Monte-Carlo replicas) and ``--seed``;
``list`` shows every available target with its paper artifact.  The
campaign runner is crash-safe: with ``--journal`` every completed
replica is durably logged, ``--resume`` skips completed replicas
bit-identically after a kill, and ``--chaos-*`` flags inject harness
faults (worker crash/hang/garbage) to exercise the supervisor.

Campaigns can also be observed: ``--metrics-out`` streams registry
snapshots to JSONL, ``--prom-out`` writes a Prometheus text-exposition
snapshot, ``--trace-out`` writes a merged Chrome/Perfetto span trace
(campaign, supervisor and worker layers in one timeline), and
``--heartbeat`` prints a live progress line.  ``repro metrics
summarize <file>`` condenses either metrics format afterwards.

Post-mortem: ``--flight-dir`` makes every replica keep a crash-safe
flight-recorder ring (dumped on exit, spill survives SIGKILL), and
``repro analyze <journal> [--flight-dir D]`` reconstructs per-fault
causal chains with waste attribution from the journal + dumps.

Exit codes: 0 success; 2 usage error; 3 campaign produced no results
(all replicas quarantined); 4 resumable resource abort; 5 analyze
found no usable data.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from typing import Optional, Sequence

_EXPERIMENTS: dict[str, tuple[str, str]] = {
    "fig1": ("Fig. 1", "CMT-bone on Vulcan benchmark-vs-sim DSE"),
    "fig4": ("Fig. 4", "fault-assumption Cases 1-4 (fault injection)"),
    "fig5": ("Fig. 5", "instance-model scaling vs problem size"),
    "fig6": ("Fig. 6", "instance-model scaling vs ranks"),
    "fig7": ("Fig. 7", "full-system runtime, 64 ranks"),
    "fig8": ("Fig. 8", "full-system runtime, 1000 ranks"),
    "fig9": ("Fig. 9", "overhead prediction matrix"),
    "table3": ("Table III", "instance-model MAPE"),
    "table4": ("Table IV", "full-system simulation MAPE"),
    "ext1": ("extension", "all four FTI levels, full system"),
    "ext2": ("extension", "checkpoint-level selection vs MTBF"),
    "ext3": ("extension", "architectural DSE: fat tree vs dragonfly"),
    "ext4": ("extension", "hardware DSE: NVRAM checkpoint storage"),
    "ext5": ("extension", "simulated level DSE under mixed faults"),
    "ext6": ("extension", "ABFT vs checkpoint-restart for SDC"),
    "ext7": ("extension", "modeling granularity ablation"),
    "ext8": ("extension", "SDC verification-interval x fault-mix DSE"),
    "ext9": ("extension", "network fault DSE: link MTBF x checkpoint period"),
    "abl1": ("ablation", "LUT vs symbolic regression"),
    "abl2": ("ablation", "checkpoint period vs Young/Daly"),
    "abl3": ("ablation", "analytical speedup baselines"),
    "abl4": ("ablation", "sequential vs parallel DES engine"),
}


def _parse_fault_mix(pairs: "list[str]") -> "dict[str, float]":
    """Parse ``kind=weight`` strings into a fault-mix mapping.

    Weight validation (known kinds, non-negative, sum to 1) is owned by
    :class:`~repro.core.fault_injection.FaultModel`; here we only enforce
    the syntax so typos fail with a CLI-flavoured message.
    """
    mix: dict[str, float] = {}
    for pair in pairs:
        kind, sep, weight = pair.partition("=")
        if not sep or not kind:
            raise SystemExit(
                f"--fault-mix entries must look like kind=weight, got {pair!r}"
            )
        try:
            mix[kind] = float(weight)
        except ValueError:
            raise SystemExit(
                f"--fault-mix weight for {kind!r} is not a number: {weight!r}"
            ) from None
    return mix


#: fault-config flat kwarg -> campaign-flag argparse dest (fields with a
#: CLI flag; config-only fields like net_fault_split flow straight into
#: the spec)
_FAULT_CONFIG_DESTS = {
    "burst_size": "burst_size",
    "sdc_coverage": "sdc_coverage",
    "sdc_correct_prob": "sdc_correct_prob",
    "straggler_slowdown": "straggler_slowdown",
    "straggler_repair_s": "straggler_repair",
    "net_link_mtbf_s": "net_link_mtbf",
    "net_repair_s": "net_repair_time",
    "net_degrade_factor": "net_degrade_factor",
    "net_loss_prob": "net_loss_prob",
    "net_topology": "net_topology",
}


def _load_fault_config(path: str) -> dict:
    """Read a structured fault-config file into flat campaign kwargs."""
    from repro.faults.registry import campaign_kwargs_from_config

    try:
        with open(path, "r", encoding="utf-8") as fh:
            cfg = json.load(fh)
    except OSError as exc:
        raise SystemExit(f"campaign: cannot read --fault-config: {exc}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"campaign: --fault-config is not valid JSON: {exc}")
    try:
        return campaign_kwargs_from_config(cfg)
    except ValueError as exc:
        raise SystemExit(f"campaign: bad --fault-config: {exc}")


def _apply_fault_config(args) -> dict:
    """Overlay the fault-config file onto *args* in place.

    Precedence: explicit taxonomy flags > config file > built-in
    defaults (a flag is "explicit" when its parsed value differs from
    the parser default).  Returns the flat kwargs with no CLI flag of
    their own (``fault_mix``, ``net_fault_split``) for the caller to
    merge into the spec directly.
    """
    overrides = _load_fault_config(args.fault_config)
    defaults = _build_parser().parse_args(["campaign"])
    rest = {}
    for key, value in overrides.items():
        dest = _FAULT_CONFIG_DESTS.get(key)
        if dest is None:
            rest[key] = value
        elif getattr(args, dest) == getattr(defaults, dest):
            setattr(args, dest, value)
    return rest


def _format_faults_list() -> str:
    """`repro faults list`: the registry's taxonomy, one domain per block."""
    from repro.faults.registry import FAULT_KINDS, REGISTRY, spec_fields

    lines = [
        "registered fault domains (repro.faults; draw order: "
        + " ".join(FAULT_KINDS)
        + ")",
        "",
    ]
    for info in REGISTRY:
        kinds = " ".join(info.kinds) if info.kinds else "(no injectable kinds)"
        lines.append(f"{info.name:<10s} {kinds}")
        lines.append(f"    {info.summary}")
        fields = spec_fields(info)
        if fields:
            knobs = ", ".join(f"{f.name}={f.default!r}" for f in fields)
            lines.append(f"    config: {knobs}")
        if info.hooks:
            lines.append(f"    hooks:  {', '.join(info.hooks)}")
        lines.append("")
    lines.append(
        "configure per-domain fields via `repro campaign --fault-config "
        "FILE` (JSON: {\"mix\": {kind: weight}, \"<domain>\": {field: value}})"
    )
    return "\n".join(lines)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "FT-BESST: regenerate the tables and figures of 'Incorporating "
            "Fault-Tolerance Awareness into System-Level Modeling and "
            "Simulation' (CLUSTER 2021)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all experiment targets")

    for name, (artifact, desc) in _EXPERIMENTS.items():
        p = sub.add_parser(name, help=f"{artifact}: {desc}")
        p.add_argument("--seed", type=int, default=0, help="root seed")
        p.add_argument(
            "--reps", type=int, default=3, help="Monte-Carlo replicas"
        )

    camp = sub.add_parser(
        "campaign",
        help="resilience campaign: fault-rate x checkpoint-period sweep",
    )
    camp.add_argument("--seed", type=int, default=0, help="root seed")
    camp.add_argument("--reps", type=int, default=10, help="replicas per point")
    camp.add_argument(
        "--mtbf",
        type=float,
        nargs="+",
        default=[8.0, 16.0, 32.0],
        help="per-node MTBF values to sweep (seconds)",
    )
    camp.add_argument(
        "--periods",
        type=int,
        nargs="+",
        default=[5, 10],
        help="checkpoint periods to sweep (timesteps)",
    )
    camp.add_argument(
        "--timesteps", type=int, default=40, help="workload timesteps"
    )
    camp.add_argument(
        "--fault-mix",
        nargs="+",
        default=None,
        metavar="KIND=W",
        help=(
            "fault-taxonomy mix as kind=weight pairs summing to 1 "
            "(kinds: software node sdc straggler burst link switch "
            "netdeg), e.g. --fault-mix node=0.5 link=0.5"
        ),
    )
    camp.add_argument(
        "--fault-config",
        metavar="FILE",
        help=(
            "structured fault configuration (JSON): one section per "
            "fault domain plus an optional top-level 'mix' (see `repro "
            "faults list` for the domains and their fields).  Explicit "
            "taxonomy flags override the file; the file overrides "
            "built-in defaults"
        ),
    )
    camp.add_argument(
        "--verify-period", type=int, default=0,
        help="ABFT verification cadence in timesteps (0 disables)",
    )
    camp.add_argument(
        "--verify-cost", type=float, default=0.01,
        help="modeled cost of one ABFT verification kernel (seconds)",
    )
    camp.add_argument(
        "--sdc-coverage", type=float, default=0.95,
        help="probability an SDC strike is ABFT-detectable",
    )
    camp.add_argument(
        "--sdc-correct-prob", type=float, default=0.5,
        help="probability a detected strike is correctable in place",
    )
    camp.add_argument(
        "--straggler-slowdown", type=float, default=2.0,
        help="compute-clock slowdown factor of a degraded node",
    )
    camp.add_argument(
        "--straggler-repair", type=float, default=5.0,
        help="seconds until a degraded node is repaired (<= 0: never)",
    )
    camp.add_argument(
        "--burst-size", type=int, default=2,
        help="nodes felled per correlated failure burst",
    )
    camp.add_argument(
        "--net-link-mtbf", type=float, default=0.0,
        help="per-link MTBF in seconds; > 0 folds a network fault stream "
        "(link/switch/netdeg) into the campaign's fault process",
    )
    camp.add_argument(
        "--net-degrade-factor", type=float, default=4.0,
        help="bandwidth de-rate factor of a degraded link (netdeg faults)",
    )
    camp.add_argument(
        "--net-loss-prob", type=float, default=0.05,
        help="message-loss probability of a degraded link",
    )
    camp.add_argument(
        "--net-repair-time", type=float, default=5.0,
        help="seconds until a failed/degraded link or switch is repaired "
        "(<= 0: never)",
    )
    camp.add_argument(
        "--net-topology", choices=("full", "torus", "fattree"),
        default="full",
        help="interconnect shape of the campaign workload's ranks",
    )
    camp.add_argument(
        "--workers", type=int, default=1, help="worker processes (1 = in-process)"
    )
    camp.add_argument(
        "--legacy-policy",
        action="store_true",
        help="atomic recovery (no verification/escalation/requeue)",
    )
    camp.add_argument("--json", dest="json_out", help="write full report JSON here")
    camp.add_argument(
        "--journal",
        help="write-ahead journal path: every completed replica is "
        "durably recorded and never recomputed",
    )
    camp.add_argument(
        "--resume",
        action="store_true",
        help="resume from --journal (reps/seed/policy come from its header)",
    )
    camp.add_argument(
        "--partial-report",
        action="store_true",
        help="only aggregate and print what --journal already holds, then exit",
    )
    camp.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-replica timeout in seconds (hung workers are reaped)",
    )
    camp.add_argument(
        "--retries",
        type=int,
        default=5,
        help="failed attempts per replica before quarantine",
    )
    camp.add_argument(
        "--chaos-crash", type=float, default=0.0,
        help="probability a worker attempt crashes (harness fault injection)",
    )
    camp.add_argument(
        "--chaos-hang", type=float, default=0.0,
        help="probability a worker attempt hangs (pair with --timeout)",
    )
    camp.add_argument(
        "--chaos-garbage", type=float, default=0.0,
        help="probability a worker attempt returns garbage",
    )
    camp.add_argument(
        "--chaos-seed", type=int, default=0, help="harness fault injection seed"
    )
    camp.add_argument(
        "--chaos-enospc", type=float, default=0.0,
        help="probability a worker durable write fails with ENOSPC",
    )
    camp.add_argument(
        "--chaos-eio", type=float, default=0.0,
        help="probability a worker durable write fails with EIO",
    )
    camp.add_argument(
        "--chaos-slow-io", type=float, default=0.0,
        help="probability a worker durable write stalls (slow device)",
    )
    camp.add_argument(
        "--chaos-fs-after", type=int, default=0, metavar="N",
        help="arm worker filesystem faults only after N eligible operations",
    )
    camp.add_argument(
        "--chaos-fs-path", default="",
        help="only inject filesystem faults on paths containing this substring",
    )
    camp.add_argument(
        "--chaos-enospc-after", type=int, default=None, metavar="N",
        help="supervisor-side chaos: the (N+1)-th durable write in this "
        "process fails with ENOSPC (the disk-fills-mid-campaign scenario)",
    )
    camp.add_argument(
        "--guard", action="store_true",
        help="enable the resource guard: poll disk/RSS/fd headroom and "
        "degrade per the ladder instead of dying on exhaustion",
    )
    camp.add_argument(
        "--guard-min-disk-mb", type=float, default=64.0,
        help="disk-free floor (MiB) below which the ladder escalates",
    )
    camp.add_argument(
        "--guard-max-rss-mb", type=float, default=None,
        help="RSS ceiling (MiB) above which the ladder escalates",
    )
    camp.add_argument(
        "--guard-max-fds", type=int, default=None,
        help="open-fd ceiling above which the ladder escalates",
    )
    camp.add_argument(
        "--guard-poll", type=float, default=1.0,
        help="seconds between resource-guard polls",
    )
    camp.add_argument(
        "--guard-max-pause", type=float, default=30.0,
        help="max seconds in pause_submission before a resumable abort",
    )
    camp.add_argument(
        "--sim-snapshot-dir",
        help="directory for per-replica in-simulation snapshots; a "
        "retried/killed replica resumes mid-simulation from its newest "
        "snapshot (requires --sim-snapshot-every)",
    )
    camp.add_argument(
        "--sim-snapshot-every",
        type=int,
        default=None,
        help="snapshot each replica's simulator every N fired events "
        "(requires --sim-snapshot-dir)",
    )
    camp.add_argument(
        "--metrics-out",
        help="stream metrics-registry snapshots to this JSONL file",
    )
    camp.add_argument(
        "--metrics-interval",
        type=float,
        default=5.0,
        help="seconds between --metrics-out snapshots",
    )
    camp.add_argument(
        "--prom-out",
        help="write a final Prometheus text-exposition snapshot here",
    )
    camp.add_argument(
        "--trace-out",
        help="write a merged Chrome trace of campaign/supervisor/worker "
        "spans here (open in Perfetto)",
    )
    camp.add_argument(
        "--heartbeat",
        type=float,
        default=None,
        metavar="SECONDS",
        help="print a live progress line to stderr every SECONDS",
    )
    camp.add_argument(
        "--flight-dir",
        help="per-replica flight-recorder directory: each replica keeps a "
        "bounded in-memory event ring plus a crash-surviving spill file, "
        "dumped here on exit for `repro analyze`",
    )

    analyze = sub.add_parser(
        "analyze",
        help="post-mortem a campaign journal: causal fault chains, "
        "per-fault waste attribution, analytical cross-checks",
    )
    analyze.add_argument("journal", help="campaign write-ahead journal path")
    analyze.add_argument(
        "--flight-dir",
        help="flight-recorder directory of the campaign run (adds crashed-"
        "replica dumps and the harness failure log to the post-mortem)",
    )
    analyze.add_argument(
        "--top", type=int, default=5, help="top-K faults by attributed waste"
    )
    analyze.add_argument(
        "--json", dest="json_out", help="write the full analysis JSON here"
    )
    analyze.add_argument(
        "--trace-out",
        help="write a Chrome trace of the worst fault's recovery timeline",
    )

    faults = sub.add_parser(
        "faults", help="introspect the pluggable fault-domain registry"
    )
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)
    faults_sub.add_parser(
        "list",
        help="list registered fault domains, their kinds, config fields "
        "and lifecycle hooks",
    )

    metrics = sub.add_parser(
        "metrics", help="inspect metrics files written by --metrics-out"
    )
    metrics_sub = metrics.add_subparsers(dest="metrics_command", required=True)
    summ = metrics_sub.add_parser(
        "summarize",
        help="condense a JSONL metrics stream or Prometheus snapshot",
    )
    summ.add_argument("path", help="metrics JSONL or Prometheus text file")

    fit = sub.add_parser(
        "fit-models", help="run Model Development and save the fitted models"
    )
    fit.add_argument("--out", required=True, help="output JSON path")
    fit.add_argument("--seed", type=int, default=0)
    fit.add_argument(
        "--all-levels",
        action="store_true",
        help="also fit the L3/L4 checkpoint kernels",
    )

    show = sub.add_parser("show-models", help="summarise a saved model registry")
    show.add_argument("path", help="registry JSON path")
    return parser


def _run_experiment(name: str, seed: int, reps: int) -> str:
    # Imports are local so `repro list --help` stays instant.
    if name == "fig1":
        from repro.exps.fig1 import cmtbone_dse, format_fig1

        return format_fig1(cmtbone_dse(reps=max(reps, 3), seed=seed))
    if name == "fig4":
        from repro.exps.casestudy import get_context
        from repro.exps.fig4 import fault_assumption_cases, format_fig4

        return format_fig4(
            fault_assumption_cases(get_context(seed=seed), reps=reps)
        )
    if name in ("fig5", "fig6"):
        from repro.exps.casestudy import get_context
        from repro.exps.fig5_6 import format_fig5, format_fig6, instance_scaling

        rows = instance_scaling(get_context(seed=seed))
        return format_fig5(rows) if name == "fig5" else format_fig6(rows)
    if name in ("fig7", "fig8"):
        from repro.exps.casestudy import get_context
        from repro.exps.fig7_8 import format_fig7_8, full_system_curves

        ranks = 64 if name == "fig7" else 1000
        return format_fig7_8(
            full_system_curves(ranks, ctx=get_context(seed=seed), reps=reps)
        )
    if name == "fig9":
        from repro.exps.casestudy import get_context
        from repro.exps.fig9 import format_fig9, overhead_prediction

        return format_fig9(overhead_prediction(get_context(seed=seed), reps=reps))
    if name == "table3":
        from repro.exps.casestudy import get_context
        from repro.exps.table3 import format_table3, instance_model_mape

        return format_table3(instance_model_mape(get_context(seed=seed)))
    if name == "table4":
        from repro.exps.casestudy import get_context
        from repro.exps.table4 import format_table4, full_system_mape

        return format_table4(full_system_mape(get_context(seed=seed), reps=reps))
    if name == "ext1":
        from repro.exps.extensions import all_levels_full_system, format_ext1

        return format_ext1(all_levels_full_system(reps=reps))
    if name == "ext2":
        from repro.exps.extensions import format_ext2, level_selection_sweep

        return format_ext2(level_selection_sweep())
    if name == "ext3":
        from repro.exps.extensions import architectural_dse, format_ext3

        return format_ext3(architectural_dse(reps=reps))
    if name == "ext4":
        from repro.exps.extensions import format_ext4, hardware_upgrade_dse

        return format_ext4(hardware_upgrade_dse(reps=reps))
    if name == "ext5":
        from repro.exps.extensions import format_ext5, level_fault_dse

        return format_ext5(level_fault_dse(reps=reps))
    if name == "ext6":
        from repro.exps.extensions import abft_vs_checkpointing, format_ext6

        return format_ext6(abft_vs_checkpointing())
    if name == "ext7":
        from repro.exps.extensions import format_ext7, granularity_ablation

        return format_ext7(granularity_ablation(reps=reps, seed=seed))
    if name == "ext8":
        from repro.exps.extensions import format_ext8, sdc_verification_dse

        return format_ext8(sdc_verification_dse(reps=reps, seed=seed))
    if name == "ext9":
        from repro.exps.extensions import format_ext9, network_fault_dse

        return format_ext9(network_fault_dse(reps=reps, seed=seed))
    if name == "abl1":
        from repro.exps.ablations import format_abl1, modeling_method_ablation
        from repro.exps.casestudy import get_context

        return format_abl1(modeling_method_ablation(get_context(seed=seed)))
    if name == "abl2":
        from repro.exps.ablations import format_abl2, youngdaly_ablation
        from repro.exps.casestudy import get_context

        return format_abl2(youngdaly_ablation(get_context(seed=seed), reps=reps))
    if name == "abl3":
        from repro.exps.ablations import analytical_baselines, format_abl3

        return format_abl3(analytical_baselines())
    if name == "abl4":
        from repro.exps.ablations import engine_ablation, format_abl4

        return format_abl4(engine_ablation())
    raise ValueError(f"unknown experiment {name!r}")  # pragma: no cover


def _write_text_atomic(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    Creates missing parent directories; a crash mid-write can never
    leave a truncated or absent report behind an existing one.
    """
    from repro.guard.fsfault import fault_check, fsync_dir

    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    fault_check("report.json", path, len(text))
    fd, tmp = tempfile.mkstemp(dir=parent, prefix=".tmp-", suffix=".json")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        fsync_dir(parent)  # the rename lives in the directory inode
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def _run_campaign(args) -> tuple[str, int]:
    """Run the campaign; returns ``(stdout text, exit code)``."""
    from repro.core.campaign import ResilienceCampaign
    from repro.core.fault_injection import RecoveryPolicy
    from repro.core.supervisor import HarnessFaultInjector, RetryPolicy
    from repro.obs.instrument import CampaignObs, ObsOptions

    if (args.resume or args.partial_report) and not args.journal:
        raise SystemExit("campaign: --resume/--partial-report require --journal")
    if (args.sim_snapshot_dir is None) != (args.sim_snapshot_every is None):
        raise SystemExit(
            "campaign: --sim-snapshot-dir and --sim-snapshot-every must be "
            "given together"
        )
    if args.partial_report:
        return ResilienceCampaign.report_from_journal(args.journal).format(), 0

    retry = RetryPolicy(max_retries=args.retries, timeout_s=args.timeout)
    fs_dict = None
    if args.chaos_enospc or args.chaos_eio or args.chaos_slow_io:
        from repro.guard.fsfault import FsFaultConfig

        fs_dict = FsFaultConfig(
            enospc_prob=args.chaos_enospc,
            eio_prob=args.chaos_eio,
            slow_prob=args.chaos_slow_io,
            after_ops=args.chaos_fs_after,
            path_substring=args.chaos_fs_path,
            seed=args.chaos_seed,
        ).to_dict()
    injector = None
    if args.chaos_crash or args.chaos_hang or args.chaos_garbage or fs_dict:
        injector = HarnessFaultInjector(
            crash_prob=args.chaos_crash,
            hang_prob=args.chaos_hang,
            garbage_prob=args.chaos_garbage,
            seed=args.chaos_seed,
            fs=fs_dict,
        )
    host_shim_installed = False
    if args.chaos_enospc_after is not None:
        from repro.guard.fsfault import FsFaultConfig, FsFaultInjector, install

        install(
            FsFaultInjector(
                FsFaultConfig(
                    enospc_prob=1.0,
                    after_ops=args.chaos_enospc_after,
                    path_substring=args.chaos_fs_path,
                    seed=args.chaos_seed,
                )
            )
        )
        host_shim_installed = True
    guard = None
    if args.guard:
        from repro.guard import ResourceGuard, ResourceLimits
        from repro.guard.ladder import DegradationLadder

        watch = (
            os.path.dirname(os.path.abspath(args.journal))
            if args.journal
            else os.getcwd()
        )
        guard = ResourceGuard(
            watch_path=watch,
            limits=ResourceLimits(
                min_disk_free_bytes=int(args.guard_min_disk_mb * 1024**2),
                max_rss_bytes=(
                    int(args.guard_max_rss_mb * 1024**2)
                    if args.guard_max_rss_mb is not None
                    else None
                ),
                max_open_fds=args.guard_max_fds,
            ),
            ladder=DegradationLadder(max_pause_s=args.guard_max_pause),
            poll_interval_s=args.guard_poll,
        )
    snapshot_kwargs = dict(
        sim_snapshot_dir=args.sim_snapshot_dir,
        sim_snapshot_every=args.sim_snapshot_every,
    )
    obs = None
    obs_opts = ObsOptions(
        metrics_out=args.metrics_out,
        metrics_interval_s=args.metrics_interval,
        prom_out=args.prom_out,
        trace_out=args.trace_out,
        heartbeat_s=args.heartbeat,
    )
    if obs_opts.enabled:
        obs = CampaignObs(obs_opts)
    if args.resume:
        camp = ResilienceCampaign.resume(
            args.journal,
            n_workers=args.workers,
            retry=retry,
            fault_injector=injector,
            obs=obs,
            guard=guard,
            flight_dir=args.flight_dir,
            **snapshot_kwargs,
        )
    else:
        policy = (
            RecoveryPolicy.legacy() if args.legacy_policy else RecoveryPolicy()
        )
        camp = ResilienceCampaign(
            reps=args.reps,
            base_seed=args.seed,
            policy=policy,
            n_workers=args.workers,
            retry=retry,
            journal_path=args.journal,
            fault_injector=injector,
            obs=obs,
            guard=guard,
            flight_dir=args.flight_dir,
            **snapshot_kwargs,
        )
    cfg_rest = _apply_fault_config(args) if args.fault_config else {}
    spec_kwargs = dict(
        timesteps=args.timesteps,
        verify_period=args.verify_period,
        verify_cost_s=args.verify_cost,
        sdc_coverage=args.sdc_coverage,
        sdc_correct_prob=args.sdc_correct_prob,
        straggler_slowdown=args.straggler_slowdown,
        straggler_repair_s=args.straggler_repair,
        burst_size=args.burst_size,
        net_link_mtbf_s=args.net_link_mtbf,
        net_degrade_factor=args.net_degrade_factor,
        net_loss_prob=args.net_loss_prob,
        net_repair_s=args.net_repair_time,
        net_topology=args.net_topology,
    )
    if "net_fault_split" in cfg_rest:
        spec_kwargs["net_fault_split"] = cfg_rest["net_fault_split"]
    if args.fault_mix:
        spec_kwargs["fault_mix"] = _parse_fault_mix(args.fault_mix)
    elif "fault_mix" in cfg_rest:
        spec_kwargs["fault_mix"] = cfg_rest["fault_mix"]
    try:
        report = camp.run_grid(args.mtbf, args.periods, **spec_kwargs)
    finally:
        camp.close()
        if host_shim_installed:
            from repro.guard.fsfault import uninstall

            uninstall()
    if args.json_out:
        _write_text_atomic(args.json_out, report.to_json())
    lines = [report.format()]
    stats = camp.harness_stats
    if stats.retries or stats.pool_rebuilds or stats.quarantined:
        lines.append(f"harness: {stats.summary()}")
    code = 0
    if camp.aborted:
        # The resource guard (or a durable-write failure) requested a
        # clean abort.  The journal holds every completed replica, so a
        # re-run with --resume picks up exactly where this run stopped.
        summary = {
            "error": "campaign-aborted-resource-exhaustion",
            "detail": camp.abort_reason,
            "resumable": bool(args.journal),
            "journal": args.journal or "",
        }
        print(json.dumps(summary, sort_keys=True), file=sys.stderr)
        lines.append(f"aborted: {camp.abort_reason}")
        code = 4
    elif report.points and all(p.replicas_done == 0 for p in report.points):
        # Every replica of every grid point was quarantined: the report
        # carries no data.  Emit a machine-readable error summary on
        # stderr and fail the process so schedulers/CI notice.
        summary = {
            "error": "campaign-produced-no-results",
            "detail": "every replica was quarantined after exhausting retries",
            "points": len(report.points),
            "reps": camp.reps,
            "quarantined": sorted(stats.quarantined),
            "failure_kinds": dict(sorted(stats.by_kind.items())),
        }
        print(json.dumps(summary, sort_keys=True), file=sys.stderr)
        code = 3
    return "\n".join(lines), code


def _run_analyze(args) -> tuple[str, int]:
    """Post-mortem a campaign journal; returns ``(stdout text, exit code)``.

    Exit code 5 ("no usable data") covers a missing/unreadable journal
    and a journal that holds no grid points, with a machine-readable
    JSON summary on stderr — mirroring the campaign's exit-3/4 idiom.
    """
    from repro.core.forensics import (
        analyze_journal,
        format_analysis,
        worst_fault_trace,
    )

    def _no_data(error: str, detail: str) -> tuple[str, int]:
        summary = {
            "error": error,
            "detail": detail,
            "journal": args.journal,
        }
        print(json.dumps(summary, sort_keys=True), file=sys.stderr)
        return "", 5

    try:
        analysis = analyze_journal(
            args.journal, flight_dir=args.flight_dir, top_k=args.top
        )
    except FileNotFoundError:
        return _no_data("analyze-journal-not-found", "journal does not exist")
    except (OSError, ValueError, KeyError) as exc:
        return _no_data(
            "analyze-journal-unreadable", f"{type(exc).__name__}: {exc}"
        )
    if not analysis["points"]:
        return _no_data(
            "analyze-journal-empty", "journal holds no campaign points"
        )
    if args.json_out:
        _write_text_atomic(
            args.json_out, json.dumps(analysis, sort_keys=True, indent=1)
        )
    if args.trace_out:
        _write_text_atomic(
            args.trace_out, json.dumps(worst_fault_trace(analysis))
        )
    return format_analysis(analysis), 0


def _fit_models(out: str, seed: int, all_levels: bool) -> str:
    from repro.core.workflow import ModelDevelopment
    from repro.exps.casestudy import CASE_KERNELS
    from repro.exps.extensions import ALL_LEVEL_KERNELS
    from repro.models.registry import ModelRegistry
    from repro.testbed.quartz import make_quartz

    kernels = ALL_LEVEL_KERNELS if all_levels else CASE_KERNELS
    machine = make_quartz()
    dev = ModelDevelopment(machine, kernels, seed=seed).run()
    registry = ModelRegistry.from_fitted(dev.fitted, machine=machine.name)
    registry.save(out)
    table = dev.validation_table()
    lines = [f"saved {len(registry)} models to {out}"]
    for kernel, mape in sorted(table.items()):
        lines.append(f"  {kernel}: full-grid MAPE {mape:.2f}%")
    return "\n".join(lines)


def _show_models(path: str) -> str:
    from repro.models.registry import ModelRegistry

    registry = ModelRegistry.load(path)
    lines = [f"registry for machine {registry.machine!r}: {len(registry)} models"]
    for kernel in registry.kernels():
        model = registry.get(kernel)
        desc = getattr(model, "expression", type(model).__name__)
        lines.append(f"  {kernel}: {desc}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for name, (artifact, desc) in _EXPERIMENTS.items():
            print(f"{name:<8s} {artifact:<10s} {desc}")
        return 0
    if args.command == "campaign":
        text, code = _run_campaign(args)
        print(text)
        return code
    if args.command == "analyze":
        text, code = _run_analyze(args)
        if text:
            print(text)
        return code
    if args.command == "faults":
        print(_format_faults_list())
        return 0
    if args.command == "metrics":
        from repro.obs.export import summarize_metrics

        print(summarize_metrics(args.path))
        return 0
    if args.command == "fit-models":
        print(_fit_models(args.out, args.seed, args.all_levels))
        return 0
    if args.command == "show-models":
        print(_show_models(args.path))
        return 0
    print(_run_experiment(args.command, args.seed, args.reps))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
