"""Resource watchdog: probe disk/RSS/fds, feed the degradation ladder.

The :class:`ResourceGuard` is polled from the supervisor loop at
heartbeat cadence.  Each (throttled) tick it samples

* free disk bytes under the campaign's durable-write directory,
* this process's resident set size (``/proc/self/status`` VmRSS),
* this process's open file-descriptor count (``/proc/self/fd``),

publishes the sample to the ``guard_disk_free_bytes`` /
``guard_rss_bytes`` / ``guard_open_fds`` gauges, compares it against
:class:`ResourceLimits`, and tells the ladder whether this poll was
healthy or pressured.  The ladder owns all escalation/recovery policy;
the guard only measures.

Probes are injectable (``disk_probe=...`` etc.) so tests can simulate
a filling disk without actually filling one; on platforms without
``/proc`` the RSS/fd probes return ``None`` and their limits simply
never trip.
"""

from __future__ import annotations

import os
import shutil
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.guard.ladder import DegradationLadder


def disk_free_bytes(path: str) -> Optional[int]:
    """Free bytes on the filesystem holding *path* (None if unstattable)."""
    try:
        return shutil.disk_usage(path).free
    except OSError:
        return None


def rss_bytes() -> Optional[int]:
    """Resident set size of this process, via /proc (None elsewhere)."""
    try:
        with open("/proc/self/status", "r", encoding="ascii", errors="replace") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    # "VmRSS:      123456 kB"
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


def open_fd_count() -> Optional[int]:
    """Open file descriptors of this process, via /proc (None elsewhere)."""
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return None


@dataclass(frozen=True)
class ResourceLimits:
    """Thresholds below/above which a poll counts as pressured.

    ``min_disk_free_bytes`` is a *floor* on headroom; ``max_rss_bytes``
    and ``max_open_fds`` are ceilings.  ``None`` disables that check.
    """

    min_disk_free_bytes: Optional[int] = 64 * 1024 * 1024
    max_rss_bytes: Optional[int] = None
    max_open_fds: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("min_disk_free_bytes", "max_rss_bytes", "max_open_fds"):
            val = getattr(self, name)
            if val is not None and val < 0:
                raise ValueError(f"{name} must be >= 0, got {val}")


@dataclass(frozen=True)
class ResourceSample:
    """One poll's measurements (None = probe unavailable)."""

    disk_free: Optional[int]
    rss: Optional[int]
    open_fds: Optional[int]

    def pressure_reasons(self, limits: ResourceLimits) -> list[str]:
        reasons = []
        if (
            limits.min_disk_free_bytes is not None
            and self.disk_free is not None
            and self.disk_free < limits.min_disk_free_bytes
        ):
            reasons.append(
                f"disk free {self.disk_free} < floor {limits.min_disk_free_bytes}"
            )
        if (
            limits.max_rss_bytes is not None
            and self.rss is not None
            and self.rss > limits.max_rss_bytes
        ):
            reasons.append(f"rss {self.rss} > ceiling {limits.max_rss_bytes}")
        if (
            limits.max_open_fds is not None
            and self.open_fds is not None
            and self.open_fds > limits.max_open_fds
        ):
            reasons.append(f"open fds {self.open_fds} > ceiling {limits.max_open_fds}")
        return reasons


class ResourceGuard:
    """Polls resource probes and drives a :class:`DegradationLadder`."""

    def __init__(
        self,
        watch_path: str = ".",
        limits: Optional[ResourceLimits] = None,
        ladder: Optional[DegradationLadder] = None,
        poll_interval_s: float = 1.0,
        registry=None,
        clock: Callable[[], float] = time.monotonic,
        disk_probe: Optional[Callable[[str], Optional[int]]] = None,
        rss_probe: Optional[Callable[[], Optional[int]]] = None,
        fd_probe: Optional[Callable[[], Optional[int]]] = None,
    ) -> None:
        if poll_interval_s < 0:
            raise ValueError(f"poll_interval_s must be >= 0, got {poll_interval_s}")
        self.watch_path = str(watch_path)
        self.limits = limits or ResourceLimits()
        self.ladder = ladder or DegradationLadder(registry=registry, clock=clock)
        self.poll_interval_s = float(poll_interval_s)
        self.registry = registry
        self._clock = clock
        self._disk_probe = disk_probe or disk_free_bytes
        self._rss_probe = rss_probe or rss_bytes
        self._fd_probe = fd_probe or open_fd_count
        self._next_poll_at = 0.0  # first tick always polls
        self.polls = 0
        self.last_sample: Optional[ResourceSample] = None

    # Convenience pass-throughs so callers hold one object, not two.
    @property
    def stage(self) -> str:
        return self.ladder.stage

    @property
    def paused(self) -> bool:
        return self.ladder.paused

    @property
    def abort_requested(self) -> bool:
        return self.ladder.abort_requested

    @property
    def abort_reason(self) -> str:
        return self.ladder.abort_reason

    def sample(self) -> ResourceSample:
        """Probe now, unconditionally (no throttle, no ladder feed)."""
        return ResourceSample(
            disk_free=self._disk_probe(self.watch_path),
            rss=self._rss_probe(),
            open_fds=self._fd_probe(),
        )

    def tick(self, force: bool = False) -> Optional[ResourceSample]:
        """Throttled poll: probe, publish gauges, feed the ladder.

        Returns the sample when a poll ran, else ``None``.
        """
        now = self._clock()
        if not force and now < self._next_poll_at:
            return None
        self._next_poll_at = now + self.poll_interval_s
        self.polls += 1
        samp = self.sample()
        self.last_sample = samp
        self._publish(samp)
        reasons = samp.pressure_reasons(self.limits)
        if reasons:
            self.ladder.note_pressure(reasons)
        else:
            self.ladder.note_healthy()
        return samp

    def _publish(self, samp: ResourceSample) -> None:
        reg = self.registry
        if reg is None:
            from repro.obs.metrics import get_registry

            reg = get_registry()
        if samp.disk_free is not None:
            reg.gauge(
                "guard_disk_free_bytes",
                help="Free disk bytes under the guarded write directory.",
            ).set(samp.disk_free)
        if samp.rss is not None:
            reg.gauge(
                "guard_rss_bytes", help="Supervisor resident set size."
            ).set(samp.rss)
        if samp.open_fds is not None:
            reg.gauge(
                "guard_open_fds", help="Supervisor open file descriptors."
            ).set(samp.open_fds)
