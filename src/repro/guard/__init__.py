"""repro.guard — resource-exhaustion resilience for the durability stack.

Three pieces:

* :mod:`repro.guard.fsfault` — deterministic, injectable filesystem
  faults (``ENOSPC``/``EIO``/``EMFILE``/slow I/O) plus :func:`fsync_dir`
  for directory-entry durability after ``os.replace``.
* :mod:`repro.guard.resource` — the :class:`ResourceGuard` watchdog
  (disk headroom, RSS, open fds) polled at supervisor cadence.
* :mod:`repro.guard.ladder` — the :class:`DegradationLadder` of ordered,
  observable, reversible stages, from shedding old snapshots all the way
  to a checkpoint-and-clean-abort that leaves a resumable journal.

:mod:`repro.guard.circuit` provides the :class:`CircuitBreaker` used for
exporter suspension and half-open recovery probes.
"""

from repro.guard.circuit import CircuitBreaker
from repro.guard.fsfault import (
    FS_FAULT_KINDS,
    FsFaultConfig,
    FsFaultInjector,
    active,
    fault_check,
    fsync_dir,
    injected,
    install,
    uninstall,
)
from repro.guard.ladder import STAGES, DegradationLadder
from repro.guard.resource import (
    ResourceGuard,
    ResourceLimits,
    ResourceSample,
    disk_free_bytes,
    open_fd_count,
    rss_bytes,
)

__all__ = [
    "FS_FAULT_KINDS",
    "STAGES",
    "CircuitBreaker",
    "DegradationLadder",
    "FsFaultConfig",
    "FsFaultInjector",
    "ResourceGuard",
    "ResourceLimits",
    "ResourceSample",
    "active",
    "disk_free_bytes",
    "fault_check",
    "fsync_dir",
    "injected",
    "install",
    "open_fd_count",
    "rss_bytes",
    "uninstall",
]
