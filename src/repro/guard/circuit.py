"""A minimal circuit breaker for exporter/sink recovery probes.

Closed → writes flow.  A failure opens the circuit: writes are skipped
(suspended, never fatal) until ``cooldown_s`` elapses, then exactly one
half-open probe is allowed through — success recloses the circuit,
failure re-opens it for another cooldown.  The degradation ladder uses
:meth:`CircuitBreaker.force_open` to suspend a healthy sink outright;
the same half-open machinery then serves as its recovery probe.
"""

from __future__ import annotations

import time
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """State machine guarding one sink."""

    def __init__(
        self,
        cooldown_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be > 0, got {cooldown_s}")
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self.state = CLOSED
        self.failures = 0
        self.trips = 0        #: closed/forced → open transitions
        self.probes = 0       #: half-open attempts granted
        self._opened_at = 0.0

    def allow(self) -> bool:
        """May the caller attempt the guarded operation right now?"""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self._clock() - self._opened_at >= self.cooldown_s:
                self.state = HALF_OPEN
                self.probes += 1
                return True  # the single recovery probe
            return False
        return False  # HALF_OPEN: a probe is already in flight

    def success(self) -> None:
        """The guarded operation succeeded: (re)close the circuit."""
        self.state = CLOSED
        self.failures = 0

    def failure(self) -> None:
        """The guarded operation failed: open (or re-open) the circuit."""
        self.failures += 1
        if self.state != OPEN:
            self.trips += 1
        self.state = OPEN
        self._opened_at = self._clock()

    def force_open(self) -> None:
        """Suspend the sink without a failure (ladder stage action)."""
        if self.state != OPEN:
            self.trips += 1
        self.state = OPEN
        self._opened_at = self._clock()

    def reset(self) -> None:
        """Unconditionally reclose (ladder stage exit)."""
        self.state = CLOSED
        self.failures = 0

    @property
    def suspended(self) -> bool:
        return self.state != CLOSED
