"""The degradation ladder: ordered, observable, reversible stages.

When the :class:`~repro.guard.resource.ResourceGuard` reports sustained
resource pressure, the ladder climbs one rung at a time, sacrificing
the cheapest capability first:

====================  ========================================================
stage                 what is sacrificed
====================  ========================================================
``normal``            nothing
``shed_snapshots``    old replica snapshots (disk) — resume granularity
``stretch_cadence``   snapshot frequency — more recompute after a kill
``suspend_exporters`` metric sinks (circuit-breaker opened) — telemetry lag
``pause_submission``  new task launches (bounded backpressure) — throughput
``abort``             the run itself — but *resumably*: journal stays valid
====================  ========================================================

Every transition is logged, appended to :attr:`transitions`, counted in
``guard_ladder_transitions_total{direction,stage}`` and mirrored into
the ``guard_ladder_stage`` gauge.  Transitions are **reversible**:
sustained healthy polls walk back down one rung at a time, firing each
stage's exit callbacks (e.g. reclosing a suspended sink's breaker so
its half-open probe can retry the failed export).

Pacing: the first pressure poll escalates immediately (normal never
absorbs pressure); each further rung requires ``polls_per_stage``
consecutive unhealthy polls, giving the previous stage's action a
chance to relieve pressure.  ``pause_submission`` is additionally
bounded by ``max_pause_s`` wall time, after which the ladder escalates
to ``abort`` — backpressure must not become a livelock.
"""

from __future__ import annotations

import logging
import time
from typing import Callable, Optional, Sequence

log = logging.getLogger("repro.guard")

STAGE_NORMAL = "normal"
STAGE_SHED_SNAPSHOTS = "shed_snapshots"
STAGE_STRETCH_CADENCE = "stretch_cadence"
STAGE_SUSPEND_EXPORTERS = "suspend_exporters"
STAGE_PAUSE_SUBMISSION = "pause_submission"
STAGE_ABORT = "abort"

#: The ladder, mildest first.  Index into this tuple is the severity.
STAGES = (
    STAGE_NORMAL,
    STAGE_SHED_SNAPSHOTS,
    STAGE_STRETCH_CADENCE,
    STAGE_SUSPEND_EXPORTERS,
    STAGE_PAUSE_SUBMISSION,
    STAGE_ABORT,
)


class DegradationLadder:
    """Stage state machine with enter/exit callbacks and hysteresis."""

    def __init__(
        self,
        registry=None,
        polls_per_stage: int = 2,
        recover_polls: int = 3,
        max_pause_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        label: str = "guard",
    ) -> None:
        if polls_per_stage < 1:
            raise ValueError(f"polls_per_stage must be >= 1, got {polls_per_stage}")
        if recover_polls < 1:
            raise ValueError(f"recover_polls must be >= 1, got {recover_polls}")
        if max_pause_s <= 0:
            raise ValueError(f"max_pause_s must be > 0, got {max_pause_s}")
        self.registry = registry
        self.polls_per_stage = polls_per_stage
        self.recover_polls = recover_polls
        self.max_pause_s = float(max_pause_s)
        self.label = label
        self._clock = clock
        self._stage_i = 0
        #: chronological ``(from, to, reason)`` record of every transition
        self.transitions: list[tuple[str, str, str]] = []
        self._enter: dict[str, list[Callable[[], None]]] = {}
        self._exit: dict[str, list[Callable[[], None]]] = {}
        self._observers: list[Callable[[str, str, str], None]] = []
        self._unhealthy_streak = 0
        self._healthy_streak = 0
        self._pause_entered_at: Optional[float] = None
        self.action_errors = 0

    # -- state ----------------------------------------------------------------

    @property
    def stage(self) -> str:
        return STAGES[self._stage_i]

    @property
    def paused(self) -> bool:
        """Task submission should be held back (pause or abort stage)."""
        return self._stage_i >= STAGES.index(STAGE_PAUSE_SUBMISSION)

    @property
    def abort_requested(self) -> bool:
        return self.stage == STAGE_ABORT

    @property
    def abort_reason(self) -> str:
        for frm, to, reason in reversed(self.transitions):
            if to == STAGE_ABORT:
                return reason
        return ""

    # -- wiring ---------------------------------------------------------------

    def on_enter(self, stage: str, fn: Callable[[], None]) -> None:
        """Run *fn* whenever the ladder escalates **into** *stage*."""
        self._check_stage(stage)
        self._enter.setdefault(stage, []).append(fn)

    def on_exit(self, stage: str, fn: Callable[[], None]) -> None:
        """Run *fn* whenever the ladder recovers **out of** *stage*."""
        self._check_stage(stage)
        self._exit.setdefault(stage, []).append(fn)

    def on_transition(self, fn: Callable[[str, str, str], None]) -> None:
        """Observe every transition as ``fn(from, to, reason)``."""
        self._observers.append(fn)

    @staticmethod
    def _check_stage(stage: str) -> None:
        if stage not in STAGES:
            raise ValueError(f"unknown ladder stage {stage!r} (not in {STAGES})")

    # -- transitions -----------------------------------------------------------

    def escalate(self, reason: str) -> str:
        """Climb one rung; returns the new stage (idempotent at abort)."""
        if self.stage == STAGE_ABORT:
            return self.stage
        frm = self.stage
        self._stage_i += 1
        to = self.stage
        if to == STAGE_PAUSE_SUBMISSION:
            self._pause_entered_at = self._clock()
        self._record(frm, to, reason, "up")
        self._run_actions(self._enter.get(to, ()), to, "enter")
        return to

    def recover(self, reason: str) -> str:
        """Step back down one rung, firing the left stage's exit actions."""
        if self._stage_i == 0:
            return self.stage
        frm = self.stage
        self._stage_i -= 1
        to = self.stage
        if frm == STAGE_PAUSE_SUBMISSION:
            self._pause_entered_at = None
        self._record(frm, to, reason, "down")
        self._run_actions(self._exit.get(frm, ()), frm, "exit")
        return to

    def _record(self, frm: str, to: str, reason: str, direction: str) -> None:
        self.transitions.append((frm, to, reason))
        log.warning(
            "[%s] degradation ladder %s: %s -> %s (%s)",
            self.label, direction, frm, to, reason,
        )
        reg = self._registry()
        reg.counter(
            "guard_ladder_transitions_total",
            help="Degradation-ladder stage transitions.",
            direction=direction,
            stage=to,
        ).inc()
        reg.gauge(
            "guard_ladder_stage",
            help="Current degradation-ladder stage index (0 = normal).",
        ).set(self._stage_i)
        for fn in self._observers:
            try:
                fn(frm, to, reason)
            except Exception:  # pragma: no cover - observer bugs stay local
                log.exception("ladder observer failed")

    def _run_actions(self, actions, stage: str, kind: str) -> None:
        # Stage actions free resources or toggle degraded modes; a buggy
        # one must never take down the run the ladder exists to protect.
        for fn in actions:
            try:
                fn()
            except Exception:
                self.action_errors += 1
                self._registry().counter(
                    "guard_action_errors_total",
                    help="Ladder stage actions that raised.",
                    stage=stage,
                ).inc()
                log.exception("ladder %s action for %s failed", kind, stage)

    def _registry(self):
        if self.registry is not None:
            return self.registry
        from repro.obs.metrics import get_registry

        return get_registry()

    # -- hysteresis feed (called by the ResourceGuard each poll) ---------------

    def note_pressure(self, reasons: Sequence[str]) -> None:
        """One poll showed resource pressure; maybe escalate."""
        self._healthy_streak = 0
        self._unhealthy_streak += 1
        reason = ", ".join(reasons) if reasons else "resource pressure"
        if (
            self.stage == STAGE_PAUSE_SUBMISSION
            and self._pause_entered_at is not None
            and self._clock() - self._pause_entered_at >= self.max_pause_s
        ):
            self.escalate(
                f"backpressure bound exceeded ({self.max_pause_s}s paused; {reason})"
            )
            self._unhealthy_streak = 0
            return
        if self._stage_i == 0 or self._unhealthy_streak >= self.polls_per_stage:
            self.escalate(reason)
            self._unhealthy_streak = 0

    def note_healthy(self) -> None:
        """One poll showed no pressure; maybe step back down."""
        self._unhealthy_streak = 0
        if self._stage_i == 0:
            return
        self._healthy_streak += 1
        if self._healthy_streak >= self.recover_polls:
            self.recover("pressure cleared")
            self._healthy_streak = 0
