"""Injectable filesystem faults for the durability stack.

Every durable-write path in the repo — :class:`WriteAheadJournal`
appends, :class:`Snapshot` saves, :class:`EventJournal` records, the
JSONL/Prometheus metric sinks and the CLI's atomic report writes —
funnels through :func:`fault_check` before touching the filesystem.
With no injector installed the call is one module-global read and an
``is None`` test; with one installed, each checked operation draws a
deterministic uniform from ``sha256(seed:op_index)`` and may raise
``ENOSPC`` / ``EIO`` / ``EMFILE`` or stall (slow I/O), exactly as a
full disk, dying device or fd-exhausted host would.

Determinism is the point: a given :class:`FsFaultConfig` produces the
same fault at the same operation index every run, so a chaos test that
kills the Nth WAL append can assert byte-exact resume behaviour.  The
config is a plain dict-round-trippable dataclass so it can ride the
:data:`repro.core.supervisor.FAULT_ENV_VAR` environment variable into
worker processes (see ``HarnessFaultInjector.fs``).

This module also owns :func:`fsync_dir`, the directory-entry fsync that
makes ``os.replace``-based atomic writes durable across power loss (the
rename itself lives in the directory inode, not the file).
"""

from __future__ import annotations

import errno
import hashlib
import os
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, fields
from typing import Optional

#: Fault kinds the shim can inject, in threshold-stacking order.
FS_FAULT_KINDS = ("enospc", "eio", "emfile", "slow")

_ERRNO = {
    "enospc": errno.ENOSPC,
    "eio": errno.EIO,
    "emfile": errno.EMFILE,
}


@dataclass(frozen=True)
class FsFaultConfig:
    """What to inject, how often, and where.

    Parameters
    ----------
    enospc_prob / eio_prob / emfile_prob:
        Per-checked-operation probability of raising the corresponding
        :class:`OSError` (stacked thresholds over one uniform draw, so
        they must sum to <= 1 together with ``slow_prob``).
    slow_prob / slow_s:
        Probability of stalling the operation by ``slow_s`` seconds
        instead of failing it (a congested or thrashing device).
    after_ops:
        Arm the injector only after this many eligible operations —
        ``after_ops=N`` with ``enospc_prob=1.0`` deterministically
        fails the (N+1)-th durable write, the "disk fills mid-run"
        scenario.
    max_faults:
        Stop injecting after this many fired faults (``None`` = never):
        models space being freed / the device recovering.
    path_substring:
        Only operations whose path contains this substring are eligible
        (e.g. ``"wal"`` to starve just the journal).  Empty = all.
    ops:
        Restrict eligibility to these operation names (``None`` = all).
        See the ``fault_check`` call sites for the vocabulary
        (``wal.append``, ``snapshot.write``, ``metrics.jsonl``, ...).
    seed:
        Keys the deterministic draw stream.
    """

    enospc_prob: float = 0.0
    eio_prob: float = 0.0
    emfile_prob: float = 0.0
    slow_prob: float = 0.0
    slow_s: float = 0.01
    after_ops: int = 0
    max_faults: Optional[int] = None
    path_substring: str = ""
    ops: Optional[tuple] = None
    seed: int = 0

    def __post_init__(self) -> None:
        total = self.enospc_prob + self.eio_prob + self.emfile_prob + self.slow_prob
        if not 0.0 <= total <= 1.0:
            raise ValueError(f"fs fault probabilities must sum to <= 1, got {total}")
        if self.after_ops < 0:
            raise ValueError(f"after_ops must be >= 0, got {self.after_ops}")
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError(f"max_faults must be >= 0, got {self.max_faults}")
        if self.slow_s < 0:
            raise ValueError(f"slow_s must be >= 0, got {self.slow_s}")
        if self.ops is not None and not isinstance(self.ops, tuple):
            # JSON round-trips lists; normalize so asdict/equality behave.
            object.__setattr__(self, "ops", tuple(self.ops))

    def to_dict(self) -> dict:
        d = asdict(self)
        if d["ops"] is not None:
            d["ops"] = list(d["ops"])
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "FsFaultConfig":
        """Build from a dict, ignoring unknown keys (forward compat)."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in dict(data).items() if k in known})


class FsFaultInjector:
    """Deterministic fault stream over checked filesystem operations."""

    def __init__(self, config: FsFaultConfig) -> None:
        self.config = config
        #: eligible operations seen so far (the deterministic draw index)
        self.ops_seen = 0
        #: faults actually fired
        self.injected = 0
        self.by_kind: dict[str, int] = {kind: 0 for kind in FS_FAULT_KINDS}

    def draw(self, index: int) -> float:
        digest = hashlib.sha256(f"{self.config.seed}:{index}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def check(self, op: str, path: str = "", nbytes: int = 0) -> None:
        """Maybe fail/stall the operation *op* targeting *path*."""
        cfg = self.config
        if cfg.ops is not None and op not in cfg.ops:
            return
        if cfg.path_substring and cfg.path_substring not in str(path):
            return
        index = self.ops_seen
        self.ops_seen += 1
        if index < cfg.after_ops:
            return
        if cfg.max_faults is not None and self.injected >= cfg.max_faults:
            return
        u = self.draw(index)
        edge = 0.0
        for kind, prob in (
            ("enospc", cfg.enospc_prob),
            ("eio", cfg.eio_prob),
            ("emfile", cfg.emfile_prob),
            ("slow", cfg.slow_prob),
        ):
            edge += prob
            if u < edge:
                self._fire(kind, op, path)
                return

    def _fire(self, kind: str, op: str, path: str) -> None:
        self.injected += 1
        self.by_kind[kind] += 1
        _count_injected(kind, op)
        if kind == "slow":
            time.sleep(self.config.slow_s)
            return
        code = _ERRNO[kind]
        raise OSError(
            code, f"{os.strerror(code)} [injected by fsfault: {op}]", str(path)
        )


def _count_injected(kind: str, op: str) -> None:
    """Rare-path telemetry (lazy import keeps this module obs-free)."""
    from repro.obs.metrics import get_registry

    get_registry().counter(
        "guard_fsfaults_injected_total",
        help="Filesystem faults injected by the fsfault shim.",
        kind=kind,
        op=op,
    ).inc()


# -- process-wide installation -----------------------------------------------

_installed: Optional[FsFaultInjector] = None


def install(injector: FsFaultInjector) -> FsFaultInjector:
    """Make *injector* the process-wide shim (replacing any previous)."""
    global _installed
    _installed = injector
    return injector


def uninstall() -> None:
    global _installed
    _installed = None


def active() -> Optional[FsFaultInjector]:
    return _installed


@contextmanager
def injected(config_or_injector):
    """``with injected(FsFaultConfig(...)):`` — scoped installation."""
    inj = (
        config_or_injector
        if isinstance(config_or_injector, FsFaultInjector)
        else FsFaultInjector(config_or_injector)
    )
    prev = _installed
    install(inj)
    try:
        yield inj
    finally:
        install(prev) if prev is not None else uninstall()


def fault_check(op: str, path: str = "", nbytes: int = 0) -> None:
    """The hook durable-write paths call before touching the filesystem.

    Near-zero cost when no injector is installed (one global read).
    """
    inj = _installed
    if inj is not None:
        inj.check(op, path, nbytes)


# -- directory-entry durability ------------------------------------------------


def fsync_dir(path: str) -> None:
    """fsync the *directory* so a just-created/renamed entry survives a
    host crash.  ``os.replace`` makes a write atomic, but the rename
    itself lives in the directory inode — without this fsync a crash
    immediately after the replace can roll the directory back to the old
    entry (or to nothing, for a fresh file).

    Platforms without directory fds (e.g. Windows) degrade to a no-op.
    """
    fault_check("fsync_dir", path)
    try:
        fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. fsync unsupported on dir fd
        pass
    finally:
        os.close(fd)
