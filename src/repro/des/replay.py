"""Deterministic replay: event journals and the recovery-correctness oracle.

The engine's determinism claim — and the snapshot/restore claim built on
top of it — is only worth what can be *checked*.  This module provides
the checking machinery:

* :class:`EventJournal` — an append-only JSONL log of fired events
  ``(time, priority, seq, src, dst)``.  Attach one to an engine
  (:meth:`~repro.des.engine.Engine.attach_journal`) and every fired
  event is durably recorded; after a crash the journal holds the exact
  prefix the dead run executed.
* :func:`diff_traces` — first divergences between two event traces.
* :func:`replay_and_diff` — the oracle: re-execute a simulation from a
  factory and diff its live trace against a recorded journal.  A
  restore is correct iff the journal written across kill/restore/
  continue replays with zero divergences.

Journal records serialize floats through ``repr`` round-tripping (JSON
floats in Python preserve exact values), so comparison is byte-exact,
not approximate.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.des.engine import Engine
from repro.des.event import Event
from repro.guard.fsfault import fault_check, fsync_dir

#: Journal format version.
JOURNAL_VERSION = 1

#: One trace record: (time, priority, seq, src, dst).
TraceRecord = tuple


class ReplayError(RuntimeError):
    """The journal is unreadable or structurally invalid."""


def event_record(ev: Event) -> TraceRecord:
    """The canonical trace tuple of one fired event."""
    return (ev.time, ev.priority, ev.seq, ev.src, ev.dst)


class EventJournal:
    """Append-only JSONL journal of fired events.

    Parameters
    ----------
    path:
        Journal file.  An existing journal is opened for append (the
        recorded prefix is kept — that is the crash-recovery use case);
        pass ``fresh=True`` to truncate instead.
    fsync:
        When true every record is fsynced — crash-durable but slow.
        The default flushes without fsync, which suffices for the
        determinism oracle and same-process kill tests.
    """

    def __init__(self, path: str, fresh: bool = False, fsync: bool = False) -> None:
        self.path = path
        self.fsync = fsync
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        exists = os.path.exists(path) and os.path.getsize(path) > 0
        fault_check("journal.open", path)
        if fresh or not exists:
            self._fh = open(path, "w")
            self._write({"kind": "journal", "version": JOURNAL_VERSION})
            if fsync:
                # Crash-durable journals need their directory entry
                # persisted too, or a crash can lose the whole file.
                fsync_dir(parent)
        else:
            read_journal(path)  # validate header before appending
            self._fh = open(path, "a")

    def record(self, ev: Event) -> None:
        """Append one fired event."""
        t, prio, seq, src, dst = event_record(ev)
        self._write({"t": t, "p": prio, "q": seq, "s": src, "d": dst})

    def _write(self, obj: dict) -> None:
        data = json.dumps(obj) + "\n"
        fault_check("journal.append", self.path, len(data))
        self._fh.write(data)
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_journal(path: str) -> list[TraceRecord]:
    """Load a journal's trace records, tolerating a torn final line."""
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError as exc:
        raise ReplayError(f"cannot read journal {path!r}: {exc}") from exc
    good = len(raw)
    if raw and not raw.endswith(b"\n"):
        good = raw.rfind(b"\n") + 1  # torn tail from a mid-write kill
    lines = raw[:good].decode().splitlines()
    if not lines:
        raise ReplayError(f"journal {path!r} is empty")
    header = json.loads(lines[0])
    if header.get("kind") != "journal":
        raise ReplayError(f"journal {path!r} has no header line")
    if header.get("version") != JOURNAL_VERSION:
        raise ReplayError(
            f"journal {path!r} has version {header.get('version')!r}, "
            f"expected {JOURNAL_VERSION}"
        )
    records: list[TraceRecord] = []
    for line in lines[1:]:
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            break  # torn interior line: drop the suspect suffix
        records.append((rec["t"], rec["p"], rec["q"], rec["s"], rec["d"]))
    return records


@dataclass(frozen=True)
class TraceDivergence:
    """One point where two traces disagree."""

    index: int
    expected: Optional[TraceRecord]  #: None = the actual trace ran longer
    actual: Optional[TraceRecord]    #: None = the actual trace ended early

    def __str__(self) -> str:
        return (
            f"event #{self.index}: expected {self.expected!r}, "
            f"got {self.actual!r}"
        )


def diff_traces(
    expected: Sequence[TraceRecord],
    actual: Sequence[TraceRecord],
    max_divergences: int = 10,
) -> list[TraceDivergence]:
    """First (up to *max_divergences*) positions where the traces differ."""
    out: list[TraceDivergence] = []
    for i in range(max(len(expected), len(actual))):
        e = tuple(expected[i]) if i < len(expected) else None
        a = tuple(actual[i]) if i < len(actual) else None
        if e != a:
            out.append(TraceDivergence(i, e, a))
            if len(out) >= max_divergences:
                break
    return out


@dataclass
class ReplayReport:
    """Outcome of one oracle replay."""

    journal_events: int
    replayed_events: int
    divergences: list[TraceDivergence]

    @property
    def identical(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        if self.identical:
            return (
                f"replay identical: {self.replayed_events} events match "
                f"the {self.journal_events}-event journal"
            )
        return (
            f"replay DIVERGED at {len(self.divergences)} position(s); "
            f"first: {self.divergences[0]}"
        )


def replay_and_diff(
    engine_factory: Callable[[], Engine],
    journal: str | Sequence[TraceRecord],
    until: Optional[float] = None,
    max_events: Optional[int] = None,
) -> ReplayReport:
    """Re-execute a simulation and diff it against a recorded journal.

    *engine_factory* must rebuild the simulation exactly as originally
    configured (same components, seeds, links) and return its engine,
    which is run here with tracing forced on.  This is the recovery
    oracle: a snapshot/restore (or partition failover) is correct iff
    the journal it produced replays with ``identical=True``.
    """
    expected = read_journal(journal) if isinstance(journal, str) else list(journal)
    engine = engine_factory()
    engine.trace = True
    budget = max_events if max_events is not None else len(expected) + 1
    try:
        engine.run(until=until, max_events=budget)
    except Exception:
        # A diverging replay may livelock against the budget; the trace
        # collected so far still pinpoints the divergence.
        pass
    actual = [tuple(rec) for rec in engine.trace_log]
    return ReplayReport(
        journal_events=len(expected),
        replayed_events=len(actual),
        divergences=diff_traces(expected, actual),
    )
