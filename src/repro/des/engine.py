"""The sequential discrete-event engine.

The engine owns the global event queue, the simulation clock, component
registration and RNG streams.  Its loop is intentionally minimal::

    while queue not empty and now <= end:
        event = queue.pop()
        now = event.time
        event.handler(event)

Determinism comes from the queue's total ordering and from per-component
RNG streams (:class:`~repro.des.rng.RNGRegistry`).
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Callable, Optional

from repro.des.event import Event, EventQueue
from repro.des.rng import RNGRegistry
from repro.des.snapshot import (
    AutoSnapshotPolicy,
    Snapshot,
    SnapshotError,
    SnapshotStore,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.component import Component
    from repro.des.link import Link
    from repro.des.replay import EventJournal
    from repro.obs.instrument import EngineObs


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (duplicate names, time travel...)."""


class Engine:
    """Sequential component-based discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for all component RNG streams.
    trace:
        When true, every fired event is appended to :attr:`trace_log` as
        ``(time, priority, seq, src, dst)`` — used by the engine-equivalence
        tests and handy for debugging.
    """

    def __init__(self, seed: int = 0, trace: bool = False) -> None:
        self.now: float = 0.0
        self.queue = EventQueue()
        self.components: dict[str, "Component"] = {}
        self.links: list["Link"] = []
        self.rngs = RNGRegistry(seed)
        self.events_fired = 0
        self.trace = trace
        self.trace_log: list[tuple] = []
        self._running = False
        self._setup_done = False
        self._finished = False
        #: optional periodic snapshot cadence (see :meth:`enable_autosnapshot`)
        self._autosnap: Optional[AutoSnapshotPolicy] = None
        #: optional append-only journal of fired events (not snapshotted:
        #: it holds an open file handle; reattach after a restore)
        self._journal: Optional["EventJournal"] = None
        #: optional observability adapter (see :meth:`attach_obs`); not
        #: snapshotted — it holds tracers/locks and wall-clock state
        self._obs: Optional["EngineObs"] = None
        #: optional flight recorder (see :meth:`attach_flightrec`); not
        #: snapshotted — it may hold an open spill file handle
        self._flightrec = None

    # -- construction -------------------------------------------------------

    def register(self, component: "Component") -> "Component":
        """Add *component* to the simulation.  Names must be unique."""
        if component.name in self.components:
            raise SimulationError(f"duplicate component name {component.name!r}")
        if component.engine is not None:
            raise SimulationError(
                f"component {component.name!r} already belongs to an engine"
            )
        component.engine = self
        self.components[component.name] = component
        return component

    def _register_link(self, link: "Link") -> None:
        self.links.append(link)

    # -- scheduling ----------------------------------------------------------

    def schedule_event(self, event: Event) -> Event:
        """Insert a fully-formed event into the queue."""
        if event.time < self.now:
            raise SimulationError(
                f"event scheduled in the past: {event.time} < now={self.now}"
            )
        return self.queue.push(event)

    def schedule(
        self, delay: float, handler: Callable[[Event], None], payload=None
    ) -> Event:
        """Schedule an engine-level (component-less) event after *delay*."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_event(
            Event(time=self.now + delay, handler=handler, payload=payload)
        )

    def cancel(self, event: Event) -> None:
        """Cancel a pending event, keeping queue accounting exact."""
        if not event.cancelled:
            event.cancel()
            self.queue.note_cancelled()

    # -- snapshot / restore --------------------------------------------------

    def snapshot(self, meta: Optional[dict] = None) -> Snapshot:
        """Capture full engine state (queue, components, clocks, RNGs).

        The capture is consistent between events; restoring it and
        continuing yields an event trace byte-identical to a run that
        was never interrupted.
        """
        return Snapshot.capture(self, meta=meta)

    @classmethod
    def restore(cls, source) -> "Engine":
        """Rebuild an engine from a :class:`Snapshot` or a saved path.

        The restored engine is ready to ``run()`` onward from the
        captured point; the event journal (if any was attached) must be
        reattached by the caller.
        """
        snap = Snapshot.load(source) if isinstance(source, str) else source
        engine = snap.restore()
        if not isinstance(engine, cls):
            raise SnapshotError(
                f"snapshot holds a {type(engine).__name__}, expected "
                f"{cls.__name__} (or a subclass)"
            )
        engine._running = False
        return engine

    def enable_autosnapshot(
        self,
        directory: str,
        every_events: Optional[int] = None,
        every_wall_s: Optional[float] = None,
        keep: int = 2,
        root=None,
    ) -> AutoSnapshotPolicy:
        """Snapshot periodically during :meth:`run` into *directory*.

        Cadence is by fired-event count and/or wall-clock seconds; *root*
        optionally widens the capture to an owning object (e.g. a
        simulator) whose graph includes this engine.
        """
        self._autosnap = AutoSnapshotPolicy(
            store=SnapshotStore(directory, keep=keep),
            every_events=every_events,
            every_wall_s=every_wall_s,
            root=root,
        )
        return self._autosnap

    def _count_autosnap_disabled(self) -> None:
        """Record that the autosnapshot cadence was dropped (disk fault)."""
        self._autosnap = None
        from repro.obs.metrics import get_registry

        get_registry().counter(
            "snapshot_autosnap_disabled_total",
            help="Autosnapshot cadences disabled after a persistence OSError.",
        ).inc()

    def attach_journal(self, journal: "EventJournal") -> None:
        """Append every subsequently fired event to *journal*."""
        self._journal = journal

    def attach_obs(self, obs: Optional["EngineObs"]) -> Optional["EngineObs"]:
        """Attach (or with ``None`` detach) an observability adapter.

        While attached, :meth:`run` brackets every handler call with
        wall-clock busy-time accounting, samples queue depth every 64
        events, and flushes run-level metrics (and an ``engine.run``
        span) through the adapter at run end.  Detached engines pay one
        ``is None`` test per run.
        """
        self._obs = obs
        return obs

    def attach_flightrec(self, rec):
        """Attach (or with ``None`` detach) a flight recorder.

        While attached, :meth:`run` samples a progress tick into the
        recorder every ``rec.tick_stride`` events (power-of-two mask,
        same idiom as the obs queue-depth sampling).  Detached engines
        pay one ``is None`` test per event.
        """
        self._flightrec = rec
        return rec

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_journal"] = None  # open file handle: reattach post-restore
        state["_obs"] = None  # wall-clock state and locks: reattach too
        state["_flightrec"] = None  # open spill handle: reattach too
        return state

    # -- execution -----------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time;
            ``None`` runs to queue exhaustion.
        max_events:
            Safety valve; raise :class:`SimulationError` if exceeded.

        Returns
        -------
        float
            The final simulation time.
        """
        if self._running:
            raise SimulationError("engine is already running")
        self._running = True
        try:
            if not self._setup_done:
                for comp in self.components.values():
                    comp.setup()
                self._setup_done = True
            end = float("inf") if until is None else float(until)
            fired_this_run = 0
            # Hoist the cadence test to one int compare per event: the
            # policy precomputes the events_fired count at which it next
            # needs a look (snapshotting at ~100k events/s rates must not
            # tax the hot loop with a method call per event).
            autosnap = self._autosnap
            autosnap_check = (
                autosnap.next_check_at(self.events_fired)
                if autosnap is not None
                else float("inf")
            )
            # Hoisted observability state: with obs attached the per-event
            # cost is two perf_counter reads and a dict update; without,
            # a single None test.
            obs = self._obs
            obs_busy = obs.busy if obs is not None else None
            if obs is not None:
                obs.run_started(self)
            # Hoisted flight-recorder state: attached recorders pay a
            # mask test per event and one record per tick_stride events.
            flight = self._flightrec
            flight_mask = flight.tick_stride - 1 if flight is not None else 0
            try:
                while True:
                    t = self.queue.peek_time()
                    if t == float("inf") or t > end:
                        break
                    if max_events is not None and fired_this_run >= max_events:
                        # Checked before the pop so events_fired counts only
                        # events whose handlers actually ran.
                        raise SimulationError(
                            f"exceeded max_events={max_events} (possible livelock)"
                        )
                    ev = self.queue.pop()
                    self.now = ev.time
                    self.events_fired += 1
                    fired_this_run += 1
                    if self.trace:
                        self.trace_log.append(
                            (ev.time, ev.priority, ev.seq, ev.src, ev.dst)
                        )
                    if self._journal is not None:
                        self._journal.record(ev)
                    if ev.handler is not None:
                        if obs_busy is None:
                            ev.handler(ev)
                        else:
                            _t0 = perf_counter()
                            ev.handler(ev)
                            _dst = ev.dst or ""
                            obs_busy[_dst] = (
                                obs_busy.get(_dst, 0.0) + perf_counter() - _t0
                            )
                            if not (self.events_fired & 63):
                                obs.queue_depth.observe(len(self.queue))
                    if flight is not None and not (
                        self.events_fired & flight_mask
                    ):
                        flight.tick(self.now, self.events_fired)
                    if self.events_fired >= autosnap_check:
                        try:
                            autosnap.maybe_take(self)
                        except OSError:
                            # Snapshots are an optimization (resume
                            # granularity), not correctness: on a full or
                            # failing disk, drop the cadence and keep
                            # simulating rather than kill the run.
                            self._count_autosnap_disabled()
                            autosnap = None
                            autosnap_check = float("inf")
                            continue
                        autosnap_check = autosnap.next_check_at(self.events_fired)
            finally:
                # Metrics survive even a loop abort (e.g. the max_events
                # livelock guard): partial runs are exactly when numbers
                # matter most.
                if obs is not None:
                    obs.run_finished(self)
            if until is not None and end != float("inf"):
                # Mirror SST semantics: run(until) leaves the clock at the
                # requested horizon even when no event fired exactly there.
                self.now = max(self.now, end)
            if not self._finished and not self.queue:
                for comp in self.components.values():
                    comp.finish()
                self._finished = True
            return self.now
        finally:
            self._running = False
