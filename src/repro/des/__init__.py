"""Component-based discrete-event simulation engine (SST substitute).

This subpackage provides the parallel discrete-event simulation (PDES)
substrate that BE-SST requires from Sandia's Structural Simulation Toolkit:

* :class:`~repro.des.event.Event` — totally-ordered simulation events.
* :class:`~repro.des.component.Component` — the unit of simulated hardware
  or software; components communicate only through links and self-events.
* :class:`~repro.des.link.Link` — a latency-bearing connection between two
  component ports.
* :class:`~repro.des.engine.Engine` — the sequential event loop.
* :class:`~repro.des.parallel.ParallelEngine` — a conservative,
  lookahead-window (YAWNS-style) partitioned engine that produces results
  identical to the sequential engine.

The engines are deterministic: given the same components, connections and
seeds they produce identical event orderings and final states.
"""

from repro.des.event import Event, EventQueue
from repro.des.component import Component, Port
from repro.des.link import Link
from repro.des.clock import Clock
from repro.des.engine import Engine, SimulationError
from repro.des.parallel import ParallelEngine
from repro.des.partition import partition_components
from repro.des.rng import RNGRegistry

__all__ = [
    "Event",
    "EventQueue",
    "Component",
    "Port",
    "Link",
    "Clock",
    "Engine",
    "SimulationError",
    "ParallelEngine",
    "partition_components",
    "RNGRegistry",
]
