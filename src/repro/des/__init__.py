"""Component-based discrete-event simulation engine (SST substitute).

This subpackage provides the parallel discrete-event simulation (PDES)
substrate that BE-SST requires from Sandia's Structural Simulation Toolkit:

* :class:`~repro.des.event.Event` — totally-ordered simulation events.
* :class:`~repro.des.component.Component` — the unit of simulated hardware
  or software; components communicate only through links and self-events.
* :class:`~repro.des.link.Link` — a latency-bearing connection between two
  component ports.
* :class:`~repro.des.engine.Engine` — the sequential event loop.
* :class:`~repro.des.parallel.ParallelEngine` — a conservative,
  lookahead-window (YAWNS-style) partitioned engine that produces results
  identical to the sequential engine.
* :class:`~repro.des.snapshot.Snapshot` / :class:`~repro.des.snapshot.SnapshotStore`
  — versioned, checksummed engine checkpoints with atomic persistence.
* :class:`~repro.des.replay.EventJournal` / :func:`~repro.des.replay.replay_and_diff`
  — append-only event journal and the deterministic-replay oracle.
* :class:`~repro.des.parallel.PartitionFailover` — simulated rank failures
  with boundary-snapshot recovery and component migration.

The engines are deterministic: given the same components, connections and
seeds they produce identical event orderings and final states — an
invariant that survives snapshot/restore and partition failover.
"""

from repro.des.event import Event, EventQueue
from repro.des.component import Component, Port
from repro.des.link import Link
from repro.des.clock import Clock
from repro.des.engine import Engine, SimulationError
from repro.des.parallel import ParallelEngine, PartitionFailover
from repro.des.partition import migrate_assignment, partition_components
from repro.des.replay import (
    EventJournal,
    ReplayError,
    ReplayReport,
    diff_traces,
    read_journal,
    replay_and_diff,
)
from repro.des.rng import RNGRegistry
from repro.des.snapshot import (
    AutoSnapshotPolicy,
    Snapshot,
    SnapshotError,
    SnapshotStore,
)
from repro.des.stats import trace_digest

__all__ = [
    "Event",
    "EventQueue",
    "Component",
    "Port",
    "Link",
    "Clock",
    "Engine",
    "SimulationError",
    "ParallelEngine",
    "PartitionFailover",
    "partition_components",
    "migrate_assignment",
    "RNGRegistry",
    "Snapshot",
    "SnapshotError",
    "SnapshotStore",
    "AutoSnapshotPolicy",
    "EventJournal",
    "ReplayError",
    "ReplayReport",
    "read_journal",
    "replay_and_diff",
    "diff_traces",
    "trace_digest",
]
